package sim

import "testing"

func TestSignalDeliversFIFO(t *testing.T) {
	s := New(1)
	g := s.NewSignal()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		g.Wait(func() { order = append(order, i) })
	}
	s.After(10, g.Notify)
	s.Run()
	if len(order) != 5 {
		t.Fatalf("delivered %d waiters, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v is not FIFO", order)
		}
	}
}

func TestSignalNotifyWithoutWaitersIsFree(t *testing.T) {
	s := New(1)
	g := s.NewSignal()
	s.After(1, func() { g.Notify() })
	s.Run()
	if s.Executed != 1 {
		t.Fatalf("executed %d events, want 1 (an idle notify must not schedule)", s.Executed)
	}
}

func TestSignalNotifyCoalesces(t *testing.T) {
	s := New(1)
	g := s.NewSignal()
	fired := 0
	g.Wait(func() { fired++ })
	s.After(1, func() {
		g.Notify()
		g.Notify()
		g.Notify()
	})
	s.Run()
	if fired != 1 {
		t.Fatalf("waiter fired %d times, want 1", fired)
	}
	// Trigger + one coalesced dispatch.
	if s.Executed != 2 {
		t.Fatalf("executed %d events, want 2 (notifies must coalesce)", s.Executed)
	}
}

func TestSignalWaiterIsOneShot(t *testing.T) {
	s := New(1)
	g := s.NewSignal()
	fired := 0
	g.Wait(func() { fired++ })
	s.After(1, g.Notify)
	s.After(2, g.Notify)
	s.Run()
	if fired != 1 {
		t.Fatalf("one-shot waiter fired %d times", fired)
	}
}

func TestSignalRearmsAcrossNotifies(t *testing.T) {
	s := New(1)
	g := s.NewSignal()
	fired := 0
	var wait func()
	wait = func() {
		g.Wait(func() {
			fired++
			wait() // persistent subscription pattern: re-arm on fire
		})
	}
	wait()
	s.After(1, g.Notify)
	s.After(2, g.Notify)
	s.After(3, g.Notify)
	s.Run()
	if fired != 3 {
		t.Fatalf("re-arming waiter fired %d times, want 3", fired)
	}
}

func TestSignalCancelIsIdempotent(t *testing.T) {
	s := New(1)
	g := s.NewSignal()
	fired := false
	w := g.Wait(func() { fired = true })
	w.Cancel()
	w.Cancel() // re-cancel must be harmless
	s.After(1, g.Notify)
	s.Run()
	if fired {
		t.Fatal("canceled waiter fired")
	}
	w.Cancel() // cancel after dispatch must be harmless too
}

func TestSignalCancelDuringDispatch(t *testing.T) {
	s := New(1)
	g := s.NewSignal()
	var second *Waiter
	fired := false
	g.Wait(func() { second.Cancel() })
	second = g.Wait(func() { fired = true })
	s.After(1, g.Notify)
	s.Run()
	if fired {
		t.Fatal("waiter canceled earlier in the same batch still fired")
	}
}

func TestPollerCancelIdempotent(t *testing.T) {
	s := New(1)
	n := 0
	p := s.Poll(10, func() bool { n++; return n == 2 })
	s.Run()
	if n != 2 {
		t.Fatalf("poll ran %d times, want 2", n)
	}
	if p.Active() {
		t.Fatal("completed poller reports active")
	}
	// Re-canceling a completed poller (the recovery-path pattern) must
	// be a no-op, repeatedly.
	p.Cancel()
	p.Cancel()
	s.After(100, func() {})
	s.Run()
	if n != 2 {
		t.Fatalf("poller fired after completion+cancel: %d", n)
	}
}
