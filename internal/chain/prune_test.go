package chain

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/sim"
)

// pruneParams returns the executor-GC test configuration: a prune
// horizon of 8 (clearing the default ConfirmDepth 6) and optional
// history retirement.
func pruneParams(prune, retire int) Params {
	p := DefaultParams("prunenet")
	p.DifficultyBits = 8
	p.PruneDepth = prune
	p.RetireDepth = retire
	return p
}

// mineChain extends view v with n empty blocks and returns them.
func mineChain(t *testing.T, v *Chain, miner crypto.Address, n int, from sim.Time) []*Block {
	t.Helper()
	blocks := make([]*Block, n)
	for i := range blocks {
		blocks[i] = mineOn(t, v, miner, from+sim.Time(i+1)*10)
	}
	return blocks
}

// TestPruneDropsBuriedStates pins the tentpole's memory claim: with
// PruneDepth set, states buried deeper than the horizon below the tip
// are dropped (Pruned counts them, StatesLive stays bounded), while a
// deep read below the horizon transparently re-derives the state by
// replay — and the replayed state is the one ApplyBlock produced.
func TestPruneDropsBuriedStates(t *testing.T) {
	rng := sim.NewRNG(90)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	miner := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	exec, err := NewExecutor(pruneParams(8, 0), nil, GenesisAlloc{key.Addr: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	v := exec.NewView()
	blocks := mineChain(t, v, miner.Addr, 40, 0)

	st := exec.Stats()
	if st.Pruned == 0 {
		t.Fatalf("no states pruned after 40 blocks at horizon 8: %+v", st)
	}
	// Retained: horizon window + genesis (the replay base).
	if st.StatesLive > 8+2 {
		t.Fatalf("StatesLive = %d, want <= %d", st.StatesLive, 8+2)
	}
	// The state of a deeply buried block was pruned...
	deep := blocks[4] // height 5, far below horizon 40-8=32
	if _, live := exec.states[deep.Hash()]; live {
		t.Fatalf("state at height %d survived pruning", deep.Header.Height)
	}
	// ...but reads re-derive it by replay, and the result is exactly
	// the ApplyBlock verdict (same total value as an unpruned replica).
	replayed, ok := v.StateAt(deep.Hash())
	if !ok {
		t.Fatal("StateAt below the prune horizon failed")
	}
	if got := exec.Stats(); got.Replays == 0 {
		t.Fatalf("deep read did not replay: %+v", got)
	}
	wantValue := uint64(100_000) + uint64(deep.Header.Height)*uint64(exec.Params().BlockReward)
	if uint64(replayed.TotalValue()) != wantValue {
		t.Fatalf("replayed state TotalValue = %d, want %d", replayed.TotalValue(), wantValue)
	}
	// Executed counts no replay work: accounting is identical with
	// pruning on or off.
	if got := exec.Stats(); got.Executed != uint64(len(blocks))+1 {
		t.Fatalf("Executed = %d, want %d (replays must not count)", got.Executed, len(blocks)+1)
	}
}

// TestDeepReorgAcrossPruneHorizon is the tentpole's correctness
// regression: a fork branching below the prune horizon overtakes the
// canonical chain. The pruning executor must re-derive the fork
// point's state by replay and reach verdicts — tip, reorg accounting,
// execution counts, and ledger totals — identical to an executor that
// never pruned anything.
func TestDeepReorgAcrossPruneHorizon(t *testing.T) {
	rng := sim.NewRNG(91)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	miner := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	alloc := GenesisAlloc{key.Addr: 100_000}

	// One scratch chain builds the shared 40-block main line; a second,
	// forked at height 28, builds a 15-block overtaking branch.
	scratch, err := NewChain(pruneParams(0, 0), nil, alloc)
	if err != nil {
		t.Fatal(err)
	}
	main := mineChain(t, scratch, miner.Addr, 40, 0)

	forker, err := NewChain(pruneParams(0, 0), nil, alloc)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range main[:28] {
		if _, err := forker.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	fork := mineChain(t, forker, key.Addr, 15, 10_000) // heights 29..43

	// Twin executors consume the identical stream; only GC differs.
	pruned, err := NewExecutor(pruneParams(8, 0), nil, alloc)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewExecutor(pruneParams(0, 0), nil, alloc)
	if err != nil {
		t.Fatal(err)
	}
	vp, vf := pruned.NewView(), full.NewView()
	for _, b := range append(append([]*Block{}, main...), fork...) {
		if _, err := vp.AddBlock(b); err != nil {
			t.Fatalf("pruned executor rejected block at height %d: %v", b.Header.Height, err)
		}
		if _, err := vf.AddBlock(b); err != nil {
			t.Fatalf("full executor rejected block at height %d: %v", b.Header.Height, err)
		}
	}

	if pruned.Stats().Pruned == 0 || pruned.Stats().Replays == 0 {
		t.Fatalf("fork below the horizon exercised no pruning/replay: %+v", pruned.Stats())
	}
	if full.Stats().Pruned != 0 || full.Stats().Replays != 0 {
		t.Fatalf("unpruned executor pruned/replayed: %+v", full.Stats())
	}
	// Identical verdicts everywhere it counts.
	if vp.Tip().Hash() != vf.Tip().Hash() {
		t.Fatalf("tips diverge: pruned %s vs full %s", vp.Tip().Hash(), vf.Tip().Hash())
	}
	if vp.Tip().Hash() != fork[len(fork)-1].Hash() {
		t.Fatal("overtaking fork did not become the tip")
	}
	if vp.Reorgs != vf.Reorgs || vp.MaxReorgDepth != vf.MaxReorgDepth {
		t.Fatalf("reorg accounting diverges: %d/%d vs %d/%d",
			vp.Reorgs, vp.MaxReorgDepth, vf.Reorgs, vf.MaxReorgDepth)
	}
	sp, sf := pruned.Stats(), full.Stats()
	if sp.Executed != sf.Executed || sp.Hits != sf.Hits {
		t.Fatalf("execution accounting diverges: Executed %d/%d, Hits %d/%d",
			sp.Executed, sf.Executed, sp.Hits, sf.Hits)
	}
	if vp.TipState().TotalValue() != vf.TipState().TotalValue() {
		t.Fatalf("ledger totals diverge: %d vs %d",
			vp.TipState().TotalValue(), vf.TipState().TotalValue())
	}
}

// TestRetireReleasesHistory pins the history-GC tier: with RetireDepth
// set, whole blocks below the retire floor are released (bodies,
// index entries, view records), genesis survives as the identity
// anchor, and everything at or above the floor stays replayable
// through the pinned checkpoint state.
func TestRetireReleasesHistory(t *testing.T) {
	rng := sim.NewRNG(92)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	miner := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	exec, err := NewExecutor(pruneParams(8, 20), nil, GenesisAlloc{key.Addr: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	v := exec.NewView()

	// A spend mined early, then 60 empty blocks to push it far below
	// the retire floor (60 - 20 = 40).
	tx := mustTransfer(t, v, key, 1, 5_000)
	spendBlock := mineOn(t, v, miner.Addr, 10, tx)
	blocks := mineChain(t, v, miner.Addr, 60, 10)

	st := exec.Stats()
	if st.Retired == 0 {
		t.Fatalf("no blocks retired after 61 blocks at retire depth 20: %+v", st)
	}
	// Retired history is gone from every surface.
	if _, ok := v.Block(spendBlock.Hash()); ok {
		t.Fatal("retired block still served")
	}
	if _, _, found := v.FindTx(tx.ID()); found {
		t.Fatal("retired transaction still indexed")
	}
	if _, ok := v.CanonicalAt(spendBlock.Header.Height); ok {
		t.Fatal("retired height still canonical")
	}
	if _, ok := v.StateAt(spendBlock.Hash()); ok {
		t.Fatal("retired state still readable")
	}
	// Genesis survives retirement as the chain-identity anchor.
	if _, ok := v.Block(v.Genesis().Hash()); !ok {
		t.Fatal("genesis retired")
	}
	// Everything at/above the retire floor is replayable: a read
	// between the floor and the prune horizon replays forward from the
	// pinned checkpoint, with the effects of all retired history (the
	// early spend included) intact.
	tip := v.Tip().Header.Height
	midBlock, ok := v.CanonicalAt(tip - 15)
	if !ok {
		t.Fatal("height above the retire floor lost its canonical record")
	}
	mid, ok := v.StateAt(midBlock.Hash())
	if !ok {
		t.Fatal("state above the retire floor not re-derivable")
	}
	wantValue := uint64(100_000) + uint64(tip-15)*uint64(exec.Params().BlockReward)
	if uint64(mid.TotalValue()) != wantValue {
		t.Fatalf("replayed mid state TotalValue = %d, want %d", mid.TotalValue(), wantValue)
	}
	// The floor is monotone: more mining advances it and retires more.
	before := exec.Stats().Retired
	mineChain(t, v, miner.Addr, 20, 10_000)
	if exec.Stats().Retired <= before {
		t.Fatalf("retire floor did not advance: %d -> %d", before, exec.Stats().Retired)
	}
	// A recent block (within every horizon) keeps full service.
	recent := blocks[len(blocks)-1]
	if _, ok := v.Block(recent.Hash()); !ok {
		t.Fatal("recent block lost")
	}
}
