package engine

import (
	"sync/atomic"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// latencyBounds are the aggregate latency histogram's inclusive upper
// bounds in virtual milliseconds. The histogram is the *only* latency
// record the engine keeps (no per-tx samples survive grading — see
// ShardResult), so the ladder is deliberately fine: aggregate
// percentiles interpolate inside these buckets.
//
//ac3:globalstate canonical histogram ladder; written once here, read-only (changing it is a wire-format change)
var latencyBounds = []int64{
	int64(15 * sim.Second), int64(30 * sim.Second),
	int64(1 * sim.Minute), int64(90 * sim.Second), int64(2 * sim.Minute),
	int64(3 * sim.Minute), int64(4 * sim.Minute), int64(6 * sim.Minute),
	int64(8 * sim.Minute), int64(12 * sim.Minute), int64(16 * sim.Minute),
	int64(24 * sim.Minute), int64(32 * sim.Minute), int64(48 * sim.Minute),
	int64(64 * sim.Minute), int64(128 * sim.Minute),
}

// phaseBounds are the per-phase latency histogram bounds in virtual
// milliseconds. Phases are shorter than end-to-end latencies (a
// decision wait can be near-zero), so the scale starts at seconds.
//
//ac3:globalstate canonical histogram ladder; written once here, read-only (changing it is a wire-format change)
var phaseBounds = []int64{
	int64(5 * sim.Second), int64(15 * sim.Second), int64(30 * sim.Second),
	int64(1 * sim.Minute), int64(2 * sim.Minute), int64(4 * sim.Minute),
	int64(8 * sim.Minute), int64(16 * sim.Minute), int64(32 * sim.Minute),
	int64(64 * sim.Minute),
}

// phaseKey identifies one (phase, scenario) latency cell.
type phaseKey struct {
	phase    string
	scenario Scenario
}

// Collector is the engine's shared result sink. Shard goroutines feed
// it concurrently: live counters let a progress reporter watch a run
// without locks, and the latency histogram (metrics.Hist, itself
// concurrency-safe and integer-valued) accumulates in any
// interleaving without breaking the engine's byte-identical-output
// guarantee. Everything order-sensitive stays in per-shard results
// and is merged in shard order after the workers join.
type Collector struct {
	total    int64
	graded   atomic.Int64
	violated atomic.Int64
	latency  *metrics.Hist
}

func newCollector(total int) *Collector {
	return &Collector{total: int64(total), latency: metrics.NewHist(latencyBounds...)}
}

// observe records one graded transaction.
func (c *Collector) observe(lat sim.Time, violated bool) {
	c.graded.Add(1)
	if violated {
		c.violated.Add(1)
	}
	c.latency.Observe(int64(lat))
}

// Progress reports graded and total transaction counts; safe to call
// from any goroutine while the engine runs.
func (c *Collector) Progress() (graded, total int64) {
	return c.graded.Load(), c.total
}

// ScenarioStats aggregates outcomes for one scenario.
type ScenarioStats struct {
	Txs        int `json:"txs"`
	Commits    int `json:"commits"`
	Aborts     int `json:"aborts"`
	Stuck      int `json:"stuck"`
	Violations int `json:"violations"`
}

// add folds one outcome into the stats.
func (s *ScenarioStats) add(committed, aborted, violated bool) {
	s.Txs++
	switch {
	case committed:
		s.Commits++
	case aborted:
		s.Aborts++
	default:
		s.Stuck++
	}
	if violated {
		s.Violations++
	}
}

// merge folds other into s.
func (s *ScenarioStats) merge(o *ScenarioStats) {
	s.Txs += o.Txs
	s.Commits += o.Commits
	s.Aborts += o.Aborts
	s.Stuck += o.Stuck
	s.Violations += o.Violations
}

// ShardResult is one shard's complete, deterministic outcome.
type ShardResult struct {
	Shard             int                        `json:"shard"`
	Seed              uint64                     `json:"seed"`
	Txs               int                        `json:"txs"`
	Graded            int                        `json:"graded"`
	Commits           int                        `json:"commits"`
	Aborts            int                        `json:"aborts"`
	Stuck             int                        `json:"stuck"`
	Violations        int                        `json:"violations"`
	Deploys           int                        `json:"deploys"`
	Calls             int                        `json:"calls"`
	MakespanVirtualMs int64                      `json:"makespan_virtual_ms"`
	Events            uint64                     `json:"sim_events"`
	ByScenario        map[Scenario]ScenarioStats `json:"by_scenario"`

	// ScenariosDrawn counts workload scenario draws; ScenariosDowngraded
	// counts draws the protocol cannot express that were mapped onto
	// commit (today: HTLC race only). A nonzero downgrade count makes
	// the remaining mapping visible instead of silent.
	ScenariosDrawn      int `json:"scenarios_drawn"`
	ScenariosDowngraded int `json:"scenarios_downgraded"`

	// BlocksMined totals blocks mined across the shard's networks;
	// BlocksExecuted counts full ApplyBlock state transitions the
	// shared executors ran (≈ mined + genesis per network), and
	// BlockExecHits counts adoptions served from the result cache (≈
	// (N-1)× mined for N-node networks). Before the shared store,
	// executed ≈ N× mined.
	BlocksMined    int    `json:"blocks_mined"`
	BlocksExecuted uint64 `json:"blocks_executed"`
	BlockExecHits  uint64 `json:"block_exec_cache_hits"`

	// Executor state-GC accounting across the shard's networks:
	// StatesPruned counts per-block ledger states dropped past the
	// prune horizon, StatesLive the states still retained at shard
	// end, StateReplays the ApplyBlock replays run to re-derive a
	// pruned state on a deep read, BlocksRetired the whole blocks
	// released by history retirement. All are deterministic (functions
	// of the block DAG and view tips, never of wall-clock memory
	// pressure), so they live in the byte-compared aggregates.
	StatesPruned  uint64 `json:"states_pruned"`
	StatesLive    int    `json:"states_live"`
	StateReplays  uint64 `json:"state_replays"`
	BlocksRetired uint64 `json:"blocks_retired"`

	// Witness-efficiency accounting (AC3WN only, zero elsewhere):
	// WitnessDecisionTxs / WitnessDecisionBytes total the per-AC2T
	// decision transactions (authorize_redeem / authorize_refund on
	// each transaction's own SCw) and their encoded sizes — the
	// unbatched decision traffic. BatchesPublished / BatchDecisions /
	// BatchBytesPublished total the shard coordinator's commit_batch
	// transactions, the AC2T decisions they carried, and their encoded
	// sizes; BatchRepublishes counts commitments re-pushed after a
	// reorg below the coordinator's stable depth. Batching on moves the
	// decision traffic from the first pair to the batch counters.
	WitnessDecisionTxs   int `json:"witness_decision_txs"`
	WitnessDecisionBytes int `json:"witness_decision_bytes"`
	BatchesPublished     int `json:"batches_published"`
	BatchDecisions       int `json:"batch_decisions"`
	BatchRepublishes     int `json:"batch_republishes"`
	BatchBytesPublished  int `json:"batch_bytes_published"`

	// Adversity accounting: ForksObserved totals canonical-tip reorgs
	// across every node view in the shard (each one a fork race some
	// replica lost), MaxReorgDepth is the deepest canonical rollback
	// any view performed (partition heals produce these), and
	// MsgsDropped counts gossip messages lost to the loss model, a
	// partition, or a crashed endpoint.
	ForksObserved int    `json:"forks_observed"`
	MaxReorgDepth int    `json:"max_reorg_depth"`
	MsgsDropped   uint64 `json:"msgs_dropped"`

	// Per-tx latency samples are NOT retained: every grading folds
	// straight into the collector's shared histogram (and the phase
	// table below), so shard memory is flat in transaction count —
	// the property the 100k/1M scale rungs depend on.

	// phase holds the shard's per-(phase, scenario) latency histograms
	// — always collected (fixed-size, integer-only), folded in shard
	// order into the aggregate's phase table. Kept separate from the
	// trace ring so eviction never skews the statistics.
	phase map[phaseKey]*metrics.Hist
}

// observePhase folds one completed phase duration into the shard's
// per-(phase, scenario) histogram.
func (r *ShardResult) observePhase(phase string, sc Scenario, d sim.Time) {
	if d < 0 {
		return
	}
	if r.phase == nil {
		r.phase = make(map[phaseKey]*metrics.Hist)
	}
	k := phaseKey{phase, sc}
	h := r.phase[k]
	if h == nil {
		h = metrics.NewHist(phaseBounds...)
		r.phase[k] = h
	}
	h.Observe(int64(d))
}

// record folds one graded transaction into the shard result.
func (r *ShardResult) record(sc Scenario, committed, aborted, violated bool, lat sim.Time, deploys, calls int) {
	r.Graded++
	switch {
	case committed:
		r.Commits++
	case aborted:
		r.Aborts++
	default:
		r.Stuck++
	}
	if violated {
		r.Violations++
	}
	r.Deploys += deploys
	r.Calls += calls
	st := r.ByScenario[sc]
	st.add(committed, aborted, violated)
	r.ByScenario[sc] = st
}
