package chain

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"

	"repro/internal/crypto"
	"repro/internal/merkle"
	"repro/internal/sim"
)

// Header is a block header: the portion of a block that light clients
// download and that SPV evidence (Section 4.3) carries across chains.
type Header struct {
	ChainID ID
	Parent  crypto.Hash
	Height  uint64
	Time    sim.Time
	TxRoot  crypto.Hash // Merkle root over transaction ids
	Bits    uint8       // required leading zero bits of the header hash
	Nonce   uint64      // ground until Hash() satisfies Bits
}

// Encode serializes the header canonically.
func (h *Header) Encode() []byte {
	var buf bytes.Buffer
	var u64 [8]byte
	buf.WriteString(string(h.ChainID))
	buf.WriteByte(0) // chain-id terminator
	buf.Write(h.Parent[:])
	binary.BigEndian.PutUint64(u64[:], h.Height)
	buf.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], uint64(h.Time))
	buf.Write(u64[:])
	buf.Write(h.TxRoot[:])
	buf.WriteByte(h.Bits)
	binary.BigEndian.PutUint64(u64[:], h.Nonce)
	buf.Write(u64[:])
	return buf.Bytes()
}

// DecodeHeader reverses Encode.
func DecodeHeader(b []byte) (*Header, error) {
	idx := bytes.IndexByte(b, 0)
	if idx < 0 {
		return nil, fmt.Errorf("chain: header missing chain-id terminator")
	}
	h := &Header{ChainID: ID(b[:idx])}
	r := &byteReader{b: b, pos: idx + 1}
	if err := r.hash(&h.Parent); err != nil {
		return nil, err
	}
	v, err := r.u64()
	if err != nil {
		return nil, err
	}
	h.Height = v
	if v, err = r.u64(); err != nil {
		return nil, err
	}
	h.Time = sim.Time(v)
	if err := r.hash(&h.TxRoot); err != nil {
		return nil, err
	}
	bitsB, err := r.u8()
	if err != nil {
		return nil, err
	}
	h.Bits = bitsB
	if h.Nonce, err = r.u64(); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("chain: %d trailing bytes after header", r.remaining())
	}
	return h, nil
}

// Hash returns the proof-of-work digest of the header.
func (h *Header) Hash() crypto.Hash { return crypto.Sum(h.Encode()) }

// leadingZeroBits counts the leading zero bits of a digest.
func leadingZeroBits(h crypto.Hash) int {
	n := 0
	for _, b := range h {
		if b == 0 {
			n += 8
			continue
		}
		n += bits.LeadingZeros8(b)
		break
	}
	return n
}

// CheckPoW reports whether the header hash meets its difficulty
// target. This is the verification SPV evidence runs for every header
// it carries ("the function ... verifies the proof of work of each
// header", Section 4.3).
func (h *Header) CheckPoW() bool {
	return leadingZeroBits(h.Hash()) >= int(h.Bits)
}

// Seal grinds the nonce until the header meets its difficulty target.
// The expected work is 2^Bits hash evaluations; simulation difficulty
// is kept low so sealing is cheap while verification stays real.
func (h *Header) Seal(start uint64) {
	h.Nonce = start
	for !h.CheckPoW() {
		h.Nonce++
	}
}

// Block is a full block: header plus ordered transactions.
type Block struct {
	Header *Header
	Txs    []*Tx

	hash    crypto.Hash // memoized header hash
	hashSet bool
}

// NewBlock assembles a block and computes its transaction root. The
// header is not sealed; call Header.Seal.
func NewBlock(header Header, txs []*Tx) *Block {
	header.TxRoot = TxRoot(txs)
	return &Block{Header: &header, Txs: txs}
}

// TxRoot computes the Merkle root over the transactions' ids.
func TxRoot(txs []*Tx) crypto.Hash {
	leaves := make([]crypto.Hash, len(txs))
	for i, tx := range txs {
		id := tx.ID()
		leaves[i] = merkle.LeafHash(id[:])
	}
	return merkle.Root(leaves)
}

// TxLeaves returns the Merkle leaves for the block's transactions,
// used when constructing inclusion proofs for evidence.
func (b *Block) TxLeaves() []crypto.Hash {
	leaves := make([]crypto.Hash, len(b.Txs))
	for i, tx := range b.Txs {
		id := tx.ID()
		leaves[i] = merkle.LeafHash(id[:])
	}
	return leaves
}

// Hash returns the block's (memoized) header hash.
func (b *Block) Hash() crypto.Hash {
	if !b.hashSet {
		b.hash = b.Header.Hash()
		b.hashSet = true
	}
	return b.hash
}

// FindTx returns the index of the transaction with the given id, or
// -1.
func (b *Block) FindTx(id crypto.Hash) int {
	for i, tx := range b.Txs {
		if tx.ID() == id {
			return i
		}
	}
	return -1
}

// ProveTx builds a Merkle inclusion proof for the transaction at
// index.
func (b *Block) ProveTx(index int) (*merkle.Proof, error) {
	if index < 0 || index >= len(b.Txs) {
		return nil, fmt.Errorf("chain: tx index %d out of range", index)
	}
	return merkle.Prove(b.TxLeaves(), index)
}
