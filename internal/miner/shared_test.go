package miner

import (
	"testing"

	"repro/internal/crypto"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// TestOrphansSharingParentAllConnect is the regression test for the
// orphan-buffer overwrite bug: two orphans waiting on the same parent
// (competing fork children) must both connect when the parent arrives
// — the old map[parent]*Block kept only the last one.
func TestOrphansSharingParentAllConnect(t *testing.T) {
	s, net, _ := testNet(t, 11, 1, p2p.LatencyModel{Base: 10})
	node := net.Node(0)
	rng := s.RNG().Fork()
	mA := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	mB := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	// Build b1 and two competing children of it on a side view of the
	// network's shared store; the node has seen none of them.
	sv := net.Executor().NewView()
	b1, st1, _ := sv.BuildBlock(mA.Addr, 10, nil)
	b1.Header.Seal(1)
	if _, err := sv.AddMinedBlock(b1, st1); err != nil {
		t.Fatal(err)
	}
	b2a, _, _ := sv.BuildBlock(mA.Addr, 20, nil)
	b2a.Header.Seal(2)
	b2b, _, _ := sv.BuildBlock(mB.Addr, 20, nil)
	b2b.Header.Seal(3)
	if b2a.Hash() == b2b.Hash() {
		t.Fatal("fixture children are not distinct")
	}

	// Children first: both buffer as orphans under the same parent.
	node.acceptBlock(node.ID, b2a)
	node.acceptBlock(node.ID, b2b)
	if len(node.orphans[b1.Hash()]) != 2 {
		t.Fatalf("orphan buffer holds %d children of b1, want 2", len(node.orphans[b1.Hash()]))
	}
	// Re-delivery must not duplicate the buffered orphan.
	node.acceptBlock(node.ID, b2a)
	if len(node.orphans[b1.Hash()]) != 2 {
		t.Fatal("re-delivered orphan duplicated in buffer")
	}

	// Parent arrives: every waiter connects.
	node.acceptBlock(node.ID, b1)
	if !node.Chain.HasBlock(b2a.Hash()) || !node.Chain.HasBlock(b2b.Hash()) {
		t.Fatal("a buffered orphan was dropped when its parent connected")
	}
	if len(node.orphans) != 0 {
		t.Fatalf("%d orphan entries left after connect", len(node.orphans))
	}
	if node.Chain.Height() != 2 {
		t.Fatalf("height %d after connecting children, want 2", node.Chain.Height())
	}
}

// TestNetworkExecutesEveryBlockOnce is the tentpole claim at network
// level: with N nodes sharing one executor, the number of ApplyBlock
// state transitions equals blocks mined plus genesis — not N× — and
// replica adoptions are cache hits.
func TestNetworkExecutesEveryBlockOnce(t *testing.T) {
	s, net, _ := testNet(t, 12, 4, p2p.LatencyModel{Base: 100, Jitter: 200})
	net.Start()
	s.RunUntil(30 * sim.Minute)
	for _, n := range net.Nodes {
		n.mining = false
	}
	s.RunUntil(s.Now() + sim.Minute)
	if !net.Converged() {
		t.Fatal("network did not converge")
	}
	mined := net.BlocksMined()
	if mined == 0 {
		t.Fatal("nothing mined")
	}
	st := net.Executor().Stats()
	if got, want := st.Executed, uint64(mined+1); got != want {
		t.Fatalf("Executed = %d, want %d (mined %d + genesis): redundant execution crept back in", got, want, mined)
	}
	if st.Hits == 0 {
		t.Fatal("no cache hits despite 4 replicas gossiping")
	}
}

// TestCrashRecoveryResyncThroughSharedStore crashes a miner, lets the
// network advance, and checks that recovery re-syncs the node through
// the shared store without a single block re-execution: catching up on
// blocks its peers already validated is pure cache hits.
func TestCrashRecoveryResyncThroughSharedStore(t *testing.T) {
	s, net, _ := testNet(t, 13, 3, p2p.LatencyModel{Base: 100})
	net.Start()
	s.RunUntil(5 * sim.Minute)
	victim := net.Node(0)
	victim.Crash()
	s.RunUntil(20 * sim.Minute)

	heightAtRecovery := victim.Chain.Height()
	statsAtRecovery := net.Executor().Stats()
	victim.Recover()
	s.RunUntil(50 * sim.Minute)
	for _, n := range net.Nodes {
		n.mining = false
	}
	s.RunUntil(s.Now() + sim.Minute)

	if !net.Converged() {
		t.Fatalf("recovered node did not converge: %d vs %d",
			victim.Chain.Height(), net.Node(1).Chain.Height())
	}
	if victim.Chain.Height() <= heightAtRecovery {
		t.Fatal("victim never caught up")
	}
	// Execute-once still holds across the crash/recovery: the whole
	// run cost exactly mined+genesis executions, so the victim's
	// catch-up (including its orphan-request backfill of the blocks it
	// slept through) was served entirely from the shared store.
	st := net.Executor().Stats()
	if got, want := st.Executed, uint64(net.BlocksMined()+1); got != want {
		t.Fatalf("Executed = %d, want %d: recovery re-executed blocks", got, want)
	}
	if st.Hits <= statsAtRecovery.Hits {
		t.Fatal("victim's catch-up produced no cache hits")
	}
}

// TestWatchFiresWhenAlreadySatisfied pins the registration-time
// evaluation: a watch whose condition already holds when registered
// must fire even on a chain that never changes tip again (quiesced
// network) — the guarantee the old cadence pollers gave.
func TestWatchFiresWhenAlreadySatisfied(t *testing.T) {
	s, net, user := testNet(t, 14, 1, p2p.LatencyModel{Base: 10})
	net.Start()
	alice := NewClient(net, 0, user)
	rng := s.RNG().Fork()
	bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	tx, err := alice.Transfer(bob.Addr, 100)
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(10 * sim.Minute) // tx confirms deep
	net.Node(0).StopMining()
	s.RunUntil(s.Now() + sim.Minute) // fully quiesced
	if d, ok := net.Node(0).Chain.TxDepth(tx.ID()); !ok || d < 3 {
		t.Fatalf("fixture: tx depth %d/%v, want >= 3", d, ok)
	}

	fired := false
	if err := alice.WhenTxAtDepth(tx, 3, func(crypto.Hash) { fired = true }); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(s.Now() + sim.Minute) // no tip changes happen here
	if !fired {
		t.Fatal("already-satisfied watch never fired on a quiescent chain")
	}
}
