// Package p2p simulates the message-passing layer of Section 2.1:
// end-users multicast transactions to mining nodes, and miners gossip
// blocks to each other, over links with configurable delay. Crash
// failures, recoveries, and network partitions — the asynchronous-
// environment hazards the paper's introduction motivates — are
// injected here.
package p2p

import (
	"fmt"

	"repro/internal/sim"
)

// NodeID identifies a network endpoint (miner or client).
type NodeID int

// Handler consumes a delivered message.
type Handler func(from NodeID, payload any)

// LatencyModel samples a one-way link delay.
type LatencyModel struct {
	// Base is the minimum propagation delay.
	Base sim.Time
	// Jitter adds a uniform random extra in [0, Jitter).
	Jitter sim.Time
}

// Sample draws a delay.
func (l LatencyModel) Sample(rng *sim.RNG) sim.Time {
	d := l.Base
	if l.Jitter > 0 {
		d += rng.Int63n(l.Jitter)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Network is a simulated broadcast network of registered nodes.
type Network struct {
	sim     *sim.Sim
	rng     *sim.RNG
	latency LatencyModel

	handlers map[NodeID]Handler
	order    []NodeID // registration order, for deterministic broadcast
	crashed  map[NodeID]bool
	group    map[NodeID]int // partition group; nodes in different groups cannot talk

	// Sent and Delivered count messages for diagnostics.
	Sent      uint64
	Delivered uint64
}

// NewNetwork creates a network on the given simulator.
func NewNetwork(s *sim.Sim, latency LatencyModel) *Network {
	return &Network{
		sim:      s,
		rng:      s.RNG().Fork(),
		latency:  latency,
		handlers: make(map[NodeID]Handler),
		crashed:  make(map[NodeID]bool),
		group:    make(map[NodeID]int),
	}
}

// Register attaches a node's handler. Registering an id twice panics.
func (n *Network) Register(id NodeID, h Handler) {
	if h == nil {
		panic("p2p: nil handler")
	}
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("p2p: node %d registered twice", id))
	}
	n.handlers[id] = h
	n.order = append(n.order, id)
}

// Nodes returns the registered node ids in registration order.
func (n *Network) Nodes() []NodeID {
	return append([]NodeID(nil), n.order...)
}

// reachable reports whether a message from a to b would currently be
// delivered (both alive, same partition group).
func (n *Network) reachable(a, b NodeID) bool {
	if n.crashed[a] || n.crashed[b] {
		return false
	}
	return n.group[a] == n.group[b]
}

// Send delivers payload from 'from' to 'to' after a sampled delay.
// Messages to crashed or partitioned-away nodes are dropped at send
// time; messages in flight when the receiver crashes are dropped at
// delivery time (no delayed replay — crash-stop semantics).
func (n *Network) Send(from, to NodeID, payload any) {
	n.Sent++
	if !n.reachable(from, to) {
		return
	}
	if _, ok := n.handlers[to]; !ok {
		return
	}
	delay := n.latency.Sample(n.rng)
	n.sim.After(delay, func() {
		if n.crashed[to] || !n.reachable(from, to) {
			return
		}
		n.Delivered++
		n.handlers[to](from, payload)
	})
}

// Broadcast sends payload from 'from' to every other registered node.
func (n *Network) Broadcast(from NodeID, payload any) {
	for _, id := range n.order {
		if id == from {
			continue
		}
		n.Send(from, id, payload)
	}
}

// Crash stops a node: it receives nothing until Recover. In-flight
// messages to it are lost.
func (n *Network) Crash(id NodeID) { n.crashed[id] = true }

// Recover restarts a crashed node. It resumes receiving new messages;
// anything sent while it was down is gone (clients must re-poll or
// resubmit, as real wallets do).
func (n *Network) Recover(id NodeID) { delete(n.crashed, id) }

// Crashed reports whether a node is currently down.
func (n *Network) Crashed(id NodeID) bool { return n.crashed[id] }

// Partition splits the network into groups; nodes in different groups
// cannot exchange messages. Nodes not mentioned stay in group 0.
func (n *Network) Partition(groups ...[]NodeID) {
	n.group = make(map[NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			n.group[id] = gi + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() { n.group = make(map[NodeID]int) }
