package spv

import (
	"errors"
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// fixture builds a single-view chain with a funded key and n mined
// blocks, the transfer of interest mined in block 1.
type fixture struct {
	view *chain.Chain
	key  *crypto.KeyPair
	tx   *chain.Tx
	rng  *sim.RNG
	now  sim.Time
}

// fixtureTB is the slice of testing.TB the fixture needs, letting
// tests and benchmarks share it.
type fixtureTB interface {
	Helper()
	Fatal(args ...any)
	Fatalf(format string, args ...any)
}

func newFixture(t *testing.T, blocksAfterTx int) *fixture {
	return newFixtureAny(t, blocksAfterTx)
}

func newFixtureAny(t fixtureTB, blocksAfterTx int) *fixture {
	t.Helper()
	rng := sim.NewRNG(42)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	params := chain.DefaultParams("validated")
	params.DifficultyBits = 8
	view, err := chain.NewChain(params, nil, chain.GenesisAlloc{key.Addr: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	f := &fixture{view: view, key: key, rng: rng}

	// The transaction of interest.
	var prev chain.OutPoint
	for op := range view.TipState().UTXOsOwnedBy(key.Addr) {
		prev = op
	}
	f.tx = chain.NewTransfer(key, 1, []chain.TxIn{{Prev: prev}},
		[]chain.TxOut{{Value: 1_000, Owner: key.Addr}})
	f.mine(f.tx)
	for i := 0; i < blocksAfterTx; i++ {
		f.mine()
	}
	return f
}

func (f *fixture) mine(txs ...*chain.Tx) *chain.Block {
	f.now += 10 * sim.Second
	b, _, _ := f.view.BuildBlock(f.key.Addr, f.now, txs)
	b.Header.Seal(f.rng.Uint64())
	if _, err := f.view.AddBlock(b); err != nil {
		panic(err)
	}
	return b
}

func TestBuildAndVerifyEvidence(t *testing.T) {
	f := newFixture(t, 6)
	cp := f.view.Genesis()
	ev, err := Build(f.view, cp.Hash(), f.tx.ID(), 6)
	if err != nil {
		t.Fatal(err)
	}
	tx, err := ev.Verify(cp.Header, 6)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() != f.tx.ID() {
		t.Fatal("verified a different transaction")
	}
}

func TestEvidenceEncodeDecodeRoundTrip(t *testing.T) {
	f := newFixture(t, 6)
	cp := f.view.Genesis()
	ev, err := Build(f.view, cp.Hash(), f.tx.ID(), 6)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(ev.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Verify(cp.Header, 6); err != nil {
		t.Fatalf("decoded evidence fails verification: %v", err)
	}
}

func TestEvidenceInsufficientDepth(t *testing.T) {
	f := newFixture(t, 3)
	cp := f.view.Genesis()
	if _, err := Build(f.view, cp.Hash(), f.tx.ID(), 6); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("Build at depth 3 with min 6 succeeded: %v", err)
	}
	// Build at 3, verify demanding 6: must fail at the verifier too.
	ev, err := Build(f.view, cp.Hash(), f.tx.ID(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Verify(cp.Header, 6); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("shallow evidence verified: %v", err)
	}
}

func TestEvidenceBrokenLinkRejected(t *testing.T) {
	f := newFixture(t, 6)
	cp := f.view.Genesis()
	ev, _ := Build(f.view, cp.Hash(), f.tx.ID(), 6)
	// Remove a middle header: the chain no longer links.
	ev.Headers = append(ev.Headers[:2], ev.Headers[3:]...)
	if _, err := ev.Verify(cp.Header, 5); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("broken header chain verified: %v", err)
	}
}

func TestEvidenceForgedPoWRejected(t *testing.T) {
	f := newFixture(t, 6)
	cp := f.view.Genesis()
	ev, _ := Build(f.view, cp.Hash(), f.tx.ID(), 6)
	// Forge the last header: re-link it correctly but skip sealing.
	forged := *ev.Headers[len(ev.Headers)-1]
	forged.Nonce = 0
	for forged.CheckPoW() {
		forged.Nonce++
	}
	ev.Headers[len(ev.Headers)-1] = &forged
	if _, err := ev.Verify(cp.Header, 6); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("unsealed header accepted: %v", err)
	}
}

func TestEvidenceWrongTxRejected(t *testing.T) {
	f := newFixture(t, 6)
	cp := f.view.Genesis()
	ev, _ := Build(f.view, cp.Hash(), f.tx.ID(), 6)
	// Swap in a different transaction's bytes.
	other := chain.NewTransfer(f.key, 99, ev.decodeTxForTest(t).Ins, ev.decodeTxForTest(t).Outs)
	ev.TxBytes = other.Encode()
	if _, err := ev.Verify(cp.Header, 6); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("swapped tx verified: %v", err)
	}
}

// decodeTxForTest decodes the evidence transaction, failing the test
// on error.
func (e *Evidence) decodeTxForTest(t *testing.T) *chain.Tx {
	t.Helper()
	tx, err := chain.DecodeTx(e.TxBytes)
	if err != nil {
		t.Fatal(err)
	}
	return tx
}

func TestEvidenceWrongChainRejected(t *testing.T) {
	f := newFixture(t, 6)
	otherParams := chain.DefaultParams("other")
	otherParams.DifficultyBits = 8
	other, _ := chain.NewChain(otherParams, nil, nil)
	ev, _ := Build(f.view, f.view.Genesis().Hash(), f.tx.ID(), 6)
	if _, err := ev.Verify(other.Genesis().Header, 6); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("evidence verified against wrong chain checkpoint: %v", err)
	}
}

func TestEvidenceFromMidChainCheckpoint(t *testing.T) {
	f := newFixture(t, 0)
	// Mine 3 more blocks, put a second tx in, confirm, checkpoint at
	// block 2.
	f.mine()
	cpBlock, _ := f.view.CanonicalAt(2)
	var prev chain.OutPoint
	for op, o := range f.view.TipState().UTXOsOwnedBy(f.key.Addr) {
		if o.Value == 1_000 {
			prev = op
		}
	}
	tx2 := chain.NewTransfer(f.key, 2, []chain.TxIn{{Prev: prev}},
		[]chain.TxOut{{Value: 1_000, Owner: f.key.Addr}})
	f.mine(tx2)
	for i := 0; i < 4; i++ {
		f.mine()
	}
	ev, err := Build(f.view, cpBlock.Hash(), tx2.ID(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ev.Verify(cpBlock.Header, 4); err != nil {
		t.Fatal(err)
	}
	// A tx *before* the checkpoint cannot be proven from it.
	if _, err := Build(f.view, cpBlock.Hash(), f.tx.ID(), 0); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("pre-checkpoint tx proven: %v", err)
	}
}

func TestDecodeGarbage(t *testing.T) {
	for _, b := range [][]byte{nil, {1, 2, 3}, make([]byte, 64)} {
		if _, err := Decode(b); err == nil {
			t.Fatal("garbage decoded")
		}
	}
}

func TestLightNodeTracksLongestChain(t *testing.T) {
	f := newFixture(t, 6)
	ln := NewLightNode(f.view.Genesis().Header)
	hs, _ := f.view.HeadersFrom(f.view.Genesis().Hash())
	for _, h := range hs {
		if err := ln.AddHeader(h); err != nil {
			t.Fatal(err)
		}
	}
	if ln.Tip().Hash() != f.view.Tip().Hash() {
		t.Fatal("light node tip diverges from full node")
	}

	// Inclusion proof for the tx of interest.
	b, idx, _ := f.view.FindTx(f.tx.ID())
	proof, _ := b.ProveTx(idx)
	tx, err := ln.VerifyInclusion(b.Hash(), proof, f.tx.Encode(), 6)
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID() != f.tx.ID() {
		t.Fatal("light node verified wrong tx")
	}
}

func TestLightNodeRejectsBadHeaders(t *testing.T) {
	f := newFixture(t, 2)
	ln := NewLightNode(f.view.Genesis().Header)
	hs, _ := f.view.HeadersFrom(f.view.Genesis().Hash())

	// Unknown parent.
	if err := ln.AddHeader(hs[1]); !errors.Is(err, ErrUnknownHeader) {
		t.Fatalf("orphan header accepted: %v", err)
	}
	// Bad PoW.
	bad := *hs[0]
	for bad.CheckPoW() {
		bad.Nonce++
	}
	if err := ln.AddHeader(&bad); err == nil {
		t.Fatal("unsealed header accepted")
	}
	// Wrong chain.
	wrong := *hs[0]
	wrong.ChainID = "elsewhere"
	if err := ln.AddHeader(&wrong); err == nil {
		t.Fatal("wrong-chain header accepted")
	}
	// Valid sequence.
	for _, h := range hs {
		if err := ln.AddHeader(h); err != nil {
			t.Fatal(err)
		}
	}
	if err := ln.AddHeader(hs[0]); err != nil {
		t.Fatalf("duplicate header errored: %v", err)
	}
}

func TestLightNodeDepthEnforced(t *testing.T) {
	f := newFixture(t, 2)
	ln := NewLightNode(f.view.Genesis().Header)
	hs, _ := f.view.HeadersFrom(f.view.Genesis().Hash())
	for _, h := range hs {
		_ = ln.AddHeader(h)
	}
	b, idx, _ := f.view.FindTx(f.tx.ID())
	proof, _ := b.ProveTx(idx)
	if _, err := ln.VerifyInclusion(b.Hash(), proof, f.tx.Encode(), 6); !errors.Is(err, ErrBadEvidence) {
		t.Fatalf("depth-2 inclusion accepted at min 6: %v", err)
	}
}

func TestStorageCostOrdering(t *testing.T) {
	// The paper's scaling argument: full replica >> light node >>
	// in-contract.
	blocks, blockBytes, headerBytes := 100_000, 1_000_000, 100
	full := StorageCost(StrategyFullReplica, blocks, blockBytes, headerBytes)
	light := StorageCost(StrategyLightNode, blocks, blockBytes, headerBytes)
	inc := StorageCost(StrategyInContract, blocks, blockBytes, headerBytes)
	if !(full > light && light > inc) {
		t.Fatalf("cost ordering violated: full=%d light=%d in-contract=%d", full, light, inc)
	}
	if StrategyFullReplica.String() == "" || Strategy(99).String() == "" {
		t.Fatal("strategy names empty")
	}
}

func TestVerifyNilSafety(t *testing.T) {
	var e *Evidence
	if _, err := e.Verify(nil, 0); !errors.Is(err, ErrBadEvidence) {
		t.Fatal("nil evidence verified")
	}
	_ = vm.Amount(0) // keep vm import for fixture extensions
}
