// Crash failure: the Section 1 motivating scenario, run twice.
//
// Bob crashes at the worst possible moment — after the swap is
// irreversibly underway but before he claims his side. Under the
// HTLC baseline (Nolan/Herlihy) his timelock expires while he is
// down: Alice walks away with both assets and Bob's loss is
// permanent, a violation of all-or-nothing atomicity. Under AC3WN
// there is no timelock: the witness network's RDauth decision waits
// for him, and his recovery completes the commit.
//
//	go run ./examples/crashfailure
package main

import (
	"fmt"
	"log"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/xchain"
)

func main() {
	fmt.Println("=== HTLC baseline: Bob crashes after the secret is revealed ===")
	htlcOutcome := runBaseline()
	fmt.Println()
	fmt.Println("=== AC3WN: same crash, same downtime, then recovery ===")
	ac3wnOutcome := runAC3WN()

	fmt.Println()
	fmt.Println("=== verdict ===")
	fmt.Printf("HTLC : atomicity violated = %v (Bob lost his assets while down)\n", htlcOutcome)
	fmt.Printf("AC3WN: atomicity violated = %v (Bob redeemed after recovering)\n", ac3wnOutcome)
}

func buildWorld(seed uint64, withWitness bool) (*xchain.World, *xchain.Participant, *xchain.Participant, *graph.Graph) {
	b := xchain.NewBuilder(seed)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	ids := []chain.ID{"bitcoin", "ethereum"}
	if withWitness {
		ids = append(ids, "witness")
	}
	for _, id := range ids {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	b.Fund(alice, "bitcoin", 1_000_000)
	b.Fund(bob, "ethereum", 1_000_000)
	w, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.TwoParty(int64(seed), alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	if err != nil {
		log.Fatal(err)
	}
	return w, alice, bob, g
}

func runBaseline() bool {
	w, alice, bob, g := buildWorld(11, false)
	r, err := swap.New(w, swap.Config{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Leader:       alice,
		Delta:        60 * sim.Second,
		ConfirmDepth: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	r.Start()
	// Crash bob the instant alice submits her redeem (revealing s).
	w.Sim.Poll(100*sim.Millisecond, func() bool {
		for _, ev := range r.Events() {
			if ev.Edge == 1 && ev.Label == "redeem submitted" {
				fmt.Printf("t=%6.1fs  bob crashes (alice's reveal is in flight)\n", float64(w.Sim.Now())/1000)
				bob.Crash()
				return true
			}
		}
		return false
	})
	w.RunUntil(2 * sim.Hour) // bob's timelock expires; alice refunds
	fmt.Printf("t=%6.1fs  bob recovers; the reconciler resumes and retries his redeem...\n", float64(w.Sim.Now())/1000)
	bob.Recover()
	r.Resume(bob)
	w.RunUntil(w.Sim.Now() + 30*sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	for i, e := range out.Edges {
		fmt.Printf("  edge %d on %s: %s\n", i, e.Edge.Chain, e.State)
	}
	return out.AtomicityViolated()
}

func runAC3WN() bool {
	w, alice, bob, g := buildWorld(12, true)
	r, err := core.New(w, core.Config{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Initiator:    alice,
		WitnessChain: "witness",
		WitnessDepth: 3,
		AssetDepth:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	r.Start()
	w.Sim.Poll(100*sim.Millisecond, func() bool {
		for _, ev := range r.Events() {
			if len(ev.Label) > 16 && ev.Label[:16] == "authorize_redeem" {
				fmt.Printf("t=%6.1fs  bob crashes (commit decision in flight)\n", float64(w.Sim.Now())/1000)
				bob.Crash()
				return true
			}
		}
		return false
	})
	w.RunUntil(2 * sim.Hour) // same downtime as the baseline run
	fmt.Printf("t=%6.1fs  bob recovers; the reconciler resumes from chain state\n", float64(w.Sim.Now())/1000)
	bob.Recover()
	r.Resume(bob)
	w.RunUntil(w.Sim.Now() + 30*sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	for i, e := range out.Edges {
		fmt.Printf("  edge %d on %s: %s\n", i, e.Edge.Chain, e.State)
	}
	fmt.Printf("  committed = %v\n", out.Committed())
	return out.AtomicityViolated()
}
