// Package lint is ac3lint: a suite of static analyzers that
// machine-check this repository's determinism contract (ADR-009).
//
// Every headline number this reproduction produces rests on one
// invariant: an engine run is a pure function of its seed —
// byte-identical across repeated runs and worker counts — because
// virtual time, forked RNGs, and canonical orderings are the only
// schedule inputs. That invariant used to be enforced only by
// after-the-fact byte-compare smokes, and it was silently broken twice
// (a process-global gob type-id counter leaking into contract
// addresses; map-iteration order leaking into a genesis block). The
// analyzers here move those checks to review time:
//
//   - wallclock: no wall-clock time in deterministic packages
//   - globalrand: no ambient RNGs; every stream forks from a sim seed
//   - maporder: no map-iteration order flowing into ordered output
//   - shardworld: no concurrency inside shard-world packages
//   - globalstate: no mutable package-level state or init registration
//
// Judgment-call exceptions are annotated in source as
// `//ac3:<analyzer> <justification>` — the justification is required,
// and the annotation is visible at the use site forever.
package lint

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// All lists every analyzer in the suite, in reporting order.
// cmd/ac3lint registers exactly this set (a meta-test enforces it).
var All = []*analysis.Analyzer{
	Wallclock,
	GlobalRand,
	MapOrder,
	ShardWorld,
	GlobalState,
}

// Finding is one rendered diagnostic.
type Finding struct {
	File     string
	Line     int
	Col      int
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// RunPackage applies every analyzer in analyzers to pkg and returns
// the findings sorted by position.
func RunPackage(pkg *load.Package, analyzers []*analysis.Analyzer) ([]Finding, error) {
	var out []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			ReadFile:  readFileCached(),
			Report: func(d analysis.Diagnostic) {
				pos := pkg.Fset.Position(d.Pos)
				out = append(out, Finding{
					File:     pos.Filename,
					Line:     pos.Line,
					Col:      pos.Column,
					Analyzer: a.Name,
					Message:  d.Message,
				})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}

// The determinism contract's package scopes. Scope is keyed on import
// paths so the same rules drive both the real tree and the analyzer
// test fixtures (which are loaded under synthetic in-scope paths).

// deterministicPkg reports whether path is inside the determinism
// contract: everything under internal/ except the lint suite itself
// (which shells out to `go list` and is never linked into the engine).
// cmd/* front-ends are exempt by construction — wall-clock reporting
// and process plumbing live there.
func deterministicPkg(path string) bool {
	if !strings.HasPrefix(path, "repro/internal/") {
		return false
	}
	return !strings.HasPrefix(path, "repro/internal/lint")
}

// shardWorldPkgs are the packages that execute inside a single
// shard-world goroutine and must stay concurrency-free: the
// one-goroutine-per-shard-world rule is what lets chain state,
// executors, and protocol runtimes skip locks entirely.
var shardWorldPkgs = map[string]bool{
	"repro/internal/chain":     true,
	"repro/internal/miner":     true,
	"repro/internal/core":      true,
	"repro/internal/contracts": true,
	"repro/internal/protocol":  true,
}
