package core

import (
	"fmt"
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// TestAC3WNRandomCrashSchedulesNeverViolate is the repository's
// strongest safety property test: across many seeded runs, each
// participant crashes at a random time (possibly mid-protocol,
// possibly never) and recovers at a random later time. Whatever the
// schedule, all-or-nothing must hold at every observation point, and
// once every participant has recovered the AC2T must reach a terminal
// all-redeemed or all-refunded outcome (the commitment property).
func TestAC3WNRandomCrashSchedulesNeverViolate(t *testing.T) {
	const trials = 12
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("schedule-%d", trial), func(t *testing.T) {
			seed := uint64(9000 + trial*131)
			rng := sim.NewRNG(seed)

			b := xchain.NewBuilder(seed)
			alice := b.Participant("alice")
			bob := b.Participant("bob")
			carol := b.Participant("carol")
			ids := []chain.ID{"c0", "c1", "c2", "witness"}
			for _, id := range ids {
				b.Chain(xchain.DefaultChainSpec(id))
			}
			ps := []*xchain.Participant{alice, bob, carol}
			for i, p := range ps {
				b.Fund(p, ids[i], 1_000_000)
			}
			w, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.Ring(int64(seed),
				[]crypto.Address{alice.Addr(), bob.Addr(), carol.Addr()},
				10_000, []chain.ID{"c0", "c1", "c2"})
			if err != nil {
				t.Fatal(err)
			}
			r, err := New(w, Config{
				Graph:        g,
				Participants: ps,
				Initiator:    alice,
				WitnessChain: "witness",
				WitnessDepth: 2,
				AssetDepth:   2,
				AbortAfter:   45 * sim.Minute,
			})
			if err != nil {
				t.Fatal(err)
			}
			r.Start()

			// Random crash/recovery schedule per participant: crash
			// somewhere in the first 30 virtual minutes (or not at
			// all), recover 10–40 minutes later.
			for _, p := range ps {
				p := p
				if rng.Float64() < 0.25 {
					continue // this participant stays up
				}
				crashAt := sim.Time(rng.Int63n(int64(30 * sim.Minute)))
				downFor := 10*sim.Minute + sim.Time(rng.Int63n(int64(30*sim.Minute)))
				w.Sim.At(crashAt, func() {
					if !p.Crashed() {
						p.Crash()
					}
				})
				w.Sim.At(crashAt+downFor, func() {
					if p.Crashed() {
						p.Recover()
						r.Resume(p)
					}
				})
			}

			// Observe atomicity at intermediate points, not just the
			// end: a transient mixed state would also be a violation.
			for _, at := range []sim.Time{20 * sim.Minute, time1hr, 2 * time1hr} {
				w.RunUntil(at)
				if out := r.Grade(); out.AtomicityViolated() {
					t.Fatalf("atomicity violated at t=%v: %+v", at, out.Edges)
				}
			}

			// Everyone is up by now; the AC2T must settle terminally.
			w.RunUntil(4 * time1hr)
			w.StopMining()
			w.RunFor(sim.Minute)
			out := r.Grade()
			if out.AtomicityViolated() {
				t.Fatalf("atomicity violated at end: %+v", out.Edges)
			}
			if !out.Committed() && !out.Aborted() {
				t.Fatalf("AC2T stuck after full recovery: %+v (events %v)", out.Edges, r.Events())
			}
		})
	}
}

const time1hr = 1 * sim.Hour
