package bench

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// Complex reproduces Section 5.3 / Figure 7: AC2T graphs that the
// single-leader baseline structurally cannot execute — cyclic graphs
// that stay cyclic after removing any vertex (7a) and disconnected
// graphs (7b) — commit atomically under AC3WN.
func Complex(seed uint64) *Result {
	t := metrics.NewTable("Section 5.3 — complex AC2T graphs (Figure 7)",
		"graph", "|V|", "|E|", "cyclic", "connected", "single-leader feasible", "AC3WN outcome")
	ok := true

	type testcase struct {
		name  string
		build func(b *xchain.Builder) (*graph.Graph, []*xchain.Participant, error)
	}
	cases := []testcase{
		{
			name: "two-party swap (Figure 4)",
			build: func(b *xchain.Builder) (*graph.Graph, []*xchain.Participant, error) {
				alice, bob := b.Participant("alice"), b.Participant("bob")
				b.Chain(spec("c0"))
				b.Chain(spec("c1"))
				b.Chain(spec("witness"))
				b.Fund(alice, "c0", 1_000_000)
				b.Fund(bob, "c1", 1_000_000)
				g, err := graph.TwoParty(int64(seed), alice.Addr(), bob.Addr(), 10_000, "c0", 10_000, "c1")
				return g, []*xchain.Participant{alice, bob}, err
			},
		},
		{
			name: "cyclic, no feasible leader (Figure 7a)",
			build: func(b *xchain.Builder) (*graph.Graph, []*xchain.Participant, error) {
				ps := []*xchain.Participant{b.Participant("p0"), b.Participant("p1"), b.Participant("p2")}
				for _, id := range []chain.ID{"c0", "c1", "c2", "witness"} {
					b.Chain(spec(id))
				}
				for i, p := range ps {
					b.Fund(p, chain.ID(fmt.Sprintf("c%d", i)), 1_000_000)
					b.Fund(p, chain.ID(fmt.Sprintf("c%d", (i+1)%3)), 1_000_000)
				}
				g, err := graph.New(int64(seed),
					graph.Edge{From: ps[0].Addr(), To: ps[1].Addr(), Asset: 1_000, Chain: "c0"},
					graph.Edge{From: ps[1].Addr(), To: ps[2].Addr(), Asset: 1_000, Chain: "c1"},
					graph.Edge{From: ps[2].Addr(), To: ps[0].Addr(), Asset: 1_000, Chain: "c2"},
					graph.Edge{From: ps[0].Addr(), To: ps[2].Addr(), Asset: 1_000, Chain: "c1"},
					graph.Edge{From: ps[2].Addr(), To: ps[1].Addr(), Asset: 1_000, Chain: "c0"},
					graph.Edge{From: ps[1].Addr(), To: ps[0].Addr(), Asset: 1_000, Chain: "c2"},
				)
				return g, ps, err
			},
		},
		{
			name: "disconnected pairs (Figure 7b)",
			build: func(b *xchain.Builder) (*graph.Graph, []*xchain.Participant, error) {
				ps := []*xchain.Participant{
					b.Participant("p0"), b.Participant("p1"),
					b.Participant("p2"), b.Participant("p3"),
				}
				ids := []chain.ID{"c0", "c1", "c2", "c3", "witness"}
				for _, id := range ids {
					b.Chain(spec(id))
				}
				for i, p := range ps {
					b.Fund(p, ids[i], 1_000_000)
				}
				g, err := graph.New(int64(seed),
					graph.Edge{From: ps[0].Addr(), To: ps[1].Addr(), Asset: 1_000, Chain: "c0"},
					graph.Edge{From: ps[1].Addr(), To: ps[0].Addr(), Asset: 1_000, Chain: "c1"},
					graph.Edge{From: ps[2].Addr(), To: ps[3].Addr(), Asset: 1_000, Chain: "c2"},
					graph.Edge{From: ps[3].Addr(), To: ps[2].Addr(), Asset: 1_000, Chain: "c3"},
				)
				return g, ps, err
			},
		},
	}

	for i, tc := range cases {
		b := xchain.NewBuilder(seed + uint64(i)*37)
		g, ps, err := tc.build(b)
		if err != nil {
			return &Result{ID: "complex", Title: "complex graphs", Output: err.Error()}
		}
		w, err := b.Build()
		if err != nil {
			return &Result{ID: "complex", Title: "complex graphs", Output: err.Error()}
		}
		feasible, _ := g.HerlihyFeasible()
		_, out, err := runAC3WN(w, g, ps, "witness", 3*sim.Hour)
		outcome := "FAILED"
		if err == nil && out.Committed() && !out.AtomicityViolated() {
			outcome = "committed atomically"
		} else {
			ok = false
		}
		t.AddRow(tc.name, len(g.Participants), len(g.Edges),
			g.IsCyclic(), g.IsWeaklyConnected(), feasible, outcome)

		// Structural expectations from the paper.
		switch i {
		case 0:
			if !feasible {
				ok = false
			}
		case 1, 2:
			if feasible {
				ok = false // 7a and 7b must be out of the baseline's reach
			}
		}
	}
	t.Note("Nolan's and Herlihy's protocols need a leader whose removal leaves the graph acyclic, and a connected graph")
	t.Note("AC3WN commits any registered graph: the decision lives in SCw, not in the publishing order")
	return &Result{
		ID:     "complex",
		Title:  "cyclic and disconnected AC2T graphs (Figure 7)",
		Output: t.String(),
		OK:     ok,
	}
}
