// Package fees implements the monetary cost model of Section 6.2:
// miners charge a deployment fee fd per smart contract and a function
// call fee ffc per state-changing call, so Herlihy's protocol costs
// N·(fd+ffc) per AC2T while AC3WN costs (N+1)·(fd+ffc) — a relative
// overhead of 1/N for the coordinator contract SCw and its one state
// transition.
package fees

import "fmt"

// Schedule holds per-operation fees in US dollars. The defaults use
// the paper's quoted figures: Ryan [27] measured ≈$4 to deploy an
// SCw-sized contract at $300/ETH; the paper notes this is ≈$2 at the
// then-current $140/ETH.
type Schedule struct {
	DeployUSD float64 // fd
	CallUSD   float64 // ffc
	Label     string  // e.g. "ETH @ $300"
}

// The paper's two reference fee points.
//
//ac3:globalstate read-only paper constants; written once here, never mutated
var (
	ScheduleETH300 = Schedule{DeployUSD: 4.00, CallUSD: 4.00, Label: "ETH @ $300"}
	ScheduleETH140 = Schedule{DeployUSD: 2.00, CallUSD: 2.00, Label: "ETH @ $140"}
)

// Cost is a protocol's operation count and dollar cost for one AC2T.
type Cost struct {
	Protocol string
	Deploys  int
	Calls    int
	USD      float64
}

// Price computes the dollar cost of an operation count.
func (s Schedule) Price(deploys, calls int) float64 {
	return float64(deploys)*s.DeployUSD + float64(calls)*s.CallUSD
}

// HerlihyCost returns the baseline's cost for an AC2T with n edges:
// n deployments plus n redeem/refund calls.
func HerlihyCost(s Schedule, n int) Cost {
	return Cost{Protocol: "Herlihy", Deploys: n, Calls: n, USD: s.Price(n, n)}
}

// AC3WNCost returns AC3WN's cost for an AC2T with n edges: the same n
// asset contracts plus SCw's deployment and its one state-transition
// call.
func AC3WNCost(s Schedule, n int) Cost {
	return Cost{Protocol: "AC3WN", Deploys: n + 1, Calls: n + 1, USD: s.Price(n+1, n+1)}
}

// Overhead returns AC3WN's relative cost overhead versus the baseline
// for an AC2T with n edges. Analytically this is exactly 1/n.
func Overhead(n int) float64 {
	if n == 0 {
		return 0
	}
	return 1 / float64(n)
}

// MeasuredCost prices an operation count observed from a real run
// (the experiments feed on-chain counts here, so the table reflects
// the implementation rather than just the formula).
func MeasuredCost(s Schedule, protocol string, deploys, calls int) Cost {
	return Cost{Protocol: protocol, Deploys: deploys, Calls: calls, USD: s.Price(deploys, calls)}
}

// String renders a cost row.
func (c Cost) String() string {
	return fmt.Sprintf("%s: %d deploys + %d calls = $%.2f", c.Protocol, c.Deploys, c.Calls, c.USD)
}
