package spv

import (
	"errors"
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
)

func TestFollowTracksChainGrowth(t *testing.T) {
	f := newFixture(t, 3)
	ln, err := Follow(f.view)
	if err != nil {
		t.Fatal(err)
	}
	// Seeded with the existing history.
	if ln.Tip().Hash() != f.view.Tip().Header.Hash() {
		t.Fatal("follower not seeded to the view's tip")
	}
	// Future blocks arrive through the notification feed, no rescan.
	for i := 0; i < 4; i++ {
		f.mine()
		if ln.Tip().Hash() != f.view.Tip().Header.Hash() {
			t.Fatalf("follower lost the tip after block %d", i)
		}
	}
	if ln.HeaderCount() != int(f.view.Height())+1 {
		t.Fatalf("follower holds %d headers, view height %d", ln.HeaderCount(), f.view.Height())
	}
}

func TestFollowTracksReorg(t *testing.T) {
	f := newFixture(t, 1) // canonical: genesis <- b1(tx) <- b2
	ln, err := Follow(f.view)
	if err != nil {
		t.Fatal(err)
	}
	// Build a longer competing branch on a twin view with the same
	// genesis and let the followed view adopt it.
	alt, err := chain.NewChain(f.view.Params(), nil, chain.GenesisAlloc{f.key.Addr: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if alt.Genesis().Hash() != f.view.Genesis().Hash() {
		t.Fatal("twin view disagrees on genesis")
	}
	for i := 0; i < 3; i++ {
		b, _, _ := alt.BuildBlock(f.key.Addr, f.now+forkTime(i), nil)
		b.Header.Seal(f.rng.Uint64())
		if _, err := alt.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if _, err := f.view.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if f.view.Reorgs != 1 {
		t.Fatalf("view Reorgs = %d, want 1", f.view.Reorgs)
	}
	if ln.Tip().Hash() != f.view.Tip().Header.Hash() {
		t.Fatal("follower did not switch to the winning fork")
	}
	// The follower's canonical index must validate inclusion against
	// the new branch, not the stale one: the old tx's block is no
	// longer canonical.
	b, _, found := f.view.FindTx(f.tx.ID())
	if found {
		t.Fatalf("tx unexpectedly canonical after reorg (block %s)", b.Hash())
	}
}

// TestFollowSurfacesDesync is the regression test for the swallowed
// AddHeader error: a follower anchored at a recent checkpoint that
// sees a reorg reaching below its anchor cannot connect the adopted
// branch — that failure used to vanish inside the tip-change callback,
// leaving the follower silently stale forever. It must now be counted,
// retained, and delivered to the error hook.
func TestFollowSurfacesDesync(t *testing.T) {
	f := newFixture(t, 3) // canonical: genesis <- b1(tx) <- b2 <- b3 <- b4
	cp, ok := f.view.CanonicalAt(2)
	if !ok {
		t.Fatal("no canonical block at height 2")
	}
	fl, err := FollowFrom(f.view, cp.Hash())
	if err != nil {
		t.Fatal(err)
	}
	if fl.Tip().Hash() != f.view.Tip().Header.Hash() {
		t.Fatal("checkpoint follower not seeded to the view's tip")
	}
	var hooked []error
	fl.OnError(func(e error) { hooked = append(hooked, e) })

	// A longer branch forking at genesis — deeper than the follower's
	// anchor at height 2.
	alt, err := chain.NewChain(f.view.Params(), nil, chain.GenesisAlloc{f.key.Addr: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		b, _, _ := alt.BuildBlock(f.key.Addr, forkTime(i), nil)
		b.Header.Seal(f.rng.Uint64())
		if _, err := alt.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if _, err := f.view.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if f.view.Reorgs != 1 {
		t.Fatalf("view Reorgs = %d, want 1", f.view.Reorgs)
	}
	if f.view.MaxReorgDepth < 4 {
		t.Fatalf("view MaxReorgDepth = %d, want >= 4", f.view.MaxReorgDepth)
	}
	if fl.Synced() || fl.Desyncs == 0 {
		t.Fatal("deep reorg below the anchor did not surface as a desync")
	}
	if fl.LastErr == nil || !errors.Is(fl.LastErr, ErrUnknownHeader) {
		t.Fatalf("LastErr = %v, want ErrUnknownHeader", fl.LastErr)
	}
	if len(hooked) == 0 {
		t.Fatal("error hook never invoked")
	}
	// The stale follower keeps its old tip — visible, not pretending.
	if fl.Tip().Hash() == f.view.Tip().Header.Hash() {
		t.Fatal("desynced follower claims the view's tip")
	}
}

// TestFollowFromRejectsNonCanonicalCheckpoint pins the anchor
// validation.
func TestFollowFromRejectsNonCanonicalCheckpoint(t *testing.T) {
	f := newFixture(t, 1)
	if _, err := FollowFrom(f.view, crypto.Hash{0xde, 0xad}); err == nil {
		t.Fatal("FollowFrom accepted an unknown checkpoint")
	}
}

// forkTime spaces fork-block timestamps.
func forkTime(i int) int64 { return int64(i+1) * 1000 }
