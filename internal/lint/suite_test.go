package lint_test

import (
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/analysistest"
)

func fixture(name string) string {
	return filepath.Join("testdata", "src", name)
}

// Each analyzer runs over its golden package, loaded under a synthetic
// in-scope import path; the `// want` comments in the fixture are the
// expected findings, and annotated sites must stay silent.

func TestWallclock(t *testing.T) {
	analysistest.Run(t, fixture("wallclock"), "repro/internal/wallclocktest", lint.Wallclock)
}

func TestGlobalRand(t *testing.T) {
	analysistest.Run(t, fixture("globalrand"), "repro/internal/grtest", lint.GlobalRand)
}

func TestMapOrder(t *testing.T) {
	analysistest.Run(t, fixture("maporder"), "repro/internal/motest", lint.MapOrder)
}

func TestShardWorld(t *testing.T) {
	analysistest.Run(t, fixture("shardworld"), "repro/internal/chain", lint.ShardWorld)
}

func TestGlobalState(t *testing.T) {
	analysistest.Run(t, fixture("globalstate"), "repro/internal/gstest", lint.GlobalState)
}

// TestScopeExemptions loads a fixture that violates every rule at once
// under out-of-scope import paths — a cmd/* front-end and the lint
// suite's own subtree — and asserts the whole suite stays silent. The
// fixture has no want comments, so any finding fails the test.
func TestScopeExemptions(t *testing.T) {
	for _, path := range []string{
		"repro/cmd/scopetest",
		"repro/internal/lint/scopetest",
	} {
		for _, a := range lint.All {
			analysistest.Run(t, fixture("scope"), path, a)
		}
	}
}

// TestShardWorldOnlyInShardWorldPackages re-runs the concurrency-heavy
// scope fixture under a deterministic-but-not-shard-world path: the
// other analyzers fire there (which the golden packages already
// cover), but shardworld specifically must not.
func TestShardWorldOnlyInShardWorldPackages(t *testing.T) {
	analysistest.Run(t, fixture("scope"), "repro/internal/enginetestfixture", lint.ShardWorld)
}

// TestSuiteOrder pins All's composition: five analyzers, stable
// reporting order, unique names.
func TestSuiteOrder(t *testing.T) {
	wantNames := []string{"wallclock", "globalrand", "maporder", "shardworld", "globalstate"}
	if len(lint.All) != len(wantNames) {
		t.Fatalf("lint.All has %d analyzers, expected %d", len(lint.All), len(wantNames))
	}
	seen := map[string]bool{}
	for i, a := range lint.All {
		if a.Name != wantNames[i] {
			t.Errorf("lint.All[%d] = %q, expected %q", i, a.Name, wantNames[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %q has no Doc", a.Name)
		}
		if a.Run == nil {
			t.Errorf("analyzer %q has no Run", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
}

var _ = []*analysis.Analyzer(lint.All) // the suite is typed as the shared analysis API
