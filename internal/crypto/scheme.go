package crypto

import (
	"encoding/binary"
	"fmt"
)

// Scheme is the commitment-scheme primitive of Section 3: assets are
// locked in a contract under an instance (the lock); revealing a
// matching Secret (the key) unlocks them. The paper instantiates three
// shapes, all implemented in this repository:
//
//   - HashLock: h = H(s), the Nolan/Herlihy hashlock (this package).
//   - Trusted-witness signatures over (ms(D), RD|RF) — AC3TW,
//     implemented by SigLock in this package.
//   - Witness-chain state evidence — AC3WN, implemented by the
//     contracts package on top of spv evidence (the "secret" there is
//     a chain proof, so it does not flow through this interface).
type Scheme interface {
	// Verify reports whether secret opens this commitment instance.
	Verify(secret []byte) bool
	// Describe names the scheme for diagnostics.
	Describe() string
}

// HashLock is the classic hashlock commitment: Lock = H(secret).
type HashLock struct {
	Lock Hash
}

// NewHashLock commits to secret and returns the lock.
func NewHashLock(secret []byte) HashLock {
	return HashLock{Lock: Sum(secret)}
}

// Verify reports whether H(secret) == Lock.
func (h HashLock) Verify(secret []byte) bool { return Sum(secret) == h.Lock }

// Describe implements Scheme.
func (h HashLock) Describe() string { return fmt.Sprintf("hashlock(%s)", h.Lock) }

// Purpose tags what a witness signature authorizes, mirroring the
// paper's (ms(D), RD) and (ms(D), RF) message pairs.
type Purpose byte

// The two mutually exclusive decisions a witness can sign.
const (
	PurposeRedeem Purpose = 1 // RD: commit the AC2T, all contracts redeem
	PurposeRefund Purpose = 2 // RF: abort the AC2T, all contracts refund
)

// String names the purpose.
func (p Purpose) String() string {
	switch p {
	case PurposeRedeem:
		return "RD"
	case PurposeRefund:
		return "RF"
	default:
		return fmt.Sprintf("purpose(%d)", byte(p))
	}
}

// WitnessMessage builds the canonical byte message a trusted witness
// signs for a given multisigned-graph digest and purpose. Both AC3TW's
// Trent and the contracts that verify his signatures must agree on
// this encoding.
func WitnessMessage(msDigest Hash, p Purpose) []byte {
	msg := make([]byte, 0, HashSize+9)
	msg = append(msg, "ac3tw/v1"...)
	msg = append(msg, byte(p))
	msg = append(msg, msDigest[:]...)
	return msg
}

// SigLock is the AC3TW commitment scheme: the pair (ms(D), PK_T) of
// Algorithm 2. A secret is Trent's signature over WitnessMessage.
type SigLock struct {
	MSDigest   Hash    // digest of the multisigned graph ms(D)
	WitnessPub Address // Trent's address (derived from PK_T)
	Purpose    Purpose // RD or RF
}

// VerifySig reports whether sig is a valid witness signature for this
// lock: correct message, valid signature, and signed by the trusted
// witness identity the lock was created with.
func (l SigLock) VerifySig(sig Signature) bool {
	if !sig.Verify(WitnessMessage(l.MSDigest, l.Purpose)) {
		return false
	}
	return sig.Signer() == l.WitnessPub
}

// Verify implements Scheme over an encoded signature (EncodeSignature).
func (l SigLock) Verify(secret []byte) bool {
	sig, err := DecodeSignature(secret)
	if err != nil {
		return false
	}
	return l.VerifySig(sig)
}

// Describe implements Scheme.
func (l SigLock) Describe() string {
	return fmt.Sprintf("siglock(ms=%s, witness=%s, %s)", l.MSDigest, l.WitnessPub, l.Purpose)
}

// EncodeSignature serializes a Signature for use as a Scheme secret.
func EncodeSignature(sig Signature) []byte {
	out := make([]byte, 0, 8+len(sig.Pub)+len(sig.Sig))
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(sig.Pub)))
	out = append(out, n[:]...)
	out = append(out, sig.Pub...)
	binary.BigEndian.PutUint32(n[:], uint32(len(sig.Sig)))
	out = append(out, n[:]...)
	out = append(out, sig.Sig...)
	return out
}

// DecodeSignature reverses EncodeSignature.
func DecodeSignature(b []byte) (Signature, error) {
	var sig Signature
	if len(b) < 4 {
		return sig, fmt.Errorf("crypto: signature encoding too short")
	}
	n := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if uint32(len(b)) < n+4 {
		return sig, fmt.Errorf("crypto: truncated public key")
	}
	sig.Pub = append([]byte(nil), b[:n]...)
	b = b[n:]
	m := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if uint32(len(b)) != m {
		return sig, fmt.Errorf("crypto: truncated signature body")
	}
	sig.Sig = append([]byte(nil), b...)
	return sig, nil
}
