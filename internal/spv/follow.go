package spv

import (
	"fmt"

	"repro/internal/chain"
)

// Follow attaches a light node to a full chain view through the
// chain's tip-change notification feed: the light node ingests the
// view's current canonical headers once, then tracks every future tip
// change — including reorgs, where the connected branch's headers
// re-link the canonical index along the adopted fork. This replaces
// the pull pattern (re-scanning HeadersFrom on a timer) with the same
// subscription bus the rest of the system rides; a quiescent chain
// costs the follower nothing. A view is cheap to follow by design:
// block bodies and states live in the network's shared chain.Executor,
// so following any replica observes the same (once-executed) blocks.
func Follow(view *chain.Chain) (*LightNode, error) {
	ln := NewLightNode(view.Genesis().Header)
	hdrs, ok := view.HeadersFrom(view.Genesis().Hash())
	if !ok {
		return nil, fmt.Errorf("spv: view has no canonical history")
	}
	for _, h := range hdrs {
		if err := ln.AddHeader(h); err != nil {
			return nil, fmt.Errorf("spv: seeding follower: %w", err)
		}
	}
	view.OnTipChange(func(ev chain.TipEvent) {
		for _, b := range ev.Connected {
			// Connected branches arrive oldest-first and root at an
			// already-known canonical block, so parents always
			// resolve; AddHeader re-verifies the proof of work and
			// handles the longest-chain switch itself.
			_ = ln.AddHeader(b.Header)
		}
	})
	return ln, nil
}
