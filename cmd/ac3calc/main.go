// Command ac3calc is the Section 6.3 witness-network chooser: given
// the dollar value of the assets an AC2T exchanges, it prints — for
// each candidate witness network — the minimum confirmation depth d
// satisfying d > Va·dh/Ch, the cost of a 51% attack sustained that
// long, the wait time d implies, and the residual fork-attack success
// probability for a strong (40%) rented adversary.
//
// Usage:
//
//	ac3calc [-value USD]
package main

import (
	"flag"
	"fmt"

	"repro/internal/attack"
	"repro/internal/metrics"
)

func main() {
	value := flag.Float64("value", 1_000_000, "asset value at stake in USD (Va)")
	flag.Parse()

	t := metrics.NewTable(
		fmt.Sprintf("Witness-network choice for Va = $%.0f (d > Va·dh/Ch, Section 6.3)", *value),
		"Witness network", "Ch ($/h)", "dh (blk/h)", "min depth d", "attack cost at d", "wait at d", "P(fork wins), q=0.40")
	for _, n := range attack.Crypto51Snapshot {
		d := attack.MinDepth(*value, n)
		cost := attack.AttackCostUSD(d, n)
		waitHours := float64(d) / n.BlocksPerHour
		p := attack.SuccessProbabilityExact(0.40, d+1)
		t.AddRow(
			n.Name,
			fmt.Sprintf("%.0f", n.HourlyCostUSD),
			n.BlocksPerHour,
			d,
			fmt.Sprintf("$%.0f", cost),
			fmt.Sprintf("%.1f h", waitHours),
			fmt.Sprintf("%.4f", p),
		)
	}
	t.Note("paper's example: Va=$1M on Bitcoin ⇒ d > 1M·6/300K = 20")
	t.Note("attack costs are the crypto51.app snapshot cited by the paper [7]")
	fmt.Print(t)
}
