package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Hist is a fixed-bucket histogram over int64 samples (virtual
// milliseconds, counts, fees — anything integral), safe for
// concurrent use. Integer arithmetic keeps aggregation deterministic
// regardless of the order concurrent observers interleave in, which
// is what lets the engine promise byte-identical aggregates across
// runs while still collecting from many shard goroutines at once.
type Hist struct {
	mu     sync.Mutex
	bounds []int64  // ascending inclusive upper bounds; +Inf implicit
	counts []uint64 // len(bounds)+1
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// NewHist creates a histogram with the given ascending inclusive
// upper bounds. A sample v lands in the first bucket with v <=
// bound; samples above every bound land in the implicit overflow
// bucket. NewHist panics on empty or unsorted bounds.
func NewHist(bounds ...int64) *Hist {
	if len(bounds) == 0 {
		panic("metrics: NewHist with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: NewHist bounds not strictly ascending")
		}
	}
	return &Hist{
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.mu.Lock()
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// HistSnapshot is an immutable, JSON-friendly view of a histogram.
type HistSnapshot struct {
	// Bounds are the inclusive upper bounds; the final count row is
	// the overflow bucket.
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Min    int64    `json:"min"`
	Max    int64    `json:"max"`
}

// Mean returns the arithmetic mean of the observed samples (0 when
// empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Merge folds other into h. Both histograms must share identical
// bucket bounds — they do when built from the same constructor, which
// is how the engine folds per-shard histograms in shard order. Merge
// panics on a bounds mismatch (a programming error, not data).
func (h *Hist) Merge(other *Hist) {
	if other == nil {
		return
	}
	os := other.Snapshot()
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(os.Bounds) != len(h.bounds) {
		panic("metrics: Merge with mismatched bucket bounds")
	}
	for i, b := range h.bounds {
		if os.Bounds[i] != b {
			panic("metrics: Merge with mismatched bucket bounds")
		}
	}
	if os.Count == 0 {
		return
	}
	for i, c := range os.Counts {
		h.counts[i] += c
	}
	if h.n == 0 || os.Min < h.min {
		h.min = os.Min
	}
	if h.n == 0 || os.Max > h.max {
		h.max = os.Max
	}
	h.n += os.Count
	h.sum += os.Sum
}

// Snapshot returns a consistent copy of the histogram's state.
func (h *Hist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// Quantile estimates the q-quantile (0 < q <= 1) by integer
// interpolation within the bucket holding the rank-⌈q·n⌉ sample,
// clamped to the observed [Min, Max] so estimates never stray outside
// the data. Deterministic: pure integer arithmetic over the counts.
// Returns 0 on an empty histogram.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	// rank = ceil(q * n), 1-based.
	rank := uint64(q * float64(s.Count))
	if float64(rank) < q*float64(s.Count) {
		rank++
	}
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		if cum+c < rank {
			cum += c
			continue
		}
		// The rank-th sample lies in bucket i. Interpolate linearly
		// between the bucket's bounds by the rank's position within it.
		lo := s.Min
		if i > 0 {
			lo = s.Bounds[i-1] + 1
		}
		hi := s.Max
		if i < len(s.Bounds) && s.Bounds[i] < hi {
			hi = s.Bounds[i]
		}
		if lo < s.Min {
			lo = s.Min
		}
		if hi < lo {
			hi = lo
		}
		// position within the bucket: 0 for the first sample, c-1 for
		// the last; integer interpolation keeps this deterministic.
		pos := rank - cum - 1
		if c > 1 {
			return lo + int64(uint64(hi-lo)*pos/(c-1))
		}
		return lo + (hi-lo)/2
	}
	return s.Max
}

// String renders the histogram as an aligned bucket table.
func (s HistSnapshot) String() string {
	var b strings.Builder
	for i, c := range s.Counts {
		var label string
		if i < len(s.Bounds) {
			label = fmt.Sprintf("<= %d", s.Bounds[i])
		} else {
			label = fmt.Sprintf(" > %d", s.Bounds[len(s.Bounds)-1])
		}
		fmt.Fprintf(&b, "%-16s %d\n", label, c)
	}
	fmt.Fprintf(&b, "count=%d sum=%d min=%d max=%d\n", s.Count, s.Sum, s.Min, s.Max)
	return b.String()
}
