// Golden fixture for the shardworld analyzer. Loaded by the tests as
// "repro/internal/chain" — one of the five shard-world packages — so
// the one-goroutine-per-shard-world rule applies. The scope fixture
// loads concurrency-using code under a non-shard-world path to prove
// the analyzer stays quiet elsewhere.
package shardworldtest

import "sync" // want `import "sync" in shard-world package`

type guarded struct {
	mu sync.Mutex
	ch chan int // want `channel type in shard-world package`
}

func (g *guarded) spawn() {
	go g.mu.Unlock() // want `go statement in shard-world package`
}

func send(c chan<- int) { // want `channel type in shard-world package`
	c <- 1 // want `channel send in shard-world package`
}

func recv(c <-chan int) int { // want `channel type in shard-world package`
	return <-c // want `channel receive in shard-world package`
}

func idle() {
	select {} // want `select statement in shard-world package`
}

// annotated exercises the escape hatch: a doc-comment directive covers
// the declaration.
//
//ac3:shardworld fixture: deliberate exception, documented at the site
func annotated() {
	go idle()
}
