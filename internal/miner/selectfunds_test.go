package miner

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// TestSelectFundsCanonicalOrder is the regression test for map-order
// funding selection: SelectFunds used to pick inputs while ranging
// over the wallet's UTXO map, so the moment a wallet held more than
// one spendable output the chosen inputs — and with them the
// transaction's bytes, its id, and any contract address derived from
// it — depended on the runtime's per-process map seed. Selection must
// walk candidates in canonical OutPoint order.
//
// The multi-UTXO wallet is the sole miner's own: after a few virtual
// minutes of solo mining it holds one coinbase output per block.
func TestSelectFundsCanonicalOrder(t *testing.T) {
	pick := func() []chain.TxIn {
		s, net, _ := testNet(t, 91, 1, p2p.LatencyModel{Base: 1})
		net.Start()
		s.RunUntil(5 * sim.Minute)
		c := NewClient(net, 0, net.Node(0).Key)
		// BlockReward is 50, so this spans several coinbase outputs.
		ins, _, err := c.SelectFunds(120)
		if err != nil {
			t.Fatal(err)
		}
		return ins
	}

	ins := pick()
	if len(ins) < 3 {
		t.Fatalf("selected %d inputs, expected at least 3 coinbase outputs", len(ins))
	}
	for i := 1; i < len(ins); i++ {
		if ins[i-1].Prev.Compare(ins[i].Prev) >= 0 {
			t.Fatalf("inputs out of canonical order at %d: %v then %v", i, ins[i-1].Prev, ins[i].Prev)
		}
	}

	// An identically-seeded run builds an identical chain but distinct
	// map instances with their own iteration order; the selection must
	// come out the same anyway.
	again := pick()
	if len(again) != len(ins) {
		t.Fatalf("re-run selected %d inputs, first run %d", len(again), len(ins))
	}
	for i := range ins {
		if ins[i].Prev != again[i].Prev {
			t.Fatalf("re-run input %d = %v, first run %v", i, again[i].Prev, ins[i].Prev)
		}
	}
}
