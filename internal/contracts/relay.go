package contracts

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/spv"
	"repro/internal/vm"
)

// RelayParams configure a HeaderRelay: which transaction in which
// validated chain the contract waits for, anchored at which stable
// block, at what confirmation depth.
type RelayParams struct {
	ValidatedChain chain.ID
	// Checkpoint is the encoded stable-block header of the validated
	// chain (the red rectangle inside SC in Figure 6).
	Checkpoint []byte
	// TargetTx is the transaction of interest (TX1 in Figure 6).
	TargetTx crypto.Hash
	// MinDepth is d.
	MinDepth int
}

// RelayState is the two-state machine of Figure 6.
type RelayState byte

// Relay states.
const (
	RelayS1 RelayState = iota // initial
	RelayS2                   // evidence accepted
)

// HeaderRelay is the standalone Section 4.3 validator contract
// (Figure 6): it stores a stable-block header of another blockchain
// and flips S1→S2 when submitted evidence proves the target
// transaction occurred after that block and is buried d deep. The
// AC3WN contracts embed the same logic; this contract exposes it
// directly, as a cross-chain building block in its own right (and for
// the evidence-strategy ablation).
type HeaderRelay struct {
	ValidatedChain chain.ID
	Checkpoint     []byte
	TargetTx       crypto.Hash
	MinDepth       int
	State          RelayState

	// Verified counts accepted evidence submissions (at most 1).
	Verified int
}

// Type implements vm.Contract.
func (r *HeaderRelay) Type() string { return TypeHeaderRelay }

// Init stores the anchor.
func (r *HeaderRelay) Init(ctx *vm.Ctx, params []byte) error {
	var p RelayParams
	if err := vm.DecodeGob(params, &p); err != nil {
		return fmt.Errorf("relay: params: %w", err)
	}
	if _, err := chain.DecodeHeader(p.Checkpoint); err != nil {
		return fmt.Errorf("relay: checkpoint: %w", err)
	}
	if p.MinDepth < 0 {
		return errors.New("relay: negative depth")
	}
	r.ValidatedChain = p.ValidatedChain
	r.Checkpoint = p.Checkpoint
	r.TargetTx = p.TargetTx
	r.MinDepth = p.MinDepth
	r.State = RelayS1
	return nil
}

// Call handles submit_evidence (labeled 6 in Figure 6).
func (r *HeaderRelay) Call(ctx *vm.Ctx, fn string, args []byte) error {
	if fn != FnSubmitEvidence {
		return vm.ErrUnknownFunction(TypeHeaderRelay, fn)
	}
	if r.State != RelayS1 {
		return errors.New("relay: already validated")
	}
	ev, err := spv.Decode(args)
	if err != nil {
		return fmt.Errorf("relay: %w", err)
	}
	if ev.ChainID != r.ValidatedChain {
		return fmt.Errorf("relay: evidence from %s, want %s", ev.ChainID, r.ValidatedChain)
	}
	checkpoint, err := chain.DecodeHeader(r.Checkpoint)
	if err != nil {
		return fmt.Errorf("relay: stored checkpoint corrupt: %w", err)
	}
	tx, err := ev.Verify(checkpoint, r.MinDepth)
	if err != nil {
		return fmt.Errorf("relay: %w", err)
	}
	if tx.ID() != r.TargetTx {
		return fmt.Errorf("relay: proven tx %s is not the target %s", tx.ID(), r.TargetTx)
	}
	r.State = RelayS2
	r.Verified++
	return nil
}

// Clone implements vm.Contract.
func (r *HeaderRelay) Clone() vm.Contract {
	cp := *r
	cp.Checkpoint = append([]byte(nil), r.Checkpoint...)
	return &cp
}
