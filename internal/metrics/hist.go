package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Hist is a fixed-bucket histogram over int64 samples (virtual
// milliseconds, counts, fees — anything integral), safe for
// concurrent use. Integer arithmetic keeps aggregation deterministic
// regardless of the order concurrent observers interleave in, which
// is what lets the engine promise byte-identical aggregates across
// runs while still collecting from many shard goroutines at once.
type Hist struct {
	mu     sync.Mutex
	bounds []int64  // ascending inclusive upper bounds; +Inf implicit
	counts []uint64 // len(bounds)+1
	n      uint64
	sum    int64
	min    int64
	max    int64
}

// NewHist creates a histogram with the given ascending inclusive
// upper bounds. A sample v lands in the first bucket with v <=
// bound; samples above every bound land in the implicit overflow
// bucket. NewHist panics on empty or unsorted bounds.
func NewHist(bounds ...int64) *Hist {
	if len(bounds) == 0 {
		panic("metrics: NewHist with no bounds")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: NewHist bounds not strictly ascending")
		}
	}
	return &Hist{
		bounds: append([]int64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Observe records one sample.
func (h *Hist) Observe(v int64) {
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.mu.Lock()
	h.counts[i]++
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
	h.sum += v
	h.mu.Unlock()
}

// HistSnapshot is an immutable, JSON-friendly view of a histogram.
type HistSnapshot struct {
	// Bounds are the inclusive upper bounds; the final count row is
	// the overflow bucket.
	Bounds []int64  `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    int64    `json:"sum"`
	Min    int64    `json:"min"`
	Max    int64    `json:"max"`
}

// Mean returns the arithmetic mean of the observed samples (0 when
// empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Snapshot returns a consistent copy of the histogram's state.
func (h *Hist) Snapshot() HistSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.n,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
}

// String renders the histogram as an aligned bucket table.
func (s HistSnapshot) String() string {
	var b strings.Builder
	for i, c := range s.Counts {
		var label string
		if i < len(s.Bounds) {
			label = fmt.Sprintf("<= %d", s.Bounds[i])
		} else {
			label = fmt.Sprintf(" > %d", s.Bounds[len(s.Bounds)-1])
		}
		fmt.Fprintf(&b, "%-16s %d\n", label, c)
	}
	fmt.Fprintf(&b, "count=%d sum=%d min=%d max=%d\n", s.Count, s.Sum, s.Min, s.Max)
	return b.String()
}
