// Package metrics provides the small result-collection and
// text-rendering layer the benchmark harness uses to print
// paper-style tables and series: aligned columns for tables (Table 1,
// the cost and witness-choice tables) and x/y series for figures
// (Figures 8–10).
package metrics

import (
	"fmt"
	"strings"
	"sync"
)

// All mutating and rendering methods in this package are safe for
// concurrent use: the engine's collector aggregates results from many
// shard goroutines into shared tables, figures and histograms, so
// every container guards its state with a mutex. Rendering takes the
// same lock and therefore sees a consistent snapshot.

// Table is an aligned text table.
type Table struct {
	mu      sync.Mutex
	Title   string
	Columns []string
	Rows    [][]string
	// Notes are printed under the table (provenance, paper row).
	Notes []string
}

// NewTable starts a table.
func NewTable(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row; values are rendered with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = trimFloat(x)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.mu.Lock()
	t.Rows = append(t.Rows, row)
	t.mu.Unlock()
}

// Note appends a footnote.
func (t *Table) Note(format string, args ...any) {
	note := fmt.Sprintf(format, args...)
	t.mu.Lock()
	t.Notes = append(t.Notes, note)
	t.mu.Unlock()
}

// trimFloat renders floats compactly.
func trimFloat(f float64) string {
	s := fmt.Sprintf("%.4f", f)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Series is a named sequence of (x, y) points — one line of a figure.
type Series struct {
	mu     sync.Mutex
	Name   string
	Points []Point
}

// Point is one figure sample.
type Point struct {
	X, Y float64
}

// Add appends a point.
func (s *Series) Add(x, y float64) {
	s.mu.Lock()
	s.Points = append(s.Points, Point{X: x, Y: y})
	s.mu.Unlock()
}

// points returns a consistent snapshot for rendering.
func (s *Series) points() []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Point(nil), s.Points...)
}

// Figure is a set of series sharing axes.
type Figure struct {
	mu     sync.Mutex
	Title  string
	XLabel string
	YLabel string
	Series []*Series
}

// NewFigure starts a figure.
func NewFigure(title, xlabel, ylabel string) *Figure {
	return &Figure{Title: title, XLabel: xlabel, YLabel: ylabel}
}

// AddSeries creates and attaches a new series.
func (f *Figure) AddSeries(name string) *Series {
	s := &Series{Name: name}
	f.mu.Lock()
	f.Series = append(f.Series, s)
	f.mu.Unlock()
	return s
}

// String renders the figure as a table of x vs per-series y — the
// exact numbers a plotting script would consume.
func (f *Figure) String() string {
	f.mu.Lock()
	series := append([]*Series(nil), f.Series...)
	title, xlabel, ylabel := f.Title, f.XLabel, f.YLabel
	f.mu.Unlock()
	cols := []string{xlabel}
	snapshots := make([][]Point, len(series))
	for i, s := range series {
		cols = append(cols, s.Name)
		snapshots[i] = s.points()
	}
	t := NewTable(fmt.Sprintf("%s  (y: %s)", title, ylabel), cols...)
	// Collect the union of x values in first-series order.
	seen := make(map[float64]bool)
	var xs []float64
	for _, pts := range snapshots {
		for _, p := range pts {
			if !seen[p.X] {
				seen[p.X] = true
				xs = append(xs, p.X)
			}
		}
	}
	for _, x := range xs {
		row := []any{trimFloat(x)}
		for _, pts := range snapshots {
			cell := ""
			for _, p := range pts {
				if p.X == x {
					cell = trimFloat(p.Y)
					break
				}
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t.String()
}

// Timeline renders labeled events as a simple time-ordered listing
// (the textual form of Figures 8 and 9).
type Timeline struct {
	mu     sync.Mutex
	Title  string
	Unit   string // e.g. "Δ" or "s"
	Events []TimelineEvent
}

// TimelineEvent is one timeline entry.
type TimelineEvent struct {
	At    float64
	Label string
}

// Add appends an event.
func (tl *Timeline) Add(at float64, label string) {
	tl.mu.Lock()
	tl.Events = append(tl.Events, TimelineEvent{At: at, Label: label})
	tl.mu.Unlock()
}

// String renders the timeline.
func (tl *Timeline) String() string {
	tl.mu.Lock()
	defer tl.mu.Unlock()
	var b strings.Builder
	if tl.Title != "" {
		fmt.Fprintf(&b, "%s\n", tl.Title)
	}
	for _, e := range tl.Events {
		fmt.Fprintf(&b, "  t=%8s%s  %s\n", trimFloat(e.At), tl.Unit, e.Label)
	}
	return b.String()
}
