// Package batch implements witness-side decision batching: instead of
// one witness-chain transaction per AC2T decision, a Coordinator
// collects the decisions that arrive within a virtual-time window,
// commits the canonical-ordered set under one merkle root, gathers an
// m-of-n threshold attestation from the witness quorum over that root,
// and publishes a single commit_batch transaction (the Celestia
// QGB-style data commitment borrowed via SNIPPETS.md). Participants
// then unlock asset contracts with membership proofs against the
// committed root — per-AC2T work leaves the witness chain.
//
// The Coordinator models the witness quorum's aggregator the way
// core.Trent models the trusted witness: an in-process actor on the
// shared simulator with its own chain client. Witness-side evidence
// verification (Algorithm 3's VerifyContracts) moves off-chain into
// the quorum — on-chain, miners verify only canonical order, the
// root, the threshold attestation, and conflict-freedom against the
// batch contract's decision ledger.
package batch

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/miner"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/xchain"
)

// Config parameterizes a Coordinator.
type Config struct {
	// Window is the collection window: a batch is published Window
	// after its first pending decision arrived.
	Window sim.Time
	// Witnesses is the quorum size n, Threshold the attestation
	// quorum m. Defaults: 4 and 3 (a 2/3+ majority).
	Witnesses int
	Threshold int
	// StableDepth is how deep a published batch must be buried before
	// the Coordinator stops watching it for reorgs.
	StableDepth int
	// OnEvent, when set, receives one-shot diagnostic labels (batch
	// published / orphaned-republished).
	OnEvent func(label string)
}

// trackedBatch is a published commitment not yet buried StableDepth.
type trackedBatch struct {
	tx       *chain.Tx
	seen     bool // observed on the canonical chain at least once
	reported bool // one-shot orphan event emitted
	lastPush sim.Time
}

// Coordinator batches AC2T decisions into merkle-committed,
// threshold-attested witness transactions. All methods must run on
// the simulator goroutine (like every actor in this codebase).
type Coordinator struct {
	cfg      Config
	s        *sim.Sim
	client   *miner.Client
	keys     []*crypto.KeyPair
	addrs    []crypto.Address
	contract crypto.Address

	pending    map[crypto.Address]contracts.WitnessState
	decided    map[crypto.Address]contracts.WitnessState
	tracked    map[crypto.Hash]*trackedBatch
	flushArmed bool
	sub        *miner.Sub
	closed     bool

	// Deterministic counters, read by the engine at shard end.
	BatchesPublished int
	BatchDecisions   int
	Republishes      int
	BytesPublished   int
}

// New creates a Coordinator on the world's witness chain with a
// deterministic witness quorum derived from seed, deploys the batch
// contract, and starts watching for reorgs. The contract address is
// available immediately (before confirmation) for wiring into asset
// contract parameters.
func New(w *xchain.World, witnessChain chain.ID, seed uint64, cfg Config) (*Coordinator, error) {
	if cfg.Witnesses <= 0 {
		cfg.Witnesses = 4
	}
	if cfg.Threshold <= 0 {
		cfg.Threshold = (2*cfg.Witnesses)/3 + 1
	}
	if cfg.Threshold > cfg.Witnesses {
		return nil, fmt.Errorf("batch: threshold %d above quorum size %d", cfg.Threshold, cfg.Witnesses)
	}
	if cfg.StableDepth <= 0 {
		// Default well past routine fork races; callers facing deep
		// adversarial reorgs should raise it.
		cfg.StableDepth = 30
	}
	if cfg.Window <= 0 {
		return nil, errors.New("batch: non-positive window")
	}
	rng := sim.NewRNG(seed) //ac3:globalrand seed parameter descends from the shard seed (engine forks it per world; ADR-008)
	c := &Coordinator{
		cfg:     cfg,
		s:       w.Sim,
		keys:    make([]*crypto.KeyPair, cfg.Witnesses),
		addrs:   make([]crypto.Address, cfg.Witnesses),
		pending: make(map[crypto.Address]contracts.WitnessState),
		decided: make(map[crypto.Address]contracts.WitnessState),
		tracked: make(map[crypto.Hash]*trackedBatch),
	}
	for i := range c.keys {
		c.keys[i] = crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
		c.addrs[i] = c.keys[i].Addr
	}
	c.client = miner.NewClient(w.Net(witnessChain), 0, c.keys[0])
	_, addr, err := c.client.Deploy(contracts.TypeBatchWitness, vm.EncodeGob(contracts.BatchWitnessParams{
		Witnesses: c.addrs,
		Threshold: cfg.Threshold,
	}), 0)
	if err != nil {
		c.client.Close()
		return nil, fmt.Errorf("batch: deploy: %w", err)
	}
	c.contract = addr
	sub, err := c.client.OnTipChange(c.check)
	if err != nil {
		c.client.Close()
		return nil, fmt.Errorf("batch: watch: %w", err)
	}
	c.sub = sub
	return c, nil
}

// Addr returns the batch contract's address on the witness chain.
func (c *Coordinator) Addr() crypto.Address { return c.contract }

// Submit records one AC2T decision for the next batch. The first
// decision per SCw wins — a later conflicting submission (the race
// scenario's rogue refund) is dropped, mirroring the whole-batch
// conflict rejection the contract enforces on-chain. The first
// pending decision arms the window timer.
func (c *Coordinator) Submit(scw crypto.Address, decision contracts.WitnessState) {
	if c.closed || scw.IsZero() {
		return
	}
	if decision != contracts.WitnessRedeemAuthorized && decision != contracts.WitnessRefundAuthorized {
		return
	}
	if _, dup := c.decided[scw]; dup {
		return
	}
	if _, dup := c.pending[scw]; dup {
		return
	}
	c.pending[scw] = decision
	if !c.flushArmed {
		c.flushArmed = true
		c.s.After(c.cfg.Window, c.flush)
	}
}

// flush publishes the pending decision set as one commit_batch
// transaction. If the batch contract's deployment is not yet in chain
// state the flush re-arms — commit_batch would bounce off miners
// until the deployment applies.
func (c *Coordinator) flush() {
	if c.closed {
		return
	}
	if len(c.pending) == 0 {
		c.flushArmed = false
		return
	}
	if _, ok := c.client.ContractNow(c.contract, 0); !ok {
		c.s.After(c.cfg.Window, c.flush)
		return
	}
	records := make([]contracts.DecisionRecord, 0, len(c.pending))
	for scw, d := range c.pending {
		records = append(records, contracts.DecisionRecord{SCw: scw, Decision: d})
	}
	contracts.SortDecisionRecords(records)
	root := contracts.BatchRoot(records)
	ms := crypto.NewMultiSig(root)
	// Exactly m of n witnesses attest: the threshold check is the
	// security boundary, so the model never over-signs past it.
	for _, k := range c.keys[:c.cfg.Threshold] {
		ms.Add(k)
	}
	args := contracts.EncodeBatchCommit(&contracts.BatchCommit{
		Records:     records,
		Root:        root,
		Attestation: *ms,
	})
	tx, err := c.client.Call(c.contract, contracts.FnCommitBatch, args, 0)
	if err != nil {
		// Client halted or closed: retry the same pending set after
		// another window rather than losing the decisions.
		c.s.After(c.cfg.Window, c.flush)
		return
	}
	for scw, d := range c.pending {
		c.decided[scw] = d
	}
	c.pending = make(map[crypto.Address]contracts.WitnessState)
	c.flushArmed = false
	c.BatchesPublished++
	c.BatchDecisions += len(records)
	c.BytesPublished += len(tx.Encode())
	c.tracked[tx.ID()] = &trackedBatch{tx: tx, lastPush: c.s.Now()}
	c.event(fmt.Sprintf("batch committed: %d decisions", len(records)))
}

// check runs on every witness-chain tip change: published batches are
// watched until StableDepth. A batch reorged off the canonical chain
// is re-published (one one-shot event per batch) instead of silently
// stranding every AC2T whose proof hangs off its root; a batch that
// never lands for a whole resubmit window (mempool wipe under
// partition) is quietly re-multicast, mirroring EnsureTx.
func (c *Coordinator) check() {
	if c.closed || len(c.tracked) == 0 {
		return
	}
	view := c.client.Chain()
	// Deterministic iteration: sorted by tx id.
	ids := make([]crypto.Hash, 0, len(c.tracked))
	for id := range c.tracked {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return bytes.Compare(ids[i][:], ids[j][:]) < 0 })
	now := c.s.Now()
	for _, id := range ids {
		tb := c.tracked[id]
		depth, onChain := view.TxDepth(id)
		switch {
		case onChain && depth >= c.cfg.StableDepth:
			delete(c.tracked, id)
		case onChain:
			tb.seen = true
		case tb.seen:
			// Reorged out below StableDepth: republish. Re-recording
			// the overlap is idempotent on the contract, so the same
			// transaction goes straight back to the mempool.
			c.client.Submit(tb.tx)
			tb.seen = false
			tb.lastPush = now
			c.Republishes++
			if !tb.reported {
				tb.reported = true
				c.event("batch commitment orphaned by reorg — republished")
			}
		case now-tb.lastPush >= c.client.ResubmitEvery:
			c.client.Submit(tb.tx)
			tb.lastPush = now
		}
	}
}

// Pending returns the number of decisions waiting for the window to
// close (diagnostics and tests).
func (c *Coordinator) Pending() int { return len(c.pending) }

// Decided reports the decision recorded for scw, if any reached a
// published batch.
func (c *Coordinator) Decided(scw crypto.Address) (contracts.WitnessState, bool) {
	d, ok := c.decided[scw]
	return d, ok
}

// Close releases the coordinator's client and watches at engine
// retirement. Terminal, like Trent.Close.
func (c *Coordinator) Close() {
	if c.closed {
		return
	}
	c.closed = true
	if c.sub != nil {
		c.sub.Cancel()
	}
	c.client.Close()
	c.pending = nil
	c.decided = nil
	c.tracked = nil
}

func (c *Coordinator) event(label string) {
	if c.cfg.OnEvent != nil {
		c.cfg.OnEvent(label)
	}
}
