// Package crypto provides the cryptographic substrate of the
// reproduction: hashing, Ed25519 identities and signatures, graph
// multisignatures ms(D), and the commitment-scheme abstraction that
// Section 3 of the paper builds atomic-swap contracts on.
//
// The paper's protocols need only standard assumptions — collision
// resistant hashing, unforgeable signatures, and binding/hiding
// commitments — so stdlib crypto/ed25519 and crypto/sha256 stand in
// for the secp256k1 machinery of production chains (see DESIGN.md,
// substitution table).
package crypto

import (
	"bytes"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
)

// HashSize is the byte length of all digests in the system.
const HashSize = sha256.Size

// Hash is a SHA-256 digest. It identifies blocks, transactions,
// contracts and commitment values.
type Hash [HashSize]byte

// ZeroHash is the all-zero digest, used as the genesis parent.
//
//ac3:globalstate zero-value sentinel compared by value; never written
var ZeroHash Hash

// Sum hashes the concatenation of the given byte slices.
func Sum(parts ...[]byte) Hash {
	h := sha256.New()
	for _, p := range parts {
		h.Write(p)
	}
	var out Hash
	copy(out[:], h.Sum(nil))
	return out
}

// Bytes returns the digest as a slice.
func (h Hash) Bytes() []byte { return h[:] }

// IsZero reports whether h is the zero digest.
func (h Hash) IsZero() bool { return h == ZeroHash }

// String renders the first 8 bytes in hex, enough to eyeball identity
// in logs and test failures.
func (h Hash) String() string { return hex.EncodeToString(h[:8]) }

// Hex renders the full digest in hex.
func (h Hash) Hex() string { return hex.EncodeToString(h[:]) }

// HashFromHex parses a full-length hex digest.
func HashFromHex(s string) (Hash, error) {
	var h Hash
	b, err := hex.DecodeString(s)
	if err != nil {
		return h, fmt.Errorf("crypto: bad hex digest: %w", err)
	}
	if len(b) != HashSize {
		return h, fmt.Errorf("crypto: digest length %d, want %d", len(b), HashSize)
	}
	copy(h[:], b)
	return h, nil
}

// Address identifies an end-user (or a contract) on a chain. For users
// it is the hash of the public key, as in the paper's data model where
// "identities are typically implemented using public keys".
type Address [20]byte

// ZeroAddress is the empty address; contracts transferring to it burn
// assets, so validation rejects it as a transaction output owner.
//
//ac3:globalstate zero-value sentinel compared by value; never written
var ZeroAddress Address

// String renders the address in hex.
func (a Address) String() string { return hex.EncodeToString(a[:]) }

// IsZero reports whether a is the zero address.
func (a Address) IsZero() bool { return a == ZeroAddress }

// AddressFromPub derives the address of a public key.
func AddressFromPub(pub ed25519.PublicKey) Address {
	h := Sum(pub)
	var a Address
	copy(a[:], h[:20])
	return a
}

// KeyPair is an end-user identity: an Ed25519 key pair plus its
// derived address. Participants hold one KeyPair per blockchain they
// transact on (the paper's application-layer end-users).
type KeyPair struct {
	Pub  ed25519.PublicKey
	priv ed25519.PrivateKey
	Addr Address
}

// GenerateKey creates a key pair from the given randomness source.
// Deterministic sources (sim.RNG via an io.Reader adapter) make whole
// simulations reproducible.
func GenerateKey(rand io.Reader) (*KeyPair, error) {
	pub, priv, err := ed25519.GenerateKey(rand)
	if err != nil {
		return nil, fmt.Errorf("crypto: generate key: %w", err)
	}
	return &KeyPair{Pub: pub, priv: priv, Addr: AddressFromPub(pub)}, nil
}

// MustGenerateKey is GenerateKey for deterministic sources that cannot
// fail; it panics on error.
func MustGenerateKey(rand io.Reader) *KeyPair {
	kp, err := GenerateKey(rand)
	if err != nil {
		panic(err)
	}
	return kp
}

// Sign signs msg with the private key.
func (k *KeyPair) Sign(msg []byte) Signature {
	return Signature{Pub: append(ed25519.PublicKey(nil), k.Pub...), Sig: ed25519.Sign(k.priv, msg)}
}

// Signature is a public key together with an Ed25519 signature. The
// embedded key lets verifiers check both validity and *who* signed,
// which the multisignature ms(D) and Trent's witness signatures need.
type Signature struct {
	Pub ed25519.PublicKey
	Sig []byte
}

// Verify reports whether the signature is valid for msg.
func (s Signature) Verify(msg []byte) bool {
	if len(s.Pub) != ed25519.PublicKeySize || len(s.Sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(s.Pub, msg, s.Sig)
}

// Signer returns the address of the signing key.
func (s Signature) Signer() Address { return AddressFromPub(s.Pub) }

// Equal reports whether two signatures are byte-identical.
func (s Signature) Equal(o Signature) bool {
	return bytes.Equal(s.Pub, o.Pub) && bytes.Equal(s.Sig, o.Sig)
}

// Clone returns a deep copy.
func (s Signature) Clone() Signature {
	return Signature{
		Pub: append(ed25519.PublicKey(nil), s.Pub...),
		Sig: append([]byte(nil), s.Sig...),
	}
}

// RandReader adapts any Uint64 source (such as *sim.RNG) into an
// io.Reader suitable for key generation.
type RandReader struct {
	Next func() uint64
	buf  [8]byte
	n    int
}

// NewRandReader wraps next as an io.Reader.
func NewRandReader(next func() uint64) *RandReader {
	return &RandReader{Next: next, n: 8}
}

// Read fills p with deterministic pseudo-random bytes.
func (r *RandReader) Read(p []byte) (int, error) {
	for i := range p {
		if r.n == 8 {
			v := r.Next()
			for j := 0; j < 8; j++ {
				r.buf[j] = byte(v >> (8 * j))
			}
			r.n = 0
		}
		p[i] = r.buf[r.n]
		r.n++
	}
	return len(p), nil
}
