package contracts

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/merkle"
	"repro/internal/spv"
	"repro/internal/vm"
)

// PermissionlessParams are the constructor parameters of Algorithm
// 4's PermissionlessSC. They correspond to the (SCw, d) pair both
// commitment schemes are set to: where the coordinator lives, how to
// verify its chain, and how deep its state change must be buried.
type PermissionlessParams struct {
	// Recipient receives the asset on redemption.
	Recipient crypto.Address
	// WitnessChain identifies the witness network coordinating this
	// AC2T. Different AC2Ts may use different witness networks
	// (Section 5.2).
	WitnessChain chain.ID
	// WitnessCheckpoint is the encoded header of a stable block in
	// the witness chain — the in-contract validation anchor of
	// Section 4.3.
	WitnessCheckpoint []byte
	// SCw is the coordinator contract's address on the witness chain.
	SCw crypto.Address
	// Depth is d: evidence of SCw's state change counts only when its
	// block is buried under at least d witness-chain blocks.
	Depth int
	// Batch, when non-zero, is the batch-commitment contract on the
	// witness chain: redeem/refund then consume a membership proof for
	// this contract's (SCw, decision) leaf against a committed batch
	// root instead of evidence of a per-AC2T SCw call.
	Batch crypto.Address
}

// PermissionlessSC is the AC3WN asset contract (Algorithm 4). It has
// no timelock: its redeem and refund are conditioned exclusively on
// evidence of the witness contract's mutually exclusive states, so a
// crashed participant can recover and still redeem — the paper's
// all-or-nothing guarantee.
type PermissionlessSC struct {
	Sender            crypto.Address
	Recipient         crypto.Address
	Asset             vm.Amount
	WitnessChain      chain.ID
	WitnessCheckpoint []byte
	SCw               crypto.Address
	Depth             int
	Batch             crypto.Address // zero = per-AC2T SCw evidence
	State             SwapState
}

// Type implements vm.Contract.
func (c *PermissionlessSC) Type() string { return TypePermissionless }

// Init implements the Algorithm 4 constructor.
func (c *PermissionlessSC) Init(ctx *vm.Ctx, params []byte) error {
	var p PermissionlessParams
	if err := vm.DecodeGob(params, &p); err != nil {
		return fmt.Errorf("ac3wn: params: %w", err)
	}
	if p.Recipient.IsZero() {
		return errors.New("ac3wn: zero recipient")
	}
	if ctx.Msg.Value == 0 {
		return errors.New("ac3wn: no asset locked")
	}
	if p.SCw.IsZero() {
		return errors.New("ac3wn: zero witness contract address")
	}
	if p.Depth < 0 {
		return errors.New("ac3wn: negative depth")
	}
	if _, err := chain.DecodeHeader(p.WitnessCheckpoint); err != nil {
		return fmt.Errorf("ac3wn: witness checkpoint: %w", err)
	}
	c.Sender = ctx.Msg.Sender
	c.Recipient = p.Recipient
	c.Asset = ctx.Msg.Value
	c.WitnessChain = p.WitnessChain
	c.WitnessCheckpoint = p.WitnessCheckpoint
	c.SCw = p.SCw
	c.Depth = p.Depth
	c.Batch = p.Batch
	c.State = StatePublished
	return nil
}

// Call dispatches redeem/refund with SPV evidence of the witness
// contract's state as the argument.
func (c *PermissionlessSC) Call(ctx *vm.Ctx, fn string, args []byte) error {
	switch fn {
	case FnRedeem:
		if c.State != StatePublished {
			return fmt.Errorf("ac3wn: redeem in state %s", c.State)
		}
		if err := c.verifyWitnessEvidence(args, FnAuthorizeRedeem); err != nil {
			return fmt.Errorf("ac3wn: redeem: %w", err)
		}
		if err := ctx.Pay(c.Recipient, c.Asset); err != nil {
			return err
		}
		c.State = StateRedeemed
		return nil
	case FnRefund:
		if c.State != StatePublished {
			return fmt.Errorf("ac3wn: refund in state %s", c.State)
		}
		if err := c.verifyWitnessEvidence(args, FnAuthorizeRefund); err != nil {
			return fmt.Errorf("ac3wn: refund: %w", err)
		}
		if err := ctx.Pay(c.Sender, c.Asset); err != nil {
			return err
		}
		c.State = StateRefunded
		return nil
	default:
		return vm.ErrUnknownFunction(TypePermissionless, fn)
	}
}

// verifyWitnessEvidence implements Algorithm 4's IsRedeemable /
// IsRefundable: the evidence must prove that a successful call of
// wantFn on SCw is included in the witness chain at depth ≥ d,
// starting from the stored stable-block checkpoint. Because witness
// miners exclude failing calls from blocks, inclusion implies the
// state transition took effect; because SCw only allows P→RDauth or
// P→RFauth, at most one such call exists per fork; and because the
// evidence must be d-deep, fork ambiguity vanishes with probability
// 1−ε (Lemma 5.3).
func (c *PermissionlessSC) verifyWitnessEvidence(args []byte, wantFn string) error {
	if !c.Batch.IsZero() {
		return c.verifyBatchEvidence(args, wantFn)
	}
	ev, err := spv.Decode(args)
	if err != nil {
		return err
	}
	tx, err := c.verifyWitnessTx(ev)
	if err != nil {
		return err
	}
	if tx.Kind != chain.TxCall || tx.Contract != c.SCw || tx.Fn != wantFn {
		return fmt.Errorf("proven tx is not %s on the agreed SCw", wantFn)
	}
	return nil
}

// verifyBatchEvidence is the batched variant of IsRedeemable /
// IsRefundable: the argument is an evidence pair [SPV evidence,
// gob-encoded merkle proof]. The SPV evidence must prove a successful
// commit_batch call on the agreed batch contract at depth ≥ d; since
// miners exclude failing calls, inclusion implies the batch contract
// verified canonical order, root, threshold attestation, and
// conflict-freedom against its decision ledger. The merkle proof then
// ties this contract's (SCw, decision) leaf to the committed root —
// per-AC2T membership without a per-AC2T witness transaction. Mutual
// exclusion carries over: a conflicting record can never appear in a
// later committed batch (whole-batch rejection), so at most one
// decision leaf per SCw exists under any committed root per fork.
func (c *PermissionlessSC) verifyBatchEvidence(args []byte, wantFn string) error {
	parts, err := DecodeEvidenceList(args)
	if err != nil {
		return err
	}
	if len(parts) != 2 {
		return fmt.Errorf("batched evidence has %d parts, want [spv, proof]", len(parts))
	}
	ev, err := spv.Decode(parts[0])
	if err != nil {
		return err
	}
	tx, err := c.verifyWitnessTx(ev)
	if err != nil {
		return err
	}
	if tx.Kind != chain.TxCall || tx.Contract != c.Batch || tx.Fn != FnCommitBatch {
		return errors.New("proven tx is not commit_batch on the agreed batch contract")
	}
	bc, err := DecodeBatchCommit(tx.Args)
	if err != nil {
		return err
	}
	var proof merkle.Proof
	if err := vm.DecodeGob(parts[1], &proof); err != nil {
		return fmt.Errorf("membership proof: %w", err)
	}
	var want WitnessState
	if wantFn == FnAuthorizeRedeem {
		want = WitnessRedeemAuthorized
	} else {
		want = WitnessRefundAuthorized
	}
	if !proof.VerifyData(bc.Root, DecisionLeaf(c.SCw, want)) {
		return fmt.Errorf("membership proof does not tie (SCw, %s) to the committed root", want)
	}
	return nil
}

// verifyWitnessTx runs the chain-level part of evidence verification
// shared by both paths: right witness chain, valid header path from
// the stored stable checkpoint, and burial depth ≥ d (Lemma 5.3).
func (c *PermissionlessSC) verifyWitnessTx(ev *spv.Evidence) (*chain.Tx, error) {
	checkpoint, err := chain.DecodeHeader(c.WitnessCheckpoint)
	if err != nil {
		return nil, fmt.Errorf("stored checkpoint corrupt: %w", err)
	}
	if ev.ChainID != c.WitnessChain {
		return nil, fmt.Errorf("evidence from chain %s, want %s", ev.ChainID, c.WitnessChain)
	}
	return ev.Verify(checkpoint, c.Depth)
}

// Clone implements vm.Contract.
func (c *PermissionlessSC) Clone() vm.Contract {
	cp := *c
	cp.WitnessCheckpoint = append([]byte(nil), c.WitnessCheckpoint...)
	return &cp
}
