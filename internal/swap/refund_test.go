package swap

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// TestRefundCascadeWhenMidChainParticipantDefects: in a 4-ring, the
// third participant crashes before deploying. Upstream contracts are
// already locked; all of them must refund cleanly once their
// timelocks expire — no commits, no violations, everyone's assets
// restored.
func TestRefundCascadeWhenMidChainParticipantDefects(t *testing.T) {
	b := xchain.NewBuilder(880)
	var ps []*xchain.Participant
	var ids []chain.ID
	for i := 0; i < 4; i++ {
		ps = append(ps, b.Participant("p"))
		id := chain.ID("chain-" + string(rune('a'+i)))
		ids = append(ids, id)
		b.Chain(xchain.DefaultChainSpec(id))
	}
	var edges []graph.Edge
	for i := 0; i < 4; i++ {
		b.Fund(ps[i], ids[i], 1_000_000)
		edges = append(edges, graph.Edge{
			From: ps[i].Addr(), To: ps[(i+1)%4].Addr(), Asset: 5_000, Chain: ids[i],
		})
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.New(1, edges...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(w, Config{
		Graph:        g,
		Participants: ps,
		Leader:       ps[0],
		Delta:        60 * sim.Second,
		ConfirmDepth: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	ps[2].Crash() // defects before the protocol starts
	r.Start()
	w.RunUntil(4 * sim.Hour) // all timelocks expire
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if out.Committed() || out.AtomicityViolated() {
		t.Fatalf("defection mishandled: %+v", out.Edges)
	}
	if !out.Aborted() {
		t.Fatalf("upstream contracts not all refunded: %+v", out.Edges)
	}
	// Each deployed contract is RF; each sender got its asset back.
	for i, e := range out.Edges {
		if e.Deployed && e.State != contracts.StateRefunded {
			t.Fatalf("edge %d state %s after defection", i, e.State)
		}
	}
	for i, p := range ps {
		if i == 2 {
			continue // the defector never spent anything
		}
		var total uint64
		for _, o := range w.View(ids[i]).TipState().UTXOsOwnedBy(p.Addr()) {
			total += o.Value
		}
		if total != 1_000_000 {
			t.Fatalf("participant %d ended with %d on %s, want full restore", i, total, ids[i])
		}
	}
}

// TestTimelockOrderingInvariant: for every edge pair where one
// contract's redemption reveals the secret another depends on, the
// dependent (closer-to-leader) contract must carry the LATER
// timelock — Nolan's t1 > t2 generalized.
func TestTimelockOrderingInvariant(t *testing.T) {
	b := xchain.NewBuilder(881)
	var ps []*xchain.Participant
	var ids []chain.ID
	for i := 0; i < 5; i++ {
		ps = append(ps, b.Participant("p"))
		id := chain.ID("ring-" + string(rune('a'+i)))
		ids = append(ids, id)
		b.Chain(xchain.DefaultChainSpec(id))
	}
	var edges []graph.Edge
	for i := 0; i < 5; i++ {
		b.Fund(ps[i], ids[i], 1_000_000)
		edges = append(edges, graph.Edge{
			From: ps[i].Addr(), To: ps[(i+1)%5].Addr(), Asset: 100, Chain: ids[i],
		})
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.New(1, edges...)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(w, Config{
		Graph:        g,
		Participants: ps,
		Leader:       ps[0],
		Delta:        60 * sim.Second,
		ConfirmDepth: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	// Layer k deploys edge k in this ring (leader = ps[0]); the
	// timelock must strictly decrease with the layer.
	for i := 0; i+1 < len(r.timelocks); i++ {
		if r.layers[i+1] != r.layers[i]+1 {
			t.Fatalf("ring layers not sequential: %v", r.layers)
		}
		if r.timelocks[i+1] >= r.timelocks[i] {
			t.Fatalf("timelock ordering violated: t[%d]=%d <= t[%d]=%d",
				i, r.timelocks[i], i+1, r.timelocks[i+1])
		}
	}
}
