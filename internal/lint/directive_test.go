package lint

import (
	"go/token"
	"testing"
)

func TestParseDirective(t *testing.T) {
	cases := []struct {
		text string
		name string
		just string
		ok   bool
	}{
		{"//ac3:wallclock measured out-of-band", "wallclock", "measured out-of-band", true},
		{"//ac3:maporder", "maporder", "", true},
		{"//ac3:maporder   ", "maporder", "", true},
		// A nested comment marker ends the justification (golden tests
		// put `// want` specs after directives).
		{"//ac3:globalrand seed descends from run seed // trailing note", "globalrand", "seed descends from run seed", true},
		{"//ac3:globalrand // trailing note only", "globalrand", "", true},
		{"// not a directive", "", "", false},
		{"//ac3: justification without a name", "", "", false},
		{"/* block comments are not directives */", "", "", false},
	}
	for _, c := range cases {
		name, just, ok := parseDirective(c.text)
		if name != c.name || just != c.just || ok != c.ok {
			t.Errorf("parseDirective(%q) = (%q, %q, %v), expected (%q, %q, %v)",
				c.text, name, just, ok, c.name, c.just, c.ok)
		}
	}
}

func TestOnlyCommentOnLine(t *testing.T) {
	src := []byte("package p\n\n\t// alone on its line\nvar x = 1 // trailing\n")
	alone := token.Position{Offset: 12, Column: 2}     // the tab-indented comment
	trailing := token.Position{Offset: 43, Column: 11} // after "var x = 1 "
	if !onlyCommentOnLine(src, alone) {
		t.Errorf("full-line comment not recognized as alone on its line")
	}
	if onlyCommentOnLine(src, trailing) {
		t.Errorf("trailing comment misclassified as alone on its line")
	}
	if onlyCommentOnLine(nil, alone) {
		t.Errorf("nil source must not classify as full-line")
	}
}
