package p2p

import (
	"testing"

	"repro/internal/sim"
)

type recorder struct {
	msgs []string
}

func (r *recorder) handler() Handler {
	return func(from NodeID, payload any) {
		r.msgs = append(r.msgs, payload.(string))
	}
}

func TestSendDelivers(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 10})
	var a, b recorder
	net.Register(1, a.handler())
	net.Register(2, b.handler())
	net.Send(1, 2, "hello")
	s.Run()
	if len(b.msgs) != 1 || b.msgs[0] != "hello" {
		t.Fatalf("b.msgs = %v", b.msgs)
	}
	if len(a.msgs) != 0 {
		t.Fatal("sender received its own message")
	}
	if s.Now() != 10 {
		t.Fatalf("delivery at %d, want 10", s.Now())
	}
}

func TestBroadcastSkipsSender(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 5})
	recs := make([]*recorder, 4)
	for i := range recs {
		recs[i] = &recorder{}
		net.Register(NodeID(i), recs[i].handler())
	}
	net.Broadcast(0, "blk")
	s.Run()
	if len(recs[0].msgs) != 0 {
		t.Fatal("broadcast delivered to sender")
	}
	for i := 1; i < 4; i++ {
		if len(recs[i].msgs) != 1 {
			t.Fatalf("node %d got %d messages", i, len(recs[i].msgs))
		}
	}
}

func TestJitterWithinBounds(t *testing.T) {
	s := sim.New(7)
	net := NewNetwork(s, LatencyModel{Base: 100, Jitter: 50})
	var times []sim.Time
	net.Register(1, func(NodeID, any) {})
	net.Register(2, func(NodeID, any) { times = append(times, s.Now()) })
	for i := 0; i < 200; i++ {
		net.Send(1, 2, i)
	}
	s.Run()
	if len(times) != 200 {
		t.Fatalf("delivered %d, want 200", len(times))
	}
	for _, at := range times {
		if at < 100 || at >= 150 {
			t.Fatalf("delivery at %d outside [100,150)", at)
		}
	}
}

func TestCrashDropsMessages(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 10})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())

	net.Crash(2)
	net.Send(1, 2, "lost")
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("crashed node received a message")
	}

	net.Recover(2)
	net.Send(1, 2, "after-recovery")
	s.Run()
	if len(b.msgs) != 1 || b.msgs[0] != "after-recovery" {
		t.Fatalf("b.msgs = %v", b.msgs)
	}
}

func TestInFlightMessageLostOnCrash(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 100})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Send(1, 2, "in-flight")
	s.At(50, func() { net.Crash(2) })
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("message delivered to node that crashed mid-flight")
	}
}

func TestCrashedSenderCannotSend(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Crash(1)
	net.Send(1, 2, "ghost")
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("crashed node sent a message")
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	var a, b, c recorder
	net.Register(1, a.handler())
	net.Register(2, b.handler())
	net.Register(3, c.handler())

	net.Partition([]NodeID{1}, []NodeID{2, 3})
	net.Send(1, 2, "blocked")
	net.Send(2, 3, "same-side")
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("message crossed the partition")
	}
	if len(c.msgs) != 1 {
		t.Fatal("same-partition message not delivered")
	}

	net.Heal()
	net.Send(1, 2, "healed")
	s.Run()
	if len(b.msgs) != 1 || b.msgs[0] != "healed" {
		t.Fatalf("b.msgs = %v", b.msgs)
	}
}

func TestPartitionAppliedToInFlight(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 100})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Send(1, 2, "x")
	s.At(10, func() { net.Partition([]NodeID{1}, []NodeID{2}) })
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("in-flight message crossed a partition formed before delivery")
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{})
	net.Register(1, func(NodeID, any) {})
	net.Register(1, func(NodeID, any) {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(sim.New(1), LatencyModel{}).Register(1, nil)
}

func TestSendToUnregisteredIsDropped(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	net.Register(1, func(NodeID, any) {})
	net.Send(1, 99, "void") // must not panic
	s.Run()
}

func TestCountersAdvance(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Send(1, 2, "x")
	s.Run() // deliver before crashing
	net.Crash(2)
	net.Send(1, 2, "y")
	s.Run()
	if net.Sent != 2 || net.Delivered != 1 {
		t.Fatalf("Sent=%d Delivered=%d, want 2/1", net.Sent, net.Delivered)
	}
}

func TestNodesOrder(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{})
	for i := 5; i >= 1; i-- {
		net.Register(NodeID(i), func(NodeID, any) {})
	}
	nodes := net.Nodes()
	want := []NodeID{5, 4, 3, 2, 1}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes() = %v", nodes)
		}
	}
}
