// Supply chain: the Section 5.3 / Figure 7 scenarios. Supply-chain
// settlements produce AC2T graphs that single-leader swap protocols
// structurally cannot execute:
//
//   - Figure 7a: overlapping payment cycles (every vertex lies on two
//     cycles, so no leader's removal makes the graph acyclic);
//   - Figure 7b: a disconnected batch — two unrelated settlements the
//     parties nevertheless want to commit as one atomic unit.
//
// AC3WN registers the whole graph in one witness contract and commits
// both atomically.
//
//	go run ./examples/supplychain
package main

import (
	"fmt"
	"log"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/xchain"
)

func main() {
	fmt.Println("=== Figure 7a: cyclic settlement among manufacturer, carrier, retailer ===")
	runCyclic()
	fmt.Println()
	fmt.Println("=== Figure 7b: disconnected batch settlement ===")
	runDisconnected()
}

func runCyclic() {
	b := xchain.NewBuilder(71)
	manufacturer := b.Participant("manufacturer")
	carrier := b.Participant("carrier")
	retailer := b.Participant("retailer")
	for _, id := range []chain.ID{"parts-ledger", "freight-ledger", "retail-ledger", "witness"} {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	// Everyone both pays and is paid, on two ledgers each.
	b.Fund(manufacturer, "parts-ledger", 1_000_000)
	b.Fund(manufacturer, "freight-ledger", 1_000_000)
	b.Fund(carrier, "freight-ledger", 1_000_000)
	b.Fund(carrier, "retail-ledger", 1_000_000)
	b.Fund(retailer, "retail-ledger", 1_000_000)
	b.Fund(retailer, "parts-ledger", 1_000_000)
	w, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	g, err := graph.New(1,
		// forward cycle: parts → freight → retail → parts
		graph.Edge{From: manufacturer.Addr(), To: carrier.Addr(), Asset: 30_000, Chain: "parts-ledger"},
		graph.Edge{From: carrier.Addr(), To: retailer.Addr(), Asset: 20_000, Chain: "freight-ledger"},
		graph.Edge{From: retailer.Addr(), To: manufacturer.Addr(), Asset: 50_000, Chain: "retail-ledger"},
		// reverse rebate cycle, overlapping the first
		graph.Edge{From: manufacturer.Addr(), To: retailer.Addr(), Asset: 5_000, Chain: "freight-ledger"},
		graph.Edge{From: retailer.Addr(), To: carrier.Addr(), Asset: 4_000, Chain: "parts-ledger"},
		graph.Edge{From: carrier.Addr(), To: manufacturer.Addr(), Asset: 3_000, Chain: "retail-ledger"},
	)
	if err != nil {
		log.Fatal(err)
	}
	feasible, _ := g.HerlihyFeasible()
	fmt.Printf("graph: %s, cyclic=%v, single-leader feasible=%v\n", g, g.IsCyclic(), feasible)

	run(w, g, []*xchain.Participant{manufacturer, carrier, retailer})
}

func runDisconnected() {
	b := xchain.NewBuilder(72)
	ps := []*xchain.Participant{
		b.Participant("farm"), b.Participant("mill"),
		b.Participant("mine"), b.Participant("smelter"),
	}
	ids := []chain.ID{"grain-ledger", "flour-ledger", "ore-ledger", "metal-ledger", "witness"}
	for _, id := range ids {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	for i, p := range ps {
		b.Fund(p, ids[i], 1_000_000)
	}
	w, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}
	g, err := graph.Disconnected(2, [][2]crypto.Address{
		{ps[0].Addr(), ps[1].Addr()}, // grain-for-flour swap
		{ps[2].Addr(), ps[3].Addr()}, // ore-for-metal swap
	}, 25_000, []chain.ID{"grain-ledger", "flour-ledger", "ore-ledger", "metal-ledger"})
	if err != nil {
		log.Fatal(err)
	}
	feasible, _ := g.HerlihyFeasible()
	fmt.Printf("graph: %s, connected=%v, single-leader feasible=%v\n",
		g, g.IsWeaklyConnected(), feasible)

	run(w, g, ps)
}

func run(w *xchain.World, g *graph.Graph, ps []*xchain.Participant) {
	r, err := core.New(w, core.Config{
		Graph:        g,
		Participants: ps,
		Initiator:    ps[0],
		WitnessChain: "witness",
		WitnessDepth: 3,
		AssetDepth:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	r.Start()
	w.RunUntil(2 * sim.Hour)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	fmt.Printf("AC3WN outcome: committed=%v violated=%v (%d edges, %.1f virtual minutes)\n",
		out.Committed(), out.AtomicityViolated(), len(out.Edges), float64(out.Latency())/60000)
	for i, e := range out.Edges {
		fmt.Printf("  edge %d: %d on %s → %s\n", i, e.Edge.Asset, e.Edge.Chain, e.State)
	}
}
