package chain

// TipEvent describes one canonical-tip change of a chain view — the
// structured notification the storage layer publishes instead of
// making every watcher re-scan TipState on a timer. Participants in
// the paper's protocols are reactive: they act when SCw's state or a
// redemption witness *becomes visible*, so the view tells them exactly
// when visibility changed and what changed.
type TipEvent struct {
	// Old and New are the previous and new canonical tip blocks.
	Old, New *Block
	// Connected lists the blocks that joined the canonical chain,
	// oldest first. On a plain extension it is just the new tip; on a
	// reorg it is the whole adopted branch above the fork point.
	Connected []*Block
	// Disconnected lists the blocks that left the canonical chain,
	// oldest first. Non-empty only when a fork was abandoned — their
	// transactions are no longer confirmed and must be re-announced
	// (the miner layer returns them to the mempool) or retracted.
	Disconnected []*Block
	// Reorg reports that the old tip itself was abandoned (the view's
	// Reorgs counter incremented with this event).
	Reorg bool
}

// OnTipChange registers fn to run synchronously whenever the canonical
// tip changes, in registration order. The chain view is fully updated
// when fn runs, so fn may read any query method; it must not mutate
// the view. Listeners are for the node layer — actors that need
// scheduled, cancelable delivery subscribe through miner.Node's signal
// instead.
func (c *Chain) OnTipChange(fn func(TipEvent)) {
	if fn == nil {
		panic("chain: OnTipChange with nil listener")
	}
	c.listeners = append(c.listeners, fn)
}
