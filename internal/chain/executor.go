package chain

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/vm"
)

// Executor is one blockchain network's shared store and state machine:
// the immutable block DAG, the per-block ledger states, the tx→block
// index, and a memoized ApplyBlock outcome per block hash. The paper's
// storage layer (Section 2.1) replicates a blockchain across N mining
// nodes, but block validation is a deterministic function of the
// (immutable) parent state and the (immutable) block — honest replicas
// re-running it always reach the same verdict (the Section 2.3
// deterministic-replay argument). The executor therefore runs every
// state transition exactly once per network and serves the result —
// success (a shared read-only child state) or failure (the cached
// rejection) — to every replica view created with NewView.
//
// The executor is deliberately lock-free: it inherits the simulation's
// single-goroutine-per-world discipline (the engine's shards each own
// their worlds outright), so sharing is free. Everything that makes
// replicas *different* — tip choice, the canonical index, TipEvent
// listeners — stays in the per-node Chain view.
type Executor struct {
	params Params
	reg    *vm.Registry

	genesis *Block
	blocks  map[crypto.Hash]*Block        // valid blocks, any fork
	states  map[crypto.Hash]*State        // state after each valid block
	invalid map[crypto.Hash]error         // cached permanent rejections
	txIndex map[crypto.Hash][]crypto.Hash // txid -> blocks containing it

	stats ExecStats
}

// ExecStats counts the executor's work. Hit rate quantifies how much
// redundant execution the shared store absorbed: with N replica views
// each block costs one execution and N-1 hits.
type ExecStats struct {
	// Executed counts full ApplyBlock state transitions actually run
	// (genesis, Execute cache misses, and locally built blocks
	// committed via CommitBuilt — the build pass is their execution).
	Executed uint64
	// Hits counts Execute/CommitBuilt calls served from the memoized
	// result — including cached rejections of invalid blocks.
	Hits uint64
}

// NewExecutor builds a network's shared store with a deterministic
// genesis block minting alloc. Two NewExecutor calls with equal params
// and alloc produce the identical genesis, so independently
// constructed networks (or test fixtures) share one chain identity.
func NewExecutor(params Params, reg *vm.Registry, alloc GenesisAlloc) (*Executor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = vm.NewRegistry()
	}
	gtx := genesisTx(alloc)
	genesis := NewBlock(Header{
		ChainID: params.ID,
		Parent:  crypto.ZeroHash,
		Height:  0,
		Time:    0,
		Bits:    uint8(params.DifficultyBits),
	}, []*Tx{gtx})
	genesis.Header.Seal(0)

	st, err := ApplyBlock(NewState(), reg, params, genesis)
	if err != nil {
		return nil, fmt.Errorf("chain: genesis invalid: %w", err)
	}
	e := &Executor{
		params:  params,
		reg:     reg,
		genesis: genesis,
		blocks:  make(map[crypto.Hash]*Block),
		states:  make(map[crypto.Hash]*State),
		invalid: make(map[crypto.Hash]error),
		txIndex: make(map[crypto.Hash][]crypto.Hash),
	}
	e.stats.Executed++
	e.admit(genesis.Hash(), genesis, st)
	return e, nil
}

// NewView creates a replica view rooted at genesis. Views share the
// executor's blocks and states but choose tips independently — two
// views over one executor can sit on different forks.
func (e *Executor) NewView() *Chain {
	gh := e.genesis.Hash()
	return &Chain{
		exec:      e,
		have:      map[crypto.Hash]bool{gh: true},
		tip:       e.genesis,
		canonical: map[uint64]crypto.Hash{0: gh},
	}
}

// Params returns the network's chain configuration.
func (e *Executor) Params() Params { return e.params }

// Registry returns the contract registry.
func (e *Executor) Registry() *vm.Registry { return e.reg }

// Genesis returns the genesis block.
func (e *Executor) Genesis() *Block { return e.genesis }

// Stats returns the execution counters.
func (e *Executor) Stats() ExecStats { return e.stats }

// Block returns a valid block known to the network, from any fork.
func (e *Executor) Block(h crypto.Hash) (*Block, bool) {
	b, ok := e.blocks[h]
	return b, ok
}

// StateOf returns the ledger state after a valid block. The state is
// shared across every view — callers must treat it as read-only and
// branch with Child() before mutating.
func (e *Executor) StateOf(h crypto.Hash) (*State, bool) {
	st, ok := e.states[h]
	return st, ok
}

// Execute validates b against its parent and memoizes the outcome.
// The first call per block hash runs the full state transition
// (structural header checks + ApplyBlock); every later call — from any
// view — returns the cached child state or the cached rejection.
// An unknown parent is the one non-cacheable error: the parent may
// simply not have arrived yet.
func (e *Executor) Execute(b *Block) (*State, error) {
	h := b.Hash()
	if st, ok := e.states[h]; ok {
		e.stats.Hits++
		return st, nil
	}
	if err, ok := e.invalid[h]; ok {
		e.stats.Hits++
		return nil, err
	}
	parent, ok := e.blocks[b.Header.Parent]
	if !ok {
		return nil, blockErr("unknown parent %s", b.Header.Parent)
	}
	if err := checkLinkage(b, parent); err != nil {
		e.invalid[h] = err
		return nil, err
	}
	st, err := ApplyBlock(e.states[b.Header.Parent], e.reg, e.params, b)
	e.stats.Executed++
	if err != nil {
		e.invalid[h] = err
		return nil, err
	}
	e.admit(h, b, st)
	return st, nil
}

// CommitBuilt seeds the store with a locally built block and the state
// BuildBlock computed for it, so a miner's own block costs the network
// zero re-executions: the build pass was the execution, and every
// other replica's Execute hits the cache. The caller guarantees built
// == ApplyBlock(parent state, b) — true by construction for
// Chain.BuildBlock output sealed afterwards (Seal only grinds the
// nonce; the transaction set is fixed).
func (e *Executor) CommitBuilt(b *Block, built *State) error {
	h := b.Hash()
	if _, ok := e.states[h]; ok {
		e.stats.Hits++
		return nil
	}
	if err, ok := e.invalid[h]; ok {
		e.stats.Hits++
		return err
	}
	if _, ok := e.blocks[b.Header.Parent]; !ok {
		return blockErr("unknown parent %s", b.Header.Parent)
	}
	e.stats.Executed++
	e.admit(h, b, built)
	return nil
}

// checkLinkage verifies the parent-relative header invariants that
// ApplyBlock (which sees only the parent state, not the parent header)
// cannot. Failures are permanent properties of the block and therefore
// cacheable.
func checkLinkage(b, parent *Block) error {
	if b.Header.Height != parent.Header.Height+1 {
		return blockErr("height %d after parent height %d", b.Header.Height, parent.Header.Height)
	}
	if b.Header.Time < parent.Header.Time {
		return blockErr("time goes backwards")
	}
	return nil
}

// admit records a validated block, its state, and its transactions.
func (e *Executor) admit(h crypto.Hash, b *Block, st *State) {
	e.blocks[h] = b
	e.states[h] = st
	for _, tx := range b.Txs {
		id := tx.ID()
		e.txIndex[id] = append(e.txIndex[id], h)
	}
}
