package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 1: throughput", "Blockchain", "tps")
	tbl.AddRow("Bitcoin", 7)
	tbl.AddRow("Ethereum", 25)
	tbl.Note("source: %s", "O'Keeffe [24]")
	s := tbl.String()
	for _, want := range []string{"Table 1", "Blockchain", "Bitcoin", "25", "note: source"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: the header and first row start identically.
	lines := strings.Split(s, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
	hdrIdx := strings.Index(lines[1], "tps")
	rowIdx := strings.Index(lines[3], "7")
	if hdrIdx < 0 || rowIdx < 0 || rowIdx < hdrIdx {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestFloatTrimming(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(2.5000)
	tbl.AddRow(3.0)
	tbl.AddRow(0.1234567)
	var cells []string
	for _, line := range strings.Split(tbl.String(), "\n") {
		cells = append(cells, strings.TrimSpace(line))
	}
	joined := strings.Join(cells, "|")
	if !strings.Contains(joined, "|2.5|") || !strings.Contains(joined, "|3|") || !strings.Contains(joined, "|0.1235|") {
		t.Fatalf("float trimming wrong: %s", joined)
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Figure 10", "Diam(D)", "latency (Δ)")
	h := f.AddSeries("Herlihy")
	a := f.AddSeries("AC3WN")
	for d := 2; d <= 4; d++ {
		h.Add(float64(d), float64(2*d))
		a.Add(float64(d), 4)
	}
	s := f.String()
	for _, want := range []string{"Figure 10", "Herlihy", "AC3WN", "Diam(D)", "8", "4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("figure missing %q:\n%s", want, s)
		}
	}
}

func TestFigureHandlesMissingPoints(t *testing.T) {
	f := NewFigure("f", "x", "y")
	a := f.AddSeries("a")
	b := f.AddSeries("b")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 200) // b has no x=1 sample
	s := f.String()
	if !strings.Contains(s, "200") || !strings.Contains(s, "10") {
		t.Fatalf("missing data handling wrong:\n%s", s)
	}
}

func TestTimelineRendering(t *testing.T) {
	tl := &Timeline{Title: "Figure 9", Unit: "Δ"}
	tl.Add(0, "SCw deployed")
	tl.Add(1, "contracts deployed (parallel)")
	tl.Add(4, "all redeemed")
	s := tl.String()
	if !strings.Contains(s, "SCw deployed") || !strings.Contains(s, "t=") {
		t.Fatalf("timeline rendering wrong:\n%s", s)
	}
}

// TestConcurrentUse hammers every container from many goroutines.
// Run with -race (the CI does): the collector layer of the
// orchestration engine feeds these from concurrent shard workers, so
// any unguarded state here is a real bug, not a theoretical one.
func TestConcurrentUse(t *testing.T) {
	table := NewTable("concurrent", "a", "b")
	fig := NewFigure("fig", "x", "y")
	tl := &Timeline{Title: "tl", Unit: "s"}
	hist := NewHist(10, 100, 1000)

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			series := fig.AddSeries(fmt.Sprintf("s%d", w))
			for i := 0; i < perWorker; i++ {
				table.AddRow(w, i)
				table.Note("worker %d note %d", w, i)
				series.Add(float64(i), float64(w))
				tl.Add(float64(i), "event")
				hist.Observe(int64(i * w))
				// Concurrent rendering must also be safe: progress
				// reporters print while shards still collect.
				if i%50 == 0 {
					_ = table.String()
					_ = fig.String()
					_ = tl.String()
					_ = hist.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	if got := len(table.Rows); got != workers*perWorker {
		t.Fatalf("table rows = %d, want %d", got, workers*perWorker)
	}
	snap := hist.Snapshot()
	if snap.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", snap.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, c := range snap.Counts {
		bucketTotal += c
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, snap.Count)
	}
}

func TestHistBuckets(t *testing.T) {
	h := NewHist(10, 100)
	for _, v := range []int64{-5, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2} // (-inf,10], (10,100], (100,inf)
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Min != -5 || s.Max != 5000 || s.Sum != -5+10+11+100+101+5000 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.Mean() == 0 {
		t.Fatal("mean should be nonzero")
	}
}

func TestHistQuantile(t *testing.T) {
	h := NewHist(10, 20, 40, 80)
	for v := int64(1); v <= 100; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	cases := []struct {
		q      float64
		lo, hi int64 // acceptable interpolation window
	}{
		{0.5, 40, 60},   // true p50 = 50
		{0.99, 81, 100}, // true p99 = 99, overflow bucket clamps to [81, max]
		{0.01, 1, 10},
		{1.0, 100, 100},
		{0.0, 1, 1},
	}
	for _, c := range cases {
		got := s.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Fatalf("Quantile(%v) = %d, want within [%d, %d]", c.q, got, c.lo, c.hi)
		}
	}
	if got := NewHist(1).Snapshot().Quantile(0.5); got != 0 {
		t.Fatalf("empty histogram Quantile = %d, want 0", got)
	}
	// Single-sample histogram: every quantile is that sample.
	one := NewHist(10, 20)
	one.Observe(15)
	for _, q := range []float64{0.1, 0.5, 0.99} {
		if got := one.Snapshot().Quantile(q); got != 15 {
			t.Fatalf("single-sample Quantile(%v) = %d, want 15", q, got)
		}
	}
}

func TestHistMerge(t *testing.T) {
	a := NewHist(10, 100)
	b := NewHist(10, 100)
	for _, v := range []int64{1, 5, 50} {
		a.Observe(v)
	}
	for _, v := range []int64{7, 200} {
		b.Observe(v)
	}
	a.Merge(b)
	s := a.Snapshot()
	if s.Count != 5 || s.Sum != 263 || s.Min != 1 || s.Max != 200 {
		t.Fatalf("merged stats wrong: %+v", s)
	}
	if s.Counts[0] != 3 || s.Counts[1] != 1 || s.Counts[2] != 1 {
		t.Fatalf("merged counts wrong: %v", s.Counts)
	}
	// Merging into an empty histogram adopts min/max.
	c := NewHist(10, 100)
	c.Merge(b)
	cs := c.Snapshot()
	if cs.Min != 7 || cs.Max != 200 || cs.Count != 2 {
		t.Fatalf("empty-merge stats wrong: %+v", cs)
	}
	// Merging an empty histogram is a no-op.
	c.Merge(NewHist(10, 100))
	if c.Snapshot().Count != 2 {
		t.Fatal("empty merge changed count")
	}
	// Mismatched bounds must panic.
	defer func() {
		if recover() == nil {
			t.Fatal("Merge with mismatched bounds did not panic")
		}
	}()
	a.Merge(NewHist(1, 2))
}
