package core

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/xchain"
)

// TWConfig configures an AC3TW run (Section 4.1).
type TWConfig struct {
	Graph        *graph.Graph
	Participants []*xchain.Participant
	Initiator    *xchain.Participant
	Trent        *Trent
	// ConfirmDepth is the depth at which contracts count as deployed
	// (both for Trent's verification and participants').
	ConfirmDepth int
	// AbortAfter (>0): the initiator requests a refund signature if
	// the AC2T has not committed by then.
	AbortAfter sim.Time
	// RetryEvery is the base throttle interval for re-asking Trent:
	// after a refusal ("contracts not deep enough yet at my view"), or
	// after a request vanished into a crashed Trent — so the protocol
	// unblocks by itself the moment the witness comes back.
	RetryEvery sim.Time
}

// TWRun is one executing AC3TW commitment.
type TWRun struct {
	w   *xchain.World
	cfg TWConfig
	rt  *protocol.Runtime

	ms   *crypto.MultiSig
	msID crypto.Hash

	registered bool
	addrs      []crypto.Address
	ownTx      []*chain.Tx
	ownAddr    []crypto.Address
	confirmed  []bool
	announced  []bool

	deployedOwn map[*xchain.Participant]bool
	abortDue    bool
	decision    crypto.Purpose
	decisionSig crypto.Signature
	terminal    []bool

	DecidedAt   sim.Time
	CompletedAt sim.Time
}

// twAnnounce is the off-chain deployment announcement.
type twAnnounce struct {
	EdgeIdx int
	Addr    crypto.Address
}

// twRegistered tells the other participants ms(D) is on file at
// Trent, so everyone deploys concurrently.
type twRegistered struct{}

// NewTW validates and prepares an AC3TW run.
func NewTW(w *xchain.World, cfg TWConfig) (*TWRun, error) {
	if cfg.Graph == nil || len(cfg.Participants) == 0 || cfg.Initiator == nil || cfg.Trent == nil {
		return nil, fmt.Errorf("core: incomplete AC3TW config")
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 5 * sim.Second
	}
	n := len(cfg.Graph.Edges)
	r := &TWRun{
		w:           w,
		cfg:         cfg,
		addrs:       make([]crypto.Address, n),
		ownTx:       make([]*chain.Tx, n),
		ownAddr:     make([]crypto.Address, n),
		confirmed:   make([]bool, n),
		announced:   make([]bool, n),
		terminal:    make([]bool, n),
		deployedOwn: make(map[*xchain.Participant]bool),
	}
	rt, err := protocol.New(protocol.Config{
		World:        w,
		Participants: cfg.Participants,
		Chains:       cfg.Graph.Chains(),
		Drive:        r.drive,
		OnMessage:    r.onMessage,
	})
	if err != nil {
		return nil, err
	}
	r.rt = rt
	return r, nil
}

// Start begins the run: the initiator registers ms(D) at Trent, all
// participants deploy concurrently once that lands, the initiator
// requests the redemption signature when everything is confirmed, and
// everyone settles with Trent's signature as the secret.
func (r *TWRun) Start() {
	r.rt.Event(-1, "ac3tw started")
	r.ms = crypto.NewMultiSig(r.cfg.Graph.Digest())
	for _, p := range r.cfg.Participants {
		r.ms.Add(p.Key)
	}
	r.msID = r.ms.ID()
	if r.cfg.AbortAfter > 0 {
		r.rt.After(r.cfg.AbortAfter, func() {
			if r.decision == 0 {
				r.abortDue = true
				r.rt.DriveAll()
			}
		})
	}
	r.rt.Start()
}

// Resume re-arms a recovered participant and re-drives it; it
// re-learns the decision and every contract location from the shared
// run state and the chains. AC3TW tolerates participant crashes the
// same way AC3WN does — its single point of failure is Trent.
func (r *TWRun) Resume(p *xchain.Participant) { r.rt.Resume(p) }

// Stop retires the run.
func (r *TWRun) Stop() { r.rt.Stop() }

// Events returns the run's timeline.
func (r *TWRun) Events() []Event { return r.rt.Timeline() }

// Marks returns the run's phase boundaries (for trace span derivation).
func (r *TWRun) Marks() []protocol.Mark { return r.rt.Marks() }

// Registered reports whether ms(D) is on file at Trent.
func (r *TWRun) Registered() bool { return r.registered }

// MsID exposes the AC2T's multisig digest (set at Start).
func (r *TWRun) MsID() crypto.Hash { return r.msID }

// onMessage ingests announcements (the runtime re-drives p).
func (r *TWRun) onMessage(p, from *xchain.Participant, msg any) {
	switch m := msg.(type) {
	case twAnnounce:
		if r.addrs[m.EdgeIdx].IsZero() {
			r.addrs[m.EdgeIdx] = m.Addr
		}
		r.confirmed[m.EdgeIdx] = true
		r.noteAllConfirmed()
	case twRegistered:
		// Shared run state already carries the flag; the re-drive the
		// runtime issues after this handler is what matters.
	}
}

// drive is the reconciler step function.
func (r *TWRun) drive(p *xchain.Participant) {
	// Phase 0: registration, initiator-driven and retried until Trent
	// answers.
	if !r.registered {
		if p == r.cfg.Initiator {
			r.rt.Throttle(p, "register", 6*r.cfg.RetryEvery, func() { r.register() })
		}
		return
	}
	// Phase 1: deploy own edges (all participants, concurrently).
	if !r.deployedOwn[p] {
		r.deployOwnEdges(p)
	}
	// Phase 2: re-derive own-deploy confirmations from chain state and
	// announce them (crash-safe: no watch to lose).
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() || r.ownTx[i] == nil || r.announced[i] {
			continue
		}
		if !r.rt.EnsureTx(p, e.Chain, r.ownTx[i], r.cfg.ConfirmDepth) {
			continue
		}
		r.announced[i] = true
		r.addrs[i] = r.ownAddr[i]
		r.confirmed[i] = true
		r.rt.Event(i, "deploy confirmed")
		r.noteAllConfirmed()
		r.rt.Broadcast(p, twAnnounce{EdgeIdx: i, Addr: r.ownAddr[i]})
	}
	// Phase 3: the initiator asks Trent to witness — redeem once every
	// contract is confirmed, refund once the abort deadline passed.
	// Both are throttled retries: a refusal or a request lost in a
	// crashed Trent is re-asked, so the run unblocks when he returns.
	if r.decision == 0 {
		if p != r.cfg.Initiator {
			return
		}
		switch {
		case r.abortDue:
			r.rt.Throttle(p, "request-refund", 6*r.cfg.RetryEvery, func() { r.requestRefund() })
		case r.allConfirmed():
			r.rt.Throttle(p, "request-redeem", 6*r.cfg.RetryEvery, func() { r.requestRedeem() })
		}
		return
	}
	// Phase 4: settle p's edges with Trent's signature.
	r.settle(p)
}

// register stores ms(D) at Trent. A duplicate-registration reply
// means an earlier attempt landed but its response was lost — the
// store is intact, so it counts as success.
func (r *TWRun) register() {
	r.cfg.Trent.Register(r.cfg.Graph, r.ms, func(err error) {
		if r.rt.Stopped() || r.registered {
			return
		}
		if err != nil && !errors.Is(err, ErrAlreadyRegistered) {
			r.rt.Event(-1, "registration failed: "+err.Error())
			return
		}
		r.registered = true
		r.rt.Event(-1, "ms(D) registered at Trent")
		r.rt.Broadcast(r.cfg.Initiator, twRegistered{})
		r.rt.DriveAll()
	})
}

// requestRedeem asks Trent for the redemption signature.
func (r *TWRun) requestRedeem() {
	r.rt.Mark(protocol.PointDecisionTriggered)
	r.rt.Event(-1, "redeem signature requested from Trent")
	r.cfg.Trent.RequestRedeem(r.msID, r.addrs, r.cfg.ConfirmDepth, func(sig crypto.Signature, p crypto.Purpose, err error) {
		if r.rt.Stopped() {
			return
		}
		if err != nil {
			// Retried from drive on the next notification (or the
			// throttle window, whichever is later).
			r.rt.Event(-1, "Trent refused: "+err.Error())
			return
		}
		r.onDecision(p, sig)
	})
}

// requestRefund asks Trent to witness the abort.
func (r *TWRun) requestRefund() {
	r.rt.Mark(protocol.PointDecisionTriggered)
	r.cfg.Trent.RequestRefund(r.msID, func(sig crypto.Signature, p crypto.Purpose, err error) {
		if r.rt.Stopped() || err != nil {
			return
		}
		r.onDecision(p, sig)
	})
}

// onDecision records Trent's signature and drives everyone to settle.
func (r *TWRun) onDecision(p crypto.Purpose, sig crypto.Signature) {
	if r.decision != 0 {
		return
	}
	r.decision = p
	r.decisionSig = sig
	r.DecidedAt = r.w.Sim.Now()
	r.rt.Mark(protocol.PointDecisionConfirmed)
	r.rt.Event(-1, "Trent decided "+p.String())
	r.rt.DriveAll()
}

// deployOwnEdges publishes p's outgoing CentralizedSC contracts.
func (r *TWRun) deployOwnEdges(p *xchain.Participant) {
	r.deployedOwn[p] = true
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() || r.ownTx[i] != nil {
			continue
		}
		params := vm.EncodeGob(contracts.CentralizedParams{
			Recipient: e.To,
			MSDigest:  r.msID,
			Witness:   r.cfg.Trent.Key.Addr,
		})
		tx, addr, err := p.Client(e.Chain).Deploy(contracts.TypeCentralized, params, e.Asset)
		if err != nil {
			r.rt.Event(i, "deploy failed: "+err.Error())
			continue
		}
		p.Deploys++
		r.ownTx[i] = tx
		r.ownAddr[i] = addr
		r.rt.Mark(protocol.PointDeploySubmitted)
		r.rt.Event(i, "deploy submitted")
	}
}

// noteAllConfirmed marks the lock-phase boundary the first time every
// edge contract is confirmed.
func (r *TWRun) noteAllConfirmed() {
	if r.allConfirmed() {
		r.rt.Mark(protocol.PointDeployConfirmed)
	}
}

func (r *TWRun) allConfirmed() bool {
	for _, c := range r.confirmed {
		if !c {
			return false
		}
	}
	return true
}

// settle makes p redeem its incoming edges (RD) or refund its
// outgoing edges (RF) using Trent's signature as the secret, and
// records terminal states as they land on p's view.
func (r *TWRun) settle(p *xchain.Participant) {
	secret := crypto.EncodeSignature(r.decisionSig)
	fn := contracts.FnRedeem
	if r.decision == crypto.PurposeRefund {
		fn = contracts.FnRefund
	}
	for i, e := range r.cfg.Graph.Edges {
		mine := (r.decision == crypto.PurposeRedeem && e.To == p.Addr()) ||
			(r.decision == crypto.PurposeRefund && e.From == p.Addr())
		if !mine || r.addrs[i].IsZero() {
			continue
		}
		client := p.Client(e.Chain)
		ct, ok := client.ContractNow(r.addrs[i], 0)
		if !ok {
			continue
		}
		sc, isSC := ct.(*contracts.CentralizedSC)
		if !isSC {
			continue
		}
		if sc.State != contracts.StatePublished {
			if !r.terminal[i] {
				r.terminal[i] = true
				r.rt.Event(i, "terminal "+sc.State.String())
				r.CompletedAt = r.w.Sim.Now()
			}
			continue
		}
		i := i
		r.rt.Throttle(p, fmt.Sprintf("%s-%d", fn, i), 6*r.cfg.RetryEvery, func() {
			if _, err := client.Call(r.addrs[i], fn, secret, 0); err == nil {
				p.Calls++
				r.rt.Event(i, fn+" submitted")
			}
		})
	}
}

// Addrs exposes per-edge contract addresses for grading.
func (r *TWRun) Addrs() []crypto.Address { return append([]crypto.Address(nil), r.addrs...) }

// Grade reads terminal contract states from ground-truth views and
// counts on-chain operations (AC3TW pays N deploys + N calls; the
// witness work happens off-chain at Trent).
func (r *TWRun) Grade() *xchain.Outcome {
	out := xchain.GradeGraph(r.w, r.cfg.Graph, r.addrs)
	out.Start = r.rt.StartedAt()
	out.End = r.rt.TimelineEnd(out.Start)
	out.Deploys, out.Calls = xchain.CountGraphOps(r.w, r.cfg.Graph, r.addrs)
	return out
}
