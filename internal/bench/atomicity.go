package bench

import (
	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/xchain"
)

// atomicityScenario is one (protocol, failure schedule) cell of the
// safety experiment.
type atomicityScenario struct {
	name     string
	protocol string // "htlc" or "ac3wn"
	crash    string // "none", "after-reveal", "after-reveal-recover"
}

// Atomicity reproduces the paper's safety argument empirically
// (Section 1's motivating failure + the all-or-nothing guarantee of
// Section 5): over `runs` seeds per scenario, count commits, aborts,
// atomicity violations, and asset losses for the HTLC baseline versus
// AC3WN under crash schedules.
func Atomicity(seed uint64, runs int) *Result {
	if runs < 1 {
		runs = 1
	}
	scenarios := []atomicityScenario{
		{"HTLC, no failures", "htlc", "none"},
		{"HTLC, victim crashes after reveal", "htlc", "after-reveal"},
		{"HTLC, victim recovers too late", "htlc", "after-reveal-recover"},
		{"AC3WN, no failures", "ac3wn", "none"},
		{"AC3WN, victim crashes at decision", "ac3wn", "after-reveal"},
		{"AC3WN, victim recovers later", "ac3wn", "after-reveal-recover"},
	}

	t := metrics.NewTable("Atomicity under crash failures (Section 1 scenario, N runs each)",
		"scenario", "runs", "committed", "aborted", "stuck-safe", "VIOLATIONS", "victim lost assets")
	ok := true
	for _, sc := range scenarios {
		var committed, aborted, stuck, violations, losses int
		for i := 0; i < runs; i++ {
			out, lost := runAtomicityCase(seed+uint64(i)*101, sc)
			switch {
			case out.AtomicityViolated():
				violations++
			case out.Committed():
				committed++
			case out.Aborted():
				aborted++
			default:
				stuck++
			}
			if lost {
				losses++
			}
		}
		t.AddRow(sc.name, runs, committed, aborted, stuck, violations, losses)

		// The paper's claims, checked hard:
		switch {
		case sc.protocol == "htlc" && sc.crash != "none" && violations != runs:
			ok = false // the baseline must lose atomicity on every crash run
		case sc.protocol == "ac3wn" && violations != 0:
			ok = false // AC3WN must never violate
		case sc.protocol == "ac3wn" && sc.crash == "after-reveal-recover" && committed != runs:
			ok = false // commitment: recovery must complete the AC2T
		case sc.crash == "none" && committed != runs:
			ok = false
		}
	}
	t.Note("VIOLATIONS = some contract redeemed while another refunded (the all-or-nothing failure)")
	t.Note("'stuck-safe' = crashed participant's asset still locked awaiting recovery — safe, and AC3WN completes it on recovery")
	return &Result{
		ID:     "atomicity",
		Title:  "all-or-nothing under crashes: HTLC baseline vs AC3WN",
		Output: t.String(),
		OK:     ok,
	}
}

// runAtomicityCase runs one seeded two-party swap under the scenario
// and reports the graded outcome plus whether the crash victim (bob)
// lost assets: his outgoing contract refunded to the counterparty's
// benefit while his incoming asset never arrived.
func runAtomicityCase(seed uint64, sc atomicityScenario) (*xchain.Outcome, bool) {
	b := xchain.NewBuilder(seed)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	ids := []chain.ID{"bitcoin", "ethereum"}
	if sc.protocol == "ac3wn" {
		ids = append(ids, "witness")
	}
	for _, id := range ids {
		b.Chain(spec(id))
	}
	b.Fund(alice, "bitcoin", 1_000_000)
	b.Fund(bob, "ethereum", 1_000_000)
	w, err := b.Build()
	if err != nil {
		return &xchain.Outcome{}, false
	}
	g, err := graph.TwoParty(int64(seed), alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	if err != nil {
		return &xchain.Outcome{}, false
	}

	var grade func() *xchain.Outcome
	var resume func()
	switch sc.protocol {
	case "htlc":
		r, err := swap.New(w, swap.Config{
			Graph:        g,
			Participants: []*xchain.Participant{alice, bob},
			Leader:       alice,
			Delta:        deltaNominal + 2*blockInterval,
			ConfirmDepth: confirmDepth,
		})
		if err != nil {
			return &xchain.Outcome{}, false
		}
		r.Start()
		grade = r.Grade
		resume = func() { r.Resume(bob) }
		// Crash bob the moment the secret reveal is submitted.
		if sc.crash != "none" {
			w.Sim.Poll(100*sim.Millisecond, func() bool {
				for _, ev := range r.Events() {
					if ev.Edge == 1 && ev.Label == "redeem submitted" {
						bob.Crash()
						return true
					}
				}
				return false
			})
		}
	case "ac3wn":
		r, err := core.New(w, core.Config{
			Graph:        g,
			Participants: []*xchain.Participant{alice, bob},
			Initiator:    alice,
			WitnessChain: "witness",
			WitnessDepth: confirmDepth,
			AssetDepth:   confirmDepth,
		})
		if err != nil {
			return &xchain.Outcome{}, false
		}
		r.Start()
		grade = r.Grade
		resume = func() { r.Resume(bob) }
		if sc.crash != "none" {
			w.Sim.Poll(100*sim.Millisecond, func() bool {
				for _, ev := range r.Events() {
					if ev.Label == "authorize_redeem submitted by alice" ||
						ev.Label == "authorize_redeem submitted by bob" {
						bob.Crash()
						return true
					}
				}
				return false
			})
		}
	}

	w.RunUntil(2 * sim.Hour) // all baseline timelocks expire in here
	if sc.crash == "after-reveal-recover" {
		// Both protocols share the runtime's crash/resume lifecycle:
		// the recovered reconciler re-derives its state from the
		// chains and retries. AC3WN's retry redeems; the baseline's
		// finds the timelocked refund already executed.
		bob.Recover()
		resume()
		w.RunUntil(w.Sim.Now() + time90m)
	}
	w.StopMining()
	w.RunFor(sim.Minute)

	out := grade()
	// Victim loss: bob's outgoing edge (index 1, ethereum) refunded
	// is fine only if his incoming (index 0) is not redeemed by the
	// counterparty; asset loss means edge 1 left bob's hands (RD by
	// alice) while edge 0 never paid bob (RF to alice).
	lost := out.AtomicityViolated()
	return out, lost
}

const time90m = 90 * sim.Minute
