package miner

import (
	"repro/internal/chain"
	"repro/internal/crypto"
)

// mempool holds pending transactions in arrival order.
type mempool struct {
	byID     map[crypto.Hash]*chain.Tx
	order    []crypto.Hash
	failures map[crypto.Hash]int
}

func newMempool() *mempool {
	return &mempool{
		byID:     make(map[crypto.Hash]*chain.Tx),
		failures: make(map[crypto.Hash]int),
	}
}

func (m *mempool) add(tx *chain.Tx) {
	id := tx.ID()
	if _, dup := m.byID[id]; dup {
		return
	}
	m.byID[id] = tx
	m.order = append(m.order, id)
}

func (m *mempool) remove(id crypto.Hash) {
	delete(m.byID, id)
	delete(m.failures, id)
	// order is compacted lazily in ordered().
}

// fail records a validation failure and returns the running count.
func (m *mempool) fail(id crypto.Hash) int {
	m.failures[id]++
	return m.failures[id]
}

// ordered returns pending transactions in arrival order, compacting
// tombstones.
func (m *mempool) ordered() []*chain.Tx {
	out := make([]*chain.Tx, 0, len(m.byID))
	live := m.order[:0]
	for _, id := range m.order {
		if tx, ok := m.byID[id]; ok {
			out = append(out, tx)
			live = append(live, id)
		}
	}
	m.order = live
	return out
}

func (m *mempool) size() int { return len(m.byID) }
