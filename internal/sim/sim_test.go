package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEventOrdering(t *testing.T) {
	s := New(1)
	var got []int
	s.At(30, func() { got = append(got, 3) })
	s.At(10, func() { got = append(got, 1) })
	s.At(20, func() { got = append(got, 2) })
	s.Run()
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", s.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	s := New(1)
	var got []int
	for i := 0; i < 50; i++ {
		i := i
		s.At(5, func() { got = append(got, i) })
	}
	s.Run()
	for i := range got {
		if got[i] != i {
			t.Fatalf("FIFO violated at %d: got %v", i, got[:i+1])
		}
	}
}

func TestAfterChainsAdvanceClock(t *testing.T) {
	s := New(1)
	var times []Time
	s.After(10, func() {
		times = append(times, s.Now())
		s.After(5, func() { times = append(times, s.Now()) })
	})
	s.Run()
	if times[0] != 10 || times[1] != 15 {
		t.Fatalf("times = %v, want [10 15]", times)
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on scheduling in the past")
		}
	}()
	s := New(1)
	s.After(10, func() { s.At(5, func() {}) })
	s.Run()
}

func TestNegativeAfterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative After")
		}
	}()
	New(1).After(-1, func() {})
}

func TestNilFnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on nil fn")
		}
	}()
	New(1).At(0, nil)
}

func TestRunUntil(t *testing.T) {
	s := New(1)
	var ran []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		s.At(at, func() { ran = append(ran, at) })
	}
	s.RunUntil(12)
	if len(ran) != 2 || s.Now() != 12 {
		t.Fatalf("ran=%v now=%d, want 2 events and now=12", ran, s.Now())
	}
	if s.Pending() != 2 {
		t.Fatalf("Pending() = %d, want 2", s.Pending())
	}
	s.Run()
	if len(ran) != 4 || s.Now() != 20 {
		t.Fatalf("after Run: ran=%v now=%d", ran, s.Now())
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	s := New(1)
	s.RunUntil(100)
	if s.Now() != 100 {
		t.Fatalf("Now() = %d, want 100", s.Now())
	}
}

func TestStop(t *testing.T) {
	s := New(1)
	n := 0
	s.At(1, func() { n++; s.Stop() })
	s.At(2, func() { n++ })
	s.Run()
	if n != 1 {
		t.Fatalf("executed %d events before stop, want 1", n)
	}
	s.Run() // resumes
	if n != 2 {
		t.Fatalf("executed %d events after resume, want 2", n)
	}
}

func TestMaxEventsGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected MaxEvents panic")
		}
	}()
	s := New(1)
	s.MaxEvents = 10
	var loop func()
	loop = func() { s.After(1, loop) }
	s.After(1, loop)
	s.Run()
}

func TestPollStopsWhenDone(t *testing.T) {
	s := New(1)
	n := 0
	s.Poll(10, func() bool {
		n++
		return n == 3
	})
	s.Run()
	if n != 3 {
		t.Fatalf("poll ran %d times, want 3", n)
	}
	if s.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", s.Now())
	}
}

func TestPollCancel(t *testing.T) {
	s := New(1)
	n := 0
	p := s.Poll(10, func() bool { n++; return false })
	s.At(35, func() { p.Cancel() })
	s.RunUntil(200)
	if n != 3 {
		t.Fatalf("poll ran %d times, want 3 (canceled at t=35)", n)
	}
}

func TestPollBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on non-positive poll interval")
		}
	}()
	New(1).Poll(0, func() bool { return true })
}

func TestDeterminismAcrossRuns(t *testing.T) {
	trace := func(seed uint64) []uint64 {
		s := New(seed)
		var out []uint64
		var tick func()
		tick = func() {
			out = append(out, s.RNG().Uint64())
			if len(out) < 100 {
				s.After(s.RNG().Int63n(50)+1, tick)
			}
		}
		s.After(1, tick)
		s.Run()
		return out
	}
	a, b := trace(42), trace(42)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at step %d", i)
		}
	}
	c := trace(43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestRNGUniformity(t *testing.T) {
	r := NewRNG(7)
	const n = 100000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(600)
	}
	mean := sum / n
	if math.Abs(mean-600) > 15 {
		t.Fatalf("Exp mean = %v, want ~600", mean)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(9)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	f := func(n uint8) bool {
		m := int(n % 64)
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGBytesDeterministic(t *testing.T) {
	a := make([]byte, 37)
	b := make([]byte, 37)
	NewRNG(5).Bytes(a)
	NewRNG(5).Bytes(b)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("Bytes not deterministic at %d", i)
		}
	}
	allZero := true
	for _, v := range a {
		if v != 0 {
			allZero = false
		}
	}
	if allZero {
		t.Fatal("Bytes produced all zeros")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	r := NewRNG(3)
	f := r.Fork()
	a := r.Uint64()
	b := f.Uint64()
	if a == b {
		t.Fatal("forked stream mirrors parent")
	}
}

func TestExpTimeAtLeastOne(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if d := r.ExpTime(2); d < 1 {
			t.Fatalf("ExpTime returned %d < 1", d)
		}
	}
}

func TestResetMatchesFreshSim(t *testing.T) {
	// A Reset sim must replay exactly like New(seed): same event
	// interleaving, same RNG stream.
	trace := func(s *Sim) []uint64 {
		var out []uint64
		for i := 0; i < 5; i++ {
			i := i
			s.After(Time(i+1)*Second, func() {
				out = append(out, uint64(s.Now())^s.RNG().Uint64())
			})
		}
		s.Run()
		return out
	}
	fresh := trace(New(99))
	reused := New(7)
	reused.After(Second, func() {}) // dirty it
	reused.MaxEvents = 3
	reused.Run()
	reused.Reset(99)
	if reused.Now() != 0 || reused.Pending() != 0 || reused.Executed != 0 || reused.MaxEvents != 0 {
		t.Fatalf("Reset left residue: now=%d pending=%d executed=%d", reused.Now(), reused.Pending(), reused.Executed)
	}
	got := trace(reused)
	if len(got) != len(fresh) {
		t.Fatalf("trace length %d != %d", len(got), len(fresh))
	}
	for i := range got {
		if got[i] != fresh[i] {
			t.Fatalf("trace diverges at %d: %d != %d", i, got[i], fresh[i])
		}
	}
}

func TestRunUntilDone(t *testing.T) {
	s := New(1)
	fired := 0
	// A self-rescheduling actor that never drains the queue — the
	// situation RunUntilDone exists for.
	var tick func()
	tick = func() {
		fired++
		s.After(Second, tick)
	}
	s.After(Second, tick)
	if !s.RunUntilDone(func() bool { return fired >= 10 }, Second/2, Hour) {
		t.Fatal("condition never reported done")
	}
	if fired < 10 || fired > 12 {
		t.Fatalf("fired = %d, want ~10 (stop promptly after quiescence)", fired)
	}
	if s.Now() >= Hour {
		t.Fatalf("ran to deadline (now=%d) despite done condition", s.Now())
	}
	// Deadline path: condition that never holds.
	if s.RunUntilDone(func() bool { return false }, Second, s.Now()+10*Second) {
		t.Fatal("reported done for an impossible condition")
	}
}

func TestRunUntilDoneAlreadyDone(t *testing.T) {
	s := New(1)
	ran := false
	s.After(Second, func() { ran = true })
	if !s.RunUntilDone(func() bool { return true }, Second, Hour) {
		t.Fatal("not done")
	}
	if ran {
		t.Fatal("dispatched events although already done")
	}
}
