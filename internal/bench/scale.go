package bench

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// Scale reproduces Section 5.2's scalability argument empirically:
// atomicity coordination is embarrassingly parallel across AC2Ts, so
// adding witness networks raises aggregate AC2T throughput until the
// asset chains themselves saturate. We make each witness chain a
// deliberate bottleneck (1 transaction per block) and run a batch of
// independent AC2Ts round-robined across W ∈ {1, 2, 4} witness
// networks.
func Scale(seed uint64) *Result {
	const swaps = 24
	t := metrics.NewTable("Section 5.2 — aggregate AC2T throughput vs number of witness networks",
		"witness networks", "AC2Ts", "committed", "makespan (min)", "throughput (AC2T/hour)")
	ok := true
	var mk1 sim.Time
	for _, wn := range []int{1, 2, 4} {
		makespan, committed, err := runScale(seed+uint64(wn)*97, swaps, wn)
		if err != nil {
			return &Result{ID: "scale", Title: "scalability", Output: err.Error()}
		}
		if committed != swaps {
			ok = false
		}
		if wn == 1 {
			mk1 = makespan
		}
		throughput := float64(swaps) / (float64(makespan) / float64(sim.Hour))
		t.AddRow(wn, swaps, committed,
			fmt.Sprintf("%.1f", float64(makespan)/float64(sim.Minute)),
			fmt.Sprintf("%.1f", throughput))
		// Going 1→4 witness networks must be a real win with a
		// saturated witness chain.
		if wn == 4 && makespan > mk1*2/3 {
			ok = false
		}
	}
	t.Note("each witness chain is capacity-limited to 1 tx/block, making coordination the bottleneck")
	t.Note("different AC2Ts need no coordination with each other, so witness networks add up (until asset chains saturate)")
	return &Result{
		ID:     "scale",
		Title:  "witness networks are horizontally scalable",
		Output: t.String(),
		OK:     ok,
	}
}

// runScale runs `swaps` independent two-party AC2Ts across `wn`
// witness chains and returns the makespan until the last commit.
func runScale(seed uint64, swaps, wn int) (sim.Time, int, error) {
	b := xchain.NewBuilder(seed)

	assetA := spec("asset-a")
	assetB := spec("asset-b")
	b.Chain(assetA)
	b.Chain(assetB)
	witnessIDs := make([]chain.ID, wn)
	for i := range witnessIDs {
		witnessIDs[i] = chain.ID(fmt.Sprintf("witness-%d", i))
		ws := spec(witnessIDs[i])
		ws.Params.MaxBlockTxs = 1 // the deliberate bottleneck
		b.Chain(ws)
	}

	type pair struct{ alice, bob *xchain.Participant }
	pairs := make([]pair, swaps)
	for i := range pairs {
		pairs[i] = pair{
			alice: b.Participant(fmt.Sprintf("alice%d", i)),
			bob:   b.Participant(fmt.Sprintf("bob%d", i)),
		}
		b.Fund(pairs[i].alice, "asset-a", 1_000_000)
		b.Fund(pairs[i].bob, "asset-b", 1_000_000)
	}
	w, err := b.Build()
	if err != nil {
		return 0, 0, err
	}

	runs := make([]*core.Run, swaps)
	for i, p := range pairs {
		g, err := graph.TwoParty(int64(seed)+int64(i), p.alice.Addr(), p.bob.Addr(),
			10_000, "asset-a", 10_000, "asset-b")
		if err != nil {
			return 0, 0, err
		}
		r, err := core.New(w, core.Config{
			Graph:        g,
			Participants: []*xchain.Participant{p.alice, p.bob},
			Initiator:    p.alice,
			WitnessChain: witnessIDs[i%wn],
			WitnessDepth: 2,
			AssetDepth:   2,
		})
		if err != nil {
			return 0, 0, err
		}
		runs[i] = r
		r.Start()
	}
	w.RunUntil(6 * sim.Hour)
	w.StopMining()
	w.RunFor(sim.Minute)

	var makespan sim.Time
	committed := 0
	for _, r := range runs {
		out := r.Grade()
		if out.Committed() {
			committed++
			if r.CompletedAt > makespan {
				makespan = r.CompletedAt
			}
		}
	}
	return makespan, committed, nil
}
