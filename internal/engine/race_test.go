package engine

import (
	"encoding/json"
	"testing"

	"repro/internal/sim"
)

// TestMultiWorkerAdversityBatchedDeterminism is the suite's race
// harness: the full hostile-scenario mix (partitions, loss, geo skew,
// crashes, decision races) with witness-side decision batching on,
// executed with an explicit multi-worker pool. Under `go test -race`
// (the CI configuration) this drives internal/engine's worker
// scheduling and internal/batch's coordinator concurrently in one run
// — the two packages whose multi-goroutine paths the determinism
// contract most depends on — and then proves the scheduling still
// cannot leak: a serialized run of the same seed must produce
// byte-identical aggregates.
//
// Workers is pinned to 4 (not left at the GOMAXPROCS default) so the
// concurrent interleaving exists even on constrained CI runners.
func TestMultiWorkerAdversityBatchedDeterminism(t *testing.T) {
	wl := adversityWorkload(24)
	wl.BatchWindow = 2 * sim.Minute
	cfg := Config{Seed: 7, Shards: 4, Workers: 4, Workload: wl}
	a := run(t, cfg)
	cfg.Workers = 1
	b := run(t, cfg)

	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("batched adversity aggregates differ across worker counts:\n%s\n----\n%s", aj, bj)
	}

	// The run must actually exercise what it claims to: every AC2T
	// graded without violations, adversity biting, batches flowing.
	if a.Graded != 24 {
		t.Fatalf("graded %d/24", a.Graded)
	}
	if a.Violations != 0 {
		t.Fatalf("%d atomicity violations under batched adversity", a.Violations)
	}
	if a.MsgsDropped == 0 {
		t.Fatal("no messages dropped — the lossy scenario never bit")
	}
	if a.BatchesPublished == 0 || a.BatchDecisions == 0 {
		t.Fatalf("batching idle: %d batches, %d decisions", a.BatchesPublished, a.BatchDecisions)
	}
	if a.WitnessDecisionTxs != 0 {
		t.Fatalf("batched mode posted %d per-AC2T decision txs", a.WitnessDecisionTxs)
	}
}
