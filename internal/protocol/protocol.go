// Package protocol is the reconciler runtime every commitment
// protocol in this repository runs on: AC3WN (internal/core), the
// centralized-witness AC3TW baseline (internal/core), and the
// Nolan/Herlihy HTLC baselines (internal/swap).
//
// A protocol is written as a step function — drive(p) inspects the
// world through participant p's chain clients and performs the next
// enabled action — plus chain-state readers. Everything else the
// three protocols used to reimplement privately lives here:
//
//   - per-participant tip-change subscriptions (one miner.Sub per
//     chain the AC2T touches), armed at Start, torn down by crashes,
//     and re-armed by Resume;
//   - the off-chain announcement inbox: messages are handed to the
//     protocol's OnMessage and the recipient is re-driven;
//   - throttled action keys, so an on-chain action that keeps failing
//     is not re-submitted on every wakeup;
//   - one-shot keyed timers (abort deadlines, decision-push grace
//     periods, refund timelocks) that re-drive a participant at an
//     absolute virtual time;
//   - the timeline event log the experiments render;
//   - transaction keep-alive (EnsureTx): a submitted transaction is
//     re-multicast if it falls off the canonical chain, and its
//     confirmation depth is re-derived from chain state on every
//     drive — which is what makes crash/resume uniform: a recovered
//     participant re-arms subscriptions and re-reads the chains, and
//     the step function takes it from there.
//
// The runtime owns no protocol semantics. It never decides what to
// do — only when to ask the protocol, and it guarantees the protocol
// is never asked on behalf of a crashed participant or after Stop.
package protocol

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/miner"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// Event is a timestamped timeline entry (the Figure 8/9 phase
// renderings and the engine's scenario hooks consume these).
type Event struct {
	At    sim.Time
	Label string
	Edge  int // -1 for protocol-level events
}

// Point is a named phase boundary in an AC2T's lifecycle. Every
// protocol on the runtime marks the same four points, which is what
// makes the trace layer's phase spans comparable across AC3WN, AC3TW
// and HTLC: the protocols disagree about *how* a decision happens, but
// not about when contracts were submitted, when they were all
// confirmed, when the decisive action started, and when the decision
// became final.
type Point string

// The cross-protocol instrumentation points, in causal order.
const (
	// PointDeploySubmitted: the first on-chain contract submission
	// (SCw for AC3WN, the first asset contract otherwise).
	PointDeploySubmitted Point = "deploy_submitted"
	// PointDeployConfirmed: every asset contract confirmed at depth.
	PointDeployConfirmed Point = "deploy_confirmed"
	// PointDecisionTriggered: the decisive action started — the first
	// authorize_* submission (AC3WN), the witness request (AC3TW), or
	// the first secret-revealing redeem (HTLC).
	PointDecisionTriggered Point = "decision_triggered"
	// PointDecisionConfirmed: the decision is final — stable at depth
	// d on the witness chain, signed by Trent, or the reveal confirmed.
	PointDecisionConfirmed Point = "decision_confirmed"
)

// Mark is one recorded phase boundary.
type Mark struct {
	Point Point
	At    sim.Time
}

// Config wires a protocol's step function into the runtime.
type Config struct {
	// World hosts the simulated chains and the virtual clock.
	World *xchain.World
	// Participants are the AC2T's parties. The runtime installs their
	// off-chain inboxes and owns their chain subscriptions.
	Participants []*xchain.Participant
	// Chains are the blockchains whose tip changes re-drive a
	// participant's reconciler (duplicates are ignored).
	Chains []chain.ID
	// Drive is the protocol step function: inspect chain state through
	// p's clients and take the next enabled action. It must be
	// idempotent — the runtime calls it on every tip change, on every
	// announcement, on timer expiry, at Start, and on Resume.
	Drive func(p *xchain.Participant)
	// OnMessage ingests one off-chain announcement delivered to p; the
	// runtime re-drives p afterwards. Optional.
	OnMessage func(p, from *xchain.Participant, msg any)
}

// pstate is the runtime's per-participant bookkeeping: subscriptions,
// throttle stamps, armed one-shot timers. Protocol state does not
// belong here — protocols keep their own flags and re-derive what a
// crash loses from the chains.
type pstate struct {
	subs        []*miner.Sub
	lastAttempt map[string]sim.Time
	armed       map[string]bool
}

// Runtime drives one protocol run's reconcilers.
type Runtime struct {
	cfg     Config
	chains  []chain.ID // deduplicated subscription set
	states  map[*xchain.Participant]*pstate
	events  []Event
	marks   []Mark
	marked  map[Point]bool
	start   sim.Time
	started bool
	stopped bool
}

// New validates the wiring and prepares a runtime.
func New(cfg Config) (*Runtime, error) {
	if cfg.World == nil || len(cfg.Participants) == 0 || cfg.Drive == nil {
		return nil, fmt.Errorf("protocol: incomplete runtime config")
	}
	if len(cfg.Chains) == 0 {
		return nil, fmt.Errorf("protocol: no chains to subscribe to")
	}
	seen := make(map[chain.ID]bool, len(cfg.Chains))
	var chains []chain.ID
	for _, id := range cfg.Chains {
		if seen[id] {
			continue
		}
		if _, ok := cfg.World.Nets[id]; !ok {
			return nil, fmt.Errorf("protocol: unknown chain %q", id)
		}
		seen[id] = true
		chains = append(chains, id)
	}
	rt := &Runtime{
		cfg:    cfg,
		chains: chains,
		states: make(map[*xchain.Participant]*pstate, len(cfg.Participants)),
		marked: make(map[Point]bool),
	}
	for _, p := range cfg.Participants {
		rt.states[p] = &pstate{
			lastAttempt: make(map[string]sim.Time),
			armed:       make(map[string]bool),
		}
	}
	return rt, nil
}

// Start records the start time, installs every participant's
// announcement inbox, arms their chain subscriptions, and drives each
// live participant once so protocols make their opening move without
// waiting for the first block.
func (rt *Runtime) Start() {
	rt.start = rt.cfg.World.Sim.Now()
	rt.started = true
	for _, p := range rt.cfg.Participants {
		p := p
		p.OnMessage(func(from *xchain.Participant, msg any) { rt.deliver(p, from, msg) })
		rt.subscribe(p)
	}
	for _, p := range rt.cfg.Participants {
		rt.Drive(p)
	}
}

// Resume re-arms a recovered participant's subscriptions and
// re-drives it: the participant re-learns everything else from chain
// state through its step function. This is the uniform crash/recovery
// lifecycle — identical for every protocol on the runtime.
func (rt *Runtime) Resume(p *xchain.Participant) {
	if rt.stopped || p.Crashed() {
		return
	}
	rt.subscribe(p)
	rt.Drive(p)
}

// Stop retires the run: every subscription is canceled and all future
// drives, timers, and deliveries become no-ops. Idempotent, and safe
// after crashes already tore subscriptions down.
func (rt *Runtime) Stop() {
	rt.stopped = true
	for _, p := range rt.cfg.Participants {
		st := rt.states[p]
		for _, sub := range st.subs {
			sub.Cancel()
		}
		st.subs = nil
	}
}

// Stopped reports whether the run was retired.
func (rt *Runtime) Stopped() bool { return rt.stopped }

// Now returns the current virtual time.
func (rt *Runtime) Now() sim.Time { return rt.cfg.World.Sim.Now() }

// StartedAt returns the virtual time Start ran.
func (rt *Runtime) StartedAt() sim.Time { return rt.start }

// Drive runs the protocol step function for p unless the run is
// stopped, not yet started, or p is down.
func (rt *Runtime) Drive(p *xchain.Participant) {
	if rt.stopped || !rt.started || p.Crashed() {
		return
	}
	rt.cfg.Drive(p)
}

// DriveAll drives every live participant (in configuration order, so
// runs stay deterministic).
func (rt *Runtime) DriveAll() {
	for _, p := range rt.cfg.Participants {
		rt.Drive(p)
	}
}

// subscribe points p's reconciler at the notification bus: every
// chain in the subscription set re-drives p when its canonical tip
// changes. Existing subscriptions are canceled first, so subscribe is
// safe to call again on Resume. A participant that is down subscribes
// to nothing — its clients refuse watch registration while halted
// (miner.ErrHalted), and Resume re-arms after recovery. This used to
// lean on the clients silently swallowing registrations from crashed
// participants; now the runtime skips them explicitly.
func (rt *Runtime) subscribe(p *xchain.Participant) {
	st := rt.states[p]
	for _, sub := range st.subs {
		sub.Cancel()
	}
	st.subs = st.subs[:0]
	if p.Crashed() {
		return
	}
	for _, id := range rt.chains {
		sub, err := p.Client(id).OnTipChange(func() { rt.Drive(p) })
		if err != nil {
			// A client halted independently of the participant (cannot
			// happen through the Participant crash API, which halts all
			// clients and flags the participant): drop this chain's
			// subscription; the others still drive p.
			continue
		}
		st.subs = append(st.subs, sub)
	}
}

// deliver hands an off-chain announcement to the protocol and
// re-drives the recipient.
func (rt *Runtime) deliver(p, from *xchain.Participant, msg any) {
	if rt.stopped || p.Crashed() {
		return
	}
	if rt.cfg.OnMessage != nil {
		rt.cfg.OnMessage(p, from, msg)
	}
	rt.Drive(p)
}

// Broadcast sends an off-chain message from one participant to this
// run's other participants. Announcements are scoped to the AC2T's
// own parties: concurrent AC2Ts on shared chains must not see (or
// trust) each other's contract locations.
func (rt *Runtime) Broadcast(from *xchain.Participant, msg any) {
	for _, q := range rt.cfg.Participants {
		if q != from {
			from.Tell(q, msg)
		}
	}
}

// Event appends a timeline entry.
func (rt *Runtime) Event(edge int, label string) {
	rt.events = append(rt.events, Event{At: rt.Now(), Label: label, Edge: edge})
}

// Mark records a phase boundary at the current virtual time. First
// mark wins: protocols call it from idempotent step functions, and a
// boundary that "happens again" (a retry, a second participant
// observing the same stable state) is the same boundary.
func (rt *Runtime) Mark(p Point) {
	if rt.marked[p] {
		return
	}
	rt.marked[p] = true
	rt.marks = append(rt.marks, Mark{Point: p, At: rt.Now()})
}

// Marks returns a copy of the recorded phase boundaries in the order
// they occurred.
func (rt *Runtime) Marks() []Mark { return append([]Mark(nil), rt.marks...) }

// MarkTime returns when a point was marked (false if it never was).
func (rt *Runtime) MarkTime(p Point) (sim.Time, bool) {
	if !rt.marked[p] {
		return 0, false
	}
	for _, m := range rt.marks {
		if m.Point == p {
			return m.At, true
		}
	}
	return 0, false
}

// Timeline returns a copy of the run's events. It used to return the
// live internal slice, which let a caller holding the result observe
// (or, worse, be invalidated by) later appends — every caller now gets
// its own snapshot.
func (rt *Runtime) Timeline() []Event { return append([]Event(nil), rt.events...) }

// TimelineEnd returns the latest event timestamp, at least start —
// the observation end every protocol's Grade stamps on its outcome.
func (rt *Runtime) TimelineEnd(start sim.Time) sim.Time {
	end := start
	for _, ev := range rt.events {
		if ev.At > end {
			end = ev.At
		}
	}
	return end
}

// Throttle runs fn now unless it already ran for (p, key) within the
// last interval — the guard that keeps a failing on-chain action from
// being re-submitted on every wakeup.
func (rt *Runtime) Throttle(p *xchain.Participant, key string, interval sim.Time, fn func()) {
	st := rt.states[p]
	now := rt.Now()
	if last, ok := st.lastAttempt[key]; ok && now-last < interval {
		return
	}
	st.lastAttempt[key] = now
	fn()
}

// WakeAt arms a one-shot timer that re-drives p at absolute virtual
// time t (clamped to now). While a timer for (p, key) is pending,
// further arms are ignored — protocols can re-request a wake on every
// drive without stacking events. This is how explicit protocol
// deadlines (decision-push grace, refund timelocks) run without any
// polling cadence.
func (rt *Runtime) WakeAt(p *xchain.Participant, key string, t sim.Time) {
	st := rt.states[p]
	if st.armed[key] {
		return
	}
	st.armed[key] = true
	s := rt.cfg.World.Sim
	if t < s.Now() {
		t = s.Now()
	}
	s.At(t, func() {
		st.armed[key] = false
		rt.Drive(p)
	})
}

// After schedules a run-level one-shot callback d from now, dropped
// if the run stops first (protocol-wide deadlines like AbortAfter).
func (rt *Runtime) After(d sim.Time, fn func()) {
	rt.cfg.World.Sim.After(d, func() {
		if !rt.stopped {
			fn()
		}
	})
}

// EnsureTx reports whether tx is canonical at the given depth on p's
// view of the chain, and keeps the submission alive meanwhile: a
// transaction absent from the canonical chain for a whole resubmit
// window (the client's ResubmitEvery) is re-multicast — covering
// mempool wipes and fork losses. Because the check reads only chain
// state, it survives crashes: a recovered participant's next drive
// re-derives confirmation (or resubmits) with no watch to re-arm.
func (rt *Runtime) EnsureTx(p *xchain.Participant, id chain.ID, tx *chain.Tx, depth int) bool {
	c := p.Client(id)
	view := c.Chain()
	txID := tx.ID()
	if b, _, found := view.FindTx(txID); found {
		d, ok := view.DepthOf(b.Hash())
		return ok && d >= depth
	}
	// Absent: in flight, purged, or dropped with a losing fork. The
	// first observation opens the window; a resubmission happens only
	// if the transaction is still absent a full window later.
	st := rt.states[p]
	key := "resubmit:" + string(txID[:])
	now := rt.Now()
	last, seen := st.lastAttempt[key]
	if !seen || now-last >= c.ResubmitEvery {
		if seen {
			c.Submit(tx)
		}
		st.lastAttempt[key] = now
	}
	return false
}

// FindCall scans a canonical chain view newest-first for a call of fn
// on the contract — how participants locate decision transactions
// (AC3WN's authorize_* evidence) and extract revealed arguments
// (HTLC's secret) from chain state alone.
func FindCall(view *chain.Chain, contract crypto.Address, fn string) (*chain.Tx, bool) {
	return FindCallMatch(view, contract, fn, nil)
}

// FindCallMatch is FindCall with an argument-level filter: among the
// calls of fn on the contract, it returns the newest whose decoded
// arguments satisfy match (nil matches everything). Batched AC3WN
// participants use it to locate the commit_batch transaction whose
// decision set contains their own SCw — re-derivable from chain state
// alone, which is what makes crash/resume work without any local
// batch bookkeeping.
func FindCallMatch(view *chain.Chain, contract crypto.Address, fn string, match func(*chain.Tx) bool) (*chain.Tx, bool) {
	for h := view.Height(); ; h-- {
		b, ok := view.CanonicalAt(h)
		if !ok {
			break
		}
		for _, tx := range b.Txs {
			if tx.Kind == chain.TxCall && tx.Contract == contract && tx.Fn == fn && (match == nil || match(tx)) {
				return tx, true
			}
		}
		if h == 0 {
			break
		}
	}
	return nil, false
}
