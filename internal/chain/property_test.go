package chain

import (
	"testing"
	"testing/quick"

	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// TestPropertyValueConservation drives random programs of transfers
// (random splits and merges between two principals) and checks that
// total ledger value equals the genesis allocation plus minted
// coinbase after every block — the UTXO conservation invariant.
func TestPropertyValueConservation(t *testing.T) {
	f := func(seedRaw uint16, opsRaw uint8) bool {
		seed := uint64(seedRaw)
		ops := int(opsRaw%24) + 1
		rng := sim.NewRNG(seed)
		alice := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
		bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
		minerKey := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
		keys := map[crypto.Address]*crypto.KeyPair{alice.Addr: alice, bob.Addr: bob}

		params := DefaultParams("prop")
		params.DifficultyBits = 4
		c, err := NewChain(params, nil, GenesisAlloc{alice.Addr: 50_000, bob.Addr: 50_000})
		if err != nil {
			return false
		}
		genesisTotal := c.TipState().TotalValue()

		now := sim.Time(0)
		nonce := uint64(0)
		blocks := 0
		for op := 0; op < ops; op++ {
			// Pick a random owner with funds, split or merge randomly.
			st := c.TipState()
			var owner *crypto.KeyPair
			if rng.Intn(2) == 0 {
				owner = alice
			} else {
				owner = bob
			}
			owned := st.UTXOsOwnedBy(owner.Addr)
			if len(owned) == 0 {
				continue
			}
			var ins []TxIn
			var total vm.Amount
			take := rng.Intn(len(owned)) + 1
			for opnt, out := range owned {
				ins = append(ins, TxIn{Prev: opnt})
				total += out.Value
				if len(ins) >= take {
					break
				}
			}
			// Random split into 1..3 outputs to random owners.
			nOuts := rng.Intn(3) + 1
			outs := make([]TxOut, 0, nOuts)
			remaining := total
			for i := 0; i < nOuts-1 && remaining > 1; i++ {
				v := vm.Amount(rng.Int63n(int64(remaining))) + 1
				if v >= remaining {
					v = remaining - 1
				}
				to := alice.Addr
				if rng.Intn(2) == 0 {
					to = bob.Addr
				}
				outs = append(outs, TxOut{Value: v, Owner: to})
				remaining -= v
			}
			outs = append(outs, TxOut{Value: remaining, Owner: owner.Addr})
			nonce++
			tx := NewTransfer(keys[owner.Addr], nonce, ins, outs)

			now += params.BlockInterval
			b, _, invalid := c.BuildBlock(minerKey.Addr, now, []*Tx{tx})
			if len(invalid) != 0 {
				return false // our generated transfer must be valid
			}
			b.Header.Seal(rng.Uint64())
			if _, err := c.AddBlock(b); err != nil {
				return false
			}
			blocks++
			want := genesisTotal + vm.Amount(blocks)*params.BlockReward
			if got := c.TipState().TotalValue(); got != want {
				t.Logf("conservation broken: got %d want %d after %d blocks", got, want, blocks)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyTxEncodeDecodeRoundTrip fuzzes transaction round trips:
// any transaction this package builds must survive Encode/DecodeTx
// with an identical id and verifiable signature.
func TestPropertyTxEncodeDecodeRoundTrip(t *testing.T) {
	rng := sim.NewRNG(4242)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	f := func(kind uint8, nonce uint64, value uint32, blob []byte) bool {
		var tx *Tx
		ins := []TxIn{{Prev: OutPoint{TxID: crypto.Sum(blob), Index: uint32(nonce % 7)}}}
		outs := []TxOut{{Value: vm.Amount(value)%1000 + 1, Owner: key.Addr}}
		switch kind % 3 {
		case 0:
			tx = NewTransfer(key, nonce, ins, outs)
		case 1:
			tx = NewDeploy(key, nonce, ins, outs, "some.type", blob, vm.Amount(value))
		default:
			tx = NewCall(key, nonce, key.Addr, "fn", blob, ins, outs, vm.Amount(value))
		}
		dec, err := DecodeTx(tx.Encode())
		if err != nil {
			return false
		}
		if dec.ID() != tx.ID() {
			return false
		}
		return dec.Sig.Verify(dec.SigHash().Bytes())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyHeaderRoundTrip fuzzes header encode/decode.
func TestPropertyHeaderRoundTrip(t *testing.T) {
	f := func(height uint32, tm int64, nonce uint64, bits uint8, seed []byte) bool {
		h := &Header{
			ChainID: "prop-chain",
			Parent:  crypto.Sum(seed),
			Height:  uint64(height),
			Time:    tm,
			TxRoot:  crypto.Sum(seed, []byte("root")),
			Bits:    bits,
			Nonce:   nonce,
		}
		dec, err := DecodeHeader(h.Encode())
		if err != nil {
			return false
		}
		return dec.Hash() == h.Hash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDecodersRejectGarbage throws random bytes at the
// decoders: they must error or produce self-consistent values — never
// panic.
func TestPropertyDecodersRejectGarbage(t *testing.T) {
	f := func(b []byte) bool {
		if tx, err := DecodeTx(b); err == nil {
			// Accidentally valid encodings must re-encode to the
			// same id.
			if dec2, err2 := DecodeTx(tx.Encode()); err2 != nil || dec2.ID() != tx.ID() {
				return false
			}
		}
		if h, err := DecodeHeader(b); err == nil {
			if dec2, err2 := DecodeHeader(h.Encode()); err2 != nil || dec2.Hash() != h.Hash() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
