// Package graph models atomic cross-chain transactions (AC2Ts) as the
// directed graphs of Section 3: D = (V, E) where vertices are
// participants and a directed edge e = (u, v) is a sub-transaction
// transferring asset e.a from u to v on blockchain e.BC.
//
// The package computes the graph diameter Diam(D) that drives the
// latency analysis of Section 6.1, builds the timestamped
// multisignature ms(D) of Equation 1, classifies the complex shapes of
// Section 5.3 (cyclic, disconnected), and generates the workload
// graphs the experiments sweep over.
package graph

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/vm"
)

// Edge is one sub-transaction: transfer Asset from From to To on
// Chain. Participants use one identity across all chains.
type Edge struct {
	From  crypto.Address
	To    crypto.Address
	Asset vm.Amount
	Chain chain.ID
}

// Graph is a timestamped AC2T graph (D, t). Construct with New, which
// validates shape and derives the participant set.
type Graph struct {
	Edges        []Edge
	Participants []crypto.Address // derived from edges, sorted, unique
	Timestamp    int64            // the t of Equation 1
}

// New validates the edges and builds the graph. The timestamp
// distinguishes identical AC2Ts among the same participants.
func New(timestamp int64, edges ...Edge) (*Graph, error) {
	if len(edges) == 0 {
		return nil, fmt.Errorf("graph: no edges")
	}
	seen := make(map[crypto.Address]bool)
	var parts []crypto.Address
	for i, e := range edges {
		switch {
		case e.From == e.To:
			return nil, fmt.Errorf("graph: edge %d is a self-transfer", i)
		case e.From.IsZero() || e.To.IsZero():
			return nil, fmt.Errorf("graph: edge %d has a zero participant", i)
		case e.Asset == 0:
			return nil, fmt.Errorf("graph: edge %d transfers nothing", i)
		case e.Chain == "":
			return nil, fmt.Errorf("graph: edge %d has no blockchain", i)
		}
		for _, a := range []crypto.Address{e.From, e.To} {
			if !seen[a] {
				seen[a] = true
				parts = append(parts, a)
			}
		}
	}
	sort.Slice(parts, func(i, j int) bool { return lessAddr(parts[i], parts[j]) })
	return &Graph{Edges: append([]Edge(nil), edges...), Participants: parts, Timestamp: timestamp}, nil
}

func lessAddr(a, b crypto.Address) bool { return bytes.Compare(a[:], b[:]) < 0 }

// Digest canonically encodes (D, t) and hashes it — the message every
// participant signs to form ms(D). Edge order does not affect the
// digest.
func (g *Graph) Digest() crypto.Hash {
	edges := append([]Edge(nil), g.Edges...)
	sort.Slice(edges, func(i, j int) bool {
		if c := bytes.Compare(edges[i].From[:], edges[j].From[:]); c != 0 {
			return c < 0
		}
		if c := bytes.Compare(edges[i].To[:], edges[j].To[:]); c != 0 {
			return c < 0
		}
		if edges[i].Chain != edges[j].Chain {
			return edges[i].Chain < edges[j].Chain
		}
		return edges[i].Asset < edges[j].Asset
	})
	var buf bytes.Buffer
	buf.WriteString("ac2t-graph/v1")
	var u64 [8]byte
	binary.BigEndian.PutUint64(u64[:], uint64(g.Timestamp))
	buf.Write(u64[:])
	binary.BigEndian.PutUint64(u64[:], uint64(len(edges)))
	buf.Write(u64[:])
	for _, e := range edges {
		buf.Write(e.From[:])
		buf.Write(e.To[:])
		binary.BigEndian.PutUint64(u64[:], e.Asset)
		buf.Write(u64[:])
		buf.WriteString(string(e.Chain))
		buf.WriteByte(0)
	}
	return crypto.Sum(buf.Bytes())
}

// Sign builds the multisignature ms(D) with the given keys. Every
// participant must be among the signers for the result to be
// Complete.
func (g *Graph) Sign(keys ...*crypto.KeyPair) *crypto.MultiSig {
	ms := crypto.NewMultiSig(g.Digest())
	for _, k := range keys {
		ms.Add(k)
	}
	return ms
}

// VerifyMultisig reports whether ms is a complete, valid
// multisignature of this graph by all its participants.
func (g *Graph) VerifyMultisig(ms *crypto.MultiSig) bool {
	if ms == nil || ms.Digest != g.Digest() {
		return false
	}
	return ms.Complete(g.Participants)
}

// index maps participants to dense ids for traversal.
func (g *Graph) index() map[crypto.Address]int {
	idx := make(map[crypto.Address]int, len(g.Participants))
	for i, p := range g.Participants {
		idx[p] = i
	}
	return idx
}

// adjacency builds out-edges by participant id.
func (g *Graph) adjacency() [][]int {
	idx := g.index()
	adj := make([][]int, len(g.Participants))
	for _, e := range g.Edges {
		u, v := idx[e.From], idx[e.To]
		adj[u] = append(adj[u], v)
	}
	return adj
}

// Diameter returns Diam(D): "the length of the longest path from any
// vertex in D to any other vertex in D including itself" — i.e. the
// maximum over ordered pairs (u, v) of the shortest directed path,
// where u = v means the shortest cycle through u. Unreachable pairs
// are skipped (they occur in disconnected graphs). The smallest swap
// (two parties exchanging assets) has diameter 2, matching Figure 10's
// x-axis.
func (g *Graph) Diameter() int {
	adj := g.adjacency()
	n := len(g.Participants)
	diam := 0
	for s := 0; s < n; s++ {
		dist := bfsFrom(adj, n, s)
		for v, d := range dist {
			if d < 0 {
				continue // unreachable
			}
			if v == s && d == 0 {
				continue // replaced by cycle length below
			}
			if d > diam {
				diam = d
			}
		}
		// Shortest cycle through s: 1 + shortest path from any
		// out-neighbour back to s.
		best := -1
		for _, nb := range adj[s] {
			back := bfsFrom(adj, n, nb)
			if back[s] >= 0 {
				if c := 1 + back[s]; best < 0 || c < best {
					best = c
				}
			}
		}
		if best > diam {
			diam = best
		}
	}
	return diam
}

// bfsFrom returns shortest path lengths from s (-1 = unreachable).
func bfsFrom(adj [][]int, n, s int) []int {
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// IsWeaklyConnected reports whether the graph is connected ignoring
// edge direction. Figure 7b's disconnected graphs return false.
func (g *Graph) IsWeaklyConnected() bool {
	n := len(g.Participants)
	if n == 0 {
		return true
	}
	idx := g.index()
	und := make([][]int, n)
	for _, e := range g.Edges {
		u, v := idx[e.From], idx[e.To]
		und[u] = append(und[u], v)
		und[v] = append(und[v], u)
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, v := range und[u] {
			if !seen[v] {
				seen[v] = true
				count++
				stack = append(stack, v)
			}
		}
	}
	return count == n
}

// hasCycleExcluding reports whether the directed graph contains a
// cycle after removing vertex `skip` (-1 removes nothing).
func (g *Graph) hasCycleExcluding(skip int) bool {
	adj := g.adjacency()
	n := len(g.Participants)
	color := make([]int, n) // 0 white, 1 gray, 2 black
	var visit func(int) bool
	visit = func(u int) bool {
		color[u] = 1
		for _, v := range adj[u] {
			if v == skip {
				continue
			}
			if color[v] == 1 {
				return true
			}
			if color[v] == 0 && visit(v) {
				return true
			}
		}
		color[u] = 2
		return false
	}
	for u := 0; u < n; u++ {
		if u == skip || color[u] != 0 {
			continue
		}
		if visit(u) {
			return true
		}
	}
	return false
}

// IsCyclic reports whether the directed graph contains any cycle.
func (g *Graph) IsCyclic() bool { return g.hasCycleExcluding(-1) }

// HerlihyFeasible reports whether Herlihy's single-leader protocol can
// execute this graph: it must be weakly connected, and some leader
// vertex must exist whose removal leaves the graph acyclic (Section
// 5.3: "both protocols require the AC2T graph to be acyclic once the
// leader node is removed" and "fail to handle disconnected graphs").
// The second result names a feasible leader when one exists.
func (g *Graph) HerlihyFeasible() (bool, crypto.Address) {
	if !g.IsWeaklyConnected() {
		return false, crypto.Address{}
	}
	for i, p := range g.Participants {
		if !g.hasCycleExcluding(i) {
			return true, p
		}
	}
	return false, crypto.Address{}
}

// EdgesFrom returns the edges whose source is u.
func (g *Graph) EdgesFrom(u crypto.Address) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.From == u {
			out = append(out, e)
		}
	}
	return out
}

// EdgesTo returns the edges whose recipient is u.
func (g *Graph) EdgesTo(u crypto.Address) []Edge {
	var out []Edge
	for _, e := range g.Edges {
		if e.To == u {
			out = append(out, e)
		}
	}
	return out
}

// Chains returns the distinct blockchains the AC2T touches.
func (g *Graph) Chains() []chain.ID {
	seen := make(map[chain.ID]bool)
	var out []chain.ID
	for _, e := range g.Edges {
		if !seen[e.Chain] {
			seen[e.Chain] = true
			out = append(out, e.Chain)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String summarizes the graph for logs.
func (g *Graph) String() string {
	return fmt.Sprintf("AC2T{|V|=%d |E|=%d diam=%d t=%d}", len(g.Participants), len(g.Edges), g.Diameter(), g.Timestamp)
}
