package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestRingEviction drives a small ring far past capacity and checks
// the bound holds, eviction is counted, and the survivors are the most
// recent records in order.
func TestRingEviction(t *testing.T) {
	r := NewRecorder(0, 8)
	for i := 0; i < 100; i++ {
		r.Instant("shard", "tick", int64(i), -1)
	}
	if r.Len() != 8 {
		t.Fatalf("ring holds %d records, cap is 8", r.Len())
	}
	if r.Dropped() != 92 {
		t.Fatalf("dropped = %d, want 92", r.Dropped())
	}
	recs := r.Records()
	for i, rec := range recs {
		if want := int64(92 + i); rec.T != want {
			t.Fatalf("record %d has t=%d, want %d (oldest-first suffix)", i, rec.T, want)
		}
		if rec.Seq != uint64(92+i) {
			t.Fatalf("record %d has seq=%d, want %d", i, rec.Seq, 92+i)
		}
	}
}

// TestRingMemoryFlat emits 100k records into a bounded ring: the held
// count must never exceed capacity regardless of volume — the property
// that keeps tracing memory-flat at 1M-transaction scale.
func TestRingMemoryFlat(t *testing.T) {
	r := NewRecorder(3, 1024)
	for i := 0; i < 100_000; i++ {
		r.Span("tx:1", "phase", int64(i), int64(i+5), 1, Attr{K: "n", V: int64(i)})
		if r.Len() > 1024 {
			t.Fatalf("ring grew past capacity at record %d: %d", i, r.Len())
		}
	}
	if got := r.Dropped(); got != 100_000-1024 {
		t.Fatalf("dropped = %d, want %d", got, 100_000-1024)
	}
}

// TestNilRecorderIsNoOp: a nil recorder is the disabled tracer; every
// method must be safe and free of effects.
func TestNilRecorderIsNoOp(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder claims enabled")
	}
	r.Emit(Record{Name: "x"})
	r.Instant("tr", "x", 1, 0)
	r.Span("tr", "x", 1, 2, 0)
	if r.Records() != nil || r.Len() != 0 || r.Dropped() != 0 {
		t.Fatal("nil recorder retained state")
	}
	var tr Trace
	tr.Merge(r)
	if len(tr.Records) != 0 {
		t.Fatal("merging a nil recorder produced records")
	}
}

// sampleTrace builds a two-shard trace with every record feature
// (spans, instants, attrs, scenario/outcome) exercised.
func sampleTrace() *Trace {
	r0 := NewRecorder(0, 16)
	r0.Span("tx:0", PhaseLock, 100, 400, 0, Attr{K: "edge", V: 1})
	r0.Instant("tx:0", "deploy confirmed", 400, 0)
	r0.Emit(Record{Kind: KindSpan, Track: "tx:0", Name: "ac2t", T: 0, Dur: 900, Tx: 0,
		Scenario: "commit", Outcome: "committed", Attrs: []Attr{{K: "blocks_executed", V: 12}}})
	r1 := NewRecorder(1, 16)
	r1.Span("chain:asset-0", "chain asset-0", 0, 1000, -1, Attr{K: "blocks_mined", V: 99})
	var tr Trace
	tr.Merge(r0)
	tr.Merge(r1)
	return &tr
}

// TestNDJSONDeterminism marshals the same trace twice and checks the
// bytes agree line for line — the engine-level CI smoke relies on it.
func TestNDJSONDeterminism(t *testing.T) {
	var a, b bytes.Buffer
	if err := WriteNDJSON(&a, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if err := WriteNDJSON(&b, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("NDJSON bytes differ across identical traces")
	}
	lines := strings.Split(strings.TrimSpace(a.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d NDJSON lines, want 4", len(lines))
	}
	// Every line must round-trip as a Record.
	for i, line := range lines {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("line %d does not parse: %v", i, err)
		}
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[2]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Scenario != "commit" || rec.Outcome != "committed" || len(rec.Attrs) != 1 {
		t.Fatalf("record lost fields through NDJSON: %+v", rec)
	}
}

// TestChromeExport checks the trace_event export parses as JSON,
// carries one process per shard, names tracks, and scales timestamps
// to microseconds.
func TestChromeExport(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChrome(&buf, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, buf.String())
	}
	var procs, threads, spans, instants int
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "M":
			if ev["name"] == "process_name" {
				procs++
			} else {
				threads++
			}
		case "X":
			spans++
		case "i":
			instants++
		}
	}
	if procs != 2 {
		t.Fatalf("%d process_name events, want 2 (one per shard)", procs)
	}
	if threads != 2 { // tx:0 on shard 0, chain:asset-0 on shard 1
		t.Fatalf("%d thread_name events, want 2", threads)
	}
	if spans != 3 || instants != 1 {
		t.Fatalf("spans=%d instants=%d, want 3/1", spans, instants)
	}
	// The lock span starts at virtual ms 100 → ts 100000 µs.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev["ph"] == "X" && ev["name"] == PhaseLock {
			found = true
			if ev["ts"].(float64) != 100000 {
				t.Fatalf("lock span ts = %v, want 100000 µs", ev["ts"])
			}
			args := ev["args"].(map[string]any)
			if args["edge"].(float64) != 1 {
				t.Fatalf("lock span lost its attr: %v", args)
			}
		}
	}
	if !found {
		t.Fatal("no lock span in chrome export")
	}
	// Determinism: identical traces, identical bytes.
	var again bytes.Buffer
	if err := WriteChrome(&again, sampleTrace()); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("chrome export bytes differ across identical traces")
	}
}
