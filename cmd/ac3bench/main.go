// Command ac3bench regenerates every table and figure of the paper's
// evaluation from the real protocol implementations running on the
// simulated blockchain networks.
//
// Usage:
//
//	ac3bench [-seed N] [-experiment id] [-diam N] [-runs N]
//	         [-snapshot file] [-snapshotlabel name] [-scale N,N,...]
//
// Experiment ids: fig8, fig9, fig10, cost, witness, table1,
// atomicity, complex, scale, engine, all (default).
//
// -snapshot writes a machine-readable BENCH_<pr>.json perf snapshot
// (the engine shard sweep's wall time, events/AC2T, blocks-exec/AC2T,
// outcome counts and per-phase latency table, plus the witness
// decision-batching before/after pair with witness_txs_per_commit and
// witness_bytes_per_commit) instead of running the table experiments
// — the ROADMAP's diffable perf trajectory. -scale
// appends memory-scale rungs to the snapshot: a comma-separated list
// of AC2T counts (e.g. -scale 10000,100000; add 1000000 for the
// opt-in 1M rung), each run on 8 shards under a memory sampler and
// reported with wall time, peak RSS, and allocs per AC2T.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/bench"
)

// parseRungs parses the -scale list ("" = no rungs).
func parseRungs(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var rungs []int
	for _, p := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad -scale rung %q (want a positive AC2T count)", p)
		}
		rungs = append(rungs, n)
	}
	return rungs, nil
}

func main() {
	seed := flag.Uint64("seed", 42, "simulation seed (runs are deterministic per seed)")
	experiment := flag.String("experiment", "all", "which experiment to run: fig8|fig9|fig10|cost|witness|table1|atomicity|complex|scale|engine|all")
	maxDiam := flag.Int("diam", 8, "maximum graph diameter for the fig10 sweep")
	runs := flag.Int("runs", 5, "runs per scenario for the atomicity experiment")
	snapshot := flag.String("snapshot", "", "write a machine-readable engine perf snapshot (JSON) to this file and exit")
	snapshotLabel := flag.String("snapshotlabel", "", "label stored in the -snapshot file (e.g. pr6)")
	scaleRungs := flag.String("scale", "", "comma-separated AC2T counts for -snapshot memory-scale rungs (e.g. 10000,100000)")
	flag.Parse()

	if *snapshot != "" {
		rungs, err := parseRungs(*scaleRungs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		snap, err := bench.SnapshotScale(*seed, *snapshotLabel, rungs)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f, err := os.Create(*snapshot)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := bench.WriteSnapshot(f, snap); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "snapshot -> %s\n", *snapshot)
		return
	}

	var results []*bench.Result
	switch *experiment {
	case "fig8":
		results = append(results, bench.Fig8(*seed))
	case "fig9":
		results = append(results, bench.Fig9(*seed))
	case "fig10":
		results = append(results, bench.Fig10(*seed, *maxDiam))
	case "cost":
		results = append(results, bench.Cost(*seed))
	case "witness":
		results = append(results, bench.WitnessChoice(*seed))
	case "table1":
		results = append(results, bench.Table1(*seed))
	case "atomicity":
		results = append(results, bench.Atomicity(*seed, *runs))
	case "complex":
		results = append(results, bench.Complex(*seed))
	case "scale":
		results = append(results, bench.Scale(*seed))
	case "engine":
		results = append(results, bench.EngineLoad(*seed))
	case "all":
		results = bench.All(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for _, r := range results {
		fmt.Println(r)
		fmt.Println()
		if !r.OK {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "some experiments failed their sanity assertions")
		os.Exit(1)
	}
}
