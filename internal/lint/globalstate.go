package lint

import (
	"go/ast"
	"go/token"

	"repro/internal/lint/analysis"
)

// GlobalState flags mutable package-level state and init-order-
// sensitive registration in deterministic packages — the class of bug
// behind the gob type-id leak: a process-global counter made payload
// bytes (and every contract address derived from them) a function of
// process encode history rather than of the value. Package-level
// mutable state is shared across every shard world in the process, so
// it is either a correctness bug (worlds contaminate each other) or a
// determinism bug (bytes depend on which world touched it first).
//
// Built-in allowances:
//   - constants (use them wherever possible);
//   - sentinel errors: `var ErrX = errors.New(...)` / fmt.Errorf —
//     written once, compared by identity, never mutated by
//     convention enforced throughout the stdlib;
//   - blank compile-time assertions (`var _ Iface = (*T)(nil)`).
//
// Everything else — read-only tables, zero-value sentinels, pinned
// registration inits — must carry `//ac3:globalstate <justification>`
// so the exception and its safety argument live at the site.
var GlobalState = &analysis.Analyzer{
	Name: "globalstate",
	Doc: "flag mutable package-level variables and init() registration in deterministic " +
		"packages (process-global state breaks shard-world isolation)",
	Run: runGlobalState,
}

func runGlobalState(pass *analysis.Pass) (any, error) {
	if !deterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := collectDirectives(pass)
	dirs.reportMissingJustifications()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Recv == nil && d.Name.Name == "init" && !dirs.allowed("globalstate", d.Pos()) {
					pass.Reportf(d.Pos(), "init function in deterministic package %s: init-order-sensitive work is process-global (the gob type-id bug class); prefer explicit construction, or annotate //ac3:globalstate", pass.Pkg.Path())
				}
			case *ast.GenDecl:
				checkGlobalVars(pass, dirs, d)
			}
		}
	}
	return nil, nil
}

func checkGlobalVars(pass *analysis.Pass, dirs *directiveSet, d *ast.GenDecl) {
	if d.Tok != token.VAR {
		return
	}
	for _, spec := range d.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if name.Name == "_" {
				continue // compile-time interface assertion
			}
			if sentinelError(pass, vs, i) {
				continue
			}
			if dirs.allowed("globalstate", name.Pos()) || dirs.allowed("globalstate", d.Pos()) {
				continue
			}
			pass.Reportf(name.Pos(), "package-level var %q is mutable process-global state in deterministic package %s; use a const, hang it off the world's root object, or annotate //ac3:globalstate with why sharing is safe", name.Name, pass.Pkg.Path())
		}
	}
}

// sentinelError reports whether names[i] is a conventional sentinel:
// an Err-prefixed variable initialized with errors.New or fmt.Errorf.
func sentinelError(pass *analysis.Pass, vs *ast.ValueSpec, i int) bool {
	name := vs.Names[i].Name
	if len(name) < 3 || (name[:3] != "Err" && name[:3] != "err") {
		return false
	}
	if i >= len(vs.Values) {
		return false
	}
	call, ok := ast.Unparen(vs.Values[i]).(*ast.CallExpr)
	if !ok {
		return false
	}
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	p, n := fn.Pkg().Path(), fn.Name()
	return (p == "errors" && n == "New") || (p == "fmt" && n == "Errorf")
}
