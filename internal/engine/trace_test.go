package engine

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden trace files")

// TestTraceDeterminism extends the byte-identical guarantee to the
// trace exports: the same seed and shard count must produce the same
// NDJSON bytes across worker counts, and turning tracing on must not
// change the aggregates at all.
func TestTraceDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Shards: 4, Workload: testWorkload(24), Trace: true}
	a := run(t, cfg)
	cfg.Workers = 1
	b := run(t, cfg)

	if a.Trace == nil || len(a.Trace.Records) == 0 {
		t.Fatal("traced run produced no records")
	}
	var an, bn bytes.Buffer
	if err := trace.WriteNDJSON(&an, a.Trace); err != nil {
		t.Fatal(err)
	}
	if err := trace.WriteNDJSON(&bn, b.Trace); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(an.Bytes(), bn.Bytes()) {
		t.Fatal("NDJSON trace bytes differ across worker counts")
	}

	// Tracing must be an observer: the aggregate with tracing off is
	// byte-identical to the one with tracing on (Trace itself is not
	// marshaled).
	off := run(t, Config{Seed: 42, Shards: 4, Workload: testWorkload(24)})
	aj, _ := json.Marshal(a)
	oj, _ := json.Marshal(off)
	if string(aj) != string(oj) {
		t.Fatalf("tracing changed the aggregates:\n%s\n----\n%s", aj, oj)
	}

	// The per-phase table exists either way and covers the commit
	// scenario's full phase chain.
	havePhase := make(map[string]bool)
	for _, row := range off.PhaseLatency {
		if row.Scenario == ScenarioCommit {
			havePhase[row.Phase] = true
		}
		if row.Count == 0 {
			t.Fatalf("phase table emitted an empty row: %+v", row)
		}
		if row.P99Ms < row.P50Ms {
			t.Fatalf("phase %s/%s: p99 %d < p50 %d", row.Phase, row.Scenario, row.P99Ms, row.P50Ms)
		}
	}
	for _, ph := range trace.Phases {
		if !havePhase[ph] {
			t.Fatalf("commit scenario missing phase %q in table %+v", ph, off.PhaseLatency)
		}
	}
	if off.LatencyP999Ms < off.LatencyP99Ms {
		t.Fatalf("p999 %d < p99 %d", off.LatencyP999Ms, off.LatencyP99Ms)
	}
}

// TestTraceRingEvictionBounded runs a workload through a deliberately
// tiny ring: memory stays bounded (held records never exceed the cap),
// eviction is reported, and the per-phase statistics are untouched —
// they fold into histograms independent of the ring.
func TestTraceRingEvictionBounded(t *testing.T) {
	const cap = 64
	cfg := Config{Seed: 5, Shards: 2, Workload: testWorkload(16), Trace: true, TraceRingCap: cap}
	agg := run(t, cfg)
	if agg.Trace == nil {
		t.Fatal("no trace carried")
	}
	if len(agg.Trace.Records) > cap*cfg.Shards {
		t.Fatalf("merged trace holds %d records, cap allows %d", len(agg.Trace.Records), cap*cfg.Shards)
	}
	if agg.Trace.Dropped == 0 {
		t.Fatal("tiny ring dropped nothing — eviction untested")
	}
	// Eviction must not skew the phase table: same run, big ring.
	full := run(t, Config{Seed: 5, Shards: 2, Workload: testWorkload(16), Trace: true})
	aj, _ := json.Marshal(agg.PhaseLatency)
	fj, _ := json.Marshal(full.PhaseLatency)
	if string(aj) != string(fj) {
		t.Fatalf("ring eviction changed the phase table:\n%s\n----\n%s", aj, fj)
	}
}

// TestChromeTraceGolden pins the Chrome trace_event export for one
// 2-party AC3WN commit to a golden file: the byte layout viewers load
// is part of the contract. Refresh with -update-golden after an
// intentional format change.
func TestChromeTraceGolden(t *testing.T) {
	wl := DefaultWorkload()
	wl.Txs = 1
	wl.Mix = Mix{Commit: 1}
	wl.Sizes = []SizeWeight{{Size: 2, Weight: 1}}
	agg := run(t, Config{Seed: 1, Shards: 1, Workload: wl, Trace: true})
	if agg.Commits != 1 {
		t.Fatalf("2-party commit did not commit: %+v", agg)
	}
	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, agg.Trace); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome export is empty")
	}

	golden := filepath.Join("testdata", "ac3wn_commit_2party.chrome.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("golden file missing (run with -update-golden to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("chrome export drifted from golden file %s (len %d vs %d); run with -update-golden if intentional",
			golden, buf.Len(), len(want))
	}
}

// TestTraceSpanShape sanity-checks what the recorder captured for a
// simple commit-only run: a root span, the full phase chain, protocol
// timeline instants, and a chain summary per network.
func TestTraceSpanShape(t *testing.T) {
	wl := DefaultWorkload()
	wl.Txs = 2
	wl.ArrivalEvery = 30 * sim.Second
	wl.Mix = Mix{Commit: 1}
	wl.Sizes = []SizeWeight{{Size: 2, Weight: 1}}
	agg := run(t, Config{Seed: 2, Shards: 1, Workload: wl, Trace: true})

	roots, phases, instants, chains := 0, map[string]int{}, 0, 0
	for _, rec := range agg.Trace.Records {
		switch {
		case rec.Name == "ac2t":
			roots++
			if rec.Scenario != string(ScenarioCommit) || rec.Outcome != "committed" {
				t.Fatalf("root span mislabeled: %+v", rec)
			}
		case rec.Kind == trace.KindSpan && rec.Tx >= 0:
			phases[rec.Name]++
		case rec.Kind == trace.KindInstant:
			instants++
		case rec.Kind == trace.KindSpan && rec.Tx < 0:
			chains++
		}
	}
	if roots != 2 {
		t.Fatalf("%d root spans, want 2", roots)
	}
	for _, ph := range trace.Phases {
		if phases[ph] != 2 {
			t.Fatalf("phase %q has %d spans, want 2 (got %v)", ph, phases[ph], phases)
		}
	}
	if instants == 0 {
		t.Fatal("no timeline instants recorded")
	}
	if want := DefaultWorkload().AssetChains + 1; chains != want {
		t.Fatalf("%d chain summary spans, want %d", chains, want)
	}
}
