package bench

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// fig8Graph builds the 5-contract, Diam(D)=3 AC2T of Figure 8:
// SC1 = A→B, then the parallel bundle SC2 = B→C and SC3 = B→D, then
// SC4 = C→A and SC5 = D→A closing both cycles. Every participant
// both gives and receives (a well-formed swap); the single-leader
// protocol deploys it in 3 sequential layers and redeems in 3 more,
// with SC2/SC3 (and SC4/SC5) in parallel inside their layers —
// exactly Figure 8's mix of parallel contracts within a sequential
// critical path.
func fig8Graph(seed uint64) (*xchain.World, *graph.Graph, []*xchain.Participant, error) {
	b := xchain.NewBuilder(seed)
	names := []string{"A", "B", "C", "D"}
	ps := make([]*xchain.Participant, len(names))
	for i, n := range names {
		ps[i] = b.Participant(n)
	}
	chains := []chain.ID{"c1", "c2", "c3", "c4", "c5"}
	for _, id := range chains {
		b.Chain(spec(id))
	}
	b.Chain(spec("witness"))
	b.Fund(ps[0], "c1", 1_000_000) // A sends SC1
	b.Fund(ps[1], "c2", 1_000_000) // B sends SC2, SC3
	b.Fund(ps[1], "c3", 1_000_000)
	b.Fund(ps[2], "c4", 1_000_000) // C sends SC4
	b.Fund(ps[3], "c5", 1_000_000) // D sends SC5
	w, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := graph.New(int64(seed),
		graph.Edge{From: ps[0].Addr(), To: ps[1].Addr(), Asset: 10_000, Chain: "c1"}, // SC1
		graph.Edge{From: ps[1].Addr(), To: ps[2].Addr(), Asset: 10_000, Chain: "c2"}, // SC2
		graph.Edge{From: ps[1].Addr(), To: ps[3].Addr(), Asset: 10_000, Chain: "c3"}, // SC3
		graph.Edge{From: ps[2].Addr(), To: ps[0].Addr(), Asset: 10_000, Chain: "c4"}, // SC4
		graph.Edge{From: ps[3].Addr(), To: ps[0].Addr(), Asset: 10_000, Chain: "c5"}, // SC5
	)
	if err != nil {
		return nil, nil, nil, err
	}
	return w, g, ps, nil
}

// Fig8 reproduces Figure 8: the phase timeline of Herlihy's
// single-leader protocol on the 5-contract graph — sequential
// deployment then sequential redemption, 2·Δ·Diam(D) total.
func Fig8(seed uint64) *Result {
	w, g, ps, err := fig8Graph(seed)
	if err != nil {
		return &Result{ID: "fig8", Title: "Herlihy timeline", Output: err.Error()}
	}
	diam := g.Diameter()
	run, out, err := runHerlihy(w, g, ps, 4*sim.Hour)
	if err != nil {
		return &Result{ID: "fig8", Title: "Herlihy timeline", Output: err.Error()}
	}

	tl := &metrics.Timeline{Title: fmt.Sprintf("Figure 8 — single-leader swap timeline (Diam(D)=%d, 5 contracts), time in Δ", diam), Unit: "Δ"}
	for _, ev := range run.Events() {
		label := ev.Label
		if ev.Edge >= 0 {
			label = fmt.Sprintf("SC%d %s", ev.Edge+1, ev.Label)
		}
		tl.Add(inDeltas(ev.At-out.Start), label)
	}
	measured := inDeltas(out.Latency())
	analytic := float64(2 * diam)
	summary := fmt.Sprintf(
		"committed=%v  measured latency = %.2fΔ   paper analysis = 2·Δ·Diam(D) = %.0fΔ\n"+
			"(measured exceeds the bound slightly: confirmation polling and block quantization)",
		out.Committed(), measured, analytic)

	ok := out.Committed() && measured >= analytic*0.7 && measured <= analytic*1.8
	return &Result{
		ID:     "fig8",
		Title:  "Herlihy single-leader timeline: 2·Δ·Diam(D)",
		Output: section(tl.String(), summary),
		OK:     ok,
	}
}

// Fig9 reproduces Figure 9: AC3WN's four-phase timeline on the same
// graph — SCw deployment, parallel contract deployment, SCw state
// change, parallel redemption: 4·Δ total, independent of Diam(D).
func Fig9(seed uint64) *Result {
	w, g, ps, err := fig8Graph(seed)
	if err != nil {
		return &Result{ID: "fig9", Title: "AC3WN timeline", Output: err.Error()}
	}
	run, out, err := runAC3WN(w, g, ps, "witness", 4*sim.Hour)
	if err != nil {
		return &Result{ID: "fig9", Title: "AC3WN timeline", Output: err.Error()}
	}

	tl := &metrics.Timeline{Title: "Figure 9 — AC3WN timeline (same 5-contract graph), time in Δ", Unit: "Δ"}
	start := out.Start
	tl.Add(0, "phase 1: SCw deployment begins")
	tl.Add(inDeltas(run.SCwConfirmedAt-start), "phase 2: SCw confirmed; all contracts deploy IN PARALLEL")
	tl.Add(inDeltas(run.AllDeployedAt-start), "phase 3: all contracts confirmed; state change submitted")
	tl.Add(inDeltas(run.DecidedAt-start), "phase 4: decision stable at depth d; parallel redemption")
	tl.Add(inDeltas(run.CompletedAt-start), "all contracts redeemed")
	for _, ev := range run.Events() {
		if ev.Edge >= 0 {
			tl.Add(inDeltas(ev.At-start), fmt.Sprintf("SC%d %s", ev.Edge+1, ev.Label))
		}
	}

	measured := inDeltas(run.CompletedAt - start)
	summary := fmt.Sprintf(
		"committed=%v  measured latency = %.2fΔ   paper analysis = 4·Δ (constant in Diam(D)=%d)",
		out.Committed(), measured, g.Diameter())
	ok := out.Committed() && measured >= 3 && measured <= 7
	return &Result{
		ID:     "fig9",
		Title:  "AC3WN timeline: constant 4·Δ",
		Output: section(tl.String(), summary),
		OK:     ok,
	}
}

// Fig10 reproduces Figure 10: AC2T latency in Δs as the graph
// diameter grows — the paper's headline comparison. Herlihy grows as
// 2·Diam(D); AC3WN stays flat around 4. Each point averages several
// seeded runs (confirmation times on Poisson chains are noisy).
func Fig10(seed uint64, maxDiam int) *Result {
	if maxDiam < 2 {
		maxDiam = 2
	}
	const samples = 3
	fig := metrics.NewFigure("Figure 10 — AC2T latency vs graph diameter", "Diam(D)", "latency (Δ)")
	analyticH := fig.AddSeries("Herlihy analytic 2·Diam")
	measuredH := fig.AddSeries("Herlihy measured")
	analyticW := fig.AddSeries("AC3WN analytic 4")
	measuredW := fig.AddSeries("AC3WN measured")

	okShape := true
	var hx, hy, wx, wy []float64
	for diam := 2; diam <= maxDiam; diam++ {
		x := float64(diam)
		analyticH.Add(x, float64(2*diam))
		analyticW.Add(x, 4)

		var hSum, wSum float64
		hn, wn := 0, 0
		for s := 0; s < samples; s++ {
			// Herlihy on an n-ring (Diam = n).
			wH, gH, psH, err := ringWorld(seed+uint64(diam)*17+uint64(s)*1009, diam)
			if err != nil {
				return &Result{ID: "fig10", Title: "latency vs diameter", Output: err.Error()}
			}
			_, outH, err := runHerlihy(wH, gH, psH, sim.Time(diam+4)*sim.Hour)
			if err == nil && outH.Committed() {
				hSum += inDeltas(outH.Latency())
				hn++
			}

			// AC3WN on the same shape.
			wW, gW, psW, err := ringWorld(seed+uint64(diam)*31+uint64(s)*2003, diam)
			if err != nil {
				return &Result{ID: "fig10", Title: "latency vs diameter", Output: err.Error()}
			}
			_, outW, err := runAC3WN(wW, gW, psW, "witness", 2*sim.Hour)
			if err == nil && outW.Committed() {
				wSum += inDeltas(outW.Latency())
				wn++
			}
		}
		if hn == 0 || wn == 0 {
			okShape = false
			continue
		}
		hMean, wMean := hSum/float64(hn), wSum/float64(wn)
		measuredH.Add(x, hMean)
		measuredW.Add(x, wMean)
		hx, hy = append(hx, x), append(hy, hMean)
		wx, wy = append(wx, x), append(wy, wMean)
		// AC3WN must beat the baseline pointwise beyond the smallest
		// graphs.
		if diam >= 3 && wMean >= hMean {
			okShape = false
		}
	}

	// Shape assertions via least-squares slopes: the baseline grows
	// ~2Δ per diameter unit, AC3WN stays flat.
	hSlope := slope(hx, hy)
	wSlope := slope(wx, wy)
	if hSlope < 1.0 || wSlope > 0.5 || wSlope < -0.5 {
		okShape = false
	}
	summary := fmt.Sprintf(
		"shape: measured slopes — Herlihy %.2f Δ per diameter unit (analytic 2), AC3WN %.2f (analytic 0)\n"+
			"crossover: AC3WN wins for every Diam ≥ 3, and the gap widens linearly — the paper's Figure 10.",
		hSlope, wSlope)
	return &Result{
		ID:     "fig10",
		Title:  "AC2T latency vs Diam(D): linear baseline vs constant AC3WN",
		Output: section(fig.String(), summary),
		OK:     okShape,
	}
}

// slope returns the least-squares slope of y on x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}
