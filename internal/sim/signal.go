package sim

// Signal is the simulator's notification primitive: actors register
// one-shot waiters, and a Notify schedules every registered waiter to
// run at the current virtual instant. It is the schedule-on-notify
// building block the event-driven watch layer (miner clients, protocol
// reconcilers, the orchestration engine) is built on, replacing
// fixed-cadence polling.
//
// Determinism rules:
//
//   - Delivery is FIFO in registration order. Two runs that register
//     and notify in the same order observe identical delivery order.
//   - Notify consumes zero events when nobody waits — an idle signal
//     is free, which is exactly why notification beats polling.
//   - Consecutive Notify calls at one instant coalesce into a single
//     dispatch event; waiters registered between a Notify and its
//     dispatch are included in that dispatch. Waiters must therefore
//     treat a wakeup as "state may have changed, re-check", never as
//     a counted edge.
//   - There is no wall clock anywhere: dispatch rides the ordinary
//     (time, seq) event heap via After(0).
type Signal struct {
	s         *Sim
	waiters   []*Waiter
	scheduled bool
}

// Waiter is one registered one-shot callback. Cancel is idempotent and
// safe at any time, including after the waiter fired.
type Waiter struct {
	fn       func()
	canceled bool
}

// NewSignal creates a signal bound to the simulator's clock.
func (s *Sim) NewSignal() *Signal { return &Signal{s: s} }

// Wait registers fn to run at the next notification. The returned
// Waiter cancels the registration; a fired or canceled waiter is inert.
func (g *Signal) Wait(fn func()) *Waiter {
	if fn == nil {
		panic("sim: Signal.Wait with nil fn")
	}
	w := &Waiter{fn: fn}
	g.waiters = append(g.waiters, w)
	return w
}

// Notify schedules all registered waiters to run at the current
// virtual instant, FIFO in registration order, and clears the list.
// A notify with no waiters is a no-op and costs no simulator event;
// repeated notifies before dispatch coalesce into one event.
func (g *Signal) Notify() {
	if g.scheduled || len(g.waiters) == 0 {
		return
	}
	g.scheduled = true
	g.s.After(0, func() {
		g.scheduled = false
		batch := g.waiters
		g.waiters = nil
		for _, w := range batch {
			if !w.canceled {
				w.canceled = true // one-shot: mark fired
				w.fn()
			}
		}
	})
}

// Waiting reports the number of registered waiters (diagnostics).
func (g *Signal) Waiting() int { return len(g.waiters) }

// Cancel removes the waiter from its signal's next dispatch. Idempotent:
// canceling twice, or after the waiter already fired, is a no-op.
func (w *Waiter) Cancel() { w.canceled = true }
