package engine

import (
	"fmt"

	"repro/internal/sim"
)

// Protocol selects which commitment protocol a workload drives
// through the engine.
type Protocol string

// The three protocol families the repository implements.
const (
	ProtoAC3WN Protocol = "ac3wn" // the paper's contribution (Section 4.2)
	ProtoAC3TW Protocol = "ac3tw" // centralized-witness strawman (Section 4.1)
	ProtoHTLC  Protocol = "htlc"  // Nolan/Herlihy hashlock baseline
)

// Scenario is the behavioral template a generated AC2T follows.
type Scenario string

// The scenario mix: well-behaved commits, participant-declines
// aborts, the paper's Section 1 crash-recovery hazard, an adversarial
// decision race (a rogue participant pushing authorize_refund the
// moment SCw appears, trying to flip the outcome), and the network
// adversity trio — a decision-window partition of the transaction's
// decision chain, sustained gossip loss on every chain the AC2T
// touches, and geo-skewed per-chain latency so confirmation depths
// race realistically.
const (
	ScenarioCommit    Scenario = "commit"
	ScenarioAbort     Scenario = "abort"
	ScenarioCrash     Scenario = "crash"
	ScenarioRace      Scenario = "race"
	ScenarioPartition Scenario = "partition"
	ScenarioLossy     Scenario = "lossy"
	ScenarioGeo       Scenario = "geo"
)

// Mix weighs the scenarios in a workload. Zero-weight scenarios never
// occur; an all-zero Mix is rejected.
type Mix struct {
	Commit    int `json:"commit"`
	Abort     int `json:"abort"`
	Crash     int `json:"crash"`
	Race      int `json:"race"`
	Partition int `json:"partition"`
	Lossy     int `json:"lossy"`
	Geo       int `json:"geo"`
}

// total sums the mix weights.
func (m Mix) total() int {
	return m.Commit + m.Abort + m.Crash + m.Race + m.Partition + m.Lossy + m.Geo
}

// Adversity configures the network-hostility scenarios. The knobs
// only matter for transactions that draw partition/lossy/geo; the
// draws themselves (and every loss decision they cause) come from the
// per-shard forked RNGs, so enabling adversity keeps runs a pure
// function of the master seed.
type Adversity struct {
	// Loss is the per-message gossip drop probability a lossy-scenario
	// AC2T imposes on every network it touches while in flight. The
	// orphan re-request and EnsureTx resubmission paths must carry the
	// run.
	Loss float64 `json:"loss"`
	// LossyFor bounds a lossy window: the overlay lifts when the
	// transaction grades or LossyFor elapses, whichever comes first —
	// a struggling lossy AC2T must not keep degrading the shared
	// chains all the way to its grading deadline.
	LossyFor sim.Time `json:"lossy_for_ms"`
	// PartitionFor is how long a partition-scenario split lasts: the
	// transaction's decision chain is divided (one miner against the
	// rest) when its decision window opens and healed PartitionFor
	// later. The shard clamps the window so the heal always lands
	// with room to reconcile before the grading deadline — AC3WN's
	// non-blocking claim is what is actually under test, not
	// grading-while-split.
	PartitionFor sim.Time `json:"partition_for_ms"`
}

// DefaultAdversity returns the standard hostile-network knobs: 25%
// gossip loss sustained for up to 10 minutes, and a 6-minute
// partition window (both well inside the default 45-minute grading
// deadline).
func DefaultAdversity() Adversity {
	return Adversity{Loss: 0.25, LossyFor: 10 * sim.Minute, PartitionFor: 6 * sim.Minute}
}

// SizeWeight weighs one AC2T graph size (ring participant count) in
// the workload's size distribution.
type SizeWeight struct {
	Size   int `json:"size"`
	Weight int `json:"weight"`
}

// Workload describes the transaction stream each shard generates and
// executes. All times are virtual.
type Workload struct {
	// Protocol selects the runner family.
	Protocol Protocol `json:"protocol"`
	// Txs is the total number of AC2Ts across all shards.
	Txs int `json:"txs"`
	// ArrivalEvery is the mean exponential interarrival time of AC2Ts
	// within one shard (the per-shard offered load).
	ArrivalEvery sim.Time `json:"arrival_every_ms"`
	// MaxInFlight bounds concurrently executing AC2Ts per shard;
	// arrivals beyond it queue (backpressure) until a slot frees.
	MaxInFlight int `json:"max_in_flight"`
	// TxTimeout is the per-transaction grading deadline: a run that
	// has not settled by then is graded as-is (stuck counts surface
	// in the aggregate rather than hanging the shard).
	TxTimeout sim.Time `json:"tx_timeout_ms"`
	// AssetChains is how many asset blockchains each shard world
	// hosts (plus one witness chain).
	AssetChains int `json:"asset_chains"`
	// Sizes is the AC2T graph-size distribution.
	Sizes []SizeWeight `json:"sizes"`
	// Mix weighs the scenarios.
	Mix Mix `json:"mix"`
	// Adversity configures the partition/lossy/geo scenarios.
	Adversity Adversity `json:"adversity"`
	// BatchWindow enables witness-side decision batching (AC3WN only):
	// each shard runs one batching coordinator that collects the AC2T
	// decisions arriving within the window and publishes one
	// merkle-committed, threshold-attested commit_batch transaction
	// per decision set. Zero keeps the per-AC2T SCw decision path.
	BatchWindow sim.Time `json:"batch_window_ms"`
	// BatchWitnesses / BatchThreshold size the attestation quorum
	// (m-of-n). Zero means the coordinator defaults (4 and 2n/3+1).
	BatchWitnesses int `json:"batch_witnesses"`
	BatchThreshold int `json:"batch_threshold"`
}

// DefaultWorkload returns a mixed AC3WN workload: mostly commits,
// with aborts, one crash-recovery participant, and adversarial
// decision races sprinkled in.
func DefaultWorkload() Workload {
	return Workload{
		Protocol:     ProtoAC3WN,
		Txs:          100,
		ArrivalEvery: 20 * sim.Second,
		MaxInFlight:  8,
		TxTimeout:    45 * sim.Minute,
		AssetChains:  2,
		Sizes:        []SizeWeight{{Size: 2, Weight: 6}, {Size: 3, Weight: 3}, {Size: 4, Weight: 1}},
		Mix:          Mix{Commit: 7, Abort: 2, Crash: 1, Race: 1},
		Adversity:    DefaultAdversity(),
	}
}

// validate rejects unusable workloads.
func (wl *Workload) validate() error {
	switch wl.Protocol {
	case ProtoAC3WN, ProtoAC3TW, ProtoHTLC:
	default:
		return fmt.Errorf("engine: unknown protocol %q", wl.Protocol)
	}
	if wl.Txs <= 0 {
		return fmt.Errorf("engine: workload needs Txs > 0")
	}
	if wl.ArrivalEvery <= 0 || wl.TxTimeout <= 0 {
		return fmt.Errorf("engine: non-positive workload times")
	}
	if wl.MaxInFlight <= 0 {
		return fmt.Errorf("engine: MaxInFlight must be positive")
	}
	if wl.AssetChains < 2 {
		return fmt.Errorf("engine: need >= 2 asset chains, got %d", wl.AssetChains)
	}
	if len(wl.Sizes) == 0 {
		return fmt.Errorf("engine: empty size distribution")
	}
	total := 0
	for _, s := range wl.Sizes {
		if s.Size < 2 {
			return fmt.Errorf("engine: AC2T size %d < 2", s.Size)
		}
		if s.Weight < 0 {
			return fmt.Errorf("engine: negative size weight")
		}
		total += s.Weight
	}
	if total == 0 {
		return fmt.Errorf("engine: all size weights zero")
	}
	m := wl.Mix
	if m.Commit < 0 || m.Abort < 0 || m.Crash < 0 || m.Race < 0 ||
		m.Partition < 0 || m.Lossy < 0 || m.Geo < 0 {
		return fmt.Errorf("engine: negative mix weight")
	}
	if m.total() == 0 {
		return fmt.Errorf("engine: all mix weights zero")
	}
	if m.Lossy > 0 {
		if wl.Adversity.Loss <= 0 || wl.Adversity.Loss >= 1 {
			return fmt.Errorf("engine: lossy scenario needs Adversity.Loss in (0,1), got %g", wl.Adversity.Loss)
		}
		if wl.Adversity.LossyFor <= 0 {
			return fmt.Errorf("engine: lossy scenario needs Adversity.LossyFor > 0")
		}
	}
	if wl.BatchWindow < 0 {
		return fmt.Errorf("engine: negative batch window")
	}
	if wl.BatchWindow > 0 {
		if wl.Protocol != ProtoAC3WN {
			return fmt.Errorf("engine: batching is AC3WN-only, got %q", wl.Protocol)
		}
		if wl.BatchWindow >= wl.TxTimeout {
			return fmt.Errorf("engine: batch window %dms cannot cover the whole %dms grading deadline",
				wl.BatchWindow, wl.TxTimeout)
		}
		bn, bm := wl.BatchWitnesses, wl.BatchThreshold
		if bn < 0 || bm < 0 {
			return fmt.Errorf("engine: negative batch quorum sizes")
		}
		if bn > 0 && bm > bn {
			return fmt.Errorf("engine: batch threshold %d above quorum size %d", bm, bn)
		}
	}
	if m.Partition > 0 {
		if wl.Adversity.PartitionFor <= 0 {
			return fmt.Errorf("engine: partition scenario needs Adversity.PartitionFor > 0")
		}
		// Sanity bound; the shard additionally clamps each window at
		// trigger time so the heal lands before that transaction's own
		// grading deadline.
		if wl.Adversity.PartitionFor >= wl.TxTimeout {
			return fmt.Errorf("engine: partition window %dms cannot cover the whole %dms grading deadline",
				wl.Adversity.PartitionFor, wl.TxTimeout)
		}
	}
	return nil
}

// drawSize samples the graph-size distribution.
func (wl *Workload) drawSize(rng *sim.RNG) int {
	total := 0
	for _, s := range wl.Sizes {
		total += s.Weight
	}
	n := rng.Intn(total)
	for _, s := range wl.Sizes {
		n -= s.Weight
		if n < 0 {
			return s.Size
		}
	}
	return wl.Sizes[len(wl.Sizes)-1].Size
}

// drawScenario samples the scenario mix. The protocol runtime lets
// every protocol run the full commit/abort/crash/race matrix — crash
// targets each protocol's critical failure point (a participant for
// AC3WN and AC3TW, the witness for AC3TW's blocking hazard, a
// mid-reveal participant for HTLC's asset loss), and race pushes the
// competing decision (authorize_refund on SCw, a refund request at
// Trent). The one remaining mapping is HTLC race → commit: hashlock
// contracts have no decision to race. It is reported, not silent —
// downgraded draws are counted in the aggregates.
func (wl *Workload) drawScenario(rng *sim.RNG) (sc Scenario, downgraded bool) {
	m := wl.Mix
	n := rng.Intn(m.total())
	switch {
	case n < m.Commit:
		sc = ScenarioCommit
	case n < m.Commit+m.Abort:
		sc = ScenarioAbort
	case n < m.Commit+m.Abort+m.Crash:
		sc = ScenarioCrash
	case n < m.Commit+m.Abort+m.Crash+m.Race:
		sc = ScenarioRace
	case n < m.Commit+m.Abort+m.Crash+m.Race+m.Partition:
		sc = ScenarioPartition
	case n < m.Commit+m.Abort+m.Crash+m.Race+m.Partition+m.Lossy:
		sc = ScenarioLossy
	default:
		sc = ScenarioGeo
	}
	if wl.Protocol == ProtoHTLC && sc == ScenarioRace {
		return ScenarioCommit, true
	}
	return sc, false
}
