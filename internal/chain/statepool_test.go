package chain

import (
	"bytes"
	"testing"
)

// Regression tests for the overlay pool's scope: recycling used to go
// through a process-global sync.Pool, so overlay layers migrated
// between shard worlds — the one piece of cross-world mutable state in
// this package (flagged by ac3lint's shardworld and globalstate
// analyzers). The pool is now a plain per-tree free list.

func TestStatePoolIsPerTree(t *testing.T) {
	a := NewState()
	b := NewState()
	if a.pool == b.pool {
		t.Fatal("two fresh trees share an overlay pool")
	}

	// A recycled overlay is reused within its own tree...
	o1 := a.overlay()
	o1.recycle()
	o2 := a.overlay()
	if o1 != o2 {
		t.Fatal("recycled overlay not reused within its tree")
	}
	if o2.pool != a.pool {
		t.Fatal("reused overlay does not belong to its tree's pool")
	}

	// ...and never resurfaces in another tree.
	o2.recycle()
	if ob := b.overlay(); ob == o2 {
		t.Fatal("overlay recycled in tree A resurfaced in tree B")
	}

	// A flattened base stays in its tree: it inherits the pool rather
	// than rooting a new one.
	f := a.overlay().flatten()
	if f.pool != a.pool {
		t.Fatal("flattened base rooted a fresh pool instead of inheriting its tree's")
	}
}

func TestRecycledOverlayComesBackEmpty(t *testing.T) {
	base := NewState()
	o := base.overlay()
	op := OutPoint{Index: 3}
	o.AddUTXO(op, TxOut{Value: 7})
	o.Spend(OutPoint{Index: 9})
	o.recycle()

	o2 := base.overlay()
	if o2 != o {
		t.Fatal("expected the recycled overlay back")
	}
	if len(o2.utxos) != 0 || len(o2.spent) != 0 {
		t.Fatal("recycled overlay kept entries from its previous life")
	}
	if o2.parent != base || o2.depth != 1 {
		t.Fatalf("reused overlay not re-parented: parent ok=%v depth=%d", o2.parent == base, o2.depth)
	}
}

// TestOutPointCompareIsTotalOrder pins the canonical outpoint order
// every sequence-producing consumer (funding selection, genesis
// layout) sorts with: transaction id bytes first, then output index.
func TestOutPointCompareIsTotalOrder(t *testing.T) {
	var lo, hi OutPoint
	hi.TxID[0] = 1
	pts := []OutPoint{
		lo,
		{TxID: lo.TxID, Index: 1},
		{TxID: lo.TxID, Index: 2},
		hi,
		{TxID: hi.TxID, Index: 5},
	}
	for i, p := range pts {
		for j, q := range pts {
			got := p.Compare(q)
			switch {
			case i == j && got != 0:
				t.Errorf("Compare(%v, %v) = %d, want 0", p, q, got)
			case i < j && got >= 0:
				t.Errorf("Compare(%v, %v) = %d, want < 0", p, q, got)
			case i > j && got <= 0:
				t.Errorf("Compare(%v, %v) = %d, want > 0", p, q, got)
			}
			if got != -q.Compare(p) {
				t.Errorf("Compare(%v, %v) not antisymmetric", p, q)
			}
		}
	}
	// The id comparison is byte-lexicographic, matching bytes.Compare.
	if got, want := pts[0].Compare(pts[3]), bytes.Compare(lo.TxID[:], hi.TxID[:]); got != want {
		t.Errorf("id ordering %d disagrees with bytes.Compare %d", got, want)
	}
}
