package miner

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Network is one simulated blockchain network: a set of mining nodes
// with identical genesis connected by their own p2p message layer.
// All nodes replicate one blockchain, so they share one chain.Executor
// — each node's Chain is an independent view (own tip choice, own
// canonical index) over the shared block store, and every block's
// state transition runs once per network instead of once per node.
// The AC3WN protocol composes several Networks — the asset chains plus
// one (or more, Section 5.2) witness networks.
type Network struct {
	Params chain.Params
	Sim    *sim.Sim
	P2P    *p2p.Network
	Nodes  []*Node

	exec *chain.Executor
}

// Config describes a blockchain network to build.
type Config struct {
	Params  chain.Params
	Miners  int              // number of equal-share mining nodes
	Latency p2p.LatencyModel // block/tx propagation delays
	Alloc   chain.GenesisAlloc
	// Registry configures deployable contract types; nil means none.
	Registry *vm.Registry
}

// NewNetwork builds and starts a blockchain network. Every node gets
// an equal hash-power share.
func NewNetwork(s *sim.Sim, cfg Config) (*Network, error) {
	if cfg.Miners <= 0 {
		return nil, fmt.Errorf("miner: need at least one miner")
	}
	p2pNet := p2p.NewNetwork(s, cfg.Latency)
	exec, err := chain.NewExecutor(cfg.Params, cfg.Registry, cfg.Alloc)
	if err != nil {
		return nil, err
	}
	net := &Network{Params: cfg.Params, Sim: s, P2P: p2pNet, exec: exec}
	share := 1.0 / float64(cfg.Miners)
	rng := s.RNG().Fork()
	for i := 0; i < cfg.Miners; i++ {
		key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
		n := NewNode(s, p2pNet, p2p.NodeID(i), exec.NewView(), key, share)
		net.Nodes = append(net.Nodes, n)
	}
	return net, nil
}

// Executor returns the network's shared chain store (block bodies,
// per-block states, and the ApplyBlock result cache every node's view
// reads through).
func (n *Network) Executor() *chain.Executor { return n.exec }

// BlocksMined sums blocks mined across the network's nodes.
func (n *Network) BlocksMined() int {
	total := 0
	for _, node := range n.Nodes {
		total += node.Mined
	}
	return total
}

// Start begins mining on every node.
func (n *Network) Start() {
	for _, node := range n.Nodes {
		node.Start()
	}
}

// Node returns the i-th mining node.
func (n *Network) Node(i int) *Node { return n.Nodes[i] }

// Height returns the canonical height at node 0 (convenience for
// tests and experiments).
func (n *Network) Height() uint64 { return n.Nodes[0].Chain.Height() }

// Converged reports whether all live nodes agree on the canonical
// tip.
func (n *Network) Converged() bool {
	var tip crypto.Hash
	first := true
	for _, node := range n.Nodes {
		if !node.Alive() {
			continue
		}
		h := node.Chain.Tip().Hash()
		if first {
			tip, first = h, false
			continue
		}
		if h != tip {
			return false
		}
	}
	return true
}

// TotalReorgs sums reorg counts across nodes.
func (n *Network) TotalReorgs() int {
	total := 0
	for _, node := range n.Nodes {
		total += node.Chain.Reorgs
	}
	return total
}

// MaxReorgDepth returns the deepest reorg any node's view performed —
// the canonical-suffix length a partition heal or fork race rolled
// back on some replica.
func (n *Network) MaxReorgDepth() int {
	deepest := 0
	for _, node := range n.Nodes {
		if d := node.Chain.MaxReorgDepth; d > deepest {
			deepest = d
		}
	}
	return deepest
}

// MsgsDropped reports gossip messages this network's p2p layer
// accepted at send time but never delivered — lost to the loss model,
// a partition, or a crashed endpoint.
func (n *Network) MsgsDropped() uint64 { return n.P2P.Dropped }
