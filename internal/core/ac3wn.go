// Package core implements the paper's atomic cross-chain commitment
// protocols: AC3WN (Section 4.2, the contribution — a permissionless
// witness network coordinates the AC2T) and AC3TW (Section 4.1, the
// centralized-witness strawman it improves on).
//
// Participants are modeled as reconcilers: a participant inspects the
// chains through its clients and performs the next enabled action —
// deploy the coordinator, verify it, deploy its own asset contracts,
// push the commit/abort decision, redeem or refund. Reconciliation is
// notification-driven: drive runs when one of the participant's chain
// views changes tip (the miner layer's subscription bus), when an
// off-chain announcement arrives, or when an explicit protocol timer
// (the abort deadline, the decision-push grace period) expires — never
// on a fixed polling cadence. Because every step is recoverable from
// on-chain state, a crashed participant that restarts simply re-arms
// its subscriptions and resumes — which is precisely the
// all-or-nothing property the paper proves and the baselines lack.
package core

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/miner"
	"repro/internal/sim"
	"repro/internal/spv"
	"repro/internal/vm"
	"repro/internal/xchain"
)

// Event is a timestamped timeline entry (Figure 9 phases).
type Event struct {
	At    sim.Time
	Label string
	Edge  int // -1 for protocol-level events
}

// Config configures one AC3WN run.
type Config struct {
	Graph        *graph.Graph
	Participants []*xchain.Participant
	// Initiator deploys SCw. Any participant can push the decision;
	// the initiator merely goes first.
	Initiator *xchain.Participant
	// WitnessChain hosts SCw. Different AC2Ts may use different
	// witness chains (Section 5.2); it may even be one of the asset
	// chains.
	WitnessChain chain.ID
	// WitnessDepth is d: how deep SCw state changes must be buried
	// before they count (Section 6.3 governs choosing it).
	WitnessDepth int
	// AssetDepth is the confirmation depth required of asset-chain
	// contract deployments.
	AssetDepth int
	// AbortAfter (>0) makes participants push authorize_refund if the
	// AC2T has not committed by start+AbortAfter — the paper's "a
	// participant changes her mind / declines" path.
	AbortAfter sim.Time
	// RetryEvery is the base interval for throttling retried on-chain
	// actions (default: half the witness block interval). It no longer
	// drives the reconciler — notifications do — it only stops an
	// action that keeps failing from being re-submitted on every
	// wakeup.
	RetryEvery sim.Time
}

// pstate is per-participant protocol state (lost on crash only if the
// participant chooses not to persist it; everything here can be
// reconstructed from chain state plus the off-chain announcements,
// and Resume re-arms it).
type pstate struct {
	subs         []*miner.Sub // tip-change subscriptions, one per chain
	graceArmed   bool         // decision-push grace timer pending
	deployedOwn  bool
	verifiedSCw  bool
	rejectedSCw  bool
	submittedRD  bool
	submittedRF  bool
	lastAttempt  map[string]sim.Time // throttle per action key
	announcedOwn map[int]bool
}

// Run is one executing AC3WN commitment.
type Run struct {
	w   *xchain.World
	cfg Config

	start sim.Time

	// SCw location (announced by the initiator off-chain).
	scwTx   *chain.Tx
	scwAddr crypto.Address
	// Checkpoints registered in SCw, per asset chain: the stable
	// block hash evidence must be anchored at.
	checkpointHash map[chain.ID]crypto.Hash

	// Per-edge asset contract locations (off-chain announcements).
	addrs     []crypto.Address
	deployTx  []crypto.Hash
	confirmed []bool

	states map[*xchain.Participant]*pstate

	Events []Event
	// Phase boundaries for Figure 9: SCw confirmed, all asset
	// contracts confirmed, decision buried d deep, all redeemed (or
	// refunded).
	SCwConfirmedAt   sim.Time
	AllDeployedAt    sim.Time
	DecidedAt        sim.Time
	CompletedAt      sim.Time
	DecidedOutcome   contracts.WitnessState
	terminalReported map[int]bool
}

// announceSCw and announceDeploy are the off-chain messages.
type announceSCw struct {
	Addr        crypto.Address
	TxID        crypto.Hash
	Checkpoints map[chain.ID]crypto.Hash
}

type announceDeploy struct {
	EdgeIdx int
	Addr    crypto.Address
	TxID    crypto.Hash
}

// New validates the configuration and prepares a run. Unlike the
// single-leader baseline, any graph shape is accepted — cyclic and
// disconnected included (Section 5.3).
func New(w *xchain.World, cfg Config) (*Run, error) {
	if cfg.Graph == nil || len(cfg.Participants) == 0 || cfg.Initiator == nil {
		return nil, fmt.Errorf("core: incomplete config")
	}
	if cfg.WitnessDepth < 0 || cfg.AssetDepth < 0 {
		return nil, fmt.Errorf("core: negative depths")
	}
	if _, ok := w.Nets[cfg.WitnessChain]; !ok {
		return nil, fmt.Errorf("core: unknown witness chain %q", cfg.WitnessChain)
	}
	byAddr := make(map[crypto.Address]bool)
	for _, p := range cfg.Participants {
		byAddr[p.Addr()] = true
	}
	for _, v := range cfg.Graph.Participants {
		if !byAddr[v] {
			return nil, fmt.Errorf("core: no participant object for vertex %s", v)
		}
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = w.Nets[cfg.WitnessChain].Params.BlockInterval / 2
	}
	r := &Run{
		w:                w,
		cfg:              cfg,
		checkpointHash:   make(map[chain.ID]crypto.Hash),
		addrs:            make([]crypto.Address, len(cfg.Graph.Edges)),
		deployTx:         make([]crypto.Hash, len(cfg.Graph.Edges)),
		confirmed:        make([]bool, len(cfg.Graph.Edges)),
		states:           make(map[*xchain.Participant]*pstate),
		terminalReported: make(map[int]bool),
	}
	for _, p := range cfg.Participants {
		r.states[p] = &pstate{
			lastAttempt:  make(map[string]sim.Time),
			announcedOwn: make(map[int]bool),
		}
	}
	return r, nil
}

// Start begins the run at the current virtual time.
func (r *Run) Start() {
	r.start = r.w.Sim.Now()
	r.event(-1, "ac3wn started")
	for _, p := range r.cfg.Participants {
		p := p
		p.OnMessage(func(from *xchain.Participant, msg any) { r.onMessage(p, msg) })
		r.subscribe(p)
	}
	if r.cfg.AbortAfter > 0 {
		r.w.Sim.After(r.cfg.AbortAfter, func() { r.abortIfUndecided() })
	}
	// Kick the reconcilers once so the initiator publishes SCw without
	// waiting for the first block; afterwards notifications take over.
	for _, p := range r.cfg.Participants {
		if !p.Crashed() {
			r.drive(p)
		}
	}
}

// Resume re-arms a recovered participant's subscriptions and re-drives
// it. The participant re-learns everything else from the chains.
func (r *Run) Resume(p *xchain.Participant) {
	if p.Crashed() {
		return
	}
	r.subscribe(p)
	r.drive(p)
}

// subscribe points the participant's reconciler at the notification
// bus: every chain the AC2T touches (asset chains and the witness
// chain) re-drives p when its canonical tip changes. The subscriptions
// die with the participant's clients on crash; Resume re-arms them —
// the crash/recovery story is unchanged from the polling reconciler.
func (r *Run) subscribe(p *xchain.Participant) {
	st := r.states[p]
	for _, sub := range st.subs {
		sub.Cancel() // idempotent; safe on crashed-and-dead subs
	}
	st.subs = st.subs[:0]
	chains := append([]chain.ID{r.cfg.WitnessChain}, r.cfg.Graph.Chains()...)
	seen := make(map[chain.ID]bool, len(chains))
	for _, id := range chains {
		if seen[id] {
			continue
		}
		seen[id] = true
		st.subs = append(st.subs, p.Client(id).OnTipChange(func() {
			if !p.Crashed() {
				r.drive(p)
			}
		}))
	}
}

// event appends a timeline entry.
func (r *Run) event(edge int, label string) {
	r.Events = append(r.Events, Event{At: r.w.Sim.Now(), Label: label, Edge: edge})
}

// tellPeers sends an off-chain message to this AC2T's other
// participants. Announcements are scoped to the transaction's own
// parties: concurrent AC2Ts on shared chains must not see (or trust)
// each other's contract locations.
func (r *Run) tellPeers(from *xchain.Participant, msg any) {
	for _, q := range r.cfg.Participants {
		if q != from {
			from.Tell(q, msg)
		}
	}
}

// throttled runs the action at most once per interval per key.
func (st *pstate) throttled(now sim.Time, key string, interval sim.Time, fn func()) {
	if last, ok := st.lastAttempt[key]; ok && now-last < interval {
		return
	}
	st.lastAttempt[key] = now
	fn()
}

// onMessage ingests off-chain announcements.
func (r *Run) onMessage(p *xchain.Participant, msg any) {
	switch m := msg.(type) {
	case announceSCw:
		if r.scwAddr.IsZero() {
			r.scwAddr = m.Addr
			for id, h := range m.Checkpoints {
				r.checkpointHash[id] = h
			}
		}
	case announceDeploy:
		if r.addrs[m.EdgeIdx].IsZero() {
			r.addrs[m.EdgeIdx] = m.Addr
			r.deployTx[m.EdgeIdx] = m.TxID
		}
	}
	if !p.Crashed() {
		r.drive(p)
	}
}

// drive is the reconciler: inspect the world through p's clients and
// take the next enabled action. Idempotent; safe to call at any time —
// it runs on every tip-change notification, on off-chain announcement
// arrival, and when a protocol timer expires.
func (r *Run) drive(p *xchain.Participant) {
	st := r.states[p]
	now := r.w.Sim.Now()

	// Phase 1: the initiator publishes SCw.
	if r.scwAddr.IsZero() {
		if p == r.cfg.Initiator {
			st.throttled(now, "deploy-scw", 4*r.cfg.RetryEvery, func() { r.deploySCw(p) })
		}
		return
	}

	wclient := p.Client(r.cfg.WitnessChain)
	scw, ok := r.readSCw(wclient, 0)
	if !ok {
		return // SCw not yet visible on p's node
	}

	// Verify SCw before conditioning any assets on it.
	if !st.verifiedSCw {
		if err := r.verifySCw(p, scw); err != nil {
			if !st.rejectedSCw {
				st.rejectedSCw = true
				r.event(-1, fmt.Sprintf("%s rejects SCw: %v", p.Name, err))
			}
			// A participant that distrusts SCw pushes the abort.
			r.trySubmitRefund(p, st, now)
			return
		}
		st.verifiedSCw = true
	}

	// Read the decisive state at depth d.
	stable, haveStable := r.readSCw(wclient, r.cfg.WitnessDepth)

	switch {
	case haveStable && stable.State == contracts.WitnessRedeemAuthorized:
		r.markDecision(contracts.WitnessRedeemAuthorized)
		r.settle(p, st, now, true)
	case haveStable && stable.State == contracts.WitnessRefundAuthorized:
		r.markDecision(contracts.WitnessRefundAuthorized)
		r.settle(p, st, now, false)
	default:
		// Still undecided at depth d.
		if scw.State == contracts.WitnessPublished {
			// Phase 2: deploy own asset contracts once SCw itself is
			// confirmed at depth d.
			if _, scwStable := r.readSCw(wclient, r.cfg.WitnessDepth); scwStable {
				r.markSCwConfirmed()
				if !st.deployedOwn {
					r.deployOwnEdges(p, st)
				}
				// Phase 3: push the commit decision once every asset
				// contract is confirmed. The initiator goes first;
				// the others follow after a rank-staggered grace
				// period, so any live participant eventually pushes
				// the decision (no single coordinator) without
				// everyone racing to pay the same fee. The grace wait
				// is an explicit timer, not a polling cadence: drive
				// re-runs exactly when the grace period expires.
				if r.allConfirmed() && !st.submittedRD {
					due := r.AllDeployedAt + r.pushGrace(p)
					switch {
					case now >= due:
						st.throttled(now, "authorize-redeem", 6*r.cfg.RetryEvery, func() {
							r.submitAuthorizeRedeem(p, st)
						})
					case !st.graceArmed:
						st.graceArmed = true
						r.w.Sim.At(due, func() {
							st.graceArmed = false
							if !p.Crashed() {
								r.drive(p)
							}
						})
					}
				}
			}
		}
	}
}

// deploySCw publishes the coordinator contract with stable-block
// checkpoints for every asset chain.
func (r *Run) deploySCw(p *xchain.Participant) {
	cps := make([]contracts.ChainCheckpoint, 0, len(r.cfg.Graph.Chains()))
	cpHashes := make(map[chain.ID]crypto.Hash)
	for _, id := range r.cfg.Graph.Chains() {
		view := p.Client(id).Chain()
		stable, ok := view.CanonicalAt(heightAtDepth(view, r.cfg.AssetDepth))
		if !ok {
			return // chain too short; retry next tick
		}
		cps = append(cps, contracts.ChainCheckpoint{
			Chain:         id,
			Header:        stable.Header.Encode(),
			EvidenceDepth: r.cfg.AssetDepth,
		})
		cpHashes[id] = stable.Hash()
	}
	ms := crypto.NewMultiSig(r.cfg.Graph.Digest())
	for _, q := range r.cfg.Participants {
		ms.Add(q.Key)
	}
	params := vm.EncodeGob(contracts.WitnessParams{
		Edges:        r.cfg.Graph.Edges,
		Timestamp:    r.cfg.Graph.Timestamp,
		Multisig:     *ms,
		Checkpoints:  cps,
		WitnessDepth: r.cfg.WitnessDepth,
	})
	client := p.Client(r.cfg.WitnessChain)
	tx, addr, err := client.Deploy(contracts.TypeWitness, params, 0)
	if err != nil {
		r.event(-1, "SCw deploy failed: "+err.Error())
		return
	}
	p.Deploys++
	r.scwTx = tx
	r.scwAddr = addr
	r.checkpointHash = cpHashes
	r.event(-1, "SCw deploy submitted")
	// The watch both marks the phase boundary and — crucially —
	// resubmits the deployment if its block loses a fork race; without
	// it an unlucky SCw deploy could vanish with an abandoned fork.
	client.WhenTxAtDepth(tx, r.cfg.WitnessDepth, func(crypto.Hash) {
		r.markSCwConfirmed()
		if !p.Crashed() {
			r.drive(p)
		}
	})
	r.tellPeers(p, announceSCw{Addr: addr, TxID: tx.ID(), Checkpoints: cpHashes})
}

// heightAtDepth returns the canonical height depth blocks under the
// tip (0 when the chain is shorter).
func heightAtDepth(view *chain.Chain, depth int) uint64 {
	h := view.Height()
	if uint64(depth) > h {
		return 0
	}
	return h - uint64(depth)
}

// readSCw reads the witness contract at the given depth.
func (r *Run) readSCw(client *miner.Client, depth int) (*contracts.WitnessSC, bool) {
	ct, ok := client.ContractNow(r.scwAddr, depth)
	if !ok {
		return nil, false
	}
	scw, isW := ct.(*contracts.WitnessSC)
	return scw, isW
}

// verifySCw checks that the published coordinator matches the graph
// the participant signed and anchors checkpoints the participant's
// own views recognize as canonical and stable.
func (r *Run) verifySCw(p *xchain.Participant, scw *contracts.WitnessSC) error {
	g := r.cfg.Graph
	if scw.Timestamp != g.Timestamp || len(scw.Edges) != len(g.Edges) {
		return fmt.Errorf("graph mismatch")
	}
	for i, e := range g.Edges {
		if scw.Edges[i] != e {
			return fmt.Errorf("edge %d mismatch", i)
		}
	}
	if scw.WitnessDepth != r.cfg.WitnessDepth {
		return fmt.Errorf("witness depth %d, agreed %d", scw.WitnessDepth, r.cfg.WitnessDepth)
	}
	ms := crypto.NewMultiSig(g.Digest())
	for _, q := range r.cfg.Participants {
		ms.Add(q.Key)
	}
	if scw.MSID != ms.ID() {
		return fmt.Errorf("multisig mismatch")
	}
	for _, cp := range scw.Checkpoints {
		hdr, err := chain.DecodeHeader(cp.Header)
		if err != nil {
			return fmt.Errorf("checkpoint %s: %w", cp.Chain, err)
		}
		view := p.Client(cp.Chain).Chain()
		if !view.IsCanonical(hdr.Hash()) {
			return fmt.Errorf("checkpoint %s not canonical on my view", cp.Chain)
		}
	}
	return nil
}

// deployOwnEdges publishes p's outgoing asset contracts — all in
// parallel, the protocol's headline structural difference from the
// baselines.
func (r *Run) deployOwnEdges(p *xchain.Participant, st *pstate) {
	st.deployedOwn = true
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() {
			continue
		}
		i, e := i, e
		wview := p.Client(r.cfg.WitnessChain).Chain()
		stable, ok := wview.CanonicalAt(heightAtDepth(wview, r.cfg.WitnessDepth))
		if !ok {
			st.deployedOwn = false
			return
		}
		params := vm.EncodeGob(contracts.PermissionlessParams{
			Recipient:         e.To,
			WitnessChain:      r.cfg.WitnessChain,
			WitnessCheckpoint: stable.Header.Encode(),
			SCw:               r.scwAddr,
			Depth:             r.cfg.WitnessDepth,
		})
		client := p.Client(e.Chain)
		tx, addr, err := client.Deploy(contracts.TypePermissionless, params, e.Asset)
		if err != nil {
			r.event(i, "deploy failed: "+err.Error())
			continue
		}
		p.Deploys++
		r.event(i, "deploy submitted")
		client.WhenTxAtDepth(tx, r.cfg.AssetDepth, func(crypto.Hash) {
			if st.announcedOwn[i] {
				return
			}
			st.announcedOwn[i] = true
			r.event(i, "deploy confirmed")
			r.noteConfirmed(i, addr, tx.ID())
			r.tellPeers(p, announceDeploy{EdgeIdx: i, Addr: addr, TxID: tx.ID()})
			r.drive(p)
		})
	}
}

// noteConfirmed records a confirmed asset contract.
func (r *Run) noteConfirmed(i int, addr crypto.Address, txID crypto.Hash) {
	if r.addrs[i].IsZero() {
		r.addrs[i] = addr
		r.deployTx[i] = txID
	}
	r.confirmed[i] = true
	if r.allConfirmed() && r.AllDeployedAt == 0 {
		r.AllDeployedAt = r.w.Sim.Now()
		r.event(-1, "all asset contracts confirmed")
	}
}

func (r *Run) allConfirmed() bool {
	for _, c := range r.confirmed {
		if !c {
			return false
		}
	}
	return true
}

// pushGrace returns how long p waits after all-deployed before
// pushing the decision itself: 0 for the initiator, rank-staggered
// multiples of the witness block interval for everyone else.
func (r *Run) pushGrace(p *xchain.Participant) sim.Time {
	if p == r.cfg.Initiator {
		return 0
	}
	rank := 1
	for i, q := range r.cfg.Participants {
		if q == p {
			rank = i + 1
			break
		}
	}
	interval := r.w.Nets[r.cfg.WitnessChain].Params.BlockInterval
	return sim.Time(rank) * 6 * interval
}

// submitAuthorizeRedeem assembles per-edge deployment evidence and
// pushes SCw to RDauth.
func (r *Run) submitAuthorizeRedeem(p *xchain.Participant, st *pstate) {
	evs := make([][]byte, 0, len(r.cfg.Graph.Edges))
	for i, e := range r.cfg.Graph.Edges {
		view := p.Client(e.Chain).Chain()
		cpHash, ok := r.checkpointHash[e.Chain]
		if !ok {
			return
		}
		ev, err := spv.Build(view, cpHash, r.deployTx[i], r.cfg.AssetDepth)
		if err != nil {
			return // not stable enough on p's view yet; retry later
		}
		evs = append(evs, ev.Encode())
	}
	client := p.Client(r.cfg.WitnessChain)
	if _, err := client.Call(r.scwAddr, contracts.FnAuthorizeRedeem, contracts.EncodeEvidenceList(evs), 0); err != nil {
		return
	}
	p.Calls++
	st.submittedRD = true
	r.event(-1, "authorize_redeem submitted by "+p.Name)
}

// abortIfUndecided pushes authorize_refund when the deadline passes
// without a commit.
func (r *Run) abortIfUndecided() {
	for _, p := range r.cfg.Participants {
		if p.Crashed() {
			continue
		}
		st := r.states[p]
		if r.scwAddr.IsZero() {
			continue
		}
		wclient := p.Client(r.cfg.WitnessChain)
		scw, ok := r.readSCw(wclient, 0)
		if !ok || scw.State != contracts.WitnessPublished {
			continue
		}
		r.trySubmitRefund(p, st, r.w.Sim.Now())
	}
}

// trySubmitRefund pushes SCw to RFauth (no evidence required).
func (r *Run) trySubmitRefund(p *xchain.Participant, st *pstate, now sim.Time) {
	if st.submittedRF || r.scwAddr.IsZero() {
		return
	}
	st.throttled(now, "authorize-refund", 6*r.cfg.RetryEvery, func() {
		client := p.Client(r.cfg.WitnessChain)
		if _, err := client.Call(r.scwAddr, contracts.FnAuthorizeRefund, nil, 0); err == nil {
			p.Calls++
			st.submittedRF = true
			r.event(-1, "authorize_refund submitted by "+p.Name)
		}
	})
}

// markSCwConfirmed records the first phase boundary.
func (r *Run) markSCwConfirmed() {
	if r.SCwConfirmedAt == 0 {
		r.SCwConfirmedAt = r.w.Sim.Now()
		r.event(-1, "SCw confirmed at depth d")
	}
}

// markDecision records the commit/abort decision boundary.
func (r *Run) markDecision(outcome contracts.WitnessState) {
	if r.DecidedAt == 0 {
		r.DecidedAt = r.w.Sim.Now()
		r.DecidedOutcome = outcome
		r.event(-1, "decision "+outcome.String()+" stable at depth d")
	}
}

// settle redeems p's incoming edges (commit) or refunds p's outgoing
// edges (abort), with evidence of SCw's stable state.
func (r *Run) settle(p *xchain.Participant, st *pstate, now sim.Time, commit bool) {
	fn := contracts.FnAuthorizeRedeem
	action := contracts.FnRedeem
	if !commit {
		fn = contracts.FnAuthorizeRefund
		action = contracts.FnRefund
	}
	for i, e := range r.cfg.Graph.Edges {
		mine := (commit && e.To == p.Addr()) || (!commit && e.From == p.Addr())
		if !mine || r.addrs[i].IsZero() {
			continue
		}
		i, e := i, e
		client := p.Client(e.Chain)
		ct, ok := client.ContractNow(r.addrs[i], 0)
		if !ok {
			continue
		}
		sc, isSC := ct.(*contracts.PermissionlessSC)
		if !isSC || sc.State != contracts.StatePublished {
			r.noteTerminal(i, sc, isSC)
			continue
		}
		st.throttled(now, fmt.Sprintf("%s-%d", action, i), 6*r.cfg.RetryEvery, func() {
			ev, err := r.witnessEvidenceFor(p, sc, fn)
			if err != nil {
				return
			}
			if _, err := client.Call(r.addrs[i], action, ev, 0); err == nil {
				p.Calls++
				r.event(i, action+" submitted")
			}
		})
	}
}

// noteTerminal records completion timestamps as contracts reach RD/RF.
func (r *Run) noteTerminal(i int, sc *contracts.PermissionlessSC, ok bool) {
	if !ok || r.terminalReported[i] {
		return
	}
	r.terminalReported[i] = true
	r.event(i, "terminal "+sc.State.String())
	if len(r.terminalReported) == len(r.cfg.Graph.Edges) && r.CompletedAt == 0 {
		r.CompletedAt = r.w.Sim.Now()
		r.event(-1, "all contracts settled")
	}
}

// witnessEvidenceFor builds SPV evidence that SCw's state-changing
// call is buried d deep, anchored at the checkpoint stored in the
// asset contract.
func (r *Run) witnessEvidenceFor(p *xchain.Participant, sc *contracts.PermissionlessSC, fn string) ([]byte, error) {
	hdr, err := chain.DecodeHeader(sc.WitnessCheckpoint)
	if err != nil {
		return nil, err
	}
	wview := p.Client(r.cfg.WitnessChain).Chain()
	authTx, ok := findCallTx(wview, r.scwAddr, fn)
	if !ok {
		return nil, fmt.Errorf("core: no %s call found on witness chain", fn)
	}
	ev, err := spv.Build(wview, hdr.Hash(), authTx, r.cfg.WitnessDepth)
	if err != nil {
		return nil, err
	}
	return ev.Encode(), nil
}

// findCallTx scans the canonical witness chain (newest first) for a
// call of fn on the contract.
func findCallTx(view *chain.Chain, contract crypto.Address, fn string) (crypto.Hash, bool) {
	for h := view.Height(); ; h-- {
		b, ok := view.CanonicalAt(h)
		if !ok {
			break
		}
		for _, tx := range b.Txs {
			if tx.Kind == chain.TxCall && tx.Contract == contract && tx.Fn == fn {
				return tx.ID(), true
			}
		}
		if h == 0 {
			break
		}
	}
	return crypto.Hash{}, false
}

// Addrs exposes per-edge contract addresses for grading.
func (r *Run) Addrs() []crypto.Address { return append([]crypto.Address(nil), r.addrs...) }

// SCwAddr exposes the coordinator address.
func (r *Run) SCwAddr() crypto.Address { return r.scwAddr }

// SCwTx exposes the coordinator deployment transaction (nil until the
// initiator deployed it).
func (r *Run) SCwTx() *chain.Tx { return r.scwTx }

// Grade reads terminal contract states from ground-truth views and
// counts the on-chain operations the AC2T paid for: the asset
// contracts on their chains plus SCw on the witness chain (the +1 of
// Section 6.2's cost analysis).
func (r *Run) Grade() *xchain.Outcome {
	out := xchain.GradeGraph(r.w, r.cfg.Graph, r.addrs)
	out.Start = r.start
	end := r.start
	for _, ev := range r.Events {
		if ev.At > end {
			end = ev.At
		}
	}
	if r.CompletedAt != 0 {
		end = r.CompletedAt
	}
	out.End = end

	perChain := make(map[chain.ID]map[crypto.Address]bool)
	addTo := func(id chain.ID, a crypto.Address) {
		if a.IsZero() {
			return
		}
		if perChain[id] == nil {
			perChain[id] = make(map[crypto.Address]bool)
		}
		perChain[id][a] = true
	}
	for i, e := range r.cfg.Graph.Edges {
		addTo(e.Chain, r.addrs[i])
	}
	addTo(r.cfg.WitnessChain, r.scwAddr)
	for id, set := range perChain {
		d, c := xchain.CountContractOps(r.w.View(id), set)
		out.Deploys += d
		out.Calls += c
	}
	return out
}
