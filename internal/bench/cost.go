package bench

import (
	"fmt"

	"repro/internal/fees"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// Cost reproduces Section 6.2's cost analysis: per-AC2T fees for
// Herlihy (N·(fd+ffc)) versus AC3WN ((N+1)·(fd+ffc)), with the
// overhead 1/N, at the paper's two ETH/USD reference rates. For small
// N the operation counts are *measured* from real protocol runs (the
// on-chain transactions the participants actually paid for); larger N
// rows are analytic.
func Cost(seed uint64) *Result {
	t := metrics.NewTable("Section 6.2 — AC2T fee comparison",
		"N (contracts)", "Herlihy ops", "AC3WN ops", "Herlihy $ @300", "AC3WN $ @300",
		"Herlihy $ @140", "AC3WN $ @140", "overhead", "source")

	ok := true
	for _, n := range []int{2, 4, 8, 16, 32} {
		hD, hC := n, n
		aD, aC := n+1, n+1
		source := "analytic"
		if n <= 8 {
			// Measure from real runs on an n-ring.
			source = "measured"
			wH, gH, psH, err := ringWorld(seed+uint64(n), n)
			if err != nil {
				return &Result{ID: "cost", Title: "fees", Output: err.Error()}
			}
			_, outH, err := runHerlihy(wH, gH, psH, sim.Time(n+4)*sim.Hour)
			if err != nil || !outH.Committed() {
				ok = false
			} else {
				hD, hC = outH.Deploys, outH.Calls
			}
			wW, gW, psW, err := ringWorld(seed+uint64(n)*7, n)
			if err != nil {
				return &Result{ID: "cost", Title: "fees", Output: err.Error()}
			}
			_, outW, err := runAC3WN(wW, gW, psW, "witness", 2*sim.Hour)
			if err != nil || !outW.Committed() {
				ok = false
			} else {
				aD, aC = outW.Deploys, outW.Calls
			}
			// The measured counts must equal the paper's formula.
			if hD != n || hC != n || aD != n+1 || aC != n+1 {
				ok = false
			}
		}
		h300 := fees.MeasuredCost(fees.ScheduleETH300, "Herlihy", hD, hC)
		a300 := fees.MeasuredCost(fees.ScheduleETH300, "AC3WN", aD, aC)
		h140 := fees.MeasuredCost(fees.ScheduleETH140, "Herlihy", hD, hC)
		a140 := fees.MeasuredCost(fees.ScheduleETH140, "AC3WN", aD, aC)
		t.AddRow(n,
			fmt.Sprintf("%dd+%dc", hD, hC),
			fmt.Sprintf("%dd+%dc", aD, aC),
			fmt.Sprintf("$%.0f", h300.USD), fmt.Sprintf("$%.0f", a300.USD),
			fmt.Sprintf("$%.0f", h140.USD), fmt.Sprintf("$%.0f", a140.USD),
			fmt.Sprintf("1/%d = %.3f", n, fees.Overhead(n)),
			source)
	}
	t.Note("AC3WN pays for one extra contract (SCw) and one extra call (the state change): overhead 1/N of the baseline fee")
	t.Note("fd = ffc ≈ $4 at $300/ETH and ≈ $2 at $140/ETH (Ryan [27], as cited in Section 6.2)")
	return &Result{
		ID:     "cost",
		Title:  "per-AC2T fees: N·(fd+ffc) vs (N+1)·(fd+ffc)",
		Output: t.String(),
		OK:     ok,
	}
}
