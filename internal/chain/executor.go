package chain

import (
	"fmt"

	"repro/internal/crypto"
	"repro/internal/vm"
)

// Executor is one blockchain network's shared store and state machine:
// the immutable block DAG, the per-block ledger states, the tx→block
// index, and a memoized ApplyBlock outcome per block hash. The paper's
// storage layer (Section 2.1) replicates a blockchain across N mining
// nodes, but block validation is a deterministic function of the
// (immutable) parent state and the (immutable) block — honest replicas
// re-running it always reach the same verdict (the Section 2.3
// deterministic-replay argument). The executor therefore runs every
// state transition exactly once per network and serves the result —
// success (a shared read-only child state) or failure (the cached
// rejection) — to every replica view created with NewView.
//
// With Params.PruneDepth > 0 the executor additionally garbage-collects
// ledger states: once a block is buried deeper than PruneDepth below
// every live view's tip, its memoized *State is dropped, and index
// entries of blocks canonical in no view go with it. A pruned state
// read below the horizon is re-derived by replaying blocks from the
// nearest retained ancestor state — the same determinism argument in
// reverse. With Params.RetireDepth > 0 a second, much deeper sweep
// releases whole blocks (bodies carry the SPV evidence blobs that
// dominate memory at scale), pinning the canonical state at the retire
// floor as the replay base — the pruned-full-node model: history below
// the floor is gone, everything above it stays replayable. See ADR-007.
//
// The executor is deliberately lock-free: it inherits the simulation's
// single-goroutine-per-world discipline (the engine's shards each own
// their worlds outright), so sharing is free. Everything that makes
// replicas *different* — tip choice, the canonical index, TipEvent
// listeners — stays in the per-node Chain view.
type Executor struct {
	params Params
	reg    *vm.Registry

	genesis *Block
	blocks  map[crypto.Hash]*Block        // valid blocks, any fork
	states  map[crypto.Hash]*State        // state after each valid block
	invalid map[crypto.Hash]error         // cached permanent rejections
	txIndex map[crypto.Hash][]crypto.Hash // txid -> blocks containing it

	// opIndex maps a contract address to the blocks whose transactions
	// deployed or called it, so contract-activity accounting (grading)
	// reads O(ops) instead of rescanning the whole canonical chain.
	opIndex map[crypto.Address][]opRef

	// Pruning machinery: every live view (NewView) registers here so
	// the prune horizon can be computed as min(tip height) over views;
	// byHeight drives the monotone sweeps from pruneFloor (states) and
	// retireFloor (whole blocks) upward.
	views      []*Chain
	byHeight   map[uint64][]crypto.Hash
	pruneFloor uint64

	// History retirement (Params.RetireDepth): retireFloor is the
	// lowest retained height (0 while retirement is disabled or hasn't
	// advanced), ckpt the canonical block at that floor whose state is
	// pinned as the replay base for everything above it.
	retireFloor uint64
	ckpt        crypto.Hash

	stats ExecStats
}

// opRef locates one contract operation: the block carrying it and
// whether it was a call (false = deploy).
type opRef struct {
	block  crypto.Hash
	height uint64
	call   bool
}

// ExecStats counts the executor's work. Hit rate quantifies how much
// redundant execution the shared store absorbed: with N replica views
// each block costs one execution and N-1 hits.
type ExecStats struct {
	// Executed counts full ApplyBlock state transitions actually run
	// (genesis, Execute cache misses, and locally built blocks
	// committed via CommitBuilt — the build pass is their execution).
	Executed uint64
	// Hits counts Execute/CommitBuilt calls served from the memoized
	// result — including cached rejections of invalid blocks and
	// known-valid blocks whose state was pruned (the verdict is still
	// cached even when the state has to be re-derived).
	Hits uint64
	// Pruned counts per-block states dropped by depth-based pruning.
	Pruned uint64
	// Replays counts ApplyBlock runs performed solely to re-derive a
	// pruned state (excluded from Executed so accounting is identical
	// with pruning on or off). Checkpoint advances during history
	// retirement replay each block at most once more over its life.
	Replays uint64
	// Retired counts whole blocks released by history retirement
	// (Params.RetireDepth).
	Retired uint64
	// StatesLive is the number of per-block states currently retained
	// (a snapshot, filled by Stats).
	StatesLive int
}

// NewExecutor builds a network's shared store with a deterministic
// genesis block minting alloc. Two NewExecutor calls with equal params
// and alloc produce the identical genesis, so independently
// constructed networks (or test fixtures) share one chain identity.
func NewExecutor(params Params, reg *vm.Registry, alloc GenesisAlloc) (*Executor, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if reg == nil {
		reg = vm.NewRegistry()
	}
	gtx := genesisTx(alloc)
	genesis := NewBlock(Header{
		ChainID: params.ID,
		Parent:  crypto.ZeroHash,
		Height:  0,
		Time:    0,
		Bits:    uint8(params.DifficultyBits),
	}, []*Tx{gtx})
	genesis.Header.Seal(0)

	st, err := ApplyBlock(NewState(), reg, params, genesis)
	if err != nil {
		return nil, fmt.Errorf("chain: genesis invalid: %w", err)
	}
	e := &Executor{
		params:   params,
		reg:      reg,
		genesis:  genesis,
		blocks:   make(map[crypto.Hash]*Block),
		states:   make(map[crypto.Hash]*State),
		invalid:  make(map[crypto.Hash]error),
		txIndex:  make(map[crypto.Hash][]crypto.Hash),
		opIndex:  make(map[crypto.Address][]opRef),
		byHeight: make(map[uint64][]crypto.Hash),
	}
	e.stats.Executed++
	e.admit(genesis.Hash(), genesis, st)
	return e, nil
}

// NewView creates a replica view rooted at genesis. Views share the
// executor's blocks and states but choose tips independently — two
// views over one executor can sit on different forks. Each view also
// pins the prune horizon: nothing is pruned above
// min(view tips) − PruneDepth.
func (e *Executor) NewView() *Chain {
	gh := e.genesis.Hash()
	c := &Chain{
		exec:      e,
		have:      map[crypto.Hash]bool{gh: true},
		tip:       e.genesis,
		canonical: map[uint64]crypto.Hash{0: gh},
	}
	e.views = append(e.views, c)
	return c
}

// Params returns the network's chain configuration.
func (e *Executor) Params() Params { return e.params }

// Registry returns the contract registry.
func (e *Executor) Registry() *vm.Registry { return e.reg }

// Genesis returns the genesis block.
func (e *Executor) Genesis() *Block { return e.genesis }

// Stats returns the execution counters.
func (e *Executor) Stats() ExecStats {
	st := e.stats
	st.StatesLive = len(e.states)
	return st
}

// Block returns a valid block known to the network, from any fork.
func (e *Executor) Block(h crypto.Hash) (*Block, bool) {
	b, ok := e.blocks[h]
	return b, ok
}

// StateOf returns the ledger state after a valid block, re-deriving it
// by replay if pruning dropped it. The state is shared across every
// view — callers must treat it as read-only and branch with Child()
// before mutating.
func (e *Executor) StateOf(h crypto.Hash) (*State, bool) {
	return e.stateOf(h)
}

// stateOf serves a per-block state, replaying from the nearest
// retained ancestor state when the memoized one was pruned. The
// genesis state is never pruned, so the ancestor walk terminates. The
// re-derived endpoint is memoized again (it sits below the monotone
// prune floor and is never re-swept); intermediate replay states are
// not, so one deep read re-inserts at most one state.
func (e *Executor) stateOf(h crypto.Hash) (*State, bool) {
	if st, ok := e.states[h]; ok {
		return st, true
	}
	b, ok := e.blocks[h]
	if !ok {
		return nil, false
	}
	var path []*Block
	for cur := b; ; {
		path = append(path, cur)
		if st, ok := e.states[cur.Header.Parent]; ok {
			for i := len(path) - 1; i >= 0; i-- {
				next, err := ApplyBlock(st, e.reg, e.params, path[i])
				if err != nil {
					// Unreachable: every stored block was validated
					// once, and replay is deterministic.
					panic(fmt.Sprintf("chain: replay of valid block %s failed: %v", path[i].Hash(), err))
				}
				e.stats.Replays++
				st = next
			}
			e.states[h] = st
			return st, true
		}
		parent, ok := e.blocks[cur.Header.Parent]
		if !ok {
			return nil, false
		}
		cur = parent
	}
}

// Execute validates b against its parent and memoizes the outcome.
// The first call per block hash runs the full state transition
// (structural header checks + ApplyBlock); every later call — from any
// view — returns the cached child state or the cached rejection.
// An unknown parent is the one non-cacheable error: the parent may
// simply not have arrived yet.
func (e *Executor) Execute(b *Block) (*State, error) {
	h := b.Hash()
	if st, ok := e.states[h]; ok {
		e.stats.Hits++
		return st, nil
	}
	if err, ok := e.invalid[h]; ok {
		e.stats.Hits++
		return nil, err
	}
	if _, ok := e.blocks[h]; ok {
		// Known-valid block whose state was pruned: the verdict is
		// still memoized, only the state needs re-deriving. Count a
		// hit so Executed/Hits are identical with pruning on or off.
		e.stats.Hits++
		st, ok := e.stateOf(h)
		if !ok {
			return nil, blockErr("pruned block %s lost its ancestry", h)
		}
		return st, nil
	}
	parent, ok := e.blocks[b.Header.Parent]
	if !ok {
		return nil, blockErr("unknown parent %s", b.Header.Parent)
	}
	if err := checkLinkage(b, parent); err != nil {
		e.invalid[h] = err
		return nil, err
	}
	ps, ok := e.stateOf(b.Header.Parent)
	if !ok {
		return nil, blockErr("no state for parent %s", b.Header.Parent)
	}
	st, err := ApplyBlock(ps, e.reg, e.params, b)
	e.stats.Executed++
	if err != nil {
		e.invalid[h] = err
		return nil, err
	}
	e.admit(h, b, st)
	return st, nil
}

// CommitBuilt seeds the store with a locally built block and the state
// BuildBlock computed for it, so a miner's own block costs the network
// zero re-executions: the build pass was the execution, and every
// other replica's Execute hits the cache. The caller guarantees built
// == ApplyBlock(parent state, b) — true by construction for
// Chain.BuildBlock output sealed afterwards (Seal only grinds the
// nonce; the transaction set is fixed).
func (e *Executor) CommitBuilt(b *Block, built *State) error {
	h := b.Hash()
	if _, ok := e.states[h]; ok {
		e.stats.Hits++
		return nil
	}
	if err, ok := e.invalid[h]; ok {
		e.stats.Hits++
		return err
	}
	if _, ok := e.blocks[h]; ok {
		// Already admitted, state since pruned — a cache hit; the
		// caller does not need the state back.
		e.stats.Hits++
		return nil
	}
	if _, ok := e.blocks[b.Header.Parent]; !ok {
		return blockErr("unknown parent %s", b.Header.Parent)
	}
	e.stats.Executed++
	e.admit(h, b, built)
	return nil
}

// checkLinkage verifies the parent-relative header invariants that
// ApplyBlock (which sees only the parent state, not the parent header)
// cannot. Failures are permanent properties of the block and therefore
// cacheable.
func checkLinkage(b, parent *Block) error {
	if b.Header.Height != parent.Header.Height+1 {
		return blockErr("height %d after parent height %d", b.Header.Height, parent.Header.Height)
	}
	if b.Header.Time < parent.Header.Time {
		return blockErr("time goes backwards")
	}
	return nil
}

// admit records a validated block, its state, its transactions, and
// its contract operations.
func (e *Executor) admit(h crypto.Hash, b *Block, st *State) {
	e.blocks[h] = b
	e.states[h] = st
	height := b.Header.Height
	e.byHeight[height] = append(e.byHeight[height], h)
	for _, tx := range b.Txs {
		id := tx.ID()
		e.txIndex[id] = append(e.txIndex[id], h)
		switch tx.Kind {
		case TxDeploy:
			addr := tx.ContractAddr()
			e.opIndex[addr] = append(e.opIndex[addr], opRef{block: h, height: height, call: false})
		case TxCall:
			e.opIndex[tx.Contract] = append(e.opIndex[tx.Contract], opRef{block: h, height: height, call: true})
		}
	}
}

// prune advances the state-GC sweep. The horizon is
// min(tip height over all views) − PruneDepth: a state above it may
// still be a reorg pivot for some replica; a state below it is
// reachable only through a reorg deeper than PruneDepth, which the
// replay path handles. The sweep cursor pruneFloor is monotone, so
// each height is visited once and the per-block cost is amortized
// O(1). Block bodies, headers, and verdicts are never pruned; the
// genesis state is retained as the replay base of last resort. Index
// entries (tx→block, contract ops) of swept blocks canonical in no
// view are dropped with the states.
func (e *Executor) prune() {
	d := e.params.PruneDepth
	if d <= 0 || len(e.views) == 0 {
		return
	}
	minTip := e.views[0].tip.Header.Height
	for _, v := range e.views[1:] {
		if h := v.tip.Header.Height; h < minTip {
			minTip = h
		}
	}
	if minTip <= uint64(d) {
		return
	}
	horizon := minTip - uint64(d)
	for height := e.pruneFloor; height < horizon; height++ {
		hashes, ok := e.byHeight[height]
		if !ok {
			continue
		}
		for _, bh := range hashes {
			if height > 0 {
				if _, live := e.states[bh]; live {
					delete(e.states, bh)
					e.stats.Pruned++
				}
			}
			if e.deadFork(bh, height) {
				e.dropBlockIndexes(bh)
			}
		}
	}
	e.pruneFloor = horizon
	e.retire(minTip)
}

// retire advances the history-GC sweep (Params.RetireDepth): whole
// blocks below the retire horizon are released — bodies, headers, index
// entries, and every view's have/canonical records — after the
// canonical state at the new floor is pinned as the replay base. This
// is the pruned-full-node model: anything at or above the floor is
// replayable (bodies + pinned checkpoint state), anything below it is
// gone, and a reorg attempting to cross the floor is rejected as an
// unknown parent. The genesis block is exempt (it anchors chain
// identity and deterministic reconstruction).
func (e *Executor) retire(minTip uint64) {
	rd := e.params.RetireDepth
	if rd <= 0 || minTip <= uint64(rd) {
		return
	}
	horizon := minTip - uint64(rd)
	if horizon <= e.retireFloor {
		return
	}
	// Every view must agree on the canonical block at the new floor.
	// RetireDepth exceeding every plausible reorg makes disagreement
	// pathological; if it happens anyway, retirement stalls (safe)
	// rather than guessing.
	ck, ok := e.views[0].canonical[horizon]
	if !ok {
		return
	}
	for _, v := range e.views[1:] {
		if v.canonical[horizon] != ck {
			return
		}
	}
	// Pin the checkpoint state while the bodies below it still exist:
	// stateOf replays forward from the previous checkpoint (or
	// genesis), so each block is replayed at most once more, ever.
	if _, ok := e.stateOf(ck); !ok {
		return
	}
	for height := e.retireFloor; height < horizon; height++ {
		if height == 0 {
			continue
		}
		for _, bh := range e.byHeight[height] {
			if _, live := e.states[bh]; live {
				// The previous checkpoint and memoized deep-read
				// endpoints live below the prune floor; they die here.
				delete(e.states, bh)
				e.stats.Pruned++
			}
			e.dropBlockIndexes(bh)
			delete(e.blocks, bh)
			e.stats.Retired++
			for _, v := range e.views {
				delete(v.have, bh)
			}
		}
		delete(e.byHeight, height)
		for _, v := range e.views {
			delete(v.canonical, height)
		}
	}
	e.ckpt = ck
	e.retireFloor = horizon
}

// deadFork reports whether the block is canonical in no live view —
// only then may its index entries be dropped (FindTx and contract-op
// accounting serve canonical history forever).
func (e *Executor) deadFork(bh crypto.Hash, height uint64) bool {
	for _, v := range e.views {
		if v.canonical[height] == bh {
			return false
		}
	}
	return true
}

// dropBlockIndexes removes a dead fork block's tx→block and
// contract-op index entries. The block itself stays (re-announcement
// must still hit the verdict cache).
func (e *Executor) dropBlockIndexes(bh crypto.Hash) {
	b := e.blocks[bh]
	for _, tx := range b.Txs {
		id := tx.ID()
		refs := e.txIndex[id]
		for i, r := range refs {
			if r == bh {
				refs = append(refs[:i], refs[i+1:]...)
				break
			}
		}
		if len(refs) == 0 {
			delete(e.txIndex, id)
		} else {
			e.txIndex[id] = refs
		}
		switch tx.Kind {
		case TxDeploy:
			e.dropOpRef(tx.ContractAddr(), bh)
		case TxCall:
			e.dropOpRef(tx.Contract, bh)
		}
	}
}

// dropOpRef removes one opIndex reference to block bh (order
// preserved; one per call matches one per admit append).
func (e *Executor) dropOpRef(addr crypto.Address, bh crypto.Hash) {
	refs := e.opIndex[addr]
	for i, r := range refs {
		if r.block == bh {
			refs = append(refs[:i], refs[i+1:]...)
			break
		}
	}
	if len(refs) == 0 {
		delete(e.opIndex, addr)
	} else {
		e.opIndex[addr] = refs
	}
}
