package contracts

import (
	"bytes"
	"errors"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/merkle"
	"repro/internal/vm"
)

// TypeBatchWitness is the registry name of the batch-commitment
// witness contract, and FnCommitBatch its single state transition.
const (
	TypeBatchWitness = "ac3wn.batch"
	FnCommitBatch    = "commit_batch"
)

// DecisionRecord is one AC2T decision inside a batch: the address of
// the per-AC2T witness contract SCw and the authorized direction. The
// record — not the SCw contract's own state — is what batched
// redeem/refund verification consumes.
type DecisionRecord struct {
	SCw      crypto.Address
	Decision WitnessState // RedeemAuthorized or RFauth only
}

// DecisionLeaf is the canonical merkle leaf payload for one decision:
// the SCw address bytes followed by the decision byte. Asset-chain
// verification recomputes exactly this payload for the membership
// proof, so the encoding is part of the protocol.
func DecisionLeaf(scw crypto.Address, decision WitnessState) []byte {
	out := make([]byte, len(scw)+1)
	copy(out, scw[:])
	out[len(scw)] = byte(decision)
	return out
}

// BatchLeaves maps a canonical-ordered record set to its merkle
// leaves. Shared by the contract (root verification), the coordinator
// (root construction), and participants (membership-proof derivation
// from chain state after a crash).
func BatchLeaves(records []DecisionRecord) []crypto.Hash {
	leaves := make([]crypto.Hash, len(records))
	for i, r := range records {
		leaves[i] = merkle.LeafHash(DecisionLeaf(r.SCw, r.Decision))
	}
	return leaves
}

// BatchRoot computes the commitment root over a canonical-ordered
// record set.
func BatchRoot(records []DecisionRecord) crypto.Hash {
	return merkle.Root(BatchLeaves(records))
}

// SortDecisionRecords puts records into canonical order: strictly
// ascending by SCw address bytes. The contract rejects any other
// order, making the root — and therefore every membership proof —
// independent of submission order.
func SortDecisionRecords(records []DecisionRecord) {
	for i := 1; i < len(records); i++ {
		for j := i; j > 0 && bytes.Compare(records[j].SCw[:], records[j-1].SCw[:]) < 0; j-- {
			records[j], records[j-1] = records[j-1], records[j]
		}
	}
}

// BatchCommit is the commit_batch argument: the decision set in
// canonical order, the merkle root over it, and the witness quorum's
// threshold attestation of that root. Per-AC2T SPV evidence does not
// appear on-chain — verifying it is the attesting witnesses' duty —
// which is where the bytes-per-decision win comes from.
type BatchCommit struct {
	Records     []DecisionRecord
	Root        crypto.Hash
	Attestation crypto.MultiSig
}

// EncodeBatchCommit encodes the commit_batch call argument.
func EncodeBatchCommit(bc *BatchCommit) []byte { return vm.EncodeGob(bc) }

// DecodeBatchCommit reverses EncodeBatchCommit.
func DecodeBatchCommit(b []byte) (*BatchCommit, error) {
	var bc BatchCommit
	if err := vm.DecodeGob(b, &bc); err != nil {
		return nil, fmt.Errorf("batch commit: %w", err)
	}
	return &bc, nil
}

// BatchWitnessParams are the constructor parameters of the batch
// contract: the witness set whose threshold attestation authorizes a
// commitment.
type BatchWitnessParams struct {
	Witnesses []crypto.Address
	Threshold int
}

// BatchWitnessSC is the batch-commitment coordinator: one contract per
// world that replaces per-AC2T SCw decision transactions with one
// merkle-committed transaction per decision set (the Celestia
// QGB-style data commitment shape). Its Decisions map is the decision
// ledger: a (SCw → direction) entry exists exactly when a committed
// batch contained it, and a batch carrying a record that conflicts
// with an existing entry fails whole — since miners exclude failing
// calls from blocks, on-chain inclusion of a commit_batch implies
// every record in it is conflict-free, preserving Lemma 5.1's mutual
// exclusion without per-AC2T transactions.
type BatchWitnessSC struct {
	Witnesses []crypto.Address
	Threshold int
	Decisions map[crypto.Address]WitnessState
}

// Type implements vm.Contract.
func (b *BatchWitnessSC) Type() string { return TypeBatchWitness }

// Init validates and stores the witness set.
func (b *BatchWitnessSC) Init(ctx *vm.Ctx, params []byte) error {
	var p BatchWitnessParams
	if err := vm.DecodeGob(params, &p); err != nil {
		return fmt.Errorf("batch: params: %w", err)
	}
	if len(p.Witnesses) == 0 {
		return errors.New("batch: empty witness set")
	}
	seen := make(map[crypto.Address]bool, len(p.Witnesses))
	for _, w := range p.Witnesses {
		if w.IsZero() {
			return errors.New("batch: zero witness address")
		}
		if seen[w] {
			return fmt.Errorf("batch: duplicate witness %s", w)
		}
		seen[w] = true
	}
	if p.Threshold < 1 || p.Threshold > len(p.Witnesses) {
		return fmt.Errorf("batch: threshold %d outside [1,%d]", p.Threshold, len(p.Witnesses))
	}
	b.Witnesses = append([]crypto.Address(nil), p.Witnesses...)
	b.Threshold = p.Threshold
	b.Decisions = make(map[crypto.Address]WitnessState)
	return nil
}

// Call dispatches commit_batch: verify the canonical order, the root,
// the threshold attestation, and conflict-freedom, then record every
// decision. Any failure rejects the entire batch.
func (b *BatchWitnessSC) Call(ctx *vm.Ctx, fn string, args []byte) error {
	if fn != FnCommitBatch {
		return vm.ErrUnknownFunction(TypeBatchWitness, fn)
	}
	bc, err := DecodeBatchCommit(args)
	if err != nil {
		return fmt.Errorf("batch: %w", err)
	}
	if len(bc.Records) == 0 {
		return errors.New("batch: empty decision set")
	}
	for i, r := range bc.Records {
		if r.Decision != WitnessRedeemAuthorized && r.Decision != WitnessRefundAuthorized {
			return fmt.Errorf("batch: record %d has non-decision state %s", i, r.Decision)
		}
		if i > 0 && bytes.Compare(bc.Records[i-1].SCw[:], r.SCw[:]) >= 0 {
			return fmt.Errorf("batch: records not in canonical order at %d", i)
		}
	}
	root := BatchRoot(bc.Records)
	if bc.Root != root {
		return errors.New("batch: declared root does not match decision set")
	}
	if bc.Attestation.Digest != root {
		return errors.New("batch: attestation digest is not the batch root")
	}
	if !bc.Attestation.CompleteThreshold(b.Witnesses, b.Threshold) {
		return fmt.Errorf("batch: attestation below %d-of-%d threshold", b.Threshold, len(b.Witnesses))
	}
	// Conflict check before any mutation: one conflicting record
	// invalidates the whole batch, so a committed batch never
	// contradicts the decision ledger. Re-recording the same decision
	// is idempotent — a republished batch after a reorg may overlap
	// records that already landed elsewhere.
	for _, r := range bc.Records {
		if prev, ok := b.Decisions[r.SCw]; ok && prev != r.Decision {
			return fmt.Errorf("batch: record for %s conflicts with recorded %s", r.SCw, prev)
		}
	}
	for _, r := range bc.Records {
		b.Decisions[r.SCw] = r.Decision
	}
	return nil
}

// Clone implements vm.Contract.
func (b *BatchWitnessSC) Clone() vm.Contract {
	cp := &BatchWitnessSC{
		Witnesses: append([]crypto.Address(nil), b.Witnesses...),
		Threshold: b.Threshold,
		Decisions: make(map[crypto.Address]WitnessState, len(b.Decisions)),
	}
	for k, v := range b.Decisions {
		cp.Decisions[k] = v
	}
	return cp
}
