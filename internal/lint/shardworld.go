package lint

import (
	"go/ast"
	"go/token"
	"strconv"

	"repro/internal/lint/analysis"
)

// ShardWorld enforces the one-goroutine-per-shard-world rule in the
// packages that execute inside a shard world: chain, miner, core,
// contracts, protocol. Everything in those packages runs on a single
// goroutine driven by the shard's virtual-time event loop, which is
// exactly why they need no locks and why their schedules are
// reproducible. A `go` statement, a channel, or a sync primitive in
// any of them either deadlocks the event loop or reintroduces the
// host scheduler as a schedule input — both contract breaks.
//
// Concurrency belongs one layer up (internal/engine's worker pool,
// cmd/*), where shard worlds are opaque units of work. A deliberate
// exception inside a shard-world package needs
// `//ac3:shardworld <justification>`.
var ShardWorld = &analysis.Analyzer{
	Name: "shardworld",
	Doc: "forbid goroutines, channels, and sync primitives inside shard-world packages " +
		"(chain, miner, core, contracts, protocol): one goroutine per shard world",
	Run: runShardWorld,
}

func runShardWorld(pass *analysis.Pass) (any, error) {
	if !shardWorldPkgs[pass.Pkg.Path()] {
		return nil, nil
	}
	dirs := collectDirectives(pass)
	dirs.reportMissingJustifications()
	report := func(pos token.Pos, what string) {
		if !dirs.allowed("shardworld", pos) {
			pass.Reportf(pos, "%s in shard-world package %s: one goroutine per shard world (move concurrency to the engine layer or annotate //ac3:shardworld)", what, pass.Pkg.Path())
		}
	}
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			if path == "sync" || path == "sync/atomic" {
				report(imp.Pos(), "import "+strconv.Quote(path))
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				report(n.Pos(), "go statement")
			case *ast.SelectStmt:
				report(n.Pos(), "select statement")
			case *ast.SendStmt:
				report(n.Pos(), "channel send")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					report(n.Pos(), "channel receive")
				}
			case *ast.ChanType:
				report(n.Pos(), "channel type")
			}
			return true
		})
	}
	return nil, nil
}
