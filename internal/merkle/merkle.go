// Package merkle implements the Merkle trees and inclusion proofs that
// back the paper's cross-chain evidence (Section 4.3): a validator
// contract checks that "the transaction of interest indeed took place"
// in a block by verifying a Merkle path against the block header's
// transaction root, exactly as Bitcoin SPV clients do.
package merkle

import (
	"fmt"

	"repro/internal/crypto"
)

// leafPrefix and nodePrefix domain-separate leaf and interior hashes,
// preventing the classic second-preimage attack where an interior node
// is presented as a leaf.
//
//ac3:globalstate domain-separation constants (slices only because Go has no const []byte); never written
var (
	leafPrefix = []byte{0x00}
	nodePrefix = []byte{0x01}
)

// LeafHash hashes a leaf value.
func LeafHash(data []byte) crypto.Hash {
	return crypto.Sum(leafPrefix, data)
}

// nodeHash hashes two children.
func nodeHash(l, r crypto.Hash) crypto.Hash {
	return crypto.Sum(nodePrefix, l[:], r[:])
}

// Root computes the Merkle root over the leaves. An empty leaf set has
// the zero root (an empty block). Odd levels promote the unpaired node
// (no duplication, avoiding Bitcoin's CVE-2012-2459 ambiguity).
func Root(leaves []crypto.Hash) crypto.Hash {
	if len(leaves) == 0 {
		return crypto.ZeroHash
	}
	level := append([]crypto.Hash(nil), leaves...)
	for len(level) > 1 {
		next := make([]crypto.Hash, 0, (len(level)+1)/2)
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		level = next
	}
	return level[0]
}

// RootOfData hashes raw leaf payloads and computes their root.
func RootOfData(data [][]byte) crypto.Hash {
	leaves := make([]crypto.Hash, len(data))
	for i, d := range data {
		leaves[i] = LeafHash(d)
	}
	return Root(leaves)
}

// Proof is an inclusion proof for one leaf: the sibling hashes from
// the leaf to the root, plus each sibling's side.
type Proof struct {
	Index    int           // leaf position in the original leaf list
	Leaf     crypto.Hash   // the (already leaf-hashed) value proven
	Siblings []crypto.Hash // bottom-up sibling path
	Lefts    []bool        // Lefts[i] == true when Siblings[i] is a left sibling
}

// Prove builds an inclusion proof for leaves[index].
func Prove(leaves []crypto.Hash, index int) (*Proof, error) {
	if index < 0 || index >= len(leaves) {
		return nil, fmt.Errorf("merkle: index %d out of range [0,%d)", index, len(leaves))
	}
	p := &Proof{Index: index, Leaf: leaves[index]}
	level := append([]crypto.Hash(nil), leaves...)
	pos := index
	for len(level) > 1 {
		var next []crypto.Hash
		for i := 0; i < len(level); i += 2 {
			if i+1 < len(level) {
				next = append(next, nodeHash(level[i], level[i+1]))
			} else {
				next = append(next, level[i])
			}
		}
		if sib := pos ^ 1; sib < len(level) {
			p.Siblings = append(p.Siblings, level[sib])
			p.Lefts = append(p.Lefts, sib < pos)
		}
		pos /= 2
		level = next
	}
	return p, nil
}

// Verify reports whether the proof links its leaf to root. Leaf is
// trusted as a genuine leaf hash: a caller holding untrusted data must
// use VerifyData, which recomputes LeafHash(data) and so gets the
// leaf/node domain separation that blocks interior-node-as-leaf
// second-preimage forgeries. Verify alone cannot distinguish a leaf
// from an interior node.
func (p *Proof) Verify(root crypto.Hash) bool {
	if p == nil || len(p.Siblings) != len(p.Lefts) {
		return false
	}
	h := p.Leaf
	for i, sib := range p.Siblings {
		if p.Lefts[i] {
			h = nodeHash(sib, h)
		} else {
			h = nodeHash(h, sib)
		}
	}
	return h == root
}

// VerifyData reports whether the proof proves the raw payload data
// under root.
func (p *Proof) VerifyData(root crypto.Hash, data []byte) bool {
	if p == nil || p.Leaf != LeafHash(data) {
		return false
	}
	return p.Verify(root)
}

// Clone deep-copies the proof (evidence is embedded in transactions
// and must not alias caller state).
func (p *Proof) Clone() *Proof {
	if p == nil {
		return nil
	}
	return &Proof{
		Index:    p.Index,
		Leaf:     p.Leaf,
		Siblings: append([]crypto.Hash(nil), p.Siblings...),
		Lefts:    append([]bool(nil), p.Lefts...),
	}
}
