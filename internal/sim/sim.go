// Package sim provides a deterministic discrete-event simulation (DES)
// engine used by every other package in this repository.
//
// All blockchain networks, miners, participants, and adversaries are
// actors that schedule callbacks on a single virtual clock. The event
// loop is strictly sequential and ordered by (time, sequence number),
// so a run is a pure function of its configuration and RNG seed: there
// is no wall-clock dependence and no data race by construction.
//
// Time is modeled in virtual milliseconds (an int64). One "Δ" in the
// paper's analysis — enough time to publish a smart contract and have
// the change publicly recognized — is a measured quantity on top of
// this clock, not a constant baked in here.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a virtual timestamp in milliseconds since the start of the
// simulation.
type Time = int64

// Millisecond, Second, Minute and Hour are convenient duration units
// for the virtual clock.
const (
	Millisecond Time = 1
	Second      Time = 1000 * Millisecond
	Minute      Time = 60 * Second
	Hour        Time = 60 * Minute
)

// event is a scheduled callback.
type event struct {
	at  Time
	seq uint64 // tie-break: FIFO among events at the same instant
	fn  func()
}

// eventHeap is a min-heap ordered by (at, seq).
type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Sim is a deterministic discrete-event simulator. The zero value is
// not usable; construct with New.
type Sim struct {
	now     Time
	seq     uint64
	pending eventHeap
	rng     *RNG
	stopped bool

	// Executed counts events dispatched so far; useful as a progress
	// and runaway guard in tests.
	Executed uint64

	// MaxEvents aborts the run (via panic) when exceeded, guarding
	// against accidentally unbounded simulations. Zero means no limit.
	MaxEvents uint64
}

// New returns a simulator whose random source is seeded with seed.
// Identical seeds and identical scheduling sequences produce identical
// runs.
func New(seed uint64) *Sim {
	return &Sim{rng: NewRNG(seed)}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// Reset returns the simulator to a pristine state: time zero, empty
// event queue, counters cleared, random source re-seeded with seed. A
// Reset simulator is indistinguishable from New(seed), so a harness
// executing many independent worlds back to back (the engine's shard
// workers, for example) can reuse one Sim value instead of
// reallocating per world.
func (s *Sim) Reset(seed uint64) {
	s.now = 0
	s.seq = 0
	s.pending = nil
	s.stopped = false
	s.Executed = 0
	s.MaxEvents = 0
	s.rng = NewRNG(seed)
}

// RNG returns the simulator's deterministic random source.
func (s *Sim) RNG() *RNG { return s.rng }

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past (t < Now) panics: it would make the clock non-monotonic.
func (s *Sim) At(t Time, fn func()) {
	if fn == nil {
		panic("sim: At with nil fn")
	}
	if t < s.now {
		panic(fmt.Sprintf("sim: scheduling in the past (t=%d, now=%d)", t, s.now))
	}
	s.seq++
	heap.Push(&s.pending, &event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d milliseconds from now. Negative d panics.
func (s *Sim) After(d Time, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: After with negative delay %d", d))
	}
	s.At(s.now+d, fn)
}

// Stop makes the event loop return after the currently executing event
// completes. Pending events remain queued and a later Run resumes them.
func (s *Sim) Stop() { s.stopped = true }

// Run dispatches events in (time, seq) order until no events remain or
// Stop is called.
func (s *Sim) Run() {
	s.stopped = false
	for len(s.pending) > 0 && !s.stopped {
		s.step()
	}
}

// RunUntil dispatches events with at <= deadline, then sets the clock
// to deadline if it has not advanced that far. Events scheduled beyond
// the deadline remain pending.
func (s *Sim) RunUntil(deadline Time) {
	s.stopped = false
	for len(s.pending) > 0 && !s.stopped && s.pending[0].at <= deadline {
		s.step()
	}
	if !s.stopped && s.now < deadline {
		s.now = deadline
	}
}

// RunUntilDone dispatches events until done reports true (checked
// every checkEvery of virtual time) or the virtual clock reaches
// deadline, and reports whether done held. This is the
// run-to-quiescence primitive for worlds whose actors never go idle
// on their own (miners keep mining forever): the caller supplies the
// quiescence condition — "all transactions graded", "network
// converged" — instead of waiting for an empty event queue.
func (s *Sim) RunUntilDone(done func() bool, checkEvery Time, deadline Time) bool {
	if done() {
		return true
	}
	if checkEvery <= 0 {
		checkEvery = Second
	}
	finished := false
	p := s.Poll(checkEvery, func() bool {
		if done() {
			finished = true
			s.Stop()
			return true
		}
		return false
	})
	s.RunUntil(deadline)
	p.Cancel()
	if !finished {
		finished = done()
	}
	return finished
}

// step executes the earliest pending event.
func (s *Sim) step() {
	e := heap.Pop(&s.pending).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	s.Executed++
	if s.MaxEvents > 0 && s.Executed > s.MaxEvents {
		panic(fmt.Sprintf("sim: exceeded MaxEvents=%d at virtual time %d", s.MaxEvents, s.now))
	}
	e.fn()
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return len(s.pending) }

// Poller repeatedly runs a condition until it reports done. It is the
// DES equivalent of a client library polling a blockchain node. Since
// the notification bus (Signal) became the primary wakeup mechanism,
// pollers survive mainly as fallback timers — resubmit loops and
// experiment-harness quiescence checks — not as the reconciler
// driver.
type Poller struct {
	sim      *Sim
	every    Time
	fn       func() bool
	canceled bool
}

// Poll schedules fn to run every interval until fn returns true or the
// returned Poller is canceled. The first call happens after one
// interval. Poll panics if interval <= 0.
func (s *Sim) Poll(interval Time, fn func() bool) *Poller {
	if interval <= 0 {
		panic("sim: Poll with non-positive interval")
	}
	p := &Poller{sim: s, every: interval, fn: fn}
	p.arm()
	return p
}

func (p *Poller) arm() {
	p.sim.After(p.every, func() {
		if p.canceled {
			return
		}
		if p.fn() {
			p.canceled = true // completed: a later Cancel is a no-op
			return
		}
		p.arm()
	})
}

// Cancel stops future invocations of the poller's condition. It is
// idempotent: canceling twice, or canceling a poller whose condition
// already completed, is a harmless no-op — recovery paths may blindly
// re-cancel whatever handles they hold.
func (p *Poller) Cancel() { p.canceled = true }

// Active reports whether the poller may still fire (not canceled and
// not completed).
func (p *Poller) Active() bool { return !p.canceled }
