package bench

import (
	"strings"
	"testing"
)

// The experiment drivers are exercised end to end: each must run its
// real protocol workloads and hold its sanity assertions (OK). These
// are the same entry points cmd/ac3bench and the root benchmarks use.

func TestFig8(t *testing.T) {
	r := Fig8(42)
	if !r.OK {
		t.Fatalf("fig8 failed:\n%s", r)
	}
	if !strings.Contains(r.Output, "SC5") || !strings.Contains(r.Output, "Δ") {
		t.Fatalf("fig8 output incomplete:\n%s", r.Output)
	}
}

func TestFig9(t *testing.T) {
	r := Fig9(42)
	if !r.OK {
		t.Fatalf("fig9 failed:\n%s", r)
	}
	if !strings.Contains(r.Output, "PARALLEL") {
		t.Fatalf("fig9 output incomplete:\n%s", r.Output)
	}
}

func TestFig10SmallSweep(t *testing.T) {
	r := Fig10(42, 5)
	if !r.OK {
		t.Fatalf("fig10 failed:\n%s", r)
	}
	if !strings.Contains(r.Output, "Herlihy measured") || !strings.Contains(r.Output, "AC3WN measured") {
		t.Fatalf("fig10 output incomplete:\n%s", r.Output)
	}
}

func TestCost(t *testing.T) {
	r := Cost(42)
	if !r.OK {
		t.Fatalf("cost failed:\n%s", r)
	}
	for _, want := range []string{"3d+3c", "1/2 = 0.5", "measured", "analytic"} {
		if !strings.Contains(r.Output, want) {
			t.Fatalf("cost output missing %q:\n%s", want, r.Output)
		}
	}
}

func TestWitnessChoice(t *testing.T) {
	r := WitnessChoice(42)
	if !r.OK {
		t.Fatalf("witness failed:\n%s", r)
	}
	if !strings.Contains(r.Output, "21") { // the paper's d > 20 example
		t.Fatalf("witness output missing the paper example:\n%s", r.Output)
	}
}

func TestTable1(t *testing.T) {
	r := Table1(42)
	if !r.OK {
		t.Fatalf("table1 failed:\n%s", r)
	}
	for _, want := range []string{"Bitcoin", "Ethereum", "Litecoin", "Bitcoin Cash", "min("} {
		if !strings.Contains(r.Output, want) {
			t.Fatalf("table1 output missing %q:\n%s", want, r.Output)
		}
	}
}

func TestAtomicityQuick(t *testing.T) {
	r := Atomicity(42, 2)
	if !r.OK {
		t.Fatalf("atomicity failed:\n%s", r)
	}
	if !strings.Contains(r.Output, "VIOLATIONS") {
		t.Fatalf("atomicity output incomplete:\n%s", r.Output)
	}
}

func TestComplex(t *testing.T) {
	r := Complex(42)
	if !r.OK {
		t.Fatalf("complex failed:\n%s", r)
	}
	if !strings.Contains(r.Output, "committed atomically") {
		t.Fatalf("complex output incomplete:\n%s", r.Output)
	}
}

func TestScale(t *testing.T) {
	r := Scale(42)
	if !r.OK {
		t.Fatalf("scale failed:\n%s", r)
	}
	if !strings.Contains(r.Output, "AC2T/hour") {
		t.Fatalf("scale output incomplete:\n%s", r.Output)
	}
}

func TestEngineLoad(t *testing.T) {
	r := EngineLoad(42)
	if !r.OK {
		t.Fatalf("engine load failed:\n%s", r)
	}
	for _, want := range []string{"shards", "violations", "throughput", "batching", "witness txs/commit"} {
		if !strings.Contains(r.Output, want) {
			t.Fatalf("engine output missing %q:\n%s", want, r.Output)
		}
	}
}
