// Command ac3lint machine-checks the repository's determinism
// contract (docs/architecture/ADR-009-determinism-lint.md): a
// single-binary, multi-analyzer checker in the spirit of
// golang.org/x/tools' multichecker, built on the self-contained
// framework in internal/lint.
//
// Usage:
//
//	ac3lint [packages]     # defaults to ./...
//	ac3lint -help          # list analyzers
//
// Exit status: 0 clean, 1 findings, 2 load/usage error. Findings
// print one per line as file:line:col: analyzer: message. A
// judgment-call exception is suppressed at the site with an
// `//ac3:<analyzer> <justification>` annotation; the justification is
// mandatory.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// analyzers is the registered suite. It must stay in lockstep with
// lint.All — TestDriverRegistersAllAnalyzers enforces the match — but
// is spelled out here so that the driver's contents are reviewable at
// a glance, like a multichecker main.
var analyzers = []*analysis.Analyzer{
	lint.Wallclock,
	lint.GlobalRand,
	lint.MapOrder,
	lint.ShardWorld,
	lint.GlobalState,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("ac3lint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: ac3lint [packages]\n\nAnalyzers:\n")
		for _, a := range analyzers {
			fmt.Fprintf(stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := load.Load("", patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "ac3lint: %v\n", err)
		return 2
	}
	findings := 0
	for _, pkg := range pkgs {
		fs, err := lint.RunPackage(pkg, analyzers)
		if err != nil {
			fmt.Fprintf(stderr, "ac3lint: %v\n", err)
			return 2
		}
		for _, f := range fs {
			fmt.Fprintln(stdout, f.String())
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(stderr, "ac3lint: %d finding(s)\n", findings)
		return 1
	}
	return 0
}
