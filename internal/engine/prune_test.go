package engine

import (
	"encoding/json"
	"testing"
)

// stripGC zeroes the executor-GC observability fields — the only
// aggregate fields allowed to differ between a pruning and a
// non-pruning run (they count GC work, not protocol outcomes).
func stripGC(a *Aggregate) {
	a.StatesPruned, a.StatesLive, a.StateReplays, a.BlocksRetired = 0, 0, 0, 0
	for i := range a.PerShard {
		r := &a.PerShard[i]
		r.StatesPruned, r.StatesLive, r.StateReplays, r.BlocksRetired = 0, 0, 0, 0
	}
}

// TestPruningInvisibleInAggregates pins the tentpole's correctness
// contract at the engine layer: executor state pruning and history
// retirement must be invisible in every protocol outcome. The same
// seeded workload runs with GC disabled (PruneDepth -1) and at the
// engine default, and the aggregates — outcome counts, latency
// percentiles, phase attribution, per-shard results — must be
// byte-identical once the four GC work counters are zeroed.
func TestPruningInvisibleInAggregates(t *testing.T) {
	cfg := Config{Seed: 42, Shards: 4, Workload: testWorkload(24)}

	cfg.PruneDepth = -1 // disabled: every state and block retained
	full := run(t, cfg)
	cfg.PruneDepth = 0 // engine default horizon + retirement
	pruned := run(t, cfg)

	if pruned.StatesPruned == 0 {
		t.Fatal("default config pruned nothing; the comparison proves nothing")
	}
	if full.StatesPruned != 0 || full.StateReplays != 0 || full.BlocksRetired != 0 {
		t.Fatalf("disabled GC still did GC work: %d pruned, %d replays, %d retired",
			full.StatesPruned, full.StateReplays, full.BlocksRetired)
	}

	stripGC(full)
	stripGC(pruned)
	fj, err := json.Marshal(full)
	if err != nil {
		t.Fatal(err)
	}
	pj, err := json.Marshal(pruned)
	if err != nil {
		t.Fatal(err)
	}
	if string(fj) != string(pj) {
		t.Fatalf("pruning changed protocol outcomes:\n%s\n----\n%s", fj, pj)
	}
}
