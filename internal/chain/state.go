package chain

import (
	"repro/internal/crypto"
	"repro/internal/vm"
)

// flattenDepth bounds the overlay-chain length before a state is
// collapsed into a fresh base map. It trades copy cost against lookup
// cost; the ablation benchmark BenchmarkStateOverlayFlatten sweeps it.
const flattenDepth = 48

// State is the ledger state after applying some block: the UTXO set,
// deployed contract objects, and contract balances. States form a
// copy-on-write overlay chain mirroring the block tree, so two forks
// cheaply share their common prefix — the property that makes reorgs
// (and therefore Lemma 5.3's fork analysis) natural to express.
type State struct {
	parent *State
	depth  int

	// pool recycles this tree's overlay layers. Every layer of one
	// network's state tree shares the tree root's pool; see statePool.
	pool *statePool

	utxos     map[OutPoint]TxOut
	spent     map[OutPoint]bool
	contracts map[crypto.Address]vm.Contract
	balances  map[crypto.Address]vm.Amount
	hasBal    map[crypto.Address]bool

	// byOwner indexes the live outputs of *base* layers (parent == nil)
	// by owner, so wallet reads (UTXOsOwnedBy, and through it
	// SelectFunds/Balance on every client call) cost O(owned) instead
	// of O(UTXO set). The index is lazy per owner: an address is
	// indexed on its first UTXOsOwnedBy query (one scan, memoized) and
	// kept current by AddUTXO/Spend afterwards; flatten carries only
	// the queried owners forward. Most outputs are coinbase rewards of
	// miner addresses no wallet ever queries — indexing them too made
	// the index rival the UTXO set itself for memory at 100k-AC2T
	// scale. Overlay layers stay unindexed — they are small and
	// short-lived. nil means unindexed (overlay, or pre-index base).
	byOwner map[crypto.Address]map[OutPoint]struct{}
}

// statePool recycles overlay layers within one state tree. Block
// building churns through one trial overlay per candidate transaction
// (discarded on failure, absorbed and discarded on success), which at
// 100k+ AC2Ts dominates the allocation profile; recycling the five
// little maps keeps allocs-per-AC2T flat. Only provably unshared
// layers may be recycled — states admitted to an executor are shared
// across views and must never re-enter the pool.
//
// The pool is per tree (one per network's genesis base), not process-
// global: recycling used to go through a shared sync.Pool, which was
// the one piece of cross-shard-world mutable state in this package —
// exactly what the determinism contract forbids (ac3lint: shardworld,
// globalstate). A plain free list is also cheaper here, because
// everything in one tree runs on its shard world's single goroutine.
type statePool struct {
	free []*State
}

func (p *statePool) get() *State {
	if n := len(p.free) - 1; n >= 0 {
		s := p.free[n]
		p.free[n] = nil
		p.free = p.free[:n]
		return s
	}
	s := newStateMaps()
	s.pool = p
	return s
}

func (p *statePool) put(s *State) {
	p.free = append(p.free, s)
}

func newStateMaps() *State {
	return &State{
		utxos:     make(map[OutPoint]TxOut),
		spent:     make(map[OutPoint]bool),
		contracts: make(map[crypto.Address]vm.Contract),
		balances:  make(map[crypto.Address]vm.Amount),
		hasBal:    make(map[crypto.Address]bool),
	}
}

// recycle clears s and returns it to the pool. The caller asserts it
// holds the last reference (true for BuildBlock trial overlays and for
// ApplyBlock's error-path scratch child — both are invisible outside
// the call that created them).
func (s *State) recycle() {
	pool := s.pool
	s.parent = nil
	s.depth = 0
	clear(s.utxos)
	clear(s.spent)
	clear(s.contracts)
	clear(s.balances)
	clear(s.hasBal)
	s.byOwner = nil
	pool.put(s)
}

// NewState returns an empty base state rooting a fresh tree (and a
// fresh overlay pool).
func NewState() *State {
	s := newStateMaps()
	s.pool = &statePool{}
	return s
}

// Child returns a fresh overlay on top of s. When the overlay chain
// grows past flattenDepth the child is a flattened deep copy instead,
// bounding lookup cost.
func (s *State) Child() *State {
	if s.depth >= flattenDepth {
		return s.flatten()
	}
	return s.overlay()
}

// overlay returns a direct child layer unconditionally — no flatten
// check. Block building uses it for per-transaction trial layers,
// which are either discarded (the transaction failed) or folded back
// into s with absorb, so they must never turn into deep copies. The
// layer comes from statePool; recycle() returns it.
func (s *State) overlay() *State {
	c := s.pool.get()
	c.parent = s
	c.depth = s.depth + 1
	return c
}

// absorb folds a direct child overlay's deltas into s. t must have
// been created by s.overlay() and becomes invalid afterwards. Within
// one transaction an outpoint lands in at most one of t's utxo/spent
// maps, so the fold order is immaterial.
func (s *State) absorb(t *State) {
	for op := range t.spent {
		s.Spend(op)
	}
	for op, o := range t.utxos {
		s.AddUTXO(op, o)
	}
	for a, c := range t.contracts {
		s.contracts[a] = c
	}
	for a, v := range t.balances {
		s.SetBalance(a, v)
	}
}

// flatten collapses the overlay chain into a single base state. The
// flattened base stays in s's tree: it inherits the pool rather than
// rooting a new one.
func (s *State) flatten() *State {
	out := newStateMaps()
	out.pool = s.pool
	// Walk from the base up so newer overlays overwrite older entries.
	var stack []*State
	for cur := s; cur != nil; cur = cur.parent {
		stack = append(stack, cur)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		layer := stack[i]
		for op, o := range layer.utxos {
			out.utxos[op] = o
			delete(out.spent, op)
		}
		for op := range layer.spent {
			delete(out.utxos, op)
			out.spent[op] = true
		}
		for a, c := range layer.contracts {
			// Share the object, don't clone: contract objects are
			// immutable once written to a layer (every mutation path
			// goes through ContractForWrite's copy-on-write clone), so
			// bases may alias them. Cloning here duplicated the whole
			// contract table on every flatten — at 100k-AC2T scale the
			// dominant churn in both bytes and time.
			out.contracts[a] = c
		}
		for a, b := range layer.balances {
			out.balances[a] = b
			out.hasBal[a] = true
		}
	}
	// The flattened map needs no tombstones of its own.
	out.spent = make(map[OutPoint]bool)
	// New base layer: re-index only the owners wallet reads have
	// actually queried on the old base (the lazy-index hot set), not
	// every address that ever received a coinbase. AddUTXO/Spend keep
	// the carried entries current through later in-place mutation
	// (block builds and absorb operate on the layer that owns the
	// entry); a dropped owner is simply re-scanned on its next query.
	out.byOwner = make(map[crypto.Address]map[OutPoint]struct{})
	var hot map[crypto.Address]map[OutPoint]struct{}
	for cur := s; cur != nil; cur = cur.parent {
		if cur.parent == nil {
			hot = cur.byOwner
		}
	}
	if len(hot) > 0 {
		for op, o := range out.utxos {
			if _, queried := hot[o.Owner]; queried {
				out.indexOwned(o.Owner, op)
			}
		}
	}
	return out
}

func (s *State) indexOwned(owner crypto.Address, op OutPoint) {
	m := s.byOwner[owner]
	if m == nil {
		m = make(map[OutPoint]struct{})
		s.byOwner[owner] = m
	}
	m[op] = struct{}{}
}

// UTXO looks up an unspent output.
func (s *State) UTXO(op OutPoint) (TxOut, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.spent[op] {
			return TxOut{}, false
		}
		if o, ok := cur.utxos[op]; ok {
			return o, true
		}
	}
	return TxOut{}, false
}

// AddUTXO records a new unspent output. Only owners already present
// in the lazy index are maintained — an unqueried owner's entry is
// built on its first UTXOsOwnedBy call instead.
func (s *State) AddUTXO(op OutPoint, out TxOut) {
	delete(s.spent, op)
	s.utxos[op] = out
	if m := s.byOwner[out.Owner]; m != nil {
		m[op] = struct{}{}
	}
}

// Spend marks an output spent. The caller must have checked existence.
func (s *State) Spend(op OutPoint) {
	if s.byOwner != nil {
		if o, ok := s.utxos[op]; ok {
			delete(s.byOwner[o.Owner], op)
		}
	}
	delete(s.utxos, op)
	s.spent[op] = true
}

// Contract returns the live contract object at addr for *reading*.
// Callers must not mutate the result; use ContractForWrite inside
// block application.
func (s *State) Contract(addr crypto.Address) (vm.Contract, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if c, ok := cur.contracts[addr]; ok {
			return c, true
		}
	}
	return nil, false
}

// ContractForWrite returns a contract clone owned by this overlay
// layer, creating the copy-on-write entry on first access.
func (s *State) ContractForWrite(addr crypto.Address) (vm.Contract, bool) {
	if c, ok := s.contracts[addr]; ok {
		return c, true
	}
	c, ok := s.Contract(addr)
	if !ok {
		return nil, false
	}
	cl := c.Clone()
	s.contracts[addr] = cl
	return cl, true
}

// PutContract stores a freshly deployed contract.
func (s *State) PutContract(addr crypto.Address, c vm.Contract) {
	s.contracts[addr] = c
}

// Balance returns a contract's locked asset balance.
func (s *State) Balance(addr crypto.Address) vm.Amount {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.hasBal[addr] {
			return cur.balances[addr]
		}
	}
	return 0
}

// SetBalance records a contract balance in this overlay layer.
func (s *State) SetBalance(addr crypto.Address, v vm.Amount) {
	s.balances[addr] = v
	s.hasBal[addr] = true
}

// UTXOsOwnedBy collects the outputs owned by addr. Overlay layers are
// scanned linearly (they are small and bounded by flattenDepth); an
// indexed base layer is read through byOwner, so wallet reads stay
// O(owned + overlay deltas) rather than O(UTXO set). It is a
// test/client convenience (wallets), not a consensus operation.
func (s *State) UTXOsOwnedBy(addr crypto.Address) map[OutPoint]TxOut {
	out := make(map[OutPoint]TxOut)
	seen := make(map[OutPoint]bool)
	for cur := s; cur != nil; cur = cur.parent {
		if cur.parent == nil && cur.byOwner != nil {
			// Indexed base: exactly the live base outputs of addr,
			// masked by the overlay deltas already folded into seen.
			m, ok := cur.byOwner[addr]
			if !ok {
				// First query for addr on this base: build its slice
				// of the lazy index with one scan and memoize it
				// (including the empty result). Worlds drive a chain
				// from a single goroutine, so read-path memoization
				// on the shared base is safe.
				m = make(map[OutPoint]struct{})
				for op, o := range cur.utxos {
					if o.Owner == addr {
						m[op] = struct{}{}
					}
				}
				cur.byOwner[addr] = m
			}
			for op := range m {
				if seen[op] {
					continue
				}
				seen[op] = true
				out[op] = cur.utxos[op]
			}
			break
		}
		for op := range cur.spent {
			if !seen[op] {
				seen[op] = true
			}
		}
		for op, o := range cur.utxos {
			if seen[op] {
				continue
			}
			seen[op] = true
			if o.Owner == addr {
				out[op] = o
			}
		}
	}
	return out
}

// TotalValue sums every unspent output plus every contract balance —
// the conserved quantity the property tests check (minting via
// genesis/coinbase is accounted by the caller).
func (s *State) TotalValue() vm.Amount {
	var total vm.Amount
	seen := make(map[OutPoint]bool)
	seenBal := make(map[crypto.Address]bool)
	for cur := s; cur != nil; cur = cur.parent {
		for op := range cur.spent {
			seen[op] = true
		}
		for op, o := range cur.utxos {
			if seen[op] {
				continue
			}
			seen[op] = true
			total += o.Value
		}
		for a := range cur.balances {
			if seenBal[a] {
				continue
			}
			seenBal[a] = true
			total += cur.balances[a]
		}
	}
	return total
}

// OverlayDepth reports how many overlay layers sit above the base
// state (exported for the flattening ablation benchmark).
func (s *State) OverlayDepth() int { return s.depth }
