package engine

import (
	"fmt"
	"strings"

	"repro/internal/batch"
	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/p2p"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/trace"
	"repro/internal/xchain"
)

// Shard-world experiment constants. Block interval 10s at
// confirmation depth 2 gives Δ ≈ 30s of virtual time; scenario
// timings are expressed against that scale.
const (
	shardConfirmDepth = 2
	// safetyAbortAfter bounds well-behaved runs: if an AC2T has not
	// committed by then, participants push authorize_refund rather
	// than hold assets locked forever.
	safetyAbortAfter = 25 * sim.Minute
	// declineAbortAfter is the abort scenario's much earlier
	// "participant changed her mind" deadline.
	declineAbortAfter = 4 * sim.Minute
	// crashDownFor is how long the crash scenario's victim stays down
	// after the decision is pushed — far beyond any HTLC timelock
	// scale, which is the point.
	crashDownFor = 8 * sim.Minute
	// settleGrace delays grading after quiescence so depth-0 reads
	// cannot be flipped back by a late fork race.
	settleGrace = 20 * sim.Second
	// quiesceCheckEvery is the shard-level safety-net cadence of
	// RunUntilDone. Transaction progress is notification-driven (the
	// shard watches every chain's ground-truth view); this coarse
	// check only bounds the run when notifications stop coming.
	quiesceCheckEvery = sim.Minute
	// batchStableDepth is how deep a published batch commitment must be
	// buried before the shard's coordinator stops watching it for
	// reorgs. It must exceed the deepest canonical rollback the
	// adversity scenarios produce (36 observed under partition heals),
	// and stay well inside the history-retirement horizon so the depth
	// checks always see the transaction.
	batchStableDepth = 48
)

// txSpec is one generated AC2T: arrival offset, ring size, scenario.
type txSpec struct {
	arrival  sim.Time
	size     int
	scenario Scenario
}

// txState tracks one admitted AC2T through grading.
type txState struct {
	runner core.Runner
	parts  []*xchain.Participant
	// trent is the transaction's own centralized witness (AC3TW only),
	// so the crash scenario can take one AC2T's witness down without
	// blocking the rest of the stream.
	trent  *core.Trent
	graded bool
	// finishing: Settled held and the settle-grace finish is pending.
	finishing bool
	// startedAt/settledAt bound the root span: admission, and the
	// moment the engine first observed Settled() (0 if never — the
	// settle phase is then absent). Settlement is observed here, not
	// in the protocols, so the boundary means the same thing for all
	// three.
	startedAt sim.Time
	settledAt sim.Time
	// base samples the shard's world counters at admission (tracing
	// only); finish attaches the deltas to the root span.
	base worldCounters
	// deadline is the absolute grading deadline.
	deadline sim.Time
	// hook is the scenario's chain-watch (crash victims, decision
	// racers, partition triggers), evaluated on every shard activity
	// notification until it reports done.
	hook func() bool
	// cleanup tears down this transaction's adversity (lossy/geo
	// overlays) when it grades, so the world stops degrading once the
	// hostile AC2T is done.
	cleanup []func()
}

// shardExec executes one shard: an independent deterministic world
// (chains + miners + witness network seeded from the shard seed) and
// its generated transaction stream, all on a single virtual clock.
// Everything here runs on one goroutine — concurrency lives between
// shards, never inside one — so a shard is a pure function of
// (seed, workload, txCount).
type shardExec struct {
	idx   int
	seed  uint64
	wl    Workload
	prune int // executor state-GC horizon (0 = retain everything)
	col   *Collector

	s        *sim.Sim
	w        *xchain.World
	assetIDs []chain.ID
	witness  chain.ID
	// coord is the shard's witness-side batching coordinator, non-nil
	// only when the workload enables batching (BatchWindow > 0, AC3WN).
	// One coordinator serves every AC2T in the shard — that sharing is
	// the whole point of batching.
	coord *batch.Coordinator

	specs []txSpec
	parts [][]*xchain.Participant // per tx, disjoint
	txs   []txState

	// activity fires when any chain's ground-truth view changes tip;
	// it drives all in-flight quiescence checks and scenario hooks.
	activity  *sim.Signal
	actWaiter *sim.Waiter
	activeIdx []int // in-flight transaction indices, admission order

	inFlight int
	queue    []int
	res      *ShardResult
	// rec is the shard's trace recorder; nil when tracing is off (all
	// recorder methods are nil-safe, so instrumentation points pay one
	// nil check).
	rec *trace.Recorder
}

// worldCounters is a point-in-time sample of the shard's cumulative
// world counters; per-transaction deltas annotate root spans.
type worldCounters struct {
	blocksExecuted uint64
	msgsDropped    uint64
	forksObserved  int
}

// sampleCounters reads the shard's cumulative counters (tracing only).
func (e *shardExec) sampleCounters() worldCounters {
	var c worldCounters
	for _, id := range e.w.Chains() {
		net := e.w.Net(id)
		c.blocksExecuted += net.Executor().Stats().Executed
		c.msgsDropped += net.MsgsDropped()
		c.forksObserved += net.TotalReorgs()
	}
	return c
}

// runShard executes txCount transactions on a world derived from
// seed, reusing (and Reset-ing) the provided simulator.
func runShard(s *sim.Sim, idx int, seed uint64, wl Workload, txCount, prune int, col *Collector, rec *trace.Recorder) (*ShardResult, error) {
	s.Reset(seed)
	e := &shardExec{
		idx:   idx,
		seed:  seed,
		wl:    wl,
		prune: prune,
		col:   col,
		s:     s,
		txs:   make([]txState, txCount),
		res:   &ShardResult{Shard: idx, Seed: seed, Txs: txCount, ByScenario: make(map[Scenario]ScenarioStats)},
		rec:   rec,
	}
	if err := e.buildWorld(txCount); err != nil {
		return nil, err
	}
	for i := range e.specs {
		i := i
		s.At(e.specs[i].arrival, func() { e.admit(i) })
	}
	// Hard virtual-time cap: even if every transaction runs to its
	// timeout in maximally backpressured batches, the stream fits.
	// Quiescence is signaled (finish stops the sim when the last
	// transaction grades); the coarse RunUntilDone check is only the
	// safety net for a world that stops producing notifications.
	last := e.specs[len(e.specs)-1].arrival
	batches := sim.Time((txCount+wl.MaxInFlight-1)/wl.MaxInFlight + 2)
	deadline := last + batches*(wl.TxTimeout+settleGrace+sim.Minute)
	done := func() bool { return e.res.Graded == txCount }
	if !s.RunUntilDone(done, quiesceCheckEvery, deadline) {
		return nil, fmt.Errorf("engine: shard %d did not quiesce by virtual deadline (graded %d/%d)",
			idx, e.res.Graded, txCount)
	}
	e.res.MakespanVirtualMs = int64(s.Now())
	e.res.Events = s.Executed
	if e.coord != nil {
		// Batch accounting is read once at shard end (the counters are
		// plain ints mutated on the shard's single goroutine), then the
		// coordinator retires with the rest of the world.
		e.res.BatchesPublished = e.coord.BatchesPublished
		e.res.BatchDecisions = e.coord.BatchDecisions
		e.res.BatchRepublishes = e.coord.Republishes
		e.res.BatchBytesPublished = e.coord.BytesPublished
		e.coord.Close()
		e.coord = nil
	}
	// Execution accounting: every network's shared executor ran each
	// block's state transition once; replica adoptions hit the cache.
	for _, id := range e.w.Chains() {
		net := e.w.Net(id)
		st := net.Executor().Stats()
		e.res.BlocksExecuted += st.Executed
		e.res.BlockExecHits += st.Hits
		e.res.BlocksMined += net.BlocksMined()
		// State-GC accounting: how much ledger state the prune horizon
		// reclaimed, what is still held, and what deep reads replayed.
		e.res.StatesPruned += st.Pruned
		e.res.StatesLive += st.StatesLive
		e.res.StateReplays += st.Replays
		e.res.BlocksRetired += st.Retired
		// Adversity accounting: how hard the network fought back.
		e.res.ForksObserved += net.TotalReorgs()
		if d := net.MaxReorgDepth(); d > e.res.MaxReorgDepth {
			e.res.MaxReorgDepth = d
		}
		e.res.MsgsDropped += net.MsgsDropped()
		// One summary span per chain: the whole shard makespan on its
		// own track, annotated with the chain's lifetime counters.
		e.rec.Span("chain:"+string(id), "chain "+string(id), 0, int64(s.Now()), -1,
			trace.Attr{K: "blocks_mined", V: int64(net.BlocksMined())},
			trace.Attr{K: "blocks_executed", V: int64(st.Executed)},
			trace.Attr{K: "exec_cache_hits", V: int64(st.Hits)},
			trace.Attr{K: "forks_observed", V: int64(net.TotalReorgs())},
			trace.Attr{K: "max_reorg_depth", V: int64(net.MaxReorgDepth())},
			trace.Attr{K: "msgs_dropped", V: int64(net.MsgsDropped())})
	}
	// Retire the world: the simulator's queue still holds mining
	// timers and residual pollers whose closures pin every chain,
	// state, and client of the finished shard until the worker's next
	// Reset — or, for each worker's last shard, until the whole run
	// returns. Clearing the queue now makes a finished shard's memory
	// reclaimable while other shards are still executing.
	e.s.Reset(0)
	e.w = nil
	return e.res, nil
}

// buildWorld draws the transaction stream and assembles the shard's
// chains and participants. Workload draws come from an RNG forked off
// the shard seed, independent of the world's own entropy, so the
// stream shape does not perturb mining randomness and vice versa.
func (e *shardExec) buildWorld(txCount int) error {
	wlRNG := sim.NewRNG(e.seed ^ 0x9e3779b97f4a7c15) //ac3:globalrand derives from the shard seed; the xor constant decorrelates workload draws from world entropy
	b := xchain.NewBuilderOn(e.s)
	e.assetIDs = make([]chain.ID, e.wl.AssetChains)
	for i := range e.assetIDs {
		e.assetIDs[i] = chain.ID(fmt.Sprintf("asset-%d", i))
		b.Chain(engineChainSpec(e.assetIDs[i], e.prune))
	}
	e.witness = chain.ID("witness")
	b.Chain(engineChainSpec(e.witness, e.prune))

	e.specs = make([]txSpec, txCount)
	var at sim.Time
	for i := range e.specs {
		at += wlRNG.ExpTime(e.wl.ArrivalEvery)
		sc, downgraded := e.wl.drawScenario(wlRNG)
		e.specs[i] = txSpec{
			arrival:  at,
			size:     e.wl.drawSize(wlRNG),
			scenario: sc,
		}
		e.res.ScenariosDrawn++
		if downgraded {
			e.res.ScenariosDowngraded++
		}
	}
	// Every AC2T gets disjoint, pre-funded participants: concurrent
	// transactions on shared chains must not share identities (the
	// paper's AC2Ts need no coordination with each other, and the
	// engine preserves that).
	e.parts = make([][]*xchain.Participant, txCount)
	for i, spec := range e.specs {
		ps := make([]*xchain.Participant, spec.size)
		for j := range ps {
			ps[j] = b.Participant(fmt.Sprintf("s%d-t%d-p%d", e.idx, i, j))
			b.Fund(ps[j], e.chainOf(i, j), 200_000)
		}
		e.parts[i] = ps
	}
	w, err := b.Build()
	if err != nil {
		return fmt.Errorf("engine: shard %d world: %w", e.idx, err)
	}
	e.w = w
	if e.wl.BatchWindow > 0 && e.wl.Protocol == ProtoAC3WN {
		// One batching coordinator per shard world, its witness quorum
		// keyed off a forked seed so quorum identities perturb neither
		// workload draws nor mining randomness.
		coord, err := batch.New(w, e.witness, e.seed^0xb5297a4d3f84d5a3, batch.Config{
			Window:      e.wl.BatchWindow,
			Witnesses:   e.wl.BatchWitnesses,
			Threshold:   e.wl.BatchThreshold,
			StableDepth: batchStableDepth,
		})
		if err != nil {
			return fmt.Errorf("engine: shard %d batch coordinator: %w", e.idx, err)
		}
		e.coord = coord
	}
	// The shard's own notification feed: any tip change of any chain's
	// ground-truth view (same-instant changes coalesce into one event)
	// re-evaluates the in-flight transactions.
	e.activity = e.s.NewSignal()
	for _, id := range w.Chains() {
		w.View(id).OnTipChange(func(chain.TipEvent) { e.activity.Notify() })
	}
	return nil
}

// engineRetireDepth is the default history-GC horizon: whole blocks
// (whose bodies carry the SPV evidence blobs dominating memory at
// scale) are released this deep below every view's tip. It must exceed
// the block-count lifetime of any transaction, since live protocol
// runs read their own recent history (EnsureTx, FindCall, evidence
// assembly): at the 10s default block interval a worst-case 45-minute
// transaction timeout spans ~270 blocks; 1024 clears that with ~4×
// margin. Retired history behaves like a pruned full node's: FindTx
// misses and deep state reads fail, neither of which a live
// transaction can observe.
const engineRetireDepth = 1024

// engineChainSpec is the standard shard chain: 3 miners, 10s blocks,
// with the engine's state-GC horizon (prune 0 = retain everything,
// which also disables history retirement).
func engineChainSpec(id chain.ID, prune int) xchain.ChainSpec {
	s := xchain.DefaultChainSpec(id)
	s.Params.ConfirmDepth = shardConfirmDepth
	s.Params.PruneDepth = prune
	if prune > 0 {
		s.Params.RetireDepth = max(engineRetireDepth, 2*prune)
	}
	return s
}

// chainOf assigns edge j of transaction i to an asset chain, rotating
// by transaction index so load spreads across chains.
func (e *shardExec) chainOf(i, j int) chain.ID {
	return e.assetIDs[(i+j)%len(e.assetIDs)]
}

// admit starts transaction i or queues it when the shard is at its
// in-flight cap (backpressure).
func (e *shardExec) admit(i int) {
	if e.inFlight >= e.wl.MaxInFlight {
		e.queue = append(e.queue, i)
		return
	}
	e.start(i)
}

// start builds the graph and runner for transaction i, applies its
// scenario, and joins it to the shard's notification-driven
// quiescence watch: progress is re-checked whenever a ground-truth
// view changes tip, and the grading deadline is an explicit one-shot
// timer.
func (e *shardExec) start(i int) {
	e.inFlight++
	spec := e.specs[i]
	ps := e.parts[i]
	st := &e.txs[i]
	st.parts = ps
	st.startedAt = e.s.Now()
	if e.rec.Enabled() {
		st.base = e.sampleCounters()
	}

	chains := make([]chain.ID, spec.size)
	for j := range chains {
		chains[j] = e.chainOf(i, j)
	}
	g, err := ringGraph(e.graphStamp(i), ps, chains)
	if err != nil {
		// Generation bug — grade as stuck so the stream keeps moving.
		e.finish(i, nil)
		return
	}

	runner, err := e.newRunner(i, g, ps, spec)
	if err != nil {
		e.finish(i, nil)
		return
	}
	st.runner = runner
	st.deadline = e.s.Now() + e.wl.TxTimeout
	e.activeIdx = append(e.activeIdx, i)
	runner.Start()
	e.applyScenario(i, runner, ps, spec)
	e.s.At(st.deadline, func() { e.checkTx(i) })
	e.armActivity()
}

// armActivity keeps exactly one waiter on the shard's activity signal
// while transactions are in flight.
func (e *shardExec) armActivity() {
	if e.actWaiter != nil || len(e.activeIdx) == 0 {
		return
	}
	e.actWaiter = e.activity.Wait(e.onActivity)
}

// onActivity re-evaluates every in-flight transaction after a
// ground-truth tip change, then re-arms.
func (e *shardExec) onActivity() {
	e.actWaiter = nil
	for _, i := range append([]int(nil), e.activeIdx...) {
		e.checkTx(i)
	}
	e.armActivity()
}

// checkTx advances transaction i's lifecycle: run its scenario hook,
// schedule the settle-grace finish once the runner quiesced, or grade
// it as-is at the deadline.
func (e *shardExec) checkTx(i int) {
	st := &e.txs[i]
	if st.graded || st.finishing {
		return
	}
	if st.hook != nil && st.hook() {
		st.hook = nil
	}
	if st.runner != nil && st.runner.Settled() {
		st.finishing = true
		st.settledAt = e.s.Now()
		e.s.After(settleGrace, func() { e.finish(i, st.runner) })
		return
	}
	if e.s.Now() >= st.deadline {
		e.finish(i, st.runner)
	}
}

// graphStamp derives a unique graph timestamp for transaction i.
func (e *shardExec) graphStamp(i int) int64 {
	return int64(e.idx)<<32 | int64(i+1)
}

// newRunner constructs the protocol runner for one AC2T.
func (e *shardExec) newRunner(i int, g *graph.Graph, ps []*xchain.Participant, spec txSpec) (core.Runner, error) {
	abortAfter := safetyAbortAfter
	if spec.scenario == ScenarioAbort {
		abortAfter = declineAbortAfter
	}
	switch e.wl.Protocol {
	case ProtoAC3WN:
		cfg := core.Config{
			Graph:        g,
			Participants: ps,
			Initiator:    ps[0],
			WitnessChain: e.witness,
			WitnessDepth: shardConfirmDepth,
			AssetDepth:   shardConfirmDepth,
			AbortAfter:   abortAfter,
		}
		// Guarded assignment: a typed-nil *batch.Coordinator in the
		// DecisionSink interface would read as "batching on".
		if e.coord != nil {
			cfg.Batcher = e.coord
			cfg.BatchAddr = e.coord.Addr()
		}
		return core.New(e.w, cfg)
	case ProtoAC3TW:
		// Each AC2T trusts its own witness — the AC3TW analog of
		// AC3WN's per-transaction witness-chain choice — so a witness
		// crash scenario is contained to its own transaction.
		trent := core.NewTrent(e.w, e.seed^uint64(e.graphStamp(i))*0x9e3779b97f4a7c15, 200*sim.Millisecond)
		e.txs[i].trent = trent
		return core.NewTW(e.w, core.TWConfig{
			Graph:        g,
			Participants: ps,
			Initiator:    ps[0],
			Trent:        trent,
			ConfirmDepth: shardConfirmDepth,
			AbortAfter:   abortAfter,
		})
	case ProtoHTLC:
		return swap.New(e.w, swap.Config{
			Graph:        g,
			Participants: ps,
			Leader:       ps[0],
			// Δ: publish + confirm at depth d, plus two blocks slack.
			Delta:        sim.Time(shardConfirmDepth+1)*10*sim.Second + 20*sim.Second,
			ConfirmDepth: shardConfirmDepth,
		})
	}
	return nil, fmt.Errorf("engine: unknown protocol %q", e.wl.Protocol)
}

// applyScenario installs the per-scenario fault or adversary hooks.
// Hooks are notification-driven: they ride the shard's activity feed
// (evaluated after every ground-truth tip change) instead of their own
// pollers, and report done to detach.
func (e *shardExec) applyScenario(i int, runner core.Runner, ps []*xchain.Participant, spec txSpec) {
	st := &e.txs[i]
	victim := ps[len(ps)-1]
	switch spec.scenario {
	case ScenarioAbort:
		// The victim declines: it never deploys, so the AC2T cannot
		// gather full deployment evidence and aborts at the deadline.
		victim.Crash()
	case ScenarioCrash:
		// The Section 1 hazard, aimed at each protocol's critical
		// failure point at decision time. AC3WN and AC3TW crash a
		// participant, which recovers and resumes; for AC3TW's hazard
		// the victim is the centralized witness itself, which stays
		// down — the AC2T blocks, surfacing as stuck in the
		// aggregates. HTLC's recovered victim finds its timelocks
		// expired and loses assets (an atomicity violation).
		switch r := runner.(type) {
		case *core.Run:
			st.hook = func() bool {
				if st.graded || victim.Crashed() {
					return true
				}
				if hasEvent(r.Events(), "authorize_redeem submitted") {
					victim.Crash()
					e.s.After(crashDownFor, func() {
						if st.graded {
							return
						}
						victim.Recover()
						r.Resume(victim)
					})
					return true
				}
				// Decision went to refund instead — nothing to crash.
				return r.DecidedAt != 0
			}
		case *core.TWRun:
			trent := st.trent
			st.hook = func() bool {
				if st.graded {
					return true
				}
				if hasEvent(r.Events(), "redeem signature requested from Trent") {
					trent.Crash() // stays down: nothing can be decided
					return true
				}
				return false
			}
		case *swap.Run:
			st.hook = func() bool {
				if st.graded || victim.Crashed() {
					return true
				}
				if hasEvent(r.Events(), "redeem submitted") {
					victim.Crash()
					e.s.After(crashDownFor, func() {
						if st.graded {
							return
						}
						// Recovery resumes the reconciler, but the
						// timelocks already did the damage.
						victim.Recover()
						r.Resume(victim)
					})
					return true
				}
				return false
			}
		}
	case ScenarioPartition:
		// Split the transaction's decision chain the moment its
		// decision window opens — one miner isolated against the rest —
		// and heal PartitionFor later, before the grading deadline. The
		// minority side keeps mining its own fork, so the heal forces a
		// deep reorg and every re-announce/re-request/EnsureTx path
		// runs in anger. AC3WN must stay atomic and settle (the paper's
		// claim under exactly this hazard); AC3TW blocking and HTLC
		// expiry loss surface in the by-scenario aggregates as data.
		target := e.witness
		if e.wl.Protocol != ProtoAC3WN {
			target = e.chainOf(i, 0)
		}
		trigger := e.decisionTrigger(runner)
		st.hook = func() bool {
			if st.graded {
				return true
			}
			if !trigger() {
				return false
			}
			// The window starts at the decision trigger, not at tx
			// start, so clamp it: the heal must land with enough room
			// before the grading deadline for post-heal reconciliation
			// — otherwise the tx is graded mid-split and "non-blocking
			// under partition" was never actually under test. The
			// isolated miner rotates by transaction index so repeated
			// draws starve different replicas (and only sometimes the
			// node-0 ground-truth view).
			dur := e.wl.Adversity.PartitionFor
			if maxDur := st.deadline - e.s.Now() - 2*sim.Minute; dur > maxDur {
				dur = max(maxDur, 0)
			}
			e.w.Net(target).P2P.ScheduleIsolation(e.s.Now(), dur, i)
			return true
		}
	case ScenarioLossy:
		// Sustained gossip loss on every network the AC2T touches:
		// blocks vanish in flight, so the orphan re-request
		// (MsgGetBlock) and EnsureTx resubmission paths must carry the
		// run. The overlay lifts when the transaction grades or after
		// LossyFor, whichever comes first — Overlay.Remove is
		// idempotent, so the timer and the grading cleanup can both
		// fire.
		loss := p2p.LatencyModel{Loss: e.wl.Adversity.Loss}
		for _, id := range e.txChains(i) {
			ov := e.w.Net(id).P2P.PushOverlay(loss)
			st.cleanup = append(st.cleanup, ov.Remove)
			e.s.After(e.wl.Adversity.LossyFor, ov.Remove)
		}
	case ScenarioGeo:
		// Heterogeneous link classes: the first asset chain degrades to
		// intercontinental gossip, the second to WAN, so the chains'
		// confirmation depths advance at visibly different rates and
		// every cross-chain wait races realistically skewed clocks.
		classes := []p2p.LatencyModel{p2p.GeoLink(), p2p.WANLink()}
		for k, id := range e.assetChainsOf(i) {
			if k >= len(classes) {
				break
			}
			ov := e.w.Net(id).P2P.PushOverlay(classes[k])
			st.cleanup = append(st.cleanup, ov.Remove)
		}
	case ScenarioRace:
		// A rogue participant races the honest decision. Exactly one
		// decision can stick — buried at depth d on the witness chain
		// for AC3WN, stored at Trent for AC3TW — so the AC2T stays
		// atomic whichever way it goes.
		switch r := runner.(type) {
		case *core.Run:
			rogue := victim
			st.hook = func() bool {
				if st.graded {
					return true
				}
				scw := r.SCwAddr()
				if scw.IsZero() {
					return false
				}
				if e.coord != nil {
					// Batched mode: the rogue races the honest decision
					// inside the batching layer itself — a conflicting
					// refund submitted to the coordinator. First-wins
					// there (and whole-batch conflict rejection
					// on-chain) is what keeps the AC2T atomic.
					e.coord.Submit(scw, contracts.WitnessRefundAuthorized)
					return true
				}
				_, err := rogue.Client(e.witness).Call(scw, contracts.FnAuthorizeRefund, nil, 0)
				return err == nil
			}
		case *core.TWRun:
			trent := st.trent
			st.hook = func() bool {
				if st.graded {
					return true
				}
				if !r.Registered() {
					return false
				}
				trent.RequestRefund(r.MsID(), func(crypto.Signature, crypto.Purpose, error) {})
				return true
			}
		}
	}
}

// finish grades transaction i, retires its participants, and admits
// the next queued arrival.
func (e *shardExec) finish(i int, runner core.Runner) {
	st := &e.txs[i]
	if st.graded {
		return
	}
	st.graded = true
	st.hook = nil
	for _, fn := range st.cleanup {
		fn()
	}
	st.cleanup = nil
	for k, idx := range e.activeIdx {
		if idx == i {
			e.activeIdx = append(e.activeIdx[:k], e.activeIdx[k+1:]...)
			break
		}
	}
	sc := e.specs[i].scenario

	var committed, aborted, violated bool
	var lat sim.Time
	var deploys, calls int
	if runner != nil {
		out := runner.Grade()
		committed, aborted, violated = out.Committed(), out.Aborted(), out.AtomicityViolated()
		lat = out.Latency()
		deploys, calls = out.Deploys, out.Calls
	}
	if r, ok := runner.(*core.Run); ok {
		// Witness-efficiency accounting: the per-AC2T decision traffic
		// this transaction put on the witness chain (zero in batched
		// mode — batch traffic is counted once per shard, off the
		// coordinator).
		e.res.WitnessDecisionTxs += r.WitnessDecisionTxs
		e.res.WitnessDecisionBytes += r.WitnessDecisionBytes
	}
	e.res.record(sc, committed, aborted, violated, lat, deploys, calls)
	e.col.observe(lat, violated)
	e.observeTx(i, runner, committed, aborted, violated, deploys, calls)

	// Retire: stop the runner (every protocol implements it through
	// the shared runtime), close the transaction's witness, and retire
	// the participants — halting their clients permanently and
	// unhooking them from the broadcast bus — so lingering watches,
	// pollers and resubmit loops stop consuming simulator events AND
	// the transaction's runtime objects become garbage. On-chain state
	// is already graded; nothing observes these identities again. At
	// 100k+ AC2Ts per shard this release is what keeps shard memory
	// flat in transaction count.
	if runner != nil {
		runner.Stop()
	}
	if st.trent != nil {
		st.trent.Close()
		st.trent = nil
	}
	for _, p := range st.parts {
		p.Retire()
	}
	st.parts = nil
	st.runner = nil
	e.parts[i] = nil

	e.inFlight--
	if len(e.queue) > 0 {
		next := e.queue[0]
		e.queue = e.queue[1:]
		e.start(next)
	}
	if e.res.Graded == len(e.txs) {
		// Last transaction graded: stop the virtual clock instead of
		// waiting for the safety-net check to notice.
		e.s.Stop()
	}
}

// observeTx derives the transaction's phase spans from the protocol's
// uniform phase marks plus the engine's own settlement observation,
// folds completed phases into the shard's per-(phase, scenario)
// histograms (always), and — when tracing is on — emits the root span,
// the phase spans, and the protocol timeline as instants on the
// transaction's track.
func (e *shardExec) observeTx(i int, runner core.Runner, committed, aborted, violated bool, deploys, calls int) {
	if runner == nil {
		return
	}
	st := &e.txs[i]
	sc := e.specs[i].scenario
	marks := runner.Marks()
	at := func(p protocol.Point) (sim.Time, bool) {
		for _, m := range marks {
			if m.Point == p {
				return m.At, true
			}
		}
		return 0, false
	}
	ds, okDS := at(protocol.PointDeploySubmitted)
	dc, okDC := at(protocol.PointDeployConfirmed)
	dt, okDT := at(protocol.PointDecisionTriggered)
	dd, okDD := at(protocol.PointDecisionConfirmed)
	phases := []struct {
		name     string
		from, to sim.Time
		ok       bool
	}{
		{trace.PhaseSetup, st.startedAt, ds, okDS},
		{trace.PhaseLock, ds, dc, okDS && okDC},
		{trace.PhaseDecisionWait, dc, dt, okDC && okDT},
		{trace.PhaseDecision, dt, dd, okDT && okDD},
		{trace.PhaseSettle, dd, st.settledAt, okDD && st.settledAt != 0},
	}

	track := fmt.Sprintf("tx:%d", i)
	if e.rec.Enabled() {
		outcome := "stuck"
		switch {
		case committed:
			outcome = "committed"
		case aborted:
			outcome = "aborted"
		}
		delta := e.sampleCounters()
		var vio int64
		if violated {
			vio = 1
		}
		e.rec.Emit(trace.Record{
			Kind: trace.KindSpan, Track: track, Name: "ac2t",
			T: int64(st.startedAt), Dur: int64(e.s.Now() - st.startedAt),
			Tx: i, Scenario: string(sc), Outcome: outcome,
			Attrs: []trace.Attr{
				{K: "size", V: int64(e.specs[i].size)},
				{K: "deploys", V: int64(deploys)},
				{K: "calls", V: int64(calls)},
				{K: "violated", V: vio},
				{K: "blocks_executed", V: int64(delta.blocksExecuted - st.base.blocksExecuted)},
				{K: "msgs_dropped", V: int64(delta.msgsDropped - st.base.msgsDropped)},
				{K: "forks_observed", V: int64(delta.forksObserved - st.base.forksObserved)},
			},
		})
	}
	for _, ph := range phases {
		if !ph.ok || ph.to < ph.from {
			continue
		}
		e.res.observePhase(ph.name, sc, ph.to-ph.from)
		e.rec.Span(track, ph.name, int64(ph.from), int64(ph.to), i)
	}
	if e.rec.Enabled() {
		for _, ev := range runner.Events() {
			e.rec.Instant(track, ev.Label, int64(ev.At), i, trace.Attr{K: "edge", V: int64(ev.Edge)})
		}
	}
}

// decisionTrigger returns the per-protocol predicate for "the decision
// window is open": SCw exists on the witness chain (AC3WN), the AC2T
// is registered at Trent (AC3TW), or the secret reveal was submitted
// (HTLC). The partition scenario splits the decision chain at exactly
// this point — the moment the paper's Section 1 hazard analysis says
// network behavior decides the outcome.
func (e *shardExec) decisionTrigger(runner core.Runner) func() bool {
	switch r := runner.(type) {
	case *core.Run:
		return func() bool { return !r.SCwAddr().IsZero() }
	case *core.TWRun:
		return func() bool { return r.Registered() }
	case *swap.Run:
		return func() bool { return hasEvent(r.Events(), "redeem submitted") }
	}
	return func() bool { return true }
}

// assetChainsOf returns transaction i's distinct asset chains in edge
// order.
func (e *shardExec) assetChainsOf(i int) []chain.ID {
	var out []chain.ID
	seen := make(map[chain.ID]bool)
	for j := 0; j < e.specs[i].size; j++ {
		id := e.chainOf(i, j)
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	return out
}

// txChains returns every network transaction i gossips on: its asset
// chains, plus the witness chain when the protocol uses one.
func (e *shardExec) txChains(i int) []chain.ID {
	out := e.assetChainsOf(i)
	if e.wl.Protocol == ProtoAC3WN {
		out = append(out, e.witness)
	}
	return out
}

// hasEvent reports whether any timeline event label starts with
// prefix. All protocols share the runtime's event type, so one helper
// serves every scenario hook.
func hasEvent(events []protocol.Event, prefix string) bool {
	for _, ev := range events {
		if strings.HasPrefix(ev.Label, prefix) {
			return true
		}
	}
	return false
}

// ringGraph builds the AC2T ring over the participants' addresses.
func ringGraph(stamp int64, ps []*xchain.Participant, chains []chain.ID) (*graph.Graph, error) {
	edges := make([]graph.Edge, len(ps))
	for j := range ps {
		edges[j] = graph.Edge{
			From:  ps[j].Addr(),
			To:    ps[(j+1)%len(ps)].Addr(),
			Asset: 10_000,
			Chain: chains[j],
		}
	}
	return graph.New(stamp, edges...)
}
