package chain

import (
	"errors"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/vm"
)

// Validation errors, distinguishable by callers (miners drop
// ErrTxInvalid transactions from the mempool; invalid *blocks* are
// rejected outright).
var (
	ErrTxInvalid    = errors.New("chain: invalid transaction")
	ErrBlockInvalid = errors.New("chain: invalid block")
)

func txErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrTxInvalid, fmt.Sprintf(format, args...))
}

func blockErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBlockInvalid, fmt.Sprintf(format, args...))
}

// ApplyTx validates tx against st and, if valid, mutates st with its
// effects. st must be the overlay layer being built for the current
// block. height/time describe that block. The registry instantiates
// deployed contracts.
//
// The miner-side rule of Section 2.3 is enforced here: signatures must
// be by the owner of every input, double spends are rejected, and
// value is conserved (inputs = outputs + locked value; genesis and
// coinbase mint by construction).
func ApplyTx(st *State, reg *vm.Registry, chainID ID, height uint64, blockTime int64, tx *Tx) error {
	switch tx.Kind {
	case TxGenesis:
		if height != 0 {
			return txErr("genesis tx at height %d", height)
		}
		return applyMint(st, tx)
	case TxCoinbase:
		if height == 0 {
			return txErr("coinbase in genesis block")
		}
		if len(tx.Ins) != 0 {
			return txErr("coinbase with inputs")
		}
		return applyMint(st, tx)
	case TxTransfer:
		return applyTransfer(st, tx)
	case TxDeploy:
		return applyDeploy(st, reg, chainID, height, blockTime, tx)
	case TxCall:
		return applyCall(st, chainID, height, blockTime, tx)
	default:
		return txErr("unknown kind %v", tx.Kind)
	}
}

// applyMint credits tx.Outs without consuming inputs (genesis and
// coinbase only).
func applyMint(st *State, tx *Tx) error {
	if len(tx.Outs) == 0 {
		return txErr("mint with no outputs")
	}
	id := tx.ID()
	for i, out := range tx.Outs {
		if out.Owner.IsZero() {
			return txErr("mint output %d to zero address", i)
		}
		st.AddUTXO(OutPoint{TxID: id, Index: uint32(i)}, out)
	}
	return nil
}

// consumeInputs validates and spends tx.Ins, returning their total
// value. Every input must exist, be unspent, and be owned by the
// transaction's signer.
func consumeInputs(st *State, tx *Tx) (vm.Amount, error) {
	if len(tx.Ins) == 0 {
		return 0, nil
	}
	if !tx.VerifySig() {
		return 0, txErr("bad signature")
	}
	signer := tx.Sig.Signer()
	var total vm.Amount
	seen := make(map[OutPoint]bool, len(tx.Ins))
	for _, in := range tx.Ins {
		if seen[in.Prev] {
			return 0, txErr("duplicate input %s", in.Prev)
		}
		seen[in.Prev] = true
		out, ok := st.UTXO(in.Prev)
		if !ok {
			return 0, txErr("input %s missing or spent", in.Prev)
		}
		if out.Owner != signer {
			return 0, txErr("input %s owned by %s, signed by %s", in.Prev, out.Owner, signer)
		}
		total += out.Value
	}
	for _, in := range tx.Ins {
		st.Spend(in.Prev)
	}
	return total, nil
}

// creditOutputs adds tx.Outs as new UTXOs.
func creditOutputs(st *State, tx *Tx) (vm.Amount, error) {
	id := tx.ID()
	var total vm.Amount
	for i, out := range tx.Outs {
		if out.Owner.IsZero() {
			return 0, txErr("output %d to zero address", i)
		}
		if out.Value == 0 {
			return 0, txErr("output %d has zero value", i)
		}
		st.AddUTXO(OutPoint{TxID: id, Index: uint32(i)}, out)
		total += out.Value
	}
	return total, nil
}

func applyTransfer(st *State, tx *Tx) error {
	if len(tx.Ins) == 0 || len(tx.Outs) == 0 {
		return txErr("transfer needs inputs and outputs")
	}
	if tx.Value != 0 || tx.ContractType != "" || tx.Fn != "" {
		return txErr("transfer carries contract fields")
	}
	in, err := consumeInputs(st, tx)
	if err != nil {
		return err
	}
	out, err := creditOutputs(st, tx)
	if err != nil {
		return err
	}
	if in != out {
		return txErr("value not conserved: in=%d out=%d", in, out)
	}
	return nil
}

func applyDeploy(st *State, reg *vm.Registry, chainID ID, height uint64, blockTime int64, tx *Tx) error {
	if tx.ContractType == "" {
		return txErr("deploy without contract type")
	}
	if len(tx.Sig.Sig) == 0 {
		return txErr("unsigned deploy")
	}
	// Deployments without inputs still need a valid signature to
	// establish msg.sender (the contract's owner).
	if len(tx.Ins) == 0 && !tx.VerifySig() {
		return txErr("bad signature")
	}
	in, err := consumeInputs(st, tx)
	if err != nil {
		return err
	}
	change, err := creditOutputs(st, tx)
	if err != nil {
		return err
	}
	if in != change+tx.Value {
		return txErr("deploy value not conserved: in=%d change=%d locked=%d", in, change, tx.Value)
	}
	if tx.Value > 0 && len(tx.Ins) == 0 {
		return txErr("deploy locks value without inputs")
	}
	addr := tx.ContractAddr()
	if _, exists := st.Contract(addr); exists {
		return txErr("contract %s already deployed", addr)
	}
	c, err := reg.New(tx.ContractType)
	if err != nil {
		return txErr("deploy: %v", err)
	}
	msg := vm.Msg{Sender: tx.Sig.Signer(), Value: tx.Value}
	ctx := vm.NewCtx(string(chainID), addr, height, blockTime, msg, tx.Value)
	if err := c.Init(ctx, tx.Params); err != nil {
		return txErr("constructor of %s failed: %v", tx.ContractType, err)
	}
	if err := settlePayouts(st, ctx, tx.ID()); err != nil {
		return err
	}
	st.PutContract(addr, c)
	st.SetBalance(addr, ctx.Balance())
	return nil
}

func applyCall(st *State, chainID ID, height uint64, blockTime int64, tx *Tx) error {
	if tx.Fn == "" {
		return txErr("call without function name")
	}
	if len(tx.Sig.Sig) == 0 {
		return txErr("unsigned call")
	}
	// Calls without inputs still need a valid signature to establish
	// msg.sender.
	if len(tx.Ins) == 0 && !tx.VerifySig() {
		return txErr("bad signature")
	}
	in, err := consumeInputs(st, tx)
	if err != nil {
		return err
	}
	change, err := creditOutputs(st, tx)
	if err != nil {
		return err
	}
	if in != change+tx.Value {
		return txErr("call value not conserved: in=%d change=%d sent=%d", in, change, tx.Value)
	}
	c, ok := st.ContractForWrite(tx.Contract)
	if !ok {
		return txErr("no contract at %s", tx.Contract)
	}
	balance := st.Balance(tx.Contract) + tx.Value
	msg := vm.Msg{Sender: tx.Sig.Signer(), Value: tx.Value}
	ctx := vm.NewCtx(string(chainID), tx.Contract, height, blockTime, msg, balance)
	if err := c.Call(ctx, tx.Fn, tx.Args); err != nil {
		return txErr("call %s.%s failed: %v", tx.Contract, tx.Fn, err)
	}
	if err := settlePayouts(st, ctx, tx.ID()); err != nil {
		return err
	}
	st.SetBalance(tx.Contract, ctx.Balance())
	return nil
}

// settlePayouts materializes contract payouts as UTXOs owned by the
// recipients, indexed after the transaction's own outputs so the two
// ranges never collide.
func settlePayouts(st *State, ctx *vm.Ctx, txID crypto.Hash) error {
	base := uint32(1 << 16) // payout index space, disjoint from tx.Outs
	for i, p := range ctx.Payouts() {
		if p.Value == 0 {
			continue
		}
		st.AddUTXO(OutPoint{TxID: txID, Index: base + uint32(i)}, TxOut{Value: p.Value, Owner: p.To})
	}
	return nil
}

// ApplyBlock validates the block against the parent state and returns
// the child state. Any invalid transaction invalidates the whole
// block — which is why on-chain inclusion of a contract call implies
// the call succeeded (DESIGN.md decision 4).
func ApplyBlock(parent *State, reg *vm.Registry, params Params, b *Block) (*State, error) {
	if b.Header.ChainID != params.ID {
		return nil, blockErr("chain id %q, want %q", b.Header.ChainID, params.ID)
	}
	if !b.Header.CheckPoW() {
		return nil, blockErr("header fails proof of work")
	}
	if b.Header.Bits != uint8(params.DifficultyBits) {
		return nil, blockErr("difficulty %d, want %d", b.Header.Bits, params.DifficultyBits)
	}
	if b.Header.TxRoot != TxRoot(b.Txs) {
		return nil, blockErr("tx root mismatch")
	}
	maxTxs := params.MaxBlockTxs + 1 // + coinbase
	if len(b.Txs) > maxTxs {
		return nil, blockErr("%d txs exceed capacity %d", len(b.Txs), maxTxs)
	}
	if b.Header.Height > 0 {
		if len(b.Txs) == 0 || b.Txs[0].Kind != TxCoinbase {
			return nil, blockErr("first tx must be coinbase")
		}
		var reward vm.Amount
		for _, o := range b.Txs[0].Outs {
			reward += o.Value
		}
		if reward != params.BlockReward {
			return nil, blockErr("coinbase mints %d, want %d", reward, params.BlockReward)
		}
	}
	st := parent.Child()
	seen := make(map[crypto.Hash]bool, len(b.Txs))
	for i, tx := range b.Txs {
		if i > 0 && tx.Kind == TxCoinbase {
			st.recycle()
			return nil, blockErr("coinbase at index %d", i)
		}
		id := tx.ID()
		if seen[id] {
			st.recycle()
			return nil, blockErr("duplicate tx %s", id)
		}
		seen[id] = true
		if err := ApplyTx(st, reg, params.ID, b.Header.Height, b.Header.Time, tx); err != nil {
			// The scratch child never escaped this call; reclaim it.
			st.recycle()
			return nil, fmt.Errorf("%w: tx %d (%s): %v", ErrBlockInvalid, i, tx.Kind, err)
		}
	}
	return st, nil
}
