// Golden fixture for the globalstate analyzer. Loaded by the tests as
// "repro/internal/gstest" (in scope for the determinism contract).
package gstest

import (
	"errors"
	"fmt"
)

var ErrNotFound = errors.New("gstest: not found") // sentinel error: allowed

var errInternal = fmt.Errorf("gstest: internal %d", 7) // sentinel error: allowed

var _ fmt.Stringer = label("") // blank compile-time assertion: allowed

var registry = map[string]int{} // want `package-level var "registry" is mutable process-global state`

var counter, gauge int // want `package-level var "counter"` `package-level var "gauge"`

//ac3:globalstate fixture: read-only table, written once here and never mutated
var table = []string{"a", "b"}

type label string

func (l label) String() string { return string(l) }

func init() { // want `init function in deterministic package`
	registry["x"] = 1
}

//ac3:globalstate fixture: pins registration order deliberately
func init() {
	registry["y"] = len(table)
}
