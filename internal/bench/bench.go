// Package bench drives the reproduction of every table and figure in
// the paper's evaluation (Section 6) plus the safety and scalability
// claims of Sections 1 and 5. Each experiment builds fresh simulated
// blockchain networks, runs the real protocol implementations
// (internal/swap baselines, internal/core AC3WN/AC3TW), measures, and
// renders paper-style output. cmd/ac3bench and the repository-root
// benchmarks are thin wrappers around this package.
package bench

import (
	"fmt"
	"strings"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/xchain"
)

// Result is one experiment's printable outcome.
type Result struct {
	ID     string
	Title  string
	Output string
	// OK reports whether the experiment's sanity assertions held
	// (e.g. "AC3WN latency flat", "baseline violates atomicity").
	OK bool
}

// String renders the result.
func (r *Result) String() string {
	status := "ok"
	if !r.OK {
		status = "FAILED"
	}
	return fmt.Sprintf("== %s: %s [%s]\n%s", r.ID, r.Title, status, r.Output)
}

// Experiment parameters shared across runs. Block interval 10s,
// confirmation depth 3: Δ = (depth+1)·interval = 40s of virtual time.
const (
	blockInterval = 10 * sim.Second
	confirmDepth  = 3
	deltaNominal  = sim.Time(confirmDepth+1) * blockInterval
)

// spec builds the standard chain spec used by latency experiments.
func spec(id chain.ID) xchain.ChainSpec {
	s := xchain.DefaultChainSpec(id)
	s.Params.BlockInterval = blockInterval
	s.Params.ConfirmDepth = confirmDepth
	s.Miners = 3
	s.Latency = p2p.LatencyModel{Base: 100, Jitter: 200}
	return s
}

// ringWorld builds an n-party ring AC2T over two asset chains plus a
// witness chain: participant i pays participant i+1 on chain c(i%2).
// Rings have Diam(D) = n, making them the Figure 10 workload.
func ringWorld(seed uint64, n int) (*xchain.World, *graph.Graph, []*xchain.Participant, error) {
	b := xchain.NewBuilder(seed)
	ps := make([]*xchain.Participant, n)
	for i := range ps {
		ps[i] = b.Participant(fmt.Sprintf("p%d", i))
	}
	assetChains := []chain.ID{"asset-a", "asset-b"}
	for _, id := range assetChains {
		b.Chain(spec(id))
	}
	b.Chain(spec("witness"))
	edges := make([]graph.Edge, n)
	for i := range ps {
		id := assetChains[i%2]
		b.Fund(ps[i], id, 1_000_000)
		edges[i] = graph.Edge{From: ps[i].Addr(), To: ps[(i+1)%n].Addr(), Asset: 10_000, Chain: id}
	}
	w, err := b.Build()
	if err != nil {
		return nil, nil, nil, err
	}
	g, err := graph.New(int64(seed), edges...)
	if err != nil {
		return nil, nil, nil, err
	}
	return w, g, ps, nil
}

// runHerlihy executes the baseline on the given world/graph and
// returns the outcome (nil on failure to even start).
func runHerlihy(w *xchain.World, g *graph.Graph, ps []*xchain.Participant, deadline sim.Time) (*swap.Run, *xchain.Outcome, error) {
	r, err := swap.New(w, swap.Config{
		Graph:        g,
		Participants: ps,
		Leader:       ps[0],
		Delta:        deltaNominal + 2*blockInterval, // two blocks of slack
		ConfirmDepth: confirmDepth,
	})
	if err != nil {
		return nil, nil, err
	}
	r.Start()
	w.RunUntil(deadline)
	w.StopMining()
	w.RunFor(sim.Minute)
	return r, r.Grade(), nil
}

// runAC3WN executes the contribution on the given world/graph.
func runAC3WN(w *xchain.World, g *graph.Graph, ps []*xchain.Participant, witness chain.ID, deadline sim.Time) (*core.Run, *xchain.Outcome, error) {
	r, err := core.New(w, core.Config{
		Graph:        g,
		Participants: ps,
		Initiator:    ps[0],
		WitnessChain: witness,
		WitnessDepth: confirmDepth,
		AssetDepth:   confirmDepth,
	})
	if err != nil {
		return nil, nil, err
	}
	r.Start()
	w.RunUntil(deadline)
	w.StopMining()
	w.RunFor(sim.Minute)
	return r, r.Grade(), nil
}

// inDeltas converts a virtual duration to Δ units.
func inDeltas(d sim.Time) float64 { return float64(d) / float64(deltaNominal) }

// section joins blocks of output.
func section(parts ...string) string {
	var b strings.Builder
	for _, p := range parts {
		b.WriteString(p)
		if !strings.HasSuffix(p, "\n") {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// All runs every experiment in paper order.
func All(seed uint64) []*Result {
	return []*Result{
		Fig8(seed),
		Fig9(seed),
		Fig10(seed, 8),
		Cost(seed),
		WitnessChoice(seed),
		Table1(seed),
		Atomicity(seed, 5),
		Complex(seed),
		Scale(seed),
		EngineLoad(seed),
	}
}

// metricsFigure is re-exported for cmd wiring convenience.
type metricsFigure = metrics.Figure
