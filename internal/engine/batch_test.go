package engine

import (
	"encoding/json"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// batchedWorkload is testWorkload with witness-side decision batching
// on: a 2-minute collection window against 15s arrivals guarantees
// concurrent decisions share batches.
func batchedWorkload(txs int) Workload {
	wl := testWorkload(txs)
	wl.BatchWindow = 2 * sim.Minute
	return wl
}

// outcomesOnly strips an aggregate down to its outcome accounting:
// protocol identity, commit/abort/stuck/violation counts, and the
// scenario table. Everything timing- or cost-shaped is zeroed —
// batching legitimately moves time (decisions wait out the collection
// window) and cost (per-AC2T decision calls disappear, and a slower
// abort decision lets lagging participants finish deploying first), so
// the invisibility claim is about *outcomes*: every AC2T settles the
// same way with batching on as off.
func outcomesOnly(a *Aggregate) *Aggregate {
	c := *a
	c.LatencyMs = metrics.HistSnapshot{}
	c.LatencyP50Ms, c.LatencyP95Ms, c.LatencyP99Ms, c.LatencyP999Ms = 0, 0, 0, 0
	c.PhaseLatency = nil
	c.MakespanVirtualMs = 0
	c.ThroughputTPSVirtual = 0
	c.SimEvents, c.SimEventsPerTx = 0, 0
	c.BlocksMined, c.BlocksExecuted, c.BlockExecHits = 0, 0, 0
	c.ExecHitRate, c.BlocksExecutedPerTx = 0, 0
	c.StatesPruned, c.StatesLive, c.StateReplays, c.BlocksRetired = 0, 0, 0, 0
	c.ForksObserved, c.MaxReorgDepth, c.MsgsDropped = 0, 0, 0
	c.Deploys, c.Calls = 0, 0
	c.WitnessDecisionTxs, c.WitnessDecisionBytes = 0, 0
	c.BatchesPublished, c.BatchDecisions, c.BatchRepublishes, c.BatchBytesPublished = 0, 0, 0, 0
	c.WitnessTxsPerCommit, c.WitnessBytesPerCommit = 0, 0
	c.PerShard = nil
	c.Trace = nil
	return &c
}

// TestBatchingSmoke runs the mixed scenario matrix with batching on
// and checks the batched decision path end to end: everything settles
// with zero violations, no per-AC2T decision transactions reach the
// witness chain, every decision rides a published batch, and batches
// actually amortize (fewer commit_batch transactions than decisions).
func TestBatchingSmoke(t *testing.T) {
	agg := run(t, Config{Seed: 5, Shards: 2, Workload: batchedWorkload(16)})
	if agg.Graded != 16 {
		t.Fatalf("graded %d/16", agg.Graded)
	}
	if agg.Violations != 0 || agg.Stuck != 0 {
		t.Fatalf("batched run: %d violations, %d stuck", agg.Violations, agg.Stuck)
	}
	if agg.WitnessDecisionTxs != 0 || agg.WitnessDecisionBytes != 0 {
		t.Fatalf("batched mode posted %d per-AC2T decision txs (%d bytes) — batching leaked",
			agg.WitnessDecisionTxs, agg.WitnessDecisionBytes)
	}
	if agg.BatchesPublished == 0 || agg.BatchBytesPublished == 0 {
		t.Fatalf("no batches published: %+v", agg)
	}
	// Every AC2T contributes exactly one decision (RD or RF; the race
	// scenario's conflicting submission is dropped first-wins).
	if agg.BatchDecisions != agg.Graded {
		t.Fatalf("batches carried %d decisions, want %d (one per AC2T)",
			agg.BatchDecisions, agg.Graded)
	}
	if agg.BatchesPublished >= agg.BatchDecisions {
		t.Fatalf("%d batches for %d decisions: batching never amortized",
			agg.BatchesPublished, agg.BatchDecisions)
	}
	if agg.WitnessTxsPerCommit <= 0 || agg.WitnessTxsPerCommit >= 1 {
		t.Fatalf("witness txs per commit = %g, want in (0,1) with batching on",
			agg.WitnessTxsPerCommit)
	}
}

// TestBatchingDeterminism extends the byte-identical guarantee to the
// batched regime: the coordinator lives on the shard's virtual clock
// and seeds its quorum from the shard seed, so worker scheduling still
// cannot leak into the aggregates.
func TestBatchingDeterminism(t *testing.T) {
	cfg := Config{Seed: 42, Shards: 4, Workload: batchedWorkload(24)}
	a := run(t, cfg)
	cfg.Workers = 1
	b := run(t, cfg)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Fatalf("batched aggregates differ across worker counts:\n%s\n----\n%s", aj, bj)
	}
	if a.BatchesPublished == 0 || a.BatchDecisions == 0 {
		t.Fatalf("batch counters empty: %+v", a)
	}
}

// TestBatchingOutcomeInvisibility is the A/B contract: the same seed
// and workload settle every AC2T identically whether decisions ride
// per-AC2T SCw transactions or merkle-committed batches. Outcome
// accounting (commits/aborts/stuck/violations, per-scenario) must be
// byte-identical; the witness-traffic counters must flip from the
// per-AC2T column to the batch column.
func TestBatchingOutcomeInvisibility(t *testing.T) {
	off := run(t, Config{Seed: 42, Shards: 4, Workload: testWorkload(24)})
	on := run(t, Config{Seed: 42, Shards: 4, Workload: batchedWorkload(24)})

	oj, _ := json.Marshal(outcomesOnly(off))
	nj, _ := json.Marshal(outcomesOnly(on))
	if string(oj) != string(nj) {
		t.Fatalf("outcomes differ with batching on vs off:\n%s\n----\n%s", oj, nj)
	}
	// Traffic moved columns: unbatched pays ~one decision tx per AC2T,
	// batched pays none per-AC2T and amortizes via commit_batch.
	if off.WitnessDecisionTxs == 0 || off.BatchesPublished != 0 {
		t.Fatalf("unbatched traffic accounting wrong: %d decision txs, %d batches",
			off.WitnessDecisionTxs, off.BatchesPublished)
	}
	if on.WitnessDecisionTxs != 0 || on.BatchesPublished == 0 {
		t.Fatalf("batched traffic accounting wrong: %d decision txs, %d batches",
			on.WitnessDecisionTxs, on.BatchesPublished)
	}
	if off.WitnessTxsPerCommit < 1 {
		t.Fatalf("unbatched witness txs per commit = %g, want >= 1", off.WitnessTxsPerCommit)
	}
	if on.WitnessTxsPerCommit*2 >= off.WitnessTxsPerCommit {
		t.Fatalf("batching saved too little: %g -> %g witness txs per commit",
			off.WitnessTxsPerCommit, on.WitnessTxsPerCommit)
	}
}

// TestBatchingConfigValidation exercises the batching knobs' rejection
// paths.
func TestBatchingConfigValidation(t *testing.T) {
	var bad []Config
	wl1 := DefaultWorkload()
	wl1.BatchWindow = -sim.Second
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl1})
	wl2 := DefaultWorkload()
	wl2.Protocol = ProtoHTLC
	wl2.Mix = Mix{Commit: 1}
	wl2.BatchWindow = sim.Minute
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl2}) // batching is AC3WN-only
	wl3 := DefaultWorkload()
	wl3.BatchWindow = wl3.TxTimeout // window swallows the grading deadline
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl3})
	wl4 := DefaultWorkload()
	wl4.BatchWindow = sim.Minute
	wl4.BatchWitnesses = 3
	wl4.BatchThreshold = 4 // m > n
	bad = append(bad, Config{Seed: 1, Shards: 1, Workload: wl4})
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Fatalf("config %d accepted: %+v", i, cfg)
		}
	}
}
