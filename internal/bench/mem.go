package bench

import (
	"runtime"
	"sync/atomic"
	"time"
)

// MemReport summarizes a sampled window of process memory use. All
// numbers come from runtime.ReadMemStats and are therefore
// machine/GC-schedule dependent: they belong in wall-clock diagnostics
// (stderr, bench tables, BENCH artifacts), never in the engine's
// byte-compared JSON aggregates.
type MemReport struct {
	// PeakHeapBytes is the high-water HeapAlloc observed — live heap
	// at the worst sampled moment.
	PeakHeapBytes uint64
	// PeakSysBytes is the high-water Sys observed — total memory
	// obtained from the OS, the closest runtime-visible proxy for peak
	// RSS (the Go runtime returns memory to the OS lazily, so Sys is a
	// stable upper bound).
	PeakSysBytes uint64
	// Mallocs counts heap allocations performed during the window.
	Mallocs uint64
}

// MemSampler polls runtime.ReadMemStats on a background goroutine and
// keeps high-water marks. GC can collect between samples, so the peaks
// are lower bounds on the true instantaneous maxima — good enough to
// grade "memory flat in tx count" across 10k→100k→1M rungs.
type MemSampler struct {
	peakHeap    atomic.Uint64
	peakSys     atomic.Uint64
	baseMallocs uint64
	stop        chan struct{}
	done        chan struct{}
}

// StartMemSampler begins sampling every 50ms until Stop.
func StartMemSampler() *MemSampler {
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s := &MemSampler{
		baseMallocs: m.Mallocs,
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	s.observe(&m)
	go func() {
		defer close(s.done)
		t := time.NewTicker(50 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-s.stop:
				return
			case <-t.C:
				var m runtime.MemStats
				runtime.ReadMemStats(&m)
				s.observe(&m)
			}
		}
	}()
	return s
}

func (s *MemSampler) observe(m *runtime.MemStats) {
	if m.HeapAlloc > s.peakHeap.Load() {
		s.peakHeap.Store(m.HeapAlloc)
	}
	if m.Sys > s.peakSys.Load() {
		s.peakSys.Store(m.Sys)
	}
}

// Stop takes a final sample and returns the window's report.
func (s *MemSampler) Stop() MemReport {
	close(s.stop)
	<-s.done
	var m runtime.MemStats
	runtime.ReadMemStats(&m)
	s.observe(&m)
	return MemReport{
		PeakHeapBytes: s.peakHeap.Load(),
		PeakSysBytes:  s.peakSys.Load(),
		Mallocs:       m.Mallocs - s.baseMallocs,
	}
}
