package metrics

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 1: throughput", "Blockchain", "tps")
	tbl.AddRow("Bitcoin", 7)
	tbl.AddRow("Ethereum", 25)
	tbl.Note("source: %s", "O'Keeffe [24]")
	s := tbl.String()
	for _, want := range []string{"Table 1", "Blockchain", "Bitcoin", "25", "note: source"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: the header and first row start identically.
	lines := strings.Split(s, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
	hdrIdx := strings.Index(lines[1], "tps")
	rowIdx := strings.Index(lines[3], "7")
	if hdrIdx < 0 || rowIdx < 0 || rowIdx < hdrIdx {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestFloatTrimming(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(2.5000)
	tbl.AddRow(3.0)
	tbl.AddRow(0.1234567)
	var cells []string
	for _, line := range strings.Split(tbl.String(), "\n") {
		cells = append(cells, strings.TrimSpace(line))
	}
	joined := strings.Join(cells, "|")
	if !strings.Contains(joined, "|2.5|") || !strings.Contains(joined, "|3|") || !strings.Contains(joined, "|0.1235|") {
		t.Fatalf("float trimming wrong: %s", joined)
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Figure 10", "Diam(D)", "latency (Δ)")
	h := f.AddSeries("Herlihy")
	a := f.AddSeries("AC3WN")
	for d := 2; d <= 4; d++ {
		h.Add(float64(d), float64(2*d))
		a.Add(float64(d), 4)
	}
	s := f.String()
	for _, want := range []string{"Figure 10", "Herlihy", "AC3WN", "Diam(D)", "8", "4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("figure missing %q:\n%s", want, s)
		}
	}
}

func TestFigureHandlesMissingPoints(t *testing.T) {
	f := NewFigure("f", "x", "y")
	a := f.AddSeries("a")
	b := f.AddSeries("b")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 200) // b has no x=1 sample
	s := f.String()
	if !strings.Contains(s, "200") || !strings.Contains(s, "10") {
		t.Fatalf("missing data handling wrong:\n%s", s)
	}
}

func TestTimelineRendering(t *testing.T) {
	tl := &Timeline{Title: "Figure 9", Unit: "Δ"}
	tl.Add(0, "SCw deployed")
	tl.Add(1, "contracts deployed (parallel)")
	tl.Add(4, "all redeemed")
	s := tl.String()
	if !strings.Contains(s, "SCw deployed") || !strings.Contains(s, "t=") {
		t.Fatalf("timeline rendering wrong:\n%s", s)
	}
}

// TestConcurrentUse hammers every container from many goroutines.
// Run with -race (the CI does): the collector layer of the
// orchestration engine feeds these from concurrent shard workers, so
// any unguarded state here is a real bug, not a theoretical one.
func TestConcurrentUse(t *testing.T) {
	table := NewTable("concurrent", "a", "b")
	fig := NewFigure("fig", "x", "y")
	tl := &Timeline{Title: "tl", Unit: "s"}
	hist := NewHist(10, 100, 1000)

	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			series := fig.AddSeries(fmt.Sprintf("s%d", w))
			for i := 0; i < perWorker; i++ {
				table.AddRow(w, i)
				table.Note("worker %d note %d", w, i)
				series.Add(float64(i), float64(w))
				tl.Add(float64(i), "event")
				hist.Observe(int64(i * w))
				// Concurrent rendering must also be safe: progress
				// reporters print while shards still collect.
				if i%50 == 0 {
					_ = table.String()
					_ = fig.String()
					_ = tl.String()
					_ = hist.Snapshot()
				}
			}
		}()
	}
	wg.Wait()

	if got := len(table.Rows); got != workers*perWorker {
		t.Fatalf("table rows = %d, want %d", got, workers*perWorker)
	}
	snap := hist.Snapshot()
	if snap.Count != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", snap.Count, workers*perWorker)
	}
	var bucketTotal uint64
	for _, c := range snap.Counts {
		bucketTotal += c
	}
	if bucketTotal != snap.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, snap.Count)
	}
}

func TestHistBuckets(t *testing.T) {
	h := NewHist(10, 100)
	for _, v := range []int64{-5, 10, 11, 100, 101, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []uint64{2, 2, 2} // (-inf,10], (10,100], (100,inf)
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], c, s.Counts)
		}
	}
	if s.Min != -5 || s.Max != 5000 || s.Sum != -5+10+11+100+101+5000 {
		t.Fatalf("bad summary: %+v", s)
	}
	if s.Mean() == 0 {
		t.Fatal("mean should be nonzero")
	}
}
