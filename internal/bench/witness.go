package bench

import (
	"fmt"

	"repro/internal/attack"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// WitnessChoice reproduces Section 6.3: choosing the witness network.
// For each candidate network and asset value Va, the minimum
// confirmation depth d satisfying d > Va·dh/Ch, the resulting attack
// cost, and — validating Lemma 5.3's ε — the simulated and analytic
// success probability of a fork attack at several depths.
func WitnessChoice(seed uint64) *Result {
	ok := true

	// Part 1: minimum safe depth per (network, Va).
	t1 := metrics.NewTable("Section 6.3 — minimum confirmation depth d > Va·dh/Ch",
		"Witness network", "Ch ($/hour)", "dh (blocks/h)", "Va=$10K", "Va=$100K", "Va=$1M", "Va=$10M")
	for _, n := range attack.Crypto51Snapshot {
		row := []any{n.Name, fmt.Sprintf("%.0f", n.HourlyCostUSD), n.BlocksPerHour}
		for _, va := range []float64{10_000, 100_000, 1_000_000, 10_000_000} {
			d := attack.MinDepth(va, n)
			row = append(row, d)
			if attack.AttackCostUSD(d, n) <= va {
				ok = false // the defining inequality must hold
			}
		}
		t1.AddRow(row...)
	}
	t1.Note("paper's example: Va=$1M witnessed by Bitcoin (Ch=$300K, dh=6) ⇒ d > 20")
	// The paper's exact example.
	if d := attack.MinDepth(1_000_000, attack.Crypto51Snapshot[0]); d != 21 {
		ok = false
	}

	// Part 2: fork-attack success probability vs depth — simulated
	// double-spend race against the analytic Nakamoto bound.
	fig := metrics.NewFigure("Fork-attack success probability vs confirmation depth d", "d", "P(success)")
	rng := sim.NewRNG(seed) //ac3:globalrand bench drivers are seed roots: the experiment's seed parameter IS the run seed
	for _, q := range []float64{0.10, 0.25, 0.40} {
		simSeries := fig.AddSeries(fmt.Sprintf("simulated q=%.2f", q))
		anaSeries := fig.AddSeries(fmt.Sprintf("analytic q=%.2f", q))
		for _, d := range []int{0, 1, 2, 4, 6, 8, 12} {
			res := attack.SimulateRace(rng, q, d, 60_000, 120)
			simSeries.Add(float64(d), res.Rate)
			anaSeries.Add(float64(d), attack.SuccessProbability(q, d+1))
			if d >= 6 && q <= 0.11 && res.Rate > 0.002 {
				ok = false // ε must be negligible at the Bitcoin rule of thumb
			}
		}
	}

	summary := "ε (Lemma 5.3) vanishes with depth: at d=6 a 10% attacker wins <0.1% of races;\n" +
		"economic safety additionally requires d > Va·dh/Ch so renting 51% costs more than the assets at stake."
	return &Result{
		ID:     "witness",
		Title:  "choosing the witness network (risk vs asset value)",
		Output: section(t1.String(), fig.String(), summary),
		OK:     ok,
	}
}
