// Package repro is a from-scratch Go reproduction of "Atomic
// Commitment Across Blockchains" (Zakhary, Agrawal, El Abbadi — VLDB
// 2020): the AC3WN protocol, its AC3TW centralized-witness strawman,
// the Nolan/Herlihy HTLC baselines, and the simulated permissionless
// blockchain substrate they all run on.
//
// The public surface is organized under internal/ (this module is a
// self-contained research artifact; the examples/ and cmd/ trees show
// every intended entry point):
//
//   - internal/sim — deterministic discrete-event simulator
//   - internal/crypto, internal/merkle — hashing, signatures, ms(D),
//     commitment schemes, Merkle proofs
//   - internal/chain, internal/vm, internal/miner, internal/p2p —
//     PoW blockchains with a UTXO ledger, smart contracts, miners,
//     gossip, forks and reorgs
//   - internal/spv — cross-chain evidence (Section 4.3)
//   - internal/graph — AC2T graphs D = (V, E), Diam(D), ms(D)
//   - internal/contracts — Algorithms 1–4 as contract objects
//   - internal/protocol — the reconciler runtime every commitment
//     protocol runs on: subscriptions, announcement inbox, throttles,
//     one-shot timers, crash → Resume lifecycle
//     (docs/architecture/ADR-004-protocol-runtime.md)
//   - internal/swap — Nolan/Herlihy baselines
//   - internal/core — AC3WN and AC3TW
//   - internal/fees, internal/attack — Sections 6.2 and 6.3 analyses
//   - internal/bench — one driver per table/figure of the evaluation
//   - internal/engine — sharded concurrent orchestration: thousands
//     of AC2Ts driven in parallel across independent deterministic
//     shard worlds, with backpressure, scenario mixes and aggregated
//     results (docs/architecture/ADR-001-engine.md)
//   - internal/lint — ac3lint, the static-analysis suite that
//     machine-checks the determinism contract: no wall clocks, no
//     ambient RNGs, no map-order leaks into serialized output, no
//     concurrency inside shard-world packages, no mutable globals
//     (docs/architecture/ADR-009-determinism-lint.md)
//
// Command entry points: cmd/ac3bench regenerates the paper's tables
// and figures, cmd/ac3sim runs one configurable AC2T end to end,
// cmd/ac3calc evaluates the analytic models, cmd/ac3engine runs
// high-throughput mixed workloads on the engine and emits JSON
// aggregates, and cmd/ac3lint runs the determinism-contract analyzers
// (a blocking CI gate).
//
// The benchmarks in bench_test.go regenerate every table and figure;
// see EXPERIMENTS.md for measured-vs-paper results and DESIGN.md for
// the system inventory.
package repro
