package spv

import (
	"fmt"
	"testing"
)

// BenchmarkEvidenceVerify is the DESIGN.md ✦ ablation for in-contract
// validation: verification cost and evidence size as the header chain
// between checkpoint and tip grows (the price of an older stable-block
// anchor).
func BenchmarkEvidenceVerify(b *testing.B) {
	for _, span := range []int{6, 16, 48, 96} {
		b.Run(fmt.Sprintf("headers=%d", span), func(b *testing.B) {
			f := newBenchFixture(b, span)
			ev, err := Build(f.view, f.view.Genesis().Hash(), f.tx.ID(), 6)
			if err != nil {
				b.Fatal(err)
			}
			checkpoint := f.view.Genesis().Header
			b.ReportMetric(float64(len(ev.Encode())), "evidence-bytes")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ev.Verify(checkpoint, 6); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEvidenceBuild measures assembling evidence from a node's
// view (header collection + Merkle proof).
func BenchmarkEvidenceBuild(b *testing.B) {
	f := newBenchFixture(b, 32)
	cp := f.view.Genesis().Hash()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(f.view, cp, f.tx.ID(), 6); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvidenceDecode measures the wire codec contracts run on
// every call argument.
func BenchmarkEvidenceDecode(b *testing.B) {
	f := newBenchFixture(b, 32)
	ev, err := Build(f.view, f.view.Genesis().Hash(), f.tx.ID(), 6)
	if err != nil {
		b.Fatal(err)
	}
	enc := ev.Encode()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}

// newBenchFixture adapts the test fixture for benchmarks.
func newBenchFixture(b *testing.B, blocksAfterTx int) *fixture {
	b.Helper()
	t := &fixtureT{b: b}
	return newFixtureAny(t, blocksAfterTx)
}

// fixtureT adapts testing.B to the minimal interface newFixture
// needs.
type fixtureT struct{ b *testing.B }

func (f *fixtureT) Helper()                        { f.b.Helper() }
func (f *fixtureT) Fatal(args ...any)              { f.b.Fatal(args...) }
func (f *fixtureT) Fatalf(format string, a ...any) { f.b.Fatalf(format, a...) }
