package contracts

import (
	"errors"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/vm"
)

// CentralizedParams are the constructor parameters of Algorithm 2's
// CentralizedSC: both commitment scheme instances are the pair
// (ms(D), PK_T).
type CentralizedParams struct {
	Recipient crypto.Address
	// MSDigest identifies the multisigned AC2T graph ms(D) registered
	// at the trusted witness.
	MSDigest crypto.Hash
	// Witness is Trent's identity (derived from PK_T).
	Witness crypto.Address
}

// CentralizedSC is the AC3TW asset contract (Algorithm 2): redeem
// against Trent's signature over (ms(D), RD), refund against Trent's
// signature over (ms(D), RF). Mutual exclusion of the two secrets is
// Trent's key/value store discipline, not the contract's.
type CentralizedSC struct {
	Sender    crypto.Address
	Recipient crypto.Address
	Asset     vm.Amount
	MSDigest  crypto.Hash
	Witness   crypto.Address
	State     SwapState
}

// Type implements vm.Contract.
func (c *CentralizedSC) Type() string { return TypeCentralized }

// Init implements the constructor (Algorithm 2, lines 1–4).
func (c *CentralizedSC) Init(ctx *vm.Ctx, params []byte) error {
	var p CentralizedParams
	if err := vm.DecodeGob(params, &p); err != nil {
		return fmt.Errorf("ac3tw: params: %w", err)
	}
	if p.Recipient.IsZero() || p.Witness.IsZero() {
		return errors.New("ac3tw: zero recipient or witness")
	}
	if ctx.Msg.Value == 0 {
		return errors.New("ac3tw: no asset locked")
	}
	c.Sender = ctx.Msg.Sender
	c.Recipient = p.Recipient
	c.Asset = ctx.Msg.Value
	c.MSDigest = p.MSDigest
	c.Witness = p.Witness
	c.State = StatePublished
	return nil
}

// Call dispatches redeem/refund with an encoded witness signature as
// the commitment-scheme secret.
func (c *CentralizedSC) Call(ctx *vm.Ctx, fn string, args []byte) error {
	switch fn {
	case FnRedeem:
		if c.State != StatePublished {
			return fmt.Errorf("ac3tw: redeem in state %s", c.State)
		}
		if !c.isRedeemable(args) {
			return errors.New("ac3tw: invalid redemption signature")
		}
		if err := ctx.Pay(c.Recipient, c.Asset); err != nil {
			return err
		}
		c.State = StateRedeemed
		return nil
	case FnRefund:
		if c.State != StatePublished {
			return fmt.Errorf("ac3tw: refund in state %s", c.State)
		}
		if !c.isRefundable(args) {
			return errors.New("ac3tw: invalid refund signature")
		}
		if err := ctx.Pay(c.Sender, c.Asset); err != nil {
			return err
		}
		c.State = StateRefunded
		return nil
	default:
		return vm.ErrUnknownFunction(TypeCentralized, fn)
	}
}

// isRedeemable is Algorithm 2's IsRedeemable: verify Trent's
// signature over (ms(D), RD).
func (c *CentralizedSC) isRedeemable(secret []byte) bool {
	lock := crypto.SigLock{MSDigest: c.MSDigest, WitnessPub: c.Witness, Purpose: crypto.PurposeRedeem}
	return lock.Verify(secret)
}

// isRefundable is Algorithm 2's IsRefundable: verify Trent's
// signature over (ms(D), RF).
func (c *CentralizedSC) isRefundable(secret []byte) bool {
	lock := crypto.SigLock{MSDigest: c.MSDigest, WitnessPub: c.Witness, Purpose: crypto.PurposeRefund}
	return lock.Verify(secret)
}

// Clone implements vm.Contract.
func (c *CentralizedSC) Clone() vm.Contract { cp := *c; return &cp }
