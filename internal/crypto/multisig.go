package crypto

import (
	"fmt"
	"sort"
)

// MultiSig is the multisignature ms(D) of Equation 1: every
// participant of an AC2T signs the digest of the timestamped
// transaction graph (D, t). The paper notes the order of signatures is
// irrelevant — any complete set proves all participants agreed on D at
// t — so we model ms(D) as an order-independent signature set rather
// than the nested form, and derive an order-independent identifier.
type MultiSig struct {
	Digest Hash // digest of the canonical encoding of (D, t)
	Sigs   []Signature
}

// NewMultiSig starts a multisignature over the given graph digest.
func NewMultiSig(digest Hash) *MultiSig {
	return &MultiSig{Digest: digest}
}

// Add appends k's signature over the digest. Adding the same signer
// twice is a no-op: one signature per participant suffices.
func (m *MultiSig) Add(k *KeyPair) {
	for _, s := range m.Sigs {
		if s.Signer() == k.Addr {
			return
		}
	}
	m.Sigs = append(m.Sigs, k.Sign(m.Digest[:]))
}

// AddSignature appends an externally produced signature (for
// participants signing on remote sites). Invalid or duplicate
// signatures are rejected.
func (m *MultiSig) AddSignature(sig Signature) error {
	if !sig.Verify(m.Digest[:]) {
		return fmt.Errorf("crypto: multisig: invalid signature from %s", sig.Signer())
	}
	for _, s := range m.Sigs {
		if s.Signer() == sig.Signer() {
			return fmt.Errorf("crypto: multisig: duplicate signer %s", sig.Signer())
		}
	}
	m.Sigs = append(m.Sigs, sig.Clone())
	return nil
}

// Signers returns the sorted addresses that have signed.
func (m *MultiSig) Signers() []Address {
	out := make([]Address, 0, len(m.Sigs))
	for _, s := range m.Sigs {
		out = append(out, s.Signer())
	}
	sortAddresses(out)
	return out
}

// Complete reports whether every required participant has validly
// signed the digest. Extra signatures from non-participants do not
// make an incomplete multisignature complete, but are tolerated (the
// paper only requires that all participants agree).
func (m *MultiSig) Complete(required []Address) bool {
	have := make(map[Address]bool, len(m.Sigs))
	for _, s := range m.Sigs {
		if !s.Verify(m.Digest[:]) {
			return false
		}
		have[s.Signer()] = true
	}
	for _, r := range required {
		if !have[r] {
			return false
		}
	}
	return true
}

// CompleteThreshold reports whether at least m of the required
// participants have validly signed the digest (an m-of-n quorum, the
// primitive a 2/3+ witness set needs where Complete's all-of-n is too
// strong). Like Complete, any invalid signature poisons the whole
// multisignature, and signatures from addresses outside the required
// set never count toward the quorum. m must be positive and at most
// len(required); out-of-range thresholds are unsatisfiable by
// definition and report false.
func (m *MultiSig) CompleteThreshold(required []Address, threshold int) bool {
	if threshold <= 0 || threshold > len(required) {
		return false
	}
	have := make(map[Address]bool, len(m.Sigs))
	for _, s := range m.Sigs {
		if !s.Verify(m.Digest[:]) {
			return false
		}
		have[s.Signer()] = true
	}
	count := 0
	seen := make(map[Address]bool, len(required))
	for _, r := range required {
		if have[r] && !seen[r] {
			seen[r] = true
			count++
		}
	}
	return count >= threshold
}

// ID returns an order-independent identifier for this ms(D): the hash
// of the graph digest together with the sorted signer set. Two
// multisignatures over the same (D, t) by the same participants have
// the same ID regardless of signing order, matching the paper's remark
// that "the order of participant signatures in ms(D) is not important".
func (m *MultiSig) ID() Hash {
	signers := m.Signers()
	parts := make([][]byte, 0, len(signers)+1)
	parts = append(parts, m.Digest[:])
	for _, a := range signers {
		a := a
		parts = append(parts, a[:])
	}
	return Sum(parts...)
}

// Clone deep-copies the multisignature.
func (m *MultiSig) Clone() *MultiSig {
	out := &MultiSig{Digest: m.Digest, Sigs: make([]Signature, len(m.Sigs))}
	for i, s := range m.Sigs {
		out.Sigs[i] = s.Clone()
	}
	return out
}

func sortAddresses(as []Address) {
	sort.Slice(as, func(i, j int) bool {
		for k := range as[i] {
			if as[i][k] != as[j][k] {
				return as[i][k] < as[j][k]
			}
		}
		return false
	})
}
