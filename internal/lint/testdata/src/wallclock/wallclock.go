// Golden fixture for the wallclock analyzer. Loaded by the tests as
// "repro/internal/wallclocktest" (in scope for the determinism
// contract).
package wallclocktest

import "time"

func bad() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func badTimer() {
	tick := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	tick.Stop()
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	<-time.After(time.Second)    // want `time\.After reads the wall clock`
}

func pureConstructorsAreLegal() time.Time {
	return time.Unix(0, 0).Add(3 * time.Second)
}

func annotatedTrailing() time.Time {
	return time.Now() //ac3:wallclock fixture: trailing directive covers its own line
}

func annotatedAbove() time.Time {
	//ac3:wallclock fixture: a full-line directive also covers the next line
	return time.Now()
}

// annotatedDoc exercises the doc-comment placement: the directive in a
// declaration's doc comment covers the whole declaration.
//
//ac3:wallclock fixture: doc-comment directive covers the whole declaration
func annotatedDoc() time.Duration {
	start := time.Now()
	return time.Since(start)
}

func missingJustification() time.Time {
	return time.Now() //ac3:wallclock // want `requires a justification` `time\.Now reads the wall clock`
}
