package core

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/xchain"
)

// TWConfig configures an AC3TW run (Section 4.1).
type TWConfig struct {
	Graph        *graph.Graph
	Participants []*xchain.Participant
	Initiator    *xchain.Participant
	Trent        *Trent
	// ConfirmDepth is the depth at which contracts count as deployed
	// (both for Trent's verification and participants').
	ConfirmDepth int
	// AbortAfter (>0): the initiator requests a refund signature if
	// the AC2T has not committed by then.
	AbortAfter sim.Time
	// RetryEvery is the base backoff interval for re-asking Trent
	// after a refusal (typically "contracts not deep enough yet at my
	// view"); the retry fires after six intervals. The protocol
	// itself is fully event-driven — confirmations and announcements
	// carry it forward — this timer only covers the case where every
	// confirmation already arrived but Trent's own view lags.
	RetryEvery sim.Time
}

// TWRun is one executing AC3TW commitment.
type TWRun struct {
	w   *xchain.World
	cfg TWConfig

	start     sim.Time
	msID      crypto.Hash
	addrs     []crypto.Address
	confirmed []bool

	deployedOwn map[*xchain.Participant]bool
	requested   bool
	decision    crypto.Purpose
	decisionSig crypto.Signature
	settled     map[string]bool

	Events      []Event
	DecidedAt   sim.Time
	CompletedAt sim.Time
}

// twAnnounce is the off-chain deployment announcement.
type twAnnounce struct {
	EdgeIdx int
	Addr    crypto.Address
}

// twDecision broadcasts Trent's signature to all participants.
type twDecision struct {
	Purpose crypto.Purpose
	Sig     crypto.Signature
}

// NewTW validates and prepares an AC3TW run.
func NewTW(w *xchain.World, cfg TWConfig) (*TWRun, error) {
	if cfg.Graph == nil || len(cfg.Participants) == 0 || cfg.Initiator == nil || cfg.Trent == nil {
		return nil, fmt.Errorf("core: incomplete AC3TW config")
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = 5 * sim.Second
	}
	return &TWRun{
		w:           w,
		cfg:         cfg,
		addrs:       make([]crypto.Address, len(cfg.Graph.Edges)),
		confirmed:   make([]bool, len(cfg.Graph.Edges)),
		deployedOwn: make(map[*xchain.Participant]bool),
		settled:     make(map[string]bool),
	}, nil
}

// Start runs the protocol: register ms(D) at Trent, deploy all
// contracts concurrently, request the redemption signature, settle.
func (r *TWRun) Start() {
	r.start = r.w.Sim.Now()
	r.event(-1, "ac3tw started")
	ms := crypto.NewMultiSig(r.cfg.Graph.Digest())
	for _, p := range r.cfg.Participants {
		ms.Add(p.Key)
	}
	r.msID = ms.ID()
	for _, p := range r.cfg.Participants {
		p := p
		p.OnMessage(func(from *xchain.Participant, msg any) { r.onMessage(p, msg) })
	}
	r.cfg.Trent.Register(r.cfg.Graph, ms, func(err error) {
		if err != nil {
			r.event(-1, "registration failed: "+err.Error())
			return
		}
		r.event(-1, "ms(D) registered at Trent")
		// All participants deploy concurrently.
		for _, p := range r.cfg.Participants {
			r.deployOwnEdges(p)
		}
	})
	if r.cfg.AbortAfter > 0 {
		r.w.Sim.After(r.cfg.AbortAfter, func() {
			if r.decision == 0 && !r.cfg.Initiator.Crashed() {
				r.cfg.Trent.RequestRefund(r.msID, func(sig crypto.Signature, p crypto.Purpose, err error) {
					if err == nil {
						r.onDecision(p, sig)
					}
				})
			}
		})
	}
}

func (r *TWRun) event(edge int, label string) {
	r.Events = append(r.Events, Event{At: r.w.Sim.Now(), Label: label, Edge: edge})
}

// deployOwnEdges publishes p's outgoing CentralizedSC contracts.
func (r *TWRun) deployOwnEdges(p *xchain.Participant) {
	if r.deployedOwn[p] || p.Crashed() {
		return
	}
	r.deployedOwn[p] = true
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() {
			continue
		}
		i, e := i, e
		params := vm.EncodeGob(contracts.CentralizedParams{
			Recipient: e.To,
			MSDigest:  r.msID,
			Witness:   r.cfg.Trent.Key.Addr,
		})
		client := p.Client(e.Chain)
		tx, addr, err := client.Deploy(contracts.TypeCentralized, params, e.Asset)
		if err != nil {
			r.event(i, "deploy failed: "+err.Error())
			continue
		}
		p.Deploys++
		r.event(i, "deploy submitted")
		client.WhenTxAtDepth(tx, r.cfg.ConfirmDepth, func(crypto.Hash) {
			r.event(i, "deploy confirmed")
			r.addrs[i] = addr
			r.confirmed[i] = true
			for _, q := range r.cfg.Participants {
				if q != p {
					p.Tell(q, twAnnounce{EdgeIdx: i, Addr: addr})
				}
			}
			r.maybeRequestRedeem()
		})
	}
}

// onMessage ingests announcements and decisions.
func (r *TWRun) onMessage(p *xchain.Participant, msg any) {
	switch m := msg.(type) {
	case twAnnounce:
		if r.addrs[m.EdgeIdx].IsZero() {
			r.addrs[m.EdgeIdx] = m.Addr
		}
		r.confirmed[m.EdgeIdx] = true
		r.maybeRequestRedeem()
	case twDecision:
		r.settleFor(p, m.Purpose, m.Sig)
	}
}

// maybeRequestRedeem asks Trent for the redemption signature once all
// contracts are confirmed.
func (r *TWRun) maybeRequestRedeem() {
	if r.requested || r.decision != 0 {
		return
	}
	for _, c := range r.confirmed {
		if !c {
			return
		}
	}
	initiator := r.cfg.Initiator
	if initiator.Crashed() {
		return
	}
	r.requested = true
	r.event(-1, "redeem signature requested from Trent")
	r.cfg.Trent.RequestRedeem(r.msID, r.addrs, r.cfg.ConfirmDepth, func(sig crypto.Signature, p crypto.Purpose, err error) {
		if err != nil {
			r.event(-1, "Trent refused: "+err.Error())
			r.requested = false
			// Retry on the next confirmation event — or, if every
			// confirmation already arrived and only Trent's view
			// lags, on an explicit backoff timer. Without the timer
			// a refusal after the last announcement would stall the
			// run forever.
			r.w.Sim.After(6*r.cfg.RetryEvery, r.maybeRequestRedeem)
			return
		}
		r.onDecision(p, sig)
	})
}

// onDecision records Trent's signature and fans it out.
func (r *TWRun) onDecision(p crypto.Purpose, sig crypto.Signature) {
	if r.decision != 0 {
		return
	}
	r.decision = p
	r.decisionSig = sig
	r.DecidedAt = r.w.Sim.Now()
	r.event(-1, "Trent decided "+p.String())
	for _, q := range r.cfg.Participants {
		q := q
		r.settleFor(q, p, sig)
		r.cfg.Initiator.Tell(q, twDecision{Purpose: p, Sig: sig})
	}
}

// settleFor makes q redeem its incoming edges (RD) or refund its
// outgoing edges (RF) using Trent's signature as the secret.
func (r *TWRun) settleFor(q *xchain.Participant, p crypto.Purpose, sig crypto.Signature) {
	if q.Crashed() {
		return
	}
	secret := crypto.EncodeSignature(sig)
	for i, e := range r.cfg.Graph.Edges {
		mine := (p == crypto.PurposeRedeem && e.To == q.Addr()) ||
			(p == crypto.PurposeRefund && e.From == q.Addr())
		if !mine || r.addrs[i].IsZero() {
			continue
		}
		key := fmt.Sprintf("%s-%d", q.Name, i)
		if r.settled[key] {
			continue
		}
		r.settled[key] = true
		i, e := i, e
		fn := contracts.FnRedeem
		if p == crypto.PurposeRefund {
			fn = contracts.FnRefund
		}
		client := q.Client(e.Chain)
		if _, err := client.Call(r.addrs[i], fn, secret, 0); err == nil {
			q.Calls++
			r.event(i, fn+" submitted")
		}
		client.WhenContract(r.addrs[i], 0, func(ct vm.Contract) bool {
			sc, ok := ct.(*contracts.CentralizedSC)
			return ok && sc.State != contracts.StatePublished
		}, func() {
			r.event(i, "terminal")
			r.CompletedAt = r.w.Sim.Now()
		})
	}
}

// Addrs exposes per-edge contract addresses for grading.
func (r *TWRun) Addrs() []crypto.Address { return append([]crypto.Address(nil), r.addrs...) }

// Grade reads terminal contract states from ground-truth views and
// counts on-chain operations (AC3TW pays N deploys + N calls; the
// witness work happens off-chain at Trent).
func (r *TWRun) Grade() *xchain.Outcome {
	out := xchain.GradeGraph(r.w, r.cfg.Graph, r.addrs)
	out.Start = r.start
	end := r.start
	for _, ev := range r.Events {
		if ev.At > end {
			end = ev.At
		}
	}
	out.End = end
	perChain := make(map[chain.ID]map[crypto.Address]bool)
	for i, e := range r.cfg.Graph.Edges {
		if r.addrs[i].IsZero() {
			continue
		}
		if perChain[e.Chain] == nil {
			perChain[e.Chain] = make(map[crypto.Address]bool)
		}
		perChain[e.Chain][r.addrs[i]] = true
	}
	for id, set := range perChain {
		d, c := xchain.CountContractOps(r.w.View(id), set)
		out.Deploys += d
		out.Calls += c
	}
	return out
}
