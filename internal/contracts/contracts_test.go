package contracts

import (
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/spv"
	"repro/internal/vm"
)

// world is a multi-chain single-view test harness: one chain view per
// blockchain, mined manually, with funded keys shared across chains.
type world struct {
	t      *testing.T
	rng    *sim.RNG
	now    sim.Time
	chains map[chain.ID]*chain.Chain
	miner  *crypto.KeyPair // coinbase recipient, distinct from principals
	nonce  uint64
}

func newWorld(t *testing.T, ids []chain.ID, funded ...*crypto.KeyPair) *world {
	t.Helper()
	minerRng := sim.NewRNG(31337)
	w := &world{
		t: t, rng: sim.NewRNG(777), chains: make(map[chain.ID]*chain.Chain),
		miner: crypto.MustGenerateKey(crypto.NewRandReader(minerRng.Uint64)),
	}
	alloc := chain.GenesisAlloc{}
	for _, k := range funded {
		alloc[k.Addr] = 1_000_000
	}
	for _, id := range ids {
		params := chain.DefaultParams(id)
		params.DifficultyBits = 8
		reg := vm.NewRegistry()
		RegisterAll(reg)
		c, err := chain.NewChain(params, reg, alloc)
		if err != nil {
			t.Fatal(err)
		}
		w.chains[id] = c
	}
	return w
}

func keys(n int) []*crypto.KeyPair {
	rng := sim.NewRNG(555)
	out := make([]*crypto.KeyPair, n)
	for i := range out {
		out[i] = crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	}
	return out
}

// mine adds one block with txs to the given chain; all must be valid.
func (w *world) mine(id chain.ID, txs ...*chain.Tx) *chain.Block {
	w.t.Helper()
	c := w.chains[id]
	w.now += 10 * sim.Second
	b, _, invalid := c.BuildBlock(w.miner.Addr, w.now, txs)
	if len(invalid) > 0 || len(b.Txs) != len(txs)+1 {
		w.t.Fatalf("mine on %s: %d invalid, %d packed (want %d)", id, len(invalid), len(b.Txs), len(txs)+1)
	}
	b.Header.Seal(w.rng.Uint64())
	if _, err := c.AddBlock(b); err != nil {
		w.t.Fatalf("mine on %s: %v", id, err)
	}
	return b
}

// mineEmpty mines n empty blocks (to bury transactions).
func (w *world) mineEmpty(id chain.ID, n int) {
	for i := 0; i < n; i++ {
		w.mine(id)
	}
}

// fund selects one UTXO of key worth at least amt on the chain.
func (w *world) fund(id chain.ID, key *crypto.KeyPair, amt vm.Amount) (chain.TxIn, vm.Amount) {
	w.t.Helper()
	for op, o := range w.chains[id].TipState().UTXOsOwnedBy(key.Addr) {
		if o.Value >= amt {
			return chain.TxIn{Prev: op}, o.Value - amt
		}
	}
	w.t.Fatalf("%s lacks %d on %s", key.Addr, amt, id)
	return chain.TxIn{}, 0
}

// deploy builds, mines, and returns a deployment transaction.
func (w *world) deploy(id chain.ID, key *crypto.KeyPair, typ string, params []byte, value vm.Amount) *chain.Tx {
	w.t.Helper()
	var ins []chain.TxIn
	var outs []chain.TxOut
	if value > 0 {
		in, change := w.fund(id, key, value)
		ins = append(ins, in)
		if change > 0 {
			outs = append(outs, chain.TxOut{Value: change, Owner: key.Addr})
		}
	}
	w.nonce++
	tx := chain.NewDeploy(key, w.nonce, ins, outs, typ, params, value)
	w.mine(id, tx)
	return tx
}

// call builds and mines a contract call; expectOK controls whether
// the call must be packed or rejected.
func (w *world) call(id chain.ID, key *crypto.KeyPair, contract crypto.Address, fn string, args []byte, expectOK bool) *chain.Tx {
	w.t.Helper()
	w.nonce++
	tx := chain.NewCall(key, w.nonce, contract, fn, args, nil, nil, 0)
	c := w.chains[id]
	w.now += 10 * sim.Second
	b, _, invalid := c.BuildBlock(w.miner.Addr, w.now, []*chain.Tx{tx})
	ok := len(invalid) == 0 && len(b.Txs) == 2
	if ok != expectOK {
		w.t.Fatalf("call %s on %s: packed=%v, want %v (invalid=%d)", fn, id, ok, expectOK, len(invalid))
	}
	b.Header.Seal(w.rng.Uint64())
	if _, err := c.AddBlock(b); err != nil {
		w.t.Fatalf("call %s: %v", fn, err)
	}
	return tx
}

// contractState reads a contract from the tip.
func (w *world) contractState(id chain.ID, addr crypto.Address) vm.Contract {
	w.t.Helper()
	c, ok := w.chains[id].TipState().Contract(addr)
	if !ok {
		w.t.Fatalf("no contract %s on %s", addr, id)
	}
	return c
}

// balanceOf sums key's UTXOs on a chain.
func (w *world) balanceOf(id chain.ID, key *crypto.KeyPair) vm.Amount {
	var total vm.Amount
	for _, o := range w.chains[id].TipState().UTXOsOwnedBy(key.Addr) {
		total += o.Value
	}
	return total
}

// evidenceFor builds encoded SPV evidence for a tx anchored at the
// chain's genesis.
func (w *world) evidenceFor(id chain.ID, txID crypto.Hash, minDepth int) []byte {
	w.t.Helper()
	c := w.chains[id]
	ev, err := spv.Build(c, c.Genesis().Hash(), txID, minDepth)
	if err != nil {
		w.t.Fatalf("evidence on %s: %v", id, err)
	}
	return ev.Encode()
}

// --- HTLC ---

func TestHTLCRedeemHappyPath(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc"}, alice, bob)

	secret := []byte("nolan-secret")
	params := vm.EncodeGob(HTLCParams{
		Recipient: bob.Addr,
		Hashlock:  crypto.Sum(secret),
		Timelock:  int64(2 * sim.Hour),
	})
	dep := w.deploy("btc", alice, TypeHTLC, params, 5_000)
	addr := dep.ContractAddr()

	w.call("btc", bob, addr, FnRedeem, secret, true)
	h := w.contractState("btc", addr).(*HTLC)
	if h.State != StateRedeemed {
		t.Fatalf("state = %s, want RD", h.State)
	}
	if got := w.balanceOf("btc", bob); got != 1_000_000+5_000 {
		t.Fatalf("bob balance = %d", got)
	}
}

func TestHTLCWrongSecretRejected(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc"}, alice, bob)
	params := vm.EncodeGob(HTLCParams{
		Recipient: bob.Addr,
		Hashlock:  crypto.Sum([]byte("right")),
		Timelock:  int64(2 * sim.Hour),
	})
	dep := w.deploy("btc", alice, TypeHTLC, params, 5_000)
	w.call("btc", bob, dep.ContractAddr(), FnRedeem, []byte("wrong"), false)
}

func TestHTLCRefundOnlyAfterTimelock(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc"}, alice, bob)
	params := vm.EncodeGob(HTLCParams{
		Recipient: bob.Addr,
		Hashlock:  crypto.Sum([]byte("s")),
		Timelock:  int64(5 * sim.Minute),
	})
	dep := w.deploy("btc", alice, TypeHTLC, params, 5_000)
	addr := dep.ContractAddr()

	// Too early.
	w.call("btc", alice, addr, FnRefund, nil, false)
	// Let virtual block time pass the timelock.
	w.mineEmpty("btc", 40) // 40 blocks * 10s > 5 minutes
	w.call("btc", alice, addr, FnRefund, nil, true)
	if got := w.contractState("btc", addr).(*HTLC).State; got != StateRefunded {
		t.Fatalf("state = %s, want RF", got)
	}
	if got := w.balanceOf("btc", alice); got != 1_000_000 {
		t.Fatalf("alice balance = %d after refund, want restored", got)
	}
}

func TestHTLCRedeemAfterExpiryRejected(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc"}, alice, bob)
	secret := []byte("s")
	params := vm.EncodeGob(HTLCParams{
		Recipient: bob.Addr,
		Hashlock:  crypto.Sum(secret),
		Timelock:  int64(5 * sim.Minute),
	})
	dep := w.deploy("btc", alice, TypeHTLC, params, 5_000)
	w.mineEmpty("btc", 40)
	// This is the paper's Section 1 hazard: Bob is late (crash,
	// delay) and the contract refuses the valid secret.
	w.call("btc", bob, dep.ContractAddr(), FnRedeem, secret, false)
}

func TestHTLCNoDoubleSpendAcrossOutcomes(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc"}, alice, bob)
	secret := []byte("s")
	params := vm.EncodeGob(HTLCParams{
		Recipient: bob.Addr,
		Hashlock:  crypto.Sum(secret),
		Timelock:  int64(1 * sim.Hour),
	})
	dep := w.deploy("btc", alice, TypeHTLC, params, 5_000)
	addr := dep.ContractAddr()
	w.call("btc", bob, addr, FnRedeem, secret, true)
	// Second redeem and any refund must fail.
	w.call("btc", bob, addr, FnRedeem, secret, false)
	w.mineEmpty("btc", 400)
	w.call("btc", alice, addr, FnRefund, nil, false)
}

func TestHTLCInitValidation(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	ctx := vm.NewCtx("btc", crypto.Address{1}, 1, 100, vm.Msg{Sender: alice.Addr, Value: 10}, 10)
	h := &HTLC{}
	if err := h.Init(ctx, vm.EncodeGob(HTLCParams{Recipient: bob.Addr, Timelock: 50})); err == nil {
		t.Fatal("past timelock accepted")
	}
	if err := h.Init(ctx, vm.EncodeGob(HTLCParams{Timelock: 500})); err == nil {
		t.Fatal("zero recipient accepted")
	}
	noValue := vm.NewCtx("btc", crypto.Address{1}, 1, 100, vm.Msg{Sender: alice.Addr}, 0)
	if err := h.Init(noValue, vm.EncodeGob(HTLCParams{Recipient: bob.Addr, Timelock: 500})); err == nil {
		t.Fatal("zero-value HTLC accepted")
	}
	if err := h.Init(ctx, []byte("garbage")); err == nil {
		t.Fatal("garbage params accepted")
	}
}

// --- CentralizedSC (AC3TW, Algorithm 2) ---

func TestCentralizedRedeemWithTrentSignature(t *testing.T) {
	ks := keys(3)
	alice, bob, trent := ks[0], ks[1], ks[2]
	w := newWorld(t, []chain.ID{"btc"}, alice, bob)

	ms := crypto.Sum([]byte("ms(D)"))
	params := vm.EncodeGob(CentralizedParams{Recipient: bob.Addr, MSDigest: ms, Witness: trent.Addr})
	dep := w.deploy("btc", alice, TypeCentralized, params, 7_000)
	addr := dep.ContractAddr()

	rd := crypto.EncodeSignature(trent.Sign(crypto.WitnessMessage(ms, crypto.PurposeRedeem)))
	w.call("btc", bob, addr, FnRedeem, rd, true)
	if got := w.contractState("btc", addr).(*CentralizedSC).State; got != StateRedeemed {
		t.Fatalf("state = %s", got)
	}
	if got := w.balanceOf("btc", bob); got != 1_000_000+7_000 {
		t.Fatalf("bob balance = %d", got)
	}
}

func TestCentralizedCrossSignaturesRejected(t *testing.T) {
	ks := keys(3)
	alice, bob, trent := ks[0], ks[1], ks[2]
	w := newWorld(t, []chain.ID{"btc"}, alice, bob)
	ms := crypto.Sum([]byte("ms(D)"))
	params := vm.EncodeGob(CentralizedParams{Recipient: bob.Addr, MSDigest: ms, Witness: trent.Addr})
	dep := w.deploy("btc", alice, TypeCentralized, params, 7_000)
	addr := dep.ContractAddr()

	rf := crypto.EncodeSignature(trent.Sign(crypto.WitnessMessage(ms, crypto.PurposeRefund)))
	// A refund signature cannot redeem…
	w.call("btc", bob, addr, FnRedeem, rf, false)
	// …but it does refund.
	w.call("btc", alice, addr, FnRefund, rf, true)
	if got := w.contractState("btc", addr).(*CentralizedSC).State; got != StateRefunded {
		t.Fatalf("state = %s", got)
	}
	// After refund, a legitimate redeem signature is useless: mutual
	// exclusion at the contract level.
	rd := crypto.EncodeSignature(trent.Sign(crypto.WitnessMessage(ms, crypto.PurposeRedeem)))
	w.call("btc", bob, addr, FnRedeem, rd, false)
}

func TestCentralizedForgedWitnessRejected(t *testing.T) {
	ks := keys(4)
	alice, bob, trent, mallory := ks[0], ks[1], ks[2], ks[3]
	w := newWorld(t, []chain.ID{"btc"}, alice, bob)
	ms := crypto.Sum([]byte("ms(D)"))
	params := vm.EncodeGob(CentralizedParams{Recipient: bob.Addr, MSDigest: ms, Witness: trent.Addr})
	dep := w.deploy("btc", alice, TypeCentralized, params, 7_000)
	forged := crypto.EncodeSignature(mallory.Sign(crypto.WitnessMessage(ms, crypto.PurposeRedeem)))
	w.call("btc", bob, dep.ContractAddr(), FnRedeem, forged, false)
}

// --- WitnessSC + PermissionlessSC end-to-end (Algorithms 3 & 4) ---

// ac3wnFixture wires the full two-party AC3WN contract set across
// three chains (two asset chains plus a witness chain).
type ac3wnFixture struct {
	w            *world
	alice, bob   *crypto.KeyPair
	g            *graph.Graph
	scwAddr      crypto.Address
	sc1Addr      crypto.Address // alice's contract on "btc" (X to bob)
	sc2Addr      crypto.Address // bob's contract on "eth" (Y to alice)
	sc1Tx, sc2Tx *chain.Tx
	witnessDepth int
	assetDepth   int
}

const (
	assetX = vm.Amount(40_000) // alice → bob on btc
	assetY = vm.Amount(90_000) // bob → alice on eth
)

func newAC3WNFixture(t *testing.T) *ac3wnFixture {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc", "eth", "witness"}, alice, bob)
	f := &ac3wnFixture{w: w, alice: alice, bob: bob, witnessDepth: 2, assetDepth: 2}

	g, err := graph.TwoParty(1, alice.Addr, bob.Addr, assetX, "btc", assetY, "eth")
	if err != nil {
		t.Fatal(err)
	}
	f.g = g

	// Step 1–2: multisign the graph, register it in SCw on the
	// witness network.
	ms := g.Sign(alice, bob)
	wp := WitnessParams{
		Edges:     g.Edges,
		Timestamp: g.Timestamp,
		Multisig:  *ms,
		Checkpoints: []ChainCheckpoint{
			{Chain: "btc", Header: w.chains["btc"].Genesis().Header.Encode(), EvidenceDepth: f.assetDepth},
			{Chain: "eth", Header: w.chains["eth"].Genesis().Header.Encode(), EvidenceDepth: f.assetDepth},
		},
		WitnessDepth: f.witnessDepth,
	}
	scwTx := w.deploy("witness", alice, TypeWitness, vm.EncodeGob(wp), 0)
	f.scwAddr = scwTx.ContractAddr()

	// Step 3–4: both participants deploy their asset contracts
	// concurrently (no ordering requirement — the paper's latency
	// win).
	witnessCp := w.chains["witness"].Genesis().Header.Encode()
	p1 := vm.EncodeGob(PermissionlessParams{
		Recipient: bob.Addr, WitnessChain: "witness",
		WitnessCheckpoint: witnessCp, SCw: f.scwAddr, Depth: f.witnessDepth,
	})
	f.sc1Tx = w.deploy("btc", alice, TypePermissionless, p1, assetX)
	f.sc1Addr = f.sc1Tx.ContractAddr()

	p2 := vm.EncodeGob(PermissionlessParams{
		Recipient: alice.Addr, WitnessChain: "witness",
		WitnessCheckpoint: witnessCp, SCw: f.scwAddr, Depth: f.witnessDepth,
	})
	f.sc2Tx = w.deploy("eth", bob, TypePermissionless, p2, assetY)
	f.sc2Addr = f.sc2Tx.ContractAddr()

	// Bury the deployments to the agreed evidence depth.
	w.mineEmpty("btc", f.assetDepth)
	w.mineEmpty("eth", f.assetDepth)
	return f
}

// deployEvidence builds the per-edge evidence list for
// authorize_redeem. Edge order must match g.Edges.
func (f *ac3wnFixture) deployEvidence(t *testing.T) []byte {
	t.Helper()
	var evs [][]byte
	for _, e := range f.g.Edges {
		switch e.Chain {
		case "btc":
			evs = append(evs, f.w.evidenceFor("btc", f.sc1Tx.ID(), f.assetDepth))
		case "eth":
			evs = append(evs, f.w.evidenceFor("eth", f.sc2Tx.ID(), f.assetDepth))
		default:
			t.Fatalf("unexpected chain %s", e.Chain)
		}
	}
	return EncodeEvidenceList(evs)
}

func TestAC3WNCommitFlow(t *testing.T) {
	f := newAC3WNFixture(t)
	w := f.w

	// Step 5: authorize redemption with evidence of both deployments.
	authTx := w.call("witness", f.bob, f.scwAddr, FnAuthorizeRedeem, f.deployEvidence(t), true)
	if got := w.contractState("witness", f.scwAddr).(*WitnessSC).State; got != WitnessRedeemAuthorized {
		t.Fatalf("SCw state = %s, want RDauth", got)
	}
	// Bury the state change d deep.
	w.mineEmpty("witness", f.witnessDepth)

	// Step 5 cont.: both sides redeem with the commit evidence.
	commitEv := w.evidenceFor("witness", authTx.ID(), f.witnessDepth)
	w.call("btc", f.bob, f.sc1Addr, FnRedeem, commitEv, true)
	w.call("eth", f.alice, f.sc2Addr, FnRedeem, commitEv, true)

	if got := w.balanceOf("btc", f.bob); got != 1_000_000+assetX {
		t.Fatalf("bob btc balance = %d", got)
	}
	if got := w.balanceOf("eth", f.alice); got != 1_000_000+assetY {
		t.Fatalf("alice eth balance = %d", got)
	}
	// Refunds are now impossible on both contracts (mutual exclusion
	// propagated from SCw).
	w.mineEmpty("witness", 1)
	refundEv := commitEv // even with valid-format evidence, state is RD
	w.call("btc", f.alice, f.sc1Addr, FnRefund, refundEv, false)
}

func TestAC3WNAbortFlow(t *testing.T) {
	f := newAC3WNFixture(t)
	w := f.w

	// A participant aborts: authorize_refund needs no evidence.
	abortTx := w.call("witness", f.alice, f.scwAddr, FnAuthorizeRefund, nil, true)
	if got := w.contractState("witness", f.scwAddr).(*WitnessSC).State; got != WitnessRefundAuthorized {
		t.Fatalf("SCw state = %s, want RFauth", got)
	}
	w.mineEmpty("witness", f.witnessDepth)

	abortEv := w.evidenceFor("witness", abortTx.ID(), f.witnessDepth)
	w.call("btc", f.alice, f.sc1Addr, FnRefund, abortEv, true)
	w.call("eth", f.bob, f.sc2Addr, FnRefund, abortEv, true)

	if got := w.balanceOf("btc", f.alice); got != 1_000_000 {
		t.Fatalf("alice btc balance = %d, want fully refunded", got)
	}
	if got := w.balanceOf("eth", f.bob); got != 1_000_000 {
		t.Fatalf("bob eth balance = %d, want fully refunded", got)
	}
	// Redeems are impossible: abort evidence cannot redeem, and SCw
	// can never reach RDauth.
	w.call("btc", f.bob, f.sc1Addr, FnRedeem, abortEv, false)
	w.call("witness", f.bob, f.scwAddr, FnAuthorizeRedeem, f.deployEvidence(t), false)
}

func TestWitnessStateTransitionsAreExclusive(t *testing.T) {
	f := newAC3WNFixture(t)
	w := f.w
	w.call("witness", f.bob, f.scwAddr, FnAuthorizeRedeem, f.deployEvidence(t), true)
	// RDauth → RFauth is forbidden (Lemma 5.1's core invariant).
	w.call("witness", f.alice, f.scwAddr, FnAuthorizeRefund, nil, false)
	// And authorize_redeem is not repeatable.
	w.call("witness", f.bob, f.scwAddr, FnAuthorizeRedeem, f.deployEvidence(t), false)
}

func TestAuthorizeRedeemRejectsBadEvidence(t *testing.T) {
	f := newAC3WNFixture(t)
	w := f.w

	// Missing one contract's evidence.
	one := EncodeEvidenceList([][]byte{w.evidenceFor("btc", f.sc1Tx.ID(), f.assetDepth)})
	w.call("witness", f.bob, f.scwAddr, FnAuthorizeRedeem, one, false)

	// Swapped order: evidence must match edge order; the btc edge
	// cannot be proven by eth evidence.
	swapped := EncodeEvidenceList([][]byte{
		w.evidenceFor("eth", f.sc2Tx.ID(), f.assetDepth),
		w.evidenceFor("btc", f.sc1Tx.ID(), f.assetDepth),
	})
	w.call("witness", f.bob, f.scwAddr, FnAuthorizeRedeem, swapped, false)

	// Garbage.
	w.call("witness", f.bob, f.scwAddr, FnAuthorizeRedeem, []byte("junk"), false)
}

func TestAuthorizeRedeemRejectsMismatchedContract(t *testing.T) {
	// Deploy a contract with the wrong asset amount; its evidence
	// must not authorize redemption.
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc", "eth", "witness"}, alice, bob)
	g, _ := graph.TwoParty(1, alice.Addr, bob.Addr, assetX, "btc", assetY, "eth")
	ms := g.Sign(alice, bob)
	wp := WitnessParams{
		Edges: g.Edges, Timestamp: g.Timestamp, Multisig: *ms,
		Checkpoints: []ChainCheckpoint{
			{Chain: "btc", Header: w.chains["btc"].Genesis().Header.Encode(), EvidenceDepth: 1},
			{Chain: "eth", Header: w.chains["eth"].Genesis().Header.Encode(), EvidenceDepth: 1},
		},
		WitnessDepth: 1,
	}
	scw := w.deploy("witness", alice, TypeWitness, vm.EncodeGob(wp), 0)
	witnessCp := w.chains["witness"].Genesis().Header.Encode()

	// Alice locks the WRONG amount (half of what the edge says).
	p1 := vm.EncodeGob(PermissionlessParams{
		Recipient: bob.Addr, WitnessChain: "witness",
		WitnessCheckpoint: witnessCp, SCw: scw.ContractAddr(), Depth: 1,
	})
	sc1 := w.deploy("btc", alice, TypePermissionless, p1, assetX/2)
	p2 := vm.EncodeGob(PermissionlessParams{
		Recipient: alice.Addr, WitnessChain: "witness",
		WitnessCheckpoint: witnessCp, SCw: scw.ContractAddr(), Depth: 1,
	})
	sc2 := w.deploy("eth", bob, TypePermissionless, p2, assetY)
	w.mineEmpty("btc", 1)
	w.mineEmpty("eth", 1)

	evs := EncodeEvidenceList([][]byte{
		w.evidenceFor("btc", sc1.ID(), 1),
		w.evidenceFor("eth", sc2.ID(), 1),
	})
	w.call("witness", f2key(bob), scw.ContractAddr(), FnAuthorizeRedeem, evs, false)
}

// f2key is an identity helper making intent explicit at call sites.
func f2key(k *crypto.KeyPair) *crypto.KeyPair { return k }

func TestPermissionlessRejectsShallowWitnessEvidence(t *testing.T) {
	f := newAC3WNFixture(t)
	w := f.w
	authTx := w.call("witness", f.bob, f.scwAddr, FnAuthorizeRedeem, f.deployEvidence(t), true)
	// Only bury it 1 deep; contracts demand 2.
	w.mineEmpty("witness", 1)
	ev, err := spv.Build(w.chains["witness"], w.chains["witness"].Genesis().Hash(), authTx.ID(), 1)
	if err != nil {
		t.Fatal(err)
	}
	w.call("btc", f.bob, f.sc1Addr, FnRedeem, ev.Encode(), false)
}

func TestPermissionlessRejectsWrongFunctionEvidence(t *testing.T) {
	f := newAC3WNFixture(t)
	w := f.w
	// Abort, then try to use the abort evidence to REDEEM.
	abortTx := w.call("witness", f.alice, f.scwAddr, FnAuthorizeRefund, nil, true)
	w.mineEmpty("witness", f.witnessDepth)
	abortEv := w.evidenceFor("witness", abortTx.ID(), f.witnessDepth)
	w.call("btc", f.bob, f.sc1Addr, FnRedeem, abortEv, false)
}

func TestWitnessConstructorRejectsIncompleteMultisig(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc", "eth", "witness"}, alice, bob)
	g, _ := graph.TwoParty(1, alice.Addr, bob.Addr, 10, "btc", 20, "eth")
	ms := g.Sign(alice) // bob missing
	wp := WitnessParams{
		Edges: g.Edges, Timestamp: g.Timestamp, Multisig: *ms,
		Checkpoints: []ChainCheckpoint{
			{Chain: "btc", Header: w.chains["btc"].Genesis().Header.Encode(), EvidenceDepth: 1},
			{Chain: "eth", Header: w.chains["eth"].Genesis().Header.Encode(), EvidenceDepth: 1},
		},
		WitnessDepth: 1,
	}
	scw := &WitnessSC{}
	ctx := vm.NewCtx("witness", crypto.Address{9}, 1, 10, vm.Msg{Sender: alice.Addr}, 0)
	if err := scw.Init(ctx, vm.EncodeGob(wp)); err == nil || !strings.Contains(err.Error(), "multisignature") {
		t.Fatalf("incomplete multisig accepted: %v", err)
	}
}

func TestWitnessConstructorRejectsMissingCheckpoint(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc", "eth", "witness"}, alice, bob)
	g, _ := graph.TwoParty(1, alice.Addr, bob.Addr, 10, "btc", 20, "eth")
	ms := g.Sign(alice, bob)
	wp := WitnessParams{
		Edges: g.Edges, Timestamp: g.Timestamp, Multisig: *ms,
		Checkpoints: []ChainCheckpoint{
			{Chain: "btc", Header: w.chains["btc"].Genesis().Header.Encode(), EvidenceDepth: 1},
			// eth checkpoint missing
		},
		WitnessDepth: 1,
	}
	scw := &WitnessSC{}
	ctx := vm.NewCtx("witness", crypto.Address{9}, 1, 10, vm.Msg{Sender: alice.Addr}, 0)
	if err := scw.Init(ctx, vm.EncodeGob(wp)); err == nil || !strings.Contains(err.Error(), "checkpoint") {
		t.Fatalf("missing checkpoint accepted: %v", err)
	}
}

// --- HeaderRelay (Figure 6) ---

func TestHeaderRelayFlow(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"chain1", "chain2"}, alice, bob)

	// TX1 on chain1 (any transfer).
	in, change := w.fund("chain1", alice, 100)
	outs := []chain.TxOut{{Value: 100, Owner: bob.Addr}}
	if change > 0 {
		outs = append(outs, chain.TxOut{Value: change, Owner: alice.Addr})
	}
	tx1 := chain.NewTransfer(alice, 42, []chain.TxIn{in}, outs)

	// Relay on chain2 anchored at chain1's genesis waits for TX1.
	params := vm.EncodeGob(RelayParams{
		ValidatedChain: "chain1",
		Checkpoint:     w.chains["chain1"].Genesis().Header.Encode(),
		TargetTx:       tx1.ID(),
		MinDepth:       3,
	})
	relay := w.deploy("chain2", bob, TypeHeaderRelay, params, 0)

	// Evidence before TX1 even exists: must fail.
	w.call("chain2", bob, relay.ContractAddr(), FnSubmitEvidence, []byte("junk"), false)

	// Mine TX1 and bury it (labels 3–4 in Figure 6).
	w.mine("chain1", tx1)
	w.mineEmpty("chain1", 3)

	// Submit evidence (labels 5–6).
	ev := w.evidenceFor("chain1", tx1.ID(), 3)
	w.call("chain2", bob, relay.ContractAddr(), FnSubmitEvidence, ev, true)
	r := w.contractState("chain2", relay.ContractAddr()).(*HeaderRelay)
	if r.State != RelayS2 || r.Verified != 1 {
		t.Fatalf("relay state = %v verified=%d", r.State, r.Verified)
	}
	// Resubmission fails (already validated).
	w.call("chain2", bob, relay.ContractAddr(), FnSubmitEvidence, ev, false)
}

func TestHeaderRelayRejectsWrongTx(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"chain1", "chain2"}, alice, bob)

	in, change := w.fund("chain1", alice, 100)
	outs := []chain.TxOut{{Value: 100, Owner: bob.Addr}}
	if change > 0 {
		outs = append(outs, chain.TxOut{Value: change, Owner: alice.Addr})
	}
	tx1 := chain.NewTransfer(alice, 42, []chain.TxIn{in}, outs)
	params := vm.EncodeGob(RelayParams{
		ValidatedChain: "chain1",
		Checkpoint:     w.chains["chain1"].Genesis().Header.Encode(),
		TargetTx:       crypto.Sum([]byte("some other tx")),
		MinDepth:       2,
	})
	relay := w.deploy("chain2", bob, TypeHeaderRelay, params, 0)
	w.mine("chain1", tx1)
	w.mineEmpty("chain1", 2)
	ev := w.evidenceFor("chain1", tx1.ID(), 2)
	w.call("chain2", bob, relay.ContractAddr(), FnSubmitEvidence, ev, false)
}

func TestEvidenceListRoundTrip(t *testing.T) {
	in := [][]byte{[]byte("a"), {}, []byte("ccc")}
	out, err := DecodeEvidenceList(EncodeEvidenceList(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || string(out[0]) != "a" || len(out[1]) != 0 || string(out[2]) != "ccc" {
		t.Fatalf("round trip = %q", out)
	}
	for _, bad := range [][]byte{nil, {1}, {0, 0, 0, 5}} {
		if _, err := DecodeEvidenceList(bad); err == nil {
			t.Fatal("garbage list decoded")
		}
	}
}

func TestStateStrings(t *testing.T) {
	if StatePublished.String() != "P" || StateRedeemed.String() != "RD" || StateRefunded.String() != "RF" {
		t.Fatal("swap state names")
	}
	if WitnessPublished.String() != "P" || WitnessRedeemAuthorized.String() != "RDauth" || WitnessRefundAuthorized.String() != "RFauth" {
		t.Fatal("witness state names")
	}
	if SwapState(9).String() == "" || WitnessState(9).String() == "" {
		t.Fatal("unknown states should render")
	}
}
