// Package vm defines the smart-contract runtime of the simulated
// blockchains. Following the paper (Section 2.3, which adopts
// Herlihy's notion of a contract as an object), a contract is a typed
// object with a constructor, named functions that may alter its state,
// and an asset balance locked at deployment. Miners execute contract
// transactions at block application; contract state is versioned per
// block by the chain package via Clone, making it reorg-safe.
//
// Contracts are Go types registered in a Registry by type name — the
// moral equivalent of deploying bytecode. A deployment transaction
// carries the type name plus encoded constructor parameters, so every
// miner independently instantiates an identical object, exactly as
// every EVM node runs the same initcode.
package vm

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sort"

	"repro/internal/crypto"
)

// Amount is an asset quantity in the chain's smallest unit. It aliases
// uint64 so chain and vm interoperate without conversions.
type Amount = uint64

// Msg carries the implicit parameters of a deployment or call message
// (the paper's msg.sender and msg.val).
type Msg struct {
	Sender crypto.Address
	Value  Amount
}

// Payout is an asset transfer out of a contract, produced by Ctx.Pay.
// The chain package materializes payouts as new UTXOs owned by To.
type Payout struct {
	To    crypto.Address
	Value Amount
}

// Ctx is the execution context handed to a contract function. It
// exposes the chain environment (height, time), the message, and the
// contract's balance, and collects payouts.
type Ctx struct {
	ChainID string
	Self    crypto.Address // the contract's own address
	Height  uint64         // height of the block being applied
	Time    int64          // timestamp of the block being applied
	Msg     Msg

	balance Amount
	payouts []Payout
}

// NewCtx builds an execution context. balance is the contract's
// balance before this call (including Msg.Value already credited).
func NewCtx(chainID string, self crypto.Address, height uint64, time int64, msg Msg, balance Amount) *Ctx {
	return &Ctx{ChainID: chainID, Self: self, Height: height, Time: time, Msg: msg, balance: balance}
}

// Balance returns the contract's remaining balance.
func (c *Ctx) Balance() Amount { return c.balance }

// Pay transfers amt from the contract's balance to recipient. It fails
// if the balance is insufficient or the recipient is the zero address
// (which would burn assets).
func (c *Ctx) Pay(to crypto.Address, amt Amount) error {
	if to.IsZero() {
		return fmt.Errorf("vm: payout to zero address")
	}
	if amt > c.balance {
		return fmt.Errorf("vm: payout %d exceeds contract balance %d", amt, c.balance)
	}
	c.balance -= amt
	c.payouts = append(c.payouts, Payout{To: to, Value: amt})
	return nil
}

// Payouts returns the transfers queued by the executed function.
func (c *Ctx) Payouts() []Payout { return c.payouts }

// Contract is a deployed smart-contract object.
type Contract interface {
	// Type returns the registry type name this contract was deployed
	// as.
	Type() string
	// Init is the constructor, run exactly once at deployment with the
	// encoded constructor parameters from the deployment transaction.
	Init(ctx *Ctx, params []byte) error
	// Call executes a named function. Returning an error rejects the
	// whole transaction: miners exclude failing calls from blocks, so
	// on-chain inclusion implies success.
	Call(ctx *Ctx, fn string, args []byte) error
	// Clone returns a deep copy; the chain package clones contracts
	// into each block's state overlay before mutation (copy-on-write).
	Clone() Contract
}

// ErrUnknownFunction is a helper for contracts dispatching on fn.
func ErrUnknownFunction(typ, fn string) error {
	return fmt.Errorf("vm: contract %s has no function %q", typ, fn)
}

// Registry maps contract type names to factories. Each simulated
// chain is configured with a registry; deploying an unregistered type
// fails validation, like sending initcode a node refuses to run.
type Registry struct {
	factories map[string]func() Contract
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{factories: make(map[string]func() Contract)}
}

// Register adds a contract type. Re-registering a name panics: it is
// a programming error, not a runtime condition.
func (r *Registry) Register(typ string, factory func() Contract) {
	if typ == "" || factory == nil {
		panic("vm: Register with empty type or nil factory")
	}
	if _, dup := r.factories[typ]; dup {
		panic(fmt.Sprintf("vm: contract type %q registered twice", typ))
	}
	r.factories[typ] = factory
}

// New instantiates a contract of the given type.
func (r *Registry) New(typ string) (Contract, error) {
	f, ok := r.factories[typ]
	if !ok {
		return nil, fmt.Errorf("vm: unknown contract type %q", typ)
	}
	return f(), nil
}

// Types returns the registered type names, sorted.
func (r *Registry) Types() []string {
	out := make([]string, 0, len(r.factories))
	for t := range r.factories {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// ContractAddress derives the address of a contract deployed by the
// transaction with the given id, as Ethereum derives CREATE addresses
// from (sender, nonce).
func ContractAddress(txID crypto.Hash) crypto.Address {
	h := crypto.Sum([]byte("contract/"), txID[:])
	var a crypto.Address
	copy(a[:], h[:20])
	return a
}

// EncodeGob serializes constructor parameters or call arguments. Gob
// is deterministic for a fixed concrete type, which the chain relies
// on when hashing transactions.
func EncodeGob(v any) []byte {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		panic(fmt.Sprintf("vm: gob encode %T: %v", v, err))
	}
	return buf.Bytes()
}

// DecodeGob deserializes into v.
func DecodeGob(b []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(v); err != nil {
		return fmt.Errorf("vm: gob decode %T: %w", v, err)
	}
	return nil
}
