package spv

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
)

// Follower couples a LightNode to a full chain view's tip-change feed
// and — unlike the raw subscription it replaces — makes ingest
// failures observable. A header the light node cannot verify used to
// be swallowed inside the callback, leaving the follower silently
// stale forever; now every failure bumps Desyncs, is retained in
// LastErr, and is handed to the OnError hook, so an operator (or a
// test) can notice the desync and resync or rebuild the follower.
type Follower struct {
	*LightNode

	// Desyncs counts headers the follower failed to ingest from the
	// view's notification feed. A nonzero count means the follower's
	// canonical index is behind the view it tracks.
	Desyncs int
	// LastErr is the most recent ingest failure (nil while in sync).
	LastErr error

	onErr func(error)
}

// OnError installs a hook invoked on every header-ingest failure.
func (f *Follower) OnError(fn func(error)) { f.onErr = fn }

// Synced reports whether the follower has ingested every header its
// view announced.
func (f *Follower) Synced() bool { return f.Desyncs == 0 }

// fail records one ingest failure.
func (f *Follower) fail(err error) {
	f.Desyncs++
	f.LastErr = err
	if f.onErr != nil {
		f.onErr(err)
	}
}

// Follow attaches a light node to a full chain view through the
// chain's tip-change notification feed: the light node ingests the
// view's current canonical headers once, then tracks every future tip
// change — including reorgs, where the connected branch's headers
// re-link the canonical index along the adopted fork. This replaces
// the pull pattern (re-scanning HeadersFrom on a timer) with the same
// subscription bus the rest of the system rides; a quiescent chain
// costs the follower nothing. A view is cheap to follow by design:
// block bodies and states live in the network's shared chain.Executor,
// so following any replica observes the same (once-executed) blocks.
func Follow(view *chain.Chain) (*Follower, error) {
	return FollowFrom(view, view.Genesis().Hash())
}

// FollowFrom attaches a light node anchored at a canonical checkpoint
// instead of genesis: the follower trusts the checkpoint header,
// ingests only the canonical headers above it, and then tracks the
// feed like Follow. This is the storage-frugal follower a validator
// with a recent stable block runs — with one sharp edge the error
// surfacing exists for: a reorg deeper than the checkpoint connects
// headers below the follower's anchor, which cannot verify
// (ErrUnknownHeader) and desyncs the follower. The failure is counted
// and hooked, never swallowed.
func FollowFrom(view *chain.Chain, checkpoint crypto.Hash) (*Follower, error) {
	anchor, ok := view.Block(checkpoint)
	if !ok || !view.IsCanonical(checkpoint) {
		return nil, fmt.Errorf("spv: checkpoint %s is not canonical on the view", checkpoint)
	}
	f := &Follower{LightNode: NewLightNode(anchor.Header)}
	hdrs, ok := view.HeadersFrom(checkpoint)
	if !ok {
		return nil, fmt.Errorf("spv: view has no canonical history above %s", checkpoint)
	}
	for _, h := range hdrs {
		if err := f.AddHeader(h); err != nil {
			return nil, fmt.Errorf("spv: seeding follower: %w", err)
		}
	}
	view.OnTipChange(func(ev chain.TipEvent) {
		for _, b := range ev.Connected {
			// Connected branches arrive oldest-first and root at a block
			// that was canonical on the view — which the follower knows
			// unless the reorg reaches below its anchor. AddHeader
			// re-verifies the proof of work and handles the
			// longest-chain switch itself; a failure is surfaced (not
			// swallowed) and the rest of the branch is skipped, since
			// its parents cannot connect either.
			if err := f.AddHeader(b.Header); err != nil {
				f.fail(fmt.Errorf("spv: follower desync at height %d: %w", b.Header.Height, err))
				return
			}
		}
	})
	return f, nil
}
