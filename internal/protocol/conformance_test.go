package protocol_test

// Cross-protocol conformance: one seeded scenario grid — commit,
// decline-abort, crash-at-decision (with recovery), decision race,
// and witness crash — run against AC3WN, AC3TW, and the HTLC
// baseline on 2-party and 3-cycle graphs, all through the shared
// reconciler runtime. The paper's comparison reproduces
// deterministically:
//
//   - AC3WN settles every scenario with zero atomicity violations;
//     crashed participants resume and still redeem.
//   - AC3TW tolerates participant crashes (Resume works), but blocks
//     when its centralized witness crashes — and unblocks when the
//     witness recovers.
//   - HTLC loses the crashed victim's assets: recovery resumes the
//     reconciler, but the timelocked refunds already executed — the
//     Section 1 fragility.

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/batch"
	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/xchain"
)

const (
	confDepth    = 2
	confAbortAt  = 15 * sim.Minute
	confDowntime = 30 * sim.Minute // far beyond every HTLC timelock
	// confPartitionFor is the decision-window split duration: long
	// enough to outlive every HTLC timelock at Delta=90s — the ring
	// timelocks run to (2n−k+1)·Δ ≈ 9-10.5 minutes from the start, so
	// an 8-minute blackout starting at the reveal pushes the victim's
	// redeem past its refund deadline (the expiry-loss hazard) —
	// while AC3WN's post-heal reconciliation still finishes well
	// inside the observation window (minority forks stay ~16 blocks,
	// under the 30-deep stable anchors).
	confPartitionFor = 8 * sim.Minute
	// confLoss / confLossUntil: sustained gossip loss on every
	// network for the first stretch of the run — the orphan
	// re-request and resubmission paths must carry the protocol.
	confLoss      = 0.3
	confLossUntil = 20 * sim.Minute
)

// splitNet partitions miner 0 of the chain's gossip network away from
// the rest when trigger first reports true, healing confPartitionFor
// later via the schedule API.
func splitNet(w *xchain.World, id chain.ID, trigger func() bool) {
	splitNetAt(w, id, 0, trigger)
}

// splitNetAt isolates the given miner index — chosen to starve a
// specific participant's attached node, since clients read their own
// node's view while submissions reach every mempool on their side of
// the split.
func splitNetAt(w *xchain.World, id chain.ID, isolate int, trigger func() bool) {
	w.Sim.Poll(100*sim.Millisecond, func() bool {
		if !trigger() {
			return false
		}
		w.Net(id).P2P.ScheduleIsolation(w.Sim.Now(), confPartitionFor, isolate)
		return true
	})
}

// lossyWorld pushes a loss overlay on every network and lifts it at
// confLossUntil.
func lossyWorld(w *xchain.World) {
	for _, id := range w.Chains() {
		ov := w.Net(id).P2P.PushOverlay(p2p.LatencyModel{Loss: confLoss})
		w.Sim.At(confLossUntil, ov.Remove)
	}
}

// runner is the slice of core.Runner the grid needs, plus the
// uniform crash/resume entry point.
type runner interface {
	Start()
	Settled() bool
	Grade() *xchain.Outcome
	Resume(*xchain.Participant)
}

// gridWorld builds an n-ring world: participant i funded on chain i,
// edge i = ps[i] -> ps[i+1] on chain i, plus a witness chain.
func gridWorld(t *testing.T, seed uint64, n int) (*xchain.World, []*xchain.Participant, *graph.Graph) {
	t.Helper()
	b := xchain.NewBuilder(seed)
	ps := make([]*xchain.Participant, n)
	ids := make([]chain.ID, n)
	for i := range ps {
		ps[i] = b.Participant(fmt.Sprintf("p%d", i))
		ids[i] = chain.ID(fmt.Sprintf("c%d", i))
		b.Chain(xchain.DefaultChainSpec(ids[i]))
	}
	b.Chain(xchain.DefaultChainSpec("witness"))
	edges := make([]graph.Edge, n)
	for i := range ps {
		b.Fund(ps[i], ids[i], 1_000_000)
		edges[i] = graph.Edge{From: ps[i].Addr(), To: ps[(i+1)%n].Addr(), Asset: 10_000, Chain: ids[i]}
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.New(int64(seed), edges...)
	if err != nil {
		t.Fatal(err)
	}
	return w, ps, g
}

// eventCount counts timeline labels with the given prefix.
func eventCount(events []core.Event, prefix string) int {
	n := 0
	for _, ev := range events {
		if strings.HasPrefix(ev.Label, prefix) {
			n++
		}
	}
	return n
}

// crashThenResume crashes the victim when trigger first reports true,
// and recovers (with Resume) after the downtime.
func crashThenResume(w *xchain.World, r runner, victim *xchain.Participant, trigger func() bool) {
	w.Sim.Poll(100*sim.Millisecond, func() bool {
		if !trigger() {
			return false
		}
		victim.Crash()
		w.Sim.After(confDowntime, func() {
			victim.Recover()
			r.Resume(victim)
		})
		return true
	})
}

func TestConformanceAC3WN(t *testing.T) {
	for _, n := range []int{2, 3} {
		for _, scenario := range []string{"commit", "abort", "crash", "race", "partition", "lossy"} {
			n, scenario := n, scenario
			t.Run(fmt.Sprintf("%s-%d", scenario, n), func(t *testing.T) {
				seed := uint64(41000 + n*100)
				w, ps, g := gridWorld(t, seed, n)
				victim := ps[n-1]
				abortAfter := sim.Time(0)
				if scenario == "abort" {
					abortAfter = confAbortAt
					victim.Crash() // declines: never deploys
				}
				if scenario == "lossy" {
					lossyWorld(w)
				}
				r, err := core.New(w, core.Config{
					Graph:        g,
					Participants: ps,
					Initiator:    ps[0],
					WitnessChain: "witness",
					WitnessDepth: confDepth,
					AssetDepth:   confDepth,
					AbortAfter:   abortAfter,
				})
				if err != nil {
					t.Fatal(err)
				}
				r.Start()
				switch scenario {
				case "crash":
					crashThenResume(w, r, victim, func() bool {
						return eventCount(r.Events(), "authorize_redeem submitted") > 0
					})
				case "race":
					rogue := victim
					w.Sim.Poll(100*sim.Millisecond, func() bool {
						scw := r.SCwAddr()
						if scw.IsZero() {
							return false
						}
						_, err := rogue.Client("witness").Call(scw, contracts.FnAuthorizeRefund, nil, 0)
						return err == nil
					})
				case "partition":
					// Split the witness network the moment SCw exists:
					// the decision and its burial race across a healed
					// deep reorg. AC3WN must still settle atomically —
					// the non-blocking claim under the paper's own
					// hazard.
					splitNet(w, "witness", func() bool { return !r.SCwAddr().IsZero() })
				}
				w.RunUntil(2 * sim.Hour)
				w.StopMining()
				w.RunFor(sim.Minute)
				out := r.Grade()
				if out.AtomicityViolated() {
					t.Fatalf("AC3WN violated atomicity under %s: %+v", scenario, out.Edges)
				}
				switch scenario {
				case "commit", "crash", "partition", "lossy":
					if !out.Committed() {
						t.Fatalf("AC3WN did not commit under %s: %+v", scenario, out.Edges)
					}
				case "abort":
					if !out.Aborted() {
						t.Fatalf("AC3WN did not abort cleanly: %+v", out.Edges)
					}
				case "race":
					if !out.Committed() && !out.Aborted() {
						t.Fatalf("AC3WN race left the AC2T unsettled: %+v", out.Edges)
					}
				}
			})
		}
	}
}

// TestConformanceAC3WNBatched is the grid's batching column: the same
// scenario cells, but every decision rides the witness-side batching
// layer — a coordinator collects decisions over a 90s window, commits
// the merkle root under an m-of-n attestation, and redeem/refund on
// the asset chains carries a membership proof against the committed
// root. The claims under test: outcomes match the per-AC2T column at
// zero violations; the crash cell's victim resumes after the batch
// committed and re-derives its membership proof purely from chain
// state; the race cell's conflicting refund is absorbed first-wins;
// and the partition cell splits the witness chain mid-batch-window
// (decisions pending, commitment unpublished or unburied), forcing
// the post-reorg republish path to carry the decision set.
func TestConformanceAC3WNBatched(t *testing.T) {
	const batchWindow = 90 * sim.Second
	for _, n := range []int{2, 3} {
		for _, scenario := range []string{"commit", "abort", "crash", "race", "partition"} {
			n, scenario := n, scenario
			t.Run(fmt.Sprintf("%s-%d", scenario, n), func(t *testing.T) {
				seed := uint64(44000 + n*100)
				w, ps, g := gridWorld(t, seed, n)
				coord, err := batch.New(w, "witness", seed+99, batch.Config{
					Window: batchWindow,
					// Track published commitments past the deepest
					// minority fork a healed 8-minute split produces.
					StableDepth: 48,
				})
				if err != nil {
					t.Fatal(err)
				}
				victim := ps[n-1]
				abortAfter := sim.Time(0)
				if scenario == "abort" {
					abortAfter = confAbortAt
					victim.Crash() // declines: never deploys
				}
				r, err := core.New(w, core.Config{
					Graph:        g,
					Participants: ps,
					Initiator:    ps[0],
					WitnessChain: "witness",
					WitnessDepth: confDepth,
					AssetDepth:   confDepth,
					AbortAfter:   abortAfter,
					Batcher:      coord,
					BatchAddr:    coord.Addr(),
				})
				if err != nil {
					t.Fatal(err)
				}
				r.Start()
				switch scenario {
				case "crash":
					// The victim dies the moment the redeem decision
					// enters the batching layer and stays down far past
					// the window: the batch commits without it, and
					// Resume must rebuild the membership proof from the
					// chain's commit_batch record alone.
					crashThenResume(w, r, victim, func() bool {
						return eventCount(r.Events(), "authorize_redeem submitted") > 0
					})
				case "race":
					// The rogue races the honest decision inside the
					// batching layer: first-wins at the coordinator (and
					// whole-batch conflict rejection on-chain) keeps
					// exactly one decision per SCw.
					w.Sim.Poll(100*sim.Millisecond, func() bool {
						scw := r.SCwAddr()
						if scw.IsZero() {
							return false
						}
						coord.Submit(scw, contracts.WitnessRefundAuthorized)
						return true
					})
				case "partition":
					// Split the witness network mid-batch-window: a
					// decision is pending at the coordinator, and the
					// commitment it publishes can only reach the
					// minority fork (the coordinator's node is the one
					// isolated). The heal reorgs the commitment out and
					// the coordinator must republish it.
					splitNet(w, "witness", func() bool { return coord.Pending() > 0 })
				}
				w.RunUntil(2 * sim.Hour)
				w.StopMining()
				w.RunFor(sim.Minute)
				out := r.Grade()
				if out.AtomicityViolated() {
					t.Fatalf("batched AC3WN violated atomicity under %s: %+v", scenario, out.Edges)
				}
				switch scenario {
				case "commit", "crash", "partition":
					if !out.Committed() {
						t.Fatalf("batched AC3WN did not commit under %s: %+v", scenario, out.Edges)
					}
				case "abort":
					if !out.Aborted() {
						t.Fatalf("batched AC3WN did not abort cleanly: %+v", out.Edges)
					}
				case "race":
					if !out.Committed() && !out.Aborted() {
						t.Fatalf("batched AC3WN race left the AC2T unsettled: %+v", out.Edges)
					}
				}
				if coord.BatchesPublished == 0 {
					t.Fatalf("no batch published under %s", scenario)
				}
				if scenario == "partition" && coord.Republishes == 0 {
					t.Fatal("witness partition mid-batch-window never exercised the republish path")
				}
			})
		}
	}
}

func TestConformanceAC3TW(t *testing.T) {
	for _, n := range []int{2, 3} {
		for _, scenario := range []string{"commit", "abort", "crash", "race", "witness-crash", "partition", "lossy"} {
			n, scenario := n, scenario
			t.Run(fmt.Sprintf("%s-%d", scenario, n), func(t *testing.T) {
				seed := uint64(42000 + n*100)
				w, ps, g := gridWorld(t, seed, n)
				trent := core.NewTrent(w, seed+7, 100*sim.Millisecond)
				victim := ps[n-1]
				abortAfter := sim.Time(0)
				if scenario == "abort" {
					abortAfter = confAbortAt
					victim.Crash()
				}
				if scenario == "lossy" {
					lossyWorld(w)
				}
				r, err := core.NewTW(w, core.TWConfig{
					Graph:        g,
					Participants: ps,
					Initiator:    ps[0],
					Trent:        trent,
					ConfirmDepth: confDepth,
					AbortAfter:   abortAfter,
				})
				if err != nil {
					t.Fatal(err)
				}
				r.Start()
				switch scenario {
				case "crash":
					// A participant crashes at decision time and
					// resumes: AC3TW absorbs this like AC3WN does.
					crashThenResume(w, r, victim, func() bool {
						return eventCount(r.Events(), "redeem signature requested") > 0
					})
				case "race":
					// A rogue races the honest decision at Trent; the
					// store's at-most-one-signature guard keeps the
					// outcome atomic (here: the refund wins).
					w.Sim.Poll(100*sim.Millisecond, func() bool {
						if !r.Registered() {
							return false
						}
						trent.RequestRefund(r.MsID(), func(crypto.Signature, crypto.Purpose, error) {})
						return true
					})
				case "witness-crash":
					// Trent crashes before he can decide: the AC2T
					// blocks — the availability hazard AC3WN removes.
					w.Sim.Poll(50*sim.Millisecond, func() bool {
						if eventCount(r.Events(), "deploy confirmed") < len(g.Edges) {
							return false
						}
						trent.Crash()
						return true
					})
				case "partition":
					// Split the first asset chain once the AC2T is
					// registered at Trent: deposit confirmations and the
					// signed decision's landing stall on the minority
					// side until the heal. AC3TW stays atomic (the
					// at-most-one-signature store), and any stall is the
					// blocking hazard recorded as data.
					splitNet(w, "c0", r.Registered)
				}
				w.RunUntil(90 * sim.Minute)
				if scenario == "witness-crash" {
					out := r.Grade()
					if out.Committed() || out.AtomicityViolated() {
						t.Fatalf("unexpected outcome while Trent is down: %+v", out.Edges)
					}
					if r.Settled() {
						t.Fatal("run settled with the witness down — AC3TW should block")
					}
					// Recovery unblocks: the initiator's throttled
					// retry reaches the recovered witness.
					trent.Recover()
					w.RunUntil(w.Sim.Now() + 40*sim.Minute)
				}
				w.StopMining()
				w.RunFor(sim.Minute)
				out := r.Grade()
				if out.AtomicityViolated() {
					t.Fatalf("AC3TW violated atomicity under %s: %+v", scenario, out.Edges)
				}
				switch scenario {
				case "commit", "crash", "witness-crash", "partition", "lossy":
					// Partition/lossy: slower (the blocking tendency as
					// data), but Trent's at-most-one signature still
					// lands and the AC2T commits atomically.
					if !out.Committed() {
						t.Fatalf("AC3TW did not commit under %s: %+v", scenario, out.Edges)
					}
				case "abort", "race":
					if !out.Aborted() {
						t.Fatalf("AC3TW did not abort cleanly under %s: %+v", scenario, out.Edges)
					}
				}
			})
		}
	}
}

func TestConformanceHTLC(t *testing.T) {
	for _, n := range []int{2, 3} {
		for _, scenario := range []string{"commit", "abort", "crash", "partition", "lossy"} {
			n, scenario := n, scenario
			t.Run(fmt.Sprintf("%s-%d", scenario, n), func(t *testing.T) {
				seed := uint64(43000 + n*100)
				w, ps, g := gridWorld(t, seed, n)
				victim := ps[n-1]
				if scenario == "abort" {
					victim.Crash()
				}
				if scenario == "lossy" {
					lossyWorld(w)
				}
				r, err := swap.New(w, swap.Config{
					Graph:        g,
					Participants: ps,
					Leader:       ps[0],
					Delta:        90 * sim.Second,
					ConfirmDepth: confDepth,
				})
				if err != nil {
					t.Fatal(err)
				}
				r.Start()
				switch scenario {
				case "crash":
					// The victim crashes the moment the secret reveal
					// is submitted and recovers long after every
					// timelock: Resume re-derives s from chain state
					// and retries, but the refunds already executed —
					// the asset loss is permanent.
					crashThenResume(w, r, victim, func() bool {
						return eventCount(r.Events(), "redeem submitted") > 0
					})
				case "partition":
					// The leader's reveal lands on chain c{n-1}; the
					// downstream participant p{n-1} learns s only by
					// reading that chain through its own attached node.
					// Isolating exactly that node the moment every
					// contract is deployed keeps the reveal out of the
					// victim's side for a window that outlives the
					// Δ-scaled timelocks: the reveal confirms (and
					// redeems) on the majority fork while the victim,
					// blind until the heal, misses its own redeem
					// deadlines and the timelocked refunds fire. This
					// is HTLC's expiry-loss hazard under partition,
					// recorded as data below.
					revealChain := chain.ID(fmt.Sprintf("c%d", n-1))
					splitNetAt(w, revealChain, n-1, func() bool {
						return eventCount(r.Events(), "all contracts deployed") > 0
					})
				}
				w.RunUntil(2 * sim.Hour)
				w.StopMining()
				w.RunFor(sim.Minute)
				out := r.Grade()
				switch scenario {
				case "commit":
					if !out.Committed() || out.AtomicityViolated() {
						t.Fatalf("HTLC happy path broke: %+v", out.Edges)
					}
				case "abort":
					if !out.Aborted() || out.AtomicityViolated() {
						t.Fatalf("HTLC decline-abort broke: %+v", out.Edges)
					}
				case "crash":
					if !out.AtomicityViolated() {
						t.Fatalf("HTLC crash hazard did not reproduce: %+v", out.Edges)
					}
				case "partition":
					// The expected hazard: the timelocked refunds fire
					// on the majority fork while the revealed secret
					// redeems elsewhere — the expiry loss the paper's
					// Section 1 predicts. Deterministic at this seed.
					if !out.AtomicityViolated() {
						t.Fatalf("HTLC partition expiry-loss did not reproduce: %+v", out.Edges)
					}
				case "lossy":
					// Loss alone only delays gossip; resubmission and
					// orphan recovery get every reveal through inside
					// the timelocks at this seed — the baseline
					// survives, slower.
					if !out.Committed() || out.AtomicityViolated() {
						t.Fatalf("HTLC under loss: %+v", out.Edges)
					}
				}
			})
		}
	}
}
