// Package miner implements the mining nodes of the storage layer
// (Section 2.1): each node keeps its own view of the blockchain and a
// mempool, mines blocks at a rate proportional to its hash-power
// share, gossips blocks, resolves forks by longest chain, and serves
// the client library end-users submit transactions through.
package miner

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// Messages exchanged between nodes and clients.
type (
	// MsgTx multicasts a transaction to miners.
	MsgTx struct{ Tx *chain.Tx }
	// MsgBlock gossips a mined or adopted block.
	MsgBlock struct{ Block *chain.Block }
	// MsgGetBlock asks a peer for a block by hash (orphan recovery).
	MsgGetBlock struct{ Hash crypto.Hash }
)

// maxTxFailures bounds how often a mempool transaction may fail
// validation during block building before the node purges it.
const maxTxFailures = 25

// Node is one mining node.
type Node struct {
	ID    p2p.NodeID
	Chain *chain.Chain
	Key   *crypto.KeyPair

	sim   *sim.Sim
	net   *p2p.Network
	rng   *sim.RNG
	share float64 // fraction of total hash power

	mempool    *mempool
	orphans    map[crypto.Hash][]*chain.Block // parent hash -> waiting blocks
	alive      bool
	mining     bool
	interval   sim.Time    // network-wide mean block interval
	tipChanged *sim.Signal // notified after every canonical-tip change

	// Mined counts blocks this node mined; the throughput and attack
	// experiments read it.
	Mined int
}

// NewNode creates a node with its own chain view. share is the node's
// fraction of total network hash power; nodes with share 0 validate
// and relay but never mine.
func NewNode(s *sim.Sim, net *p2p.Network, id p2p.NodeID, c *chain.Chain, key *crypto.KeyPair, share float64) *Node {
	n := &Node{
		ID:         id,
		Chain:      c,
		Key:        key,
		sim:        s,
		net:        net,
		rng:        s.RNG().Fork(),
		share:      share,
		mempool:    newMempool(),
		orphans:    make(map[crypto.Hash][]*chain.Block),
		alive:      true,
		interval:   c.Params().BlockInterval,
		tipChanged: s.NewSignal(),
	}
	c.OnTipChange(n.onTipEvent)
	net.Register(id, n.handle)
	return n
}

// TipChanged is the node's notification signal: it fires (via the
// simulator clock, deterministically) after every canonical-tip change
// of this node's chain view. Clients and other watchers wait on it
// instead of polling the view — this is the event bus end-users'
// Watch* APIs ride on.
func (n *Node) TipChanged() *sim.Signal { return n.tipChanged }

// onTipEvent reacts to a canonical-tip change of the node's own view:
// transactions confirmed on a losing fork are re-announced (returned
// to the mempool so they get mined again — they are no longer on the
// canonical chain), and everyone waiting on the node's signal is woken.
func (n *Node) onTipEvent(ev chain.TipEvent) {
	if n.alive {
		for _, b := range ev.Disconnected {
			for _, tx := range b.Txs {
				switch tx.Kind {
				case chain.TxCoinbase, chain.TxGenesis:
					continue // fork-local; never re-announced
				}
				if _, _, onChain := n.Chain.FindTx(tx.ID()); onChain {
					continue // also included on the winning branch
				}
				n.mempool.add(tx)
			}
		}
	}
	n.tipChanged.Notify()
}

// Start begins the mining loop. Idempotent.
func (n *Node) Start() {
	if n.mining || n.share <= 0 {
		return
	}
	n.mining = true
	n.scheduleMining()
}

// scheduleMining draws the node's next block-success time from an
// exponential distribution with mean interval/share — a Poisson
// process, so the memoryless draw stays valid across tip changes.
func (n *Node) scheduleMining() {
	mean := sim.Time(float64(n.interval) / n.share)
	n.sim.After(n.rng.ExpTime(mean), func() {
		if !n.alive || !n.mining {
			return
		}
		n.mineOne()
		n.scheduleMining()
	})
}

// mineOne assembles, seals, adopts and gossips one block on the
// node's current tip. The state computed while building is handed to
// the shared executor, so the network executes the block exactly once
// — here — and every peer's adoption is a cache hit.
func (n *Node) mineOne() {
	txs := n.mempool.ordered()
	b, built, invalid := n.Chain.BuildBlock(n.Key.Addr, n.sim.Now(), txs)
	n.punishInvalid(invalid)
	b.Header.Seal(n.rng.Uint64())
	if _, err := n.Chain.AddMinedBlock(b, built); err != nil {
		// Racing our own view cannot happen in a sequential sim.
		panic(fmt.Sprintf("miner: own block rejected: %v", err))
	}
	n.Mined++
	for _, tx := range b.Txs {
		n.mempool.remove(tx.ID())
	}
	n.net.Broadcast(n.ID, MsgBlock{Block: b})
}

// punishInvalid increments failure counts and purges transactions
// that keep failing (e.g. double spends that lost their race).
func (n *Node) punishInvalid(invalid []*chain.Tx) {
	for _, tx := range invalid {
		if n.mempool.fail(tx.ID()) > maxTxFailures {
			n.mempool.remove(tx.ID())
		}
	}
}

// Crash stops the node (crash-stop): mining halts, messages are
// dropped, the mempool is lost. The chain view (persistent storage)
// survives.
func (n *Node) Crash() {
	n.alive = false
	n.mining = false
	n.mempool = newMempool()
	n.net.Crash(n.ID)
}

// Recover restarts a crashed node and its mining loop. The node
// catches up on the chain through normal gossip (orphan requests).
func (n *Node) Recover() {
	if n.alive {
		return
	}
	n.alive = true
	n.net.Recover(n.ID)
	n.Start()
}

// Alive reports whether the node is running.
func (n *Node) Alive() bool { return n.alive }

// StopMining halts block production while keeping the node alive and
// relaying (used to quiesce a network before grading experiment
// outcomes).
func (n *Node) StopMining() { n.mining = false }

// handle processes a delivered message.
func (n *Node) handle(from p2p.NodeID, payload any) {
	if !n.alive {
		return
	}
	switch m := payload.(type) {
	case MsgTx:
		n.acceptTx(m.Tx)
	case MsgBlock:
		n.acceptBlock(from, m.Block)
	case MsgGetBlock:
		if b, ok := n.Chain.Block(m.Hash); ok {
			n.net.Send(n.ID, from, MsgBlock{Block: b})
		}
	}
}

// acceptTx admits a transaction to the mempool unless it is already
// included on the canonical chain.
func (n *Node) acceptTx(tx *chain.Tx) {
	if tx == nil {
		return
	}
	id := tx.ID()
	if _, _, onChain := n.Chain.FindTx(id); onChain {
		return
	}
	n.mempool.add(tx)
}

// acceptBlock validates and adopts a block, buffering orphans and
// requesting their missing ancestors from the sender. Several orphans
// may wait on one parent (competing fork children, or gossip racing
// ahead of a catch-up), so the buffer keeps them all.
func (n *Node) acceptBlock(from p2p.NodeID, b *chain.Block) {
	if b == nil || n.Chain.HasBlock(b.Hash()) {
		return
	}
	if !n.Chain.HasBlock(b.Header.Parent) {
		h := b.Hash()
		buffered := false
		for _, o := range n.orphans[b.Header.Parent] {
			if o.Hash() == h {
				buffered = true
				break
			}
		}
		if !buffered {
			n.orphans[b.Header.Parent] = append(n.orphans[b.Header.Parent], b)
		}
		// Re-request the parent even for an already-buffered orphan: the
		// earlier MsgGetBlock may have gone to a peer that crashed before
		// answering, and this re-arrival is the only retry signal.
		n.net.Send(n.ID, from, MsgGetBlock{Hash: b.Header.Parent})
		return
	}
	oldTip := n.Chain.Tip()
	reorged, err := n.Chain.AddBlock(b)
	if err != nil {
		return // invalid block: ignore, as real nodes do
	}
	if reorged && b.Header.Parent != oldTip.Hash() {
		// Re-gossip only genuine fork switches. A plain extension was
		// already broadcast by its miner to every reachable node;
		// re-flooding it would double the network's block traffic for
		// nothing. Nodes that missed it (crashed, partitioned) catch up
		// through the orphan-request path when the next block arrives.
		n.net.Broadcast(n.ID, MsgBlock{Block: b})
	}
	// Retire included transactions from the mempool.
	for _, tx := range b.Txs {
		n.mempool.remove(tx.ID())
	}
	// Every orphan waiting for this block can now be connected.
	if children, ok := n.orphans[b.Hash()]; ok {
		delete(n.orphans, b.Hash())
		for _, child := range children {
			n.acceptBlock(from, child)
		}
	}
}

// SubmitLocal injects a transaction directly into this node's mempool
// (used by clients attached to the node).
func (n *Node) SubmitLocal(tx *chain.Tx) { n.acceptTx(tx) }

// MempoolSize reports the number of pending transactions.
func (n *Node) MempoolSize() int { return n.mempool.size() }
