package bench

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// EngineLoad measures AC2T throughput under sustained concurrent load
// — the workload regime the single-transaction experiments of Section
// 6 cannot reach. A mixed stream (commits, declines, crash-recovery,
// decision races) runs on the sharded orchestration engine at 1, 2
// and 4 shards with the same per-shard offered load; because shards
// are independent worlds executing in parallel, aggregate virtual
// throughput must scale near-linearly while atomicity violations stay
// at zero — the Section 5.2 horizontal-scalability argument measured
// under heavy traffic instead of a 24-swap batch.
func EngineLoad(seed uint64) *Result {
	const perShardTxs = 20
	t := metrics.NewTable("Engine — AC2T throughput under sustained mixed load (AC3WN)",
		"shards", "AC2Ts", "committed", "aborted", "stuck", "violations",
		"p50 latency (min)", "makespan (min)", "throughput (AC2T/hour)", "events/AC2T", "blocks-exec/AC2T",
		"peak-RSS (MiB)", "allocs/AC2T", "states-pruned")
	ok := true
	var tps1 float64
	for _, shards := range []int{1, 2, 4} {
		wl := engine.DefaultWorkload()
		wl.Txs = perShardTxs * shards
		wl.ArrivalEvery = 15 * sim.Second
		wl.Mix = engine.Mix{Commit: 5, Abort: 2, Crash: 2, Race: 1}
		e, err := engine.New(engine.Config{Seed: seed, Shards: shards, Workload: wl})
		if err != nil {
			return &Result{ID: "engine", Title: "throughput under load", Output: err.Error()}
		}
		sampler := StartMemSampler()
		agg, err := e.Run()
		mem := sampler.Stop()
		if err != nil {
			return &Result{ID: "engine", Title: "throughput under load", Output: err.Error()}
		}
		tpsHour := agg.ThroughputTPSVirtual * 3600
		allocsPerTx := 0.0
		if agg.Graded > 0 {
			allocsPerTx = float64(mem.Mallocs) / float64(agg.Graded)
		}
		t.AddRow(shards, agg.Graded, agg.Commits, agg.Aborts, agg.Stuck, agg.Violations,
			fmt.Sprintf("%.1f", float64(agg.LatencyP50Ms)/float64(sim.Minute)),
			fmt.Sprintf("%.1f", float64(agg.MakespanVirtualMs)/float64(sim.Minute)),
			fmt.Sprintf("%.0f", tpsHour),
			fmt.Sprintf("%.0f", agg.SimEventsPerTx),
			fmt.Sprintf("%.1f", agg.BlocksExecutedPerTx),
			fmt.Sprintf("%.1f", float64(mem.PeakSysBytes)/(1<<20)),
			fmt.Sprintf("%.0f", allocsPerTx),
			agg.StatesPruned)
		// The claims under test: everything settles, atomicity holds
		// under every scenario, and shards add throughput.
		if agg.Graded != wl.Txs || agg.Stuck != 0 || agg.Violations != 0 {
			ok = false
		}
		if shards == 1 {
			tps1 = agg.ThroughputTPSVirtual
		}
		if shards == 4 && agg.ThroughputTPSVirtual < 2.5*tps1 {
			ok = false // parallel worlds must scale well past 2x
		}
	}
	t.Note("mixed scenario stream: commits, declines, crash-recovery victims, adversarial decision races")
	t.Note("per-shard offered load held constant; shards are independent worlds, so throughput adds")
	t.Note("events/AC2T: simulator events per settled transaction — the notification bus's cost metric")
	t.Note("blocks-exec/AC2T: ApplyBlock runs per settled transaction — the shared executor's cost metric (≈ blocks mined, not N× for N-node networks)")
	t.Note("peak-RSS / allocs/AC2T: sampled process memory (machine-dependent, see bench.MemSampler); states-pruned: executor state-GC work (deterministic)")

	hz, hzOK := hazardTable(seed)
	adv, advOK := adversityTable(seed)
	wit, witOK := witnessTable(seed)
	return &Result{
		ID:     "engine",
		Title:  "sharded engine sustains concurrent AC2T load without atomicity violations",
		Output: t.String() + "\n" + hz + "\n" + adv + "\n" + wit,
		OK:     ok && hzOK && advOK && witOK,
	}
}

// witnessTable is the decision-batching before/after: the identical
// 1,000-AC2T default workload on 8 shards, once with per-AC2T SCw
// decision transactions (the paper's Algorithm 2/3 as written) and
// once with the witness quorum collecting decisions for a 3-minute
// window and publishing one merkle-committed, threshold-attested
// commit_batch transaction per window. Outcomes must not move —
// identical commit/abort counts, nothing stuck, zero violations —
// while witness-chain traffic per committed AC2T collapses: batching
// must cut witness transactions per commit at least 4× and bytes per
// commit measurably. This is the perf claim of record; CI gates on the
// same numbers via ac3engine -batchwindow.
func witnessTable(seed uint64) (string, bool) {
	const txs = 1000
	t := metrics.NewTable("Engine — witness-chain decision batching: per-AC2T decisions vs one commit_batch per window (1,000 AC2Ts, 8 shards)",
		"batching", "AC2Ts", "committed", "aborted", "stuck", "violations",
		"witness decision txs", "batches", "republishes",
		"witness txs/commit", "witness bytes/commit")
	ok := true
	var offAgg, onAgg *engine.Aggregate
	for _, batched := range []bool{false, true} {
		wl := engine.DefaultWorkload()
		wl.Txs = txs
		if batched {
			wl.BatchWindow = 3 * sim.Minute
		}
		e, err := engine.New(engine.Config{Seed: seed, Shards: 8, Workload: wl})
		if err != nil {
			return err.Error(), false
		}
		agg, err := e.Run()
		if err != nil {
			return err.Error(), false
		}
		label := "off (per-AC2T)"
		if batched {
			label = "on (3 min window)"
			onAgg = agg
		} else {
			offAgg = agg
		}
		t.AddRow(label, agg.Graded, agg.Commits, agg.Aborts, agg.Stuck, agg.Violations,
			agg.WitnessDecisionTxs, agg.BatchesPublished, agg.BatchRepublishes,
			fmt.Sprintf("%.3f", agg.WitnessTxsPerCommit),
			fmt.Sprintf("%.1f", agg.WitnessBytesPerCommit))
		if agg.Graded != txs || agg.Stuck != 0 || agg.Violations != 0 {
			ok = false
		}
	}
	// Batching must be outcome-invisible: the same AC2Ts settle the
	// same way, only the witness-chain traffic shape changes.
	if offAgg == nil || onAgg == nil {
		return t.String(), false
	}
	if onAgg.Commits != offAgg.Commits || onAgg.Aborts != offAgg.Aborts {
		ok = false
	}
	// Traffic actually moved columns: unbatched pays one decision tx
	// per AC2T and publishes no batches; batched pays none per-AC2T.
	if offAgg.WitnessDecisionTxs == 0 || offAgg.BatchesPublished != 0 {
		ok = false
	}
	if onAgg.WitnessDecisionTxs != 0 || onAgg.BatchesPublished == 0 {
		ok = false
	}
	// The headline: >= 4x fewer witness txs per committed AC2T, and
	// fewer bytes, with the batch column folded into both ratios.
	if onAgg.WitnessTxsPerCommit*4 > offAgg.WitnessTxsPerCommit {
		ok = false
	}
	if onAgg.WitnessBytesPerCommit >= offAgg.WitnessBytesPerCommit {
		ok = false
	}
	drop := 0.0
	if onAgg.WitnessTxsPerCommit > 0 {
		drop = offAgg.WitnessTxsPerCommit / onAgg.WitnessTxsPerCommit
	}
	t.Note("witness txs per committed AC2T drop: %.1fx (gate: >= 4x); commit/abort counts identical across modes", drop)
	t.Note("witness txs/commit = (per-AC2T decision txs + commit_batch txs) / commits; bytes/commit is the byte analog")
	t.Note("batched decisions settle via merkle membership proofs against the committed root — per-AC2T work leaves the witness chain")
	t.Note("republishes: batch commitments reorged off the canonical witness chain and re-multicast before StableDepth")
	return t.String(), ok
}

// adversityTable runs an identical hostile-network workload —
// decision-window partitions, sustained gossip loss, geo-skewed links
// — against all three protocols and reports how each one's guarantees
// survive. This is the regime the paper's Section 1 motivates
// (Robinson 2020 and Wang et al. 2020 both show cross-chain results
// hinge on propagation delay and partition behavior): AC3WN must stay
// atomic through every adversity class, AC3TW stays atomic but slows
// (its blocking tendency as data), and HTLC's fixed timelocks lose
// assets when the network stops cooperating. The forks/reorg-depth/
// drops columns prove the runs actually left the friendly-network
// regime.
func adversityTable(seed uint64) (string, bool) {
	t := metrics.NewTable("Engine — network adversity: partitions, gossip loss, geo links (identical workload)",
		"protocol", "AC2Ts", "committed", "aborted", "stuck", "violations",
		"partition viol", "lossy viol", "geo viol", "forks", "max reorg depth", "msgs dropped")
	ok := true
	for _, proto := range []engine.Protocol{engine.ProtoAC3WN, engine.ProtoAC3TW, engine.ProtoHTLC} {
		wl := engine.DefaultWorkload()
		wl.Protocol = proto
		wl.Txs = 40
		wl.ArrivalEvery = 15 * sim.Second
		wl.Mix = engine.Mix{Commit: 2, Abort: 1, Partition: 2, Lossy: 2, Geo: 2}
		e, err := engine.New(engine.Config{Seed: seed + 2, Shards: 2, Workload: wl})
		if err != nil {
			return err.Error(), false
		}
		agg, err := e.Run()
		if err != nil {
			return err.Error(), false
		}
		part := agg.ByScenario[engine.ScenarioPartition]
		lossy := agg.ByScenario[engine.ScenarioLossy]
		geo := agg.ByScenario[engine.ScenarioGeo]
		t.AddRow(string(proto), agg.Graded, agg.Commits, agg.Aborts, agg.Stuck, agg.Violations,
			part.Violations, lossy.Violations, geo.Violations,
			agg.ForksObserved, agg.MaxReorgDepth, agg.MsgsDropped)
		if agg.Graded != wl.Txs {
			ok = false
		}
		if agg.MsgsDropped == 0 || agg.ForksObserved == 0 {
			ok = false // the adversity never bit: the table proves nothing
		}
		switch proto {
		case engine.ProtoAC3WN, engine.ProtoAC3TW:
			if agg.Violations != 0 {
				ok = false // both witness schemes must stay atomic
			}
		case engine.ProtoHTLC:
			if agg.Violations == 0 {
				ok = false // fixed timelocks must lose assets under adversity
			}
		}
	}
	t.Note("identical mixed workload: commits, declines, decision-window partitions, sustained gossip loss, geo-skewed links")
	t.Note("partitions split one miner from the rest of a decision chain for 6 virtual minutes; loss drops 25%% of gossip; geo degrades asset chains to intercontinental links")
	t.Note("forks / max reorg depth / msgs dropped: proof the runs left the friendly-network regime")
	return t.String(), ok
}

// hazardTable runs the identical mixed workload against all three
// protocols and reports each one's hazard profile — the Section 7
// comparison reproduced from one table. The crash scenario targets
// each protocol's critical failure point at decision time: AC3WN's
// victim participant resumes and redeems (no hazard), AC3TW's
// centralized witness stays down and the AC2T blocks (stuck), and
// HTLC's victim recovers after its timelocks expired (asset loss).
func hazardTable(seed uint64) (string, bool) {
	t := metrics.NewTable("Engine — per-protocol hazards under the identical crash+race mixed workload",
		"protocol", "AC2Ts", "committed", "aborted", "stuck", "violations",
		"crash stuck", "crash violations", "downgraded draws")
	ok := true
	for _, proto := range []engine.Protocol{engine.ProtoAC3WN, engine.ProtoAC3TW, engine.ProtoHTLC} {
		wl := engine.DefaultWorkload()
		wl.Protocol = proto
		wl.Txs = 40
		wl.ArrivalEvery = 15 * sim.Second
		wl.TxTimeout = 30 * sim.Minute
		wl.Mix = engine.Mix{Commit: 5, Abort: 2, Crash: 2, Race: 1}
		e, err := engine.New(engine.Config{Seed: seed + 1, Shards: 2, Workload: wl})
		if err != nil {
			return err.Error(), false
		}
		agg, err := e.Run()
		if err != nil {
			return err.Error(), false
		}
		crash := agg.ByScenario[engine.ScenarioCrash]
		t.AddRow(string(proto), agg.Graded, agg.Commits, agg.Aborts, agg.Stuck, agg.Violations,
			crash.Stuck, crash.Violations, agg.ScenariosDowngraded)
		// The paper's claims, checked hard per protocol.
		switch proto {
		case engine.ProtoAC3WN:
			if agg.Violations != 0 || agg.Stuck != 0 {
				ok = false // all-or-nothing and non-blocking, every scenario
			}
		case engine.ProtoAC3TW:
			if agg.Violations != 0 || crash.Stuck == 0 {
				ok = false // atomic, but must block under witness crash
			}
		case engine.ProtoHTLC:
			if crash.Violations == 0 {
				ok = false // the baseline must lose assets under crash
			}
		}
		if agg.Graded != wl.Txs {
			ok = false
		}
	}
	t.Note("crash stuck / crash violations: hazard counts within the crash scenario — AC3TW blocking and HTLC asset loss as data")
	t.Note("downgraded draws: scenario draws the protocol cannot express, run as commit (HTLC race only)")
	return t.String(), ok
}
