// Golden fixture for the maporder analyzer. Loaded by the tests as
// "repro/internal/motest" (in scope for the determinism contract).
package motest

import (
	"fmt"
	"sort"
	"strings"
)

func badWrite(m map[string]int, w *strings.Builder) {
	for k := range m {
		w.WriteString(k) // want `byte-stream write strings\.WriteString inside range over map`
	}
}

func badPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map`
	}
}

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to "keys" inside range over map without a later sort`
	}
	return keys
}

func sortedAfterLoopIsLegal(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func perIterationSliceIsLegal(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var widened []int
		widened = append(widened, vs...)
		widened = append(widened, 0)
		total += len(widened)
	}
	return total
}

func orderIndependentFoldIsLegal(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func annotatedLoop(m map[string]bool) []string {
	var all []string
	for k := range m { //ac3:maporder fixture: the range-line directive covers the whole loop body
		all = append(all, k)
	}
	return all
}
