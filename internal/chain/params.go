// Package chain implements the open-blockchain storage layer of
// Section 2: a tamper-proof chain of blocks holding a UTXO asset
// ledger (Figures 2 and 3's merge/split transaction model) and smart
// contracts (via the vm package), with real proof-of-work headers,
// fork creation and longest-chain resolution, and per-block reorg-safe
// state.
//
// Each simulated network node owns its own *Chain view; blocks are
// immutable and shared between views, while tips, canonical indexes
// and state caches are per view. Because the whole system runs on a
// sequential discrete-event simulator (see internal/sim), no locking
// is needed.
package chain

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vm"
)

// ID names a blockchain (e.g. "bitcoin-sim"). AC2T edges carry the ID
// of the chain their sub-transaction executes on.
type ID string

// Params configures one simulated blockchain.
type Params struct {
	ID   ID
	Name string

	// BlockInterval is the mean inter-block time of the whole network
	// (exponentially distributed, split across miners by hash power).
	BlockInterval sim.Time

	// DifficultyBits is the number of leading zero bits a valid header
	// hash must have. It provides *verifiable* work for SPV evidence;
	// mining rate in the simulation is governed by BlockInterval, not
	// by grinding speed (see DESIGN.md decision 3).
	DifficultyBits int

	// MaxBlockTxs caps transactions per block (excluding the
	// coinbase); together with BlockInterval it calibrates the chain's
	// throughput in tps for the Table 1 experiments.
	MaxBlockTxs int

	// ConfirmDepth is the default stability depth d: a block buried
	// under d blocks is considered stable (≥ 6 in Bitcoin, per the
	// paper).
	ConfirmDepth int

	// BlockReward is the coinbase subsidy minted to the miner of each
	// block ("new bitcoins are generated ... through mining").
	BlockReward vm.Amount

	// PruneDepth is the executor's state-GC horizon: per-block ledger
	// states buried deeper than PruneDepth below *every* live view's
	// tip are dropped and re-derived by replay on the rare deep read.
	// 0 disables pruning (retain every state forever, the pre-GC
	// behavior). When enabled it must clear ConfirmDepth, or stability
	// reads at depth d would replay on every call.
	PruneDepth int

	// RetireDepth is the executor's history-GC horizon: whole blocks
	// (bodies, headers, and their index entries) buried deeper than
	// RetireDepth below every live view's tip are released outright,
	// after the canonical state at the new floor is pinned as the
	// replay base — the pruned-full-node model. Retired history is
	// gone: FindTx misses, StateAt returns false, and a reorg past the
	// floor is rejected, so RetireDepth must exceed any plausible
	// reorg AND the block-count lifetime of a transaction (watch,
	// resubmit, and evidence windows all read recent history only).
	// 0 disables retirement; enabling it requires PruneDepth > 0 and
	// RetireDepth > PruneDepth.
	RetireDepth int
}

// Validate reports configuration errors early.
func (p Params) Validate() error {
	switch {
	case p.ID == "":
		return fmt.Errorf("chain: params missing ID")
	case p.BlockInterval <= 0:
		return fmt.Errorf("chain %s: BlockInterval must be positive", p.ID)
	case p.DifficultyBits < 0 || p.DifficultyBits > 32:
		return fmt.Errorf("chain %s: DifficultyBits %d out of [0,32]", p.ID, p.DifficultyBits)
	case p.MaxBlockTxs <= 0:
		return fmt.Errorf("chain %s: MaxBlockTxs must be positive", p.ID)
	case p.ConfirmDepth < 0:
		return fmt.Errorf("chain %s: ConfirmDepth must be non-negative", p.ID)
	case p.PruneDepth < 0:
		return fmt.Errorf("chain %s: PruneDepth must be non-negative (0 disables pruning)", p.ID)
	case p.PruneDepth > 0 && p.PruneDepth <= p.ConfirmDepth:
		return fmt.Errorf("chain %s: PruneDepth %d must exceed ConfirmDepth %d", p.ID, p.PruneDepth, p.ConfirmDepth)
	case p.RetireDepth < 0:
		return fmt.Errorf("chain %s: RetireDepth must be non-negative (0 disables history retirement)", p.ID)
	case p.RetireDepth > 0 && p.PruneDepth == 0:
		return fmt.Errorf("chain %s: RetireDepth %d requires state pruning (PruneDepth > 0)", p.ID, p.RetireDepth)
	case p.RetireDepth > 0 && p.RetireDepth <= p.PruneDepth:
		return fmt.Errorf("chain %s: RetireDepth %d must exceed PruneDepth %d", p.ID, p.RetireDepth, p.PruneDepth)
	}
	return nil
}

// DefaultParams returns sensible simulation defaults: a 10-second
// block interval (virtual), 12 bits of work, 6-deep confirmation.
func DefaultParams(id ID) Params {
	return Params{
		ID:             id,
		Name:           string(id),
		BlockInterval:  10 * sim.Second,
		DifficultyBits: 12,
		MaxBlockTxs:    1000,
		ConfirmDepth:   6,
		BlockReward:    50,
	}
}
