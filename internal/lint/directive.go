package lint

import (
	"go/ast"
	"go/token"
	"os"
	"strings"

	"repro/internal/lint/analysis"
)

// The escape hatch: `//ac3:<analyzer> <justification>` suppresses one
// analyzer's findings. Placement rules, mirroring //nolint ergonomics:
//
//   - trailing on a line: covers that line;
//   - alone on a line: covers that line and the next;
//   - in the doc comment of a declaration: covers the whole
//     declaration.
//
// The justification is mandatory. An annotation without one is itself
// a finding — the whole point is that every exception states why it
// is safe at the site where the next reader meets it.
const directivePrefix = "//ac3:"

// directiveSet indexes the //ac3: annotations of one package.
type directiveSet struct {
	pass *analysis.Pass
	// byLine maps analyzer name → file:line → justification.
	byLine map[string]map[lineKey]string
	// missing records directives with an empty justification.
	missing []token.Pos
}

type lineKey struct {
	file string
	line int
}

// collectDirectives scans the package's comments once.
func collectDirectives(pass *analysis.Pass) *directiveSet {
	ds := &directiveSet{pass: pass, byLine: make(map[string]map[lineKey]string)}
	for _, f := range pass.Files {
		var src []byte
		filename := pass.Fset.Position(f.Pos()).Filename
		if b, err := pass.ReadFile(filename); err == nil {
			src = b
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				ds.add(c, src)
			}
		}
		// Doc-comment directives cover their whole declaration.
		for _, decl := range f.Decls {
			var doc *ast.CommentGroup
			switch d := decl.(type) {
			case *ast.FuncDecl:
				doc = d.Doc
			case *ast.GenDecl:
				doc = d.Doc
			}
			if doc == nil {
				continue
			}
			for _, c := range doc.List {
				name, just, ok := parseDirective(c.Text)
				if !ok || just == "" {
					continue
				}
				start := pass.Fset.Position(decl.Pos()).Line
				end := pass.Fset.Position(decl.End()).Line
				for line := start; line <= end; line++ {
					ds.set(name, filename, line, just)
				}
			}
		}
	}
	return ds
}

func (ds *directiveSet) add(c *ast.Comment, src []byte) {
	name, just, ok := parseDirective(c.Text)
	if !ok {
		return
	}
	pos := ds.pass.Fset.Position(c.Pos())
	if just == "" {
		// Only the analyzer the annotation names reports it, so a bare
		// directive yields exactly one finding.
		if name == ds.pass.Analyzer.Name {
			ds.missing = append(ds.missing, c.Pos())
		}
		return
	}
	ds.set(name, pos.Filename, pos.Line, just)
	// A directive alone on its line annotates the line below it.
	if onlyCommentOnLine(src, pos) {
		ds.set(name, pos.Filename, pos.Line+1, just)
	}
}

func (ds *directiveSet) set(name, file string, line int, just string) {
	m := ds.byLine[name]
	if m == nil {
		m = make(map[lineKey]string)
		ds.byLine[name] = m
	}
	m[lineKey{file, line}] = just
}

// allowed reports whether an //ac3:<name> annotation covers pos.
func (ds *directiveSet) allowed(name string, pos token.Pos) bool {
	p := ds.pass.Fset.Position(pos)
	_, ok := ds.byLine[name][lineKey{p.Filename, p.Line}]
	return ok
}

// reportMissingJustifications emits a finding for every directive that
// names this pass's analyzer but has no justification text.
func (ds *directiveSet) reportMissingJustifications() {
	for _, pos := range ds.missing {
		ds.pass.Reportf(pos, "//ac3: annotation requires a justification (\"//ac3:%s <why this site is safe>\")", ds.pass.Analyzer.Name)
	}
}

// parseDirective splits "//ac3:name justification". The bool reports
// whether this is an ac3 directive at all. A nested "//" ends the
// justification, so trailing markers (such as the golden tests'
// `// want` specs) are not mistaken for justification text.
func parseDirective(text string) (name, justification string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, justification, _ = strings.Cut(rest, " ")
	if name == "" {
		return "", "", false
	}
	if i := strings.Index(justification, "//"); i >= 0 {
		justification = justification[:i]
	}
	return name, strings.TrimSpace(justification), true
}

// onlyCommentOnLine reports whether the comment at pos is the first
// non-whitespace content of its line.
func onlyCommentOnLine(src []byte, pos token.Position) bool {
	if src == nil || pos.Offset > len(src) {
		return false
	}
	lineStart := pos.Offset - (pos.Column - 1)
	if lineStart < 0 {
		return false
	}
	return strings.TrimSpace(string(src[lineStart:pos.Offset])) == ""
}

// readFileCached returns a ReadFile that caches per package run.
func readFileCached() func(string) ([]byte, error) {
	cache := make(map[string][]byte)
	return func(name string) ([]byte, error) {
		if b, ok := cache[name]; ok {
			return b, nil
		}
		b, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		cache[name] = b
		return b, nil
	}
}
