package contracts

import (
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/vm"
)

// ctxFor builds a minimal execution context for constructor tests.
func ctxFor(sender crypto.Address, value vm.Amount) *vm.Ctx {
	return vm.NewCtx("test", crypto.Address{7}, 3, 1000, vm.Msg{Sender: sender, Value: value}, value)
}

func validHeaderBytes(t *testing.T) []byte {
	t.Helper()
	params := chain.DefaultParams("any")
	params.DifficultyBits = 4
	c, err := chain.NewChain(params, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	return c.Genesis().Header.Encode()
}

func TestPermissionlessInitValidation(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	hdr := validHeaderBytes(t)
	base := PermissionlessParams{
		Recipient:         bob.Addr,
		WitnessChain:      "witness",
		WitnessCheckpoint: hdr,
		SCw:               crypto.Address{9},
		Depth:             3,
	}
	cases := []struct {
		name   string
		mutate func(p *PermissionlessParams)
		value  vm.Amount
		want   string
	}{
		{"zero recipient", func(p *PermissionlessParams) { p.Recipient = crypto.ZeroAddress }, 10, "zero recipient"},
		{"zero SCw", func(p *PermissionlessParams) { p.SCw = crypto.ZeroAddress }, 10, "zero witness contract"},
		{"negative depth", func(p *PermissionlessParams) { p.Depth = -1 }, 10, "negative depth"},
		{"corrupt checkpoint", func(p *PermissionlessParams) { p.WitnessCheckpoint = []byte("junk") }, 10, "checkpoint"},
		{"no asset", func(p *PermissionlessParams) {}, 0, "no asset"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p := base
			c.mutate(&p)
			sc := &PermissionlessSC{}
			err := sc.Init(ctxFor(alice.Addr, c.value), vm.EncodeGob(p))
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Fatalf("err = %v, want substring %q", err, c.want)
			}
		})
	}
	// The unmutated params with value succeed.
	sc := &PermissionlessSC{}
	if err := sc.Init(ctxFor(alice.Addr, 10), vm.EncodeGob(base)); err != nil {
		t.Fatalf("valid init failed: %v", err)
	}
	if sc.State != StatePublished || sc.Sender != alice.Addr || sc.Asset != 10 {
		t.Fatalf("constructor state wrong: %+v", sc)
	}
	// Garbage params rejected.
	if err := (&PermissionlessSC{}).Init(ctxFor(alice.Addr, 10), []byte("x")); err == nil {
		t.Fatal("garbage params accepted")
	}
	// Unknown function rejected.
	if err := sc.Call(ctxFor(alice.Addr, 0), "nope", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
}

func TestWitnessInitValidation(t *testing.T) {
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"btc", "eth"}, alice, bob)
	g := mustTwoParty(t, alice, bob)
	ms := g.Sign(alice, bob)
	good := WitnessParams{
		Edges: g.Edges, Timestamp: g.Timestamp, Multisig: *ms,
		Checkpoints: []ChainCheckpoint{
			{Chain: "btc", Header: w.chains["btc"].Genesis().Header.Encode(), EvidenceDepth: 1},
			{Chain: "eth", Header: w.chains["eth"].Genesis().Header.Encode(), EvidenceDepth: 1},
		},
		WitnessDepth: 2,
	}
	mustFail := func(name string, mutate func(p *WitnessParams)) {
		t.Helper()
		p := good
		// Deep-copy the slices the mutations touch.
		p.Checkpoints = append([]ChainCheckpoint(nil), good.Checkpoints...)
		mutate(&p)
		sc := &WitnessSC{}
		if err := sc.Init(ctxFor(alice.Addr, 0), vm.EncodeGob(p)); err == nil {
			t.Fatalf("%s: accepted", name)
		}
	}
	mustFail("negative witness depth", func(p *WitnessParams) { p.WitnessDepth = -1 })
	mustFail("negative evidence depth", func(p *WitnessParams) { p.Checkpoints[0].EvidenceDepth = -1 })
	mustFail("corrupt checkpoint header", func(p *WitnessParams) { p.Checkpoints[0].Header = []byte("junk") })
	mustFail("no edges", func(p *WitnessParams) { p.Edges = nil })

	sc := &WitnessSC{}
	if err := sc.Init(ctxFor(alice.Addr, 0), vm.EncodeGob(good)); err != nil {
		t.Fatalf("valid witness init failed: %v", err)
	}
	if sc.State != WitnessPublished || len(sc.Participants) != 2 {
		t.Fatalf("constructor state wrong: %+v", sc)
	}
	if err := sc.Call(ctxFor(alice.Addr, 0), "bogus", nil); err == nil {
		t.Fatal("unknown function accepted")
	}
}

// mustTwoParty builds the standard two-party graph for validation
// tests.
func mustTwoParty(t *testing.T, alice, bob *crypto.KeyPair) *graph.Graph {
	t.Helper()
	g, err := graph.TwoParty(1, alice.Addr, bob.Addr, 10, "btc", 20, "eth")
	if err != nil {
		t.Fatal(err)
	}
	return g
}
