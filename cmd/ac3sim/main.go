// Command ac3sim runs one configurable atomic cross-chain transaction
// end to end on freshly simulated blockchains and prints the
// protocol timeline and final outcome — a small laboratory for
// watching AC3WN (or the HTLC baseline) work, including under crash
// failures.
//
// Usage:
//
//	ac3sim [-protocol ac3wn|ac3tw|htlc] [-parties N] [-seed N]
//	       [-crash victim] [-recover]
//
// -crash makes the last participant crash the moment the commit
// decision is being pushed (the Section 1 hazard); -recover brings it
// back an hour later. Watch the baseline lose assets and AC3WN
// recover them.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/swap"
	"repro/internal/xchain"
)

func main() {
	protocol := flag.String("protocol", "ac3wn", "protocol: ac3wn|ac3tw|htlc")
	parties := flag.Int("parties", 2, "number of participants (ring AC2T)")
	seed := flag.Uint64("seed", 7, "simulation seed")
	crash := flag.Bool("crash", false, "crash the last participant at the decision point")
	recoverVictim := flag.Bool("recover", false, "recover the crashed participant after one virtual hour")
	flag.Parse()

	if *parties < 2 {
		fmt.Fprintln(os.Stderr, "need at least 2 parties")
		os.Exit(2)
	}

	b := xchain.NewBuilder(*seed)
	ps := make([]*xchain.Participant, *parties)
	for i := range ps {
		ps[i] = b.Participant(fmt.Sprintf("p%d", i))
	}
	var ids []chain.ID
	for i := 0; i < *parties; i++ {
		id := chain.ID(fmt.Sprintf("chain-%d", i))
		ids = append(ids, id)
		b.Chain(xchain.DefaultChainSpec(id))
	}
	b.Chain(xchain.DefaultChainSpec("witness"))
	edges := make([]graph.Edge, *parties)
	for i := range ps {
		b.Fund(ps[i], ids[i], 1_000_000)
		edges[i] = graph.Edge{From: ps[i].Addr(), To: ps[(i+1)%*parties].Addr(), Asset: 10_000, Chain: ids[i]}
	}
	w, err := b.Build()
	fatal(err)
	g, err := graph.New(int64(*seed), edges...)
	fatal(err)

	victim := ps[len(ps)-1]
	fmt.Printf("AC2T: %s over %d chains, protocol %s\n\n", g, *parties, *protocol)

	switch *protocol {
	case "ac3wn":
		r, err := core.New(w, core.Config{
			Graph:        g,
			Participants: ps,
			Initiator:    ps[0],
			WitnessChain: "witness",
			WitnessDepth: 3,
			AssetDepth:   3,
		})
		fatal(err)
		r.Start()
		if *crash {
			armCrash(w, victim, func() bool {
				for _, ev := range r.Events() {
					if len(ev.Label) > 16 && ev.Label[:16] == "authorize_redeem" {
						return true
					}
				}
				return false
			})
		}
		w.RunUntil(2 * sim.Hour)
		if *crash && *recoverVictim {
			fmt.Printf("--- recovering %s after an hour of downtime ---\n", victim.Name)
			victim.Recover()
			r.Resume(victim)
			w.RunUntil(w.Sim.Now() + time1h)
		}
		w.StopMining()
		w.RunFor(sim.Minute)
		printEvents := r.Events()
		for _, ev := range printEvents {
			fmt.Printf("t=%8.1fs  %s\n", float64(ev.At)/1000, label(ev.Label, ev.Edge))
		}
		report(r.Grade())
	case "ac3tw":
		trent := core.NewTrent(w, *seed+1, 100*sim.Millisecond)
		r, err := core.NewTW(w, core.TWConfig{
			Graph:        g,
			Participants: ps,
			Initiator:    ps[0],
			Trent:        trent,
			ConfirmDepth: 3,
		})
		fatal(err)
		r.Start()
		w.RunUntil(2 * sim.Hour)
		w.StopMining()
		w.RunFor(sim.Minute)
		for _, ev := range r.Events() {
			fmt.Printf("t=%8.1fs  %s\n", float64(ev.At)/1000, label(ev.Label, ev.Edge))
		}
		report(r.Grade())
	case "htlc":
		r, err := swap.New(w, swap.Config{
			Graph:        g,
			Participants: ps,
			Leader:       ps[0],
			Delta:        60 * sim.Second,
			ConfirmDepth: 3,
		})
		fatal(err)
		r.Start()
		if *crash {
			armCrash(w, victim, func() bool {
				for _, ev := range r.Events() {
					if ev.Label == "redeem submitted" {
						return true
					}
				}
				return false
			})
		}
		w.RunUntil(3 * sim.Hour)
		if *crash && *recoverVictim {
			fmt.Printf("--- recovering %s (resumes, but the timelocks expired) ---\n", victim.Name)
			victim.Recover()
			r.Resume(victim)
			w.RunUntil(w.Sim.Now() + time1h)
		}
		w.StopMining()
		w.RunFor(sim.Minute)
		for _, ev := range r.Events() {
			fmt.Printf("t=%8.1fs  %s\n", float64(ev.At)/1000, label(ev.Label, ev.Edge))
		}
		report(r.Grade())
	default:
		fmt.Fprintf(os.Stderr, "unknown protocol %q\n", *protocol)
		os.Exit(2)
	}
}

const time1h = 1 * sim.Hour

func armCrash(w *xchain.World, victim *xchain.Participant, cond func() bool) {
	w.Sim.Poll(100*sim.Millisecond, func() bool {
		if cond() {
			fmt.Printf("--- crashing %s ---\n", victim.Name)
			victim.Crash()
			return true
		}
		return false
	})
}

func label(s string, edge int) string {
	if edge >= 0 {
		return fmt.Sprintf("[edge %d] %s", edge, s)
	}
	return s
}

func report(out *xchain.Outcome) {
	fmt.Println()
	fmt.Printf("outcome: committed=%v aborted=%v ATOMICITY-VIOLATED=%v\n",
		out.Committed(), out.Aborted(), out.AtomicityViolated())
	for i, e := range out.Edges {
		fmt.Printf("  edge %d (%d on %s): deployed=%v state=%s\n",
			i, e.Edge.Asset, e.Edge.Chain, e.Deployed, e.State)
	}
	fmt.Printf("latency: %.1f virtual minutes, %d deploys + %d calls on-chain\n",
		float64(out.Latency())/60000, out.Deploys, out.Calls)
}

func fatal(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
