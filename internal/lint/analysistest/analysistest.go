// Package analysistest runs ac3lint analyzers against golden testdata
// packages, mirroring golang.org/x/tools/go/analysis/analysistest:
// expected diagnostics are declared inline in the fixture source as
// `// want "regexp"` (or backquoted) comments on the line where the
// diagnostic must appear. Multiple patterns on one line expect
// multiple diagnostics on that line.
//
// Because scope rules key off import paths, fixtures are loaded under
// a caller-chosen synthetic import path (e.g. a shardworld fixture
// loads as "repro/internal/chain"); the same directory can be loaded
// twice under different paths to test in-scope and out-of-scope
// behavior of one analyzer.
package analysistest

import (
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/analysis"
	"repro/internal/lint/load"
)

// sharedLoader caches the type-checked stdlib (and repro dependency)
// closure across Run calls in one test binary. Tests in this repo do
// not use t.Parallel, and the loader is test-only, so no locking.
var sharedLoader = load.NewLoader("")

// Run loads dir as a package named importPath, applies a, and checks
// the findings against the fixture's want comments.
func Run(t *testing.T, dir, importPath string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := sharedLoader.LoadDir(dir, importPath)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	findings, err := lint.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	wants, err := collectWants(pkg)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if !wants.match(f.File, f.Line, f.Message) {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s:%d: expected finding matching %q, got none", w.file, w.line, w.re)
	}
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

type wantSet struct {
	wants []*want
}

// match consumes the first unmatched want on (file, line) whose
// pattern matches msg.
func (ws *wantSet) match(file string, line int, msg string) bool {
	for _, w := range ws.wants {
		if !w.matched && w.file == file && w.line == line && w.re.MatchString(msg) {
			w.matched = true
			return true
		}
	}
	return false
}

func (ws *wantSet) unmatched() []*want {
	var out []*want
	for _, w := range ws.wants {
		if !w.matched {
			out = append(out, w)
		}
	}
	return out
}

// collectWants scans every fixture line for `want` specs inside
// comments. A spec is the word "want" followed by one or more
// double-quoted or backquoted regexps.
func collectWants(pkg *load.Package) (*wantSet, error) {
	ws := &wantSet{}
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Pos()).Filename
		if seen[name] {
			continue
		}
		seen[name] = true
		src, err := readSource(name)
		if err != nil {
			return nil, err
		}
		for i, lineText := range strings.Split(src, "\n") {
			c := strings.Index(lineText, "//")
			if c < 0 {
				continue
			}
			comment := lineText[c:]
			w := strings.Index(comment, "want ")
			if w < 0 {
				continue
			}
			pats, err := parsePatterns(comment[w+len("want "):])
			if err != nil {
				return nil, fmt.Errorf("%s:%d: %v", name, i+1, err)
			}
			for _, p := range pats {
				re, err := regexp.Compile(p)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", name, i+1, p, err)
				}
				ws.wants = append(ws.wants, &want{file: name, line: i + 1, re: re})
			}
		}
	}
	return ws, nil
}

func readSource(name string) (string, error) {
	b, err := os.ReadFile(name)
	return string(b), err
}

// parsePatterns extracts consecutive quoted strings from s.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		switch s[0] {
		case '"':
			end := -1
			for i := 1; i < len(s); i++ {
				if s[i] == '\\' {
					i++
					continue
				}
				if s[i] == '"' {
					end = i
					break
				}
			}
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern")
			}
			p, err := strconv.Unquote(s[:end+1])
			if err != nil {
				return nil, err
			}
			out = append(out, p)
			s = strings.TrimSpace(s[end+1:])
		case '`':
			end := strings.IndexByte(s[1:], '`')
			if end < 0 {
				return nil, fmt.Errorf("unterminated want pattern")
			}
			out = append(out, s[1:end+1])
			s = strings.TrimSpace(s[end+2:])
		default:
			if len(out) == 0 {
				return nil, fmt.Errorf("want requires a quoted pattern")
			}
			return out, nil
		}
	}
	return out, nil
}
