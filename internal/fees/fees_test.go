package fees

import (
	"math"
	"testing"
)

func TestHerlihyVsAC3WNOperationCounts(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16, 32} {
		h := HerlihyCost(ScheduleETH300, n)
		a := AC3WNCost(ScheduleETH300, n)
		if h.Deploys != n || h.Calls != n {
			t.Fatalf("n=%d: herlihy ops %d/%d", n, h.Deploys, h.Calls)
		}
		if a.Deploys != n+1 || a.Calls != n+1 {
			t.Fatalf("n=%d: ac3wn ops %d/%d", n, a.Deploys, a.Calls)
		}
		// Relative overhead is exactly 1/N.
		rel := (a.USD - h.USD) / h.USD
		if math.Abs(rel-Overhead(n)) > 1e-12 {
			t.Fatalf("n=%d: overhead %v, want %v", n, rel, Overhead(n))
		}
	}
}

func TestPaperDollarFigures(t *testing.T) {
	// Section 6.2: deploying an SCw-like contract costs ≈$4 at
	// $300/ETH and ≈$2 at $140/ETH.
	if got := ScheduleETH300.Price(1, 0); got != 4 {
		t.Fatalf("deploy at $300/ETH = $%v, want $4", got)
	}
	if got := ScheduleETH140.Price(1, 0); got != 2 {
		t.Fatalf("deploy at $140/ETH = $%v, want $2", got)
	}
	// The conclusion's "$25 combined per AC2T" order of magnitude:
	// a 2-edge AC2T under AC3WN costs (N+1)(fd+ffc) = 3·$8 = $24 at
	// the $300 rate.
	a := AC3WNCost(ScheduleETH300, 2)
	if a.USD != 24 {
		t.Fatalf("two-party AC3WN cost = $%v, want $24", a.USD)
	}
}

func TestOverheadEdgeCases(t *testing.T) {
	if Overhead(0) != 0 {
		t.Fatal("overhead(0) should be 0")
	}
	if Overhead(1) != 1 {
		t.Fatal("overhead(1) should be 1")
	}
}

func TestMeasuredCostAndString(t *testing.T) {
	c := MeasuredCost(ScheduleETH140, "AC3WN", 3, 3)
	if c.USD != 12 {
		t.Fatalf("measured = $%v", c.USD)
	}
	if c.String() == "" {
		t.Fatal("empty string rendering")
	}
}
