package swap

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// delta for tests: ConfirmDepth=3 blocks of 10s plus margin.
const testDelta = 60 * sim.Second

// twoPartyWorld builds the Figure 4 scenario on two chains.
func twoPartyWorld(t *testing.T, seed uint64) (*xchain.World, *Run, *xchain.Participant, *xchain.Participant) {
	t.Helper()
	b := xchain.NewBuilder(seed)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	b.Chain(xchain.DefaultChainSpec("bitcoin"))
	b.Chain(xchain.DefaultChainSpec("ethereum"))
	b.Fund(alice, "bitcoin", 1_000_000)
	b.Fund(bob, "ethereum", 1_000_000)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.TwoParty(1, alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(w, Config{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Leader:       alice,
		Delta:        testDelta,
		ConfirmDepth: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w, r, alice, bob
}

func TestNolanTwoPartyHappyPath(t *testing.T) {
	w, r, alice, bob := twoPartyWorld(t, 100)
	r.Start()
	w.RunUntil(40 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if !out.Committed() {
		t.Fatalf("swap did not commit: %+v", out.Edges)
	}
	if out.AtomicityViolated() {
		t.Fatal("atomicity violated on happy path")
	}
	// Assets actually moved: bob holds the bitcoin-side asset, alice
	// the ethereum-side asset.
	btcView := w.View("bitcoin")
	var bobBTC uint64
	for _, o := range btcView.TipState().UTXOsOwnedBy(bob.Addr()) {
		bobBTC += o.Value
	}
	if bobBTC != 40_000 {
		t.Fatalf("bob owns %d on bitcoin, want 40000", bobBTC)
	}
	ethView := w.View("ethereum")
	var aliceETH uint64
	for _, o := range ethView.TipState().UTXOsOwnedBy(alice.Addr()) {
		aliceETH += o.Value
	}
	if aliceETH != 90_000 {
		t.Fatalf("alice owns %d on ethereum, want 90000", aliceETH)
	}
	if out.Deploys != 2 || out.Calls != 2 {
		t.Fatalf("ops: %d deploys %d calls, want 2/2", out.Deploys, out.Calls)
	}
}

func TestSwapSequentialDeployment(t *testing.T) {
	_, r, _, _ := twoPartyWorld(t, 101)
	w := r.w
	r.Start()
	w.RunUntil(40 * sim.Minute)

	// Bob's deploy (edge 1, layer 1) must be submitted only after
	// alice's (edge 0, layer 0) confirmed — the sequential structure.
	var aliceConfirmed, bobSubmitted sim.Time
	for _, ev := range r.Events() {
		if ev.Edge == 0 && ev.Label == "deploy confirmed" && aliceConfirmed == 0 {
			aliceConfirmed = ev.At
		}
		if ev.Edge == 1 && ev.Label == "deploy submitted" && bobSubmitted == 0 {
			bobSubmitted = ev.At
		}
	}
	if aliceConfirmed == 0 || bobSubmitted == 0 {
		t.Fatalf("missing events: aliceConfirmed=%d bobSubmitted=%d", aliceConfirmed, bobSubmitted)
	}
	if bobSubmitted < aliceConfirmed {
		t.Fatalf("bob deployed at %d before alice confirmed at %d", bobSubmitted, aliceConfirmed)
	}
}

func TestSwapAbortsWhenCounterpartyNeverDeploys(t *testing.T) {
	w, r, alice, bob := twoPartyWorld(t, 102)
	// Bob crashes immediately: he never deploys SC2. Alice's SC1
	// times out and refunds.
	bob.Crash()
	r.Start()
	w.RunUntil(60 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if out.Committed() {
		t.Fatal("swap committed with a crashed counterparty")
	}
	if out.AtomicityViolated() {
		t.Fatal("mixed outcome: refund path must not violate atomicity")
	}
	// Alice got her asset back.
	var aliceBTC uint64
	for _, o := range w.View("bitcoin").TipState().UTXOsOwnedBy(alice.Addr()) {
		aliceBTC += o.Value
	}
	if aliceBTC != 1_000_000 {
		t.Fatalf("alice owns %d on bitcoin after refund, want 1000000", aliceBTC)
	}
}

func TestSwapCrashAfterRevealViolatesAtomicity(t *testing.T) {
	// THE Section 1 scenario: the swap proceeds normally; Bob crashes
	// right after Alice redeems SC2 (revealing s) but before he
	// redeems SC1. SC1's timelock expires, Alice refunds it: Alice
	// holds both assets, Bob lost his — an all-or-nothing violation.
	w, r, _, bob := twoPartyWorld(t, 103)
	r.Start()

	// Crash bob the moment alice submits the redeem of edge 1 (his
	// outgoing ethereum contract): the reveal is in flight, bob never
	// reacts to it. The 100ms poll fires long before the ~10s block
	// that would let bob observe the secret.
	sawRedeem := false
	w.Sim.Poll(100*sim.Millisecond, func() bool {
		for _, ev := range r.Events() {
			if ev.Edge == 1 && ev.Label == "redeem submitted" {
				sawRedeem = true
				bob.Crash()
				return true
			}
		}
		return false
	})

	w.RunUntil(2 * sim.Hour)
	w.StopMining()
	w.RunFor(sim.Minute)

	if !sawRedeem {
		t.Fatal("alice never redeemed; scenario did not unfold")
	}
	out := r.Grade()
	if !out.AtomicityViolated() {
		states := []contracts.SwapState{}
		for _, e := range out.Edges {
			states = append(states, e.State)
		}
		t.Fatalf("expected atomicity violation, got states %v", states)
	}
}

func TestSwapCrashedBobRecoversTooLate(t *testing.T) {
	// Variation: bob recovers after the timelock and the runtime
	// resumes his reconciler — it re-derives the revealed secret from
	// chain state and retries his redeem, but the refund already
	// executed. Recovery does not help; the asset is gone. (AC3WN's
	// core test shows the contrast: recovery there redeems
	// successfully.)
	w, r, alice, bob := twoPartyWorld(t, 104)
	r.Start()
	w.Sim.Poll(100*sim.Millisecond, func() bool {
		for _, ev := range r.Events() {
			if ev.Edge == 1 && ev.Label == "redeem submitted" {
				bob.Crash()
				return true
			}
		}
		return false
	})
	w.RunUntil(2 * sim.Hour) // timelocks expire; alice refunds SC1
	bob.Recover()
	r.Resume(bob)
	w.RunUntil(w.Sim.Now() + 20*sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if !out.AtomicityViolated() {
		t.Fatal("late recovery should not rescue the baseline protocol")
	}
	// Alice ended up with both assets.
	var aliceBTC uint64
	for _, o := range w.View("bitcoin").TipState().UTXOsOwnedBy(alice.Addr()) {
		aliceBTC += o.Value
	}
	if aliceBTC != 1_000_000 {
		t.Fatalf("alice btc = %d, want her full refund", aliceBTC)
	}
}

func TestHerlihyRingThreeParties(t *testing.T) {
	b := xchain.NewBuilder(105)
	ps := []*xchain.Participant{b.Participant("p0"), b.Participant("p1"), b.Participant("p2")}
	ids := []chain.ID{"c0", "c1", "c2"}
	for _, id := range ids {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	for i, p := range ps {
		b.Fund(p, ids[i], 1_000_000)
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Build the ring manually: p[i] sends on chain i to p[i+1].
	rg, err := graph.New(1,
		graph.Edge{From: ps[0].Addr(), To: ps[1].Addr(), Asset: 10_000, Chain: "c0"},
		graph.Edge{From: ps[1].Addr(), To: ps[2].Addr(), Asset: 10_000, Chain: "c1"},
		graph.Edge{From: ps[2].Addr(), To: ps[0].Addr(), Asset: 10_000, Chain: "c2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(w, Config{
		Graph:        rg,
		Participants: ps,
		Leader:       ps[0],
		Delta:        testDelta,
		ConfirmDepth: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	w.RunUntil(90 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if !out.Committed() {
		t.Fatalf("3-ring did not commit: %+v", out.Edges)
	}
	if out.Latency() <= 0 {
		t.Fatal("non-positive latency")
	}
}

func TestLatencyScalesWithDiameter(t *testing.T) {
	// The Figure 10 shape at small scale: a 4-ring takes measurably
	// longer than a 2-party swap under the same Δ.
	run := func(n int, seed uint64) sim.Time {
		b := xchain.NewBuilder(seed)
		var ps []*xchain.Participant
		var ids []chain.ID
		for i := 0; i < n; i++ {
			ps = append(ps, b.Participant("p"))
			id := chain.ID(rune('a'+i) + 0) // distinct ids
			id = chain.ID("chain-" + string(rune('a'+i)))
			ids = append(ids, id)
			b.Chain(xchain.DefaultChainSpec(id))
		}
		var edges []graph.Edge
		for i := 0; i < n; i++ {
			b.Fund(ps[i], ids[i], 1_000_000)
			edges = append(edges, graph.Edge{
				From: ps[i].Addr(), To: ps[(i+1)%n].Addr(), Asset: 1_000, Chain: ids[i],
			})
		}
		w, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		g, err := graph.New(1, edges...)
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(w, Config{
			Graph: g, Participants: ps, Leader: ps[0],
			Delta: testDelta, ConfirmDepth: 3,
		})
		if err != nil {
			t.Fatal(err)
		}
		r.Start()
		w.RunUntil(6 * sim.Hour)
		w.StopMining()
		w.RunFor(sim.Minute)
		out := r.Grade()
		if !out.Committed() {
			t.Fatalf("n=%d did not commit", n)
		}
		return out.Latency()
	}
	l2 := run(2, 200)
	l4 := run(4, 201)
	if l4 <= l2 {
		t.Fatalf("latency(4-ring)=%d <= latency(2-party)=%d; want linear growth", l4, l2)
	}
	// The ratio should be roughly Diam=4 vs Diam=2, i.e. ≈2; accept
	// generous slack for confirmation noise.
	if ratio := float64(l4) / float64(l2); ratio < 1.4 {
		t.Fatalf("latency ratio %.2f too flat for a sequential protocol", ratio)
	}
}

func TestConfigValidation(t *testing.T) {
	b := xchain.NewBuilder(1)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	b.Chain(xchain.DefaultChainSpec("c1"))
	b.Chain(xchain.DefaultChainSpec("c2"))
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 1, "c1", 2, "c2")
	if _, err := New(w, Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(w, Config{Graph: g, Participants: []*xchain.Participant{alice}, Leader: alice, Delta: testDelta}); err == nil {
		t.Fatal("missing participant object accepted")
	}
	if _, err := New(w, Config{Graph: g, Participants: []*xchain.Participant{alice, bob}, Leader: alice, Delta: 0}); err == nil {
		t.Fatal("zero delta accepted")
	}
	// Disconnected graphs are rejected (Section 5.3).
	ks := []*xchain.Participant{alice, bob, b.Participant("x"), b.Participant("y")}
	dg, err := graph.Disconnected(2, [][2]crypto.Address{
		{ks[0].Addr(), ks[1].Addr()},
		{ks[2].Addr(), ks[3].Addr()},
	}, 5, []chain.ID{"c1", "c2"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(w, Config{Graph: dg, Participants: ks, Leader: alice, Delta: testDelta}); err == nil {
		t.Fatal("disconnected graph accepted by single-leader baseline")
	}
}
