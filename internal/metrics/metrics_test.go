package metrics

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("Table 1: throughput", "Blockchain", "tps")
	tbl.AddRow("Bitcoin", 7)
	tbl.AddRow("Ethereum", 25)
	tbl.Note("source: %s", "O'Keeffe [24]")
	s := tbl.String()
	for _, want := range []string{"Table 1", "Blockchain", "Bitcoin", "25", "note: source"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendering missing %q:\n%s", want, s)
		}
	}
	// Columns aligned: the header and first row start identically.
	lines := strings.Split(s, "\n")
	if len(lines) < 4 {
		t.Fatal("too few lines")
	}
	hdrIdx := strings.Index(lines[1], "tps")
	rowIdx := strings.Index(lines[3], "7")
	if hdrIdx < 0 || rowIdx < 0 || rowIdx < hdrIdx {
		t.Fatalf("columns misaligned:\n%s", s)
	}
}

func TestFloatTrimming(t *testing.T) {
	tbl := NewTable("", "v")
	tbl.AddRow(2.5000)
	tbl.AddRow(3.0)
	tbl.AddRow(0.1234567)
	var cells []string
	for _, line := range strings.Split(tbl.String(), "\n") {
		cells = append(cells, strings.TrimSpace(line))
	}
	joined := strings.Join(cells, "|")
	if !strings.Contains(joined, "|2.5|") || !strings.Contains(joined, "|3|") || !strings.Contains(joined, "|0.1235|") {
		t.Fatalf("float trimming wrong: %s", joined)
	}
}

func TestFigureRendering(t *testing.T) {
	f := NewFigure("Figure 10", "Diam(D)", "latency (Δ)")
	h := f.AddSeries("Herlihy")
	a := f.AddSeries("AC3WN")
	for d := 2; d <= 4; d++ {
		h.Add(float64(d), float64(2*d))
		a.Add(float64(d), 4)
	}
	s := f.String()
	for _, want := range []string{"Figure 10", "Herlihy", "AC3WN", "Diam(D)", "8", "4"} {
		if !strings.Contains(s, want) {
			t.Fatalf("figure missing %q:\n%s", want, s)
		}
	}
}

func TestFigureHandlesMissingPoints(t *testing.T) {
	f := NewFigure("f", "x", "y")
	a := f.AddSeries("a")
	b := f.AddSeries("b")
	a.Add(1, 10)
	a.Add(2, 20)
	b.Add(2, 200) // b has no x=1 sample
	s := f.String()
	if !strings.Contains(s, "200") || !strings.Contains(s, "10") {
		t.Fatalf("missing data handling wrong:\n%s", s)
	}
}

func TestTimelineRendering(t *testing.T) {
	tl := &Timeline{Title: "Figure 9", Unit: "Δ"}
	tl.Add(0, "SCw deployed")
	tl.Add(1, "contracts deployed (parallel)")
	tl.Add(4, "all redeemed")
	s := tl.String()
	if !strings.Contains(s, "SCw deployed") || !strings.Contains(s, "t=") {
		t.Fatalf("timeline rendering wrong:\n%s", s)
	}
}
