// Scope fixture: code that violates every rule at once, with no
// expectations. The tests load this directory under out-of-scope
// import paths (a cmd/* path and the lint suite's own subtree) and
// assert that every analyzer stays silent — scope is keyed on import
// path, not on what the code does.
package scopetest

import (
	"math/rand"
	"sync"
	"time"
)

var registry = map[string]int{}

func init() {
	registry["x"] = rand.Intn(10)
}

func outside(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	go func() {}()
	var mu sync.Mutex
	mu.Lock()
	time.Sleep(time.Millisecond)
	mu.Unlock()
	return keys
}
