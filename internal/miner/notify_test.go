package miner

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/vm"
)

// forkView builds a chain view sharing the network's genesis identity,
// for hand-crafting competing fork blocks in tests.
func forkView(t *testing.T, net *Network, user *crypto.KeyPair) *chain.Chain {
	t.Helper()
	c, err := chain.NewChain(net.Params, nil, chain.GenesisAlloc{user.Addr: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if c.Genesis().Hash() != net.Node(0).Chain.Genesis().Hash() {
		t.Fatal("fork view disagrees on genesis")
	}
	return c
}

// TestReorgReannouncesTxAndWatchRecovers is the reorg-notification
// path end to end: a transaction confirmed on a fork that loses the
// canonical race must be re-announced (returned to the mempool) when
// the tip switches, the Reorgs counter must tick, and a depth watch
// armed on the transaction must hold off through the reorg and fire
// only once the transaction is buried on the winning chain.
func TestReorgReannouncesTxAndWatchRecovers(t *testing.T) {
	s, net, user := testNet(t, 21, 1, p2p.LatencyModel{Base: 10})
	node := net.Node(0)
	alice := NewClient(net, 0, user)
	rng := s.RNG().Fork()
	bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	tx, err := alice.Transfer(bob.Addr, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	var confirmedAt sim.Time
	if err := alice.WhenTxAtDepth(tx, 2, func(crypto.Hash) { confirmedAt = s.Now() }); err != nil {
		t.Fatal(err)
	}

	s.RunUntil(5 * sim.Second) // multicast lands in the mempool
	if node.MempoolSize() != 1 {
		t.Fatalf("mempool has %d txs, want 1", node.MempoolSize())
	}

	// The node mines the tx into block a1.
	node.mineOne()
	s.RunUntil(s.Now() + sim.Second)
	if node.MempoolSize() != 0 {
		t.Fatal("mined tx still in mempool")
	}
	if _, ok := node.Chain.TxDepth(tx.ID()); !ok {
		t.Fatal("tx not canonical after mining")
	}
	if confirmedAt != 0 {
		t.Fatal("depth-2 watch fired at depth 0")
	}

	// A competing empty branch genesis <- b1 <- b2 arrives and wins.
	fv := forkView(t, net, user)
	forger := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	for i := 0; i < 2; i++ {
		b, _, _ := fv.BuildBlock(forger.Addr, s.Now(), nil)
		b.Header.Seal(rng.Uint64())
		if _, err := fv.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if _, err := node.Chain.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(s.Now() + sim.Second)

	if node.Chain.Reorgs != 1 {
		t.Fatalf("Reorgs = %d, want 1", node.Chain.Reorgs)
	}
	if _, ok := node.Chain.TxDepth(tx.ID()); ok {
		t.Fatal("tx still canonical after its fork lost")
	}
	// The re-announce: the disconnected tx is back in the mempool.
	if node.MempoolSize() != 1 {
		t.Fatalf("mempool has %d txs after reorg, want 1 (tx re-announced)", node.MempoolSize())
	}
	if confirmedAt != 0 {
		t.Fatal("watch fired for a tx that lost its fork")
	}

	// Normal mining resumes on the winning branch; the re-announced tx
	// gets re-mined and buried, and only then does the watch fire.
	node.Start()
	s.RunUntil(s.Now() + 10*sim.Minute)
	if confirmedAt == 0 {
		t.Fatal("watch never fired after the tx was re-mined")
	}
	d, ok := node.Chain.TxDepth(tx.ID())
	if !ok || d < 2 {
		t.Fatalf("tx depth %d (ok=%v) after watch fired, want >= 2", d, ok)
	}
}

func TestClosedClientDropsAndRefusesWatches(t *testing.T) {
	s, net, user := testNet(t, 22, 1, p2p.LatencyModel{Base: 10})
	net.Start()
	alice := NewClient(net, 0, user)
	rng := s.RNG().Fork()
	bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	tx, err := alice.Transfer(bob.Addr, 100)
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	if err := alice.WhenTxAtDepth(tx, 1, func(crypto.Hash) { fired = true }); err != nil {
		t.Fatal(err)
	}

	alice.Close()
	// The prior bug class: watches (and their fallback pollers)
	// registered after a Close must be dead on arrival, even across a
	// Restart attempt.
	if err := alice.WhenTxAtDepth(tx, 1, func(crypto.Hash) { fired = true }); err != ErrClosed {
		t.Fatalf("watch on closed client: err = %v, want ErrClosed", err)
	}
	alice.Restart()
	if !alice.Halted() || !alice.Closed() {
		t.Fatal("Restart revived a closed client")
	}
	if err := alice.WhenTxAtDepth(tx, 1, func(crypto.Hash) { fired = true }); err != ErrClosed {
		t.Fatalf("watch after failed Restart: err = %v, want ErrClosed", err)
	}
	if err := alice.WhenContract(crypto.Address{1}, 0, func(c vm.Contract) bool { return true }, func() { fired = true }); err != ErrClosed {
		t.Fatalf("contract watch on closed client: err = %v, want ErrClosed", err)
	}
	alice.Close() // idempotent

	s.RunUntil(30 * sim.Minute)
	if fired {
		t.Fatal("watch on a closed client fired")
	}
	if alice.Resubmits != 0 {
		t.Fatalf("closed client resubmitted %d times (fallback poller leaked)", alice.Resubmits)
	}
}

func TestHaltCancelsWatchesRegisteredAfterRestart(t *testing.T) {
	s, net, user := testNet(t, 23, 1, p2p.LatencyModel{Base: 10})
	net.Start()
	alice := NewClient(net, 0, user)
	rng := s.RNG().Fork()
	bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	tx, err := alice.Transfer(bob.Addr, 100)
	if err != nil {
		t.Fatal(err)
	}
	alice.Halt()
	alice.Restart()
	fired := false
	if err := alice.WhenTxAtDepth(tx, 1, func(crypto.Hash) { fired = true }); err != nil {
		t.Fatal(err)
	}
	alice.Halt() // must cancel the watch registered after the prior Halt
	s.RunUntil(30 * sim.Minute)
	if fired {
		t.Fatal("watch registered after Restart survived the next Halt")
	}
	if alice.Resubmits != 0 {
		t.Fatalf("halted client resubmitted %d times", alice.Resubmits)
	}
}

// TestSubscriptionSurvivesUntilCanceled covers the persistent
// subscription API reconcilers are built on.
func TestSubscriptionSurvivesUntilCanceled(t *testing.T) {
	s, net, _ := testNet(t, 24, 1, p2p.LatencyModel{Base: 10})
	net.Start()
	alice := NewClient(net, 0, crypto.MustGenerateKey(crypto.NewRandReader(s.RNG().Fork().Uint64)))

	fires := 0
	sub, err := alice.OnTipChange(func() { fires++ })
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(2 * sim.Minute)
	if fires == 0 {
		t.Fatal("subscription never fired while blocks were mined")
	}
	if !sub.Active() {
		t.Fatal("live subscription reports inactive")
	}
	at := fires
	sub.Cancel()
	sub.Cancel() // idempotent
	s.RunUntil(s.Now() + 2*sim.Minute)
	if fires != at {
		t.Fatalf("subscription fired %d more times after Cancel", fires-at)
	}
}
