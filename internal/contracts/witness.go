package contracts

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/spv"
	"repro/internal/vm"
)

// ChainCheckpoint anchors evidence verification for one validated
// blockchain: the header of a stable block (Section 4.3) and the
// confirmation depth evidence from that chain must demonstrate.
type ChainCheckpoint struct {
	Chain chain.ID
	// Header is the encoded stable-block header.
	Header []byte
	// EvidenceDepth is the burial depth deploy-evidence from this
	// chain must prove.
	EvidenceDepth int
}

// WitnessParams are the constructor parameters of Algorithm 3's
// coordinator contract SCw.
type WitnessParams struct {
	// Edges and Timestamp reconstruct the AC2T graph D.
	Edges     []graph.Edge
	Timestamp int64
	// Multisig is ms(D): every participant's signature over the graph
	// digest. The constructor rejects incomplete multisignatures.
	Multisig crypto.MultiSig
	// Checkpoints holds one stable-block anchor per asset chain,
	// sorted by chain id (a deterministic encoding keeps deployment
	// transactions reproducible).
	Checkpoints []ChainCheckpoint
	// WitnessDepth is the depth d at which participants will accept
	// SCw state-change evidence; asset contracts must be deployed
	// with the same value (VerifyContracts checks it).
	WitnessDepth int
}

// WitnessSC is the AC2T coordinator of Algorithm 3, deployed on the
// witness network. Its state is the commit/abort decision: miners
// only record a transition P→RDauth after verifying evidence that
// every asset contract in the AC2T is published and correct, and only
// one of the two transitions can ever occur on a given chain.
type WitnessSC struct {
	Participants []crypto.Address
	Edges        []graph.Edge
	Timestamp    int64
	MSID         crypto.Hash // order-independent id of ms(D)
	Checkpoints  []ChainCheckpoint
	WitnessDepth int
	State        WitnessState
}

// Type implements vm.Contract.
func (w *WitnessSC) Type() string { return TypeWitness }

// Init implements Algorithm 3's constructor: store the participants'
// identities and the multisigned graph after verifying it.
func (w *WitnessSC) Init(ctx *vm.Ctx, params []byte) error {
	var p WitnessParams
	if err := vm.DecodeGob(params, &p); err != nil {
		return fmt.Errorf("witness: params: %w", err)
	}
	g, err := graph.New(p.Timestamp, p.Edges...)
	if err != nil {
		return fmt.Errorf("witness: graph: %w", err)
	}
	if !g.VerifyMultisig(&p.Multisig) {
		return errors.New("witness: multisignature incomplete or invalid")
	}
	if p.WitnessDepth < 0 {
		return errors.New("witness: negative witness depth")
	}
	// Every asset chain needs a checkpoint anchor.
	anchored := make(map[chain.ID]bool, len(p.Checkpoints))
	for _, cp := range p.Checkpoints {
		if _, err := chain.DecodeHeader(cp.Header); err != nil {
			return fmt.Errorf("witness: checkpoint for %s: %w", cp.Chain, err)
		}
		if cp.EvidenceDepth < 0 {
			return fmt.Errorf("witness: negative evidence depth for %s", cp.Chain)
		}
		anchored[cp.Chain] = true
	}
	for _, id := range g.Chains() {
		if !anchored[id] {
			return fmt.Errorf("witness: no checkpoint for chain %s", id)
		}
	}
	w.Participants = g.Participants
	w.Edges = g.Edges
	w.Timestamp = p.Timestamp
	w.MSID = p.Multisig.ID()
	w.Checkpoints = p.Checkpoints
	w.WitnessDepth = p.WitnessDepth
	w.State = WitnessPublished
	return nil
}

// Call dispatches the two state transitions. Any other transition is
// structurally impossible — the mutual-exclusion property Lemma 5.1
// relies on.
func (w *WitnessSC) Call(ctx *vm.Ctx, fn string, args []byte) error {
	switch fn {
	case FnAuthorizeRedeem:
		if w.State != WitnessPublished {
			return fmt.Errorf("witness: authorize_redeem in state %s", w.State)
		}
		if err := w.verifyContracts(ctx, args); err != nil {
			return fmt.Errorf("witness: %w", err)
		}
		w.State = WitnessRedeemAuthorized
		return nil
	case FnAuthorizeRefund:
		if w.State != WitnessPublished {
			return fmt.Errorf("witness: authorize_refund in state %s", w.State)
		}
		w.State = WitnessRefundAuthorized
		return nil
	default:
		return vm.ErrUnknownFunction(TypeWitness, fn)
	}
}

// checkpointFor finds the anchor for a chain.
func (w *WitnessSC) checkpointFor(id chain.ID) (*chain.Header, int, error) {
	for _, cp := range w.Checkpoints {
		if cp.Chain == id {
			h, err := chain.DecodeHeader(cp.Header)
			if err != nil {
				return nil, 0, err
			}
			return h, cp.EvidenceDepth, nil
		}
	}
	return nil, 0, fmt.Errorf("no checkpoint for chain %s", id)
}

// verifyContracts is Algorithm 3's VerifyContracts: the evidence must
// prove, for every edge e ∈ D.E, that a matching PermissionlessSC is
// published on e.BC — right asset, right sender and recipient, and
// redemption/refund conditioned on *this* SCw at the agreed depth.
func (w *WitnessSC) verifyContracts(ctx *vm.Ctx, args []byte) error {
	evs, err := DecodeEvidenceList(args)
	if err != nil {
		return err
	}
	if len(evs) != len(w.Edges) {
		return fmt.Errorf("evidence for %d contracts, need %d", len(evs), len(w.Edges))
	}
	selfAddr := ctx.Self
	for i, e := range w.Edges {
		ev, err := spv.Decode(evs[i])
		if err != nil {
			return fmt.Errorf("edge %d: %w", i, err)
		}
		cp, depth, err := w.checkpointFor(e.Chain)
		if err != nil {
			return fmt.Errorf("edge %d: %w", i, err)
		}
		if ev.ChainID != e.Chain {
			return fmt.Errorf("edge %d: evidence from chain %s, want %s", i, ev.ChainID, e.Chain)
		}
		tx, err := ev.Verify(cp, depth)
		if err != nil {
			return fmt.Errorf("edge %d: %w", i, err)
		}
		if err := matchDeployToEdge(tx, e, selfAddr, string(ctx.ChainID), w.WitnessDepth); err != nil {
			return fmt.Errorf("edge %d: %w", i, err)
		}
	}
	return nil
}

// matchDeployToEdge checks a proven deployment transaction against
// its edge specification.
func matchDeployToEdge(tx *chain.Tx, e graph.Edge, scw crypto.Address, witnessChain string, witnessDepth int) error {
	if tx.Kind != chain.TxDeploy || tx.ContractType != TypePermissionless {
		return fmt.Errorf("not a %s deployment", TypePermissionless)
	}
	if tx.Value != e.Asset {
		return fmt.Errorf("locks %d, edge specifies %d", tx.Value, e.Asset)
	}
	if tx.Sig.Signer() != e.From {
		return fmt.Errorf("deployed by %s, edge source is %s", tx.Sig.Signer(), e.From)
	}
	var p PermissionlessParams
	if err := vm.DecodeGob(tx.Params, &p); err != nil {
		return fmt.Errorf("constructor params: %w", err)
	}
	switch {
	case p.Recipient != e.To:
		return fmt.Errorf("recipient %s, edge specifies %s", p.Recipient, e.To)
	case p.SCw != scw:
		return errors.New("conditioned on a different witness contract")
	case string(p.WitnessChain) != witnessChain:
		return fmt.Errorf("conditioned on witness chain %s, want %s", p.WitnessChain, witnessChain)
	case p.Depth != witnessDepth:
		return fmt.Errorf("uses witness depth %d, agreed %d", p.Depth, witnessDepth)
	}
	return nil
}

// Clone implements vm.Contract.
func (w *WitnessSC) Clone() vm.Contract {
	cp := *w
	cp.Participants = append([]crypto.Address(nil), w.Participants...)
	cp.Edges = append([]graph.Edge(nil), w.Edges...)
	cp.Checkpoints = append([]ChainCheckpoint(nil), w.Checkpoints...)
	return &cp
}

// EncodeEvidenceList packs per-edge SPV evidence encodings into one
// call argument.
func EncodeEvidenceList(evs [][]byte) []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(evs)))
	buf.Write(u32[:])
	for _, ev := range evs {
		binary.BigEndian.PutUint32(u32[:], uint32(len(ev)))
		buf.Write(u32[:])
		buf.Write(ev)
	}
	return buf.Bytes()
}

// DecodeEvidenceList reverses EncodeEvidenceList.
func DecodeEvidenceList(b []byte) ([][]byte, error) {
	if len(b) < 4 {
		return nil, errors.New("evidence list: truncated")
	}
	n := binary.BigEndian.Uint32(b[:4])
	b = b[4:]
	if int(n) > len(b) {
		return nil, fmt.Errorf("evidence list: implausible count %d", n)
	}
	out := make([][]byte, 0, n)
	for i := uint32(0); i < n; i++ {
		if len(b) < 4 {
			return nil, errors.New("evidence list: truncated item header")
		}
		l := binary.BigEndian.Uint32(b[:4])
		b = b[4:]
		if uint32(len(b)) < l {
			return nil, errors.New("evidence list: truncated item")
		}
		out = append(out, append([]byte(nil), b[:l]...))
		b = b[l:]
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("evidence list: %d trailing bytes", len(b))
	}
	return out, nil
}
