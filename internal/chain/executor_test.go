package chain

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// execEnv builds one shared executor and n replica views over it.
func execEnv(t *testing.T, n int) (*Executor, []*Chain, *crypto.KeyPair) {
	t.Helper()
	rng := sim.NewRNG(77)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	params := DefaultParams("testnet")
	params.DifficultyBits = 8
	exec, err := NewExecutor(params, nil, GenesisAlloc{key.Addr: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	views := make([]*Chain, n)
	for i := range views {
		views[i] = exec.NewView()
	}
	return exec, views, key
}

// mineOn builds, seals, and adopts one block on view v via the
// mined-block path (the build is the execution).
func mineOn(t *testing.T, v *Chain, miner crypto.Address, at sim.Time, txs ...*Tx) *Block {
	t.Helper()
	b, built, invalid := v.BuildBlock(miner, at, txs)
	if len(invalid) != 0 {
		t.Fatalf("BuildBlock rejected %d txs", len(invalid))
	}
	b.Header.Seal(uint64(at))
	if _, err := v.AddMinedBlock(b, built); err != nil {
		t.Fatalf("AddMinedBlock: %v", err)
	}
	return b
}

// TestSharedExecutorDivergentViews drives two views of one executor
// onto different forks and back together: tips diverge per view while
// every block executes exactly once network-wide, and replaying a
// fork into the other view is pure cache hits.
func TestSharedExecutorDivergentViews(t *testing.T) {
	exec, views, key := execEnv(t, 2)
	v1, v2 := views[0], views[1]
	rng := sim.NewRNG(78)
	m1 := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	m2 := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	// Fork A: one block on v1. Fork B: two blocks on v2.
	a1 := mineOn(t, v1, m1.Addr, 10)
	b1 := mineOn(t, v2, m2.Addr, 20)
	b2 := mineOn(t, v2, m2.Addr, 30)

	if v1.Tip().Hash() != a1.Hash() || v2.Tip().Hash() != b2.Hash() {
		t.Fatal("views do not hold their own tips")
	}
	if v1.HasBlock(b1.Hash()) || v2.HasBlock(a1.Hash()) {
		t.Fatal("view sees a block it never accepted")
	}
	st := exec.Stats()
	if st.Executed != 4 { // genesis + a1 + b1 + b2
		t.Fatalf("Executed = %d, want 4", st.Executed)
	}
	if st.Hits != 0 {
		t.Fatalf("Hits = %d before any replay, want 0", st.Hits)
	}

	// Replay fork B into v1: both adds must be cache hits, and v1 must
	// reorg onto the longer fork while v2 stays untouched.
	if _, err := v1.AddBlock(b1); err != nil {
		t.Fatalf("replay b1: %v", err)
	}
	reorged, err := v1.AddBlock(b2)
	if err != nil || !reorged {
		t.Fatalf("replay b2: reorged=%v err=%v", reorged, err)
	}
	if v1.Reorgs != 1 || v2.Reorgs != 0 {
		t.Fatalf("Reorgs = %d/%d, want 1/0", v1.Reorgs, v2.Reorgs)
	}
	st = exec.Stats()
	if st.Executed != 4 || st.Hits != 2 {
		t.Fatalf("after replay: Executed=%d Hits=%d, want 4/2", st.Executed, st.Hits)
	}

	// Both views now agree on the canonical chain and literally share
	// the tip state object — one execution, one state, N readers.
	if v1.Tip().Hash() != v2.Tip().Hash() {
		t.Fatal("views disagree after replay")
	}
	if v1.TipState() != v2.TipState() {
		t.Fatal("converged views hold distinct state objects")
	}

	// A transfer committed on the shared fork is visible through both
	// views' (shared) state.
	tx := mustTransfer(t, v2, key, 1, 5_000)
	mineOn(t, v2, m2.Addr, 40, tx)
	if _, err := v1.AddBlock(v2.Tip()); err != nil {
		t.Fatalf("propagate transfer block: %v", err)
	}
	if _, _, found := v1.FindTx(tx.ID()); !found {
		t.Fatal("transfer not found through second view")
	}
}

// mustTransfer builds a self-transfer spending one of key's outputs on
// v's tip state.
func mustTransfer(t *testing.T, v *Chain, key *crypto.KeyPair, nonce uint64, amt vm.Amount) *Tx {
	t.Helper()
	for op, o := range v.TipState().UTXOsOwnedBy(key.Addr) {
		if o.Value >= amt {
			return NewTransfer(key, nonce, []TxIn{{Prev: op}},
				[]TxOut{{Value: o.Value, Owner: key.Addr}})
		}
	}
	t.Fatalf("no output of value >= %d", amt)
	return nil
}

// TestSharedExecutorCachedInvalidRejection verifies failure caching:
// the first view pays for discovering a block is invalid, the second
// view gets the identical verdict without re-execution.
func TestSharedExecutorCachedInvalidRejection(t *testing.T) {
	exec, views, _ := execEnv(t, 2)
	v1, v2 := views[0], views[1]
	rng := sim.NewRNG(79)
	m := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	bad, _, _ := v1.BuildBlock(m.Addr, 10, nil)
	bad.Header.TxRoot = crypto.Sum([]byte("forged"))
	bad.Header.Seal(0)

	before := exec.Stats()
	_, err1 := v1.AddBlock(bad)
	if !errors.Is(err1, ErrBlockInvalid) {
		t.Fatalf("forged block accepted by v1: %v", err1)
	}
	mid := exec.Stats()
	if mid.Executed != before.Executed+1 {
		t.Fatalf("invalid block not executed once: %d -> %d", before.Executed, mid.Executed)
	}

	_, err2 := v2.AddBlock(bad)
	if !errors.Is(err2, ErrBlockInvalid) {
		t.Fatalf("forged block accepted by v2: %v", err2)
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("views got different verdicts: %q vs %q", err1, err2)
	}
	after := exec.Stats()
	if after.Executed != mid.Executed || after.Hits != mid.Hits+1 {
		t.Fatalf("second rejection not served from cache: %+v -> %+v", mid, after)
	}
	if v1.HasBlock(bad.Hash()) || v2.HasBlock(bad.Hash()) {
		t.Fatal("invalid block entered a view")
	}
}

// TestBuildBlockFailedTxLeavesNoTrace pins the trial-overlay build:
// a contract call that fails mid-application (inputs consumed, then
// the call rejected) must not contaminate the block state under
// construction, because that state is committed as the block's
// network-wide execution result.
func TestBuildBlockFailedTxLeavesNoTrace(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 1_000)
	params := vm.EncodeGob(vaultParams{Recipient: e.keys["bob"].Addr, Key: 7})
	deploy := NewDeploy(e.keys["alice"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value - 1_000, Owner: e.keys["alice"].Addr}},
		"vault", params, 1_000)
	e.mine(deploy)
	addr := deploy.ContractAddr()

	// A funded call with the wrong key: consumeInputs and the change
	// output succeed before the contract rejects the call.
	op2, o2 := e.utxoOf("bob", 100)
	badCall := NewCall(e.keys["bob"], 2, addr, "open", []byte{9},
		[]TxIn{{Prev: op2}}, []TxOut{{Value: o2.Value, Owner: e.keys["bob"].Addr}}, 0)
	b, built, invalid := e.chain.BuildBlock(e.miner.Addr, 100, []*Tx{badCall})
	if len(invalid) != 1 || len(b.Txs) != 1 {
		t.Fatalf("failing call not excluded: %d txs, %d invalid", len(b.Txs), len(invalid))
	}
	// The built state must still hold bob's output unspent: the failed
	// trial was discarded wholesale.
	if _, live := built.UTXO(op2); !live {
		t.Fatal("failed call's consumed input leaked into the built state")
	}
	// And the built state matches a from-scratch re-execution.
	b.Header.Seal(0)
	parentState, _ := e.chain.StateAt(b.Header.Parent)
	if _, err := ApplyBlock(parentState, e.chain.Registry(), e.chain.Params(), b); err != nil {
		t.Fatalf("built block does not re-execute: %v", err)
	}
}

// TestNewChainViewsInteroperate pins cross-executor interop: two
// independently constructed executors with equal genesis exchange
// blocks by value (the pre-shared-store behavior tests and SPV
// followers rely on).
func TestNewChainViewsInteroperate(t *testing.T) {
	_, views1, _ := execEnv(t, 1)
	_, views2, _ := execEnv(t, 1)
	v1, v2 := views1[0], views2[0]
	if v1.Genesis().Hash() != v2.Genesis().Hash() {
		t.Fatal("equal configs produced different genesis")
	}
	rng := sim.NewRNG(80)
	m := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	b := mineOn(t, v1, m.Addr, 10)
	if _, err := v2.AddBlock(b); err != nil {
		t.Fatalf("foreign executor rejected valid block: %v", err)
	}
	if v2.Tip().Hash() != b.Hash() {
		t.Fatal("block did not become v2's tip")
	}
}

// BenchmarkBlockPropagation measures adopting a pre-built chain of
// blocks into N replica views — the per-network cost of block
// propagation. shared: N views over one executor (one execution per
// block, N-1 cache hits). per-view: N private executors, the
// pre-shared-store behavior (N executions per block).
func BenchmarkBlockPropagation(b *testing.B) {
	const replicas = 4
	rng := sim.NewRNG(81)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	minerKey := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	params := DefaultParams("bench")
	params.DifficultyBits = 0
	params.MaxBlockTxs = 9
	alloc := GenesisAlloc{key.Addr: 1 << 40}

	// Pre-build the block stream once on a scratch network.
	builder, err := NewChain(params, nil, alloc)
	if err != nil {
		b.Fatal(err)
	}
	var blocks []*Block
	nonce := uint64(0)
	now := sim.Time(10)
	for n := 0; n < 32; n++ {
		var txs []*Tx
		for op, o := range builder.TipState().UTXOsOwnedBy(key.Addr) {
			nonce++
			outs := []TxOut{{Value: o.Value / 2, Owner: key.Addr}, {Value: o.Value - o.Value/2, Owner: key.Addr}}
			if o.Value < 2 {
				outs = []TxOut{{Value: o.Value, Owner: key.Addr}}
			}
			txs = append(txs, NewTransfer(key, nonce, []TxIn{{Prev: op}}, outs))
			if len(txs) >= 8 {
				break
			}
		}
		now += params.BlockInterval
		blk, _, invalid := builder.BuildBlock(minerKey.Addr, now, txs)
		if len(invalid) != 0 {
			b.Fatalf("fixture block %d rejected %d txs", n, len(invalid))
		}
		blk.Header.Seal(0)
		if _, err := builder.AddBlock(blk); err != nil {
			b.Fatal(err)
		}
		blocks = append(blocks, blk)
	}

	propagate := func(b *testing.B, views []*Chain) {
		b.Helper()
		for _, blk := range blocks {
			for _, v := range views {
				if _, err := v.AddBlock(blk); err != nil {
					b.Fatal(err)
				}
			}
		}
	}

	b.Run(fmt.Sprintf("shared-executor/replicas=%d", replicas), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			exec, err := NewExecutor(params, nil, alloc)
			if err != nil {
				b.Fatal(err)
			}
			views := make([]*Chain, replicas)
			for j := range views {
				views[j] = exec.NewView()
			}
			propagate(b, views)
		}
	})
	b.Run(fmt.Sprintf("per-view/replicas=%d", replicas), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			views := make([]*Chain, replicas)
			for j := range views {
				v, err := NewChain(params, nil, alloc)
				if err != nil {
					b.Fatal(err)
				}
				views[j] = v
			}
			propagate(b, views)
		}
	})
}
