package grtest

import (
	_ "crypto/rand" // want `import "crypto/rand" in deterministic package`
)
