package core

import (
	"fmt"
	"testing"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/spv"
	"repro/internal/xchain"
)

// TestDeterminism: the entire distributed system — miners, forks,
// gossip, protocol — replays identically from a seed. This is the
// property every experiment in the repository leans on.
func TestDeterminism(t *testing.T) {
	trace := func() (crypto.Hash, crypto.Hash, sim.Time, bool) {
		w, alice, bob := twoPartyWorld(t, 777)
		r := twoPartyRun(t, w, alice, bob, 0)
		r.Start()
		w.RunUntil(45 * sim.Minute)
		w.StopMining()
		w.RunFor(sim.Minute)
		out := r.Grade()
		return w.View("bitcoin").Tip().Hash(), w.View("witness").Tip().Hash(),
			out.Latency(), out.Committed()
	}
	b1, w1, l1, c1 := trace()
	b2, w2, l2, c2 := trace()
	if b1 != b2 || w1 != w2 || l1 != l2 || c1 != c2 {
		t.Fatalf("same seed diverged: tips %s/%s vs %s/%s, latency %d vs %d, committed %v vs %v",
			b1, w1, b2, w2, l1, l2, c1, c2)
	}
}

// TestWitnessEvidenceCannotBeReplayedAcrossAC2Ts: the commit evidence
// of one AC2T must not redeem another AC2T's contracts, even when
// both use the same witness network. (The asset contract pins its own
// SCw address; evidence proving a call on a different SCw fails.)
func TestWitnessEvidenceCannotBeReplayedAcrossAC2Ts(t *testing.T) {
	b := xchain.NewBuilder(606)
	a1 := b.Participant("a1")
	b1 := b.Participant("b1")
	a2 := b.Participant("a2")
	b2 := b.Participant("b2")
	for _, id := range []chain.ID{"c1", "c2", "witness"} {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	b.Fund(a1, "c1", 1_000_000)
	b.Fund(b1, "c2", 1_000_000)
	b.Fund(a2, "c1", 1_000_000)
	b.Fund(b2, "c2", 1_000_000)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	mkRun := func(x, y *xchain.Participant, ts int64) *Run {
		g, err := graph.TwoParty(ts, x.Addr(), y.Addr(), 10_000, "c1", 20_000, "c2")
		if err != nil {
			t.Fatal(err)
		}
		r, err := New(w, Config{
			Graph:        g,
			Participants: []*xchain.Participant{x, y},
			Initiator:    x,
			WitnessChain: "witness",
			WitnessDepth: 2,
			AssetDepth:   2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	r1 := mkRun(a1, b1, 1)
	r2 := mkRun(a2, b2, 2)
	r1.Start()
	// Run 2 only deploys; we freeze it right before any decision by
	// never letting its participants push (crash them after deploys).
	r2.Start()
	w.Sim.Poll(sim.Second, func() bool {
		if r2.AllDeployedAt > 0 {
			a2.Crash()
			b2.Crash()
			return true
		}
		return false
	})
	w.RunUntil(60 * sim.Minute)

	if !r1.Grade().Committed() {
		t.Fatal("run 1 did not commit; fixture broken")
	}
	// Forge: use run 1's commit evidence on run 2's contract.
	wview := w.View("witness")
	authTx, ok := findCallTx(wview, r1.SCwAddr(), contracts.FnAuthorizeRedeem)
	if !ok {
		t.Fatal("no authorize_redeem for run 1")
	}
	r2addrs := r2.Addrs()
	if r2addrs[0].IsZero() {
		t.Fatal("run 2 contract not deployed")
	}
	ct, ok := w.View("c1").TipState().Contract(r2addrs[0])
	if !ok {
		t.Fatal("run 2 contract missing")
	}
	sc := ct.(*contracts.PermissionlessSC)
	hdr, err := chain.DecodeHeader(sc.WitnessCheckpoint)
	if err != nil {
		t.Fatal(err)
	}
	ev, err := spv.Build(wview, hdr.Hash(), authTx, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Replay via a direct client call: miners must reject it.
	mallory := b1 // any signer; redeem is permissionless but evidence-checked
	tx, err := mallory.Client("c1").Call(r2addrs[0], contracts.FnRedeem, ev.Encode(), 0)
	if err != nil {
		t.Fatal(err)
	}
	w.RunUntil(w.Sim.Now() + 20*sim.Minute)
	if _, _, found := w.View("c1").FindTx(tx.ID()); found {
		t.Fatal("cross-AC2T evidence replay was accepted on-chain")
	}
	if got := w.View("c1").TipState(); got != nil {
		if c2state, ok := got.Contract(r2addrs[0]); ok {
			if c2state.(*contracts.PermissionlessSC).State != contracts.StatePublished {
				t.Fatal("run 2 contract left P state via replayed evidence")
			}
		}
	}
}

// TestAC3TWHandlesComplexGraphs: the centralized strawman also
// commits graphs the single-leader baseline cannot (it shares AC3WN's
// separation of coordination from execution — the witness just
// happens to be trusted).
func TestAC3TWHandlesComplexGraphs(t *testing.T) {
	b := xchain.NewBuilder(607)
	ps := []*xchain.Participant{b.Participant("p0"), b.Participant("p1"), b.Participant("p2")}
	for _, id := range []chain.ID{"c0", "c1", "c2"} {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	for i, p := range ps {
		b.Fund(p, chain.ID(fmt.Sprintf("c%d", i)), 1_000_000)
		b.Fund(p, chain.ID(fmt.Sprintf("c%d", (i+1)%3)), 1_000_000)
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The Figure 7a double-ring (not single-leader feasible).
	g, err := graph.New(1,
		graph.Edge{From: ps[0].Addr(), To: ps[1].Addr(), Asset: 1_000, Chain: "c0"},
		graph.Edge{From: ps[1].Addr(), To: ps[2].Addr(), Asset: 1_000, Chain: "c1"},
		graph.Edge{From: ps[2].Addr(), To: ps[0].Addr(), Asset: 1_000, Chain: "c2"},
		graph.Edge{From: ps[0].Addr(), To: ps[2].Addr(), Asset: 1_000, Chain: "c1"},
		graph.Edge{From: ps[2].Addr(), To: ps[1].Addr(), Asset: 1_000, Chain: "c0"},
		graph.Edge{From: ps[1].Addr(), To: ps[0].Addr(), Asset: 1_000, Chain: "c2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	trent := NewTrent(w, 1234, 100*sim.Millisecond)
	r, err := NewTW(w, TWConfig{
		Graph:        g,
		Participants: ps,
		Initiator:    ps[0],
		Trent:        trent,
		ConfirmDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	w.RunUntil(90 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)
	if out := r.Grade(); !out.Committed() {
		t.Fatalf("AC3TW failed the cyclic graph: %+v", out.Edges)
	}
}

// TestTrentRejectsRedeemBeforeDeploysConfirm: Trent must refuse to
// sign RD while any contract is missing (Section 4.1's verification
// role).
func TestTrentRejectsRedeemBeforeDeploysConfirm(t *testing.T) {
	w, alice, bob := twoPartyWorld(t, 608)
	trent := NewTrent(w, 4321, 100*sim.Millisecond)
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 1_000, "bitcoin", 2_000, "ethereum")
	ms := crypto.NewMultiSig(g.Digest())
	ms.Add(alice.Key)
	ms.Add(bob.Key)
	var regErr error
	trent.Register(g, ms, func(err error) { regErr = err })
	w.RunFor(sim.Minute)
	if regErr != nil {
		t.Fatal(regErr)
	}
	var gotErr error
	responded := false
	trent.RequestRedeem(ms.ID(), []crypto.Address{{1}, {2}}, 2, func(sig crypto.Signature, p crypto.Purpose, err error) {
		responded = true
		gotErr = err
	})
	w.RunFor(sim.Minute)
	if !responded {
		t.Fatal("trent never responded")
	}
	if gotErr == nil {
		t.Fatal("trent signed RD with no contracts on chain")
	}
	if trent.SignedRD != 0 {
		t.Fatal("signature issued despite failed verification")
	}
}

// BenchmarkAC3TWvsAC3WNLatency is the centralization ablation: the
// trusted witness decides instantly (no witness-chain confirmation
// waits), quantifying the latency AC3WN pays for decentralization.
func BenchmarkAC3TWvsAC3WNLatency(b *testing.B) {
	runTW := func(seed uint64) sim.Time {
		bld := xchain.NewBuilder(seed)
		alice := bld.Participant("alice")
		bob := bld.Participant("bob")
		for _, id := range []chain.ID{"bitcoin", "ethereum"} {
			bld.Chain(xchain.DefaultChainSpec(id))
		}
		bld.Fund(alice, "bitcoin", 1_000_000)
		bld.Fund(bob, "ethereum", 1_000_000)
		w, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		trent := NewTrent(w, seed+1, 100*sim.Millisecond)
		g, _ := graph.TwoParty(int64(seed), alice.Addr(), bob.Addr(), 1_000, "bitcoin", 2_000, "ethereum")
		r, err := NewTW(w, TWConfig{
			Graph: g, Participants: []*xchain.Participant{alice, bob},
			Initiator: alice, Trent: trent, ConfirmDepth: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		w.RunUntil(time1hr)
		out := r.Grade()
		if !out.Committed() {
			b.Fatal("AC3TW did not commit")
		}
		return out.Latency()
	}
	runWN := func(seed uint64) sim.Time {
		bld := xchain.NewBuilder(seed)
		alice := bld.Participant("alice")
		bob := bld.Participant("bob")
		for _, id := range []chain.ID{"bitcoin", "ethereum", "witness"} {
			bld.Chain(xchain.DefaultChainSpec(id))
		}
		bld.Fund(alice, "bitcoin", 1_000_000)
		bld.Fund(bob, "ethereum", 1_000_000)
		w, err := bld.Build()
		if err != nil {
			b.Fatal(err)
		}
		g, _ := graph.TwoParty(int64(seed), alice.Addr(), bob.Addr(), 1_000, "bitcoin", 2_000, "ethereum")
		r, err := New(w, Config{
			Graph: g, Participants: []*xchain.Participant{alice, bob},
			Initiator: alice, WitnessChain: "witness", WitnessDepth: 3, AssetDepth: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
		r.Start()
		w.RunUntil(time1hr)
		out := r.Grade()
		if !out.Committed() {
			b.Fatal("AC3WN did not commit")
		}
		return out.Latency()
	}
	var twTotal, wnTotal sim.Time
	for i := 0; i < b.N; i++ {
		twTotal += runTW(uint64(8000 + i))
		wnTotal += runWN(uint64(9000 + i))
	}
	b.ReportMetric(float64(twTotal)/float64(b.N)/1000, "ac3tw-latency-s")
	b.ReportMetric(float64(wnTotal)/float64(b.N)/1000, "ac3wn-latency-s")
}
