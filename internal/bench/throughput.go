package bench

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/metrics"
	"repro/internal/miner"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/vm"
)

// tpsTarget calibrates one simulated chain to a Table 1 row: with a
// 1-second block interval, capacity per block equals transactions per
// second.
type tpsTarget struct {
	Name     string
	PaperTPS int
}

// table1Targets are the top-4 permissionless cryptocurrencies by
// market cap with the paper's throughput figures (O'Keeffe [24]).
//
//ac3:globalstate read-only paper-figure table; written once here, never mutated
var table1Targets = []tpsTarget{
	{Name: "Bitcoin", PaperTPS: 7},
	{Name: "Ethereum", PaperTPS: 25},
	{Name: "Litecoin", PaperTPS: 56},
	{Name: "Bitcoin Cash", PaperTPS: 61},
}

// measureChainTPS floods a calibrated chain with chained transfers
// and measures sustained included transactions per virtual second.
func measureChainTPS(seed uint64, target tpsTarget, window sim.Time) (float64, error) {
	s := sim.New(seed)
	rng := s.RNG().Fork()
	user := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	params := chain.DefaultParams(chain.ID(target.Name))
	params.BlockInterval = 1 * sim.Second
	params.MaxBlockTxs = target.PaperTPS
	params.DifficultyBits = 4 // cheap sealing; PoW not under test here
	net, err := miner.NewNetwork(s, miner.Config{
		Params:  params,
		Miners:  1,
		Latency: p2p.LatencyModel{Base: 1},
		Alloc:   chain.GenesisAlloc{user.Addr: 10_000_000},
	})
	if err != nil {
		return 0, err
	}
	net.Start()

	// Offered load: a dependency chain of transfers, each spending
	// the previous one's output; the miner's multi-pass packing fills
	// every block to capacity.
	node := net.Node(0)
	view := node.Chain
	var prev chain.OutPoint
	var amount vm.Amount
	for op, out := range view.TipState().UTXOsOwnedBy(user.Addr) {
		prev, amount = op, out.Value
	}
	offered := int(float64(target.PaperTPS) * float64(window) / float64(sim.Second) * 1.5)
	for i := 0; i < offered; i++ {
		tx := chain.NewTransfer(user, uint64(i), []chain.TxIn{{Prev: prev}},
			[]chain.TxOut{{Value: amount, Owner: user.Addr}})
		node.SubmitLocal(tx)
		prev = chain.OutPoint{TxID: tx.ID(), Index: 0}
	}

	// Warm up one block, then measure over the window. Normalizing
	// by blocks-mined × target-interval removes the Poisson variance
	// of block arrivals from the estimate (the long-run rate is
	// blocks/interval regardless of a finite window's luck).
	s.RunUntil(2 * sim.Second)
	startHeight := view.Height()
	startTime := s.Now()
	s.RunUntil(startTime + window)
	included, blocks := 0, 0
	for h := startHeight + 1; h <= view.Height(); h++ {
		b, ok := view.CanonicalAt(h)
		if !ok {
			continue
		}
		blocks++
		included += len(b.Txs) - 1 // minus coinbase
	}
	if blocks == 0 {
		return 0, nil
	}
	effective := float64(blocks) * float64(params.BlockInterval) / float64(sim.Second)
	return float64(included) / effective, nil
}

// Table1 reproduces Table 1 and the Section 6.4 throughput
// composition: chains calibrated to the paper's tps figures, raw
// throughput measured under saturation, and the AC2T throughput
// min(tps_i, …, tps_w) for an Ethereum+Litecoin AC2T under each
// witness choice.
func Table1(seed uint64) *Result {
	ok := true
	measured := make(map[string]float64, len(table1Targets))

	t1 := metrics.NewTable("Table 1 — throughput (tps) of the top-4 permissionless blockchains",
		"Blockchain", "paper tps", "measured tps (simulated, saturated)")
	for i, target := range table1Targets {
		tps, err := measureChainTPS(seed+uint64(i), target, 120*sim.Second)
		if err != nil {
			return &Result{ID: "table1", Title: "throughput", Output: err.Error()}
		}
		measured[target.Name] = tps
		t1.AddRow(target.Name, target.PaperTPS, fmt.Sprintf("%.1f", tps))
		// Block arrivals are Poisson, so a finite window fluctuates;
		// ±20% on a 120s window is within two standard deviations.
		if tps < float64(target.PaperTPS)*0.8 || tps > float64(target.PaperTPS)*1.2 {
			ok = false
		}
	}
	t1.Note("each chain calibrated as capacity/interval; measured under a saturating transfer load")

	// Section 6.4: AC2T over {Ethereum, Litecoin} with each witness.
	t2 := metrics.NewTable("Section 6.4 — AC2T throughput = min(tps_i, ..., tps_w) for an ETH+LTC transaction",
		"Witness network", "min() composition", "AC2T tps")
	involved := []string{"Ethereum", "Litecoin"}
	for _, wn := range table1Targets {
		minTPS := measured[wn.Name]
		parts := fmt.Sprintf("min(%.0f, %.0f, %.0f)", measured["Ethereum"], measured["Litecoin"], measured[wn.Name])
		for _, in := range involved {
			if measured[in] < minTPS {
				minTPS = measured[in]
			}
		}
		t2.AddRow(wn.Name, parts, fmt.Sprintf("%.1f", minTPS))
	}
	t2.Note("paper's example: witnessing an ETH+LTC AC2T with Bitcoin caps throughput at 7 tps")
	t2.Note("choosing the witness among the involved chains (ETH or LTC here) avoids adding a bottleneck")

	// The paper's headline composition: Bitcoin witness ⇒ ≈7.
	btcBound := measured["Bitcoin"]
	if btcBound > measured["Ethereum"] || btcBound > measured["Litecoin"] {
		ok = false
	}
	return &Result{
		ID:     "table1",
		Title:  "chain throughput and AC2T min() composition",
		Output: section(t1.String(), t2.String()),
		OK:     ok,
	}
}
