package vm

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/crypto"
	"repro/internal/sim"
)

// counter is a minimal test contract.
type counter struct {
	N     int
	Owner crypto.Address
}

func (c *counter) Type() string { return "counter" }

func (c *counter) Init(ctx *Ctx, params []byte) error {
	c.Owner = ctx.Msg.Sender
	return nil
}

func (c *counter) Call(ctx *Ctx, fn string, args []byte) error {
	switch fn {
	case "inc":
		c.N++
		return nil
	case "drain":
		return ctx.Pay(c.Owner, ctx.Balance())
	default:
		return ErrUnknownFunction(c.Type(), fn)
	}
}

func (c *counter) Clone() Contract { cp := *c; return &cp }

func addr(seed uint64) crypto.Address {
	r := sim.NewRNG(seed)
	return crypto.MustGenerateKey(crypto.NewRandReader(r.Uint64)).Addr
}

func TestCtxPayDeductsBalance(t *testing.T) {
	to := addr(1)
	ctx := NewCtx("btc", addr(2), 5, 100, Msg{}, 100)
	if err := ctx.Pay(to, 60); err != nil {
		t.Fatal(err)
	}
	if ctx.Balance() != 40 {
		t.Fatalf("balance = %d, want 40", ctx.Balance())
	}
	if err := ctx.Pay(to, 41); err == nil {
		t.Fatal("overdraft allowed")
	}
	if err := ctx.Pay(to, 40); err != nil {
		t.Fatal(err)
	}
	p := ctx.Payouts()
	if len(p) != 2 || p[0].Value != 60 || p[1].Value != 40 {
		t.Fatalf("payouts = %+v", p)
	}
}

func TestCtxPayZeroAddressRejected(t *testing.T) {
	ctx := NewCtx("btc", addr(1), 0, 0, Msg{}, 10)
	if err := ctx.Pay(crypto.ZeroAddress, 1); err == nil {
		t.Fatal("payout to zero address allowed")
	}
}

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	r.Register("counter", func() Contract { return &counter{} })
	c, err := r.New("counter")
	if err != nil {
		t.Fatal(err)
	}
	if c.Type() != "counter" {
		t.Fatalf("type = %q", c.Type())
	}
	if _, err := r.New("nope"); err == nil {
		t.Fatal("unknown type instantiated")
	}
	types := r.Types()
	if len(types) != 1 || types[0] != "counter" {
		t.Fatalf("Types() = %v", types)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on duplicate registration")
		}
	}()
	r := NewRegistry()
	r.Register("x", func() Contract { return &counter{} })
	r.Register("x", func() Contract { return &counter{} })
}

func TestRegistryBadArgsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty type")
		}
	}()
	NewRegistry().Register("", func() Contract { return &counter{} })
}

func TestContractCloneIsolation(t *testing.T) {
	c := &counter{}
	owner := addr(3)
	_ = c.Init(NewCtx("btc", addr(4), 0, 0, Msg{Sender: owner}, 0), nil)
	cl := c.Clone().(*counter)
	_ = cl.Call(NewCtx("btc", addr(4), 1, 1, Msg{}, 0), "inc", nil)
	if c.N != 0 || cl.N != 1 {
		t.Fatalf("clone not isolated: c.N=%d cl.N=%d", c.N, cl.N)
	}
}

func TestErrUnknownFunction(t *testing.T) {
	c := &counter{}
	err := c.Call(NewCtx("btc", addr(5), 0, 0, Msg{}, 0), "nope", nil)
	if err == nil || !strings.Contains(err.Error(), "nope") {
		t.Fatalf("err = %v", err)
	}
}

func TestContractAddressDeterministicAndDistinct(t *testing.T) {
	a := ContractAddress(crypto.Sum([]byte("tx1")))
	b := ContractAddress(crypto.Sum([]byte("tx1")))
	c := ContractAddress(crypto.Sum([]byte("tx2")))
	if a != b {
		t.Fatal("contract address not deterministic")
	}
	if a == c {
		t.Fatal("distinct txs share a contract address")
	}
	if a.IsZero() {
		t.Fatal("contract address is zero")
	}
}

func TestGobRoundTrip(t *testing.T) {
	type params struct {
		Recipient crypto.Address
		Deadline  int64
		Secret    []byte
	}
	in := params{Recipient: addr(6), Deadline: 42, Secret: []byte("s")}
	b := EncodeGob(in)
	var out params
	if err := DecodeGob(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Recipient != in.Recipient || out.Deadline != in.Deadline || string(out.Secret) != "s" {
		t.Fatalf("round trip mismatch: %+v", out)
	}
}

func TestGobDeterministic(t *testing.T) {
	type p struct{ A, B uint64 }
	x := EncodeGob(p{1, 2})
	y := EncodeGob(p{1, 2})
	if string(x) != string(y) {
		t.Fatal("gob encoding of identical values differs")
	}
}

func TestDecodeGobError(t *testing.T) {
	var v struct{ A int }
	if err := DecodeGob([]byte("not gob"), &v); err == nil {
		t.Fatal("expected decode error")
	}
	var target error = errors.New("x")
	_ = target // documentation: DecodeGob wraps, callers can errors.Is on gob errors if needed
}

func TestPayFromDrainFunction(t *testing.T) {
	c := &counter{}
	owner := addr(7)
	_ = c.Init(NewCtx("btc", addr(8), 0, 0, Msg{Sender: owner, Value: 500}, 500), nil)
	ctx := NewCtx("btc", addr(8), 3, 30, Msg{Sender: owner}, 500)
	if err := c.Call(ctx, "drain", nil); err != nil {
		t.Fatal(err)
	}
	p := ctx.Payouts()
	if len(p) != 1 || p[0].To != owner || p[0].Value != 500 {
		t.Fatalf("payouts = %+v", p)
	}
	if ctx.Balance() != 0 {
		t.Fatalf("balance = %d, want 0", ctx.Balance())
	}
}
