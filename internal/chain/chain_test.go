package chain

import (
	"errors"
	"testing"

	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// testEnv bundles a chain view with funded keys.
type testEnv struct {
	t     *testing.T
	chain *Chain
	keys  map[string]*crypto.KeyPair
	miner *crypto.KeyPair // coinbase recipient, distinct from principals
	rng   *sim.RNG
	nonce uint64
	now   sim.Time
}

func newEnv(t *testing.T, names ...string) *testEnv {
	t.Helper()
	rng := sim.NewRNG(1234)
	keys := make(map[string]*crypto.KeyPair)
	alloc := GenesisAlloc{}
	miner := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	for _, n := range names {
		k := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
		keys[n] = k
		alloc[k.Addr] = 10_000
	}
	params := DefaultParams("testnet")
	params.DifficultyBits = 8 // keep sealing cheap in tests
	reg := vm.NewRegistry()
	reg.Register("vault", func() vm.Contract { return &vault{} })
	c, err := NewChain(params, reg, alloc)
	if err != nil {
		t.Fatal(err)
	}
	return &testEnv{t: t, chain: c, keys: keys, miner: miner, rng: rng}
}

// vault is a test contract: locks value, releases to a fixed
// recipient when "open" is called with the right secret byte.
type vault struct {
	Recipient crypto.Address
	Key       byte
	Open      bool
}

type vaultParams struct {
	Recipient crypto.Address
	Key       byte
}

func (v *vault) Type() string { return "vault" }
func (v *vault) Init(ctx *vm.Ctx, params []byte) error {
	var p vaultParams
	if err := vm.DecodeGob(params, &p); err != nil {
		return err
	}
	v.Recipient, v.Key = p.Recipient, p.Key
	return nil
}
func (v *vault) Call(ctx *vm.Ctx, fn string, args []byte) error {
	switch fn {
	case "open":
		if v.Open {
			return errors.New("already open")
		}
		if len(args) != 1 || args[0] != v.Key {
			return errors.New("wrong key")
		}
		v.Open = true
		return ctx.Pay(v.Recipient, ctx.Balance())
	default:
		return vm.ErrUnknownFunction("vault", fn)
	}
}
func (v *vault) Clone() vm.Contract { cp := *v; return &cp }

// utxoOf finds one UTXO of at least want owned by name.
func (e *testEnv) utxoOf(name string, want vm.Amount) (OutPoint, TxOut) {
	e.t.Helper()
	owned := e.chain.TipState().UTXOsOwnedBy(e.keys[name].Addr)
	for op, o := range owned {
		if o.Value >= want {
			return op, o
		}
	}
	e.t.Fatalf("%s has no UTXO of value >= %d", name, want)
	return OutPoint{}, TxOut{}
}

// mine builds, seals and adds one block with the given txs, failing
// the test on rejection.
func (e *testEnv) mine(txs ...*Tx) *Block {
	e.t.Helper()
	e.now += e.chain.Params().BlockInterval
	b, _, invalid := e.chain.BuildBlock(e.miner.Addr, e.now, txs)
	if len(invalid) > 0 {
		e.t.Fatalf("BuildBlock rejected %d txs; first: kind=%v", len(invalid), invalid[0].Kind)
	}
	if len(b.Txs) != len(txs)+1 {
		e.t.Fatalf("block packed %d txs, want %d (+coinbase)", len(b.Txs), len(txs)+1)
	}
	b.Header.Seal(e.rng.Uint64())
	if _, err := e.chain.AddBlock(b); err != nil {
		e.t.Fatalf("AddBlock: %v", err)
	}
	return b
}

func (e *testEnv) transfer(from, to string, amt vm.Amount) *Tx {
	e.t.Helper()
	op, o := e.utxoOf(from, amt)
	e.nonce++
	outs := []TxOut{{Value: amt, Owner: e.keys[to].Addr}}
	if o.Value > amt {
		outs = append(outs, TxOut{Value: o.Value - amt, Owner: e.keys[from].Addr})
	}
	return NewTransfer(e.keys[from], e.nonce, []TxIn{{Prev: op}}, outs)
}

func TestGenesisDeterministic(t *testing.T) {
	a := newEnv(t, "alice", "bob")
	b := newEnv(t, "alice", "bob")
	if a.chain.Genesis().Hash() != b.chain.Genesis().Hash() {
		t.Fatal("two identically configured chains disagree on genesis")
	}
}

func TestGenesisAllocSpendable(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	e.mine(e.transfer("alice", "bob", 2_500))
	bobOwned := e.chain.TipState().UTXOsOwnedBy(e.keys["bob"].Addr)
	var total vm.Amount
	for _, o := range bobOwned {
		total += o.Value
	}
	if total != 12_500 {
		t.Fatalf("bob owns %d, want 12500", total)
	}
}

func TestTransferMergeAndSplit(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	// Split alice's single genesis output into three (Figure 2, TX2).
	op, o := e.utxoOf("alice", 10_000)
	e.nonce++
	split := NewTransfer(e.keys["alice"], e.nonce, []TxIn{{Prev: op}}, []TxOut{
		{Value: 3_000, Owner: e.keys["alice"].Addr},
		{Value: 3_000, Owner: e.keys["alice"].Addr},
		{Value: o.Value - 6_000, Owner: e.keys["alice"].Addr},
	})
	e.mine(split)

	// Merge the three back into one for bob (Figure 2, TX1).
	owned := e.chain.TipState().UTXOsOwnedBy(e.keys["alice"].Addr)
	var ins []TxIn
	var total vm.Amount
	for opn, out := range owned {
		ins = append(ins, TxIn{Prev: opn})
		total += out.Value
	}
	e.nonce++
	merge := NewTransfer(e.keys["alice"], e.nonce, ins, []TxOut{{Value: total, Owner: e.keys["bob"].Addr}})
	e.mine(merge)

	if got := len(e.chain.TipState().UTXOsOwnedBy(e.keys["alice"].Addr)); got != 0 {
		t.Fatalf("alice still owns %d outputs", got)
	}
}

func TestDoubleSpendRejected(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 1)
	mk := func(nonce uint64) *Tx {
		return NewTransfer(e.keys["alice"], nonce, []TxIn{{Prev: op}},
			[]TxOut{{Value: o.Value, Owner: e.keys["bob"].Addr}})
	}
	tx1, tx2 := mk(1), mk(2)
	e.mine(tx1)
	st := e.chain.TipState().Child()
	err := ApplyTx(st, e.chain.Registry(), e.chain.Params().ID, e.chain.Height()+1, 0, tx2)
	if !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("double spend accepted: %v", err)
	}
}

func TestDoubleSpendWithinOneTxRejected(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 1)
	tx := NewTransfer(e.keys["alice"], 1, []TxIn{{Prev: op}, {Prev: op}},
		[]TxOut{{Value: 2 * o.Value, Owner: e.keys["bob"].Addr}})
	st := e.chain.TipState().Child()
	if err := ApplyTx(st, e.chain.Registry(), "testnet", 1, 0, tx); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("duplicate input accepted: %v", err)
	}
}

func TestSpendOthersAssetRejected(t *testing.T) {
	e := newEnv(t, "alice", "mallory")
	op, o := e.utxoOf("alice", 1)
	theft := NewTransfer(e.keys["mallory"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value, Owner: e.keys["mallory"].Addr}})
	st := e.chain.TipState().Child()
	if err := ApplyTx(st, e.chain.Registry(), "testnet", 1, 0, theft); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("theft accepted: %v", err)
	}
}

func TestValueNotConservedRejected(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 1)
	inflate := NewTransfer(e.keys["alice"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value + 1, Owner: e.keys["bob"].Addr}})
	st := e.chain.TipState().Child()
	if err := ApplyTx(st, e.chain.Registry(), "testnet", 1, 0, inflate); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("inflation accepted: %v", err)
	}
}

func TestTamperedSignatureRejected(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	tx := e.transfer("alice", "bob", 100)
	tx.Sig.Sig[0] ^= 1
	st := e.chain.TipState().Child()
	if err := ApplyTx(st, e.chain.Registry(), "testnet", 1, 0, tx); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("tampered signature accepted: %v", err)
	}
}

func TestContractDeployLocksValue(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 1_000)
	params := vm.EncodeGob(vaultParams{Recipient: e.keys["bob"].Addr, Key: 7})
	deploy := NewDeploy(e.keys["alice"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value - 1_000, Owner: e.keys["alice"].Addr}},
		"vault", params, 1_000)
	e.mine(deploy)

	addr := deploy.ContractAddr()
	st := e.chain.TipState()
	if st.Balance(addr) != 1_000 {
		t.Fatalf("contract balance = %d, want 1000", st.Balance(addr))
	}
	if _, ok := st.Contract(addr); !ok {
		t.Fatal("contract not found after deploy")
	}
}

func TestContractCallPaysOut(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 1_000)
	params := vm.EncodeGob(vaultParams{Recipient: e.keys["bob"].Addr, Key: 7})
	deploy := NewDeploy(e.keys["alice"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value - 1_000, Owner: e.keys["alice"].Addr}},
		"vault", params, 1_000)
	e.mine(deploy)
	addr := deploy.ContractAddr()

	open := NewCall(e.keys["bob"], 2, addr, "open", []byte{7}, nil, nil, 0)
	e.mine(open)

	st := e.chain.TipState()
	if st.Balance(addr) != 0 {
		t.Fatalf("contract balance = %d after open, want 0", st.Balance(addr))
	}
	var bobTotal vm.Amount
	for _, out := range st.UTXOsOwnedBy(e.keys["bob"].Addr) {
		bobTotal += out.Value
	}
	if bobTotal != 11_000 {
		t.Fatalf("bob owns %d, want 11000", bobTotal)
	}
	v, _ := st.Contract(addr)
	if !v.(*vault).Open {
		t.Fatal("vault state not updated")
	}
}

func TestFailingCallRejected(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 1_000)
	params := vm.EncodeGob(vaultParams{Recipient: e.keys["bob"].Addr, Key: 7})
	deploy := NewDeploy(e.keys["alice"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value - 1_000, Owner: e.keys["alice"].Addr}},
		"vault", params, 1_000)
	e.mine(deploy)

	bad := NewCall(e.keys["bob"], 2, deploy.ContractAddr(), "open", []byte{8}, nil, nil, 0)
	st := e.chain.TipState().Child()
	if err := ApplyTx(st, e.chain.Registry(), "testnet", e.chain.Height()+1, 0, bad); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("failing call accepted: %v", err)
	}
	// And the miner excludes it.
	b, _, invalid := e.chain.BuildBlock(e.keys["alice"].Addr, 100, []*Tx{bad})
	if len(invalid) != 1 || len(b.Txs) != 1 {
		t.Fatalf("miner packed a failing call (block=%d txs, invalid=%d)", len(b.Txs), len(invalid))
	}
}

func TestContractStateRevertsOnFailedCall(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 500)
	params := vm.EncodeGob(vaultParams{Recipient: e.keys["bob"].Addr, Key: 9})
	deploy := NewDeploy(e.keys["alice"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value - 500, Owner: e.keys["alice"].Addr}},
		"vault", params, 500)
	e.mine(deploy)
	addr := deploy.ContractAddr()

	// Apply a failing call on a scratch overlay; the tip state must
	// remain untouched (copy-on-write isolation).
	bad := NewCall(e.keys["bob"], 2, addr, "open", []byte{1}, nil, nil, 0)
	scratch := e.chain.TipState().Child()
	_ = ApplyTx(scratch, e.chain.Registry(), "testnet", e.chain.Height()+1, 0, bad)
	v, _ := e.chain.TipState().Contract(addr)
	if v.(*vault).Open {
		t.Fatal("tip-state contract mutated by failed call on overlay")
	}
}

func TestUnknownContractTypeRejected(t *testing.T) {
	e := newEnv(t, "alice")
	op, o := e.utxoOf("alice", 100)
	deploy := NewDeploy(e.keys["alice"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value - 100, Owner: e.keys["alice"].Addr}},
		"no-such-type", nil, 100)
	st := e.chain.TipState().Child()
	if err := ApplyTx(st, e.chain.Registry(), "testnet", 1, 0, deploy); !errors.Is(err, ErrTxInvalid) {
		t.Fatalf("unknown contract type accepted: %v", err)
	}
}

func TestForkChoiceLongestChainAndReorg(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	base := e.chain.Tip()

	// Branch A: one block with a transfer to bob.
	txA := e.transfer("alice", "bob", 1_000)
	blockA := e.mine(txA)
	if e.chain.Tip().Hash() != blockA.Hash() {
		t.Fatal("tip should be block A")
	}

	// Branch B: two blocks built on base (constructed on a second
	// view of the same chain).
	other, err := NewChain(e.chain.Params(), e.chain.Registry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = other
	// Build B1/B2 manually on top of base using the same view's data.
	stBase, _ := e.chain.StateAt(base.Hash())
	_ = stBase
	b1 := NewBlock(Header{
		ChainID: "testnet", Parent: base.Hash(), Height: base.Header.Height + 1,
		Time: 50, Bits: uint8(e.chain.Params().DifficultyBits),
	}, []*Tx{{Kind: TxCoinbase, Nonce: 1, Outs: []TxOut{{Value: 50, Owner: e.keys["bob"].Addr}}}})
	b1.Header.Seal(1)
	if _, err := e.chain.AddBlock(b1); err != nil {
		t.Fatalf("add B1: %v", err)
	}
	if e.chain.Tip().Hash() != blockA.Hash() {
		t.Fatal("tie must keep first-seen tip (block A)")
	}
	b2 := NewBlock(Header{
		ChainID: "testnet", Parent: b1.Hash(), Height: b1.Header.Height + 1,
		Time: 60, Bits: uint8(e.chain.Params().DifficultyBits),
	}, []*Tx{{Kind: TxCoinbase, Nonce: 2, Outs: []TxOut{{Value: 50, Owner: e.keys["bob"].Addr}}}})
	b2.Header.Seal(2)
	reorged, err := e.chain.AddBlock(b2)
	if err != nil {
		t.Fatalf("add B2: %v", err)
	}
	if !reorged || e.chain.Tip().Hash() != b2.Hash() {
		t.Fatal("longer branch did not win")
	}
	if e.chain.Reorgs != 1 {
		t.Fatalf("Reorgs = %d, want 1", e.chain.Reorgs)
	}

	// After the reorg, txA is no longer canonical: bob's transfer is
	// gone and the UTXO set reflects branch B.
	if _, _, found := e.chain.FindTx(txA.ID()); found {
		t.Fatal("abandoned-fork tx still reported canonical")
	}
	if !e.chain.IsCanonical(b1.Hash()) || !e.chain.IsCanonical(b2.Hash()) {
		t.Fatal("branch B not canonical")
	}
	if e.chain.IsCanonical(blockA.Hash()) {
		t.Fatal("block A still canonical")
	}
}

func TestDepthOf(t *testing.T) {
	e := newEnv(t, "alice")
	b1 := e.mine()
	b2 := e.mine()
	b3 := e.mine()
	if d, ok := e.chain.DepthOf(b3.Hash()); !ok || d != 0 {
		t.Fatalf("tip depth = %d/%v", d, ok)
	}
	if d, ok := e.chain.DepthOf(b1.Hash()); !ok || d != 2 {
		t.Fatalf("b1 depth = %d/%v", d, ok)
	}
	if d, ok := e.chain.DepthOf(b2.Hash()); !ok || d != 1 {
		t.Fatalf("b2 depth = %d/%v", d, ok)
	}
	if _, ok := e.chain.DepthOf(crypto.Sum([]byte("unknown"))); ok {
		t.Fatal("unknown block has a depth")
	}
}

func TestFindTxAndTxDepth(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	tx := e.transfer("alice", "bob", 10)
	e.mine(tx)
	b, i, ok := e.chain.FindTx(tx.ID())
	if !ok || b == nil || b.Txs[i].ID() != tx.ID() {
		t.Fatal("FindTx failed")
	}
	e.mine()
	e.mine()
	if d, ok := e.chain.TxDepth(tx.ID()); !ok || d != 2 {
		t.Fatalf("TxDepth = %d/%v, want 2", d, ok)
	}
}

func TestHeadersFrom(t *testing.T) {
	e := newEnv(t, "alice")
	g := e.chain.Genesis()
	var mined []*Block
	for i := 0; i < 5; i++ {
		mined = append(mined, e.mine())
	}
	hs, ok := e.chain.HeadersFrom(g.Hash())
	if !ok || len(hs) != 5 {
		t.Fatalf("HeadersFrom: ok=%v len=%d", ok, len(hs))
	}
	for i, h := range hs {
		if h.Hash() != mined[i].Hash() {
			t.Fatalf("header %d mismatch", i)
		}
	}
	if _, ok := e.chain.HeadersFrom(crypto.Sum([]byte("x"))); ok {
		t.Fatal("HeadersFrom from unknown ancestor succeeded")
	}
}

func TestBlockRejectedWithBadPoW(t *testing.T) {
	e := newEnv(t, "alice")
	b, _, _ := e.chain.BuildBlock(e.keys["alice"].Addr, 10, nil)
	// Don't seal. With 8 difficulty bits a random unsealed header
	// passes with probability 2^-8; nudge the nonce until it fails.
	for b.Header.CheckPoW() {
		b.Header.Nonce++
	}
	if _, err := e.chain.AddBlock(b); !errors.Is(err, ErrBlockInvalid) {
		t.Fatalf("unsealed block accepted: %v", err)
	}
}

func TestBlockRejectedWithWrongTxRoot(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	tx := e.transfer("alice", "bob", 5)
	b, _, _ := e.chain.BuildBlock(e.keys["alice"].Addr, 10, []*Tx{tx})
	b.Header.TxRoot = crypto.Sum([]byte("forged"))
	b.Header.Seal(0)
	if _, err := e.chain.AddBlock(b); !errors.Is(err, ErrBlockInvalid) {
		t.Fatalf("wrong tx root accepted: %v", err)
	}
}

func TestBlockRejectedUnknownParent(t *testing.T) {
	e := newEnv(t, "alice")
	b := NewBlock(Header{
		ChainID: "testnet", Parent: crypto.Sum([]byte("orphan")), Height: 1,
		Time: 10, Bits: uint8(e.chain.Params().DifficultyBits),
	}, []*Tx{{Kind: TxCoinbase, Nonce: 1, Outs: []TxOut{{Value: 50, Owner: e.keys["alice"].Addr}}}})
	b.Header.Seal(0)
	if _, err := e.chain.AddBlock(b); !errors.Is(err, ErrBlockInvalid) {
		t.Fatalf("orphan accepted: %v", err)
	}
}

func TestBlockRejectedOversizedCoinbase(t *testing.T) {
	e := newEnv(t, "alice")
	b := NewBlock(Header{
		ChainID: "testnet", Parent: e.chain.Tip().Hash(), Height: 1,
		Time: 10, Bits: uint8(e.chain.Params().DifficultyBits),
	}, []*Tx{{Kind: TxCoinbase, Nonce: 1, Outs: []TxOut{{Value: 51, Owner: e.keys["alice"].Addr}}}})
	b.Header.Seal(0)
	if _, err := e.chain.AddBlock(b); !errors.Is(err, ErrBlockInvalid) {
		t.Fatalf("inflated coinbase accepted: %v", err)
	}
}

func TestValueConservation(t *testing.T) {
	e := newEnv(t, "alice", "bob", "carol")
	genesisTotal := e.chain.TipState().TotalValue()

	var blocks int
	e.mine(e.transfer("alice", "bob", 1_000))
	blocks++
	e.mine(e.transfer("bob", "carol", 500))
	blocks++

	op, o := e.utxoOf("carol", 200)
	params := vm.EncodeGob(vaultParams{Recipient: e.keys["alice"].Addr, Key: 3})
	deploy := NewDeploy(e.keys["carol"], 99, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value - 200, Owner: e.keys["carol"].Addr}},
		"vault", params, 200)
	e.mine(deploy)
	blocks++
	e.mine(NewCall(e.keys["alice"], 100, deploy.ContractAddr(), "open", []byte{3}, nil, nil, 0))
	blocks++

	want := genesisTotal + vm.Amount(blocks)*e.chain.Params().BlockReward
	if got := e.chain.TipState().TotalValue(); got != want {
		t.Fatalf("total value = %d, want %d (genesis %d + %d coinbases)", got, want, genesisTotal, blocks)
	}
}

func TestOverlayFlattenPreservesState(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	// Mine enough blocks to force several flattens (flattenDepth=48).
	for i := 0; i < 120; i++ {
		e.mine(e.transfer("alice", "bob", 1))
	}
	var bobTotal vm.Amount
	for _, o := range e.chain.TipState().UTXOsOwnedBy(e.keys["bob"].Addr) {
		bobTotal += o.Value
	}
	if bobTotal != 10_000+120 {
		t.Fatalf("bob owns %d after 120 transfers, want %d", bobTotal, 10_000+120)
	}
	if d := e.chain.TipState().OverlayDepth(); d > flattenDepth {
		t.Fatalf("overlay depth %d exceeds flatten threshold %d", d, flattenDepth)
	}
}

func TestStateAtDepth(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	e.mine(e.transfer("alice", "bob", 1_000)) // height 1
	e.mine()                                  // height 2
	e.mine()                                  // height 3

	stNow, _ := e.chain.StateAtDepth(0)
	stOld, ok := e.chain.StateAtDepth(3) // genesis
	if !ok {
		t.Fatal("StateAtDepth(3) failed")
	}
	bobNow := stNow.UTXOsOwnedBy(e.keys["bob"].Addr)
	bobOld := stOld.UTXOsOwnedBy(e.keys["bob"].Addr)
	if len(bobNow) <= len(bobOld) {
		t.Fatal("deep state should predate the transfer")
	}
	if _, ok := e.chain.StateAtDepth(1000); ok {
		t.Fatal("absurd depth accepted")
	}
}

func TestBuildBlockRespectsCapacity(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	params := e.chain.Params()
	params.MaxBlockTxs = 2
	small, err := NewChain(params, e.chain.Registry(), GenesisAlloc{e.keys["alice"].Addr: 10_000})
	if err != nil {
		t.Fatal(err)
	}
	// Split alice's funds so she has several outputs.
	op, o := small.TipState().UTXOsOwnedBy(e.keys["alice"].Addr), TxOut{}
	_ = o
	var prev OutPoint
	for p := range op {
		prev = p
	}
	split := NewTransfer(e.keys["alice"], 1, []TxIn{{Prev: prev}}, []TxOut{
		{Value: 2_500, Owner: e.keys["alice"].Addr},
		{Value: 2_500, Owner: e.keys["alice"].Addr},
		{Value: 2_500, Owner: e.keys["alice"].Addr},
		{Value: 2_500, Owner: e.keys["alice"].Addr},
	})
	b, _, _ := small.BuildBlock(e.keys["alice"].Addr, 10, []*Tx{split})
	b.Header.Seal(0)
	if _, err := small.AddBlock(b); err != nil {
		t.Fatal(err)
	}

	var txs []*Tx
	n := uint64(10)
	for p, out := range small.TipState().UTXOsOwnedBy(e.keys["alice"].Addr) {
		n++
		txs = append(txs, NewTransfer(e.keys["alice"], n, []TxIn{{Prev: p}},
			[]TxOut{{Value: out.Value, Owner: e.keys["bob"].Addr}}))
	}
	blk, _, invalid := small.BuildBlock(e.keys["alice"].Addr, 20, txs)
	if len(blk.Txs) != 3 { // coinbase + 2
		t.Fatalf("block has %d txs, want 3", len(blk.Txs))
	}
	if len(invalid) != 0 {
		t.Fatalf("capacity overflow reported as invalid (%d)", len(invalid))
	}
}

func TestBuildBlockChainsDependentTxs(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	op, o := e.utxoOf("alice", 10_000)
	tx1 := NewTransfer(e.keys["alice"], 1, []TxIn{{Prev: op}},
		[]TxOut{{Value: o.Value, Owner: e.keys["bob"].Addr}})
	// tx2 spends tx1's output — submitted first.
	tx2 := NewTransfer(e.keys["bob"], 2, []TxIn{{Prev: OutPoint{TxID: tx1.ID(), Index: 0}}},
		[]TxOut{{Value: o.Value, Owner: e.keys["alice"].Addr}})
	b, _, invalid := e.chain.BuildBlock(e.keys["alice"].Addr, 10, []*Tx{tx2, tx1})
	if len(invalid) != 0 || len(b.Txs) != 3 {
		t.Fatalf("dependent txs not packed: %d txs, %d invalid", len(b.Txs), len(invalid))
	}
}

func TestCoinbaseRequired(t *testing.T) {
	e := newEnv(t, "alice")
	b := NewBlock(Header{
		ChainID: "testnet", Parent: e.chain.Tip().Hash(), Height: 1,
		Time: 10, Bits: uint8(e.chain.Params().DifficultyBits),
	}, nil)
	b.Header.Seal(0)
	if _, err := e.chain.AddBlock(b); !errors.Is(err, ErrBlockInvalid) {
		t.Fatalf("block without coinbase accepted: %v", err)
	}
}

func TestDuplicateBlockIgnored(t *testing.T) {
	e := newEnv(t, "alice")
	b := e.mine()
	reorged, err := e.chain.AddBlock(b)
	if err != nil || reorged {
		t.Fatalf("re-adding block: reorged=%v err=%v", reorged, err)
	}
}

func TestWrongChainIDRejected(t *testing.T) {
	e := newEnv(t, "alice")
	b, _, _ := e.chain.BuildBlock(e.keys["alice"].Addr, 10, nil)
	b.Header.ChainID = "othernet"
	b.Header.Seal(0)
	if _, err := e.chain.AddBlock(b); !errors.Is(err, ErrBlockInvalid) {
		t.Fatalf("wrong chain id accepted: %v", err)
	}
}
