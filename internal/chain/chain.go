package chain

import (
	"bytes"
	"fmt"
	"slices"

	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Chain is one node's *view* of a blockchain: which blocks the node
// has seen, its canonical (longest-chain, first-seen-wins) tip choice,
// and its TipEvent listeners. Block bodies, ledger states, and the
// tx→block index live in the network's shared Executor — a view holds
// only membership and ordering. Blocks and states are immutable and
// shared across views.
type Chain struct {
	exec *Executor

	have      map[crypto.Hash]bool   // blocks this view has accepted
	tip       *Block                 // canonical head
	canonical map[uint64]crypto.Hash // height -> canonical block hash

	// listeners receive a TipEvent after every canonical-tip change.
	listeners []func(TipEvent)

	// Reorgs counts canonical-tip switches to a non-descendant block;
	// the fork experiments read it.
	Reorgs int
	// MaxReorgDepth is the deepest reorg this view performed: the
	// largest number of canonical blocks disconnected by one tip
	// switch. Partition heals produce the deep ones — the adversity
	// aggregates surface it.
	MaxReorgDepth int
}

// GenesisAlloc maps addresses to initial balances minted in the
// genesis block.
type GenesisAlloc map[crypto.Address]vm.Amount

// NewChain builds a single-view chain with its own private executor —
// the convenience constructor for tests and single-node uses. Networks
// replicating one blockchain across several nodes should build one
// Executor and hand each node a NewView, so every block executes once.
// Two NewChain calls with equal params and alloc produce the identical
// genesis, so independently constructed views share one chain
// identity.
func NewChain(params Params, reg *vm.Registry, alloc GenesisAlloc) (*Chain, error) {
	exec, err := NewExecutor(params, reg, alloc)
	if err != nil {
		return nil, err
	}
	return exec.NewView(), nil
}

// genesisTx mints the initial allocation deterministically (sorted by
// address so every node builds the same genesis).
func genesisTx(alloc GenesisAlloc) *Tx {
	addrs := make([]crypto.Address, 0, len(alloc))
	for a := range alloc {
		addrs = append(addrs, a)
	}
	slices.SortFunc(addrs, func(a, b crypto.Address) int {
		return bytes.Compare(a[:], b[:])
	})
	tx := &Tx{Kind: TxGenesis}
	for _, a := range addrs {
		tx.Outs = append(tx.Outs, TxOut{Value: alloc[a], Owner: a})
	}
	if len(tx.Outs) == 0 {
		// A chain can start with no pre-mine; coinbases mint later.
		// Keep one burnable dust output to a sentinel so the genesis
		// tx is well-formed.
		var sentinel crypto.Address
		sentinel[0] = 1
		tx.Outs = append(tx.Outs, TxOut{Value: 1, Owner: sentinel})
	}
	return tx
}

// Executor returns the shared store this view reads through.
func (c *Chain) Executor() *Executor { return c.exec }

// Params returns the chain's configuration.
func (c *Chain) Params() Params { return c.exec.params }

// Registry returns the contract registry.
func (c *Chain) Registry() *vm.Registry { return c.exec.reg }

// Genesis returns the genesis block.
func (c *Chain) Genesis() *Block { return c.exec.genesis }

// Tip returns the canonical head block.
func (c *Chain) Tip() *Block { return c.tip }

// Height returns the canonical head height.
func (c *Chain) Height() uint64 { return c.tip.Header.Height }

// Block returns a block by hash from any fork this view has seen.
func (c *Chain) Block(h crypto.Hash) (*Block, bool) {
	if !c.have[h] {
		return nil, false
	}
	return c.exec.blocks[h], true
}

// HasBlock reports whether the view already contains h.
func (c *Chain) HasBlock(h crypto.Hash) bool {
	return c.have[h]
}

// CanonicalAt returns the canonical block at the given height.
func (c *Chain) CanonicalAt(height uint64) (*Block, bool) {
	h, ok := c.canonical[height]
	if !ok {
		return nil, false
	}
	return c.exec.blocks[h], true
}

// IsCanonical reports whether the block with hash h is on the
// canonical chain.
func (c *Chain) IsCanonical(h crypto.Hash) bool {
	if !c.have[h] {
		return false
	}
	return c.canonical[c.exec.blocks[h].Header.Height] == h
}

// DepthOf returns how many blocks are mined on top of block h on the
// canonical chain (0 for the tip). The second result is false when h
// is unknown or not canonical — a block on an abandoned fork has no
// depth, which is exactly why participants wait for depth d before
// trusting SCw state changes.
func (c *Chain) DepthOf(h crypto.Hash) (int, bool) {
	if !c.IsCanonical(h) {
		return 0, false
	}
	return int(c.tip.Header.Height - c.exec.blocks[h].Header.Height), true
}

// StateAt returns the ledger state after the block with hash h. The
// state is shared across views: treat it as read-only and branch with
// Child() before mutating. A state pruned by the executor's GC is
// re-derived transparently by replay.
func (c *Chain) StateAt(h crypto.Hash) (*State, bool) {
	if !c.have[h] {
		return nil, false
	}
	return c.exec.stateOf(h)
}

// TipState returns the (shared, read-only) state at the canonical tip.
func (c *Chain) TipState() *State {
	st, _ := c.exec.stateOf(c.tip.Hash())
	return st
}

// StateAtDepth returns the state of the canonical block buried depth
// blocks under the tip (depth 0 = tip). It is how clients read
// "stable" contract state.
func (c *Chain) StateAtDepth(depth int) (*State, bool) {
	if depth < 0 || uint64(depth) > c.tip.Header.Height {
		return nil, false
	}
	b, ok := c.CanonicalAt(c.tip.Header.Height - uint64(depth))
	if !ok {
		return nil, false
	}
	return c.StateAt(b.Hash())
}

// AddBlock validates b against its parent and adds it to the view,
// switching tips when b extends a strictly longer chain (first-seen
// wins ties, as Section 2.1 describes miners accepting the first
// received block). Validation is memoized in the shared executor: the
// first view to see b pays for the state transition, every other view
// gets the cached verdict. It returns whether the canonical tip
// changed.
func (c *Chain) AddBlock(b *Block) (reorged bool, err error) {
	h := b.Hash()
	if c.have[h] {
		return false, nil
	}
	if !c.have[b.Header.Parent] {
		return false, blockErr("unknown parent %s", b.Header.Parent)
	}
	if _, err := c.exec.Execute(b); err != nil {
		return false, err
	}
	return c.adopt(b), nil
}

// AddMinedBlock adopts a block this node built itself, seeding the
// shared executor with the state BuildBlock already computed — the
// build pass was the block's one execution, so adopting it re-runs
// nothing and every peer's AddBlock hits the cache. built must be the
// state BuildBlock returned alongside b, with b sealed afterwards.
func (c *Chain) AddMinedBlock(b *Block, built *State) (reorged bool, err error) {
	h := b.Hash()
	if c.have[h] {
		return false, nil
	}
	if !c.have[b.Header.Parent] {
		return false, blockErr("unknown parent %s", b.Header.Parent)
	}
	if err := c.exec.CommitBuilt(b, built); err != nil {
		return false, err
	}
	return c.adopt(b), nil
}

// adopt records an executor-validated block in this view and applies
// the longest-chain rule.
func (c *Chain) adopt(b *Block) (reorged bool) {
	c.have[b.Hash()] = true
	if b.Header.Height > c.tip.Header.Height {
		c.setTip(b)
		return true
	}
	return false
}

// setTip switches the canonical chain to end at b, rebuilding the
// canonical index along the changed suffix and publishing a TipEvent
// describing exactly which blocks joined and left the canonical chain.
func (c *Chain) setTip(b *Block) {
	old := c.tip
	reorg := false
	if b.Header.Parent != old.Hash() {
		// Not a simple extension: count it as a reorg if the old tip
		// is abandoned.
		if !c.isAncestor(old, b) {
			c.Reorgs++
			reorg = true
		}
	}
	c.tip = b
	var connected, disconnected []*Block
	for cur := b; ; {
		h := cur.Hash()
		if c.canonical[cur.Header.Height] == h {
			break
		}
		if prevHash, ok := c.canonical[cur.Header.Height]; ok {
			disconnected = append(disconnected, c.exec.blocks[prevHash])
		}
		c.canonical[cur.Header.Height] = h
		connected = append(connected, cur)
		if cur.Header.Height == 0 {
			break
		}
		cur = c.exec.blocks[cur.Header.Parent]
	}
	// The walk above collects newest-first; events report oldest-first.
	slices.Reverse(connected)
	slices.Reverse(disconnected)
	// Drop canonical entries above the new tip (after a reorg to a
	// shorter-but-heavier chain; cannot happen with pure longest-chain
	// but kept for safety). These leave the canonical chain too.
	for hgt := b.Header.Height + 1; ; hgt++ {
		h, ok := c.canonical[hgt]
		if !ok {
			break
		}
		disconnected = append(disconnected, c.exec.blocks[h])
		delete(c.canonical, hgt)
	}
	if reorg && len(disconnected) > c.MaxReorgDepth {
		c.MaxReorgDepth = len(disconnected)
	}
	ev := TipEvent{Old: old, New: b, Connected: connected, Disconnected: disconnected, Reorg: reorg}
	for _, fn := range c.listeners {
		fn(ev)
	}
	// Tip advanced: let the shared executor sweep states that are now
	// buried beyond the prune horizon of every view. Runs after the
	// listeners so any depth-bounded reads they issue stay cheap.
	c.exec.prune()
}

// isAncestor reports whether a is an ancestor of (or equal to) b. The
// walk stops as soon as it descends below a's height — an ancestor of
// b at a's height can only be a itself — so a true reorg costs
// O(fork length), not O(chain height).
func (c *Chain) isAncestor(a, b *Block) bool {
	target := a.Hash()
	for cur := b; cur != nil; {
		if cur.Header.Height < a.Header.Height {
			return false
		}
		if cur.Hash() == target {
			return true
		}
		if cur.Header.Height == 0 {
			return false
		}
		cur = c.exec.blocks[cur.Header.Parent]
	}
	return false
}

// FindTx locates a transaction on the canonical chain, returning its
// block and index within it. The index is network-wide (shared), so
// candidate blocks are filtered down to this view's canonical chain.
func (c *Chain) FindTx(id crypto.Hash) (*Block, int, bool) {
	for _, bh := range c.exec.txIndex[id] {
		if c.IsCanonical(bh) {
			b := c.exec.blocks[bh]
			if i := b.FindTx(id); i >= 0 {
				return b, i, true
			}
		}
	}
	return nil, 0, false
}

// TxDepth returns the canonical-chain depth of the block containing
// tx id, or false if the transaction is not on the canonical chain.
func (c *Chain) TxDepth(id crypto.Hash) (int, bool) {
	b, _, ok := c.FindTx(id)
	if !ok {
		return 0, false
	}
	return c.DepthOf(b.Hash())
}

// ContractOps counts the canonical-chain deployments of and calls to
// the given contract addresses, served from the executor's contract-op
// index — O(ops touching addrs), independent of chain height. Index
// entries survive pruning for every block canonical in any live view,
// so counts match a full-chain scan.
func (c *Chain) ContractOps(addrs map[crypto.Address]bool) (deploys, calls int) {
	for a := range addrs {
		for _, ref := range c.exec.opIndex[a] {
			if c.canonical[ref.height] != ref.block {
				continue
			}
			if ref.call {
				calls++
			} else {
				deploys++
			}
		}
	}
	return deploys, calls
}

// ContractAtDepth reads a contract's state as of the canonical block
// at the given depth. Use depth 0 for the tip.
func (c *Chain) ContractAtDepth(addr crypto.Address, depth int) (vm.Contract, bool) {
	st, ok := c.StateAtDepth(depth)
	if !ok {
		return nil, false
	}
	return st.Contract(addr)
}

// HeadersFrom returns the canonical headers from (exclusive) the block
// with the given hash up to the tip, oldest first. It is what a
// participant submits as SPV evidence.
func (c *Chain) HeadersFrom(ancestor crypto.Hash) ([]*Header, bool) {
	b, ok := c.Block(ancestor)
	if !ok || !c.IsCanonical(ancestor) {
		return nil, false
	}
	var out []*Header
	for hgt := b.Header.Height + 1; hgt <= c.tip.Header.Height; hgt++ {
		cb, ok := c.CanonicalAt(hgt)
		if !ok {
			return nil, false
		}
		out = append(out, cb.Header)
	}
	return out, true
}

// BuildBlock assembles a block extending the canonical tip with as
// many valid mempool transactions as fit (the header is left unsealed;
// the miner grinds it), working directly on an overlay of the
// executor's shared tip state. Each candidate transaction is applied
// to a scratch overlay first and only folded in on success, so a
// failing transaction leaves no partial effects behind and the
// returned state is exactly ApplyBlock's verdict on the returned block
// — miners hand both to AddMinedBlock and the network never executes
// the block again. invalid lists transactions that failed validation
// while capacity remained — candidates for the miner to purge;
// transactions merely skipped for capacity are not reported and should
// stay in the mempool. time is the miner's current virtual time.
func (c *Chain) BuildBlock(miner crypto.Address, time sim.Time, mempool []*Tx) (b *Block, built *State, invalid []*Tx) {
	parent := c.tip
	if time < parent.Header.Time {
		time = parent.Header.Time
	}
	params := c.exec.params
	parentState, ok := c.exec.stateOf(parent.Hash())
	if !ok {
		panic(fmt.Sprintf("chain: no state for canonical tip %s", parent.Hash()))
	}
	st := parentState.Child()
	height := parent.Header.Height + 1

	coinbase := &Tx{
		Kind:  TxCoinbase,
		Nonce: height, // unique per height so coinbase ids differ
		Outs:  []TxOut{{Value: params.BlockReward, Owner: miner}},
	}
	txs := []*Tx{coinbase}
	if err := ApplyTx(st, c.exec.reg, params.ID, height, time, coinbase); err != nil {
		// Cannot happen with a well-formed coinbase; treat as fatal.
		panic(fmt.Sprintf("chain: coinbase rejected: %v", err))
	}
	// Multiple passes let transactions that spend outputs of other
	// pending transactions pack regardless of mempool order.
	pending := mempool
	capacity := params.MaxBlockTxs + 1 // + coinbase
	for {
		var failed []*Tx
		progress, full := false, false
		for _, tx := range pending {
			if len(txs) >= capacity {
				full = true
				break
			}
			// Trial overlay: a failing transaction (e.g. a contract
			// call rejected after its inputs were consumed) is
			// discarded wholesale instead of contaminating the block
			// state under construction.
			trial := st.overlay()
			if err := ApplyTx(trial, c.exec.reg, params.ID, height, time, tx); err != nil {
				trial.recycle()
				failed = append(failed, tx)
				continue
			}
			st.absorb(trial)
			trial.recycle()
			txs = append(txs, tx)
			progress = true
		}
		if full {
			// Nothing is purged when the block filled up: skipped
			// transactions may simply be waiting for the next block.
			break
		}
		if !progress || len(failed) == 0 {
			invalid = failed
			break
		}
		pending = failed
	}
	blk := NewBlock(Header{
		ChainID: params.ID,
		Parent:  parent.Hash(),
		Height:  height,
		Time:    time,
		Bits:    uint8(params.DifficultyBits),
	}, txs)
	return blk, st, invalid
}
