package crypto

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func testKey(t *testing.T, seed uint64) *KeyPair {
	t.Helper()
	r := sim.NewRNG(seed)
	return MustGenerateKey(NewRandReader(r.Uint64))
}

func TestSumDeterministicAndSensitive(t *testing.T) {
	a := Sum([]byte("hello"), []byte("world"))
	b := Sum([]byte("hello"), []byte("world"))
	c := Sum([]byte("helloworld"))
	if a != b {
		t.Fatal("Sum not deterministic")
	}
	// Concatenation boundary is not preserved by design (parts are
	// concatenated); the two must match.
	if a != c {
		t.Fatal("Sum over parts should equal sum over concatenation")
	}
	d := Sum([]byte("hello"), []byte("worle"))
	if a == d {
		t.Fatal("Sum not sensitive to input change")
	}
}

func TestHashHexRoundTrip(t *testing.T) {
	h := Sum([]byte("x"))
	got, err := HashFromHex(h.Hex())
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Fatal("hex round trip mismatch")
	}
	if _, err := HashFromHex("zz"); err == nil {
		t.Fatal("expected error on bad hex")
	}
	if _, err := HashFromHex("abcd"); err == nil {
		t.Fatal("expected error on short digest")
	}
}

func TestSignVerify(t *testing.T) {
	k := testKey(t, 1)
	msg := []byte("transfer 3 BTC")
	sig := k.Sign(msg)
	if !sig.Verify(msg) {
		t.Fatal("valid signature rejected")
	}
	if sig.Verify([]byte("transfer 4 BTC")) {
		t.Fatal("signature verified wrong message")
	}
	if sig.Signer() != k.Addr {
		t.Fatal("signer address mismatch")
	}
}

func TestSignatureTamperedRejected(t *testing.T) {
	k := testKey(t, 2)
	msg := []byte("m")
	f := func(i uint8, flip uint8) bool {
		sig := k.Sign(msg).Clone()
		if flip == 0 {
			flip = 1
		}
		idx := int(i) % len(sig.Sig)
		sig.Sig[idx] ^= flip
		return !sig.Verify(msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureMalformedRejected(t *testing.T) {
	var s Signature
	if s.Verify([]byte("m")) {
		t.Fatal("empty signature verified")
	}
	k := testKey(t, 3)
	sig := k.Sign([]byte("m"))
	sig.Pub = sig.Pub[:5]
	if sig.Verify([]byte("m")) {
		t.Fatal("short pubkey verified")
	}
}

func TestAddressesDistinct(t *testing.T) {
	a := testKey(t, 4)
	b := testKey(t, 5)
	if a.Addr == b.Addr {
		t.Fatal("distinct keys share an address")
	}
	if a.Addr.IsZero() {
		t.Fatal("derived address is zero")
	}
}

func TestKeyGenDeterministic(t *testing.T) {
	a := testKey(t, 6)
	b := testKey(t, 6)
	if a.Addr != b.Addr {
		t.Fatal("same seed produced different keys")
	}
}

func TestHashLock(t *testing.T) {
	secret := []byte("s3cr3t")
	hl := NewHashLock(secret)
	if !hl.Verify(secret) {
		t.Fatal("hashlock rejected its own secret")
	}
	if hl.Verify([]byte("s3cr3u")) {
		t.Fatal("hashlock accepted a wrong secret")
	}
	if hl.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestHashLockProperty(t *testing.T) {
	f := func(secret []byte, other []byte) bool {
		hl := NewHashLock(secret)
		if !hl.Verify(secret) {
			return false
		}
		if string(other) != string(secret) && hl.Verify(other) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSigLockMutualExclusionShape(t *testing.T) {
	trent := testKey(t, 7)
	ms := Sum([]byte("graph D at t"))

	rdLock := SigLock{MSDigest: ms, WitnessPub: trent.Addr, Purpose: PurposeRedeem}
	rfLock := SigLock{MSDigest: ms, WitnessPub: trent.Addr, Purpose: PurposeRefund}

	rdSig := trent.Sign(WitnessMessage(ms, PurposeRedeem))
	rfSig := trent.Sign(WitnessMessage(ms, PurposeRefund))

	if !rdLock.VerifySig(rdSig) {
		t.Fatal("redeem lock rejected redeem signature")
	}
	if !rfLock.VerifySig(rfSig) {
		t.Fatal("refund lock rejected refund signature")
	}
	// The cross cases must fail: a redeem signature can never satisfy
	// the refund lock and vice versa (the paper's mutual exclusion).
	if rdLock.VerifySig(rfSig) {
		t.Fatal("redeem lock accepted refund signature")
	}
	if rfLock.VerifySig(rdSig) {
		t.Fatal("refund lock accepted redeem signature")
	}
}

func TestSigLockWrongWitnessRejected(t *testing.T) {
	trent := testKey(t, 8)
	mallory := testKey(t, 9)
	ms := Sum([]byte("D"))
	lock := SigLock{MSDigest: ms, WitnessPub: trent.Addr, Purpose: PurposeRedeem}
	forged := mallory.Sign(WitnessMessage(ms, PurposeRedeem))
	if lock.VerifySig(forged) {
		t.Fatal("lock accepted a signature from the wrong witness")
	}
}

func TestSigLockWrongGraphRejected(t *testing.T) {
	trent := testKey(t, 10)
	lock := SigLock{MSDigest: Sum([]byte("D1")), WitnessPub: trent.Addr, Purpose: PurposeRedeem}
	sig := trent.Sign(WitnessMessage(Sum([]byte("D2")), PurposeRedeem))
	if lock.VerifySig(sig) {
		t.Fatal("lock accepted a signature over a different graph")
	}
}

func TestSignatureEncodeDecodeRoundTrip(t *testing.T) {
	k := testKey(t, 11)
	sig := k.Sign([]byte("payload"))
	enc := EncodeSignature(sig)
	dec, err := DecodeSignature(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !dec.Equal(sig) {
		t.Fatal("round trip changed the signature")
	}
	if !dec.Verify([]byte("payload")) {
		t.Fatal("decoded signature does not verify")
	}
}

func TestDecodeSignatureMalformed(t *testing.T) {
	cases := [][]byte{nil, {1}, {0, 0, 0, 200, 1, 2}, make([]byte, 4)}
	for i, c := range cases {
		if _, err := DecodeSignature(c); err == nil && len(c) < 8 {
			t.Fatalf("case %d: expected error", i)
		}
	}
}

func TestSigLockVerifySecretEncoding(t *testing.T) {
	trent := testKey(t, 12)
	ms := Sum([]byte("D"))
	lock := SigLock{MSDigest: ms, WitnessPub: trent.Addr, Purpose: PurposeRefund}
	secret := EncodeSignature(trent.Sign(WitnessMessage(ms, PurposeRefund)))
	if !lock.Verify(secret) {
		t.Fatal("lock rejected a valid encoded secret")
	}
	if lock.Verify([]byte("garbage")) {
		t.Fatal("lock accepted garbage")
	}
}

func TestMultiSigCompleteness(t *testing.T) {
	alice := testKey(t, 13)
	bob := testKey(t, 14)
	carol := testKey(t, 15)
	digest := Sum([]byte("(D, t)"))

	ms := NewMultiSig(digest)
	ms.Add(alice)
	required := []Address{alice.Addr, bob.Addr}
	if ms.Complete(required) {
		t.Fatal("incomplete multisig reported complete")
	}
	ms.Add(bob)
	if !ms.Complete(required) {
		t.Fatal("complete multisig reported incomplete")
	}
	// Extra signer does not hurt.
	ms.Add(carol)
	if !ms.Complete(required) {
		t.Fatal("extra signature broke completeness")
	}
}

func TestMultiSigDuplicateSignerIgnored(t *testing.T) {
	alice := testKey(t, 16)
	ms := NewMultiSig(Sum([]byte("d")))
	ms.Add(alice)
	ms.Add(alice)
	if len(ms.Sigs) != 1 {
		t.Fatalf("duplicate Add produced %d signatures, want 1", len(ms.Sigs))
	}
}

func TestMultiSigAddSignatureValidation(t *testing.T) {
	alice := testKey(t, 17)
	digest := Sum([]byte("d"))
	ms := NewMultiSig(digest)
	good := alice.Sign(digest[:])
	if err := ms.AddSignature(good); err != nil {
		t.Fatal(err)
	}
	if err := ms.AddSignature(good); err == nil {
		t.Fatal("duplicate signature accepted")
	}
	bad := alice.Sign([]byte("other digest"))
	if err := ms.AddSignature(bad); err == nil {
		t.Fatal("signature over wrong digest accepted")
	}
}

func TestMultiSigIDOrderIndependent(t *testing.T) {
	alice := testKey(t, 18)
	bob := testKey(t, 19)
	digest := Sum([]byte("d"))

	m1 := NewMultiSig(digest)
	m1.Add(alice)
	m1.Add(bob)
	m2 := NewMultiSig(digest)
	m2.Add(bob)
	m2.Add(alice)
	if m1.ID() != m2.ID() {
		t.Fatal("ms(D) ID depends on signing order")
	}

	m3 := NewMultiSig(Sum([]byte("d'")))
	m3.Add(alice)
	m3.Add(bob)
	if m1.ID() == m3.ID() {
		t.Fatal("different graphs share an ms(D) ID")
	}
}

func TestMultiSigIDDistinguishesSignerSets(t *testing.T) {
	alice := testKey(t, 20)
	bob := testKey(t, 21)
	digest := Sum([]byte("d"))
	m1 := NewMultiSig(digest)
	m1.Add(alice)
	m2 := NewMultiSig(digest)
	m2.Add(alice)
	m2.Add(bob)
	if m1.ID() == m2.ID() {
		t.Fatal("different signer sets share an ID")
	}
}

func TestMultiSigCompleteThreshold(t *testing.T) {
	alice := testKey(t, 25)
	bob := testKey(t, 26)
	carol := testKey(t, 27)
	dave := testKey(t, 28)
	digest := Sum([]byte("batch root"))
	required := []Address{alice.Addr, bob.Addr, carol.Addr, dave.Addr}

	ms := NewMultiSig(digest)
	ms.Add(alice)
	ms.Add(bob)
	if ms.CompleteThreshold(required, 3) {
		t.Fatal("2-of-4 reported complete at threshold 3")
	}
	ms.Add(carol)
	if !ms.CompleteThreshold(required, 3) {
		t.Fatal("3-of-4 reported incomplete at threshold 3")
	}
	// 3 valid signatures from the required set satisfy any m <= 3 but
	// not all-of-n.
	if !ms.CompleteThreshold(required, 1) || !ms.CompleteThreshold(required, 2) {
		t.Fatal("lower thresholds not satisfied by a larger quorum")
	}
	if ms.CompleteThreshold(required, 4) {
		t.Fatal("3-of-4 reported complete at threshold 4")
	}
	if ms.Complete(required) {
		t.Fatal("all-of-n Complete satisfied by a 3-of-4 quorum")
	}
}

func TestMultiSigCompleteThresholdOutsidersDontCount(t *testing.T) {
	alice := testKey(t, 29)
	bob := testKey(t, 30)
	mallory := testKey(t, 31)
	digest := Sum([]byte("d"))
	required := []Address{alice.Addr, bob.Addr}

	ms := NewMultiSig(digest)
	ms.Add(alice)
	ms.Add(mallory)
	if ms.CompleteThreshold(required, 2) {
		t.Fatal("signature from outside the required set counted toward quorum")
	}
	if !ms.CompleteThreshold(required, 1) {
		t.Fatal("valid required signature not counted with outsider present")
	}
}

func TestMultiSigCompleteThresholdRejectsTamperedSig(t *testing.T) {
	alice := testKey(t, 32)
	bob := testKey(t, 33)
	digest := Sum([]byte("d"))
	required := []Address{alice.Addr, bob.Addr}

	ms := NewMultiSig(digest)
	ms.Add(alice)
	ms.Add(bob)
	ms.Sigs[1].Sig[0] ^= 1
	// bob's tampered signature poisons the whole multisignature even
	// though alice alone would satisfy m=1.
	if ms.CompleteThreshold(required, 1) {
		t.Fatal("tampered signature did not poison threshold check")
	}
}

func TestMultiSigCompleteThresholdBounds(t *testing.T) {
	alice := testKey(t, 34)
	digest := Sum([]byte("d"))
	required := []Address{alice.Addr}
	ms := NewMultiSig(digest)
	ms.Add(alice)
	if ms.CompleteThreshold(required, 0) {
		t.Fatal("threshold 0 reported satisfiable")
	}
	if ms.CompleteThreshold(required, -1) {
		t.Fatal("negative threshold reported satisfiable")
	}
	if ms.CompleteThreshold(required, 2) {
		t.Fatal("threshold above len(required) reported satisfiable")
	}
	if ms.CompleteThreshold(nil, 1) {
		t.Fatal("empty required set satisfied a positive threshold")
	}
	// Duplicate addresses in required must not double-count one signer.
	dup := []Address{alice.Addr, alice.Addr}
	if ms.CompleteThreshold(dup, 2) {
		t.Fatal("duplicate required address double-counted one signature")
	}
	if !ms.CompleteThreshold(dup, 1) {
		t.Fatal("duplicate required set failed at threshold 1")
	}
}

func TestMultiSigCloneIndependent(t *testing.T) {
	alice := testKey(t, 22)
	bob := testKey(t, 23)
	digest := Sum([]byte("d"))
	m := NewMultiSig(digest)
	m.Add(alice)
	c := m.Clone()
	c.Add(bob)
	if len(m.Sigs) != 1 || len(c.Sigs) != 2 {
		t.Fatal("clone shares signature slice with original")
	}
}

func TestMultiSigCompleteRejectsTamperedSig(t *testing.T) {
	alice := testKey(t, 24)
	digest := Sum([]byte("d"))
	m := NewMultiSig(digest)
	m.Add(alice)
	m.Sigs[0].Sig[0] ^= 1
	if m.Complete([]Address{alice.Addr}) {
		t.Fatal("tampered multisig reported complete")
	}
}

func TestRandReaderDeterministic(t *testing.T) {
	mk := func() []byte {
		r := sim.NewRNG(99)
		rd := NewRandReader(r.Uint64)
		b := make([]byte, 100)
		rd.Read(b)
		return b
	}
	a, b := mk(), mk()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RandReader not deterministic")
		}
	}
}

func TestWitnessMessageDomainSeparation(t *testing.T) {
	ms := Sum([]byte("D"))
	rd := WitnessMessage(ms, PurposeRedeem)
	rf := WitnessMessage(ms, PurposeRefund)
	if string(rd) == string(rf) {
		t.Fatal("RD and RF messages identical")
	}
	if PurposeRedeem.String() != "RD" || PurposeRefund.String() != "RF" {
		t.Fatal("purpose names wrong")
	}
	if Purpose(9).String() == "" {
		t.Fatal("unknown purpose should still render")
	}
}
