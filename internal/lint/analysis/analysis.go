// Package analysis is a minimal, self-contained reimplementation of
// the golang.org/x/tools/go/analysis API surface that ac3lint's
// analyzers program against. The build environment for this module is
// intentionally dependency-free (stdlib only), so rather than vendor
// x/tools we keep the same shape — Analyzer, Pass, Diagnostic — on top
// of the stdlib go/ast + go/types machinery. An analyzer written here
// ports to the real framework by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in //ac3:<name>
	// escape-hatch annotations. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description shown by `ac3lint -help`.
	Doc string

	// Run applies the analyzer to one package. It reports findings
	// through pass.Report / pass.Reportf. The result value is unused
	// (kept for x/tools signature compatibility).
	Run func(*Pass) (any, error)
}

func (a *Analyzer) String() string { return a.Name }

// Pass is the interface between one analyzer run and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// ReadFile returns the source bytes of a file in the package, for
	// line-level annotation parsing. Never nil.
	ReadFile func(filename string) ([]byte, error)

	// Report delivers one diagnostic. Never nil.
	Report func(Diagnostic)
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}
