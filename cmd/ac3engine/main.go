// Command ac3engine runs a high-throughput AC2T workload on the
// sharded orchestration engine and prints machine-readable JSON
// aggregate results to stdout.
//
// Usage:
//
//	ac3engine [-shards N] [-txs N] [-seed N] [-workers N]
//	          [-protocol ac3wn|ac3tw|htlc] [-arrival sec] [-inflight N]
//	          [-timeout min] [-chains N]
//	          [-mix commit,abort,crash,race[,partition,lossy,geo]]
//	          [-loss P] [-partitionfor min]
//	          [-batchwindow sec] [-batchwitnesses N] [-batchthreshold M]
//	          [-sizes 2:6,3:3,4:1] [-progress] [-strict] [-execbudget N]
//	          [-prunedepth N] [-membudget MiB] [-memlimit MiB]
//	          [-trace file] [-tracechrome file] [-tracecap N]
//	          [-cpuprofile file] [-memprofile file]
//
// -trace writes the run's deterministic trace as NDJSON (one record
// per line, virtual timestamps + per-shard sequence numbers, byte-
// identical across worker counts); -tracechrome writes Chrome
// trace_event JSON loadable in chrome://tracing or https://ui.perfetto.dev
// (one process per shard, one track per transaction and per chain).
// Either flag enables recording; -tracecap bounds the per-shard ring
// buffer (0 = default 65536 records; older records evict first, so
// memory stays flat at any -txs).
//
// -batchwindow enables witness-side decision batching (AC3WN only):
// instead of one witness-chain transaction per AC2T decision, each
// shard's witness quorum collects the decisions arriving within the
// window and publishes one merkle-committed, threshold-attested
// commit_batch transaction; asset contracts then unlock against
// membership proofs. Outcomes are unchanged — only the witness-chain
// traffic columns (witness_decision_txs, batches_published,
// witness_txs_per_commit, ...) move. -batchwitnesses/-batchthreshold
// size the attestation quorum (defaults 4 and 3).
//
// The -mix flag takes four weights (the classic scenario matrix) or
// seven, adding the network-adversity scenarios: partition splits the
// transaction's decision chain during its decision window and heals
// -partitionfor minutes later, lossy drops each gossip message with
// probability -loss on every chain the AC2T touches, and geo skews
// the asset chains to intercontinental/WAN link classes so
// confirmation depths race. Adversity outcomes surface in the JSON
// aggregates as forks_observed, max_reorg_depth, and msgs_dropped.
//
// The run is deterministic: the same flags always produce
// byte-identical JSON aggregates, regardless of worker scheduling —
// partition windows ride the virtual clock and every loss draw comes
// from the per-shard forked RNGs, so adversity never breaks
// reproducibility.
// Wall-clock diagnostics go to stderr so stdout stays parseable.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime/debug"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/engine"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	shards := flag.Int("shards", 8, "number of independent simulation shards")
	txs := flag.Int("txs", 1000, "total AC2Ts across all shards")
	seed := flag.Uint64("seed", 42, "master seed (results are a pure function of it)")
	workers := flag.Int("workers", 0, "concurrent shard executors (0 = min(shards, GOMAXPROCS))")
	protocol := flag.String("protocol", "ac3wn", "protocol: ac3wn|ac3tw|htlc")
	arrival := flag.Float64("arrival", 20, "mean AC2T interarrival per shard, virtual seconds")
	inflight := flag.Int("inflight", 8, "max concurrent AC2Ts per shard (backpressure cap)")
	timeout := flag.Float64("timeout", 45, "per-transaction grading deadline, virtual minutes")
	chains := flag.Int("chains", 2, "asset chains per shard world (plus one witness chain)")
	mix := flag.String("mix", "7,2,1,1", "scenario weights: commit,abort,crash,race[,partition,lossy,geo]")
	loss := flag.Float64("loss", 0.25, "lossy-scenario gossip drop probability in (0,1)")
	partitionFor := flag.Float64("partitionfor", 6, "partition-scenario split duration, virtual minutes")
	batchWindow := flag.Float64("batchwindow", 0, "witness decision-batching collection window, virtual seconds (0 = per-AC2T decisions; AC3WN only)")
	batchWitnesses := flag.Int("batchwitnesses", 0, "batching attestation quorum size n (0 = default 4)")
	batchThreshold := flag.Int("batchthreshold", 0, "batching attestation threshold m (0 = default 2n/3+1)")
	sizes := flag.String("sizes", "2:6,3:3,4:1", "graph size distribution as size:weight,...")
	progress := flag.Bool("progress", false, "report live progress to stderr")
	strict := flag.Bool("strict", false, "exit non-zero unless every transaction settled (graded, none stuck) with zero atomicity violations")
	execBudget := flag.Float64("execbudget", 0, "max blocks executed per settled AC2T (0 = unchecked); guards the shared-executor N-times-to-once win")
	pruneDepth := flag.Int("prunedepth", 0, "executor state-GC horizon in blocks (0 = engine default, negative = retain every state)")
	memBudget := flag.Float64("membudget", 0, "max peak process memory in MiB via runtime sampling (0 = unchecked); guards the flat-memory-in-tx-count invariant")
	memLimit := flag.Float64("memlimit", 0, "soft runtime memory limit in MiB (GOMEMLIMIT; 0 = none) — caps GC overshoot at the cost of more frequent collections")
	traceOut := flag.String("trace", "", "write the deterministic trace as NDJSON to this file")
	traceChrome := flag.String("tracechrome", "", "write the trace as Chrome trace_event JSON (Perfetto-loadable) to this file")
	traceCap := flag.Int("tracecap", 0, "per-shard trace ring capacity (0 = default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file after the run")
	flag.Parse()

	if *memLimit > 0 {
		debug.SetMemoryLimit(int64(*memLimit * (1 << 20)))
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		// Stopped explicitly after the run: the exit paths below use
		// os.Exit, which would skip a deferred stop.
	}

	wl := engine.DefaultWorkload()
	wl.Protocol = engine.Protocol(*protocol)
	wl.Txs = *txs
	wl.ArrivalEvery = sim.Time(*arrival * float64(sim.Second))
	wl.MaxInFlight = *inflight
	wl.TxTimeout = sim.Time(*timeout * float64(sim.Minute))
	wl.AssetChains = *chains
	wl.Adversity.Loss = *loss
	wl.Adversity.PartitionFor = sim.Time(*partitionFor * float64(sim.Minute))
	wl.BatchWindow = sim.Time(*batchWindow * float64(sim.Second))
	wl.BatchWitnesses = *batchWitnesses
	wl.BatchThreshold = *batchThreshold

	var err error
	if wl.Mix, err = parseMix(*mix); err != nil {
		fatal(err)
	}
	if wl.Sizes, err = parseSizes(*sizes); err != nil {
		fatal(err)
	}

	eng, err := engine.New(engine.Config{
		Seed:         *seed,
		Shards:       *shards,
		Workers:      *workers,
		Workload:     wl,
		PruneDepth:   *pruneDepth,
		Trace:        *traceOut != "" || *traceChrome != "",
		TraceRingCap: *traceCap,
	})
	if err != nil {
		fatal(err)
	}

	stop := make(chan struct{})
	if *progress {
		go func() {
			t := time.NewTicker(time.Second)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					g, total := eng.Progress()
					fmt.Fprintf(os.Stderr, "graded %d/%d\n", g, total)
				}
			}
		}()
	}

	sampler := bench.StartMemSampler()
	start := time.Now()
	agg, err := eng.Run()
	wall := time.Since(start)
	mem := sampler.Stop()
	close(stop)
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		f, ferr := os.Create(*memProfile)
		if ferr != nil {
			fatal(ferr)
		}
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			fatal(werr)
		}
		f.Close()
	}
	if err != nil {
		fatal(err)
	}

	out, err := json.MarshalIndent(agg, "", "  ")
	if err != nil {
		fatal(err)
	}
	fmt.Println(string(out))
	if *traceOut != "" {
		if err := writeTrace(*traceOut, agg, trace.WriteNDJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "trace: %d records (%d evicted) -> %s\n",
			len(agg.Trace.Records), agg.Trace.Dropped, *traceOut)
	}
	if *traceChrome != "" {
		if err := writeTrace(*traceChrome, agg, trace.WriteChrome); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "chrome trace -> %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceChrome)
	}
	fmt.Fprintf(os.Stderr, "wall: %s (%.1f tx/s real time), virtual makespan: %s, %.1f sim events/tx\n",
		wall.Round(time.Millisecond),
		float64(agg.Graded)/wall.Seconds(),
		(time.Duration(agg.MakespanVirtualMs) * time.Millisecond).Round(time.Second),
		agg.SimEventsPerTx)
	fmt.Fprintf(os.Stderr, "blocks: %d mined, %d executed (%.1f per settled AC2T), exec cache hit rate %.1f%%\n",
		agg.BlocksMined, agg.BlocksExecuted, agg.BlocksExecutedPerTx, 100*agg.ExecHitRate)
	fmt.Fprintf(os.Stderr, "adversity: %d forks observed, max reorg depth %d, %d msgs dropped\n",
		agg.ForksObserved, agg.MaxReorgDepth, agg.MsgsDropped)
	if wl.Protocol == engine.ProtoAC3WN {
		fmt.Fprintf(os.Stderr, "witness: %d per-AC2T decision txs, %d batches (%d decisions, %d republishes), %.3f txs / %.1f bytes per committed AC2T\n",
			agg.WitnessDecisionTxs, agg.BatchesPublished, agg.BatchDecisions,
			agg.BatchRepublishes, agg.WitnessTxsPerCommit, agg.WitnessBytesPerCommit)
	}
	// Memory numbers are machine/GC-schedule dependent, so they live
	// here on stderr with the other wall-clock diagnostics — never in
	// the byte-compared JSON aggregates above.
	allocsPerTx := 0.0
	if agg.Graded > 0 {
		allocsPerTx = float64(mem.Mallocs) / float64(agg.Graded)
	}
	fmt.Fprintf(os.Stderr, "memory: peak heap %.1f MiB, peak sys %.1f MiB, %.0f allocs per graded AC2T, states: %d pruned, %d live, %d replayed, %d blocks retired\n",
		float64(mem.PeakHeapBytes)/(1<<20), float64(mem.PeakSysBytes)/(1<<20),
		allocsPerTx, agg.StatesPruned, agg.StatesLive, agg.StateReplays, agg.BlocksRetired)
	// Violations always fail AC3WN runs (the protocol's core claim);
	// for the baselines they only fail under -strict, since producing
	// them is often the point of the experiment.
	if agg.Violations > 0 && (*strict || wl.Protocol == engine.ProtoAC3WN) {
		fmt.Fprintf(os.Stderr, "ATOMICITY VIOLATIONS: %d\n", agg.Violations)
		os.Exit(1)
	}
	if *strict {
		switch {
		case agg.Graded != wl.Txs:
			fmt.Fprintf(os.Stderr, "STRICT: graded %d/%d transactions\n", agg.Graded, wl.Txs)
			os.Exit(1)
		case agg.Stuck != 0:
			fmt.Fprintf(os.Stderr, "STRICT: %d transactions failed to settle\n", agg.Stuck)
			os.Exit(1)
		}
	}
	if *execBudget > 0 && agg.BlocksExecutedPerTx > *execBudget {
		fmt.Fprintf(os.Stderr, "EXEC BUDGET: %.2f blocks executed per settled AC2T exceeds budget %.2f\n",
			agg.BlocksExecutedPerTx, *execBudget)
		os.Exit(1)
	}
	if *memBudget > 0 && float64(mem.PeakSysBytes)/(1<<20) > *memBudget {
		fmt.Fprintf(os.Stderr, "MEM BUDGET: peak sys %.1f MiB exceeds budget %.1f MiB\n",
			float64(mem.PeakSysBytes)/(1<<20), *memBudget)
		os.Exit(1)
	}
}

// parseMix parses "commit,abort,crash,race" weights, optionally
// extended with ",partition,lossy,geo".
func parseMix(s string) (engine.Mix, error) {
	parts := strings.Split(s, ",")
	if len(parts) != 4 && len(parts) != 7 {
		return engine.Mix{}, fmt.Errorf("mix must be 4 or 7 comma-separated weights, got %q", s)
	}
	w := make([]int, 7)
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return engine.Mix{}, fmt.Errorf("bad mix weight %q: %v", p, err)
		}
		w[i] = v
	}
	return engine.Mix{
		Commit: w[0], Abort: w[1], Crash: w[2], Race: w[3],
		Partition: w[4], Lossy: w[5], Geo: w[6],
	}, nil
}

// parseSizes parses "size:weight,..." into a distribution.
func parseSizes(s string) ([]engine.SizeWeight, error) {
	var out []engine.SizeWeight
	for _, p := range strings.Split(s, ",") {
		var sz, wt int
		if _, err := fmt.Sscanf(strings.TrimSpace(p), "%d:%d", &sz, &wt); err != nil {
			return nil, fmt.Errorf("bad size entry %q (want size:weight): %v", p, err)
		}
		out = append(out, engine.SizeWeight{Size: sz, Weight: wt})
	}
	return out, nil
}

// writeTrace exports the run's trace through the given writer.
func writeTrace(path string, agg *engine.Aggregate, write func(io.Writer, *trace.Trace) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f, agg.Trace); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(2)
}
