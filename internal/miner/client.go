package miner

import (
	"errors"
	"fmt"
	"slices"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Watch-registration errors. A halted (crashed) client cannot arm
// watches: silently accepting them used to drop the condition on the
// floor, leaving callers waiting on a callback that could never fire.
// Callers now learn at registration time and re-arm after Restart —
// exactly what a recovering protocol participant does anyway.
var (
	ErrHalted = errors.New("miner: client is halted")
	ErrClosed = errors.New("miner: client is closed")
)

// watchErr reports why a watch cannot be armed right now, or nil.
func (c *Client) watchErr() error {
	switch {
	case c.closed:
		return ErrClosed
	case c.halted:
		return ErrHalted
	}
	return nil
}

// Client is the application-layer client library of Section 2.1: an
// end-user identity attached to one mining node for reads, that
// multicasts transactions to the storage layer, tracks confirmation
// depths, and manages a simple UTXO wallet.
//
// All waiting is notification-driven on the attached node's tip-change
// signal: a watch's condition is re-evaluated only when the node's
// canonical chain actually changed, never on a timer. The single
// surviving poll is the resubmit fallback — a slow timer that
// re-multicasts a watched transaction that fell out of the chain
// (reorgs, mempool purges, crashed miners), so "submitted" eventually
// means "committed at depth d" unless the client is halted — which is
// exactly the crash model the paper's Section 1 failure scenario
// needs.
type Client struct {
	Key  *crypto.KeyPair
	node *Node
	net  *Network
	sim  *sim.Sim
	rng  *sim.RNG

	nonce    uint64
	reserved map[chain.OutPoint]bool

	watches []*watch
	waiter  *sim.Waiter // armed on the node's tip signal while watches exist
	halted  bool
	closed  bool

	// ResubmitEvery is the fallback-resubmission cadence: a watched
	// transaction absent from the canonical chain for a whole interval
	// is re-multicast. Defaults to three block intervals.
	ResubmitEvery sim.Time

	// Resubmits counts transaction re-broadcasts (diagnostics).
	Resubmits int
}

// watch is one pending condition: check reports (and side-effects)
// satisfaction; peekFn, when set, probes the condition without side
// effects (used for the registration-time evaluation — nil means the
// watch can never be pre-satisfied, e.g. persistent subscriptions);
// fallback is the optional resubmit timer that keeps the watched
// transaction alive while the condition is pending.
type watch struct {
	check    func() bool
	peekFn   func() bool
	fallback *sim.Poller
	canceled bool
}

// peek reports whether the condition already holds, with no side
// effects.
func (w *watch) peek() bool { return w.peekFn != nil && w.peekFn() }

// stop retires the watch and its fallback timer. Idempotent.
func (w *watch) stop() {
	w.canceled = true
	if w.fallback != nil {
		w.fallback.Cancel()
	}
}

// Sub is a persistent tip-change subscription handle (see
// Client.OnTipChange). Cancel is idempotent.
type Sub struct{ w *watch }

// Cancel detaches the subscription. Safe to call repeatedly, on an
// already-dead subscription, or on one that was registered while the
// client was halted.
func (s *Sub) Cancel() {
	if s.w != nil {
		s.w.stop()
	}
}

// Active reports whether the subscription can still fire.
func (s *Sub) Active() bool { return s.w != nil && !s.w.canceled }

// NewClient attaches a fresh client identity to node i of the
// network.
func NewClient(net *Network, nodeIndex int, key *crypto.KeyPair) *Client {
	n := net.Node(nodeIndex)
	return &Client{
		Key:           key,
		node:          n,
		net:           net,
		sim:           net.Sim,
		rng:           net.Sim.RNG().Fork(),
		reserved:      make(map[chain.OutPoint]bool),
		ResubmitEvery: 3 * net.Params.BlockInterval,
	}
}

// Chain returns the attached node's chain view (reads only).
func (c *Client) Chain() *chain.Chain { return c.node.Chain }

// ChainID returns the id of the blockchain this client talks to.
func (c *Client) ChainID() chain.ID { return c.net.Params.ID }

// Halt models an end-user site crash: pending watches and their
// fallback timers stop firing and no further submissions happen until
// Restart. Watch registration while halted fails with ErrHalted — a
// recovering participant re-arms its protocol from on-chain state
// after Restart, and the explicit error keeps a caller from waiting
// forever on a watch that was never armed.
func (c *Client) Halt() {
	c.halted = true
	if c.waiter != nil {
		c.waiter.Cancel()
		c.waiter = nil
	}
	for _, w := range c.watches {
		w.stop()
	}
	c.watches = nil
}

// Close permanently shuts the client down: like Halt, every pending
// watch and fallback poller is canceled — but a closed client never
// comes back. Restart is a no-op and watches registered after Close
// never arm a poller or a waiter in the first place, so no timer can
// leak past Close. Idempotent.
func (c *Client) Close() {
	c.closed = true
	c.Halt()
}

// Closed reports whether the client was permanently shut down.
func (c *Client) Closed() bool { return c.closed }

// Restart recovers a halted client. Watches must be re-established by
// the caller (a recovering participant re-drives its protocol). A
// closed client cannot restart.
func (c *Client) Restart() {
	if c.closed {
		return
	}
	c.halted = false
}

// Halted reports whether the client is down.
func (c *Client) Halted() bool { return c.halted }

// addWatch registers a condition and makes sure the client is waiting
// on its node's tip signal. A condition that already holds at
// registration fires through a zero-delay scheduled evaluation (never
// inline — registration must not reenter the caller), preserving the
// guarantee the old cadence pollers gave: the watch fires even on a
// chain that never changes tip again. Conditions still pending at
// registration — the overwhelmingly common case — are checked inline
// (a cheap read) and wait for tip changes without costing an event.
func (c *Client) addWatch(w *watch) {
	c.watches = append(c.watches, w)
	c.ensureArmed()
	if !w.peek() {
		return
	}
	c.sim.After(0, func() {
		if w.canceled || c.halted {
			return
		}
		if w.check() {
			w.stop() // onTip's next sweep drops the canceled watch
		}
	})
}

// ensureArmed keeps exactly one waiter on the node's tip signal while
// the client has live watches. One waiter serves every watch: a tip
// change costs the client a single evaluation pass, not one wakeup
// per watch.
func (c *Client) ensureArmed() {
	if c.waiter != nil || c.halted || len(c.watches) == 0 {
		return
	}
	c.waiter = c.node.TipChanged().Wait(c.onTip)
}

// onTip re-evaluates every watch after a tip change, retiring the
// satisfied ones, then re-arms. Callbacks may register new watches;
// those join the list for the next evaluation.
func (c *Client) onTip() {
	c.waiter = nil
	if c.halted {
		return
	}
	batch := c.watches
	c.watches = nil // callbacks registering new watches append to a fresh list
	var kept []*watch
	for _, w := range batch {
		if c.halted {
			// A callback halted this client mid-evaluation; the batch
			// is detached from c.watches, so retire the rest here.
			w.stop()
			continue
		}
		if w.canceled {
			continue
		}
		if w.check() {
			w.stop()
			continue
		}
		kept = append(kept, w)
	}
	if c.halted {
		for _, w := range append(kept, c.watches...) {
			w.stop()
		}
		c.watches = nil
		return
	}
	c.watches = append(kept, c.watches...)
	c.ensureArmed()
}

// OnTipChange registers a persistent subscription: fn runs after every
// canonical-tip change of the client's node until the subscription is
// canceled or the client halts. This is what protocol reconcilers
// drive on instead of a cadence poller. Registration on a halted or
// closed client fails with ErrHalted/ErrClosed — the returned Sub is
// inert but safe to Cancel, so recovery code may still hold it.
func (c *Client) OnTipChange(fn func()) (*Sub, error) {
	if err := c.watchErr(); err != nil {
		return &Sub{}, err
	}
	w := &watch{check: func() bool { fn(); return false }}
	c.addWatch(w)
	return &Sub{w: w}, nil
}

// Submit multicasts a signed transaction to the mining nodes,
// modeling the paper's end-user-to-storage-layer message passing. The
// multicast is one scheduled event delivering to all reachable nodes:
// it rides the same connectivity model as block gossip, so a miner
// that is crashed — or on the far side of a partition from the
// client's attached node — does not hear end-users either. (It used
// to reach every live mempool regardless of partitions, which
// silently neutered partition scenarios: a split network still saw
// every transaction everywhere.) The resubmit fallback re-multicasts
// after heal, so a transaction submitted into a minority partition
// still commits eventually.
//
// Deliberately NOT modeled: the miner overlay's loss and latency
// overlays. Client-to-miner submission is a reliable RPC with its own
// small delay (submitDelay), distinct from the gossip fabric —
// adversity degrades how miners replicate state, not whether a user's
// wallet call reaches its gateway. Suppressed submissions therefore
// also do not count toward p2p's Dropped.
func (c *Client) Submit(tx *chain.Tx) {
	if c.halted || tx == nil {
		return
	}
	c.sim.After(c.submitDelay(), func() {
		for _, n := range c.net.Nodes {
			if n.Alive() && c.net.P2P.Reachable(c.node.ID, n.ID) {
				n.SubmitLocal(tx)
			}
		}
	})
}

// submitDelay samples a small client-to-miner latency.
func (c *Client) submitDelay() sim.Time {
	return 1 + c.rng.Int63n(50)
}

// Balance sums the unreserved outputs the client owns at the tip.
func (c *Client) Balance() vm.Amount {
	var total vm.Amount
	for op, out := range c.Chain().TipState().UTXOsOwnedBy(c.Key.Addr) {
		if !c.reserved[op] {
			total += out.Value
		}
	}
	return total
}

// SelectFunds reserves unspent outputs totalling at least amount and
// returns them with the change value. Reservations of already-spent
// outputs are pruned first.
func (c *Client) SelectFunds(amount vm.Amount) ([]chain.TxIn, vm.Amount, error) {
	st := c.Chain().TipState()
	for op := range c.reserved {
		if _, live := st.UTXO(op); !live {
			delete(c.reserved, op)
		}
	}
	// Select in canonical outpoint order, never map iteration order:
	// the chosen inputs are wire-visible (they pick the transaction's
	// bytes, its id, and any contract address derived from it), so a
	// map-order selection would make all of those a function of the
	// runtime's per-process map seed the moment a wallet holds more
	// than one spendable output.
	owned := st.UTXOsOwnedBy(c.Key.Addr)
	cands := make([]chain.OutPoint, 0, len(owned))
	for op := range owned {
		if !c.reserved[op] {
			cands = append(cands, op)
		}
	}
	slices.SortFunc(cands, chain.OutPoint.Compare)
	var ins []chain.TxIn
	var total vm.Amount
	for _, op := range cands {
		ins = append(ins, chain.TxIn{Prev: op})
		total += owned[op].Value
		if total >= amount {
			break
		}
	}
	if total < amount {
		return nil, 0, fmt.Errorf("miner: %s has %d available, needs %d", c.Key.Addr, total, amount)
	}
	for _, in := range ins {
		c.reserved[in.Prev] = true
	}
	return ins, total - amount, nil
}

// changeOuts builds the change output list.
func (c *Client) changeOuts(change vm.Amount) []chain.TxOut {
	if change == 0 {
		return nil
	}
	return []chain.TxOut{{Value: change, Owner: c.Key.Addr}}
}

// Transfer builds, signs and submits a payment of amount to to.
func (c *Client) Transfer(to crypto.Address, amount vm.Amount) (*chain.Tx, error) {
	ins, change, err := c.SelectFunds(amount)
	if err != nil {
		return nil, err
	}
	c.nonce++
	outs := append([]chain.TxOut{{Value: amount, Owner: to}}, c.changeOuts(change)...)
	tx := chain.NewTransfer(c.Key, c.nonce, ins, outs)
	c.Submit(tx)
	return tx, nil
}

// Deploy builds, signs and submits a contract deployment locking
// value, returning the transaction and the contract's future address.
func (c *Client) Deploy(contractType string, params []byte, value vm.Amount) (*chain.Tx, crypto.Address, error) {
	var ins []chain.TxIn
	var change vm.Amount
	if value > 0 {
		var err error
		ins, change, err = c.SelectFunds(value)
		if err != nil {
			return nil, crypto.Address{}, err
		}
	}
	c.nonce++
	tx := chain.NewDeploy(c.Key, c.nonce, ins, c.changeOuts(change), contractType, params, value)
	c.Submit(tx)
	return tx, tx.ContractAddr(), nil
}

// Call builds, signs and submits a contract function call sending
// value along.
func (c *Client) Call(contract crypto.Address, fn string, args []byte, value vm.Amount) (*chain.Tx, error) {
	var ins []chain.TxIn
	var change vm.Amount
	if value > 0 {
		var err error
		ins, change, err = c.SelectFunds(value)
		if err != nil {
			return nil, err
		}
	}
	c.nonce++
	tx := chain.NewCall(c.Key, c.nonce, contract, fn, args, ins, c.changeOuts(change), value)
	c.Submit(tx)
	return tx, nil
}

// WhenTxAtDepth invokes fn once the transaction is on the canonical
// chain buried at least depth blocks. The condition is re-checked on
// every tip change of the client's node — including reorgs: a tx
// confirmed on a losing fork simply keeps the watch pending until it
// lands on the canonical chain again. A slow fallback timer
// re-multicasts the transaction whenever it is absent from the
// canonical chain for a whole ResubmitEvery, covering mempool wipes
// and fork losses even while no blocks arrive. Registration on a
// halted or closed client fails with ErrHalted/ErrClosed instead of
// silently never firing; a watch armed before a crash still dies with
// the crash (Halt cancels it), as the crash model requires.
func (c *Client) WhenTxAtDepth(tx *chain.Tx, depth int, fn func(blockHash crypto.Hash)) error {
	if err := c.watchErr(); err != nil {
		return err
	}
	id := tx.ID()
	w := &watch{}
	cond := func() (crypto.Hash, bool) {
		b, _, found := c.Chain().FindTx(id)
		if !found {
			return crypto.Hash{}, false
		}
		d, ok := c.Chain().DepthOf(b.Hash())
		if !ok || d < depth {
			return crypto.Hash{}, false
		}
		return b.Hash(), true
	}
	w.peekFn = func() bool { _, ok := cond(); return ok }
	w.check = func() bool {
		h, ok := cond()
		if !ok {
			return false
		}
		fn(h)
		return true
	}
	w.fallback = c.sim.Poll(c.ResubmitEvery, func() bool {
		if w.canceled || c.halted {
			return true
		}
		if _, _, found := c.Chain().FindTx(id); !found {
			c.Resubmits++
			c.Submit(tx)
		}
		return false
	})
	c.addWatch(w)
	return nil
}

// WhenContract invokes fn once pred holds for the contract's state at
// the given confirmation depth (depth 0 reads the tip). The predicate
// sees a read-only contract snapshot and is evaluated only when the
// node's canonical chain changes — contract state at any depth cannot
// change otherwise. Registration on a halted or closed client fails
// with ErrHalted/ErrClosed.
func (c *Client) WhenContract(addr crypto.Address, depth int, pred func(vm.Contract) bool, fn func()) error {
	if err := c.watchErr(); err != nil {
		return err
	}
	cond := func() bool {
		ct, ok := c.Chain().ContractAtDepth(addr, depth)
		return ok && pred(ct)
	}
	w := &watch{peekFn: cond, check: func() bool {
		if !cond() {
			return false
		}
		fn()
		return true
	}}
	c.addWatch(w)
	return nil
}

// ContractNow reads a contract's current state at the given depth.
func (c *Client) ContractNow(addr crypto.Address, depth int) (vm.Contract, bool) {
	return c.Chain().ContractAtDepth(addr, depth)
}
