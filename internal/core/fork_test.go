package core

import (
	"fmt"
	"testing"

	"repro/internal/chain"
	"repro/internal/graph"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// forkySpec makes a chain where propagation delay is comparable to
// the block interval, so natural forks are frequent — the adversarial
// environment Lemma 5.3 is about.
func forkySpec(id chain.ID) xchain.ChainSpec {
	s := xchain.DefaultChainSpec(id)
	s.Miners = 4
	s.Latency = p2p.LatencyModel{Base: 4 * sim.Second, Jitter: 6 * sim.Second}
	return s
}

// TestAC3WNSafeOnForkyWitnessChain runs AC3WN with a witness network
// that forks constantly. Depth-d confirmation must still yield a
// single consistent decision: no run may ever mix redeemed and
// refunded contracts (Lemma 5.3 with ε driven down by d).
func TestAC3WNSafeOnForkyWitnessChain(t *testing.T) {
	const trials = 6
	for trial := 0; trial < trials; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial-%d", trial), func(t *testing.T) {
			seed := uint64(31000 + trial*977)
			b := xchain.NewBuilder(seed)
			alice := b.Participant("alice")
			bob := b.Participant("bob")
			b.Chain(xchain.DefaultChainSpec("bitcoin"))
			b.Chain(xchain.DefaultChainSpec("ethereum"))
			b.Chain(forkySpec("witness")) // the stressed network
			b.Fund(alice, "bitcoin", 1_000_000)
			b.Fund(bob, "ethereum", 1_000_000)
			w, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			g, err := graph.TwoParty(int64(seed), alice.Addr(), bob.Addr(),
				40_000, "bitcoin", 90_000, "ethereum")
			if err != nil {
				t.Fatal(err)
			}
			r, err := New(w, Config{
				Graph:        g,
				Participants: []*xchain.Participant{alice, bob},
				Initiator:    alice,
				WitnessChain: "witness",
				WitnessDepth: 4, // deeper d against the forky witness
				AssetDepth:   2,
			})
			if err != nil {
				t.Fatal(err)
			}
			r.Start()
			w.RunUntil(3 * sim.Hour)
			w.StopMining()
			w.RunFor(2 * sim.Minute)

			// The witness network must actually have forked for this
			// test to mean anything.
			if w.Net("witness").TotalReorgs() == 0 {
				t.Fatal("witness network never forked; stress parameters too mild")
			}
			out := r.Grade()
			if out.AtomicityViolated() {
				t.Fatalf("fork broke atomicity: %+v", out.Edges)
			}
			if !out.Committed() {
				t.Fatalf("AC2T did not commit on the forky witness chain: %+v (events %v)", out.Edges, r.Events())
			}
		})
	}
}
