package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Wallclock forbids reading the process's wall clock inside
// deterministic packages. Engine outcomes must be a pure function of
// the seed; `time.Now` (and everything built on it — timers, tickers,
// `time.Since`) injects the host's scheduler into the schedule. All
// simulated time flows through sim.Time / sim.Sim.
//
// Built-in allowlist: cmd/* front-ends (wall-time reporting is their
// job — they are outside the deterministic scope by construction) and
// bench.MemSampler (its whole purpose is sampling the real process on
// a real clock; its measurements are reported out-of-band and never
// enter the byte-compared aggregates). Anything else needs an
// `//ac3:wallclock <justification>` annotation.
var Wallclock = &analysis.Analyzer{
	Name: "wallclock",
	Doc: "forbid wall-clock time (time.Now, time.Since, timers) in deterministic packages; " +
		"virtual sim.Time is the only clock the engine may observe",
	Run: runWallclock,
}

// wallclockFuncs are the package-level functions of "time" that read
// or schedule on the wall clock. Pure constructors/parsers
// (time.Date, time.Unix, time.ParseDuration, ...) stay legal.
var wallclockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

func runWallclock(pass *analysis.Pass) (any, error) {
	if !deterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := collectDirectives(pass)
	dirs.reportMissingJustifications()
	for _, f := range pass.Files {
		var stack funcStack
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack.pop()
				return true
			}
			stack.push(n)
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !wallclockFuncs[fn.Name()] {
				return true
			}
			if memSamplerMethod(pass, stack.enclosing()) {
				return true
			}
			if dirs.allowed("wallclock", call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "time.%s reads the wall clock in deterministic package %s; use the sim's virtual clock, or annotate //ac3:wallclock with a justification",
				fn.Name(), pass.Pkg.Path())
			return true
		})
	}
	return nil, nil
}

// memSamplerMethod reports whether decl belongs to bench.MemSampler —
// the one deterministic-tree type whose job is observing the real
// process on the real clock (its measurements stay out of the
// byte-compared aggregates). Covers both methods on the type and its
// StartMemSampler constructor.
func memSamplerMethod(pass *analysis.Pass, decl *ast.FuncDecl) bool {
	if pass.Pkg.Path() != "repro/internal/bench" || decl == nil {
		return false
	}
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return strings.Contains(decl.Name.Name, "MemSampler")
	}
	t := pass.TypesInfo.TypeOf(decl.Recv.List[0].Type)
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "MemSampler"
}

// funcStack tracks the innermost enclosing *ast.FuncDecl during an
// ast.Inspect walk (Inspect calls back with nil on exit).
type funcStack struct {
	nodes []ast.Node
}

func (s *funcStack) push(n ast.Node) { s.nodes = append(s.nodes, n) }
func (s *funcStack) pop() {
	if len(s.nodes) > 0 {
		s.nodes = s.nodes[:len(s.nodes)-1]
	}
}

// enclosing returns the nearest FuncDecl on the stack. Function
// literals inside a method still belong to that method for allowlist
// purposes (MemSampler's sampling loop runs in a func literal).
func (s *funcStack) enclosing() *ast.FuncDecl {
	for i := len(s.nodes) - 1; i >= 0; i-- {
		if fd, ok := s.nodes[i].(*ast.FuncDecl); ok {
			return fd
		}
	}
	return nil
}

// calleeFunc resolves the *types.Func a call invokes, or nil.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fn, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	case *ast.Ident:
		if fn, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok {
			return fn
		}
	}
	return nil
}
