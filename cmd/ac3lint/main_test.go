package main

import (
	"testing"

	"repro/internal/lint"
)

// TestDriverRegistersAllAnalyzers pins the driver's spelled-out
// analyzer list to lint.All: same length, same order, same *Analyzer
// identities. Adding an analyzer to the suite without registering it
// here (or vice versa) fails this test rather than silently shipping a
// checker that skips a rule.
func TestDriverRegistersAllAnalyzers(t *testing.T) {
	if len(analyzers) != len(lint.All) {
		t.Fatalf("driver registers %d analyzers, lint.All has %d", len(analyzers), len(lint.All))
	}
	for i, a := range lint.All {
		if analyzers[i] != a {
			t.Errorf("driver analyzer %d is %q, lint.All[%d] is %q (must be the same *Analyzer)",
				i, analyzers[i].Name, i, a.Name)
		}
	}
}
