package spv

import (
	"testing"

	"repro/internal/chain"
)

func TestFollowTracksChainGrowth(t *testing.T) {
	f := newFixture(t, 3)
	ln, err := Follow(f.view)
	if err != nil {
		t.Fatal(err)
	}
	// Seeded with the existing history.
	if ln.Tip().Hash() != f.view.Tip().Header.Hash() {
		t.Fatal("follower not seeded to the view's tip")
	}
	// Future blocks arrive through the notification feed, no rescan.
	for i := 0; i < 4; i++ {
		f.mine()
		if ln.Tip().Hash() != f.view.Tip().Header.Hash() {
			t.Fatalf("follower lost the tip after block %d", i)
		}
	}
	if ln.HeaderCount() != int(f.view.Height())+1 {
		t.Fatalf("follower holds %d headers, view height %d", ln.HeaderCount(), f.view.Height())
	}
}

func TestFollowTracksReorg(t *testing.T) {
	f := newFixture(t, 1) // canonical: genesis <- b1(tx) <- b2
	ln, err := Follow(f.view)
	if err != nil {
		t.Fatal(err)
	}
	// Build a longer competing branch on a twin view with the same
	// genesis and let the followed view adopt it.
	alt, err := chain.NewChain(f.view.Params(), nil, chain.GenesisAlloc{f.key.Addr: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	if alt.Genesis().Hash() != f.view.Genesis().Hash() {
		t.Fatal("twin view disagrees on genesis")
	}
	for i := 0; i < 3; i++ {
		b, _, _ := alt.BuildBlock(f.key.Addr, f.now+forkTime(i), nil)
		b.Header.Seal(f.rng.Uint64())
		if _, err := alt.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		if _, err := f.view.AddBlock(b); err != nil {
			t.Fatal(err)
		}
	}
	if f.view.Reorgs != 1 {
		t.Fatalf("view Reorgs = %d, want 1", f.view.Reorgs)
	}
	if ln.Tip().Hash() != f.view.Tip().Header.Hash() {
		t.Fatal("follower did not switch to the winning fork")
	}
	// The follower's canonical index must validate inclusion against
	// the new branch, not the stale one: the old tx's block is no
	// longer canonical.
	b, _, found := f.view.FindTx(f.tx.ID())
	if found {
		t.Fatalf("tx unexpectedly canonical after reorg (block %s)", b.Hash())
	}
}

// forkTime spaces fork-block timestamps.
func forkTime(i int) int64 { return int64(i+1) * 1000 }
