// Package contracts implements the concrete smart contracts of the
// paper:
//
//   - HTLC — the hashlock/timelock contract underlying Nolan's and
//     Herlihy's atomic swaps (the baselines of Section 1).
//   - CentralizedSC — Algorithm 2, the AC3TW asset contract whose
//     redemption/refund secrets are a trusted witness's signatures.
//   - WitnessSC — Algorithm 3, the AC2T coordinator deployed on the
//     witness network with states P → RDauth | RFauth.
//   - PermissionlessSC — Algorithm 4, the AC3WN asset contract whose
//     redeem/refund are conditioned on SPV evidence of WitnessSC's
//     state at depth ≥ d.
//   - HeaderRelay — the generic Section 4.3/Figure 6 validator: a
//     contract that flips state when evidence proves a transaction
//     occurred in another blockchain.
//
// All five follow the AtomicSwapSC template of Algorithm 1: a sender,
// a recipient, a locked asset, a state machine {P, RD, RF}, and
// mutually exclusive redemption and refund commitment schemes.
package contracts

import (
	"fmt"

	"repro/internal/vm"
)

// Registry type names under which these contracts deploy.
const (
	TypeHTLC           = "htlc"
	TypeCentralized    = "ac3tw.swap"
	TypeWitness        = "ac3wn.witness"
	TypePermissionless = "ac3wn.swap"
	TypeHeaderRelay    = "relay"
)

// TypeBatchWitness ("ac3wn.batch") and FnCommitBatch are declared in
// batch.go beside the batch-commitment contract.

// Function names exposed by the contracts.
const (
	FnRedeem          = "redeem"
	FnRefund          = "refund"
	FnAuthorizeRedeem = "authorize_redeem"
	FnAuthorizeRefund = "authorize_refund"
	FnSubmitEvidence  = "submit_evidence"
)

// SwapState is the asset-contract state machine of Algorithm 1.
type SwapState byte

// The three states: published, redeemed, refunded.
const (
	StatePublished SwapState = iota // P
	StateRedeemed                   // RD
	StateRefunded                   // RF
)

// String names the state.
func (s SwapState) String() string {
	switch s {
	case StatePublished:
		return "P"
	case StateRedeemed:
		return "RD"
	case StateRefunded:
		return "RF"
	default:
		return fmt.Sprintf("state(%d)", byte(s))
	}
}

// WitnessState is the coordinator state machine of Algorithm 3.
type WitnessState byte

// The witness contract states.
const (
	WitnessPublished        WitnessState = iota // P
	WitnessRedeemAuthorized                     // RDauth
	WitnessRefundAuthorized                     // RFauth
)

// String names the state.
func (s WitnessState) String() string {
	switch s {
	case WitnessPublished:
		return "P"
	case WitnessRedeemAuthorized:
		return "RDauth"
	case WitnessRefundAuthorized:
		return "RFauth"
	default:
		return fmt.Sprintf("state(%d)", byte(s))
	}
}

// RegisterAll registers every contract type on a registry. Chains in
// AC3WN experiments call this so any of the protocol's contracts can
// deploy.
func RegisterAll(reg *vm.Registry) {
	reg.Register(TypeHTLC, func() vm.Contract { return &HTLC{} })
	reg.Register(TypeCentralized, func() vm.Contract { return &CentralizedSC{} })
	reg.Register(TypeWitness, func() vm.Contract { return &WitnessSC{} })
	reg.Register(TypePermissionless, func() vm.Contract { return &PermissionlessSC{} })
	reg.Register(TypeHeaderRelay, func() vm.Contract { return &HeaderRelay{} })
	reg.Register(TypeBatchWitness, func() vm.Contract { return &BatchWitnessSC{} })
}
