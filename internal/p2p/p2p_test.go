package p2p

import (
	"testing"

	"repro/internal/sim"
)

type recorder struct {
	msgs []string
}

func (r *recorder) handler() Handler {
	return func(from NodeID, payload any) {
		r.msgs = append(r.msgs, payload.(string))
	}
}

func TestSendDelivers(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 10})
	var a, b recorder
	net.Register(1, a.handler())
	net.Register(2, b.handler())
	net.Send(1, 2, "hello")
	s.Run()
	if len(b.msgs) != 1 || b.msgs[0] != "hello" {
		t.Fatalf("b.msgs = %v", b.msgs)
	}
	if len(a.msgs) != 0 {
		t.Fatal("sender received its own message")
	}
	if s.Now() != 10 {
		t.Fatalf("delivery at %d, want 10", s.Now())
	}
}

func TestBroadcastSkipsSender(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 5})
	recs := make([]*recorder, 4)
	for i := range recs {
		recs[i] = &recorder{}
		net.Register(NodeID(i), recs[i].handler())
	}
	net.Broadcast(0, "blk")
	s.Run()
	if len(recs[0].msgs) != 0 {
		t.Fatal("broadcast delivered to sender")
	}
	for i := 1; i < 4; i++ {
		if len(recs[i].msgs) != 1 {
			t.Fatalf("node %d got %d messages", i, len(recs[i].msgs))
		}
	}
}

func TestJitterWithinBounds(t *testing.T) {
	s := sim.New(7)
	net := NewNetwork(s, LatencyModel{Base: 100, Jitter: 50})
	var times []sim.Time
	net.Register(1, func(NodeID, any) {})
	net.Register(2, func(NodeID, any) { times = append(times, s.Now()) })
	for i := 0; i < 200; i++ {
		net.Send(1, 2, i)
	}
	s.Run()
	if len(times) != 200 {
		t.Fatalf("delivered %d, want 200", len(times))
	}
	for _, at := range times {
		if at < 100 || at >= 150 {
			t.Fatalf("delivery at %d outside [100,150)", at)
		}
	}
}

func TestCrashDropsMessages(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 10})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())

	net.Crash(2)
	net.Send(1, 2, "lost")
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("crashed node received a message")
	}

	net.Recover(2)
	net.Send(1, 2, "after-recovery")
	s.Run()
	if len(b.msgs) != 1 || b.msgs[0] != "after-recovery" {
		t.Fatalf("b.msgs = %v", b.msgs)
	}
}

func TestInFlightMessageLostOnCrash(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 100})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Send(1, 2, "in-flight")
	s.At(50, func() { net.Crash(2) })
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("message delivered to node that crashed mid-flight")
	}
}

func TestCrashedSenderCannotSend(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Crash(1)
	net.Send(1, 2, "ghost")
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("crashed node sent a message")
	}
}

func TestPartitionBlocksAndHealRestores(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	var a, b, c recorder
	net.Register(1, a.handler())
	net.Register(2, b.handler())
	net.Register(3, c.handler())

	net.Partition([]NodeID{1}, []NodeID{2, 3})
	net.Send(1, 2, "blocked")
	net.Send(2, 3, "same-side")
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("message crossed the partition")
	}
	if len(c.msgs) != 1 {
		t.Fatal("same-partition message not delivered")
	}

	net.Heal()
	net.Send(1, 2, "healed")
	s.Run()
	if len(b.msgs) != 1 || b.msgs[0] != "healed" {
		t.Fatalf("b.msgs = %v", b.msgs)
	}
}

func TestPartitionAppliedToInFlight(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 100})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Send(1, 2, "x")
	s.At(10, func() { net.Partition([]NodeID{1}, []NodeID{2}) })
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("in-flight message crossed a partition formed before delivery")
	}
}

func TestInFlightMessageCrossesHealBoundary(t *testing.T) {
	// A message sent while the endpoints can talk, with a partition
	// forming and healing entirely within its flight time, is
	// delivered: at both send and delivery the endpoints were
	// connected.
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 100})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Send(1, 2, "survivor")
	s.At(10, func() { net.Partition([]NodeID{1}, []NodeID{2}) })
	s.At(60, func() { net.Heal() })
	s.Run()
	if len(b.msgs) != 1 || b.msgs[0] != "survivor" {
		t.Fatalf("b.msgs = %v; in-flight message did not cross the heal boundary", b.msgs)
	}
	if net.Dropped != 0 {
		t.Fatalf("Dropped = %d, want 0", net.Dropped)
	}
}

func TestSendDuringPartitionDroppedDespiteHeal(t *testing.T) {
	// The converse boundary: a message sent while partitioned is
	// dropped at send time — healing before its delay would have
	// elapsed does not resurrect it.
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 100})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Partition([]NodeID{1}, []NodeID{2})
	net.Send(1, 2, "casualty")
	s.At(10, func() { net.Heal() })
	s.Run()
	if len(b.msgs) != 0 {
		t.Fatal("message sent during a partition was delivered after heal")
	}
	if net.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", net.Dropped)
	}
}

func TestNodeAbsentFromEveryGroup(t *testing.T) {
	// Nodes not named in any partition group share group 0: they can
	// talk to each other but to no listed group.
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	var b, c, d recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Register(3, c.handler())
	net.Register(4, d.handler())
	net.Partition([]NodeID{1}, []NodeID{2})
	net.Send(3, 4, "absentees-talk") // both absent -> both group 0
	net.Send(3, 1, "to-group-1")     // absent -> listed: blocked
	net.Send(1, 3, "from-group-1")   // listed -> absent: blocked
	net.Send(2, 3, "from-group-2")   // listed -> absent: blocked
	s.Run()
	if len(d.msgs) != 1 || d.msgs[0] != "absentees-talk" {
		t.Fatalf("d.msgs = %v; absentees could not talk to each other", d.msgs)
	}
	if len(c.msgs) != 0 {
		t.Fatalf("c.msgs = %v; partition leaked to an absent node", c.msgs)
	}
	if !net.Partitioned() {
		t.Fatal("Partitioned() = false with groups in force")
	}
}

func TestLossDropsDeterministically(t *testing.T) {
	// Two networks built from identically seeded simulators must make
	// identical loss draws — the property that keeps engine aggregates
	// byte-identical across worker counts.
	deliveries := func() (got []int, dropped uint64) {
		s := sim.New(99)
		net := NewNetwork(s, LatencyModel{Base: 10, Loss: 0.3})
		net.Register(1, func(NodeID, any) {})
		net.Register(2, func(_ NodeID, p any) { got = append(got, p.(int)) })
		for i := 0; i < 200; i++ {
			net.Send(1, 2, i)
		}
		s.Run()
		return got, net.Dropped
	}
	a, da := deliveries()
	b, db := deliveries()
	if da != db || len(a) != len(b) {
		t.Fatalf("loss draws diverged: %d/%d dropped, %d/%d delivered", da, db, len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("delivery %d diverged: %d vs %d", i, a[i], b[i])
		}
	}
	if da == 0 || len(a) == 0 {
		t.Fatalf("degenerate loss run: %d dropped, %d delivered", da, len(a))
	}
}

func TestOverlayWorstWinsAndRemoval(t *testing.T) {
	s := sim.New(3)
	net := NewNetwork(s, LatencyModel{Base: 10, Jitter: 5})
	o1 := net.PushOverlay(LatencyModel{Base: 100, Loss: 0.5})
	o2 := net.PushOverlay(LatencyModel{Base: 50, Jitter: 200})
	eff := net.Effective()
	if eff.Base != 100 || eff.Jitter != 200 || eff.Loss != 0.5 {
		t.Fatalf("Effective() = %+v, want worst of each field", eff)
	}
	o1.Remove()
	o1.Remove() // idempotent
	eff = net.Effective()
	if eff.Base != 50 || eff.Jitter != 200 || eff.Loss != 0 {
		t.Fatalf("Effective() after removal = %+v", eff)
	}
	o2.Remove()
	if eff := net.Effective(); eff != net.Latency() {
		t.Fatalf("Effective() = %+v after removing all overlays, want base %+v", eff, net.Latency())
	}
}

func TestSchedulePartitionWindowAndSupersession(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())

	// Window 1: [100, 200). Window 2: [150, 400) supersedes it — the
	// stale heal at 200 must not undo window 2.
	net.SchedulePartition(100, 100, []NodeID{1}, []NodeID{2})
	net.SchedulePartition(150, 250, []NodeID{1}, []NodeID{2})
	probe := func(at sim.Time, label string) {
		s.At(at, func() { net.Send(1, 2, label) })
	}
	probe(50, "before")    // delivered: no partition yet
	probe(120, "w1")       // dropped
	probe(250, "stale")    // dropped: w1's heal was superseded
	probe(420, "after-w2") // delivered: w2 healed at 400
	s.Run()
	want := []string{"before", "after-w2"}
	if len(b.msgs) != len(want) || b.msgs[0] != want[0] || b.msgs[1] != want[1] {
		t.Fatalf("delivered %v, want %v", b.msgs, want)
	}
	if net.Partitioned() {
		t.Fatal("network still partitioned after the last window healed")
	}
}

func TestLinkClassPresetsOrdered(t *testing.T) {
	lan, wan, geo := LANLink(), WANLink(), GeoLink()
	if !(lan.Base < wan.Base && wan.Base < geo.Base) {
		t.Fatalf("link classes out of order: %v %v %v", lan, wan, geo)
	}
	if lan.Loss != 0 || wan.Loss != 0 || geo.Loss != 0 {
		t.Fatal("presets must not bundle loss; loss is an explicit overlay")
	}
}

func TestRegisterTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{})
	net.Register(1, func(NodeID, any) {})
	net.Register(1, func(NodeID, any) {})
}

func TestNilHandlerPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewNetwork(sim.New(1), LatencyModel{}).Register(1, nil)
}

func TestSendToUnregisteredIsDropped(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	net.Register(1, func(NodeID, any) {})
	net.Send(1, 99, "void") // must not panic
	s.Run()
}

func TestCountersAdvance(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{Base: 1})
	var b recorder
	net.Register(1, func(NodeID, any) {})
	net.Register(2, b.handler())
	net.Send(1, 2, "x")
	s.Run() // deliver before crashing
	net.Crash(2)
	net.Send(1, 2, "y")
	s.Run()
	if net.Sent != 2 || net.Delivered != 1 {
		t.Fatalf("Sent=%d Delivered=%d, want 2/1", net.Sent, net.Delivered)
	}
}

func TestNodesOrder(t *testing.T) {
	s := sim.New(1)
	net := NewNetwork(s, LatencyModel{})
	for i := 5; i >= 1; i-- {
		net.Register(NodeID(i), func(NodeID, any) {})
	}
	nodes := net.Nodes()
	want := []NodeID{5, 4, 3, 2, 1}
	for i := range want {
		if nodes[i] != want[i] {
			t.Fatalf("Nodes() = %v", nodes)
		}
	}
}
