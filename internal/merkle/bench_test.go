package merkle

import (
	"fmt"
	"testing"

	"repro/internal/crypto"
)

// Merkle costs scale the per-block overhead of tx roots and the
// per-evidence overhead of inclusion proofs.

func benchLeaves(n int) []crypto.Hash {
	leaves := make([]crypto.Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("tx-%d", i)))
	}
	return leaves
}

func BenchmarkRoot(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("leaves=%d", n), func(b *testing.B) {
			leaves := benchLeaves(n)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = Root(leaves)
			}
		})
	}
}

// BenchmarkProveVerify measures the full per-member cost at witness
// batch sizes: building the membership proof and verifying it, the
// pair of operations a batched redeem/refund performs per AC2T.
func BenchmarkProveVerify(b *testing.B) {
	for _, n := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("batch=%d", n), func(b *testing.B) {
			leaves := benchLeaves(n)
			root := Root(leaves)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				proof, err := Prove(leaves, i%n)
				if err != nil {
					b.Fatal(err)
				}
				if !proof.Verify(root) {
					b.Fatal("valid proof rejected")
				}
			}
		})
	}
}

func BenchmarkProveAndVerify(b *testing.B) {
	for _, n := range []int{16, 256, 1024} {
		b.Run(fmt.Sprintf("leaves=%d", n), func(b *testing.B) {
			leaves := benchLeaves(n)
			root := Root(leaves)
			proof, err := Prove(leaves, n/2)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if !proof.Verify(root) {
					b.Fatal("valid proof rejected")
				}
			}
		})
	}
}
