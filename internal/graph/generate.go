package graph

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// TwoParty builds the canonical Alice/Bob swap of Figure 4: a on
// chainA from alice to bob, b on chainB from bob to alice.
func TwoParty(t int64, alice, bob crypto.Address, a vm.Amount, chainA chain.ID, b vm.Amount, chainB chain.ID) (*Graph, error) {
	return New(t,
		Edge{From: alice, To: bob, Asset: a, Chain: chainA},
		Edge{From: bob, To: alice, Asset: b, Chain: chainB},
	)
}

// Ring builds a directed cycle p0 → p1 → … → pn-1 → p0, one asset per
// edge, each edge on chains[i % len(chains)]. A ring of n participants
// has Diam(D) = n, which makes rings the natural workload for the
// Figure 10 diameter sweep; the 3-ring is Figure 7a's cyclic example.
func Ring(t int64, parts []crypto.Address, asset vm.Amount, chains []chain.ID) (*Graph, error) {
	if len(parts) < 2 {
		return nil, fmt.Errorf("graph: ring needs >= 2 participants")
	}
	if len(chains) == 0 {
		return nil, fmt.Errorf("graph: ring needs >= 1 chain")
	}
	edges := make([]Edge, 0, len(parts))
	for i := range parts {
		edges = append(edges, Edge{
			From:  parts[i],
			To:    parts[(i+1)%len(parts)],
			Asset: asset,
			Chain: chains[i%len(chains)],
		})
	}
	return New(t, edges...)
}

// Disconnected builds Figure 7b's shape: the union of independent
// two-party swaps, one per pair, with no edge between pairs.
func Disconnected(t int64, pairs [][2]crypto.Address, asset vm.Amount, chains []chain.ID) (*Graph, error) {
	if len(pairs) < 2 {
		return nil, fmt.Errorf("graph: need >= 2 pairs to be disconnected")
	}
	if len(chains) < 2 {
		return nil, fmt.Errorf("graph: need >= 2 chains")
	}
	var edges []Edge
	for i, p := range pairs {
		ca := chains[(2*i)%len(chains)]
		cb := chains[(2*i+1)%len(chains)]
		edges = append(edges,
			Edge{From: p[0], To: p[1], Asset: asset, Chain: ca},
			Edge{From: p[1], To: p[0], Asset: asset, Chain: cb},
		)
	}
	return New(t, edges...)
}

// Random builds a connected random graph over parts: a spanning ring
// (guaranteeing every vertex participates) plus extra random edges.
// Useful for property tests over graph invariants.
func Random(t int64, rng *sim.RNG, parts []crypto.Address, extraEdges int, chains []chain.ID) (*Graph, error) {
	g, err := Ring(t, parts, 1, chains)
	if err != nil {
		return nil, err
	}
	edges := g.Edges
	for i := 0; i < extraEdges; i++ {
		u := rng.Intn(len(parts))
		v := rng.Intn(len(parts))
		if u == v {
			continue
		}
		edges = append(edges, Edge{
			From:  parts[u],
			To:    parts[v],
			Asset: vm.Amount(1 + rng.Intn(100)),
			Chain: chains[rng.Intn(len(chains))],
		})
	}
	return New(t, edges...)
}
