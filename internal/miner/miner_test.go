package miner

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/vm"
)

// testNet builds a network with nMiners and one funded user key.
func testNet(t *testing.T, seed uint64, nMiners int, latency p2p.LatencyModel) (*sim.Sim, *Network, *crypto.KeyPair) {
	t.Helper()
	s := sim.New(seed)
	rng := s.RNG().Fork()
	user := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	params := chain.DefaultParams("testnet")
	params.DifficultyBits = 6
	params.BlockInterval = 10 * sim.Second
	net, err := NewNetwork(s, Config{
		Params:  params,
		Miners:  nMiners,
		Latency: latency,
		Alloc:   chain.GenesisAlloc{user.Addr: 1_000_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, net, user
}

func TestMiningAdvancesChain(t *testing.T) {
	s, net, _ := testNet(t, 1, 3, p2p.LatencyModel{Base: 100})
	net.Start()
	s.RunUntil(10 * sim.Minute)
	if net.Height() < 30 { // ~60 expected at 10s interval
		t.Fatalf("height %d after 10 virtual minutes, want >= 30", net.Height())
	}
}

func TestNetworkConverges(t *testing.T) {
	s, net, _ := testNet(t, 2, 5, p2p.LatencyModel{Base: 50, Jitter: 100})
	net.Start()
	s.RunUntil(20 * sim.Minute)
	// Give propagation a moment with mining stopped.
	for _, n := range net.Nodes {
		n.mining = false
	}
	s.RunUntil(s.Now() + 10*sim.Second)
	if !net.Converged() {
		t.Fatal("nodes disagree on tip after quiescence")
	}
	// All views should agree on canonical history, not just the tip.
	ref := net.Node(0).Chain
	for i := 1; i < len(net.Nodes); i++ {
		for h := uint64(0); h <= ref.Height(); h++ {
			a, _ := ref.CanonicalAt(h)
			b, ok := net.Node(i).Chain.CanonicalAt(h)
			if !ok || a.Hash() != b.Hash() {
				t.Fatalf("node %d disagrees at height %d", i, h)
			}
		}
	}
}

func TestHighLatencyCausesForksButConverges(t *testing.T) {
	// Propagation ~ block interval: frequent forks, still one chain.
	s, net, _ := testNet(t, 3, 5, p2p.LatencyModel{Base: 5 * sim.Second, Jitter: 5 * sim.Second})
	net.Start()
	s.RunUntil(30 * sim.Minute)
	if net.TotalReorgs() == 0 {
		t.Fatal("expected reorgs under near-interval propagation latency")
	}
	for _, n := range net.Nodes {
		n.mining = false
	}
	s.RunUntil(s.Now() + sim.Minute)
	if !net.Converged() {
		t.Fatal("network did not converge after mining stopped")
	}
}

func TestTransferThroughClient(t *testing.T) {
	s, net, user := testNet(t, 4, 3, p2p.LatencyModel{Base: 100})
	net.Start()
	alice := NewClient(net, 0, user)
	rng := s.RNG().Fork()
	bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	var confirmedAt sim.Time
	tx, err := alice.Transfer(bob.Addr, 5_000)
	if err != nil {
		t.Fatal(err)
	}
	if err := alice.WhenTxAtDepth(tx, 3, func(crypto.Hash) { confirmedAt = s.Now() }); err != nil {
		t.Fatal(err)
	}
	s.RunUntil(20 * sim.Minute)

	if confirmedAt == 0 {
		t.Fatal("transfer never confirmed at depth 3")
	}
	var bobTotal vm.Amount
	for _, o := range net.Node(1).Chain.TipState().UTXOsOwnedBy(bob.Addr) {
		bobTotal += o.Value
	}
	if bobTotal != 5_000 {
		t.Fatalf("bob owns %d, want 5000", bobTotal)
	}
}

func TestClientBalanceAndFundSelection(t *testing.T) {
	_, net, user := testNet(t, 5, 1, p2p.LatencyModel{Base: 1})
	alice := NewClient(net, 0, user)
	if alice.Balance() != 1_000_000 {
		t.Fatalf("balance = %d", alice.Balance())
	}
	ins, change, err := alice.SelectFunds(400_000)
	if err != nil || len(ins) == 0 {
		t.Fatalf("SelectFunds: %v", err)
	}
	if change != 600_000 {
		t.Fatalf("change = %d", change)
	}
	// The reserved output cannot be selected again.
	if _, _, err := alice.SelectFunds(1); err == nil {
		t.Fatal("reserved funds selected twice")
	}
}

func TestCrashedMinerStopsAndRecovers(t *testing.T) {
	s, net, _ := testNet(t, 6, 3, p2p.LatencyModel{Base: 100})
	net.Start()
	s.RunUntil(5 * sim.Minute)
	victim := net.Node(0)
	victim.Crash()
	minedAtCrash := victim.Mined
	s.RunUntil(15 * sim.Minute)
	if victim.Mined != minedAtCrash {
		t.Fatal("crashed miner kept mining")
	}
	victim.Recover()
	s.RunUntil(40 * sim.Minute)
	// After recovery the victim catches up with the others.
	for _, n := range net.Nodes {
		n.mining = false
	}
	s.RunUntil(s.Now() + sim.Minute)
	if !net.Converged() {
		t.Fatalf("recovered miner did not converge: victim height %d, peer height %d",
			victim.Chain.Height(), net.Node(1).Chain.Height())
	}
	if victim.Mined <= minedAtCrash {
		t.Fatal("recovered miner never mined again")
	}
}

func TestPartitionDivergesThenHeals(t *testing.T) {
	s, net, _ := testNet(t, 7, 4, p2p.LatencyModel{Base: 100})
	net.Start()
	s.RunUntil(5 * sim.Minute)
	net.P2P.Partition([]p2p.NodeID{0, 1}, []p2p.NodeID{2, 3})
	s.RunUntil(25 * sim.Minute)
	if net.Node(0).Chain.Tip().Hash() == net.Node(2).Chain.Tip().Hash() {
		t.Fatal("partitioned halves still agree (no divergence?)")
	}
	net.P2P.Heal()
	s.RunUntil(60 * sim.Minute)
	for _, n := range net.Nodes {
		n.mining = false
	}
	s.RunUntil(s.Now() + sim.Minute)
	if !net.Converged() {
		t.Fatalf("network did not converge after heal: %d vs %d",
			net.Node(0).Chain.Height(), net.Node(2).Chain.Height())
	}
}

func TestClientResubmitsDroppedTx(t *testing.T) {
	// One miner; crash it right after submission so the tx is lost
	// with the mempool, then recover: the client must resubmit.
	s, net, user := testNet(t, 8, 1, p2p.LatencyModel{Base: 10})
	alice := NewClient(net, 0, user)
	rng := s.RNG().Fork()
	bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	tx, err := alice.Transfer(bob.Addr, 100)
	if err != nil {
		t.Fatal(err)
	}
	confirmed := false
	if err := alice.WhenTxAtDepth(tx, 1, func(crypto.Hash) { confirmed = true }); err != nil {
		t.Fatal(err)
	}

	s.RunUntil(1 * sim.Minute) // tx reaches mempool; no mining yet
	net.Node(0).Crash()        // mempool wiped
	s.RunUntil(2 * sim.Minute)
	net.Node(0).Recover()
	s.RunUntil(60 * sim.Minute)

	if !confirmed {
		t.Fatal("transaction never confirmed after miner crash")
	}
	if alice.Resubmits == 0 {
		t.Fatal("client never resubmitted")
	}
}

func TestHaltedClientStopsWatching(t *testing.T) {
	s, net, user := testNet(t, 9, 1, p2p.LatencyModel{Base: 10})
	net.Start()
	alice := NewClient(net, 0, user)
	rng := s.RNG().Fork()
	bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	tx, _ := alice.Transfer(bob.Addr, 100)
	fired := false
	if err := alice.WhenTxAtDepth(tx, 1, func(crypto.Hash) { fired = true }); err != nil {
		t.Fatal(err)
	}
	alice.Halt()
	s.RunUntil(30 * sim.Minute)
	if fired {
		t.Fatal("halted client's watch fired")
	}
	if _, err := alice.Transfer(bob.Addr, 100); err == nil {
		// Transfer builds but Submit is suppressed; ensure no watch
		// can fire and no panic occurred. The tx must not confirm.
		if _, _, found := net.Node(0).Chain.FindTx(tx.ID()); found {
			// first tx may have confirmed before halt; that is fine —
			// the watch still must not fire (checked above).
			_ = found
		}
	}
}

func TestDeployAndCallThroughClient(t *testing.T) {
	s := sim.New(10)
	rng := s.RNG().Fork()
	user := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	reg := vm.NewRegistry()
	reg.Register("box", func() vm.Contract { return &box{} })
	params := chain.DefaultParams("testnet")
	params.DifficultyBits = 6
	net, err := NewNetwork(s, Config{
		Params:   params,
		Miners:   2,
		Latency:  p2p.LatencyModel{Base: 100},
		Alloc:    chain.GenesisAlloc{user.Addr: 10_000},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	net.Start()
	alice := NewClient(net, 0, user)

	_, addr, err := alice.Deploy("box", nil, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	deployed := false
	err = alice.WhenContract(addr, 2, func(c vm.Contract) bool { return c != nil }, func() {
		deployed = true
		if _, err := alice.Call(addr, "set", []byte{42}, 0); err != nil {
			t.Errorf("call: %v", err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	s.RunUntil(30 * sim.Minute)
	if !deployed {
		t.Fatal("contract never observed at depth 2")
	}
	ct, ok := alice.ContractNow(addr, 0)
	if !ok || ct.(*box).V != 42 {
		t.Fatalf("box state not updated: ok=%v", ok)
	}
}

// box is a trivial contract for client tests.
type box struct{ V byte }

func (b *box) Type() string                          { return "box" }
func (b *box) Init(ctx *vm.Ctx, params []byte) error { return nil }
func (b *box) Call(ctx *vm.Ctx, fn string, args []byte) error {
	if fn != "set" || len(args) != 1 {
		return vm.ErrUnknownFunction("box", fn)
	}
	b.V = args[0]
	return nil
}
func (b *box) Clone() vm.Contract { cp := *b; return &cp }
