// Package trace is the deterministic cross-layer observability layer:
// a virtual-time span/event recorder threaded through the shard worlds
// (sim → p2p → chain → miner → protocol → engine) that explains
// *where* an AC2T's end-to-end latency goes — lock confirmation vs
// witness decision vs redeem settlement — instead of reporting one
// opaque number per transaction.
//
// Determinism rules (the engine's byte-identical-aggregates guarantee
// extends to traces):
//
//   - Records carry virtual timestamps and per-shard sequence numbers
//     only — never a wall clock.
//   - Every record is emitted on its shard's single goroutine, so the
//     per-shard stream is totally ordered by construction; the engine
//     merges streams in shard order after the workers join.
//   - Record fields marshal through fixed-order structs (attributes
//     are an ordered slice, not a map), so NDJSON bytes are identical
//     across runs and worker counts.
//
// Memory stays flat at any transaction count: each shard records into
// a bounded ring buffer (oldest records evicted, eviction counted), and
// the per-phase latency statistics the aggregates report are folded
// into fixed-size histograms independently of the ring, so eviction
// never skews the numbers.
//
// Two export formats: NDJSON (one record per line, streamable, the
// diffable format CI compares across worker counts) and Chrome
// trace_event JSON (loadable in chrome://tracing or Perfetto, one
// process per shard with one track per transaction and per chain).
package trace

// The per-AC2T phase span taxonomy, in causal order. Spans are derived
// from the protocol runtime's phase marks plus the engine's own
// settlement observation:
//
//	setup:         tx admitted → first contract deploy submitted
//	lock:          first deploy submitted → all deploys confirmed
//	decision_wait: all deploys confirmed → decision triggered
//	decision:      decision triggered → decision confirmed/stable
//	settle:        decision confirmed → all contracts settled
//
// A phase whose boundary was never reached (an abort that never got
// every deploy confirmed, a stuck transaction) is simply absent — the
// per-phase table counts only completed phases.
const (
	PhaseSetup        = "setup"
	PhaseLock         = "lock"
	PhaseDecisionWait = "decision_wait"
	PhaseDecision     = "decision"
	PhaseSettle       = "settle"
)

// Phases lists the span taxonomy in canonical (causal) order.
//
//ac3:globalstate canonical phase order; written once here, read-only (aggregate tables iterate it instead of map keys)
var Phases = []string{PhaseSetup, PhaseLock, PhaseDecisionWait, PhaseDecision, PhaseSettle}

// Kind discriminates records.
type Kind string

// The two record kinds: a span covers [T, T+Dur]; an instant is a
// point event.
const (
	KindSpan    Kind = "span"
	KindInstant Kind = "instant"
)

// Attr is one ordered integer annotation. A slice of Attrs (not a
// map) keeps JSON marshaling byte-deterministic.
type Attr struct {
	K string `json:"k"`
	V int64  `json:"v"`
}

// Record is one trace entry. Field order is the NDJSON byte layout —
// do not reorder casually; CI diffs these bytes across worker counts.
type Record struct {
	Shard int    `json:"shard"`
	Seq   uint64 `json:"seq"`
	Kind  Kind   `json:"kind"`
	// Track names the timeline the record renders on: "tx:<n>" for
	// per-AC2T records, "chain:<id>" for per-chain summaries, "shard"
	// for shard-level records.
	Track string `json:"track"`
	Name  string `json:"name"`
	// T is the virtual start time in ms; Dur the span length (0 for
	// instants).
	T   int64 `json:"t_ms"`
	Dur int64 `json:"dur_ms,omitempty"`
	// Tx is the AC2T index within the shard (-1 for shard/chain-level
	// records).
	Tx       int    `json:"tx"`
	Scenario string `json:"scenario,omitempty"`
	Outcome  string `json:"outcome,omitempty"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// DefaultRingCap is the per-shard ring capacity when the caller does
// not choose one: large enough to hold every record of a ~1,000-tx
// per-shard run, small enough that memory stays flat at any scale.
const DefaultRingCap = 65536

// Recorder collects one shard's records into a bounded ring buffer.
// All methods are nil-safe: a nil *Recorder is the disabled tracer, so
// instrumentation points call it unconditionally and cost one nil
// check when tracing is off.
//
// A Recorder is not safe for concurrent use; the engine gives each
// shard its own, which runs on the shard's single goroutine.
type Recorder struct {
	shard   int
	seq     uint64
	ring    []Record
	head    int // index of the oldest record
	n       int // records currently held
	dropped uint64
}

// NewRecorder prepares a recorder for one shard. cap <= 0 selects
// DefaultRingCap.
func NewRecorder(shard, capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRingCap
	}
	return &Recorder{shard: shard, ring: make([]Record, 0, capacity)}
}

// Enabled reports whether records are being collected.
func (r *Recorder) Enabled() bool { return r != nil }

// Emit stamps the record with the shard index and the next per-shard
// sequence number, then appends it, evicting the oldest record when
// the ring is full. No-op on a nil recorder.
func (r *Recorder) Emit(rec Record) {
	if r == nil {
		return
	}
	rec.Shard = r.shard
	rec.Seq = r.seq
	r.seq++
	if r.n < cap(r.ring) {
		r.ring = append(r.ring, rec)
		r.n++
		return
	}
	// Full: overwrite the oldest slot and advance the ring head.
	r.ring[r.head] = rec
	r.head = (r.head + 1) % cap(r.ring)
	r.dropped++
}

// Instant emits a point event on a track.
func (r *Recorder) Instant(track, name string, t int64, tx int, attrs ...Attr) {
	r.Emit(Record{Kind: KindInstant, Track: track, Name: name, T: t, Tx: tx, Attrs: attrs})
}

// Span emits a [start, end] span on a track. Spans with end < start
// are clamped to zero duration rather than dropped — a clock can
// never run backwards here, but a missing boundary defaults to 0.
func (r *Recorder) Span(track, name string, start, end int64, tx int, attrs ...Attr) {
	dur := end - start
	if dur < 0 {
		dur = 0
	}
	r.Emit(Record{Kind: KindSpan, Track: track, Name: name, T: start, Dur: dur, Tx: tx, Attrs: attrs})
}

// Records returns the held records in emission order (oldest first).
func (r *Recorder) Records() []Record {
	if r == nil || r.n == 0 {
		return nil
	}
	out := make([]Record, 0, r.n)
	for i := 0; i < r.n; i++ {
		out = append(out, r.ring[(r.head+i)%cap(r.ring)])
	}
	return out
}

// Len reports how many records the ring currently holds.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return r.n
}

// Dropped reports how many records ring eviction discarded.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	return r.dropped
}

// Trace is a whole run's merged trace: per-shard streams concatenated
// in shard order, so identical configurations produce byte-identical
// exports regardless of worker scheduling.
type Trace struct {
	Records []Record
	// Dropped totals ring evictions across all shards; nonzero means
	// the export is a suffix of the full record stream.
	Dropped uint64
}

// Merge appends one shard's stream. Call in shard order.
func (t *Trace) Merge(r *Recorder) {
	if r == nil {
		return
	}
	t.Records = append(t.Records, r.Records()...)
	t.Dropped += r.Dropped()
}
