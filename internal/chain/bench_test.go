package chain

import (
	"fmt"
	"testing"

	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// benchFixture builds a chain with n blocks of m transfers each.
func benchFixture(b *testing.B, blocks, txsPerBlock int) (*Chain, *crypto.KeyPair) {
	b.Helper()
	rng := sim.NewRNG(1)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	minerKey := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	params := DefaultParams("bench")
	params.DifficultyBits = 0 // isolate what each benchmark measures
	params.MaxBlockTxs = txsPerBlock + 1
	c, err := NewChain(params, nil, GenesisAlloc{key.Addr: 1 << 40})
	if err != nil {
		b.Fatal(err)
	}
	// Pre-split so every block has txsPerBlock independent outputs.
	var prev OutPoint
	var total vm.Amount
	for op, o := range c.TipState().UTXOsOwnedBy(key.Addr) {
		prev, total = op, o.Value
	}
	outs := make([]TxOut, txsPerBlock)
	share := total / vm.Amount(txsPerBlock)
	for i := range outs {
		outs[i] = TxOut{Value: share, Owner: key.Addr}
	}
	outs[0].Value += total - share*vm.Amount(txsPerBlock)
	split := NewTransfer(key, 0, []TxIn{{Prev: prev}}, outs)
	blk, _, _ := c.BuildBlock(minerKey.Addr, 10, []*Tx{split})
	blk.Header.Seal(0)
	if _, err := c.AddBlock(blk); err != nil {
		b.Fatal(err)
	}

	nonce := uint64(1)
	now := sim.Time(10)
	for n := 0; n < blocks; n++ {
		var txs []*Tx
		for op, o := range c.TipState().UTXOsOwnedBy(key.Addr) {
			nonce++
			txs = append(txs, NewTransfer(key, nonce, []TxIn{{Prev: op}},
				[]TxOut{{Value: o.Value, Owner: key.Addr}}))
			if len(txs) >= txsPerBlock {
				break
			}
		}
		now += params.BlockInterval
		blk, _, invalid := c.BuildBlock(minerKey.Addr, now, txs)
		if len(invalid) != 0 {
			b.Fatalf("block %d rejected %d txs", n, len(invalid))
		}
		blk.Header.Seal(0)
		if _, err := c.AddBlock(blk); err != nil {
			b.Fatal(err)
		}
	}
	return c, key
}

// BenchmarkStateLookupByOverlayDepth is the DESIGN.md ✦ ablation for
// the copy-on-write state: UTXO lookup cost as the overlay chain
// under the tip grows (flattening bounds it at flattenDepth).
func BenchmarkStateLookupByOverlayDepth(b *testing.B) {
	for _, blocks := range []int{4, 16, 47, 96} {
		b.Run(fmt.Sprintf("blocks=%d", blocks), func(b *testing.B) {
			c, key := benchFixture(b, blocks, 8)
			st := c.TipState()
			var ops []OutPoint
			for op := range st.UTXOsOwnedBy(key.Addr) {
				ops = append(ops, op)
			}
			b.ReportMetric(float64(st.OverlayDepth()), "overlay-depth")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := st.UTXO(ops[i%len(ops)]); !ok {
					b.Fatal("utxo vanished")
				}
			}
		})
	}
}

// BenchmarkSealByDifficulty is the DESIGN.md ✦ ablation for PoW: how
// grinding cost scales with difficulty bits (verification stays one
// hash regardless).
func BenchmarkSealByDifficulty(b *testing.B) {
	for _, bits := range []int{4, 8, 12, 16} {
		b.Run(fmt.Sprintf("bits=%d", bits), func(b *testing.B) {
			h := Header{ChainID: "bench", Height: 1, Time: 10, Bits: uint8(bits)}
			for i := 0; i < b.N; i++ {
				h.Nonce = 0
				h.Parent = crypto.Sum([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
				h.Seal(uint64(i) << 32)
			}
		})
	}
}

// BenchmarkCheckPoW measures verification (one hash + leading-zero
// count) — the cost every SPV evidence header imposes on a validator.
func BenchmarkCheckPoW(b *testing.B) {
	h := Header{ChainID: "bench", Height: 1, Time: 10, Bits: 12}
	h.Seal(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !h.CheckPoW() {
			b.Fatal("sealed header fails PoW")
		}
	}
}

// BenchmarkApplyBlock measures full block validation + state
// transition for a 64-transfer block.
func BenchmarkApplyBlock(b *testing.B) {
	c, key := benchFixture(b, 1, 64)
	var txs []*Tx
	nonce := uint64(1 << 20)
	for op, o := range c.TipState().UTXOsOwnedBy(key.Addr) {
		nonce++
		txs = append(txs, NewTransfer(key, nonce, []TxIn{{Prev: op}},
			[]TxOut{{Value: o.Value, Owner: key.Addr}}))
		if len(txs) >= 64 {
			break
		}
	}
	rng := sim.NewRNG(9)
	minerKey := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	blk, _, invalid := c.BuildBlock(minerKey.Addr, 1<<40, txs)
	if len(invalid) != 0 {
		b.Fatal("fixture txs invalid")
	}
	blk.Header.Seal(0)
	parentState, _ := c.StateAt(blk.Header.Parent)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ApplyBlock(parentState, c.Registry(), c.Params(), blk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTxEncodeDecode measures the wire codec used by blocks and
// evidence.
func BenchmarkTxEncodeDecode(b *testing.B) {
	rng := sim.NewRNG(3)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	tx := NewTransfer(key, 7,
		[]TxIn{{Prev: OutPoint{TxID: crypto.Sum([]byte("x"))}}},
		[]TxOut{{Value: 10, Owner: key.Addr}, {Value: 20, Owner: key.Addr}})
	enc := tx.Encode()
	b.ReportMetric(float64(len(enc)), "bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeTx(enc); err != nil {
			b.Fatal(err)
		}
	}
}
