package bench

import (
	"encoding/json"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/sim"
)

// EngineSnapshot is the machine-readable perf snapshot the ROADMAP's
// diffable trajectory is built from: one BENCH_<pr>.json per PR,
// produced by `ac3bench -snapshot`, diffed across PRs instead of
// burying the numbers in prose. Virtual-time fields are deterministic
// per seed; wall-clock fields measure the machine that produced the
// snapshot and are expected to drift.
type EngineSnapshot struct {
	Label string        `json:"label"`
	Seed  uint64        `json:"seed"`
	Rows  []SnapshotRow `json:"rows"`
	// Scale holds the memory-scale rungs (10k/100k, opt-in 1M AC2Ts):
	// the flat-memory evidence for the ROADMAP's 1M-tx push. Populated
	// by SnapshotScale; empty for the plain Snapshot sweep.
	Scale []ScaleRow `json:"scale,omitempty"`
	// Witness holds the decision-batching before/after pair: the
	// 1,000-AC2T default workload on 8 shards with per-AC2T decision
	// transactions, then with one merkle-committed commit_batch per
	// 3-minute window. The witness_txs_per_commit drop between the two
	// rows is the batching perf claim CI gates on.
	Witness []WitnessRow `json:"witness"`
}

// WitnessRow is one batching mode's witness-chain traffic profile on
// the identical workload. All fields but WallMs are deterministic per
// seed.
type WitnessRow struct {
	Batching      string `json:"batching"` // "off" or the window, e.g. "3m"
	BatchWindowMs int64  `json:"batch_window_ms"`
	Shards        int    `json:"shards"`
	Txs           int    `json:"txs"`
	WallMs        int64  `json:"wall_ms"`

	Commits    int `json:"commits"`
	Aborts     int `json:"aborts"`
	Stuck      int `json:"stuck"`
	Violations int `json:"atomicity_violations"`

	WitnessDecisionTxs    int     `json:"witness_decision_txs"`
	WitnessDecisionBytes  int     `json:"witness_decision_bytes"`
	BatchesPublished      int     `json:"batches_published"`
	BatchDecisions        int     `json:"batch_decisions"`
	BatchRepublishes      int     `json:"batch_republishes"`
	BatchBytesPublished   int     `json:"batch_bytes_published"`
	WitnessTxsPerCommit   float64 `json:"witness_txs_per_commit"`
	WitnessBytesPerCommit float64 `json:"witness_bytes_per_commit"`
}

// SnapshotRow is one engine configuration's measured outcome.
type SnapshotRow struct {
	Shards int `json:"shards"`
	Txs    int `json:"txs"`
	// WallMs is real elapsed time for the run on the snapshotting
	// machine (not deterministic; tracked for trajectory, not truth).
	WallMs int64 `json:"wall_ms"`

	Commits    int `json:"commits"`
	Aborts     int `json:"aborts"`
	Stuck      int `json:"stuck"`
	Violations int `json:"atomicity_violations"`

	EventsPerTx          float64 `json:"sim_events_per_tx"`
	BlocksExecutedPerTx  float64 `json:"blocks_executed_per_tx"`
	ThroughputTPSVirtual float64 `json:"throughput_tps_virtual"`
	MakespanVirtualMs    int64   `json:"makespan_virtual_ms"`

	LatencyP50Ms  int64 `json:"latency_p50_ms"`
	LatencyP99Ms  int64 `json:"latency_p99_ms"`
	LatencyP999Ms int64 `json:"latency_p999_ms"`

	// PhaseLatency is the engine's per-phase attribution table for
	// this configuration — where the virtual time of an AC2T goes.
	PhaseLatency []engine.PhaseLatencyRow `json:"phase_latency"`
}

// ScaleRow is one memory-scale rung: the engine's default workload at
// ac3engine defaults (8 shards), run at a tx count large enough that
// linear memory would show, wrapped in a MemSampler. Wall/RSS/allocs
// measure the snapshotting machine; the states_* and blocks_retired
// fields are deterministic per seed.
type ScaleRow struct {
	Shards int   `json:"shards"`
	Txs    int   `json:"txs"`
	WallMs int64 `json:"wall_ms"`

	// PeakRSSBytes is the sampled high-water runtime.MemStats.Sys (the
	// runtime-visible proxy for peak RSS); PeakHeapBytes the high-water
	// HeapAlloc; AllocsPerTx heap allocations per graded AC2T.
	PeakRSSBytes  uint64  `json:"peak_rss_bytes"`
	PeakHeapBytes uint64  `json:"peak_heap_bytes"`
	AllocsPerTx   float64 `json:"allocs_per_tx"`

	Commits    int `json:"commits"`
	Aborts     int `json:"aborts"`
	Stuck      int `json:"stuck"`
	Violations int `json:"atomicity_violations"`

	ThroughputTPSVirtual float64 `json:"throughput_tps_virtual"`

	StatesPruned  uint64 `json:"states_pruned"`
	StatesLive    int    `json:"states_live"`
	StateReplays  uint64 `json:"state_replays"`
	BlocksRetired uint64 `json:"blocks_retired"`
}

// Snapshot runs the EngineLoad shard sweep (same workload, 1/2/4
// shards) and returns the machine-readable snapshot.
func Snapshot(seed uint64, label string) (*EngineSnapshot, error) {
	const perShardTxs = 20
	snap := &EngineSnapshot{Label: label, Seed: seed}
	for _, shards := range []int{1, 2, 4} {
		wl := engine.DefaultWorkload()
		wl.Txs = perShardTxs * shards
		wl.ArrivalEvery = 15 * sim.Second
		wl.Mix = engine.Mix{Commit: 5, Abort: 2, Crash: 2, Race: 1}
		e, err := engine.New(engine.Config{Seed: seed, Shards: shards, Workload: wl})
		if err != nil {
			return nil, err
		}
		start := time.Now() //ac3:wallclock wall-ms is a measured (non-deterministic) snapshot column, reported beside the byte-compared aggregates, never inside them
		agg, err := e.Run()
		if err != nil {
			return nil, err
		}
		snap.Rows = append(snap.Rows, SnapshotRow{
			Shards:               shards,
			Txs:                  agg.Txs,
			WallMs:               time.Since(start).Milliseconds(), //ac3:wallclock measured snapshot column (see above)
			Commits:              agg.Commits,
			Aborts:               agg.Aborts,
			Stuck:                agg.Stuck,
			Violations:           agg.Violations,
			EventsPerTx:          agg.SimEventsPerTx,
			BlocksExecutedPerTx:  agg.BlocksExecutedPerTx,
			ThroughputTPSVirtual: agg.ThroughputTPSVirtual,
			MakespanVirtualMs:    agg.MakespanVirtualMs,
			LatencyP50Ms:         agg.LatencyP50Ms,
			LatencyP99Ms:         agg.LatencyP99Ms,
			LatencyP999Ms:        agg.LatencyP999Ms,
			PhaseLatency:         agg.PhaseLatency,
		})
	}
	// The decision-batching before/after pair — the same configuration
	// as bench.EngineLoad's witness table and the CI batching gates.
	for _, window := range []sim.Time{0, 3 * sim.Minute} {
		wl := engine.DefaultWorkload()
		wl.Txs = 1000
		wl.BatchWindow = window
		e, err := engine.New(engine.Config{Seed: seed, Shards: 8, Workload: wl})
		if err != nil {
			return nil, err
		}
		start := time.Now() //ac3:wallclock wall-ms is a measured (non-deterministic) snapshot column, reported beside the byte-compared aggregates, never inside them
		agg, err := e.Run()
		if err != nil {
			return nil, err
		}
		mode := "off"
		if window > 0 {
			mode = "3m"
		}
		snap.Witness = append(snap.Witness, WitnessRow{
			Batching:              mode,
			BatchWindowMs:         int64(window),
			Shards:                8,
			Txs:                   agg.Txs,
			WallMs:                time.Since(start).Milliseconds(), //ac3:wallclock measured snapshot column (see above)
			Commits:               agg.Commits,
			Aborts:                agg.Aborts,
			Stuck:                 agg.Stuck,
			Violations:            agg.Violations,
			WitnessDecisionTxs:    agg.WitnessDecisionTxs,
			WitnessDecisionBytes:  agg.WitnessDecisionBytes,
			BatchesPublished:      agg.BatchesPublished,
			BatchDecisions:        agg.BatchDecisions,
			BatchRepublishes:      agg.BatchRepublishes,
			BatchBytesPublished:   agg.BatchBytesPublished,
			WitnessTxsPerCommit:   agg.WitnessTxsPerCommit,
			WitnessBytesPerCommit: agg.WitnessBytesPerCommit,
		})
	}
	return snap, nil
}

// SnapshotScale runs Snapshot, then appends one memory-scale rung per
// entry in rungs (AC2T counts, e.g. 10_000, 100_000, 1_000_000): the
// engine's default workload on 8 shards — the same configuration as
// `ac3engine -txs N` — wrapped in a memory sampler. The rung list is
// caller-chosen because the big rungs take real wall time (minutes for
// 100k, tens of minutes for 1M on one core).
func SnapshotScale(seed uint64, label string, rungs []int) (*EngineSnapshot, error) {
	snap, err := Snapshot(seed, label)
	if err != nil {
		return nil, err
	}
	const scaleShards = 8
	for _, txs := range rungs {
		wl := engine.DefaultWorkload()
		wl.Txs = txs
		e, err := engine.New(engine.Config{Seed: seed, Shards: scaleShards, Workload: wl})
		if err != nil {
			return nil, err
		}
		sampler := StartMemSampler()
		start := time.Now() //ac3:wallclock wall-ms is a measured (non-deterministic) snapshot column, reported beside the byte-compared aggregates, never inside them
		agg, err := e.Run()
		wall := time.Since(start) //ac3:wallclock measured snapshot column (see above)
		mem := sampler.Stop()
		if err != nil {
			return nil, err
		}
		allocsPerTx := 0.0
		if agg.Graded > 0 {
			allocsPerTx = float64(mem.Mallocs) / float64(agg.Graded)
		}
		snap.Scale = append(snap.Scale, ScaleRow{
			Shards:               scaleShards,
			Txs:                  agg.Txs,
			WallMs:               wall.Milliseconds(),
			PeakRSSBytes:         mem.PeakSysBytes,
			PeakHeapBytes:        mem.PeakHeapBytes,
			AllocsPerTx:          allocsPerTx,
			Commits:              agg.Commits,
			Aborts:               agg.Aborts,
			Stuck:                agg.Stuck,
			Violations:           agg.Violations,
			ThroughputTPSVirtual: agg.ThroughputTPSVirtual,
			StatesPruned:         agg.StatesPruned,
			StatesLive:           agg.StatesLive,
			StateReplays:         agg.StateReplays,
			BlocksRetired:        agg.BlocksRetired,
		})
	}
	return snap, nil
}

// WriteSnapshot marshals the snapshot as indented JSON.
func WriteSnapshot(w io.Writer, s *EngineSnapshot) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}
