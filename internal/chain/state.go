package chain

import (
	"repro/internal/crypto"
	"repro/internal/vm"
)

// flattenDepth bounds the overlay-chain length before a state is
// collapsed into a fresh base map. It trades copy cost against lookup
// cost; the ablation benchmark BenchmarkStateOverlayFlatten sweeps it.
const flattenDepth = 48

// State is the ledger state after applying some block: the UTXO set,
// deployed contract objects, and contract balances. States form a
// copy-on-write overlay chain mirroring the block tree, so two forks
// cheaply share their common prefix — the property that makes reorgs
// (and therefore Lemma 5.3's fork analysis) natural to express.
type State struct {
	parent *State
	depth  int

	utxos     map[OutPoint]TxOut
	spent     map[OutPoint]bool
	contracts map[crypto.Address]vm.Contract
	balances  map[crypto.Address]vm.Amount
	hasBal    map[crypto.Address]bool
}

// NewState returns an empty base state.
func NewState() *State {
	return &State{
		utxos:     make(map[OutPoint]TxOut),
		spent:     make(map[OutPoint]bool),
		contracts: make(map[crypto.Address]vm.Contract),
		balances:  make(map[crypto.Address]vm.Amount),
		hasBal:    make(map[crypto.Address]bool),
	}
}

// Child returns a fresh overlay on top of s. When the overlay chain
// grows past flattenDepth the child is a flattened deep copy instead,
// bounding lookup cost.
func (s *State) Child() *State {
	if s.depth >= flattenDepth {
		return s.flatten()
	}
	return s.overlay()
}

// overlay returns a direct child layer unconditionally — no flatten
// check. Block building uses it for per-transaction trial layers,
// which are either discarded (the transaction failed) or folded back
// into s with absorb, so they must never turn into deep copies.
func (s *State) overlay() *State {
	c := NewState()
	c.parent = s
	c.depth = s.depth + 1
	return c
}

// absorb folds a direct child overlay's deltas into s. t must have
// been created by s.overlay() and becomes invalid afterwards. Within
// one transaction an outpoint lands in at most one of t's utxo/spent
// maps, so the fold order is immaterial.
func (s *State) absorb(t *State) {
	for op := range t.spent {
		s.Spend(op)
	}
	for op, o := range t.utxos {
		s.AddUTXO(op, o)
	}
	for a, c := range t.contracts {
		s.contracts[a] = c
	}
	for a, v := range t.balances {
		s.SetBalance(a, v)
	}
}

// flatten collapses the overlay chain into a single base state.
func (s *State) flatten() *State {
	out := NewState()
	// Walk from the base up so newer overlays overwrite older entries.
	var stack []*State
	for cur := s; cur != nil; cur = cur.parent {
		stack = append(stack, cur)
	}
	for i := len(stack) - 1; i >= 0; i-- {
		layer := stack[i]
		for op, o := range layer.utxos {
			out.utxos[op] = o
			delete(out.spent, op)
		}
		for op := range layer.spent {
			delete(out.utxos, op)
			out.spent[op] = true
		}
		for a, c := range layer.contracts {
			out.contracts[a] = c.Clone()
		}
		for a, b := range layer.balances {
			out.balances[a] = b
			out.hasBal[a] = true
		}
	}
	// The flattened map needs no tombstones of its own.
	out.spent = make(map[OutPoint]bool)
	return out
}

// UTXO looks up an unspent output.
func (s *State) UTXO(op OutPoint) (TxOut, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.spent[op] {
			return TxOut{}, false
		}
		if o, ok := cur.utxos[op]; ok {
			return o, true
		}
	}
	return TxOut{}, false
}

// AddUTXO records a new unspent output.
func (s *State) AddUTXO(op OutPoint, out TxOut) {
	delete(s.spent, op)
	s.utxos[op] = out
}

// Spend marks an output spent. The caller must have checked existence.
func (s *State) Spend(op OutPoint) {
	delete(s.utxos, op)
	s.spent[op] = true
}

// Contract returns the live contract object at addr for *reading*.
// Callers must not mutate the result; use ContractForWrite inside
// block application.
func (s *State) Contract(addr crypto.Address) (vm.Contract, bool) {
	for cur := s; cur != nil; cur = cur.parent {
		if c, ok := cur.contracts[addr]; ok {
			return c, true
		}
	}
	return nil, false
}

// ContractForWrite returns a contract clone owned by this overlay
// layer, creating the copy-on-write entry on first access.
func (s *State) ContractForWrite(addr crypto.Address) (vm.Contract, bool) {
	if c, ok := s.contracts[addr]; ok {
		return c, true
	}
	c, ok := s.Contract(addr)
	if !ok {
		return nil, false
	}
	cl := c.Clone()
	s.contracts[addr] = cl
	return cl, true
}

// PutContract stores a freshly deployed contract.
func (s *State) PutContract(addr crypto.Address, c vm.Contract) {
	s.contracts[addr] = c
}

// Balance returns a contract's locked asset balance.
func (s *State) Balance(addr crypto.Address) vm.Amount {
	for cur := s; cur != nil; cur = cur.parent {
		if cur.hasBal[addr] {
			return cur.balances[addr]
		}
	}
	return 0
}

// SetBalance records a contract balance in this overlay layer.
func (s *State) SetBalance(addr crypto.Address, v vm.Amount) {
	s.balances[addr] = v
	s.hasBal[addr] = true
}

// UTXOsOwnedBy scans the full state for outputs owned by addr. It is
// a test/client convenience (wallets), not a consensus operation.
func (s *State) UTXOsOwnedBy(addr crypto.Address) map[OutPoint]TxOut {
	out := make(map[OutPoint]TxOut)
	seen := make(map[OutPoint]bool)
	for cur := s; cur != nil; cur = cur.parent {
		for op := range cur.spent {
			if !seen[op] {
				seen[op] = true
			}
		}
		for op, o := range cur.utxos {
			if seen[op] {
				continue
			}
			seen[op] = true
			if o.Owner == addr {
				out[op] = o
			}
		}
	}
	return out
}

// TotalValue sums every unspent output plus every contract balance —
// the conserved quantity the property tests check (minting via
// genesis/coinbase is accounted by the caller).
func (s *State) TotalValue() vm.Amount {
	var total vm.Amount
	seen := make(map[OutPoint]bool)
	seenBal := make(map[crypto.Address]bool)
	for cur := s; cur != nil; cur = cur.parent {
		for op := range cur.spent {
			seen[op] = true
		}
		for op, o := range cur.utxos {
			if seen[op] {
				continue
			}
			seen[op] = true
			total += o.Value
		}
		for a := range cur.balances {
			if seenBal[a] {
				continue
			}
			seenBal[a] = true
			total += cur.balances[a]
		}
	}
	return total
}

// OverlayDepth reports how many overlay layers sit above the base
// state (exported for the flattening ablation benchmark).
func (s *State) OverlayDepth() int { return s.depth }
