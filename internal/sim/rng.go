package sim

import "math"

// RNG is a small, fast, deterministic random source (splitmix64 core).
// It intentionally does not use math/rand's global state so that two
// simulators never share entropy.
type RNG struct {
	state uint64
}

// NewRNG returns an RNG seeded with seed. Distinct seeds yield
// independent-looking streams; the same seed always yields the same
// stream.
func NewRNG(seed uint64) *RNG {
	// Avoid the all-zero state pathologies by mixing the seed once.
	r := &RNG{state: seed + 0x9e3779b97f4a7c15}
	r.Uint64()
	return r
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with n <= 0")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed duration with the given
// mean. It is used for miner inter-block times: the memoryless
// property makes each miner's next success independent of chain-tip
// changes, matching a Poisson mining process.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpTime returns an exponentially distributed virtual duration (>= 1)
// with the given mean in milliseconds.
func (r *RNG) ExpTime(mean Time) Time {
	d := Time(r.Exp(float64(mean)))
	if d < 1 {
		d = 1
	}
	return d
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Bytes fills b with random bytes.
func (r *RNG) Bytes(b []byte) {
	for i := 0; i < len(b); i += 8 {
		v := r.Uint64()
		for j := 0; j < 8 && i+j < len(b); j++ {
			b[i+j] = byte(v >> (8 * j))
		}
	}
}

// Fork derives an independent RNG stream from this one, for components
// that need their own entropy without perturbing the parent sequence
// ordering guarantees.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}
