// Exchange desk: a matching desk settles a stream of independent
// cross-chain swaps concurrently, spreading coordination across
// several witness networks (Section 5.2: "different permissionless
// networks can be used to coordinate different AC2Ts", so the witness
// layer is never the bottleneck).
//
//	go run ./examples/exchangedesk
package main

import (
	"fmt"
	"log"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/xchain"
)

const (
	swaps     = 10
	witnesses = 3
)

func main() {
	b := xchain.NewBuilder(99)

	// Two busy asset chains and three independent witness networks.
	b.Chain(xchain.DefaultChainSpec("dex-a"))
	b.Chain(xchain.DefaultChainSpec("dex-b"))
	witnessIDs := make([]chain.ID, witnesses)
	for i := range witnessIDs {
		witnessIDs[i] = chain.ID(fmt.Sprintf("witness-%d", i))
		b.Chain(xchain.DefaultChainSpec(witnessIDs[i]))
	}

	type order struct {
		maker, taker *xchain.Participant
		amount       uint64
	}
	book := make([]order, swaps)
	for i := range book {
		book[i] = order{
			maker:  b.Participant(fmt.Sprintf("maker-%d", i)),
			taker:  b.Participant(fmt.Sprintf("taker-%d", i)),
			amount: uint64(10_000 + 1_000*i),
		}
		b.Fund(book[i].maker, "dex-a", 1_000_000)
		b.Fund(book[i].taker, "dex-b", 1_000_000)
	}
	world, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Launch every swap; witness networks assigned round-robin.
	runs := make([]*core.Run, swaps)
	for i, o := range book {
		g, err := graph.TwoParty(int64(i), o.maker.Addr(), o.taker.Addr(),
			o.amount, "dex-a", o.amount*3, "dex-b")
		if err != nil {
			log.Fatal(err)
		}
		r, err := core.New(world, core.Config{
			Graph:        g,
			Participants: []*xchain.Participant{o.maker, o.taker},
			Initiator:    o.maker,
			WitnessChain: witnessIDs[i%witnesses],
			WitnessDepth: 3,
			AssetDepth:   3,
		})
		if err != nil {
			log.Fatal(err)
		}
		runs[i] = r
		r.Start()
	}

	world.RunUntil(2 * sim.Hour)
	world.StopMining()
	world.RunFor(sim.Minute)

	committed := 0
	var last sim.Time
	for i, r := range runs {
		out := r.Grade()
		status := "committed"
		if !out.Committed() {
			status = "NOT COMMITTED"
		} else {
			committed++
			if r.CompletedAt > last {
				last = r.CompletedAt
			}
		}
		fmt.Printf("swap %2d via %-9s: %s in %.1f min (%d ops)\n",
			i, witnessIDs[i%witnesses], status,
			float64(out.Latency())/60000, out.Deploys+out.Calls)
	}
	fmt.Printf("\n%d/%d swaps committed; whole book settled in %.1f virtual minutes\n",
		committed, swaps, float64(last)/60000)
	fmt.Println("coordination is embarrassingly parallel: each AC2T has its own SCw, and")
	fmt.Println("the three witness networks never exchange a single message.")
}
