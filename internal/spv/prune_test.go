package spv

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/sim"
)

// TestEvidenceAndFollowAcrossPrunedStates pins the PR 8 tentpole's SPV
// guarantee: evidence assembly, verification, and checkpoint followers
// need headers and the tx index, never per-block states — so a chain
// whose executor prunes states below its GC horizon still serves SPV
// anchors buried far deeper than that horizon (the StableDepth-class
// anchor distance of AC3WN, 30, vs a prune horizon of 8).
func TestEvidenceAndFollowAcrossPrunedStates(t *testing.T) {
	rng := sim.NewRNG(43)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	params := chain.DefaultParams("pruned-validated")
	params.DifficultyBits = 8
	params.PruneDepth = 8
	view, err := chain.NewChain(params, nil, chain.GenesisAlloc{key.Addr: 1_000})
	if err != nil {
		t.Fatal(err)
	}
	var now sim.Time
	mine := func(txs ...*chain.Tx) *chain.Block {
		now += 10 * sim.Second
		b, _, _ := view.BuildBlock(key.Addr, now, txs)
		b.Header.Seal(rng.Uint64())
		if _, err := view.AddBlock(b); err != nil {
			t.Fatal(err)
		}
		return b
	}

	// Anchor at height 5, the transaction of interest right above it,
	// then 35 more blocks: the anchor ends up ~36 deep — far below the
	// prune horizon (tip − 8), so its state is long gone.
	for i := 0; i < 5; i++ {
		mine()
	}
	anchor := view.Tip()
	var prev chain.OutPoint
	for op, out := range view.TipState().UTXOsOwnedBy(key.Addr) {
		if out.Value == 1_000 { // the genesis grant, not a coinbase
			prev = op
		}
	}
	tx := chain.NewTransfer(key, 1, []chain.TxIn{{Prev: prev}},
		[]chain.TxOut{{Value: 1_000, Owner: key.Addr}})
	mine(tx)
	for i := 0; i < 35; i++ {
		mine()
	}

	// Evidence builds from the buried anchor and verifies against its
	// header alone — exactly what a validator contract stores.
	ev, err := Build(view, anchor.Hash(), tx.ID(), params.ConfirmDepth)
	if err != nil {
		t.Fatalf("Build across pruned states: %v", err)
	}
	got, err := ev.Verify(anchor.Header, params.ConfirmDepth)
	if err != nil {
		t.Fatalf("Verify across pruned states: %v", err)
	}
	if got.ID() != tx.ID() {
		t.Fatalf("evidence proves tx %s, want %s", got.ID(), tx.ID())
	}

	// A follower anchored at the buried checkpoint seeds from canonical
	// headers and keeps tracking growth.
	fl, err := FollowFrom(view, anchor.Hash())
	if err != nil {
		t.Fatalf("FollowFrom buried anchor: %v", err)
	}
	if fl.Tip().Hash() != view.Tip().Header.Hash() {
		t.Fatal("follower not seeded to the tip")
	}
	for i := 0; i < 4; i++ {
		mine()
	}
	if !fl.Synced() || fl.Tip().Hash() != view.Tip().Header.Hash() {
		t.Fatal("follower lost the tip on a pruning chain")
	}
}
