package contracts

import (
	"repro/internal/merkle"
	"repro/internal/vm"
)

// init pins encoding/gob's wire-type numbering. Gob assigns type ids
// from a process-global counter in order of first encode, so without
// this the ids embedded in every contract params/args payload — and
// therefore the payload bytes, the transaction ids, and every
// contract address derived from them — depended on what else the
// process had gob-encoded first. Outcomes never noticed (the
// protocols are address-value-agnostic), but byte-level accounting
// did: the decision-batching work measured three slightly different
// witness-bytes-per-commit numbers for the identical seed from
// ac3engine, ac3bench, and the test binary, each a different
// process-encode history. Encoding one zero value of every wire type
// here, in this fixed order, assigns their ids (and those of every
// nested type, recursively) before any other code runs, making
// payload bytes a pure function of the value again in any process
// that links this package.
//
// New gob-transmitted top-level types must be appended — order is
// wire-visible, so insertions before the end renumber everything
// after them.
//
//ac3:globalstate this init exists to PIN gob's process-global type-id counter — the one deliberate init-order dependency, and the fix for the bug class this analyzer guards
func init() {
	for _, v := range []any{
		&HTLCParams{},
		&RelayParams{},
		&CentralizedParams{},
		&WitnessParams{},
		&PermissionlessParams{},
		&BatchWitnessParams{},
		&BatchCommit{},
		&merkle.Proof{},
	} {
		vm.EncodeGob(v)
	}
}
