package chain

import "testing"

// forkEnv builds a second chain view with the identical genesis so its
// blocks are valid fork blocks on the primary view.
func forkEnv(t *testing.T) (*testEnv, *testEnv) {
	t.Helper()
	return newEnv(t, "alice", "bob"), newEnv(t, "alice", "bob")
}

func TestTipEventOnExtension(t *testing.T) {
	e := newEnv(t, "alice", "bob")
	var events []TipEvent
	e.chain.OnTipChange(func(ev TipEvent) { events = append(events, ev) })

	genesis := e.chain.Genesis()
	b1 := e.mine(e.transfer("alice", "bob", 100))

	if len(events) != 1 {
		t.Fatalf("got %d tip events, want 1", len(events))
	}
	ev := events[0]
	if ev.Old != genesis || ev.New != b1 {
		t.Fatalf("event Old/New = %s/%s, want genesis/b1", ev.Old.Hash(), ev.New.Hash())
	}
	if len(ev.Connected) != 1 || ev.Connected[0] != b1 {
		t.Fatalf("Connected = %v, want [b1]", ev.Connected)
	}
	if len(ev.Disconnected) != 0 || ev.Reorg {
		t.Fatalf("plain extension reported Disconnected=%v Reorg=%v", ev.Disconnected, ev.Reorg)
	}
}

// TestTipEventOnReorg is the reorg-notification contract: a
// transaction confirmed on a fork that loses the canonical race must
// be reported as disconnected when the tip switches (so the node layer
// can re-announce it), the adopted branch must arrive oldest-first,
// and the Reorgs counter must tick with the event.
func TestTipEventOnReorg(t *testing.T) {
	e, f := forkEnv(t)
	var events []TipEvent
	e.chain.OnTipChange(func(ev TipEvent) { events = append(events, ev) })

	tx := e.transfer("alice", "bob", 100)
	a1 := e.mine(tx) // canonical: genesis <- a1 (contains tx)
	if _, ok := e.chain.TxDepth(tx.ID()); !ok {
		t.Fatal("tx not confirmed on a1")
	}

	// Competing empty branch genesis <- b1 <- b2 built on the twin
	// view (identical genesis, different miner identity).
	b1 := f.mine()
	b2 := f.mine()

	if reorged, err := e.chain.AddBlock(b1); err != nil || reorged {
		t.Fatalf("equal-height fork block: reorged=%v err=%v (first seen must win ties)", reorged, err)
	}
	if len(events) != 1 {
		t.Fatalf("no-tip-change block emitted an event: %d", len(events))
	}
	reorged, err := e.chain.AddBlock(b2)
	if err != nil || !reorged {
		t.Fatalf("longer fork not adopted: reorged=%v err=%v", reorged, err)
	}

	if len(events) != 2 {
		t.Fatalf("got %d tip events, want 2", len(events))
	}
	ev := events[1]
	if !ev.Reorg {
		t.Fatal("fork switch not flagged as reorg")
	}
	if e.chain.Reorgs != 1 {
		t.Fatalf("Reorgs = %d, want 1", e.chain.Reorgs)
	}
	if ev.Old != a1 || ev.New != b2 {
		t.Fatalf("event Old/New mismatch")
	}
	if len(ev.Connected) != 2 || ev.Connected[0] != b1 || ev.Connected[1] != b2 {
		t.Fatalf("Connected not the adopted branch oldest-first: %v", ev.Connected)
	}
	if len(ev.Disconnected) != 1 || ev.Disconnected[0] != a1 {
		t.Fatalf("Disconnected = %v, want [a1]", ev.Disconnected)
	}
	// The tx confirmed on the losing fork is no longer canonical —
	// exactly what the disconnect notification lets the node retract.
	if _, ok := e.chain.TxDepth(tx.ID()); ok {
		t.Fatal("tx still reported canonical after losing its fork")
	}
}

func TestTipEventListenersRunInOrder(t *testing.T) {
	e := newEnv(t, "alice")
	var order []int
	e.chain.OnTipChange(func(TipEvent) { order = append(order, 1) })
	e.chain.OnTipChange(func(TipEvent) { order = append(order, 2) })
	e.mine()
	if len(order) != 2 || order[0] != 1 || order[1] != 2 {
		t.Fatalf("listener order %v, want [1 2]", order)
	}
}
