package lint

import (
	"go/ast"
	"strconv"

	"repro/internal/lint/analysis"
)

// GlobalRand keeps every random stream derived from a sim seed.
// math/rand's package-level functions share one process-global,
// lazily-seeded source: two shard worlds drawing from it entangle
// their schedules, and the draw order depends on goroutine
// interleaving. crypto/rand is OS entropy — nondeterministic by
// definition (keys derive from sim.RNG via crypto.NewRandReader
// instead). Both imports are banned outright in deterministic
// packages.
//
// sim.NewRNG is the only primitive that mints a stream from a raw
// integer, so each call outside package sim is a place where entropy
// enters the system. Those sites must prove their seed descends from
// the run seed — `rng.Fork()` is always safe and needs no annotation;
// a NewRNG call needs `//ac3:globalrand <where the seed comes from>`.
var GlobalRand = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid math/rand and crypto/rand in deterministic packages and require every " +
		"sim.NewRNG seed to be justified as derived from the run seed (prefer RNG.Fork)",
	Run: runGlobalRand,
}

var bannedRandImports = map[string]string{
	"math/rand":    "package-global source; draw order depends on goroutine interleaving",
	"math/rand/v2": "package-global source; draw order depends on goroutine interleaving",
	"crypto/rand":  "OS entropy is nondeterministic; derive from sim.RNG via crypto.NewRandReader",
}

func runGlobalRand(pass *analysis.Pass) (any, error) {
	if !deterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := collectDirectives(pass)
	dirs.reportMissingJustifications()
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			path, _ := strconv.Unquote(imp.Path.Value)
			why, banned := bannedRandImports[path]
			if !banned || dirs.allowed("globalrand", imp.Pos()) {
				continue
			}
			pass.Reportf(imp.Pos(), "import %q in deterministic package %s: %s", path, pass.Pkg.Path(), why)
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if fn.Pkg().Path() != "repro/internal/sim" || fn.Name() != "NewRNG" {
				return true
			}
			if pass.Pkg.Path() == "repro/internal/sim" {
				return true // the sim itself is the root of the seed tree
			}
			if dirs.allowed("globalrand", call.Pos()) {
				return true
			}
			pass.Reportf(call.Pos(), "sim.NewRNG mints a fresh random stream; fork from an existing sim RNG (s.RNG().Fork()) or annotate //ac3:globalrand stating how the seed derives from the run seed")
			return true
		})
	}
	return nil, nil
}
