// Quickstart: the paper's running example (Figure 4). Alice owns X
// "bitcoins" and wants Y "ethers"; Bob the reverse. They execute the
// swap with AC3WN: a witness blockchain coordinates, both asset
// contracts deploy in parallel, and the commit decision on the
// witness chain unlocks both redemptions.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/chain"
	"repro/internal/core"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/xchain"
)

func main() {
	// 1. Build three simulated permissionless blockchains: two asset
	//    chains plus the witness network. Each has its own miners,
	//    gossip network, forks, and fork resolution.
	b := xchain.NewBuilder(2026)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	for _, id := range []chain.ID{"bitcoin", "ethereum", "witness"} {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	b.Fund(alice, "bitcoin", 1_000_000) // Alice's X bitcoins
	b.Fund(bob, "ethereum", 1_000_000)  // Bob's Y ethers
	world, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// 2. Agree on the AC2T graph D: X bitcoins Alice→Bob, Y ethers
	//    Bob→Alice (both will multisign (D, t) inside the protocol).
	const x, y = 250_000, 600_000
	g, err := graph.TwoParty(1, alice.Addr(), bob.Addr(), x, "bitcoin", y, "ethereum")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("AC2T %s: %d sat Alice→Bob, %d wei Bob→Alice\n", g, uint64(x), uint64(y))

	// 3. Run AC3WN: SCw on the witness chain, parallel deployment,
	//    evidence-checked commit, parallel redemption.
	run, err := core.New(world, core.Config{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Initiator:    alice,
		WitnessChain: "witness",
		WitnessDepth: 3,
		AssetDepth:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	run.Start()
	world.RunUntil(1 * sim.Hour)
	world.StopMining()
	world.RunFor(sim.Minute)

	// 4. Inspect the outcome from ground truth.
	out := run.Grade()
	fmt.Printf("\ncommitted=%v  violated=%v  latency=%.1f virtual minutes\n",
		out.Committed(), out.AtomicityViolated(), float64(out.Latency())/60000)
	fmt.Printf("operations paid: %d contract deployments + %d calls (N+1 each, Section 6.2)\n",
		out.Deploys, out.Calls)
	fmt.Printf("bob now owns %d on bitcoin; alice owns %d on ethereum\n",
		owned(world, "bitcoin", bob.Addr()), owned(world, "ethereum", alice.Addr()))

	fmt.Println("\nprotocol timeline:")
	for _, ev := range run.Events() {
		if ev.Edge < 0 {
			fmt.Printf("  t=%6.1fs  %s\n", float64(ev.At)/1000, ev.Label)
		}
	}
}

func owned(w *xchain.World, id chain.ID, a crypto.Address) uint64 {
	var total uint64
	for _, o := range w.View(id).TipState().UTXOsOwnedBy(a) {
		total += o.Value
	}
	return total
}
