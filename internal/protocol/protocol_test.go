package protocol

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// world builds a one-chain world with two funded participants.
func world(t *testing.T, seed uint64) (*xchain.World, *xchain.Participant, *xchain.Participant) {
	t.Helper()
	b := xchain.NewBuilder(seed)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	b.Chain(xchain.DefaultChainSpec("c0"))
	b.Fund(alice, "c0", 1_000_000)
	b.Fund(bob, "c0", 1_000_000)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return w, alice, bob
}

func TestRuntimeDrivesOnTipChanges(t *testing.T) {
	w, alice, bob := world(t, 1)
	drives := map[string]int{}
	rt, err := New(Config{
		World:        w,
		Participants: []*xchain.Participant{alice, bob},
		Chains:       []chain.ID{"c0", "c0"}, // duplicate must collapse
		Drive:        func(p *xchain.Participant) { drives[p.Name]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	if drives["alice"] != 1 || drives["bob"] != 1 {
		t.Fatalf("initial drive missing: %v", drives)
	}
	w.RunFor(2 * sim.Minute) // ~12 blocks
	if drives["alice"] < 5 || drives["bob"] < 5 {
		t.Fatalf("tip changes did not re-drive: %v", drives)
	}
	// Duplicate chain ids must not double-drive: both participants see
	// the same notification count.
	if drives["alice"] != drives["bob"] {
		t.Fatalf("asymmetric drive counts: %v", drives)
	}
}

func TestRuntimeCrashResumeLifecycle(t *testing.T) {
	w, alice, bob := world(t, 2)
	drives := 0
	rt, err := New(Config{
		World:        w,
		Participants: []*xchain.Participant{alice, bob},
		Chains:       []chain.ID{"c0"},
		Drive: func(p *xchain.Participant) {
			if p == bob {
				drives++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	w.RunFor(time30s)
	bob.Crash()
	at := drives
	w.RunFor(2 * sim.Minute)
	if drives != at {
		t.Fatalf("crashed participant was driven %d more times", drives-at)
	}
	bob.Recover()
	rt.Resume(bob)
	w.RunFor(sim.Minute)
	if drives <= at+1 {
		t.Fatal("resume did not re-arm subscriptions")
	}
}

// TestRuntimeStartWithCrashedParticipant is the audit regression for
// the miner.Client halt fix: a participant already down at Start (the
// decline-abort scenario) gets no subscriptions — previously the
// clients silently swallowed the registrations; now the runtime skips
// them — and a later Recover+Resume arms real ones.
func TestRuntimeStartWithCrashedParticipant(t *testing.T) {
	w, alice, bob := world(t, 6)
	drives := 0
	rt, err := New(Config{
		World:        w,
		Participants: []*xchain.Participant{alice, bob},
		Chains:       []chain.ID{"c0"},
		Drive: func(p *xchain.Participant) {
			if p == bob {
				drives++
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bob.Crash() // declines before the run begins
	rt.Start()
	if n := len(rt.states[bob].subs); n != 0 {
		t.Fatalf("crashed participant holds %d subscriptions after Start", n)
	}
	w.RunFor(2 * sim.Minute)
	if drives != 0 {
		t.Fatalf("crashed participant driven %d times", drives)
	}
	bob.Recover()
	rt.Resume(bob)
	if n := len(rt.states[bob].subs); n == 0 {
		t.Fatal("Resume armed no subscriptions for the recovered participant")
	}
	w.RunFor(2 * sim.Minute)
	if drives == 0 {
		t.Fatal("recovered participant never driven")
	}
}

func TestRuntimeStopRetiresEverything(t *testing.T) {
	w, alice, bob := world(t, 3)
	drives := 0
	var rt *Runtime
	rt, err := New(Config{
		World:        w,
		Participants: []*xchain.Participant{alice, bob},
		Chains:       []chain.ID{"c0"},
		Drive: func(p *xchain.Participant) {
			drives++
			rt.WakeAt(p, "later", rt.Now()+time30s)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	w.RunFor(sim.Minute)
	rt.Stop()
	if !rt.Stopped() {
		t.Fatal("Stopped() false after Stop")
	}
	at := drives
	w.RunFor(3 * sim.Minute) // tip changes and armed wakes fire into the void
	if drives != at {
		t.Fatalf("stopped runtime drove %d more times", drives-at)
	}
	rt.Stop() // idempotent
}

func TestThrottleAndWakeAt(t *testing.T) {
	w, alice, bob := world(t, 4)
	var actions, wakes int
	var rt *Runtime
	due := sim.Time(0)
	rt, err := New(Config{
		World:        w,
		Participants: []*xchain.Participant{alice, bob},
		Chains:       []chain.ID{"c0"},
		Drive: func(p *xchain.Participant) {
			if p != alice {
				return
			}
			rt.Throttle(p, "act", sim.Minute, func() { actions++ })
			if due == 0 {
				due = rt.Now() + 2*sim.Minute
			}
			if rt.Now() >= due {
				wakes++
			} else {
				// Re-armed on every drive; must stay one pending timer.
				rt.WakeAt(p, "due", due)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	w.RunUntil(5 * sim.Minute)
	// One throttled action per minute at most (plus the initial one).
	if actions > 6 {
		t.Fatalf("throttle leaked: %d actions in 5 minutes", actions)
	}
	if actions < 3 {
		t.Fatalf("throttle starved: %d actions in 5 minutes", actions)
	}
	if wakes == 0 {
		t.Fatal("WakeAt never fired")
	}
}

func TestEnsureTxConfirmsAndResubmits(t *testing.T) {
	w, alice, bob := world(t, 5)
	client := alice.Client("c0")
	// Build a payment but never submit it: EnsureTx's keep-alive must
	// eventually multicast it and then report depth-2 confirmation.
	ins, change, err := client.SelectFunds(1_000)
	if err != nil {
		t.Fatal(err)
	}
	outs := []chain.TxOut{{Value: 1_000, Owner: bob.Addr()}}
	if change > 0 {
		outs = append(outs, chain.TxOut{Value: change, Owner: alice.Addr()})
	}
	tx := chain.NewTransfer(alice.Key, 1, ins, outs)

	confirmed := false
	var rt *Runtime
	rt, err = New(Config{
		World:        w,
		Participants: []*xchain.Participant{alice, bob},
		Chains:       []chain.ID{"c0"},
		Drive: func(p *xchain.Participant) {
			if p == alice && !confirmed {
				confirmed = rt.EnsureTx(p, "c0", tx, 2)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	w.RunFor(10 * sim.Minute)
	if !confirmed {
		t.Fatal("EnsureTx never confirmed the kept-alive transaction")
	}
	if _, _, found := client.Chain().FindTx(tx.ID()); !found {
		t.Fatal("transaction not on the canonical chain")
	}
}

const time30s = 30 * sim.Second

// TestTimelineReturnsCopy: the slice Timeline returns must be a
// snapshot — mutating it (or appending to the runtime afterwards) must
// not alias the runtime's internal events. Regression: Timeline used
// to return the live slice.
func TestTimelineReturnsCopy(t *testing.T) {
	w, alice, bob := world(t, 7)
	rt, err := New(Config{
		World:        w,
		Participants: []*xchain.Participant{alice, bob},
		Chains:       []chain.ID{"c0"},
		Drive:        func(p *xchain.Participant) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Event(-1, "first")
	rt.Event(0, "second")
	snap := rt.Timeline()
	if len(snap) != 2 {
		t.Fatalf("timeline has %d events, want 2", len(snap))
	}
	// Mutating the snapshot must not corrupt the runtime's timeline.
	snap[0].Label = "tampered"
	if got := rt.Timeline()[0].Label; got != "first" {
		t.Fatalf("snapshot mutation leaked into the runtime: %q", got)
	}
	// Later appends must not grow (or reallocate under) the snapshot.
	rt.Event(-1, "third")
	if len(snap) != 2 {
		t.Fatalf("snapshot grew to %d after a later Event", len(snap))
	}
	if snap[1].Label != "second" {
		t.Fatalf("snapshot changed under a later Event: %q", snap[1].Label)
	}
}

// TestMarkFirstWins: Mark records each phase point once, at the first
// call's virtual time; Marks returns an independent copy.
func TestMarkFirstWins(t *testing.T) {
	w, alice, bob := world(t, 8)
	rt, err := New(Config{
		World:        w,
		Participants: []*xchain.Participant{alice, bob},
		Chains:       []chain.ID{"c0"},
		Drive:        func(p *xchain.Participant) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	rt.Mark(PointDeploySubmitted)
	w.RunFor(time30s)
	rt.Mark(PointDeploySubmitted) // retry: must not move the boundary
	rt.Mark(PointDeployConfirmed)
	marks := rt.Marks()
	if len(marks) != 2 {
		t.Fatalf("got %d marks, want 2", len(marks))
	}
	if marks[0].Point != PointDeploySubmitted || marks[0].At != 0 {
		t.Fatalf("first mark = %+v, want deploy_submitted at t=0", marks[0])
	}
	if marks[1].Point != PointDeployConfirmed || marks[1].At != time30s {
		t.Fatalf("second mark = %+v, want deploy_confirmed at t=30s", marks[1])
	}
	at, ok := rt.MarkTime(PointDeploySubmitted)
	if !ok || at != 0 {
		t.Fatalf("MarkTime(deploy_submitted) = %v,%v", at, ok)
	}
	if _, ok := rt.MarkTime(PointDecisionConfirmed); ok {
		t.Fatal("MarkTime reports a point that was never marked")
	}
	// The returned slice is a copy.
	marks[0].Point = PointDecisionTriggered
	if rt.Marks()[0].Point != PointDeploySubmitted {
		t.Fatal("Marks() returned the live slice")
	}
}
