// Golden fixture for the globalrand analyzer. Loaded by the tests as
// "repro/internal/grtest" (in scope for the determinism contract).
package grtest

import (
	"math/rand" // want `import "math/rand" in deterministic package`

	"repro/internal/sim"
)

func badGlobalSource() int {
	return rand.Intn(10)
}

func badMint() *sim.RNG {
	return sim.NewRNG(7) // want `sim\.NewRNG mints a fresh random stream`
}

func forkedIsLegal(r *sim.RNG) *sim.RNG {
	return r.Fork()
}

func annotatedMint(seed uint64) *sim.RNG {
	return sim.NewRNG(seed) //ac3:globalrand fixture: seed parameter descends from the run seed
}
