package xchain

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/vm"
)

func buildTwoChainWorld(t *testing.T, seed uint64) (*World, *Participant, *Participant) {
	t.Helper()
	b := NewBuilder(seed)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	b.Chain(DefaultChainSpec("c1"))
	b.Chain(DefaultChainSpec("c2"))
	b.Fund(alice, "c1", 100_000)
	b.Fund(bob, "c2", 100_000)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return w, alice, bob
}

func TestBuilderWiresClientsAndFunding(t *testing.T) {
	w, alice, bob := buildTwoChainWorld(t, 1)
	if len(w.Chains()) != 2 {
		t.Fatalf("chains = %v", w.Chains())
	}
	if alice.Client("c1").Balance() != 100_000 {
		t.Fatalf("alice c1 balance = %d", alice.Client("c1").Balance())
	}
	if alice.Client("c2").Balance() != 0 {
		t.Fatal("alice funded on the wrong chain")
	}
	if bob.Client("c2").Balance() != 100_000 {
		t.Fatal("bob not funded")
	}
	// Mining started.
	w.RunUntil(5 * sim.Minute)
	if w.View("c1").Height() == 0 || w.View("c2").Height() == 0 {
		t.Fatal("chains not mining")
	}
}

func TestParticipantClientPanicsOnUnknownChain(t *testing.T) {
	_, alice, _ := buildTwoChainWorld(t, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown chain")
		}
	}()
	alice.Client("nope")
}

func TestCrashHaltsClientsAndBusAndRecoverRestores(t *testing.T) {
	w, alice, bob := buildTwoChainWorld(t, 3)
	got := 0
	bob.OnMessage(func(from *Participant, msg any) { got++ })

	alice.Tell(bob, "hello")
	w.RunFor(sim.Second)
	if got != 1 {
		t.Fatalf("got %d messages, want 1", got)
	}

	bob.Crash()
	alice.Tell(bob, "lost")
	alice.Announce("lost too")
	w.RunFor(sim.Second)
	if got != 1 {
		t.Fatal("crashed participant received messages")
	}
	if !bob.Client("c2").Halted() {
		t.Fatal("crash did not halt clients")
	}
	// Crashed participants cannot send either.
	bob.Tell(alice, "ghost")

	bob.Recover()
	alice.Tell(bob, "back")
	w.RunFor(sim.Second)
	if got != 2 {
		t.Fatalf("got %d after recovery, want 2", got)
	}
	if !alice.Crashed() == false && bob.Crashed() {
		t.Fatal("crash state wrong")
	}
}

func TestAnnounceReachesAllOthers(t *testing.T) {
	b := NewBuilder(4)
	p1 := b.Participant("p1")
	p2 := b.Participant("p2")
	p3 := b.Participant("p3")
	b.Chain(DefaultChainSpec("c"))
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	var got2, got3 int
	p2.OnMessage(func(*Participant, any) { got2++ })
	p3.OnMessage(func(*Participant, any) { got3++ })
	p1.OnMessage(func(*Participant, any) { t.Fatal("sender received own broadcast") })
	p1.Announce("x")
	w.RunFor(sim.Second)
	if got2 != 1 || got3 != 1 {
		t.Fatalf("got2=%d got3=%d", got2, got3)
	}
}

func TestOutcomeGrading(t *testing.T) {
	e := func(st contracts.SwapState, deployed bool) EdgeOutcome {
		return EdgeOutcome{State: st, Deployed: deployed}
	}
	cases := []struct {
		name               string
		edges              []EdgeOutcome
		committed, aborted bool
		violated           bool
	}{
		{"all redeemed", []EdgeOutcome{e(contracts.StateRedeemed, true), e(contracts.StateRedeemed, true)}, true, false, false},
		{"all refunded", []EdgeOutcome{e(contracts.StateRefunded, true), e(contracts.StateRefunded, true)}, false, true, false},
		{"mixed = violation", []EdgeOutcome{e(contracts.StateRedeemed, true), e(contracts.StateRefunded, true)}, false, false, true},
		{"pending is neither", []EdgeOutcome{e(contracts.StatePublished, true), e(contracts.StateRedeemed, true)}, false, false, false},
		{"undeployed + refunded = aborted", []EdgeOutcome{e(contracts.StatePublished, false), e(contracts.StateRefunded, true)}, false, true, false},
		{"empty", nil, false, false, false},
	}
	for _, c := range cases {
		out := &Outcome{Edges: c.edges}
		if out.Committed() != c.committed || out.Aborted() != c.aborted || out.AtomicityViolated() != c.violated {
			t.Errorf("%s: committed=%v aborted=%v violated=%v", c.name,
				out.Committed(), out.Aborted(), out.AtomicityViolated())
		}
	}
	o := &Outcome{Start: 100, End: 350}
	if o.Latency() != 250 {
		t.Fatalf("latency = %d", o.Latency())
	}
}

func TestCountContractOps(t *testing.T) {
	w, alice, _ := buildTwoChainWorld(t, 5)
	client := alice.Client("c1")
	// Deploy an HTLC and redeem it.
	params := vm.EncodeGob(contracts.HTLCParams{
		Recipient: alice.Addr(),
		Hashlock:  crypto.Sum([]byte("s")),
		Timelock:  int64(2 * sim.Hour),
	})
	tx, addr, err := client.Deploy(contracts.TypeHTLC, params, 1_000)
	if err != nil {
		t.Fatal(err)
	}
	done := false
	err = client.WhenTxAtDepth(tx, 2, func(h crypto.Hash) {
		if _, err := client.Call(addr, contracts.FnRedeem, []byte("s"), 0); err != nil {
			t.Errorf("redeem: %v", err)
		}
		done = true
	})
	if err != nil {
		t.Fatal(err)
	}
	w.RunUntil(30 * sim.Minute)
	if !done {
		t.Fatal("deploy never confirmed")
	}
	d, c := CountContractOps(w.View("c1"), map[crypto.Address]bool{addr: true})
	if d != 1 || c != 1 {
		t.Fatalf("ops = %d deploys, %d calls; want 1/1", d, c)
	}
	// Unrelated contracts are not counted.
	d, c = CountContractOps(w.View("c1"), map[crypto.Address]bool{{9, 9}: true})
	if d != 0 || c != 0 {
		t.Fatalf("phantom ops counted: %d/%d", d, c)
	}
}

func TestGradeGraphHandlesMissingContracts(t *testing.T) {
	w, alice, bob := buildTwoChainWorld(t, 6)
	g, err := graph.TwoParty(1, alice.Addr(), bob.Addr(), 1_000, "c1", 2_000, "c2")
	if err != nil {
		t.Fatal(err)
	}
	// Nothing deployed: no assets ever moved, which grades as a clean
	// abort (the nothing side of all-or-nothing), never as commit or
	// violation.
	out := GradeGraph(w, g, make([]crypto.Address, 2))
	if out.Committed() || out.AtomicityViolated() {
		t.Fatalf("empty grading misjudged: %+v", out.Edges)
	}
	if !out.Aborted() {
		t.Fatal("never-started AC2T should grade as aborted")
	}
	for _, e := range out.Edges {
		if e.Deployed {
			t.Fatal("phantom deployment")
		}
	}
	// A shorter address slice than edges must not panic.
	_ = GradeGraph(w, g, nil)
	_ = chain.ID("c1") // keep chain import meaningful
}
