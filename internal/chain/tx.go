package chain

import (
	"bytes"
	"encoding/binary"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/vm"
)

// TxKind discriminates the transaction flavours of Section 2.3.
type TxKind byte

// Transaction kinds.
const (
	// TxGenesis mints the initial asset allocation in the genesis
	// block. Valid only at height 0.
	TxGenesis TxKind = iota
	// TxCoinbase mints the block reward to the miner; first tx of
	// every non-genesis block.
	TxCoinbase
	// TxTransfer moves assets between identities, merging or
	// splitting them (Figure 2).
	TxTransfer
	// TxDeploy publishes a smart contract, optionally locking assets
	// in it (the deployment message of Section 2.3).
	TxDeploy
	// TxCall invokes a smart-contract function, optionally sending
	// assets along.
	TxCall
)

// String names the kind.
func (k TxKind) String() string {
	switch k {
	case TxGenesis:
		return "genesis"
	case TxCoinbase:
		return "coinbase"
	case TxTransfer:
		return "transfer"
	case TxDeploy:
		return "deploy"
	case TxCall:
		return "call"
	default:
		return fmt.Sprintf("kind(%d)", byte(k))
	}
}

// OutPoint identifies one transaction output.
type OutPoint struct {
	TxID  crypto.Hash
	Index uint32
}

// String renders the outpoint.
func (o OutPoint) String() string { return fmt.Sprintf("%s:%d", o.TxID, o.Index) }

// Compare orders outpoints canonically: by transaction id bytes, then
// output index. Every place a set of outpoints becomes a sequence
// (funding selection, genesis layout) must sort with this, never rely
// on map iteration order.
func (o OutPoint) Compare(p OutPoint) int {
	if c := bytes.Compare(o.TxID[:], p.TxID[:]); c != 0 {
		return c
	}
	switch {
	case o.Index < p.Index:
		return -1
	case o.Index > p.Index:
		return 1
	}
	return 0
}

// TxOut is an asset owned by an identity.
type TxOut struct {
	Value vm.Amount
	Owner crypto.Address
}

// TxIn spends a previous output. The transaction-level signature must
// be by the owner of every input (miners validate that "end-users can
// transact only on their own assets").
type TxIn struct {
	Prev OutPoint
}

// Tx is a transaction. Exactly which fields are meaningful depends on
// Kind; Validate* in apply.go enforces the shape.
type Tx struct {
	Kind  TxKind
	Nonce uint64 // distinguishes otherwise-identical transactions

	Ins  []TxIn  // inputs (transfer, deploy, call-with-value)
	Outs []TxOut // outputs (genesis, coinbase, transfer, change)

	// Deploy fields.
	ContractType string // registry type name
	Params       []byte // encoded constructor parameters

	// Call fields.
	Contract crypto.Address // target contract
	Fn       string         // function name
	Args     []byte         // encoded arguments

	// Value is the asset amount locked into the contract (deploy) or
	// sent with the call (msg.val). Funded from Ins minus change Outs.
	Value vm.Amount

	// Sig signs SigHash(); its signer must own every input. Genesis
	// and coinbase transactions are unsigned.
	Sig crypto.Signature

	// Memoized pure derivations. Transactions are immutable once
	// constructed (builders sign as the last step, DecodeTx returns
	// finished values), and the same *Tx is validated by every node's
	// chain view in a simulated network — re-hashing the body and
	// re-verifying the ed25519 signature per view dominated run time
	// before these caches.
	memoID    *crypto.Hash
	memoSigOK int8 // 0 unknown, +1 valid, -1 invalid
}

// encodeBody writes the canonical signed portion of the transaction.
func (tx *Tx) encodeBody(buf *bytes.Buffer) {
	var u64 [8]byte
	var u32 [4]byte
	writeU64 := func(v uint64) {
		binary.BigEndian.PutUint64(u64[:], v)
		buf.Write(u64[:])
	}
	writeU32 := func(v uint32) {
		binary.BigEndian.PutUint32(u32[:], v)
		buf.Write(u32[:])
	}
	writeBytes := func(b []byte) {
		writeU32(uint32(len(b)))
		buf.Write(b)
	}

	buf.WriteByte(byte(tx.Kind))
	writeU64(tx.Nonce)
	writeU32(uint32(len(tx.Ins)))
	for _, in := range tx.Ins {
		buf.Write(in.Prev.TxID[:])
		writeU32(in.Prev.Index)
	}
	writeU32(uint32(len(tx.Outs)))
	for _, out := range tx.Outs {
		writeU64(out.Value)
		buf.Write(out.Owner[:])
	}
	writeBytes([]byte(tx.ContractType))
	writeBytes(tx.Params)
	buf.Write(tx.Contract[:])
	writeBytes([]byte(tx.Fn))
	writeBytes(tx.Args)
	writeU64(tx.Value)
}

// SigHash returns the digest the transaction signature covers,
// computed once and cached (the body is immutable after
// construction).
func (tx *Tx) SigHash() crypto.Hash {
	if tx.memoID != nil {
		return *tx.memoID
	}
	var buf bytes.Buffer
	tx.encodeBody(&buf)
	h := crypto.Sum(buf.Bytes())
	tx.memoID = &h
	return h
}

// ID returns the transaction identifier. It covers the signed body
// only; the Nonce field disambiguates intentional duplicates, and
// signature malleability is irrelevant in this simulation.
func (tx *Tx) ID() crypto.Hash { return tx.SigHash() }

// VerifySig reports whether Sig validly signs the transaction body,
// caching the verdict: every chain view that applies this transaction
// asks the same question about the same immutable value, and ed25519
// verification is the single most expensive operation in the
// simulation. Tampering with a transaction after its first
// verification is not modeled (adversaries forge fresh transactions
// instead).
func (tx *Tx) VerifySig() bool {
	if tx.memoSigOK == 0 {
		if tx.Sig.Verify(tx.SigHash().Bytes()) {
			tx.memoSigOK = 1
		} else {
			tx.memoSigOK = -1
		}
	}
	return tx.memoSigOK > 0
}

// Encode serializes the full transaction (body + signature) for
// embedding in blocks and SPV evidence.
func (tx *Tx) Encode() []byte {
	var buf bytes.Buffer
	tx.encodeBody(&buf)
	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], uint32(len(tx.Sig.Pub)))
	buf.Write(u32[:])
	buf.Write(tx.Sig.Pub)
	binary.BigEndian.PutUint32(u32[:], uint32(len(tx.Sig.Sig)))
	buf.Write(u32[:])
	buf.Write(tx.Sig.Sig)
	return buf.Bytes()
}

// DecodeTx reverses Encode.
func DecodeTx(b []byte) (*Tx, error) {
	r := &byteReader{b: b}
	tx := &Tx{}
	kind, err := r.u8()
	if err != nil {
		return nil, fmt.Errorf("chain: decode tx kind: %w", err)
	}
	tx.Kind = TxKind(kind)
	if tx.Nonce, err = r.u64(); err != nil {
		return nil, fmt.Errorf("chain: decode tx nonce: %w", err)
	}
	nIns, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nIns > uint32(len(b)) {
		return nil, fmt.Errorf("chain: implausible input count %d", nIns)
	}
	for i := uint32(0); i < nIns; i++ {
		var in TxIn
		if err := r.hash(&in.Prev.TxID); err != nil {
			return nil, err
		}
		if in.Prev.Index, err = r.u32(); err != nil {
			return nil, err
		}
		tx.Ins = append(tx.Ins, in)
	}
	nOuts, err := r.u32()
	if err != nil {
		return nil, err
	}
	if nOuts > uint32(len(b)) {
		return nil, fmt.Errorf("chain: implausible output count %d", nOuts)
	}
	for i := uint32(0); i < nOuts; i++ {
		var out TxOut
		if out.Value, err = r.u64(); err != nil {
			return nil, err
		}
		if err := r.addr(&out.Owner); err != nil {
			return nil, err
		}
		tx.Outs = append(tx.Outs, out)
	}
	ct, err := r.bytes()
	if err != nil {
		return nil, err
	}
	tx.ContractType = string(ct)
	if tx.Params, err = r.bytes(); err != nil {
		return nil, err
	}
	if err := r.addr(&tx.Contract); err != nil {
		return nil, err
	}
	fn, err := r.bytes()
	if err != nil {
		return nil, err
	}
	tx.Fn = string(fn)
	if tx.Args, err = r.bytes(); err != nil {
		return nil, err
	}
	if tx.Value, err = r.u64(); err != nil {
		return nil, err
	}
	if tx.Sig.Pub, err = r.bytes(); err != nil {
		return nil, err
	}
	if tx.Sig.Sig, err = r.bytes(); err != nil {
		return nil, err
	}
	if len(tx.Sig.Pub) == 0 {
		tx.Sig.Pub = nil
	}
	if len(tx.Sig.Sig) == 0 {
		tx.Sig.Sig = nil
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("chain: %d trailing bytes after tx", r.remaining())
	}
	return tx, nil
}

// byteReader is a bounds-checked cursor over an encoded buffer.
type byteReader struct {
	b   []byte
	pos int
}

func (r *byteReader) remaining() int { return len(r.b) - r.pos }

func (r *byteReader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("chain: truncated encoding (need %d, have %d)", n, r.remaining())
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *byteReader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *byteReader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *byteReader) u64() (uint64, error) {
	b, err := r.take(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *byteReader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	b, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

func (r *byteReader) hash(h *crypto.Hash) error {
	b, err := r.take(crypto.HashSize)
	if err != nil {
		return err
	}
	copy(h[:], b)
	return nil
}

func (r *byteReader) addr(a *crypto.Address) error {
	b, err := r.take(len(a))
	if err != nil {
		return err
	}
	copy(a[:], b)
	return nil
}

// NewTransfer builds a signed transfer spending ins (owned by key)
// into outs.
func NewTransfer(key *crypto.KeyPair, nonce uint64, ins []TxIn, outs []TxOut) *Tx {
	tx := &Tx{Kind: TxTransfer, Nonce: nonce, Ins: ins, Outs: outs}
	tx.Sig = key.Sign(tx.SigHash().Bytes())
	return tx
}

// NewDeploy builds a signed contract deployment locking value into a
// new contract of the given registry type. change receives any excess
// input value.
func NewDeploy(key *crypto.KeyPair, nonce uint64, ins []TxIn, change []TxOut, contractType string, params []byte, value vm.Amount) *Tx {
	tx := &Tx{
		Kind:         TxDeploy,
		Nonce:        nonce,
		Ins:          ins,
		Outs:         change,
		ContractType: contractType,
		Params:       params,
		Value:        value,
	}
	tx.Sig = key.Sign(tx.SigHash().Bytes())
	return tx
}

// NewCall builds a signed contract function call. ins/change fund
// value when non-zero.
func NewCall(key *crypto.KeyPair, nonce uint64, contract crypto.Address, fn string, args []byte, ins []TxIn, change []TxOut, value vm.Amount) *Tx {
	tx := &Tx{
		Kind:     TxCall,
		Nonce:    nonce,
		Ins:      ins,
		Outs:     change,
		Contract: contract,
		Fn:       fn,
		Args:     args,
		Value:    value,
	}
	tx.Sig = key.Sign(tx.SigHash().Bytes())
	return tx
}

// ContractAddr returns the address the contract deployed by this
// transaction lives at. Only meaningful for TxDeploy.
func (tx *Tx) ContractAddr() crypto.Address { return vm.ContractAddress(tx.ID()) }
