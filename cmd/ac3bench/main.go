// Command ac3bench regenerates every table and figure of the paper's
// evaluation from the real protocol implementations running on the
// simulated blockchain networks.
//
// Usage:
//
//	ac3bench [-seed N] [-experiment id] [-diam N] [-runs N]
//
// Experiment ids: fig8, fig9, fig10, cost, witness, table1,
// atomicity, complex, scale, engine, all (default).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	seed := flag.Uint64("seed", 42, "simulation seed (runs are deterministic per seed)")
	experiment := flag.String("experiment", "all", "which experiment to run: fig8|fig9|fig10|cost|witness|table1|atomicity|complex|scale|engine|all")
	maxDiam := flag.Int("diam", 8, "maximum graph diameter for the fig10 sweep")
	runs := flag.Int("runs", 5, "runs per scenario for the atomicity experiment")
	flag.Parse()

	var results []*bench.Result
	switch *experiment {
	case "fig8":
		results = append(results, bench.Fig8(*seed))
	case "fig9":
		results = append(results, bench.Fig9(*seed))
	case "fig10":
		results = append(results, bench.Fig10(*seed, *maxDiam))
	case "cost":
		results = append(results, bench.Cost(*seed))
	case "witness":
		results = append(results, bench.WitnessChoice(*seed))
	case "table1":
		results = append(results, bench.Table1(*seed))
	case "atomicity":
		results = append(results, bench.Atomicity(*seed, *runs))
	case "complex":
		results = append(results, bench.Complex(*seed))
	case "scale":
		results = append(results, bench.Scale(*seed))
	case "engine":
		results = append(results, bench.EngineLoad(*seed))
	case "all":
		results = bench.All(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		flag.Usage()
		os.Exit(2)
	}

	failed := false
	for _, r := range results {
		fmt.Println(r)
		fmt.Println()
		if !r.OK {
			failed = true
		}
	}
	if failed {
		fmt.Fprintln(os.Stderr, "some experiments failed their sanity assertions")
		os.Exit(1)
	}
}
