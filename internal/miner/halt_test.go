package miner

import (
	"errors"
	"testing"

	"repro/internal/crypto"
	"repro/internal/p2p"
	"repro/internal/sim"
)

// TestHaltedClientRefusesWatches is the regression test for the
// silent-drop bug: registering a watch (or a subscription) on a
// halted client used to succeed and never fire. Registration must now
// fail with ErrHalted, and the same registrations must work again
// after Restart.
func TestHaltedClientRefusesWatches(t *testing.T) {
	s, net, user := testNet(t, 31, 1, p2p.LatencyModel{Base: 10})
	net.Start()
	alice := NewClient(net, 0, user)
	rng := s.RNG().Fork()
	bob := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))

	tx, err := alice.Transfer(bob.Addr, 100)
	if err != nil {
		t.Fatal(err)
	}
	alice.Halt()

	fired := false
	if err := alice.WhenTxAtDepth(tx, 1, func(crypto.Hash) { fired = true }); !errors.Is(err, ErrHalted) {
		t.Fatalf("WhenTxAtDepth on halted client: err = %v, want ErrHalted", err)
	}
	if err := alice.WhenContract(crypto.Address{1}, 0, nil, nil); !errors.Is(err, ErrHalted) {
		t.Fatalf("WhenContract on halted client: err = %v, want ErrHalted", err)
	}
	sub, err := alice.OnTipChange(func() { fired = true })
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("OnTipChange on halted client: err = %v, want ErrHalted", err)
	}
	if sub.Active() {
		t.Fatal("subscription refused with ErrHalted reports active")
	}
	sub.Cancel() // must stay safe on the inert handle

	s.RunUntil(10 * sim.Minute)
	if fired {
		t.Fatal("watch refused at registration fired anyway")
	}

	// Recovery: Restart re-opens registration, and the re-armed watch
	// fires once the transaction is buried (the resubmit fallback
	// covers the mempool the crash wiped).
	alice.Restart()
	confirmed := false
	if err := alice.WhenTxAtDepth(tx, 1, func(crypto.Hash) { confirmed = true }); err != nil {
		t.Fatalf("WhenTxAtDepth after Restart: %v", err)
	}
	s.RunUntil(s.Now() + 30*sim.Minute)
	if !confirmed {
		t.Fatal("watch re-armed after Restart never fired")
	}
}

// TestClosedClientWatchError pins the Close-specific error: a closed
// client is permanently dead and must say so, not report a transient
// halt.
func TestClosedClientWatchError(t *testing.T) {
	s, net, user := testNet(t, 32, 1, p2p.LatencyModel{Base: 10})
	net.Start()
	alice := NewClient(net, 0, user)
	_ = s

	alice.Close()
	if _, err := alice.OnTipChange(func() {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("OnTipChange on closed client: err = %v, want ErrClosed", err)
	}
	if err := alice.WhenContract(crypto.Address{1}, 0, nil, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("WhenContract on closed client: err = %v, want ErrClosed", err)
	}
}
