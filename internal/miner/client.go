package miner

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/sim"
	"repro/internal/vm"
)

// Client is the application-layer client library of Section 2.1: an
// end-user identity attached to one mining node for reads, that
// multicasts transactions to the storage layer, tracks confirmation
// depths, and manages a simple UTXO wallet.
//
// All waiting is callback-based on the simulator clock. Clients
// resubmit transactions that fall out of the chain (reorgs, mempool
// purges), so "submitted" eventually means "committed at depth d"
// unless the client is halted — which is exactly the crash model the
// paper's Section 1 failure scenario needs.
type Client struct {
	Key  *crypto.KeyPair
	node *Node
	net  *Network
	sim  *sim.Sim
	rng  *sim.RNG

	nonce    uint64
	reserved map[chain.OutPoint]bool
	pollers  []*sim.Poller
	halted   bool

	// PollInterval controls how often watches re-check the node's
	// view; defaults to a quarter block interval.
	PollInterval sim.Time

	// Resubmits counts transaction re-broadcasts (diagnostics).
	Resubmits int
}

// NewClient attaches a fresh client identity to node i of the
// network.
func NewClient(net *Network, nodeIndex int, key *crypto.KeyPair) *Client {
	n := net.Node(nodeIndex)
	return &Client{
		Key:          key,
		node:         n,
		net:          net,
		sim:          net.Sim,
		rng:          net.Sim.RNG().Fork(),
		reserved:     make(map[chain.OutPoint]bool),
		PollInterval: net.Params.BlockInterval / 4,
	}
}

// Chain returns the attached node's chain view (reads only).
func (c *Client) Chain() *chain.Chain { return c.node.Chain }

// ChainID returns the id of the blockchain this client talks to.
func (c *Client) ChainID() chain.ID { return c.net.Params.ID }

// Halt models an end-user site crash: pending watches stop firing and
// no further submissions happen until Restart.
func (c *Client) Halt() {
	c.halted = true
	for _, p := range c.pollers {
		p.Cancel()
	}
	c.pollers = nil
}

// Restart recovers a halted client. Watches must be re-established by
// the caller (a recovering participant re-drives its protocol).
func (c *Client) Restart() { c.halted = false }

// Halted reports whether the client is down.
func (c *Client) Halted() bool { return c.halted }

// Submit multicasts a signed transaction to every live mining node,
// modeling the paper's end-user-to-storage-layer message passing.
func (c *Client) Submit(tx *chain.Tx) {
	if c.halted || tx == nil {
		return
	}
	for _, n := range c.net.Nodes {
		n := n
		c.sim.After(c.submitDelay(), func() {
			if n.Alive() {
				n.SubmitLocal(tx)
			}
		})
	}
}

// submitDelay samples a small client-to-miner latency.
func (c *Client) submitDelay() sim.Time {
	return 1 + c.rng.Int63n(50)
}

// Balance sums the unreserved outputs the client owns at the tip.
func (c *Client) Balance() vm.Amount {
	var total vm.Amount
	for op, out := range c.Chain().TipState().UTXOsOwnedBy(c.Key.Addr) {
		if !c.reserved[op] {
			total += out.Value
		}
	}
	return total
}

// SelectFunds reserves unspent outputs totalling at least amount and
// returns them with the change value. Reservations of already-spent
// outputs are pruned first.
func (c *Client) SelectFunds(amount vm.Amount) ([]chain.TxIn, vm.Amount, error) {
	st := c.Chain().TipState()
	for op := range c.reserved {
		if _, live := st.UTXO(op); !live {
			delete(c.reserved, op)
		}
	}
	var ins []chain.TxIn
	var total vm.Amount
	for op, out := range st.UTXOsOwnedBy(c.Key.Addr) {
		if c.reserved[op] {
			continue
		}
		ins = append(ins, chain.TxIn{Prev: op})
		total += out.Value
		if total >= amount {
			break
		}
	}
	if total < amount {
		return nil, 0, fmt.Errorf("miner: %s has %d available, needs %d", c.Key.Addr, total, amount)
	}
	for _, in := range ins {
		c.reserved[in.Prev] = true
	}
	return ins, total - amount, nil
}

// changeOuts builds the change output list.
func (c *Client) changeOuts(change vm.Amount) []chain.TxOut {
	if change == 0 {
		return nil
	}
	return []chain.TxOut{{Value: change, Owner: c.Key.Addr}}
}

// Transfer builds, signs and submits a payment of amount to to.
func (c *Client) Transfer(to crypto.Address, amount vm.Amount) (*chain.Tx, error) {
	ins, change, err := c.SelectFunds(amount)
	if err != nil {
		return nil, err
	}
	c.nonce++
	outs := append([]chain.TxOut{{Value: amount, Owner: to}}, c.changeOuts(change)...)
	tx := chain.NewTransfer(c.Key, c.nonce, ins, outs)
	c.Submit(tx)
	return tx, nil
}

// Deploy builds, signs and submits a contract deployment locking
// value, returning the transaction and the contract's future address.
func (c *Client) Deploy(contractType string, params []byte, value vm.Amount) (*chain.Tx, crypto.Address, error) {
	var ins []chain.TxIn
	var change vm.Amount
	if value > 0 {
		var err error
		ins, change, err = c.SelectFunds(value)
		if err != nil {
			return nil, crypto.Address{}, err
		}
	}
	c.nonce++
	tx := chain.NewDeploy(c.Key, c.nonce, ins, c.changeOuts(change), contractType, params, value)
	c.Submit(tx)
	return tx, tx.ContractAddr(), nil
}

// Call builds, signs and submits a contract function call sending
// value along.
func (c *Client) Call(contract crypto.Address, fn string, args []byte, value vm.Amount) (*chain.Tx, error) {
	var ins []chain.TxIn
	var change vm.Amount
	if value > 0 {
		var err error
		ins, change, err = c.SelectFunds(value)
		if err != nil {
			return nil, err
		}
	}
	c.nonce++
	tx := chain.NewCall(c.Key, c.nonce, contract, fn, args, ins, c.changeOuts(change), value)
	c.Submit(tx)
	return tx, nil
}

// resubmitAfterPolls is how many unsuccessful polls a watch tolerates
// before re-multicasting the transaction.
const resubmitAfterPolls = 12

// WhenTxAtDepth invokes fn once the transaction is on the canonical
// chain buried at least depth blocks, resubmitting it if it drops out
// of the chain meanwhile. The watch dies silently if the client is
// halted (crash).
func (c *Client) WhenTxAtDepth(tx *chain.Tx, depth int, fn func(blockHash crypto.Hash)) {
	if c.halted {
		return
	}
	id := tx.ID()
	misses := 0
	p := c.sim.Poll(c.PollInterval, func() bool {
		b, _, found := c.Chain().FindTx(id)
		if !found {
			misses++
			if misses%resubmitAfterPolls == 0 {
				c.Resubmits++
				c.Submit(tx)
			}
			return false
		}
		d, ok := c.Chain().DepthOf(b.Hash())
		if !ok || d < depth {
			return false
		}
		fn(b.Hash())
		return true
	})
	c.pollers = append(c.pollers, p)
}

// WhenContract invokes fn once pred holds for the contract's state at
// the given confirmation depth (depth 0 reads the tip). The predicate
// sees a read-only contract snapshot.
func (c *Client) WhenContract(addr crypto.Address, depth int, pred func(vm.Contract) bool, fn func()) {
	if c.halted {
		return
	}
	p := c.sim.Poll(c.PollInterval, func() bool {
		ct, ok := c.Chain().ContractAtDepth(addr, depth)
		if !ok || !pred(ct) {
			return false
		}
		fn()
		return true
	})
	c.pollers = append(c.pollers, p)
}

// ContractNow reads a contract's current state at the given depth.
func (c *Client) ContractNow(addr crypto.Address, depth int) (vm.Contract, bool) {
	return c.Chain().ContractAtDepth(addr, depth)
}
