package contracts

import (
	"strings"
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/merkle"
	"repro/internal/sim"
	"repro/internal/vm"
)

func witnessSet(n int) ([]*crypto.KeyPair, []crypto.Address) {
	rng := sim.NewRNG(4242)
	ks := make([]*crypto.KeyPair, n)
	addrs := make([]crypto.Address, n)
	for i := range ks {
		ks[i] = crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
		addrs[i] = ks[i].Addr
	}
	return ks, addrs
}

// attest signs the batch root with the first m witness keys.
func attest(records []DecisionRecord, ks []*crypto.KeyPair, m int) crypto.MultiSig {
	ms := crypto.NewMultiSig(BatchRoot(records))
	for _, k := range ks[:m] {
		ms.Add(k)
	}
	return *ms
}

func commitArgs(records []DecisionRecord, ks []*crypto.KeyPair, m int) []byte {
	return EncodeBatchCommit(&BatchCommit{
		Records:     records,
		Root:        BatchRoot(records),
		Attestation: attest(records, ks, m),
	})
}

func batchRecords(n int) []DecisionRecord {
	records := make([]DecisionRecord, n)
	for i := range records {
		records[i] = DecisionRecord{
			SCw:      crypto.Address{byte(i + 1), 0xAA},
			Decision: WitnessRedeemAuthorized,
		}
		if i%3 == 2 {
			records[i].Decision = WitnessRefundAuthorized
		}
	}
	SortDecisionRecords(records)
	return records
}

func TestBatchWitnessInitValidation(t *testing.T) {
	_, addrs := witnessSet(4)
	ctx := vm.NewCtx("witness", crypto.Address{9}, 1, 10, vm.Msg{}, 0)
	cases := []struct {
		name   string
		params BatchWitnessParams
	}{
		{"empty witness set", BatchWitnessParams{Threshold: 1}},
		{"zero witness address", BatchWitnessParams{Witnesses: []crypto.Address{{}}, Threshold: 1}},
		{"duplicate witness", BatchWitnessParams{Witnesses: []crypto.Address{addrs[0], addrs[0]}, Threshold: 1}},
		{"threshold zero", BatchWitnessParams{Witnesses: addrs, Threshold: 0}},
		{"threshold above n", BatchWitnessParams{Witnesses: addrs, Threshold: 5}},
	}
	for _, tc := range cases {
		var sc BatchWitnessSC
		if err := sc.Init(ctx, vm.EncodeGob(tc.params)); err == nil {
			t.Errorf("%s: Init accepted", tc.name)
		}
	}
	var sc BatchWitnessSC
	if err := sc.Init(ctx, vm.EncodeGob(BatchWitnessParams{Witnesses: addrs, Threshold: 3})); err != nil {
		t.Fatalf("valid params rejected: %v", err)
	}
	if len(sc.Witnesses) != 4 || sc.Threshold != 3 || sc.Decisions == nil {
		t.Fatal("init did not store witness set")
	}
}

func TestCommitBatchHappyPath(t *testing.T) {
	ks, addrs := witnessSet(4)
	ctx := vm.NewCtx("witness", crypto.Address{9}, 1, 10, vm.Msg{}, 0)
	var sc BatchWitnessSC
	if err := sc.Init(ctx, vm.EncodeGob(BatchWitnessParams{Witnesses: addrs, Threshold: 3})); err != nil {
		t.Fatal(err)
	}
	records := batchRecords(5)
	// Exactly m-of-n signatures: the all-of-n Complete would fail here,
	// which is the satellite's point.
	args := commitArgs(records, ks, 3)
	if err := sc.Call(ctx, FnCommitBatch, args); err != nil {
		t.Fatalf("commit_batch: %v", err)
	}
	if len(sc.Decisions) != len(records) {
		t.Fatalf("recorded %d decisions, want %d", len(sc.Decisions), len(records))
	}
	for _, r := range records {
		if got, ok := sc.Decisions[r.SCw]; !ok || got != r.Decision {
			t.Fatalf("decision for %s = %s, want %s", r.SCw, got, r.Decision)
		}
	}
	// Idempotent overlap: a republished batch re-recording the same
	// decisions must succeed.
	if err := sc.Call(ctx, FnCommitBatch, args); err != nil {
		t.Fatalf("idempotent re-commit rejected: %v", err)
	}
}

func TestCommitBatchRejections(t *testing.T) {
	ks, addrs := witnessSet(4)
	ctx := vm.NewCtx("witness", crypto.Address{9}, 1, 10, vm.Msg{}, 0)
	newSC := func() *BatchWitnessSC {
		var sc BatchWitnessSC
		if err := sc.Init(ctx, vm.EncodeGob(BatchWitnessParams{Witnesses: addrs, Threshold: 3})); err != nil {
			t.Fatal(err)
		}
		return &sc
	}
	records := batchRecords(4)

	t.Run("empty decision set", func(t *testing.T) {
		if newSC().Call(ctx, FnCommitBatch, commitArgs(nil, ks, 3)) == nil {
			t.Fatal("empty batch accepted")
		}
	})
	t.Run("below threshold", func(t *testing.T) {
		if newSC().Call(ctx, FnCommitBatch, commitArgs(records, ks, 2)) == nil {
			t.Fatal("2-of-4 attestation accepted at threshold 3")
		}
	})
	t.Run("non-canonical order", func(t *testing.T) {
		rev := append([]DecisionRecord(nil), records...)
		rev[0], rev[1] = rev[1], rev[0]
		args := EncodeBatchCommit(&BatchCommit{Records: rev, Root: BatchRoot(rev), Attestation: attest(rev, ks, 3)})
		if newSC().Call(ctx, FnCommitBatch, args) == nil {
			t.Fatal("out-of-order records accepted")
		}
	})
	t.Run("duplicate SCw", func(t *testing.T) {
		dup := append([]DecisionRecord(nil), records...)
		dup[1] = dup[0]
		args := EncodeBatchCommit(&BatchCommit{Records: dup, Root: BatchRoot(dup), Attestation: attest(dup, ks, 3)})
		if newSC().Call(ctx, FnCommitBatch, args) == nil {
			t.Fatal("duplicate SCw accepted")
		}
	})
	t.Run("wrong root", func(t *testing.T) {
		bad := &BatchCommit{Records: records, Root: crypto.Sum([]byte("other")), Attestation: attest(records, ks, 3)}
		bad.Attestation = *crypto.NewMultiSig(bad.Root)
		for _, k := range ks[:3] {
			bad.Attestation.Add(k)
		}
		if newSC().Call(ctx, FnCommitBatch, EncodeBatchCommit(bad)) == nil {
			t.Fatal("mismatched root accepted")
		}
	})
	t.Run("attestation over wrong digest", func(t *testing.T) {
		ms := crypto.NewMultiSig(crypto.Sum([]byte("not the root")))
		for _, k := range ks[:3] {
			ms.Add(k)
		}
		bad := &BatchCommit{Records: records, Root: BatchRoot(records), Attestation: *ms}
		if newSC().Call(ctx, FnCommitBatch, EncodeBatchCommit(bad)) == nil {
			t.Fatal("attestation over a different digest accepted")
		}
	})
	t.Run("outsider signatures dont count", func(t *testing.T) {
		outsiders, _ := witnessSet(2)
		ms := crypto.NewMultiSig(BatchRoot(records))
		ms.Add(ks[0])
		ms.Add(ks[1])
		// witnessSet is deterministic, so re-derive distinct outsiders.
		rng := sim.NewRNG(777777)
		for range outsiders {
			ms.Add(crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64)))
		}
		bad := &BatchCommit{Records: records, Root: BatchRoot(records), Attestation: *ms}
		if newSC().Call(ctx, FnCommitBatch, EncodeBatchCommit(bad)) == nil {
			t.Fatal("outsider signatures counted toward the quorum")
		}
	})
	t.Run("non-decision state", func(t *testing.T) {
		bad := append([]DecisionRecord(nil), records...)
		bad[2].Decision = WitnessPublished
		args := EncodeBatchCommit(&BatchCommit{Records: bad, Root: BatchRoot(bad), Attestation: attest(bad, ks, 3)})
		if newSC().Call(ctx, FnCommitBatch, args) == nil {
			t.Fatal("P state accepted as a decision")
		}
	})
	t.Run("unknown function", func(t *testing.T) {
		if newSC().Call(ctx, "authorize_redeem", nil) == nil {
			t.Fatal("unknown function accepted")
		}
	})
}

func TestCommitBatchConflictRejectsWholeBatch(t *testing.T) {
	ks, addrs := witnessSet(4)
	ctx := vm.NewCtx("witness", crypto.Address{9}, 1, 10, vm.Msg{}, 0)
	var sc BatchWitnessSC
	if err := sc.Init(ctx, vm.EncodeGob(BatchWitnessParams{Witnesses: addrs, Threshold: 3})); err != nil {
		t.Fatal(err)
	}
	first := []DecisionRecord{{SCw: crypto.Address{1}, Decision: WitnessRedeemAuthorized}}
	if err := sc.Call(ctx, FnCommitBatch, commitArgs(first, ks, 3)); err != nil {
		t.Fatal(err)
	}
	// Second batch flips the decision for SCw {1} and adds a fresh
	// record; the conflict must reject BOTH.
	second := []DecisionRecord{
		{SCw: crypto.Address{1}, Decision: WitnessRefundAuthorized},
		{SCw: crypto.Address{2}, Decision: WitnessRedeemAuthorized},
	}
	SortDecisionRecords(second)
	err := sc.Call(ctx, FnCommitBatch, commitArgs(second, ks, 3))
	if err == nil {
		t.Fatal("conflicting batch accepted")
	}
	if !strings.Contains(err.Error(), "conflict") {
		t.Fatalf("unexpected error: %v", err)
	}
	if _, leaked := sc.Decisions[crypto.Address{2}]; leaked {
		t.Fatal("partial batch applied despite conflict")
	}
	if sc.Decisions[crypto.Address{1}] != WitnessRedeemAuthorized {
		t.Fatal("recorded decision mutated by rejected batch")
	}
}

func TestBatchWitnessCloneIndependent(t *testing.T) {
	ks, addrs := witnessSet(4)
	ctx := vm.NewCtx("witness", crypto.Address{9}, 1, 10, vm.Msg{}, 0)
	var sc BatchWitnessSC
	if err := sc.Init(ctx, vm.EncodeGob(BatchWitnessParams{Witnesses: addrs, Threshold: 3})); err != nil {
		t.Fatal(err)
	}
	cp := sc.Clone().(*BatchWitnessSC)
	records := batchRecords(2)
	if err := cp.Call(ctx, FnCommitBatch, commitArgs(records, ks, 3)); err != nil {
		t.Fatal(err)
	}
	if len(sc.Decisions) != 0 {
		t.Fatal("clone shares decision map with original")
	}
}

// TestBatchedPermissionlessRedeem drives the full batched evidence
// path on real chains: a commit_batch transaction buried on the
// witness chain plus a membership proof unlocks the asset contract,
// and the same evidence cannot unlock the opposite direction.
func TestBatchedPermissionlessRedeem(t *testing.T) {
	ksW, addrsW := witnessSet(4)
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"witness", "eth"}, alice, bob)

	// Deploy the batch contract on the witness chain.
	batchDep := w.deploy("witness", alice, TypeBatchWitness,
		vm.EncodeGob(BatchWitnessParams{Witnesses: addrsW, Threshold: 3}), 0)
	batchAddr := batchDep.ContractAddr()

	// Asset contract conditioned on the batch contract. SCw is a
	// protocol-level identifier here; the batched path never reads its
	// state, only its address inside the committed leaf.
	scw := crypto.Address{0xC0, 0xFF, 0xEE}
	wGen := w.chains["witness"].Genesis().Header.Encode()
	dep := w.deploy("eth", alice, TypePermissionless, vm.EncodeGob(PermissionlessParams{
		Recipient:         bob.Addr,
		WitnessChain:      "witness",
		WitnessCheckpoint: wGen,
		SCw:               scw,
		Depth:             2,
		Batch:             batchAddr,
	}), 5_000)
	assetAddr := dep.ContractAddr()

	// Commit a batch deciding RD for scw (among others), bury it.
	records := []DecisionRecord{
		{SCw: scw, Decision: WitnessRedeemAuthorized},
		{SCw: crypto.Address{0x01}, Decision: WitnessRefundAuthorized},
		{SCw: crypto.Address{0xFE}, Decision: WitnessRedeemAuthorized},
	}
	SortDecisionRecords(records)
	commitTx := w.call("witness", alice, batchAddr, FnCommitBatch, commitArgs(records, ksW, 3), true)
	w.mineEmpty("witness", 3)

	// Evidence: SPV of the commit tx + membership proof of our leaf.
	leaves := BatchLeaves(records)
	idx := -1
	for i, r := range records {
		if r.SCw == scw {
			idx = i
		}
	}
	proof, err := merkle.Prove(leaves, idx)
	if err != nil {
		t.Fatal(err)
	}
	ev := w.evidenceFor("witness", commitTx.ID(), 2)
	redeemArgs := EncodeEvidenceList([][]byte{ev, vm.EncodeGob(proof)})

	// The committed decision is RD: refund must fail, redeem must pay.
	w.call("eth", alice, assetAddr, FnRefund, redeemArgs, false)
	w.call("eth", bob, assetAddr, FnRedeem, redeemArgs, true)
	sc := w.contractState("eth", assetAddr).(*PermissionlessSC)
	if sc.State != StateRedeemed {
		t.Fatalf("state = %s, want RD", sc.State)
	}
	if got := w.balanceOf("eth", bob); got != 1_000_000+5_000 {
		t.Fatalf("bob balance = %d", got)
	}
}

// TestBatchedPermissionlessRejectsForgedProof checks the membership
// proof actually gates the unlock: a proof for a different leaf or a
// tampered sibling path must not verify.
func TestBatchedPermissionlessRejectsForgedProof(t *testing.T) {
	ksW, addrsW := witnessSet(4)
	ks := keys(2)
	alice, bob := ks[0], ks[1]
	w := newWorld(t, []chain.ID{"witness", "eth"}, alice, bob)

	batchDep := w.deploy("witness", alice, TypeBatchWitness,
		vm.EncodeGob(BatchWitnessParams{Witnesses: addrsW, Threshold: 3}), 0)
	batchAddr := batchDep.ContractAddr()

	scw := crypto.Address{0xC0, 0xFF, 0xEE}
	other := crypto.Address{0x01}
	wGen := w.chains["witness"].Genesis().Header.Encode()
	dep := w.deploy("eth", alice, TypePermissionless, vm.EncodeGob(PermissionlessParams{
		Recipient:         bob.Addr,
		WitnessChain:      "witness",
		WitnessCheckpoint: wGen,
		SCw:               scw,
		Depth:             2,
		Batch:             batchAddr,
	}), 5_000)
	assetAddr := dep.ContractAddr()

	// The batch decides RD for *other*, not for scw.
	records := []DecisionRecord{{SCw: other, Decision: WitnessRedeemAuthorized}}
	commitTx := w.call("witness", alice, batchAddr, FnCommitBatch, commitArgs(records, ksW, 3), true)
	w.mineEmpty("witness", 3)

	ev := w.evidenceFor("witness", commitTx.ID(), 2)
	proof, err := merkle.Prove(BatchLeaves(records), 0)
	if err != nil {
		t.Fatal(err)
	}
	// The only committed leaf belongs to a different SCw: VerifyData
	// recomputes our leaf payload and must reject.
	w.call("eth", bob, assetAddr, FnRedeem, EncodeEvidenceList([][]byte{ev, vm.EncodeGob(proof)}), false)

	// Malformed evidence shapes fail cleanly too.
	w.call("eth", bob, assetAddr, FnRedeem, EncodeEvidenceList([][]byte{ev}), false)
	w.call("eth", bob, assetAddr, FnRedeem, ev, false)
	sc := w.contractState("eth", assetAddr).(*PermissionlessSC)
	if sc.State != StatePublished {
		t.Fatalf("state = %s, want P", sc.State)
	}
}
