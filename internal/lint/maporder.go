package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// MapOrder flags `range` over a map whose iteration order can leak
// into ordered output — the bug family behind both determinism breaks
// this repo has had (map-order genesis transactions; map-order
// byte accounting). Go randomizes map iteration order per run on
// purpose, so any of the following inside a map-range body is a
// schedule input:
//
//   - a byte-stream write (Write/WriteString/..., gob/json
//     Encoder.Encode, fmt print/fprint) — serialized bytes now depend
//     on iteration order;
//   - a call into internal/trace — trace records are sequenced and
//     byte-compared across runs;
//   - an append to a slice declared outside the loop that is not
//     passed to a sort (sort.*, slices.Sort*) later in the same
//     function — the slice's element order is the iteration order.
//
// Order-independent folds (counter += v, map-to-map copies, min/max)
// are legal and not flagged. The fix is almost always to iterate a
// sorted key slice (or sort the collected slice before it escapes);
// a genuinely commutative case gets `//ac3:maporder <why order
// cannot matter>`.
var MapOrder = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag range-over-map whose iteration order flows into serialized output, traces, " +
		"or never-sorted slices (iterate sorted keys instead)",
	Run: runMapOrder,
}

func runMapOrder(pass *analysis.Pass) (any, error) {
	if !deterministicPkg(pass.Pkg.Path()) {
		return nil, nil
	}
	dirs := collectDirectives(pass)
	dirs.reportMissingJustifications()
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFuncMapOrder(pass, dirs, fd.Body)
		}
	}
	return nil, nil
}

func checkFuncMapOrder(pass *analysis.Pass, dirs *directiveSet, body *ast.BlockStmt) {
	// One function = one ordering scope: a slice filled in map order is
	// fine exactly when the same function sorts it afterwards.
	sortCalls := collectSortCalls(pass, body)
	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := pass.TypesInfo.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		if dirs.allowed("maporder", rng.Pos()) {
			return false // the annotation covers the whole loop
		}
		inspectMapRangeBody(pass, dirs, rng, sortCalls)
		return true
	})
}

// sortCall records one position where a slice-valued object is handed
// to a sorting function.
type sortCall struct {
	obj types.Object
	pos token.Pos
}

func collectSortCalls(pass *analysis.Pass, body *ast.BlockStmt) []sortCall {
	var out []sortCall
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(pass, call)
		if fn == nil || !isSortFunc(fn) {
			return true
		}
		for _, arg := range call.Args {
			if obj := rootObj(pass, arg); obj != nil {
				out = append(out, sortCall{obj: obj, pos: call.Pos()})
			}
		}
		return true
	})
	return out
}

func isSortFunc(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "sort":
		return true
	case "slices":
		return strings.HasPrefix(fn.Name(), "Sort")
	}
	return strings.HasPrefix(fn.Name(), "Sort")
}

func inspectMapRangeBody(pass *analysis.Pass, dirs *directiveSet, rng *ast.RangeStmt, sortCalls []sortCall) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if why := sinkCall(pass, n); why != "" && !dirs.allowed("maporder", n.Pos()) {
				pass.Reportf(n.Pos(), "%s inside range over map: output depends on map iteration order; iterate sorted keys (or annotate //ac3:maporder)", why)
			}
		case *ast.AssignStmt:
			checkRangeAppend(pass, dirs, rng, n, sortCalls)
		}
		return true
	})
}

// sinkCall classifies a call whose effect is order-sensitive
// accumulation, returning a description or "".
func sinkCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name, pkg := fn.Name(), fn.Pkg().Path()
	switch {
	case name == "Write" || name == "WriteString" || name == "WriteByte" || name == "WriteRune":
		return "byte-stream write " + pkg + "." + name
	case name == "Encode" && (pkg == "encoding/gob" || pkg == "encoding/json"):
		return pkg + " Encode"
	case pkg == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")):
		return "fmt." + name
	case pkg == "repro/internal/trace":
		return "trace call " + name
	}
	return ""
}

// checkRangeAppend flags `x = append(x, ...)` inside a map-range body
// when x outlives the loop and is never subsequently sorted in the
// enclosing function.
func checkRangeAppend(pass *analysis.Pass, dirs *directiveSet, rng *ast.RangeStmt, as *ast.AssignStmt, sortCalls []sortCall) {
	if len(as.Rhs) != 1 || len(as.Lhs) != 1 {
		return
	}
	call, ok := as.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return
	} else if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	obj := rootObj(pass, as.Lhs[0])
	if obj == nil || obj.Pos() > rng.Pos() {
		return // declared inside the loop: per-iteration, dies before order matters
	}
	for _, sc := range sortCalls {
		if sc.obj == obj && sc.pos > rng.End() {
			return // sorted after the loop: order restored
		}
	}
	if dirs.allowed("maporder", as.Pos()) {
		return
	}
	pass.Reportf(as.Pos(), "append to %q inside range over map without a later sort: element order is map iteration order; sort %q after the loop or iterate sorted keys", obj.Name(), obj.Name())
}

// rootObj resolves the object an lvalue-ish expression names: the
// identifier itself, or the field of a selector.
func rootObj(pass *analysis.Pass, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}
