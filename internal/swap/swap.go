// Package swap implements the baseline atomic cross-chain swap
// protocols the paper compares against: Nolan's two-party protocol
// [23] and Herlihy's single-leader generalization [16], both built on
// hashlock/timelock (HTLC) contracts.
//
// The implementation runs on the shared reconciler runtime
// (internal/protocol): the protocol is a step function driven by
// tip-change notifications and announcements, and the only timers are
// the protocol's own Δ-derived timelocks — the refunds of Nolan's
// construction — armed as one-shot runtime wakes. It reproduces the
// two properties the paper's evaluation leans on:
//
//   - Sequential structure: a participant publishes its outgoing
//     contracts only after all its incoming contracts are confirmed,
//     and redemption propagates backwards from the leader — so an
//     AC2T takes 2·Δ·Diam(D) end to end (Figure 8/10).
//   - Timelock fragility: a participant that crashes after the secret
//     is revealed but before redeeming loses its assets when the
//     timelock expires (the Section 1 "case against the current
//     proposals"). Resume works — a recovered participant re-derives
//     the revealed secret from chain state and retries its redeems —
//     but cannot rescue an expired timelock: the refund already
//     executed, which is exactly the hazard the atomicity experiment
//     measures and AC3WN's recovery avoids.
package swap

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/xchain"
)

// Event is a timeline entry for the Figure 8 phase rendering, shared
// with every protocol on the runtime.
type Event = protocol.Event

// Config configures one Herlihy/Nolan swap run.
type Config struct {
	Graph        *graph.Graph
	Participants []*xchain.Participant
	// Leader creates the hash secret and anchors the sequential
	// structure. Must be one of Participants.
	Leader *xchain.Participant
	// Delta is Δ: enough time to publish a contract (or change its
	// state) and have the change publicly recognized. Timelocks are
	// derived from it.
	Delta sim.Time
	// ConfirmDepth is how deep a contract must be before participants
	// treat it as published.
	ConfirmDepth int
}

// announceMsg is the off-chain "my contract is at this address"
// message.
type announceMsg struct {
	EdgeIdx int
	Addr    crypto.Address
	TxID    crypto.Hash
}

// Run is one executing swap.
type Run struct {
	w   *xchain.World
	cfg Config
	rt  *protocol.Runtime

	secret    []byte
	hashlock  crypto.Hash
	layers    []int   // deployment layer per edge (BFS distance of source from leader)
	timelocks []int64 // absolute timelock per edge

	addrs     []crypto.Address // announced contract address per edge
	ownTx     []*chain.Tx      // sender-side deploy submissions
	ownAddr   []crypto.Address
	confirmed []bool // deploy confirmed (announced) per edge
	announced []bool // sender announced edge i
	deployed  map[*xchain.Participant]bool
	secrets   map[*xchain.Participant][]byte // who has learned s

	redeemSubmitted []bool
	redeemConfirmed []bool
	refundSubmitted []bool

	// DeployPhaseEnd and RedeemPhaseEnd record Figure 8's two phase
	// boundaries (when the last contract was confirmed / redeemed).
	DeployPhaseEnd sim.Time
	RedeemPhaseEnd sim.Time
}

// New validates the configuration and prepares a run.
func New(w *xchain.World, cfg Config) (*Run, error) {
	if cfg.Graph == nil || len(cfg.Participants) == 0 || cfg.Leader == nil {
		return nil, fmt.Errorf("swap: incomplete config")
	}
	if ok, _ := cfg.Graph.HerlihyFeasible(); !ok {
		return nil, fmt.Errorf("swap: graph is not single-leader feasible (Section 5.3)")
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("swap: Delta must be positive")
	}
	byAddr := make(map[crypto.Address]*xchain.Participant)
	for _, p := range cfg.Participants {
		byAddr[p.Addr()] = p
	}
	for _, v := range cfg.Graph.Participants {
		if byAddr[v] == nil {
			return nil, fmt.Errorf("swap: no participant object for vertex %s", v)
		}
	}
	n := len(cfg.Graph.Edges)
	r := &Run{
		w:               w,
		cfg:             cfg,
		addrs:           make([]crypto.Address, n),
		ownTx:           make([]*chain.Tx, n),
		ownAddr:         make([]crypto.Address, n),
		confirmed:       make([]bool, n),
		announced:       make([]bool, n),
		redeemSubmitted: make([]bool, n),
		redeemConfirmed: make([]bool, n),
		refundSubmitted: make([]bool, n),
		deployed:        make(map[*xchain.Participant]bool),
		secrets:         make(map[*xchain.Participant][]byte),
	}
	rt, err := protocol.New(protocol.Config{
		World:        w,
		Participants: cfg.Participants,
		Chains:       cfg.Graph.Chains(),
		Drive:        r.drive,
		OnMessage:    r.onMessage,
	})
	if err != nil {
		return nil, err
	}
	r.rt = rt
	return r, nil
}

// Start begins the swap at the current virtual time.
func (r *Run) Start() {
	r.secret = []byte(fmt.Sprintf("herlihy-secret-%d", r.cfg.Graph.Timestamp))
	r.hashlock = crypto.Sum(r.secret)
	r.secrets[r.cfg.Leader] = r.secret
	r.computeSchedule()
	r.rt.Event(-1, "swap started")
	// The runtime's initial drive makes the leader deploy
	// unconditionally; everyone else waits for their incoming
	// contracts, and every sender arms its refund timelocks.
	r.rt.Start()
}

// Resume re-arms a recovered participant and re-drives it: the step
// function re-derives the revealed secret and every contract state
// from the chains. Recovery after a timelock expiry finds the refund
// already executed — the Section 1 fragility, preserved by design.
func (r *Run) Resume(p *xchain.Participant) { r.rt.Resume(p) }

// Stop retires the run.
func (r *Run) Stop() { r.rt.Stop() }

// Events returns the run's timeline.
func (r *Run) Events() []Event { return r.rt.Timeline() }

// Marks returns the run's phase boundaries (for trace span derivation).
func (r *Run) Marks() []protocol.Mark { return r.rt.Marks() }

// computeSchedule derives deployment layers and timelocks: a contract
// whose sender is at BFS distance k from the leader deploys in step k
// and carries timelock start + (2·Diam − k + 1)·Δ, preserving
// Nolan's t1 > t2 ordering with a safety margin of one Δ.
func (r *Run) computeSchedule() {
	g := r.cfg.Graph
	start := r.w.Sim.Now()
	dist := bfsDistances(g, r.cfg.Leader.Addr())
	diam := g.Diameter()
	r.layers = make([]int, len(g.Edges))
	r.timelocks = make([]int64, len(g.Edges))
	for i, e := range g.Edges {
		k := dist[e.From]
		if k < 0 {
			// Unreachable from the leader (cannot happen for feasible
			// graphs, which are weakly connected with a working
			// leader); deploy last, defensively.
			k = diam
		}
		r.layers[i] = k
		r.timelocks[i] = int64(start) + int64(2*diam-k+1)*int64(r.cfg.Delta)
	}
}

// bfsDistances computes directed BFS distance from src over the
// graph's edges (-1 = unreachable).
func bfsDistances(g *graph.Graph, src crypto.Address) map[crypto.Address]int {
	dist := make(map[crypto.Address]int, len(g.Participants))
	for _, p := range g.Participants {
		dist[p] = -1
	}
	dist[src] = 0
	queue := []crypto.Address{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.EdgesFrom(u) {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// onMessage records a confirmed contract announcement (the runtime
// re-drives the recipient, which advances its part of the protocol).
func (r *Run) onMessage(p, from *xchain.Participant, msg any) {
	if m, ok := msg.(announceMsg); ok {
		r.noteConfirmed(m.EdgeIdx, m.Addr)
	}
}

// drive is the reconciler step function.
func (r *Run) drive(p *xchain.Participant) {
	now := r.w.Sim.Now()
	// Sequential rule: the leader deploys unconditionally; everyone
	// else once every incoming edge is confirmed.
	if !r.deployed[p] && (p == r.cfg.Leader || r.incomingConfirmed(p.Addr())) {
		r.deployOutgoing(p)
	}
	// Re-derive own-deploy confirmations from chain state and announce
	// them. EnsureTx keeps submissions alive across forks and survives
	// crashes (no watch to lose).
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() || r.ownTx[i] == nil || r.announced[i] {
			continue
		}
		if !r.rt.EnsureTx(p, e.Chain, r.ownTx[i], r.cfg.ConfirmDepth) {
			continue
		}
		r.announced[i] = true
		r.rt.Event(i, "deploy confirmed")
		r.noteConfirmed(i, r.ownAddr[i])
		r.rt.Broadcast(p, announceMsg{EdgeIdx: i, Addr: r.ownAddr[i], TxID: r.ownTx[i].ID()})
	}
	// Learn s from chain state: a sender whose outgoing contract shows
	// a *confirmed* redemption extracts the secret from the redeem
	// call. Each hop therefore costs one Δ — the backward propagation
	// that makes the redemption phase sequential in Diam(D) (Figure 8).
	if r.secrets[p] == nil {
		r.learnSecret(p)
	}
	// Redeem incoming contracts: the leader once everything is
	// deployed, everyone else as soon as they know s.
	if s := r.secrets[p]; s != nil && (p != r.cfg.Leader || r.allConfirmed()) {
		r.redeemIncoming(p, s)
	}
	// Refund own contracts whose timelock expired; arm one-shot wakes
	// for the pending ones.
	r.refundExpired(p, now)
}

// deployOutgoing publishes all of p's outgoing contracts (once).
func (r *Run) deployOutgoing(p *xchain.Participant) {
	r.deployed[p] = true
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() || r.ownTx[i] != nil {
			continue
		}
		params := vm.EncodeGob(contracts.HTLCParams{
			Recipient: e.To,
			Hashlock:  r.hashlock,
			Timelock:  r.timelocks[i],
		})
		tx, addr, err := p.Client(e.Chain).Deploy(contracts.TypeHTLC, params, e.Asset)
		if err != nil {
			// Underfunded sender: the swap will abort via timelocks.
			r.rt.Event(i, "deploy failed: "+err.Error())
			continue
		}
		p.Deploys++
		r.ownTx[i] = tx
		r.ownAddr[i] = addr
		r.rt.Mark(protocol.PointDeploySubmitted)
		r.rt.Event(i, "deploy submitted")
	}
}

// noteConfirmed records a confirmed contract (from the sender's own
// view or a peer's announcement) and marks the deploy-phase boundary.
func (r *Run) noteConfirmed(i int, addr crypto.Address) {
	if r.addrs[i].IsZero() {
		r.addrs[i] = addr
	}
	r.confirmed[i] = true
	if r.allConfirmed() && r.DeployPhaseEnd == 0 {
		r.DeployPhaseEnd = r.w.Sim.Now()
		r.rt.Mark(protocol.PointDeployConfirmed)
		r.rt.Event(-1, "all contracts deployed")
	}
}

// incomingConfirmed reports whether every edge into u is confirmed.
func (r *Run) incomingConfirmed(u crypto.Address) bool {
	for i, e := range r.cfg.Graph.Edges {
		if e.To == u && !r.confirmed[i] {
			return false
		}
	}
	return true
}

// allConfirmed reports whether every edge's contract is confirmed.
func (r *Run) allConfirmed() bool {
	for _, c := range r.confirmed {
		if !c {
			return false
		}
	}
	return true
}

// learnSecret extracts s from a confirmed redemption of one of p's
// outgoing contracts — how the secret travels along counterparty
// edges once it is revealed on-chain.
func (r *Run) learnSecret(p *xchain.Participant) {
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() || r.addrs[i].IsZero() {
			continue
		}
		client := p.Client(e.Chain)
		ct, ok := client.ContractNow(r.addrs[i], r.cfg.ConfirmDepth)
		if !ok {
			continue
		}
		if h, isH := ct.(*contracts.HTLC); !isH || h.State != contracts.StateRedeemed {
			continue
		}
		if tx, found := protocol.FindCall(client.Chain(), r.addrs[i], contracts.FnRedeem); found {
			r.secrets[p] = tx.Args
			return
		}
	}
}

// redeemIncoming makes p redeem its incoming contracts with the
// secret, and records the Figure 8 redemption boundary as redeems are
// publicly recognized (confirmed at depth d, the paper's Δ
// semantics).
func (r *Run) redeemIncoming(p *xchain.Participant, secret []byte) {
	for i, e := range r.cfg.Graph.Edges {
		if e.To != p.Addr() || r.addrs[i].IsZero() {
			continue
		}
		client := p.Client(e.Chain)
		ct, ok := client.ContractNow(r.addrs[i], 0)
		if !ok {
			continue
		}
		h, isH := ct.(*contracts.HTLC)
		if !isH {
			continue
		}
		if h.State == contracts.StateRedeemed {
			if r.redeemConfirmed[i] {
				continue
			}
			if deep, okDeep := client.ContractNow(r.addrs[i], r.cfg.ConfirmDepth); okDeep {
				if hd, isHd := deep.(*contracts.HTLC); isHd && hd.State == contracts.StateRedeemed {
					r.redeemConfirmed[i] = true
					r.rt.Mark(protocol.PointDecisionConfirmed)
					r.rt.Event(i, "redeem confirmed")
					r.RedeemPhaseEnd = r.w.Sim.Now()
				}
			}
			continue
		}
		if h.State != contracts.StatePublished {
			continue
		}
		i := i
		r.rt.Throttle(p, fmt.Sprintf("redeem-%d", i), r.retryEvery(), func() {
			if _, err := client.Call(r.addrs[i], contracts.FnRedeem, secret, 0); err == nil {
				p.Calls++
				if !r.redeemSubmitted[i] {
					r.redeemSubmitted[i] = true
					r.rt.Mark(protocol.PointDecisionTriggered)
					r.rt.Event(i, "redeem submitted")
				}
			}
		})
	}
}

// refundExpired submits p's refunds for its own contracts whose
// timelock has passed and which are still locked, arming a one-shot
// wake for each pending deadline.
func (r *Run) refundExpired(p *xchain.Participant, now sim.Time) {
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() {
			continue
		}
		refundAt := r.timelocks[i] + int64(r.cfg.Delta)/4
		if now < refundAt {
			r.rt.WakeAt(p, fmt.Sprintf("refund-due-%d", i), refundAt)
			continue
		}
		if r.addrs[i].IsZero() {
			continue
		}
		client := p.Client(e.Chain)
		ct, ok := client.ContractNow(r.addrs[i], 0)
		if !ok {
			continue
		}
		if h, isH := ct.(*contracts.HTLC); !isH || h.State != contracts.StatePublished {
			continue
		}
		i := i
		r.rt.Throttle(p, fmt.Sprintf("refund-%d", i), r.retryEvery(), func() {
			if _, err := client.Call(r.addrs[i], contracts.FnRefund, nil, 0); err == nil {
				p.Calls++
				if !r.refundSubmitted[i] {
					r.refundSubmitted[i] = true
					r.rt.Mark(protocol.PointDecisionTriggered)
					r.rt.Event(i, "refund submitted")
				}
			}
		})
	}
}

// retryEvery is the throttle interval for re-submitting redeem/refund
// calls that have not landed yet (a quarter Δ, at least a second).
func (r *Run) retryEvery() sim.Time {
	if d := r.cfg.Delta / 4; d > sim.Second {
		return d
	}
	return sim.Second
}

// Addrs exposes the per-edge contract addresses (for grading).
func (r *Run) Addrs() []crypto.Address { return append([]crypto.Address(nil), r.addrs...) }

// Settled reports run quiescence for the engine's core.Runner
// contract: at least one asset contract made it on-chain and every
// announced contract has left Published on the ground-truth view.
// HTLC runs have no explicit decision — redeems and timelocked
// refunds are the decision — so deployment-complete is the earliest
// meaningful check. The sequential structure guarantees no new
// contract appears after the announced ones settle: deploys strictly
// precede redemption, and refunds only start at the timelocks.
func (r *Run) Settled() bool {
	deployed, settled := xchain.AllSettled(r.w, r.cfg.Graph, r.addrs)
	return deployed && settled
}

// Grade reads terminal contract states from ground-truth views and
// counts the on-chain operations the swap paid for (N deploys plus N
// redeem/refund calls — Section 6.2's baseline cost).
func (r *Run) Grade() *xchain.Outcome {
	out := xchain.GradeGraph(r.w, r.cfg.Graph, r.addrs)
	out.Start = r.rt.StartedAt()
	out.End = r.rt.TimelineEnd(out.Start)
	out.Deploys, out.Calls = xchain.CountGraphOps(r.w, r.cfg.Graph, r.addrs)
	return out
}

// Secret exposes the leader's secret (tests verifying reveal flow).
func (r *Run) Secret() []byte { return append([]byte(nil), r.secret...) }
