package core

import (
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/miner"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// Trent is the centralized trusted witness of Section 4.1: a
// key/value store from ms(D) to ⊥ / T(ms(D),RD) / T(ms(D),RF),
// guarded so at most one of the two signatures is ever issued per
// registered AC2T. Trent reads the asset chains through ordinary
// clients to verify contract deployment before signing a redemption.
//
// Trent is the protocol's single point of failure — Crash/Recover
// model the availability weakness (denial of service) the paper cites
// as the reason to replace him with a witness network.
type Trent struct {
	Key *crypto.KeyPair

	s       *sim.Sim
	latency sim.Time
	clients map[chain.ID]*miner.Client
	store   map[crypto.Hash]*trentEntry
	crashed bool

	// SignedRD / SignedRF count decisions (diagnostics).
	SignedRD, SignedRF int
}

// ErrAlreadyRegistered is Trent's duplicate-registration refusal. A
// retrying initiator treats it as success: it means an earlier
// attempt landed and only the reply was lost.
var ErrAlreadyRegistered = errors.New("trent: ms(D) already registered")

// trentEntry is one registered AC2T.
type trentEntry struct {
	g        *graph.Graph
	decision crypto.Purpose // 0 = ⊥
	sig      crypto.Signature
}

// NewTrent creates the witness with read clients on the given world's
// chains. latency is the request/response one-way delay.
func NewTrent(w *xchain.World, seed uint64, latency sim.Time) *Trent {
	rng := sim.NewRNG(seed) //ac3:globalrand seed parameter descends from the world seed (runners derive it; engine forks per shard)
	key := crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	t := &Trent{
		Key:     key,
		s:       w.Sim,
		latency: latency,
		clients: make(map[chain.ID]*miner.Client),
		store:   make(map[crypto.Hash]*trentEntry),
	}
	for _, id := range w.Chains() {
		t.clients[id] = miner.NewClient(w.Net(id), 0, key)
	}
	return t
}

// Crash takes Trent offline: requests go unanswered (the DoS
// scenario).
func (t *Trent) Crash() { t.crashed = true }

// Recover brings Trent back; his store (durable) is intact.
func (t *Trent) Recover() { t.crashed = false }

// Close releases Trent's chain clients and store once his AC2T is
// graded (engine retirement). Trent's clients never arm watches —
// contract verification is a direct stable-state read — so closing
// them schedules nothing and is invisible to event ordering; it only
// lets a per-transaction witness become garbage. Close is terminal:
// the witness also crash-stops so any stray request goes unanswered.
func (t *Trent) Close() {
	t.crashed = true
	for _, c := range t.clients {
		c.Close()
	}
	t.clients = nil
	t.store = nil
}

// Register stores ms(D) if not registered before; cb receives the
// outcome. All methods respond asynchronously after the RPC latency.
func (t *Trent) Register(g *graph.Graph, ms *crypto.MultiSig, cb func(error)) {
	t.rpc(func() {
		if !g.VerifyMultisig(ms) {
			t.reply(cb, fmt.Errorf("trent: invalid multisignature"))
			return
		}
		id := ms.ID()
		if _, dup := t.store[id]; dup {
			t.reply(cb, ErrAlreadyRegistered)
			return
		}
		t.store[id] = &trentEntry{g: g}
		t.reply(cb, nil)
	})
}

// RequestRedeem asks Trent to witness the commitment: he verifies all
// contracts are deployed and correct, then signs (ms(D), RD). If the
// AC2T was already decided, the stored value is returned (matching
// the paper: Trent "responds ... with the value corresponding to
// ms(D) in the key/value store").
func (t *Trent) RequestRedeem(msID crypto.Hash, addrs []crypto.Address, depth int, cb func(crypto.Signature, crypto.Purpose, error)) {
	t.rpc(func() {
		e, ok := t.store[msID]
		if !ok {
			t.replySig(cb, crypto.Signature{}, 0, fmt.Errorf("trent: unknown ms(D)"))
			return
		}
		if e.decision != 0 {
			t.replySig(cb, e.sig, e.decision, nil)
			return
		}
		if err := t.verifyContracts(e.g, msID, addrs, depth); err != nil {
			t.replySig(cb, crypto.Signature{}, 0, err)
			return
		}
		e.decision = crypto.PurposeRedeem
		e.sig = t.Key.Sign(crypto.WitnessMessage(msID, crypto.PurposeRedeem))
		t.SignedRD++
		t.replySig(cb, e.sig, e.decision, nil)
	})
}

// RequestRefund asks Trent to witness the abort. He signs (ms(D), RF)
// only if no decision exists yet.
func (t *Trent) RequestRefund(msID crypto.Hash, cb func(crypto.Signature, crypto.Purpose, error)) {
	t.rpc(func() {
		e, ok := t.store[msID]
		if !ok {
			t.replySig(cb, crypto.Signature{}, 0, fmt.Errorf("trent: unknown ms(D)"))
			return
		}
		if e.decision != 0 {
			t.replySig(cb, e.sig, e.decision, nil)
			return
		}
		e.decision = crypto.PurposeRefund
		e.sig = t.Key.Sign(crypto.WitnessMessage(msID, crypto.PurposeRefund))
		t.SignedRF++
		t.replySig(cb, e.sig, e.decision, nil)
	})
}

// verifyContracts checks every edge has a matching CentralizedSC in
// state P at the required depth, with both schemes set to
// (ms(D), PK_T).
func (t *Trent) verifyContracts(g *graph.Graph, msID crypto.Hash, addrs []crypto.Address, depth int) error {
	if len(addrs) != len(g.Edges) {
		return fmt.Errorf("trent: %d addresses for %d edges", len(addrs), len(g.Edges))
	}
	for i, e := range g.Edges {
		client, ok := t.clients[e.Chain]
		if !ok {
			return fmt.Errorf("trent: no client for chain %s", e.Chain)
		}
		ct, ok := client.ContractNow(addrs[i], depth)
		if !ok {
			return fmt.Errorf("trent: edge %d contract not found at depth %d", i, depth)
		}
		sc, isC := ct.(*contracts.CentralizedSC)
		if !isC {
			return fmt.Errorf("trent: edge %d is not a CentralizedSC", i)
		}
		switch {
		case sc.State != contracts.StatePublished:
			return fmt.Errorf("trent: edge %d in state %s", i, sc.State)
		case sc.Sender != e.From || sc.Recipient != e.To:
			return fmt.Errorf("trent: edge %d parties mismatch", i)
		case sc.Asset != e.Asset:
			return fmt.Errorf("trent: edge %d locks %d, want %d", i, sc.Asset, e.Asset)
		case sc.MSDigest != msID:
			return fmt.Errorf("trent: edge %d committed to a different ms(D)", i)
		case sc.Witness != t.Key.Addr:
			return fmt.Errorf("trent: edge %d trusts a different witness", i)
		}
	}
	return nil
}

// rpc runs fn after the request latency unless Trent is down.
func (t *Trent) rpc(fn func()) {
	t.s.After(t.latency, func() {
		if t.crashed {
			return // request lost; client times out
		}
		fn()
	})
}

// reply responds after the response latency.
func (t *Trent) reply(cb func(error), err error) {
	t.s.After(t.latency, func() { cb(err) })
}

func (t *Trent) replySig(cb func(crypto.Signature, crypto.Purpose, error), sig crypto.Signature, p crypto.Purpose, err error) {
	t.s.After(t.latency, func() { cb(sig, p, err) })
}
