package merkle

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
)

func mkLeaves(n int) []crypto.Hash {
	leaves := make([]crypto.Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("tx-%d", i)))
	}
	return leaves
}

func TestEmptyRootIsZero(t *testing.T) {
	if !Root(nil).IsZero() {
		t.Fatal("empty root is not zero")
	}
}

func TestSingleLeafRoot(t *testing.T) {
	leaves := mkLeaves(1)
	if Root(leaves) != leaves[0] {
		t.Fatal("single-leaf root should be the leaf itself")
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	for n := 2; n <= 9; n++ {
		leaves := mkLeaves(n)
		base := Root(leaves)
		for i := range leaves {
			mut := append([]crypto.Hash(nil), leaves...)
			mut[i] = LeafHash([]byte("tampered"))
			if Root(mut) == base {
				t.Fatalf("n=%d: root unchanged after mutating leaf %d", n, i)
			}
		}
	}
}

func TestRootDoesNotDependOnCallerSlice(t *testing.T) {
	leaves := mkLeaves(5)
	cp := append([]crypto.Hash(nil), leaves...)
	_ = Root(leaves)
	for i := range leaves {
		if leaves[i] != cp[i] {
			t.Fatal("Root mutated its input")
		}
	}
}

func TestProveEmptyTreeErrors(t *testing.T) {
	if _, err := Prove(nil, 0); err == nil {
		t.Fatal("Prove on an empty tree succeeded")
	}
	if _, err := Prove([]crypto.Hash{}, 0); err == nil {
		t.Fatal("Prove on an empty slice succeeded")
	}
}

func TestSingleLeafProofShape(t *testing.T) {
	leaves := mkLeaves(1)
	root := Root(leaves)
	p, err := Prove(leaves, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Siblings) != 0 || len(p.Lefts) != 0 {
		t.Fatalf("single-leaf proof has %d siblings, want 0", len(p.Siblings))
	}
	if !p.Verify(root) {
		t.Fatal("single-leaf proof rejected")
	}
	if !p.VerifyData(root, []byte("tx-0")) {
		t.Fatal("single-leaf VerifyData rejected original payload")
	}
	// The empty-sibling proof must not verify a different leaf against
	// the same root.
	forged := *p
	forged.Leaf = LeafHash([]byte("other"))
	if forged.Verify(root) {
		t.Fatal("single-leaf proof verified a different leaf")
	}
}

func TestOddLeafCountRoundTrip(t *testing.T) {
	// Odd counts exercise the unpaired-node promotion at every level;
	// every index must round-trip, and the promoted (last) leaf is the
	// historically buggy case.
	for _, n := range []int{3, 5, 7, 9, 11, 13, 33, 65} {
		leaves := mkLeaves(n)
		root := Root(leaves)
		for _, i := range []int{0, n / 2, n - 1} {
			p, err := Prove(leaves, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !p.Verify(root) {
				t.Fatalf("n=%d i=%d: odd-count proof rejected", n, i)
			}
			if !p.VerifyData(root, []byte(fmt.Sprintf("tx-%d", i))) {
				t.Fatalf("n=%d i=%d: odd-count VerifyData rejected", n, i)
			}
		}
	}
}

func TestSecondPreimageForgedInteriorProof(t *testing.T) {
	// Second-preimage regression: the classic attack presents an
	// interior node's value as a "leaf" and proves membership of data
	// (the concatenated children) that was never committed. The bare
	// hash-chain in Verify cannot tell — it trusts the caller-supplied
	// Leaf — which is exactly why every untrusted-data verification in
	// this repo goes through VerifyData, where domain separation (0x00
	// leaf prefix vs 0x01 node prefix) closes the attack: no raw
	// payload can leaf-hash to an interior node value without a
	// preimage break.
	leaves := mkLeaves(4)
	root := Root(leaves)

	// Interior node over leaves[0..1] as the attacker's fake "leaf",
	// paired with the genuine right interior node as its sibling. The
	// hash chain itself links to the root (documented Verify caveat)…
	interior := crypto.Sum([]byte{0x01}, leaves[0][:], leaves[1][:])
	rightPair := crypto.Sum([]byte{0x01}, leaves[2][:], leaves[3][:])
	forged := &Proof{
		Index:    0,
		Leaf:     interior,
		Siblings: []crypto.Hash{rightPair},
		Lefts:    []bool{false},
	}
	if !forged.Verify(root) {
		t.Fatal("test setup: forged hash chain should link (Verify trusts Leaf)")
	}

	// …but the attack needs VerifyData to accept the children
	// concatenation as committed data, and domain separation forbids
	// that for every candidate encoding of the fake payload.
	fakeData := append(append([]byte{}, leaves[0][:]...), leaves[1][:]...)
	if forged.VerifyData(root, fakeData) {
		t.Fatal("second-preimage forgery: interior node verified as data")
	}
	withPrefix := append([]byte{0x01}, fakeData...)
	if forged.VerifyData(root, withPrefix) {
		t.Fatal("second-preimage forgery via prefixed payload")
	}
	// And a directly leaf-hashed fake payload cannot collide with the
	// interior node value either.
	if LeafHash(fakeData) == interior {
		t.Fatal("leaf hash collided with interior node hash")
	}
}

func TestProveVerifyAllSizesAllIndexes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := mkLeaves(n)
		root := Root(leaves)
		for i := 0; i < n; i++ {
			p, err := Prove(leaves, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !p.Verify(root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			if !p.VerifyData(root, []byte(fmt.Sprintf("tx-%d", i))) {
				t.Fatalf("n=%d i=%d: VerifyData rejected original payload", n, i)
			}
		}
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	leaves := mkLeaves(8)
	p, _ := Prove(leaves, 3)
	other := Root(mkLeaves(9))
	if p.Verify(other) {
		t.Fatal("proof verified against wrong root")
	}
}

func TestProofRejectsWrongData(t *testing.T) {
	leaves := mkLeaves(8)
	root := Root(leaves)
	p, _ := Prove(leaves, 3)
	if p.VerifyData(root, []byte("tx-4")) {
		t.Fatal("proof verified wrong payload")
	}
}

func TestProofTamperedSiblingRejected(t *testing.T) {
	leaves := mkLeaves(16)
	root := Root(leaves)
	for i := 0; i < 16; i++ {
		p, _ := Prove(leaves, i)
		for j := range p.Siblings {
			q := p.Clone()
			q.Siblings[j] = LeafHash([]byte("evil"))
			if q.Verify(root) {
				t.Fatalf("i=%d: tampered sibling %d accepted", i, j)
			}
		}
	}
}

func TestProofFlippedSideRejected(t *testing.T) {
	leaves := mkLeaves(8)
	root := Root(leaves)
	p, _ := Prove(leaves, 2)
	p.Lefts[0] = !p.Lefts[0]
	if p.Verify(root) {
		t.Fatal("flipped side accepted")
	}
}

func TestProveOutOfRange(t *testing.T) {
	leaves := mkLeaves(4)
	if _, err := Prove(leaves, -1); err == nil {
		t.Fatal("expected error for negative index")
	}
	if _, err := Prove(leaves, 4); err == nil {
		t.Fatal("expected error for index == len")
	}
}

func TestNilAndMalformedProofRejected(t *testing.T) {
	var p *Proof
	if p.Verify(crypto.ZeroHash) {
		t.Fatal("nil proof verified")
	}
	bad := &Proof{Siblings: make([]crypto.Hash, 2), Lefts: make([]bool, 1)}
	if bad.Verify(crypto.ZeroHash) {
		t.Fatal("length-mismatched proof verified")
	}
	if p.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// An interior node value presented as a leaf must not verify: the
	// prefixes make leaf and node hash spaces disjoint.
	l0 := LeafHash([]byte("a"))
	l1 := LeafHash([]byte("b"))
	interior := crypto.Sum([]byte{0x01}, l0[:], l1[:])
	if LeafHash(append(append([]byte{}, l0[:]...), l1[:]...)) == interior {
		t.Fatal("leaf and interior hashing are not domain separated")
	}
}

func TestProofCloneIndependent(t *testing.T) {
	leaves := mkLeaves(8)
	p, _ := Prove(leaves, 5)
	c := p.Clone()
	c.Siblings[0] = crypto.ZeroHash
	c.Lefts[0] = !c.Lefts[0]
	if p.Siblings[0] == crypto.ZeroHash {
		t.Fatal("clone aliases siblings")
	}
}

func TestPropertyProofRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, idx uint8) bool {
		if len(payloads) == 0 {
			return true
		}
		leaves := make([]crypto.Hash, len(payloads))
		for i, d := range payloads {
			leaves[i] = LeafHash(d)
		}
		root := Root(leaves)
		i := int(idx) % len(payloads)
		p, err := Prove(leaves, i)
		if err != nil {
			return false
		}
		return p.Verify(root) && p.VerifyData(root, payloads[i])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistinctLeavesDistinctRoots(t *testing.T) {
	f := func(a, b [][]byte) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		same := len(a) == len(b)
		if same {
			for i := range a {
				if string(a[i]) != string(b[i]) {
					same = false
					break
				}
			}
		}
		if same {
			return true
		}
		return RootOfData(a) != RootOfData(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
