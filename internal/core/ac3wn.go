// Package core implements the paper's atomic cross-chain commitment
// protocols: AC3WN (Section 4.2, the contribution — a permissionless
// witness network coordinates the AC2T) and AC3TW (Section 4.1, the
// centralized-witness strawman it improves on).
//
// Both protocols are written against the reconciler runtime in
// internal/protocol: each is a step function (drive) plus chain-state
// readers, while the runtime owns subscriptions, the announcement
// inbox, throttles, one-shot timers, the timeline, and the uniform
// crash → Resume lifecycle. A participant inspects the chains through
// its clients and performs the next enabled action — deploy the
// coordinator, verify it, deploy its own asset contracts, push the
// commit/abort decision, redeem or refund. Because every step is
// recoverable from on-chain state, a crashed participant that
// restarts simply re-arms its subscriptions and resumes — which is
// precisely the all-or-nothing property the paper proves and the
// baselines lack.
package core

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/merkle"
	"repro/internal/miner"
	"repro/internal/protocol"
	"repro/internal/sim"
	"repro/internal/spv"
	"repro/internal/vm"
	"repro/internal/xchain"
)

// Event is a timestamped timeline entry (Figure 9 phases), shared
// with every protocol on the runtime.
type Event = protocol.Event

// DefaultStableDepth is the default burial depth for checkpoint
// anchors — far beyond the confirmation depths, deep enough that no
// fork race or engine-scale partition window rolls the anchor back.
// (A 6-minute partition leaves a minority node a ~12-block private
// fork at 10s blocks; 30 buries the anchor well under that with
// margin, and chains shorter than 30 blocks simply anchor at
// genesis.)
const DefaultStableDepth = 30

// Config configures one AC3WN run.
type Config struct {
	Graph        *graph.Graph
	Participants []*xchain.Participant
	// Initiator deploys SCw. Any participant can push the decision;
	// the initiator merely goes first.
	Initiator *xchain.Participant
	// WitnessChain hosts SCw. Different AC2Ts may use different
	// witness chains (Section 5.2); it may even be one of the asset
	// chains.
	WitnessChain chain.ID
	// WitnessDepth is d: how deep SCw state changes must be buried
	// before they count (Section 6.3 governs choosing it).
	WitnessDepth int
	// AssetDepth is the confirmation depth required of asset-chain
	// contract deployments.
	AssetDepth int
	// StableDepth is how deep a block must be buried before the
	// protocol anchors an immutable checkpoint at it: SCw's per-asset-
	// chain checkpoints and every asset contract's witness checkpoint.
	// Confirmation depths answer "when do I believe a state change";
	// StableDepth answers "which block will still be canonical after
	// the network misbehaves" — both redeem and refund verify through
	// the stored anchor, so an anchor that reorgs away (a partition
	// heal rolling back a shallow 'stable' block) locks the asset
	// forever. Defaults to DefaultStableDepth; the adversarial-network
	// engine scenarios are what flushed this out.
	StableDepth int
	// AbortAfter (>0) makes participants push authorize_refund if the
	// AC2T has not committed by start+AbortAfter — the paper's "a
	// participant changes her mind / declines" path.
	AbortAfter sim.Time
	// RetryEvery is the base interval for throttling retried on-chain
	// actions (default: half the witness block interval). It does not
	// drive the reconciler — notifications do — it only stops an
	// action that keeps failing from being re-submitted on every
	// wakeup.
	RetryEvery sim.Time
	// Batcher and BatchAddr enable witness-side decision batching:
	// when both are set, participants submit decisions to the batching
	// coordinator instead of calling SCw, read the decision from the
	// batch contract's ledger at depth d, and settle with a
	// commit_batch SPV proof plus a merkle membership proof. Nil/zero
	// keeps the per-AC2T SCw decision path.
	Batcher   DecisionSink
	BatchAddr crypto.Address
}

// DecisionSink receives batched AC2T decisions (a batch.Coordinator
// in practice; an interface so core does not depend on the batching
// layer).
type DecisionSink interface {
	Submit(scw crypto.Address, decision contracts.WitnessState)
}

// pstate is protocol-owned per-participant state. Everything here can
// be reconstructed from chain state plus the off-chain announcements;
// the runtime's Resume re-drives the step function, which re-derives
// it.
type pstate struct {
	deployedOwn bool
	verifiedSCw bool
	rejectedSCw bool
	submittedRD bool
	submittedRF bool
}

// Run is one executing AC3WN commitment.
type Run struct {
	w   *xchain.World
	cfg Config
	rt  *protocol.Runtime

	// SCw location (announced by the initiator off-chain).
	scwTx   *chain.Tx
	scwAddr crypto.Address
	// Checkpoints registered in SCw, per asset chain: the stable
	// block hash evidence must be anchored at.
	checkpointHash map[chain.ID]crypto.Hash

	// Per-edge asset contract locations. addrs holds announced (i.e.
	// confirmed) contracts; ownTx/ownAddr track the sender's own
	// submissions so drive can re-derive confirmation from chain state
	// after a crash.
	addrs     []crypto.Address
	deployTx  []crypto.Hash
	ownTx     []*chain.Tx
	ownAddr   []crypto.Address
	confirmed []bool
	announced []bool

	states   map[*xchain.Participant]*pstate
	abortDue bool

	// Phase boundaries for Figure 9: SCw confirmed, all asset
	// contracts confirmed, decision buried d deep, all redeemed (or
	// refunded).
	SCwConfirmedAt   sim.Time
	AllDeployedAt    sim.Time
	DecidedAt        sim.Time
	CompletedAt      sim.Time
	DecidedOutcome   contracts.WitnessState
	terminalReported map[int]bool
	anchorReported   map[int]bool

	// WitnessDecisionTxs / WitnessDecisionBytes measure this AC2T's
	// decision traffic on the witness chain: the per-AC2T authorize_*
	// transaction in the unbatched protocol (counted once, when the
	// decision stabilizes), zero when batched — the shared commit_batch
	// traffic is accounted by the coordinator instead. The engine's
	// witness-efficiency table is built from these.
	WitnessDecisionTxs   int
	WitnessDecisionBytes int
}

// announceSCw and announceDeploy are the off-chain messages.
type announceSCw struct {
	Addr        crypto.Address
	TxID        crypto.Hash
	Checkpoints map[chain.ID]crypto.Hash
}

type announceDeploy struct {
	EdgeIdx int
	Addr    crypto.Address
	TxID    crypto.Hash
}

// New validates the configuration and prepares a run. Unlike the
// single-leader baseline, any graph shape is accepted — cyclic and
// disconnected included (Section 5.3).
func New(w *xchain.World, cfg Config) (*Run, error) {
	if cfg.Graph == nil || len(cfg.Participants) == 0 || cfg.Initiator == nil {
		return nil, fmt.Errorf("core: incomplete config")
	}
	if cfg.WitnessDepth < 0 || cfg.AssetDepth < 0 {
		return nil, fmt.Errorf("core: negative depths")
	}
	if _, ok := w.Nets[cfg.WitnessChain]; !ok {
		return nil, fmt.Errorf("core: unknown witness chain %q", cfg.WitnessChain)
	}
	if (cfg.Batcher == nil) != cfg.BatchAddr.IsZero() {
		return nil, fmt.Errorf("core: batching needs both Batcher and BatchAddr")
	}
	byAddr := make(map[crypto.Address]bool)
	for _, p := range cfg.Participants {
		byAddr[p.Addr()] = true
	}
	for _, v := range cfg.Graph.Participants {
		if !byAddr[v] {
			return nil, fmt.Errorf("core: no participant object for vertex %s", v)
		}
	}
	if cfg.RetryEvery <= 0 {
		cfg.RetryEvery = w.Nets[cfg.WitnessChain].Params.BlockInterval / 2
	}
	if cfg.StableDepth <= 0 {
		cfg.StableDepth = DefaultStableDepth
	}
	if cfg.StableDepth < cfg.WitnessDepth {
		cfg.StableDepth = cfg.WitnessDepth
	}
	if cfg.StableDepth < cfg.AssetDepth {
		cfg.StableDepth = cfg.AssetDepth
	}
	n := len(cfg.Graph.Edges)
	r := &Run{
		w:                w,
		cfg:              cfg,
		checkpointHash:   make(map[chain.ID]crypto.Hash),
		addrs:            make([]crypto.Address, n),
		deployTx:         make([]crypto.Hash, n),
		ownTx:            make([]*chain.Tx, n),
		ownAddr:          make([]crypto.Address, n),
		confirmed:        make([]bool, n),
		announced:        make([]bool, n),
		states:           make(map[*xchain.Participant]*pstate),
		terminalReported: make(map[int]bool),
		anchorReported:   make(map[int]bool),
	}
	for _, p := range cfg.Participants {
		r.states[p] = &pstate{}
	}
	rt, err := protocol.New(protocol.Config{
		World:        w,
		Participants: cfg.Participants,
		Chains:       append([]chain.ID{cfg.WitnessChain}, cfg.Graph.Chains()...),
		Drive:        r.drive,
		OnMessage:    r.onMessage,
	})
	if err != nil {
		return nil, err
	}
	r.rt = rt
	return r, nil
}

// Start begins the run at the current virtual time.
func (r *Run) Start() {
	r.rt.Event(-1, "ac3wn started")
	if r.cfg.AbortAfter > 0 {
		r.rt.After(r.cfg.AbortAfter, func() {
			// The deadline only raises the abort flag; the step
			// functions push (and retry) authorize_refund from it.
			r.abortDue = true
			r.rt.DriveAll()
		})
	}
	r.rt.Start()
}

// Resume re-arms a recovered participant's subscriptions and re-drives
// it. The participant re-learns everything else from the chains.
func (r *Run) Resume(p *xchain.Participant) { r.rt.Resume(p) }

// Stop retires the run: the engine calls it when grading is done so
// finished transactions stop consuming simulator events.
func (r *Run) Stop() { r.rt.Stop() }

// Events returns the run's timeline.
func (r *Run) Events() []Event { return r.rt.Timeline() }

// Marks returns the run's phase boundaries (for trace span derivation).
func (r *Run) Marks() []protocol.Mark { return r.rt.Marks() }

// onMessage ingests off-chain announcements (the runtime re-drives
// the recipient afterwards).
func (r *Run) onMessage(p, from *xchain.Participant, msg any) {
	switch m := msg.(type) {
	case announceSCw:
		if r.scwAddr.IsZero() {
			r.scwAddr = m.Addr
			for id, h := range m.Checkpoints {
				r.checkpointHash[id] = h
			}
		}
	case announceDeploy:
		if r.addrs[m.EdgeIdx].IsZero() {
			r.addrs[m.EdgeIdx] = m.Addr
			r.deployTx[m.EdgeIdx] = m.TxID
		}
	}
}

// drive is the reconciler step function: inspect the world through
// p's clients and take the next enabled action. Idempotent; the
// runtime calls it on tip-change notifications, announcement arrival,
// timer expiry, and resume.
func (r *Run) drive(p *xchain.Participant) {
	st := r.states[p]
	now := r.w.Sim.Now()

	// Phase 1: the initiator publishes SCw and keeps the deployment
	// alive until it is buried (a fork race could drop it).
	if r.scwAddr.IsZero() {
		if p == r.cfg.Initiator {
			r.rt.Throttle(p, "deploy-scw", 4*r.cfg.RetryEvery, func() { r.deploySCw(p) })
		}
		return
	}
	if p == r.cfg.Initiator && r.scwTx != nil {
		if r.rt.EnsureTx(p, r.cfg.WitnessChain, r.scwTx, r.cfg.WitnessDepth) {
			r.markSCwConfirmed()
		}
	}

	wclient := p.Client(r.cfg.WitnessChain)
	scw, ok := r.readSCw(wclient, 0)
	if !ok {
		return // SCw not yet visible on p's node
	}

	// Verify SCw before conditioning any assets on it.
	if !st.verifiedSCw {
		if err := r.verifySCw(p, scw); err != nil {
			if !st.rejectedSCw {
				st.rejectedSCw = true
				r.rt.Event(-1, fmt.Sprintf("%s rejects SCw: %v", p.Name, err))
			}
			// A participant that distrusts SCw pushes the abort.
			r.trySubmitRefund(p, st)
			return
		}
		st.verifiedSCw = true
	}

	// Re-derive the confirmation state of p's own deployments on every
	// wakeup — even after a decision, so a fork-delayed deploy that
	// confirms late is still announced (and then refunded or redeemed)
	// rather than stranding its asset.
	r.confirmOwnEdges(p)

	// Read the decisive state at depth d: SCw's own state in the
	// per-AC2T protocol, the batch contract's decision ledger when
	// batching (SCw then stays in P forever — the record under the
	// committed root is the decision).
	stable, haveStable := r.readSCw(wclient, r.cfg.WitnessDepth)
	var decision contracts.WitnessState
	var decided bool
	if r.batched() {
		decision, decided = r.readBatchDecision(wclient, r.cfg.WitnessDepth)
	} else if haveStable && stable.State != contracts.WitnessPublished {
		decision, decided = stable.State, true
	}

	switch {
	case decided && decision == contracts.WitnessRedeemAuthorized:
		r.markDecision(contracts.WitnessRedeemAuthorized, wclient)
		r.settle(p, true)
	case decided && decision == contracts.WitnessRefundAuthorized:
		r.markDecision(contracts.WitnessRefundAuthorized, wclient)
		r.settle(p, false)
	case scw.State == contracts.WitnessPublished:
		// Still undecided at depth d.
		if r.abortDue {
			r.trySubmitRefund(p, st)
		}
		// Phase 2: deploy own asset contracts once SCw itself is
		// confirmed at depth d, then re-derive their confirmations
		// from chain state (crash-safe: no watch to lose).
		if !haveStable {
			return
		}
		r.markSCwConfirmed()
		if !st.deployedOwn {
			r.deployOwnEdges(p, st)
			r.confirmOwnEdges(p)
		}
		// Phase 3: push the commit decision once every asset contract
		// is confirmed. The initiator goes first; the others follow
		// after a rank-staggered grace period, so any live participant
		// eventually pushes the decision (no single coordinator)
		// without everyone racing to pay the same fee. The grace wait
		// is an explicit one-shot timer, not a polling cadence.
		if r.allConfirmed() && !st.submittedRD {
			due := r.AllDeployedAt + r.pushGrace(p)
			if now >= due {
				r.rt.Throttle(p, "authorize-redeem", 6*r.cfg.RetryEvery, func() {
					r.submitAuthorizeRedeem(p, st)
				})
			} else {
				r.rt.WakeAt(p, "push-grace", due)
			}
		}
	}
}

// deploySCw publishes the coordinator contract with stable-block
// checkpoints for every asset chain.
func (r *Run) deploySCw(p *xchain.Participant) {
	cps := make([]contracts.ChainCheckpoint, 0, len(r.cfg.Graph.Chains()))
	cpHashes := make(map[chain.ID]crypto.Hash)
	for _, id := range r.cfg.Graph.Chains() {
		view := p.Client(id).Chain()
		stable, ok := view.CanonicalAt(heightAtDepth(view, r.cfg.StableDepth))
		if !ok {
			return // chain too short; retry on a later notification
		}
		cps = append(cps, contracts.ChainCheckpoint{
			Chain:         id,
			Header:        stable.Header.Encode(),
			EvidenceDepth: r.cfg.AssetDepth,
		})
		cpHashes[id] = stable.Hash()
	}
	ms := crypto.NewMultiSig(r.cfg.Graph.Digest())
	for _, q := range r.cfg.Participants {
		ms.Add(q.Key)
	}
	params := vm.EncodeGob(contracts.WitnessParams{
		Edges:        r.cfg.Graph.Edges,
		Timestamp:    r.cfg.Graph.Timestamp,
		Multisig:     *ms,
		Checkpoints:  cps,
		WitnessDepth: r.cfg.WitnessDepth,
	})
	client := p.Client(r.cfg.WitnessChain)
	tx, addr, err := client.Deploy(contracts.TypeWitness, params, 0)
	if err != nil {
		r.rt.Event(-1, "SCw deploy failed: "+err.Error())
		return
	}
	p.Deploys++
	r.scwTx = tx
	r.scwAddr = addr
	r.checkpointHash = cpHashes
	r.rt.Mark(protocol.PointDeploySubmitted)
	r.rt.Event(-1, "SCw deploy submitted")
	r.rt.Broadcast(p, announceSCw{Addr: addr, TxID: tx.ID(), Checkpoints: cpHashes})
}

// heightAtDepth returns the canonical height depth blocks under the
// tip (0 when the chain is shorter).
func heightAtDepth(view *chain.Chain, depth int) uint64 {
	h := view.Height()
	if uint64(depth) > h {
		return 0
	}
	return h - uint64(depth)
}

// batched reports whether decisions route through a batching
// coordinator.
func (r *Run) batched() bool { return r.cfg.Batcher != nil && !r.cfg.BatchAddr.IsZero() }

// readBatchDecision reads this AC2T's decision from the batch
// contract's ledger at the given depth. Chain state only — a crashed
// participant re-derives it on resume like everything else.
func (r *Run) readBatchDecision(client *miner.Client, depth int) (contracts.WitnessState, bool) {
	ct, ok := client.ContractNow(r.cfg.BatchAddr, depth)
	if !ok {
		return 0, false
	}
	b, isB := ct.(*contracts.BatchWitnessSC)
	if !isB {
		return 0, false
	}
	d, ok := b.Decisions[r.scwAddr]
	return d, ok
}

// readSCw reads the witness contract at the given depth.
func (r *Run) readSCw(client *miner.Client, depth int) (*contracts.WitnessSC, bool) {
	ct, ok := client.ContractNow(r.scwAddr, depth)
	if !ok {
		return nil, false
	}
	scw, isW := ct.(*contracts.WitnessSC)
	return scw, isW
}

// verifySCw checks that the published coordinator matches the graph
// the participant signed and anchors checkpoints the participant's
// own views recognize as canonical and stable.
func (r *Run) verifySCw(p *xchain.Participant, scw *contracts.WitnessSC) error {
	g := r.cfg.Graph
	if scw.Timestamp != g.Timestamp || len(scw.Edges) != len(g.Edges) {
		return fmt.Errorf("graph mismatch")
	}
	for i, e := range g.Edges {
		if scw.Edges[i] != e {
			return fmt.Errorf("edge %d mismatch", i)
		}
	}
	if scw.WitnessDepth != r.cfg.WitnessDepth {
		return fmt.Errorf("witness depth %d, agreed %d", scw.WitnessDepth, r.cfg.WitnessDepth)
	}
	ms := crypto.NewMultiSig(g.Digest())
	for _, q := range r.cfg.Participants {
		ms.Add(q.Key)
	}
	if scw.MSID != ms.ID() {
		return fmt.Errorf("multisig mismatch")
	}
	for _, cp := range scw.Checkpoints {
		hdr, err := chain.DecodeHeader(cp.Header)
		if err != nil {
			return fmt.Errorf("checkpoint %s: %w", cp.Chain, err)
		}
		view := p.Client(cp.Chain).Chain()
		if !view.IsCanonical(hdr.Hash()) {
			return fmt.Errorf("checkpoint %s not canonical on my view", cp.Chain)
		}
	}
	return nil
}

// deployOwnEdges publishes p's outgoing asset contracts — all in
// parallel, the protocol's headline structural difference from the
// baselines.
func (r *Run) deployOwnEdges(p *xchain.Participant, st *pstate) {
	st.deployedOwn = true
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() || r.ownTx[i] != nil {
			continue
		}
		wview := p.Client(r.cfg.WitnessChain).Chain()
		stable, ok := wview.CanonicalAt(heightAtDepth(wview, r.cfg.StableDepth))
		if !ok {
			st.deployedOwn = false
			return
		}
		params := vm.EncodeGob(contracts.PermissionlessParams{
			Recipient:         e.To,
			WitnessChain:      r.cfg.WitnessChain,
			WitnessCheckpoint: stable.Header.Encode(),
			SCw:               r.scwAddr,
			Depth:             r.cfg.WitnessDepth,
			Batch:             r.cfg.BatchAddr, // zero when unbatched
		})
		tx, addr, err := p.Client(e.Chain).Deploy(contracts.TypePermissionless, params, e.Asset)
		if err != nil {
			r.rt.Event(i, "deploy failed: "+err.Error())
			continue
		}
		p.Deploys++
		r.ownTx[i] = tx
		r.ownAddr[i] = addr
		r.rt.Event(i, "deploy submitted")
	}
}

// confirmOwnEdges re-derives the confirmation state of p's own
// deployments from chain state, announcing each as it is buried at
// the asset depth. EnsureTx keeps a submission alive across forks and
// mempool wipes, so this also replaces the per-deploy watch — and,
// unlike a watch, it survives a crash between submit and confirm.
func (r *Run) confirmOwnEdges(p *xchain.Participant) {
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() || r.ownTx[i] == nil || r.announced[i] {
			continue
		}
		if !r.rt.EnsureTx(p, e.Chain, r.ownTx[i], r.cfg.AssetDepth) {
			continue
		}
		r.announced[i] = true
		r.rt.Event(i, "deploy confirmed")
		r.noteConfirmed(i, r.ownAddr[i], r.ownTx[i].ID())
		r.rt.Broadcast(p, announceDeploy{EdgeIdx: i, Addr: r.ownAddr[i], TxID: r.ownTx[i].ID()})
	}
}

// noteConfirmed records a confirmed asset contract.
func (r *Run) noteConfirmed(i int, addr crypto.Address, txID crypto.Hash) {
	if r.addrs[i].IsZero() {
		r.addrs[i] = addr
		r.deployTx[i] = txID
	}
	r.confirmed[i] = true
	if r.allConfirmed() && r.AllDeployedAt == 0 {
		r.AllDeployedAt = r.w.Sim.Now()
		r.rt.Mark(protocol.PointDeployConfirmed)
		r.rt.Event(-1, "all asset contracts confirmed")
	}
}

func (r *Run) allConfirmed() bool {
	for _, c := range r.confirmed {
		if !c {
			return false
		}
	}
	return true
}

// pushGrace returns how long p waits after all-deployed before
// pushing the decision itself: 0 for the initiator, rank-staggered
// multiples of the witness block interval for everyone else.
func (r *Run) pushGrace(p *xchain.Participant) sim.Time {
	if p == r.cfg.Initiator {
		return 0
	}
	rank := 1
	for i, q := range r.cfg.Participants {
		if q == p {
			rank = i + 1
			break
		}
	}
	interval := r.w.Nets[r.cfg.WitnessChain].Params.BlockInterval
	return sim.Time(rank) * 6 * interval
}

// submitAuthorizeRedeem assembles per-edge deployment evidence and
// pushes SCw to RDauth. When batching, the decision goes to the
// coordinator instead: the witness quorum takes over evidence
// verification off-chain, so no per-edge SPV bytes hit the witness
// chain — that is the entire bytes-per-decision win. Event labels stay
// identical so scenario hooks keyed on them work in both modes.
func (r *Run) submitAuthorizeRedeem(p *xchain.Participant, st *pstate) {
	if r.batched() {
		r.cfg.Batcher.Submit(r.scwAddr, contracts.WitnessRedeemAuthorized)
		st.submittedRD = true
		r.rt.Mark(protocol.PointDecisionTriggered)
		r.rt.Event(-1, "authorize_redeem submitted by "+p.Name)
		return
	}
	evs := make([][]byte, 0, len(r.cfg.Graph.Edges))
	for i, e := range r.cfg.Graph.Edges {
		view := p.Client(e.Chain).Chain()
		cpHash, ok := r.checkpointHash[e.Chain]
		if !ok {
			return
		}
		ev, err := spv.Build(view, cpHash, r.deployTx[i], r.cfg.AssetDepth)
		if err != nil {
			return // not stable enough on p's view yet; retry later
		}
		evs = append(evs, ev.Encode())
	}
	client := p.Client(r.cfg.WitnessChain)
	if _, err := client.Call(r.scwAddr, contracts.FnAuthorizeRedeem, contracts.EncodeEvidenceList(evs), 0); err != nil {
		return
	}
	p.Calls++
	st.submittedRD = true
	r.rt.Mark(protocol.PointDecisionTriggered)
	r.rt.Event(-1, "authorize_redeem submitted by "+p.Name)
}

// trySubmitRefund pushes SCw to RFauth (no evidence required). Called
// from drive whenever the abort deadline has passed (or the
// participant rejected SCw) and no decision is stable yet, so a
// failed submission is retried on later notifications.
func (r *Run) trySubmitRefund(p *xchain.Participant, st *pstate) {
	if st.submittedRF || r.scwAddr.IsZero() {
		return
	}
	if r.batched() {
		r.cfg.Batcher.Submit(r.scwAddr, contracts.WitnessRefundAuthorized)
		st.submittedRF = true
		r.rt.Mark(protocol.PointDecisionTriggered)
		r.rt.Event(-1, "authorize_refund submitted by "+p.Name)
		return
	}
	r.rt.Throttle(p, "authorize-refund", 6*r.cfg.RetryEvery, func() {
		client := p.Client(r.cfg.WitnessChain)
		if _, err := client.Call(r.scwAddr, contracts.FnAuthorizeRefund, nil, 0); err == nil {
			p.Calls++
			st.submittedRF = true
			r.rt.Mark(protocol.PointDecisionTriggered)
			r.rt.Event(-1, "authorize_refund submitted by "+p.Name)
		}
	})
}

// markSCwConfirmed records the first phase boundary.
func (r *Run) markSCwConfirmed() {
	if r.SCwConfirmedAt == 0 {
		r.SCwConfirmedAt = r.w.Sim.Now()
		r.rt.Event(-1, "SCw confirmed at depth d")
	}
}

// markDecision records the commit/abort decision boundary and, in the
// unbatched protocol, measures the per-AC2T decision transaction's
// footprint on the witness chain (counted here, while the transaction
// is still shallow — history retirement forbids deep scans later).
func (r *Run) markDecision(outcome contracts.WitnessState, wclient *miner.Client) {
	if r.DecidedAt != 0 {
		return
	}
	r.DecidedAt = r.w.Sim.Now()
	r.DecidedOutcome = outcome
	r.rt.Mark(protocol.PointDecisionConfirmed)
	r.rt.Event(-1, "decision "+outcome.String()+" stable at depth d")
	if !r.batched() {
		fn := contracts.FnAuthorizeRedeem
		if outcome == contracts.WitnessRefundAuthorized {
			fn = contracts.FnAuthorizeRefund
		}
		if tx, ok := protocol.FindCall(wclient.Chain(), r.scwAddr, fn); ok {
			r.WitnessDecisionTxs = 1
			r.WitnessDecisionBytes = len(tx.Encode())
		}
	}
}

// settle redeems p's incoming edges (commit) or refunds p's outgoing
// edges (abort), with evidence of SCw's stable state.
func (r *Run) settle(p *xchain.Participant, commit bool) {
	fn := contracts.FnAuthorizeRedeem
	action := contracts.FnRedeem
	if !commit {
		fn = contracts.FnAuthorizeRefund
		action = contracts.FnRefund
	}
	for i, e := range r.cfg.Graph.Edges {
		mine := (commit && e.To == p.Addr()) || (!commit && e.From == p.Addr())
		if !mine || r.addrs[i].IsZero() {
			continue
		}
		client := p.Client(e.Chain)
		ct, ok := client.ContractNow(r.addrs[i], 0)
		if !ok {
			continue
		}
		sc, isSC := ct.(*contracts.PermissionlessSC)
		if !isSC || sc.State != contracts.StatePublished {
			r.noteTerminal(i, sc, isSC)
			continue
		}
		i := i
		r.rt.Throttle(p, fmt.Sprintf("%s-%d", action, i), 6*r.cfg.RetryEvery, func() {
			ev, err := r.witnessEvidenceFor(p, sc, fn)
			if err != nil {
				r.noteOrphanedAnchor(p, i, sc)
				return
			}
			if _, err := client.Call(r.addrs[i], action, ev, 0); err == nil {
				p.Calls++
				r.rt.Event(i, action+" submitted")
			}
		})
	}
}

// noteTerminal records completion timestamps as contracts reach RD/RF.
func (r *Run) noteTerminal(i int, sc *contracts.PermissionlessSC, ok bool) {
	if !ok || r.terminalReported[i] {
		return
	}
	r.terminalReported[i] = true
	r.rt.Event(i, "terminal "+sc.State.String())
	if len(r.terminalReported) == len(r.cfg.Graph.Edges) && r.CompletedAt == 0 {
		r.CompletedAt = r.w.Sim.Now()
		r.rt.Event(-1, "all contracts settled")
	}
}

// noteOrphanedAnchor surfaces the one evidence failure that can never
// heal: the contract's stored witness checkpoint is no longer
// canonical on p's witness view (a reorg deeper than the anchor rolled
// it back), so neither redeem nor refund evidence can ever verify and
// the asset is locked. StableDepth exists to keep this from happening;
// if it does anyway, the timeline says so once instead of the retry
// loop failing silently forever.
func (r *Run) noteOrphanedAnchor(p *xchain.Participant, i int, sc *contracts.PermissionlessSC) {
	if r.anchorReported[i] {
		return
	}
	hdr, err := chain.DecodeHeader(sc.WitnessCheckpoint)
	if err != nil {
		r.anchorReported[i] = true
		r.rt.Event(i, "witness checkpoint corrupt — asset unrecoverable")
		return
	}
	wview := p.Client(r.cfg.WitnessChain).Chain()
	if wview.IsCanonical(hdr.Hash()) {
		return // anchor fine: evidence just is not stable yet
	}
	// Not canonical on this view — which covers an anchor block the
	// view has never even seen (it lived only on the deployer's
	// minority fork and abandoned forks are not re-gossiped). Declare
	// it dead only once the canonical chain has buried the anchor's
	// height a full StableDepth under a different block: before that,
	// a reorg could still resurrect it.
	if wview.Height() < hdr.Height+uint64(r.cfg.StableDepth) {
		return
	}
	if cb, ok := wview.CanonicalAt(hdr.Height); !ok || cb.Hash() == hdr.Hash() {
		return
	}
	r.anchorReported[i] = true
	r.rt.Event(i, "witness checkpoint orphaned — asset unrecoverable")
}

// witnessEvidenceFor builds SPV evidence that SCw's state-changing
// call is buried d deep, anchored at the checkpoint stored in the
// asset contract. Batched, the evidence is the pair [SPV of the
// commit_batch transaction containing this AC2T's decision, merkle
// membership proof of the (SCw, decision) leaf] — both re-derived
// from chain state alone, so a participant that died mid-batch finds
// its proof again on resume with no local bookkeeping.
func (r *Run) witnessEvidenceFor(p *xchain.Participant, sc *contracts.PermissionlessSC, fn string) ([]byte, error) {
	hdr, err := chain.DecodeHeader(sc.WitnessCheckpoint)
	if err != nil {
		return nil, err
	}
	wview := p.Client(r.cfg.WitnessChain).Chain()
	if r.batched() {
		return r.batchEvidenceFor(wview, hdr, fn)
	}
	authTx, ok := findCallTx(wview, r.scwAddr, fn)
	if !ok {
		return nil, fmt.Errorf("core: no %s call found on witness chain", fn)
	}
	ev, err := spv.Build(wview, hdr.Hash(), authTx, r.cfg.WitnessDepth)
	if err != nil {
		return nil, err
	}
	return ev.Encode(), nil
}

// batchEvidenceFor locates the canonical commit_batch transaction
// whose decision set contains this AC2T's (SCw, decision) record and
// packages SPV evidence of it plus the membership proof.
func (r *Run) batchEvidenceFor(wview *chain.Chain, checkpoint *chain.Header, fn string) ([]byte, error) {
	want := contracts.WitnessRedeemAuthorized
	if fn == contracts.FnAuthorizeRefund {
		want = contracts.WitnessRefundAuthorized
	}
	tx, ok := protocol.FindCallMatch(wview, r.cfg.BatchAddr, contracts.FnCommitBatch, func(tx *chain.Tx) bool {
		bc, err := contracts.DecodeBatchCommit(tx.Args)
		if err != nil {
			return false
		}
		for _, rec := range bc.Records {
			if rec.SCw == r.scwAddr && rec.Decision == want {
				return true
			}
		}
		return false
	})
	if !ok {
		return nil, fmt.Errorf("core: no committed batch holds %s for this SCw", want)
	}
	bc, err := contracts.DecodeBatchCommit(tx.Args)
	if err != nil {
		return nil, err
	}
	idx := -1
	for i, rec := range bc.Records {
		if rec.SCw == r.scwAddr {
			idx = i
			break
		}
	}
	proof, err := merkle.Prove(contracts.BatchLeaves(bc.Records), idx)
	if err != nil {
		return nil, err
	}
	ev, err := spv.Build(wview, checkpoint.Hash(), tx.ID(), r.cfg.WitnessDepth)
	if err != nil {
		return nil, err
	}
	return contracts.EncodeEvidenceList([][]byte{ev.Encode(), vm.EncodeGob(proof)}), nil
}

// findCallTx scans the canonical witness chain (newest first) for a
// call of fn on the contract.
func findCallTx(view *chain.Chain, contract crypto.Address, fn string) (crypto.Hash, bool) {
	tx, ok := protocol.FindCall(view, contract, fn)
	if !ok {
		return crypto.Hash{}, false
	}
	return tx.ID(), true
}

// Addrs exposes per-edge contract addresses for grading.
func (r *Run) Addrs() []crypto.Address { return append([]crypto.Address(nil), r.addrs...) }

// SCwAddr exposes the coordinator address.
func (r *Run) SCwAddr() crypto.Address { return r.scwAddr }

// SCwTx exposes the coordinator deployment transaction (nil until the
// initiator deployed it).
func (r *Run) SCwTx() *chain.Tx { return r.scwTx }

// Grade reads terminal contract states from ground-truth views and
// counts the on-chain operations the AC2T paid for: the asset
// contracts on their chains plus SCw on the witness chain (the +1 of
// Section 6.2's cost analysis).
func (r *Run) Grade() *xchain.Outcome {
	out := xchain.GradeGraph(r.w, r.cfg.Graph, r.addrs)
	out.Start = r.rt.StartedAt()
	out.End = r.rt.TimelineEnd(out.Start)
	if r.CompletedAt != 0 {
		out.End = r.CompletedAt
	}
	out.Deploys, out.Calls = xchain.CountGraphOps(r.w, r.cfg.Graph, r.addrs)
	if !r.scwAddr.IsZero() {
		d, c := xchain.CountContractOps(r.w.View(r.cfg.WitnessChain),
			map[crypto.Address]bool{r.scwAddr: true})
		out.Deploys += d
		out.Calls += c
	}
	return out
}
