// Package swap implements the baseline atomic cross-chain swap
// protocols the paper compares against: Nolan's two-party protocol
// [23] and Herlihy's single-leader generalization [16], both built on
// hashlock/timelock (HTLC) contracts.
//
// The implementation is event-driven on the simulated chains: every
// wait rides the miner layer's subscription-backed Watch* APIs (a
// contract-state watch fires when the observing node's canonical tip
// changes), and the only timers are the protocol's own Δ-derived
// timelocks — the refunds of Nolan's construction — armed as explicit
// one-shot deadlines. It reproduces the two properties the paper's
// evaluation leans on:
//
//   - Sequential structure: a participant publishes its outgoing
//     contracts only after all its incoming contracts are confirmed,
//     and redemption propagates backwards from the leader — so an
//     AC2T takes 2·Δ·Diam(D) end to end (Figure 8/10).
//   - Timelock fragility: a participant that crashes after the secret
//     is revealed but before redeeming loses its assets when the
//     timelock expires (the Section 1 "case against the current
//     proposals"), which the atomicity experiment measures.
package swap

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/vm"
	"repro/internal/xchain"
)

// Event is a timeline entry for the Figure 8 phase rendering.
type Event struct {
	At    sim.Time
	Label string
	Edge  int // -1 for protocol-level events
}

// Config configures one Herlihy/Nolan swap run.
type Config struct {
	Graph        *graph.Graph
	Participants []*xchain.Participant
	// Leader creates the hash secret and anchors the sequential
	// structure. Must be one of Participants.
	Leader *xchain.Participant
	// Delta is Δ: enough time to publish a contract (or change its
	// state) and have the change publicly recognized. Timelocks are
	// derived from it.
	Delta sim.Time
	// ConfirmDepth is how deep a contract must be before participants
	// treat it as published.
	ConfirmDepth int
}

// announceMsg is the off-chain "my contract is at this address"
// message.
type announceMsg struct {
	EdgeIdx int
	Addr    crypto.Address
	TxID    crypto.Hash
}

// Run is one executing swap.
type Run struct {
	w   *xchain.World
	cfg Config

	secret    []byte
	hashlock  crypto.Hash
	start     sim.Time
	layers    []int   // deployment layer per edge (BFS distance of source from leader)
	timelocks []int64 // absolute timelock per edge

	addrs     []crypto.Address // contract address per edge (zero until announced)
	confirmed []bool           // deploy confirmed (at own view) per edge
	deployed  map[*xchain.Participant]bool
	redeeming map[*xchain.Participant]bool

	Events []Event
	// DeployPhaseEnd and RedeemPhaseEnd record Figure 8's two phase
	// boundaries (when the last contract was confirmed / redeemed).
	DeployPhaseEnd sim.Time
	RedeemPhaseEnd sim.Time
}

// New validates the configuration and prepares a run.
func New(w *xchain.World, cfg Config) (*Run, error) {
	if cfg.Graph == nil || len(cfg.Participants) == 0 || cfg.Leader == nil {
		return nil, fmt.Errorf("swap: incomplete config")
	}
	if ok, _ := cfg.Graph.HerlihyFeasible(); !ok {
		return nil, fmt.Errorf("swap: graph is not single-leader feasible (Section 5.3)")
	}
	if cfg.Delta <= 0 {
		return nil, fmt.Errorf("swap: Delta must be positive")
	}
	byAddr := make(map[crypto.Address]*xchain.Participant)
	for _, p := range cfg.Participants {
		byAddr[p.Addr()] = p
	}
	for _, v := range cfg.Graph.Participants {
		if byAddr[v] == nil {
			return nil, fmt.Errorf("swap: no participant object for vertex %s", v)
		}
	}
	r := &Run{
		w:         w,
		cfg:       cfg,
		addrs:     make([]crypto.Address, len(cfg.Graph.Edges)),
		confirmed: make([]bool, len(cfg.Graph.Edges)),
		deployed:  make(map[*xchain.Participant]bool),
		redeeming: make(map[*xchain.Participant]bool),
	}
	return r, nil
}

// participant resolves a vertex address to its participant object.
func (r *Run) participant(a crypto.Address) *xchain.Participant {
	for _, p := range r.cfg.Participants {
		if p.Addr() == a {
			return p
		}
	}
	return nil
}

// Start begins the swap at the current virtual time.
func (r *Run) Start() {
	r.start = r.w.Sim.Now()
	r.secret = []byte(fmt.Sprintf("herlihy-secret-%d", r.cfg.Graph.Timestamp))
	r.hashlock = crypto.Sum(r.secret)
	r.computeSchedule()
	for _, p := range r.cfg.Participants {
		p := p
		p.OnMessage(func(from *xchain.Participant, msg any) { r.onMessage(p, msg) })
	}
	// The leader deploys unconditionally; everyone else waits for
	// their incoming contracts.
	r.event(-1, "swap started")
	r.deployOutgoing(r.cfg.Leader)
	// Every sender arms a refund at its own timelocks.
	for i, e := range r.cfg.Graph.Edges {
		r.armRefund(i, e)
	}
}

// computeSchedule derives deployment layers and timelocks: a contract
// whose sender is at BFS distance k from the leader deploys in step k
// and carries timelock start + (2·Diam − k + 1)·Δ, preserving
// Nolan's t1 > t2 ordering with a safety margin of one Δ.
func (r *Run) computeSchedule() {
	g := r.cfg.Graph
	dist := bfsDistances(g, r.cfg.Leader.Addr())
	diam := g.Diameter()
	r.layers = make([]int, len(g.Edges))
	r.timelocks = make([]int64, len(g.Edges))
	for i, e := range g.Edges {
		k := dist[e.From]
		if k < 0 {
			// Unreachable from the leader (cannot happen for feasible
			// graphs, which are weakly connected with a working
			// leader); deploy last, defensively.
			k = diam
		}
		r.layers[i] = k
		r.timelocks[i] = int64(r.start) + int64(2*diam-k+1)*int64(r.cfg.Delta)
	}
}

// bfsDistances computes directed BFS distance from src over the
// graph's edges (-1 = unreachable).
func bfsDistances(g *graph.Graph, src crypto.Address) map[crypto.Address]int {
	dist := make(map[crypto.Address]int, len(g.Participants))
	for _, p := range g.Participants {
		dist[p] = -1
	}
	dist[src] = 0
	queue := []crypto.Address{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, e := range g.EdgesFrom(u) {
			if dist[e.To] < 0 {
				dist[e.To] = dist[u] + 1
				queue = append(queue, e.To)
			}
		}
	}
	return dist
}

// event appends a timeline entry.
func (r *Run) event(edge int, label string) {
	r.Events = append(r.Events, Event{At: r.w.Sim.Now(), Label: label, Edge: edge})
}

// tellPeers sends an off-chain message to this swap's other
// participants only (concurrent swaps must not cross-talk).
func (r *Run) tellPeers(from *xchain.Participant, msg any) {
	for _, q := range r.cfg.Participants {
		if q != from {
			from.Tell(q, msg)
		}
	}
}

// deployOutgoing publishes all of p's outgoing contracts (once).
func (r *Run) deployOutgoing(p *xchain.Participant) {
	if r.deployed[p] || p.Crashed() {
		return
	}
	r.deployed[p] = true
	for i, e := range r.cfg.Graph.Edges {
		if e.From != p.Addr() {
			continue
		}
		i, e := i, e
		params := vm.EncodeGob(contracts.HTLCParams{
			Recipient: e.To,
			Hashlock:  r.hashlock,
			Timelock:  r.timelocks[i],
		})
		client := p.Client(e.Chain)
		tx, addr, err := client.Deploy(contracts.TypeHTLC, params, e.Asset)
		if err != nil {
			// Underfunded sender: the swap will abort via timelocks.
			r.event(i, "deploy failed: "+err.Error())
			continue
		}
		p.Deploys++
		r.event(i, "deploy submitted")
		client.WhenTxAtDepth(tx, r.cfg.ConfirmDepth, func(crypto.Hash) {
			r.event(i, "deploy confirmed")
			r.tellPeers(p, announceMsg{EdgeIdx: i, Addr: addr, TxID: tx.ID()})
			r.onAnnounce(p, announceMsg{EdgeIdx: i, Addr: addr, TxID: tx.ID()})
		})
	}
}

// onMessage handles off-chain announcements at participant p.
func (r *Run) onMessage(p *xchain.Participant, msg any) {
	if m, ok := msg.(announceMsg); ok {
		r.onAnnounce(p, m)
	}
}

// onAnnounce records a confirmed contract and advances p's part of
// the protocol: deploy once all incoming contracts exist; the leader
// starts redemption once everything is deployed.
func (r *Run) onAnnounce(p *xchain.Participant, m announceMsg) {
	if r.addrs[m.EdgeIdx].IsZero() {
		r.addrs[m.EdgeIdx] = m.Addr
	}
	r.confirmed[m.EdgeIdx] = true

	if r.allConfirmed() && r.DeployPhaseEnd == 0 {
		r.DeployPhaseEnd = r.w.Sim.Now()
		r.event(-1, "all contracts deployed")
	}

	// Sequential rule: p deploys its outgoing edges once every
	// incoming edge is confirmed.
	if !r.deployed[p] && r.incomingConfirmed(p.Addr()) {
		r.deployOutgoing(p)
	}

	// The leader starts the redemption phase when everything is
	// deployed.
	if p == r.cfg.Leader && r.allConfirmed() {
		r.startRedemption(p, r.secret)
	}
}

// incomingConfirmed reports whether every edge into u is confirmed.
func (r *Run) incomingConfirmed(u crypto.Address) bool {
	for i, e := range r.cfg.Graph.Edges {
		if e.To == u && !r.confirmed[i] {
			return false
		}
	}
	return true
}

// allConfirmed reports whether every edge's contract is confirmed.
func (r *Run) allConfirmed() bool {
	for _, c := range r.confirmed {
		if !c {
			return false
		}
	}
	return true
}

// startRedemption makes p redeem all its incoming contracts with the
// secret, then watch for completion.
func (r *Run) startRedemption(p *xchain.Participant, secret []byte) {
	if r.redeeming[p] || p.Crashed() {
		return
	}
	r.redeeming[p] = true
	for i, e := range r.cfg.Graph.Edges {
		if e.To != p.Addr() || r.addrs[i].IsZero() {
			continue
		}
		i, e := i, e
		client := p.Client(e.Chain)
		if _, err := client.Call(r.addrs[i], contracts.FnRedeem, secret, 0); err == nil {
			p.Calls++
			r.event(i, "redeem submitted")
		}
		// Watch for the redeem to be publicly recognized (confirmed
		// at depth d), matching the paper's Δ semantics.
		client.WhenContract(r.addrs[i], r.cfg.ConfirmDepth, func(ct vm.Contract) bool {
			h, ok := ct.(*contracts.HTLC)
			return ok && h.State == contracts.StateRedeemed
		}, func() {
			r.event(i, "redeem confirmed")
			r.RedeemPhaseEnd = r.w.Sim.Now()
		})
	}
	// Non-leaders: also arm secret extraction for the participants
	// upstream (they watch their outgoing contracts being redeemed).
	r.armSecretWatches()
}

// armSecretWatches makes every sender watch its own outgoing
// contracts; when one is redeemed, the sender extracts the secret
// from the redeem transaction and starts redeeming its own incoming
// edges. This is the backward propagation Herlihy's analysis counts:
// the secret travels along counterparty edges, one Δ per hop, which
// is exactly why the redemption phase costs Diam(D)·Δ (Figure 8). A
// well-formed swap graph gives every participant at least one
// outgoing edge, so everyone eventually learns s.
func (r *Run) armSecretWatches() {
	for i, e := range r.cfg.Graph.Edges {
		if r.addrs[i].IsZero() {
			continue
		}
		i, e := i, e
		sender := r.participant(e.From)
		if sender == nil || sender.Crashed() || r.redeeming[sender] {
			continue
		}
		client := sender.Client(e.Chain)
		// Senders act on *confirmed* redemptions (depth d): each
		// secret hop therefore costs one Δ, which is what makes the
		// redemption phase sequential in Diam(D).
		client.WhenContract(r.addrs[i], r.cfg.ConfirmDepth, func(ct vm.Contract) bool {
			h, ok := ct.(*contracts.HTLC)
			return ok && h.State == contracts.StateRedeemed
		}, func() {
			if secret, ok := findRedeemSecret(client.Chain(), r.addrs[i]); ok {
				r.startRedemption(sender, secret)
			}
		})
	}
}

// armRefund schedules the sender's refund at the edge's timelock.
func (r *Run) armRefund(i int, e graph.Edge) {
	sender := r.participant(e.From)
	if sender == nil {
		return
	}
	refundAt := r.timelocks[i] + int64(r.cfg.Delta)/4
	r.w.Sim.At(refundAt, func() {
		if sender.Crashed() || r.addrs[i].IsZero() {
			return
		}
		client := sender.Client(e.Chain)
		ct, ok := client.ContractNow(r.addrs[i], 0)
		if !ok {
			return
		}
		if h, isHTLC := ct.(*contracts.HTLC); !isHTLC || h.State != contracts.StatePublished {
			return
		}
		if _, err := client.Call(r.addrs[i], contracts.FnRefund, nil, 0); err == nil {
			sender.Calls++
			r.event(i, "refund submitted")
		}
	})
}

// findRedeemSecret scans the canonical chain (newest first) for the
// redeem call on addr and returns its argument — how a participant
// learns s once it is revealed on-chain.
func findRedeemSecret(view *chain.Chain, addr crypto.Address) ([]byte, bool) {
	for h := view.Height(); ; h-- {
		b, ok := view.CanonicalAt(h)
		if !ok {
			break
		}
		for _, tx := range b.Txs {
			if tx.Kind == chain.TxCall && tx.Contract == addr && tx.Fn == contracts.FnRedeem {
				return tx.Args, true
			}
		}
		if h == 0 {
			break
		}
	}
	return nil, false
}

// Addrs exposes the per-edge contract addresses (for grading).
func (r *Run) Addrs() []crypto.Address { return append([]crypto.Address(nil), r.addrs...) }

// Settled reports run quiescence for the engine's core.Runner
// contract: at least one asset contract made it on-chain and every
// announced contract has left Published on the ground-truth view.
// HTLC runs have no explicit decision — redeems and timelocked
// refunds are the decision — so deployment-complete is the earliest
// meaningful check. The sequential structure guarantees no new
// contract appears after the announced ones settle: deploys strictly
// precede redemption, and refunds only start at the timelocks.
func (r *Run) Settled() bool {
	deployed, settled := xchain.AllSettled(r.w, r.cfg.Graph, r.addrs)
	return deployed && settled
}

// Grade reads terminal contract states from ground-truth views and
// counts the on-chain operations the swap paid for (N deploys plus N
// redeem/refund calls — Section 6.2's baseline cost).
func (r *Run) Grade() *xchain.Outcome {
	out := xchain.GradeGraph(r.w, r.cfg.Graph, r.addrs)
	out.Start = r.start
	end := r.start
	for _, ev := range r.Events {
		if ev.At > end {
			end = ev.At
		}
	}
	out.End = end
	perChain := make(map[chain.ID]map[crypto.Address]bool)
	for i, e := range r.cfg.Graph.Edges {
		if r.addrs[i].IsZero() {
			continue
		}
		if perChain[e.Chain] == nil {
			perChain[e.Chain] = make(map[crypto.Address]bool)
		}
		perChain[e.Chain][r.addrs[i]] = true
	}
	for id, set := range perChain {
		d, c := xchain.CountContractOps(r.w.View(id), set)
		out.Deploys += d
		out.Calls += c
	}
	return out
}

// Secret exposes the leader's secret (tests verifying reveal flow).
func (r *Run) Secret() []byte { return append([]byte(nil), r.secret...) }
