package crypto

import (
	"testing"

	"repro/internal/sim"
)

// Signature and multisignature costs dominate transaction validation;
// these benchmarks size them.

func BenchmarkSign(b *testing.B) {
	k := MustGenerateKey(NewRandReader(sim.NewRNG(1).Uint64))
	msg := []byte("an AC2T graph digest")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = k.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	k := MustGenerateKey(NewRandReader(sim.NewRNG(1).Uint64))
	msg := []byte("an AC2T graph digest")
	sig := k.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !sig.Verify(msg) {
			b.Fatal("valid signature rejected")
		}
	}
}

func BenchmarkMultiSigComplete(b *testing.B) {
	rng := sim.NewRNG(2)
	digest := Sum([]byte("(D, t)"))
	ms := NewMultiSig(digest)
	var required []Address
	for i := 0; i < 8; i++ {
		k := MustGenerateKey(NewRandReader(rng.Uint64))
		ms.Add(k)
		required = append(required, k.Addr)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ms.Complete(required) {
			b.Fatal("complete multisig rejected")
		}
	}
}

func BenchmarkHashLockVerify(b *testing.B) {
	hl := NewHashLock([]byte("secret"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !hl.Verify([]byte("secret")) {
			b.Fatal("hashlock rejected")
		}
	}
}
