// Package engine is the sharded, concurrent AC2T orchestration layer:
// it drives thousands of atomic cross-chain transactions to completion
// in parallel, which the strictly sequential single-simulator harness
// in internal/bench cannot.
//
// The design splits determinism from parallelism. A generated
// workload (ring AC2Ts with configurable arrival rate, graph-size
// distribution, and a scenario mix spanning commits, declines,
// crash-recovery, decision races, and network adversity —
// decision-window partitions, sustained gossip loss, geo-skewed
// links) is partitioned across N shards. Each shard owns an independent deterministic sim
// world — its own chains, miners and witness network, seeded from the
// master seed — and executes its transaction stream through the
// existing core.AC3WN / core.AC3TW / swap runners with per-shard
// backpressure (MaxInFlight) and per-transaction timeouts. Shards run
// concurrently on a worker pool of goroutines; within a shard
// everything stays on one virtual clock and one goroutine, so a shard
// is a pure function of (seed, workload) and the whole run is a pure
// function of the master seed and shard count. The collector
// aggregates commit/abort/atomicity-violation counts, latency
// histograms and virtual throughput; aggregation is integer-only and
// merged in shard order, so two runs with the same configuration
// produce byte-identical results no matter how the scheduler
// interleaves workers.
package engine

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Config configures an engine run.
type Config struct {
	// Seed is the master seed; every shard seed derives from it.
	Seed uint64
	// Shards is the number of independent simulation worlds the
	// workload is partitioned across.
	Shards int
	// Workers bounds concurrently executing shards (0 = min(Shards,
	// GOMAXPROCS)). Workers only affects wall-clock scheduling, never
	// results.
	Workers int
	// Workload describes the transaction stream.
	Workload Workload
	// Trace enables the deterministic trace recorder: per-shard ring
	// buffers collect span/event records (virtual time + sequence
	// numbers, no wall clock) and the aggregate carries the merged
	// trace for export. Off by default; the per-phase latency table is
	// collected regardless (fixed-size histograms, negligible cost).
	Trace bool
	// TraceRingCap overrides the per-shard ring capacity (0 =
	// trace.DefaultRingCap). Small caps bound memory on huge runs at
	// the price of exporting only the most recent records per shard.
	TraceRingCap int
	// PruneDepth sets the chain executors' state-GC horizon: per-block
	// ledger states buried deeper than this below every node view's
	// tip are dropped and re-derived by replay if ever read again.
	// 0 selects the engine default (enginePruneDepth); negative
	// disables pruning (retain every state, the pre-GC behavior).
	// Pruning never changes results — aggregates and traces are
	// byte-identical either way — only memory.
	PruneDepth int
}

// enginePruneDepth is the default state-GC horizon. It must exceed
// every depth the system routinely reads after the fact: the deepest
// confirmation depth in use (engineChainSpec sets 2), the AC3WN SPV
// checkpoint distance (core.DefaultStableDepth, 30), and the deepest
// reorg the adversity scenarios have produced (36, PR 5). It is
// deliberately *below* the overlay flatten interval (48): retained
// states then span at most two flattened base generations, so at most
// two full ledger base maps coexist on the tip side — one fewer
// resident copy of the whole UTXO set at 100k-AC2T scale. Deeper
// reads remain correct via replay, just not free.
const enginePruneDepth = 40

// pruneDepth resolves the configured horizon.
func (cfg Config) pruneDepth() int {
	switch {
	case cfg.PruneDepth < 0:
		return 0 // disabled
	case cfg.PruneDepth == 0:
		return enginePruneDepth
	default:
		return cfg.PruneDepth
	}
}

// Engine partitions and executes a workload.
type Engine struct {
	cfg Config
	col *Collector
}

// New validates the configuration and prepares an engine.
func New(cfg Config) (*Engine, error) {
	if cfg.Shards <= 0 {
		return nil, fmt.Errorf("engine: Shards must be positive")
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("engine: negative Workers")
	}
	if err := cfg.Workload.validate(); err != nil {
		return nil, err
	}
	if cfg.Workload.Txs < cfg.Shards {
		return nil, fmt.Errorf("engine: %d txs cannot cover %d shards", cfg.Workload.Txs, cfg.Shards)
	}
	return &Engine{cfg: cfg, col: newCollector(cfg.Workload.Txs)}, nil
}

// Progress reports graded and total transactions; safe to call from
// any goroutine while Run executes.
func (e *Engine) Progress() (graded, total int64) { return e.col.Progress() }

// Aggregate is the engine's machine-readable result. Integer-only
// accounting and shard-ordered merging make it byte-identical across
// runs with the same configuration.
type Aggregate struct {
	Protocol   Protocol `json:"protocol"`
	Seed       uint64   `json:"seed"`
	Shards     int      `json:"shards"`
	Txs        int      `json:"txs"`
	Graded     int      `json:"graded"`
	Commits    int      `json:"commits"`
	Aborts     int      `json:"aborts"`
	Stuck      int      `json:"stuck"`
	Violations int      `json:"atomicity_violations"`
	Deploys    int      `json:"deploys"`
	Calls      int      `json:"calls"`

	ByScenario map[Scenario]ScenarioStats `json:"by_scenario"`

	// ScenariosDrawn / ScenariosDowngraded surface the workload's
	// scenario mapping: a downgrade means the drawn scenario is not
	// expressible for the protocol and ran as commit instead (today:
	// HTLC race only). Zero downgrades means the full matrix ran.
	ScenariosDrawn      int `json:"scenarios_drawn"`
	ScenariosDowngraded int `json:"scenarios_downgraded"`

	// LatencyMs is the virtual commit-latency histogram across all
	// graded transactions — the engine's only latency record; no
	// per-tx samples are retained, so memory stays flat in tx count.
	LatencyMs metrics.HistSnapshot `json:"latency_ms"`
	// Percentiles over all shard latencies, virtual ms, interpolated
	// from the histogram (deterministic integer arithmetic; accuracy
	// bounded by the latencyBounds bucket ladder).
	LatencyP50Ms  int64 `json:"latency_p50_ms"`
	LatencyP95Ms  int64 `json:"latency_p95_ms"`
	LatencyP99Ms  int64 `json:"latency_p99_ms"`
	LatencyP999Ms int64 `json:"latency_p999_ms"`

	// PhaseLatency is the per-phase attribution table: for every
	// (phase, scenario) cell with samples, the count and p50/p99 of
	// that phase's virtual duration. Rows are emitted in canonical
	// phase × scenario order, so the JSON is byte-identical across
	// runs. This is the paper's latency contrast broken down to where
	// the time actually goes — lock confirmation vs decision vs
	// settlement.
	PhaseLatency []PhaseLatencyRow `json:"phase_latency"`

	// MakespanVirtualMs is the slowest shard's virtual makespan;
	// shards execute in parallel, so it bounds the run.
	MakespanVirtualMs int64 `json:"makespan_virtual_ms"`
	// ThroughputTPSVirtual is graded transactions per virtual second
	// of makespan — the sustained AC2T throughput the sharded system
	// sustains on its own clocks.
	ThroughputTPSVirtual float64 `json:"throughput_tps_virtual"`
	// SimEvents totals dispatched simulator events (work proxy).
	SimEvents uint64 `json:"sim_events"`
	// SimEventsPerTx is SimEvents divided by graded transactions — the
	// simulator-event cost of settling one AC2T. This is the number
	// the notification-bus refactor is graded on: polling reconcilers
	// burn events on no-op wakeups, subscriptions only pay when chain
	// state actually changes.
	SimEventsPerTx float64 `json:"sim_events_per_tx"`

	// BlocksMined totals blocks mined across every shard's networks;
	// BlocksExecuted counts the ApplyBlock state transitions the shared
	// executors actually ran. The shared-store refactor is graded on
	// executed ≈ mined (one execution per block per network) instead of
	// the per-view N× mined.
	BlocksMined    int    `json:"blocks_mined"`
	BlocksExecuted uint64 `json:"blocks_executed"`
	// BlockExecHits counts block adoptions served from the executors'
	// result cache; ExecHitRate is hits/(hits+executed).
	BlockExecHits uint64  `json:"block_exec_cache_hits"`
	ExecHitRate   float64 `json:"exec_cache_hit_rate"`
	// Executor state-GC accounting summed across shards: states pruned
	// past the horizon, states still live at shard end, ApplyBlock
	// replays run to re-derive a pruned state, and whole blocks
	// released by history retirement. Deterministic (and
	// byte-compared); wall-clock memory numbers (peak RSS, allocs per
	// AC2T) deliberately stay out of the aggregate — see cmd/ac3engine
	// stderr diagnostics and the bench snapshot scale rungs.
	StatesPruned  uint64 `json:"states_pruned"`
	StatesLive    int    `json:"states_live"`
	StateReplays  uint64 `json:"state_replays"`
	BlocksRetired uint64 `json:"blocks_retired"`
	// BlocksExecutedPerTx is BlocksExecuted divided by graded
	// transactions — the block-execution cost of settling one AC2T,
	// the budget the CI bench smoke enforces.
	BlocksExecutedPerTx float64 `json:"blocks_executed_per_tx"`

	// Witness-efficiency accounting summed across shards (AC3WN only,
	// zero elsewhere): the per-AC2T decision transactions and bytes the
	// unbatched path puts on the witness chain, and the batched path's
	// commit_batch transactions, carried decisions, bytes, and
	// post-reorg republishes. WitnessTxsPerCommit / WitnessBytesPerCommit
	// are the headline efficiency ratios — total decision-carrying
	// witness transactions (per-AC2T + batch commits) and their bytes,
	// divided by committed AC2Ts. Batching is graded on driving the
	// transaction ratio from ~1.0 toward 1/batch-size.
	WitnessDecisionTxs    int     `json:"witness_decision_txs"`
	WitnessDecisionBytes  int     `json:"witness_decision_bytes"`
	BatchesPublished      int     `json:"batches_published"`
	BatchDecisions        int     `json:"batch_decisions"`
	BatchRepublishes      int     `json:"batch_republishes"`
	BatchBytesPublished   int     `json:"batch_bytes_published"`
	WitnessTxsPerCommit   float64 `json:"witness_txs_per_commit"`
	WitnessBytesPerCommit float64 `json:"witness_bytes_per_commit"`

	// Adversity accounting across all shards: total canonical-tip
	// reorgs observed by any node view, the deepest canonical rollback
	// any view performed, and gossip messages dropped by the loss
	// model, partitions, or crashed endpoints. These are the
	// network-hostility counters the partition/lossy/geo scenarios are
	// graded against — zero across the board means the run never left
	// the friendly-network regime.
	ForksObserved int    `json:"forks_observed"`
	MaxReorgDepth int    `json:"max_reorg_depth"`
	MsgsDropped   uint64 `json:"msgs_dropped"`

	PerShard []ShardResult `json:"per_shard"`

	// Trace is the run's merged trace when Config.Trace was set (nil
	// otherwise). It is a carrier for the exporters, not part of the
	// JSON aggregate — NDJSON and Chrome exports have their own
	// deterministic byte layouts.
	Trace *trace.Trace `json:"-"`
}

// PhaseLatencyRow is one cell of the per-phase latency table.
type PhaseLatencyRow struct {
	Phase    string   `json:"phase"`
	Scenario Scenario `json:"scenario"`
	Count    uint64   `json:"count"`
	P50Ms    int64    `json:"p50_ms"`
	P99Ms    int64    `json:"p99_ms"`
}

// Run executes the workload and returns the aggregate. It blocks
// until every shard completes.
func (e *Engine) Run() (*Aggregate, error) {
	cfg := e.cfg
	shards := cfg.Shards
	workers := cfg.Workers
	if workers == 0 || workers > shards {
		workers = shards
	}
	if gp := runtime.GOMAXPROCS(0); cfg.Workers == 0 && workers > gp {
		workers = gp
	}

	// Shard seeds and transaction split derive deterministically from
	// the master seed: the first Txs%Shards shards take one extra.
	seedRNG := sim.NewRNG(cfg.Seed) //ac3:globalrand cfg.Seed is the run's root seed: this is where the whole seed tree starts
	seeds := make([]uint64, shards)
	for i := range seeds {
		seeds[i] = seedRNG.Uint64()
	}
	txs := make([]int, shards)
	base, extra := cfg.Workload.Txs/shards, cfg.Workload.Txs%shards
	for i := range txs {
		txs[i] = base
		if i < extra {
			txs[i]++
		}
	}

	// Per-shard trace recorders (nil when tracing is off): each lives
	// on its shard's goroutine while the shard runs, and the engine
	// merges them in shard order after the workers join — worker count
	// never shows in the merged stream.
	var recs []*trace.Recorder
	if cfg.Trace {
		recs = make([]*trace.Recorder, shards)
		for i := range recs {
			recs[i] = trace.NewRecorder(i, cfg.TraceRingCap)
		}
	}

	results := make([]*ShardResult, shards)
	errs := make([]error, shards)
	idxCh := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One Sim value per worker, Reset per shard: the
			// run-to-quiescence/Reset API keeps shard worlds
			// independent without reallocating the simulator.
			s := sim.New(0)
			for idx := range idxCh {
				var rec *trace.Recorder
				if recs != nil {
					rec = recs[idx]
				}
				results[idx], errs[idx] = runShard(s, idx, seeds[idx], cfg.Workload, txs[idx], cfg.pruneDepth(), e.col, rec)
			}
		}()
	}
	for i := 0; i < shards; i++ {
		idxCh <- i
	}
	close(idxCh)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return e.assemble(results, recs), nil
}

// assemble merges per-shard results in shard order.
func (e *Engine) assemble(results []*ShardResult, recs []*trace.Recorder) *Aggregate {
	agg := &Aggregate{
		Protocol:   e.cfg.Workload.Protocol,
		Seed:       e.cfg.Seed,
		Shards:     e.cfg.Shards,
		Txs:        e.cfg.Workload.Txs,
		ByScenario: make(map[Scenario]ScenarioStats),
		LatencyMs:  e.col.latency.Snapshot(),
	}
	for _, r := range results {
		agg.Graded += r.Graded
		agg.Commits += r.Commits
		agg.Aborts += r.Aborts
		agg.Stuck += r.Stuck
		agg.Violations += r.Violations
		agg.Deploys += r.Deploys
		agg.Calls += r.Calls
		agg.SimEvents += r.Events
		agg.ScenariosDrawn += r.ScenariosDrawn
		agg.ScenariosDowngraded += r.ScenariosDowngraded
		agg.BlocksMined += r.BlocksMined
		agg.BlocksExecuted += r.BlocksExecuted
		agg.BlockExecHits += r.BlockExecHits
		agg.ForksObserved += r.ForksObserved
		if r.MaxReorgDepth > agg.MaxReorgDepth {
			agg.MaxReorgDepth = r.MaxReorgDepth
		}
		agg.MsgsDropped += r.MsgsDropped
		agg.StatesPruned += r.StatesPruned
		agg.StatesLive += r.StatesLive
		agg.StateReplays += r.StateReplays
		agg.BlocksRetired += r.BlocksRetired
		agg.WitnessDecisionTxs += r.WitnessDecisionTxs
		agg.WitnessDecisionBytes += r.WitnessDecisionBytes
		agg.BatchesPublished += r.BatchesPublished
		agg.BatchDecisions += r.BatchDecisions
		agg.BatchRepublishes += r.BatchRepublishes
		agg.BatchBytesPublished += r.BatchBytesPublished
		if r.MakespanVirtualMs > agg.MakespanVirtualMs {
			agg.MakespanVirtualMs = r.MakespanVirtualMs
		}
		for sc, st := range r.ByScenario {
			cur := agg.ByScenario[sc]
			cur.merge(&st)
			agg.ByScenario[sc] = cur
		}
		agg.PerShard = append(agg.PerShard, *r)
	}
	// Percentiles straight from the streamed histogram — no merged
	// sample slice exists anymore.
	agg.LatencyP50Ms = agg.LatencyMs.Quantile(0.50)
	agg.LatencyP95Ms = agg.LatencyMs.Quantile(0.95)
	agg.LatencyP99Ms = agg.LatencyMs.Quantile(0.99)
	agg.LatencyP999Ms = agg.LatencyMs.Quantile(0.999)

	// Per-phase latency table: fold per-shard histograms (Hist.Merge
	// is commutative, so map iteration order cannot matter), then emit
	// rows in canonical phase × scenario order.
	phases := make(map[phaseKey]*metrics.Hist)
	for _, r := range results {
		for k, h := range r.phase {
			if phases[k] == nil {
				phases[k] = metrics.NewHist(phaseBounds...)
			}
			phases[k].Merge(h)
		}
	}
	scOrder := []Scenario{ScenarioCommit, ScenarioAbort, ScenarioCrash,
		ScenarioRace, ScenarioPartition, ScenarioLossy, ScenarioGeo}
	for _, ph := range trace.Phases {
		for _, sc := range scOrder {
			h := phases[phaseKey{ph, sc}]
			if h == nil {
				continue
			}
			s := h.Snapshot()
			agg.PhaseLatency = append(agg.PhaseLatency, PhaseLatencyRow{
				Phase:    ph,
				Scenario: sc,
				Count:    s.Count,
				P50Ms:    s.Quantile(0.50),
				P99Ms:    s.Quantile(0.99),
			})
		}
	}

	// Merge per-shard trace streams in shard order.
	if recs != nil {
		tr := &trace.Trace{}
		for _, r := range recs {
			tr.Merge(r)
		}
		agg.Trace = tr
	}
	if agg.MakespanVirtualMs > 0 {
		agg.ThroughputTPSVirtual = float64(agg.Graded) / (float64(agg.MakespanVirtualMs) / 1000)
	}
	if agg.Graded > 0 {
		agg.SimEventsPerTx = float64(agg.SimEvents) / float64(agg.Graded)
		agg.BlocksExecutedPerTx = float64(agg.BlocksExecuted) / float64(agg.Graded)
	}
	if total := agg.BlockExecHits + agg.BlocksExecuted; total > 0 {
		agg.ExecHitRate = float64(agg.BlockExecHits) / float64(total)
	}
	if agg.Commits > 0 {
		agg.WitnessTxsPerCommit = float64(agg.WitnessDecisionTxs+agg.BatchesPublished) / float64(agg.Commits)
		agg.WitnessBytesPerCommit = float64(agg.WitnessDecisionBytes+agg.BatchBytesPublished) / float64(agg.Commits)
	}
	return agg
}
