package engine

import (
	"fmt"

	"repro/internal/sim"
)

// Protocol selects which commitment protocol a workload drives
// through the engine.
type Protocol string

// The three protocol families the repository implements.
const (
	ProtoAC3WN Protocol = "ac3wn" // the paper's contribution (Section 4.2)
	ProtoAC3TW Protocol = "ac3tw" // centralized-witness strawman (Section 4.1)
	ProtoHTLC  Protocol = "htlc"  // Nolan/Herlihy hashlock baseline
)

// Scenario is the behavioral template a generated AC2T follows.
type Scenario string

// The scenario mix: well-behaved commits, participant-declines
// aborts, the paper's Section 1 crash-recovery hazard, and an
// adversarial decision race (a rogue participant pushing
// authorize_refund the moment SCw appears, trying to flip the
// outcome).
const (
	ScenarioCommit Scenario = "commit"
	ScenarioAbort  Scenario = "abort"
	ScenarioCrash  Scenario = "crash"
	ScenarioRace   Scenario = "race"
)

// Mix weighs the scenarios in a workload. Zero-weight scenarios never
// occur; an all-zero Mix is rejected.
type Mix struct {
	Commit int `json:"commit"`
	Abort  int `json:"abort"`
	Crash  int `json:"crash"`
	Race   int `json:"race"`
}

// SizeWeight weighs one AC2T graph size (ring participant count) in
// the workload's size distribution.
type SizeWeight struct {
	Size   int `json:"size"`
	Weight int `json:"weight"`
}

// Workload describes the transaction stream each shard generates and
// executes. All times are virtual.
type Workload struct {
	// Protocol selects the runner family.
	Protocol Protocol `json:"protocol"`
	// Txs is the total number of AC2Ts across all shards.
	Txs int `json:"txs"`
	// ArrivalEvery is the mean exponential interarrival time of AC2Ts
	// within one shard (the per-shard offered load).
	ArrivalEvery sim.Time `json:"arrival_every_ms"`
	// MaxInFlight bounds concurrently executing AC2Ts per shard;
	// arrivals beyond it queue (backpressure) until a slot frees.
	MaxInFlight int `json:"max_in_flight"`
	// TxTimeout is the per-transaction grading deadline: a run that
	// has not settled by then is graded as-is (stuck counts surface
	// in the aggregate rather than hanging the shard).
	TxTimeout sim.Time `json:"tx_timeout_ms"`
	// AssetChains is how many asset blockchains each shard world
	// hosts (plus one witness chain).
	AssetChains int `json:"asset_chains"`
	// Sizes is the AC2T graph-size distribution.
	Sizes []SizeWeight `json:"sizes"`
	// Mix weighs the scenarios.
	Mix Mix `json:"mix"`
}

// DefaultWorkload returns a mixed AC3WN workload: mostly commits,
// with aborts, one crash-recovery participant, and adversarial
// decision races sprinkled in.
func DefaultWorkload() Workload {
	return Workload{
		Protocol:     ProtoAC3WN,
		Txs:          100,
		ArrivalEvery: 20 * sim.Second,
		MaxInFlight:  8,
		TxTimeout:    45 * sim.Minute,
		AssetChains:  2,
		Sizes:        []SizeWeight{{Size: 2, Weight: 6}, {Size: 3, Weight: 3}, {Size: 4, Weight: 1}},
		Mix:          Mix{Commit: 7, Abort: 2, Crash: 1, Race: 1},
	}
}

// validate rejects unusable workloads.
func (wl *Workload) validate() error {
	switch wl.Protocol {
	case ProtoAC3WN, ProtoAC3TW, ProtoHTLC:
	default:
		return fmt.Errorf("engine: unknown protocol %q", wl.Protocol)
	}
	if wl.Txs <= 0 {
		return fmt.Errorf("engine: workload needs Txs > 0")
	}
	if wl.ArrivalEvery <= 0 || wl.TxTimeout <= 0 {
		return fmt.Errorf("engine: non-positive workload times")
	}
	if wl.MaxInFlight <= 0 {
		return fmt.Errorf("engine: MaxInFlight must be positive")
	}
	if wl.AssetChains < 2 {
		return fmt.Errorf("engine: need >= 2 asset chains, got %d", wl.AssetChains)
	}
	if len(wl.Sizes) == 0 {
		return fmt.Errorf("engine: empty size distribution")
	}
	total := 0
	for _, s := range wl.Sizes {
		if s.Size < 2 {
			return fmt.Errorf("engine: AC2T size %d < 2", s.Size)
		}
		if s.Weight < 0 {
			return fmt.Errorf("engine: negative size weight")
		}
		total += s.Weight
	}
	if total == 0 {
		return fmt.Errorf("engine: all size weights zero")
	}
	if wl.Mix.Commit < 0 || wl.Mix.Abort < 0 || wl.Mix.Crash < 0 || wl.Mix.Race < 0 {
		return fmt.Errorf("engine: negative mix weight")
	}
	if wl.Mix.Commit+wl.Mix.Abort+wl.Mix.Crash+wl.Mix.Race == 0 {
		return fmt.Errorf("engine: all mix weights zero")
	}
	return nil
}

// drawSize samples the graph-size distribution.
func (wl *Workload) drawSize(rng *sim.RNG) int {
	total := 0
	for _, s := range wl.Sizes {
		total += s.Weight
	}
	n := rng.Intn(total)
	for _, s := range wl.Sizes {
		n -= s.Weight
		if n < 0 {
			return s.Size
		}
	}
	return wl.Sizes[len(wl.Sizes)-1].Size
}

// drawScenario samples the scenario mix. The protocol runtime lets
// every protocol run the full commit/abort/crash/race matrix — crash
// targets each protocol's critical failure point (a participant for
// AC3WN and AC3TW, the witness for AC3TW's blocking hazard, a
// mid-reveal participant for HTLC's asset loss), and race pushes the
// competing decision (authorize_refund on SCw, a refund request at
// Trent). The one remaining mapping is HTLC race → commit: hashlock
// contracts have no decision to race. It is reported, not silent —
// downgraded draws are counted in the aggregates.
func (wl *Workload) drawScenario(rng *sim.RNG) (sc Scenario, downgraded bool) {
	m := wl.Mix
	n := rng.Intn(m.Commit + m.Abort + m.Crash + m.Race)
	switch {
	case n < m.Commit:
		sc = ScenarioCommit
	case n < m.Commit+m.Abort:
		sc = ScenarioAbort
	case n < m.Commit+m.Abort+m.Crash:
		sc = ScenarioCrash
	default:
		sc = ScenarioRace
	}
	if wl.Protocol == ProtoHTLC && sc == ScenarioRace {
		return ScenarioCommit, true
	}
	return sc, false
}
