package merkle

import (
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/crypto"
)

func mkLeaves(n int) []crypto.Hash {
	leaves := make([]crypto.Hash, n)
	for i := range leaves {
		leaves[i] = LeafHash([]byte(fmt.Sprintf("tx-%d", i)))
	}
	return leaves
}

func TestEmptyRootIsZero(t *testing.T) {
	if !Root(nil).IsZero() {
		t.Fatal("empty root is not zero")
	}
}

func TestSingleLeafRoot(t *testing.T) {
	leaves := mkLeaves(1)
	if Root(leaves) != leaves[0] {
		t.Fatal("single-leaf root should be the leaf itself")
	}
}

func TestRootChangesWithAnyLeaf(t *testing.T) {
	for n := 2; n <= 9; n++ {
		leaves := mkLeaves(n)
		base := Root(leaves)
		for i := range leaves {
			mut := append([]crypto.Hash(nil), leaves...)
			mut[i] = LeafHash([]byte("tampered"))
			if Root(mut) == base {
				t.Fatalf("n=%d: root unchanged after mutating leaf %d", n, i)
			}
		}
	}
}

func TestRootDoesNotDependOnCallerSlice(t *testing.T) {
	leaves := mkLeaves(5)
	cp := append([]crypto.Hash(nil), leaves...)
	_ = Root(leaves)
	for i := range leaves {
		if leaves[i] != cp[i] {
			t.Fatal("Root mutated its input")
		}
	}
}

func TestProveVerifyAllSizesAllIndexes(t *testing.T) {
	for n := 1; n <= 33; n++ {
		leaves := mkLeaves(n)
		root := Root(leaves)
		for i := 0; i < n; i++ {
			p, err := Prove(leaves, i)
			if err != nil {
				t.Fatalf("n=%d i=%d: %v", n, i, err)
			}
			if !p.Verify(root) {
				t.Fatalf("n=%d i=%d: valid proof rejected", n, i)
			}
			if !p.VerifyData(root, []byte(fmt.Sprintf("tx-%d", i))) {
				t.Fatalf("n=%d i=%d: VerifyData rejected original payload", n, i)
			}
		}
	}
}

func TestProofRejectsWrongRoot(t *testing.T) {
	leaves := mkLeaves(8)
	p, _ := Prove(leaves, 3)
	other := Root(mkLeaves(9))
	if p.Verify(other) {
		t.Fatal("proof verified against wrong root")
	}
}

func TestProofRejectsWrongData(t *testing.T) {
	leaves := mkLeaves(8)
	root := Root(leaves)
	p, _ := Prove(leaves, 3)
	if p.VerifyData(root, []byte("tx-4")) {
		t.Fatal("proof verified wrong payload")
	}
}

func TestProofTamperedSiblingRejected(t *testing.T) {
	leaves := mkLeaves(16)
	root := Root(leaves)
	for i := 0; i < 16; i++ {
		p, _ := Prove(leaves, i)
		for j := range p.Siblings {
			q := p.Clone()
			q.Siblings[j] = LeafHash([]byte("evil"))
			if q.Verify(root) {
				t.Fatalf("i=%d: tampered sibling %d accepted", i, j)
			}
		}
	}
}

func TestProofFlippedSideRejected(t *testing.T) {
	leaves := mkLeaves(8)
	root := Root(leaves)
	p, _ := Prove(leaves, 2)
	p.Lefts[0] = !p.Lefts[0]
	if p.Verify(root) {
		t.Fatal("flipped side accepted")
	}
}

func TestProveOutOfRange(t *testing.T) {
	leaves := mkLeaves(4)
	if _, err := Prove(leaves, -1); err == nil {
		t.Fatal("expected error for negative index")
	}
	if _, err := Prove(leaves, 4); err == nil {
		t.Fatal("expected error for index == len")
	}
}

func TestNilAndMalformedProofRejected(t *testing.T) {
	var p *Proof
	if p.Verify(crypto.ZeroHash) {
		t.Fatal("nil proof verified")
	}
	bad := &Proof{Siblings: make([]crypto.Hash, 2), Lefts: make([]bool, 1)}
	if bad.Verify(crypto.ZeroHash) {
		t.Fatal("length-mismatched proof verified")
	}
	if p.Clone() != nil {
		t.Fatal("nil clone should be nil")
	}
}

func TestLeafInteriorDomainSeparation(t *testing.T) {
	// An interior node value presented as a leaf must not verify: the
	// prefixes make leaf and node hash spaces disjoint.
	l0 := LeafHash([]byte("a"))
	l1 := LeafHash([]byte("b"))
	interior := crypto.Sum([]byte{0x01}, l0[:], l1[:])
	if LeafHash(append(append([]byte{}, l0[:]...), l1[:]...)) == interior {
		t.Fatal("leaf and interior hashing are not domain separated")
	}
}

func TestProofCloneIndependent(t *testing.T) {
	leaves := mkLeaves(8)
	p, _ := Prove(leaves, 5)
	c := p.Clone()
	c.Siblings[0] = crypto.ZeroHash
	c.Lefts[0] = !c.Lefts[0]
	if p.Siblings[0] == crypto.ZeroHash {
		t.Fatal("clone aliases siblings")
	}
}

func TestPropertyProofRoundTrip(t *testing.T) {
	f := func(payloads [][]byte, idx uint8) bool {
		if len(payloads) == 0 {
			return true
		}
		leaves := make([]crypto.Hash, len(payloads))
		for i, d := range payloads {
			leaves[i] = LeafHash(d)
		}
		root := Root(leaves)
		i := int(idx) % len(payloads)
		p, err := Prove(leaves, i)
		if err != nil {
			return false
		}
		return p.Verify(root) && p.VerifyData(root, payloads[i])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyDistinctLeavesDistinctRoots(t *testing.T) {
	f := func(a, b [][]byte) bool {
		if len(a) == 0 || len(b) == 0 {
			return true
		}
		same := len(a) == len(b)
		if same {
			for i := range a {
				if string(a[i]) != string(b[i]) {
					same = false
					break
				}
			}
		}
		if same {
			return true
		}
		return RootOfData(a) != RootOfData(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
