// Package load parses and type-checks Go packages for ac3lint without
// depending on golang.org/x/tools/go/packages. Package metadata comes
// from one `go list -deps -json` invocation; everything in the
// dependency closure — including the standard library — is
// type-checked from source, so the loader works in a hermetic build
// environment with no compiled export data and no module downloads.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listPkg mirrors the subset of `go list -json` output we consume.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
	CgoFiles   []string
	Imports    []string
	ImportMap  map[string]string
	Error      *listErr
}

type listErr struct {
	Err string
}

// Loader type-checks packages on demand, memoizing by import path.
// Each import path is checked exactly once, so every consumer sees a
// single *types.Package identity — a package that is both a lint
// target and a dependency of another target is checked with full
// syntax/type info the one time.
type Loader struct {
	Fset     *token.FileSet
	metas    map[string]*listPkg
	pkgs     map[string]*types.Package
	full     map[string]*Package
	wantFull map[string]bool
	dir      string // working directory for `go list` (module root context)
}

// NewLoader returns an empty loader that resolves `go list` queries
// from dir (any directory inside the module works; "" means the
// current directory).
func NewLoader(dir string) *Loader {
	return &Loader{
		Fset:     token.NewFileSet(),
		metas:    make(map[string]*listPkg),
		pkgs:     make(map[string]*types.Package),
		full:     make(map[string]*Package),
		wantFull: make(map[string]bool),
		dir:      dir,
	}
}

// Load resolves patterns (e.g. "./...") to packages and type-checks
// each matched package with full syntax and type information.
// Dependencies are type-checked as needed but not returned.
func Load(dir string, patterns ...string) ([]*Package, error) {
	ld := NewLoader(dir)
	if err := ld.fetchMeta(append([]string{"-deps"}, patterns...)); err != nil {
		return nil, err
	}
	var roots []*listPkg
	for _, m := range ld.metas {
		if !m.DepOnly && !m.Standard {
			roots = append(roots, m)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })
	for _, m := range roots {
		ld.wantFull[m.ImportPath] = true
	}
	out := make([]*Package, 0, len(roots))
	for _, m := range roots {
		if _, err := ld.ensure(m.ImportPath); err != nil {
			return nil, err
		}
		out = append(out, ld.full[m.ImportPath])
	}
	return out, nil
}

// LoadDir type-checks the .go files of one directory as a package with
// the given import path, resolving its imports through the loader.
// The analyzer test harness uses this to present a testdata directory
// as if it lived at any chosen path in the module (scope rules key off
// import paths).
func (ld *Loader) LoadDir(dir, importPath string) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("load: no .go files in %s", dir)
	}
	imports := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(ld.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
		for _, imp := range f.Imports {
			p, _ := strconv.Unquote(imp.Path.Value)
			if p != "" && p != "C" {
				imports[p] = true
			}
		}
	}
	if err := ld.ensureMeta(sortedKeys(imports)); err != nil {
		return nil, err
	}
	info := newInfo()
	conf := ld.config(nil)
	tpkg, err := conf.Check(importPath, ld.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", dir, err)
	}
	return &Package{ImportPath: importPath, Dir: dir, Fset: ld.Fset, Files: files, Types: tpkg, Info: info}, nil
}

// ensureMeta fetches `go list` metadata for any of the given import
// paths (and their dependency closures) not already known.
func (ld *Loader) ensureMeta(paths []string) error {
	var missing []string
	for _, p := range paths {
		if p == "unsafe" {
			continue
		}
		if _, ok := ld.metas[p]; !ok {
			missing = append(missing, p)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	return ld.fetchMeta(append([]string{"-deps"}, missing...))
}

func (ld *Loader) fetchMeta(args []string) error {
	cmd := exec.Command("go", append([]string{"list", "-e", "-json=ImportPath,Name,Dir,Standard,DepOnly,GoFiles,CgoFiles,Imports,ImportMap,Error"}, args...)...)
	cmd.Dir = ld.dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("load: go list: %v: %s", err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var m listPkg
		if err := dec.Decode(&m); err == io.EOF {
			break
		} else if err != nil {
			return fmt.Errorf("load: decoding go list output: %v", err)
		}
		if prev, ok := ld.metas[m.ImportPath]; ok {
			// Keep the root (non-DepOnly) view if we have both.
			if prev.DepOnly && !m.DepOnly {
				ld.metas[m.ImportPath] = &m
			}
			continue
		}
		mm := m
		ld.metas[m.ImportPath] = &mm
	}
	return nil
}

// ensure returns the type-checked (interface-only) package for path.
func (ld *Loader) ensure(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := ld.pkgs[path]; ok {
		return p, nil
	}
	m, ok := ld.metas[path]
	if !ok {
		if err := ld.ensureMeta([]string{path}); err != nil {
			return nil, err
		}
		if m, ok = ld.metas[path]; !ok {
			return nil, fmt.Errorf("load: no metadata for %q", path)
		}
	}
	if m.Error != nil {
		return nil, fmt.Errorf("load: %s: %s", path, m.Error.Err)
	}
	files, err := ld.parse(m)
	if err != nil {
		return nil, err
	}
	var info *types.Info
	if ld.wantFull[path] {
		info = newInfo()
	}
	conf := ld.config(m.ImportMap)
	tpkg, err := conf.Check(path, ld.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("load: type-checking %s: %w", path, err)
	}
	ld.pkgs[path] = tpkg
	if info != nil {
		ld.full[path] = &Package{ImportPath: path, Dir: m.Dir, Fset: ld.Fset, Files: files, Types: tpkg, Info: info}
	}
	return tpkg, nil
}

func (ld *Loader) parse(m *listPkg) ([]*ast.File, error) {
	if len(m.CgoFiles) > 0 {
		return nil, fmt.Errorf("load: %s uses cgo, which this loader does not support", m.ImportPath)
	}
	files := make([]*ast.File, 0, len(m.GoFiles))
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(ld.Fset, filepath.Join(m.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (ld *Loader) config(importMap map[string]string) *types.Config {
	return &types.Config{
		Importer:    &mappedImporter{ld: ld, importMap: importMap},
		FakeImportC: true,
		// The standard library type-checks cleanly from source; any
		// error in our own packages must surface, so no Error hook.
	}
}

// mappedImporter resolves an import string through the importing
// package's vendor map (std vendors some golang.org/x repos) and then
// through the loader.
type mappedImporter struct {
	ld        *Loader
	importMap map[string]string
}

func (mi *mappedImporter) Import(path string) (*types.Package, error) {
	if mapped, ok := mi.importMap[path]; ok {
		path = mapped
	}
	return mi.ld.ensure(path)
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
