package attack

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestPaperExampleMinDepth(t *testing.T) {
	// Section 6.3: Va=$1M on Bitcoin (Ch=$300K/h, dh=6) requires
	// d > 20, i.e. 21 confirmations.
	btc := Crypto51Snapshot[0]
	if d := MinDepth(1_000_000, btc); d != 21 {
		t.Fatalf("MinDepth($1M, BTC) = %d, want 21", d)
	}
}

func TestMinDepthMonotonicInValue(t *testing.T) {
	btc := Crypto51Snapshot[0]
	prev := 0
	for _, va := range []float64{10_000, 100_000, 1_000_000, 10_000_000} {
		d := MinDepth(va, btc)
		if d < prev {
			t.Fatalf("MinDepth not monotone: %v -> %d after %d", va, d, prev)
		}
		prev = d
	}
	if MinDepth(0, btc) != 1 || MinDepth(-5, btc) != 1 {
		t.Fatal("non-positive value should need depth 1")
	}
}

func TestAttackCostExceedsValueAtMinDepth(t *testing.T) {
	// The defining property of MinDepth: attacking for d blocks costs
	// more than the assets at stake; at d-1 it may not.
	for _, n := range Crypto51Snapshot {
		for _, va := range []float64{5_000, 250_000, 2_000_000} {
			d := MinDepth(va, n)
			if AttackCostUSD(d, n) <= va {
				t.Fatalf("%s: cost(%d)=%.0f <= Va=%.0f", n.Name, d, AttackCostUSD(d, n), va)
			}
		}
	}
}

func TestSuccessProbabilityShape(t *testing.T) {
	// Monotone decreasing in depth, increasing in q; 1 at q>=0.5.
	for _, q := range []float64{0.1, 0.25, 0.4} {
		prev := 1.1
		for z := 1; z <= 12; z++ {
			p := SuccessProbability(q, z)
			if p < 0 || p > 1 {
				t.Fatalf("q=%v z=%d: p=%v out of range", q, z, p)
			}
			if p > prev+1e-12 {
				t.Fatalf("q=%v: probability not decreasing in depth", q)
			}
			prev = p
		}
	}
	if SuccessProbability(0.51, 100) != 1 {
		t.Fatal("majority attacker must always succeed")
	}
	if SuccessProbability(0, 1) != 0 {
		t.Fatal("powerless attacker must never succeed")
	}
	if SuccessProbability(0.3, 0) != 1 {
		t.Fatal("zero confirmations cannot protect")
	}
	// Nakamoto's table: q=0.1, z=6 → ≈0.0002 (paper's 6-block rule).
	if p := SuccessProbability(0.1, 6); math.Abs(p-0.0002) > 0.0002 {
		t.Fatalf("q=0.1 z=6: p=%v, want ≈0.0002", p)
	}
}

func TestSimulatedRaceMatchesAnalytic(t *testing.T) {
	rng := sim.NewRNG(12345)
	for _, tc := range []struct {
		q float64
		d int
	}{
		{0.20, 2},
		{0.30, 4},
		{0.40, 6},
	} {
		res := SimulateRace(rng, tc.q, tc.d, 200_000, 160)
		exact := SuccessProbabilityExact(tc.q, tc.d+1)
		// The simulator implements the exact race (the attacker must
		// orphan the decision block plus its d burials, z = d+1).
		if math.Abs(res.Rate-exact) > 0.005+exact*0.05 {
			t.Fatalf("q=%v d=%d: simulated %.4f, exact %.4f", tc.q, tc.d, res.Rate, exact)
		}
		// Nakamoto's Poisson approximation tracks the exact value
		// closely at these depths (it diverges only in deep tails).
		nak := SuccessProbability(tc.q, tc.d+1)
		if math.Abs(nak-exact) > 0.02+exact*0.2 {
			t.Fatalf("q=%v d=%d: Nakamoto %.4f far from exact %.4f", tc.q, tc.d, nak, exact)
		}
	}
}

func TestRaceVanishesWithDepth(t *testing.T) {
	// Lemma 5.3's ε: at fixed attacker power, deeper confirmation
	// drives the success rate toward zero.
	rng := sim.NewRNG(777)
	prev := 1.1
	for _, d := range []int{0, 2, 4, 8} {
		r := SimulateRace(rng, 0.3, d, 100_000, 80)
		if r.Rate > prev+0.01 {
			t.Fatalf("success rate not shrinking: d=%d rate=%v prev=%v", d, r.Rate, prev)
		}
		prev = r.Rate
	}
	// At depth 24 a 30% attacker succeeds well below 1% of the time;
	// the exact (Rosenfeld) probability is the reference.
	deep := SimulateRace(rng, 0.3, 24, 200_000, 160)
	exact := SuccessProbabilityExact(0.3, 25)
	if deep.Rate > 0.01 {
		t.Fatalf("24-deep confirmation still attacked at rate %v (exact %v)", deep.Rate, exact)
	}
	if math.Abs(deep.Rate-exact) > 0.001+exact*0.35 {
		t.Fatalf("simulated %v too far from exact %v", deep.Rate, exact)
	}
	if deep.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestMajorityAttackerAlwaysWinsRace(t *testing.T) {
	rng := sim.NewRNG(42)
	r := SimulateRace(rng, 0.6, 6, 5_000, 400)
	if r.Rate < 0.99 {
		t.Fatalf("majority attacker succeeded only %v", r.Rate)
	}
}

func TestCrypto51SnapshotSane(t *testing.T) {
	if len(Crypto51Snapshot) != 4 {
		t.Fatal("expected the top-4 networks")
	}
	for _, n := range Crypto51Snapshot {
		if n.HourlyCostUSD <= 0 || n.BlocksPerHour <= 0 || n.Name == "" {
			t.Fatalf("bad entry %+v", n)
		}
	}
	// Attacking Bitcoin must cost more per block than Bitcoin Cash —
	// the reason witness choice matters.
	btc, bch := Crypto51Snapshot[0], Crypto51Snapshot[3]
	if AttackCostUSD(6, btc) <= AttackCostUSD(6, bch) {
		t.Fatal("cost ordering violated")
	}
}
