// Package p2p simulates the message-passing layer of Section 2.1:
// end-users multicast transactions to mining nodes, and miners gossip
// blocks to each other, over links with configurable delay and loss.
// Crash failures, recoveries, network partitions, and adversarial
// link conditions — the asynchronous-environment hazards the paper's
// introduction motivates — are injected here.
//
// Adversity model (see ADR-005):
//
//   - a LatencyModel carries a base delay, a jitter bound, and a
//     per-message loss probability; LAN/WAN/Geo presets describe the
//     heterogeneous link classes cross-chain deployments actually see;
//   - overlays (PushOverlay) raise the effective link conditions
//     temporarily with worst-wins semantics, so overlapping adversity
//     windows compose deterministically in any order;
//   - SchedulePartition installs timed partition/heal windows on the
//     simulator clock, with an epoch guard so a superseding partition
//     is not un-done by an older window's heal;
//   - every loss draw comes from the network's own forked RNG, so runs
//     remain a pure function of the seed regardless of worker count.
package p2p

import (
	"fmt"

	"repro/internal/sim"
)

// NodeID identifies a network endpoint (miner or client).
type NodeID int

// Handler consumes a delivered message.
type Handler func(from NodeID, payload any)

// LatencyModel samples a one-way link delay and a per-message loss
// probability.
type LatencyModel struct {
	// Base is the minimum propagation delay.
	Base sim.Time
	// Jitter adds a uniform random extra in [0, Jitter).
	Jitter sim.Time
	// Loss is the probability in [0, 1) that a message is dropped in
	// flight. Zero-loss links consume no extra randomness, so enabling
	// loss on one network never perturbs another's draws.
	Loss float64
}

// Link-class presets: the heterogeneous conditions cross-chain
// deployments see. Base/jitter scales are chosen against the 10s
// block interval the experiments run at — Geo links make concurrent
// blocks (and therefore forks and confirmation-depth races) routine.
func LANLink() LatencyModel { return LatencyModel{Base: 5, Jitter: 20} }

// WANLink models continental links.
func WANLink() LatencyModel { return LatencyModel{Base: 150, Jitter: 350} }

// GeoLink models intercontinental gossip: propagation is a
// significant fraction of the block interval.
func GeoLink() LatencyModel { return LatencyModel{Base: 800, Jitter: 1700} }

// Sample draws a delay.
func (l LatencyModel) Sample(rng *sim.RNG) sim.Time {
	d := l.Base
	if l.Jitter > 0 {
		d += rng.Int63n(l.Jitter)
	}
	if d < 0 {
		d = 0
	}
	return d
}

// worse folds o into l with worst-wins semantics per field.
func (l LatencyModel) worse(o LatencyModel) LatencyModel {
	if o.Base > l.Base {
		l.Base = o.Base
	}
	if o.Jitter > l.Jitter {
		l.Jitter = o.Jitter
	}
	if o.Loss > l.Loss {
		l.Loss = o.Loss
	}
	return l
}

// Overlay is a removable adversity window pushed onto a network: while
// installed, the network's effective link model is the worst of the
// base model and every live overlay, field by field. Worst-wins makes
// overlapping windows commutative — the effective conditions do not
// depend on installation order, only on which overlays are live.
type Overlay struct {
	net     *Network
	model   LatencyModel
	removed bool
}

// Remove retires the overlay. Idempotent.
func (o *Overlay) Remove() {
	if o == nil || o.removed {
		return
	}
	o.removed = true
	live := o.net.overlays[:0]
	for _, ov := range o.net.overlays {
		if !ov.removed {
			live = append(live, ov)
		}
	}
	o.net.overlays = live
}

// Network is a simulated broadcast network of registered nodes.
type Network struct {
	sim     *sim.Sim
	rng     *sim.RNG
	latency LatencyModel

	handlers map[NodeID]Handler
	order    []NodeID // registration order, for deterministic broadcast
	crashed  map[NodeID]bool
	group    map[NodeID]int // partition group; nodes in different groups cannot talk

	overlays []*Overlay
	// partEpoch increments on every partition-topology change; a
	// scheduled heal fires only if its own partition is still the
	// latest, so overlapping windows never un-split a newer partition.
	partEpoch uint64

	// Sent and Delivered count messages for diagnostics. Dropped
	// counts messages that were sent but never delivered — lost to the
	// loss model, to a partition, or to a crashed endpoint.
	Sent      uint64
	Delivered uint64
	Dropped   uint64
}

// NewNetwork creates a network on the given simulator.
func NewNetwork(s *sim.Sim, latency LatencyModel) *Network {
	return &Network{
		sim:      s,
		rng:      s.RNG().Fork(),
		latency:  latency,
		handlers: make(map[NodeID]Handler),
		crashed:  make(map[NodeID]bool),
		group:    make(map[NodeID]int),
	}
}

// Register attaches a node's handler. Registering an id twice panics.
func (n *Network) Register(id NodeID, h Handler) {
	if h == nil {
		panic("p2p: nil handler")
	}
	if _, dup := n.handlers[id]; dup {
		panic(fmt.Sprintf("p2p: node %d registered twice", id))
	}
	n.handlers[id] = h
	n.order = append(n.order, id)
}

// Nodes returns the registered node ids in registration order.
func (n *Network) Nodes() []NodeID {
	return append([]NodeID(nil), n.order...)
}

// Latency returns the network's base link model (without overlays).
// Temporary changes go through overlays, which compose and remove
// cleanly; the base model is fixed at construction.
func (n *Network) Latency() LatencyModel { return n.latency }

// PushOverlay installs an adversity window and returns its handle;
// the caller removes it when the window closes. See Overlay.
func (n *Network) PushOverlay(m LatencyModel) *Overlay {
	o := &Overlay{net: n, model: m}
	n.overlays = append(n.overlays, o)
	return o
}

// Effective returns the link model currently in force: the base model
// worsened by every live overlay.
func (n *Network) Effective() LatencyModel {
	m := n.latency
	for _, o := range n.overlays {
		m = m.worse(o.model)
	}
	return m
}

// reachable reports whether a message from a to b would currently be
// delivered (both alive, same partition group).
func (n *Network) reachable(a, b NodeID) bool {
	if n.crashed[a] || n.crashed[b] {
		return false
	}
	return n.group[a] == n.group[b]
}

// Reachable reports whether a and b can currently exchange messages:
// both alive and in the same partition group. End-user layers consult
// it so their multicasts respect the same connectivity model the
// gossip does — a client cannot hand a transaction to a miner on the
// far side of a partition.
func (n *Network) Reachable(a, b NodeID) bool { return n.reachable(a, b) }

// Send delivers payload from 'from' to 'to' after a sampled delay.
// Messages to crashed or partitioned-away nodes are dropped at send
// time; messages in flight when the receiver crashes — or when a
// partition forms between send and delivery — are dropped at delivery
// time (no delayed replay — crash-stop semantics). A message in
// flight across a heal boundary is delivered: it was sent while the
// endpoints could talk, and they can talk again when it lands. Lossy
// links (effective Loss > 0) additionally drop each message with the
// configured probability, drawn from the network's forked RNG.
func (n *Network) Send(from, to NodeID, payload any) {
	n.Sent++
	if !n.reachable(from, to) {
		n.Dropped++
		return
	}
	if _, ok := n.handlers[to]; !ok {
		n.Dropped++
		return
	}
	eff := n.Effective()
	if eff.Loss > 0 && n.rng.Float64() < eff.Loss {
		n.Dropped++
		return
	}
	delay := eff.Sample(n.rng)
	n.sim.After(delay, func() {
		if n.crashed[to] || !n.reachable(from, to) {
			n.Dropped++
			return
		}
		n.Delivered++
		n.handlers[to](from, payload)
	})
}

// Broadcast sends payload from 'from' to every other registered node.
func (n *Network) Broadcast(from NodeID, payload any) {
	for _, id := range n.order {
		if id == from {
			continue
		}
		n.Send(from, id, payload)
	}
}

// Crash stops a node: it receives nothing until Recover. In-flight
// messages to it are lost.
func (n *Network) Crash(id NodeID) { n.crashed[id] = true }

// Recover restarts a crashed node. It resumes receiving new messages;
// anything sent while it was down is gone (clients must re-poll or
// resubmit, as real wallets do).
func (n *Network) Recover(id NodeID) { delete(n.crashed, id) }

// Crashed reports whether a node is currently down.
func (n *Network) Crashed(id NodeID) bool { return n.crashed[id] }

// Partition splits the network into groups; nodes in different groups
// cannot exchange messages. Nodes not mentioned in any group stay in
// group 0 together — a node absent from every group is partitioned
// away from every listed group, not from the other absentees.
func (n *Network) Partition(groups ...[]NodeID) {
	n.partEpoch++
	n.group = make(map[NodeID]int)
	for gi, g := range groups {
		for _, id := range g {
			n.group[id] = gi + 1
		}
	}
}

// Heal removes all partitions.
func (n *Network) Heal() {
	n.partEpoch++
	n.group = make(map[NodeID]int)
}

// Partitioned reports whether any partition is currently in force.
func (n *Network) Partitioned() bool { return len(n.group) > 0 }

// SchedulePartition installs a timed partition window on the
// simulator clock: the network splits into groups at time at (clamped
// to now) and heals dur later — unless another partition or heal
// superseded this window meanwhile, in which case the stale heal is
// skipped. Overlapping windows do not compose: the most recent
// topology change always wins, so a later window replaces the split
// and its heal ends it — truncating an earlier longer window (the
// earlier heal, now stale, is skipped) just as a later longer window
// extends a shorter one. This is the engine's hook for scripted
// decision-window splits: windows are ordinary simulator events, so
// two runs with the same seed partition and heal at identical
// virtual instants.
func (n *Network) SchedulePartition(at, dur sim.Time, groups ...[]NodeID) {
	if at < n.sim.Now() {
		at = n.sim.Now()
	}
	if dur < 0 {
		dur = 0
	}
	n.sim.At(at, func() {
		n.Partition(groups...)
		epoch := n.partEpoch
		n.sim.After(dur, func() {
			if n.partEpoch == epoch {
				n.Heal()
			}
		})
	})
}

// ScheduleIsolation is the common split every adversity driver wants:
// node k (modulo the registered node count) alone against everyone
// else, as a SchedulePartition window. Isolating one replica starves
// whichever clients read through it while the majority keeps the
// chain moving — the heal then forces the minority's private fork
// through a deep reorg.
func (n *Network) ScheduleIsolation(at, dur sim.Time, k int) {
	if len(n.order) < 2 {
		return // nothing to split
	}
	if k %= len(n.order); k < 0 {
		k += len(n.order)
	}
	minority := []NodeID{n.order[k]}
	majority := make([]NodeID, 0, len(n.order)-1)
	majority = append(majority, n.order[:k]...)
	majority = append(majority, n.order[k+1:]...)
	n.SchedulePartition(at, dur, minority, majority)
}
