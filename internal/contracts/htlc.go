package contracts

import (
	"errors"
	"fmt"

	"repro/internal/crypto"
	"repro/internal/vm"
)

// HTLCParams are the constructor parameters of an HTLC deployment.
// The sender and locked asset come from the deployment message
// (msg.sender, msg.value).
type HTLCParams struct {
	// Recipient receives the asset on redemption.
	Recipient crypto.Address
	// Hashlock is h = H(s); Redeem requires the preimage s.
	Hashlock crypto.Hash
	// Timelock is the absolute (virtual, milliseconds) time after
	// which Refund becomes available and Redeem stops being accepted.
	Timelock int64
}

// HTLC is the hashlock/timelock contract of Nolan's protocol and
// Herlihy's generalization: assets transfer to the recipient against
// the hash secret before the timelock, and refund to the sender after
// it. The timelock is exactly the mechanism whose expiry violates
// all-or-nothing atomicity for crashed participants (Section 1's
// case against the current proposals); the AC3WN contracts in this
// package exist to remove it.
type HTLC struct {
	Sender    crypto.Address
	Recipient crypto.Address
	Asset     vm.Amount
	Hashlock  crypto.Hash
	Timelock  int64
	State     SwapState
}

// Type implements vm.Contract.
func (h *HTLC) Type() string { return TypeHTLC }

// Init implements the Algorithm 1 constructor with hashlock schemes.
func (h *HTLC) Init(ctx *vm.Ctx, params []byte) error {
	var p HTLCParams
	if err := vm.DecodeGob(params, &p); err != nil {
		return fmt.Errorf("htlc: params: %w", err)
	}
	if p.Recipient.IsZero() {
		return errors.New("htlc: zero recipient")
	}
	if ctx.Msg.Value == 0 {
		return errors.New("htlc: no asset locked")
	}
	if p.Timelock <= ctx.Time {
		return errors.New("htlc: timelock not in the future")
	}
	h.Sender = ctx.Msg.Sender
	h.Recipient = p.Recipient
	h.Asset = ctx.Msg.Value
	h.Hashlock = p.Hashlock
	h.Timelock = p.Timelock
	h.State = StatePublished
	return nil
}

// Call dispatches redeem/refund.
func (h *HTLC) Call(ctx *vm.Ctx, fn string, args []byte) error {
	switch fn {
	case FnRedeem:
		return h.redeem(ctx, args)
	case FnRefund:
		return h.refund(ctx)
	default:
		return vm.ErrUnknownFunction(TypeHTLC, fn)
	}
}

// redeem pays the recipient if the preimage matches before expiry.
func (h *HTLC) redeem(ctx *vm.Ctx, secret []byte) error {
	if h.State != StatePublished {
		return fmt.Errorf("htlc: redeem in state %s", h.State)
	}
	if ctx.Time >= h.Timelock {
		return errors.New("htlc: timelock expired")
	}
	if crypto.Sum(secret) != h.Hashlock {
		return errors.New("htlc: wrong secret")
	}
	if err := ctx.Pay(h.Recipient, h.Asset); err != nil {
		return err
	}
	h.State = StateRedeemed
	return nil
}

// refund returns the asset to the sender after expiry. Anyone may
// trigger it; the asset always goes back to the sender.
func (h *HTLC) refund(ctx *vm.Ctx) error {
	if h.State != StatePublished {
		return fmt.Errorf("htlc: refund in state %s", h.State)
	}
	if ctx.Time < h.Timelock {
		return errors.New("htlc: timelock not yet expired")
	}
	if err := ctx.Pay(h.Sender, h.Asset); err != nil {
		return err
	}
	h.State = StateRefunded
	return nil
}

// Clone implements vm.Contract.
func (h *HTLC) Clone() vm.Contract { cp := *h; return &cp }
