// Package spv implements the cross-chain evidence validation of
// Section 4.3: a validator (a contract, or the miners of another
// blockchain) verifies that a transaction took place in a validated
// blockchain without maintaining a copy of it.
//
// The package provides the paper's proposed technique — a stable-block
// checkpoint stored in the validator, plus submitted evidence carrying
// the header chain from that checkpoint through the block of interest
// and d confirmation blocks, each header's proof of work verified, and
// a Merkle inclusion proof of the transaction — together with the two
// alternatives the paper discusses (full replication and light nodes)
// so they can be compared.
package spv

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/merkle"
)

// Evidence proves that a transaction occurred in a validated
// blockchain and is buried at least Depth blocks deep. It is entirely
// self-contained: verification needs only the validator's stored
// checkpoint header, no access to the validated chain.
type Evidence struct {
	// ChainID of the validated blockchain.
	ChainID chain.ID
	// Headers is the canonical header chain starting at the child of
	// the checkpoint and ending at the validated chain's tip, oldest
	// first. It must connect hash-to-hash and each header must meet
	// its proof-of-work target.
	Headers []*chain.Header
	// TxIndexInBlock and TxBlockOffset locate the transaction: the
	// block at Headers[TxBlockOffset] contains it at index
	// TxIndexInBlock.
	TxBlockOffset int
	// TxBytes is the full encoded transaction (the verifier decodes
	// and inspects it — e.g. the witness contract checks an asset
	// contract's constructor parameters).
	TxBytes []byte
	// Proof is the Merkle inclusion proof of the transaction id under
	// the block's TxRoot.
	Proof *merkle.Proof
}

// Verification errors.
var (
	ErrBadEvidence = errors.New("spv: invalid evidence")
)

func evErr(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrBadEvidence, fmt.Sprintf(format, args...))
}

// Verify checks the evidence against a trusted checkpoint header (the
// "stable block" stored in the validator smart contract) and a
// required confirmation depth d. On success it returns the decoded
// transaction of interest.
//
// Checks, in the order the paper gives them: the headers follow the
// checkpoint hash-to-hash; each header's proof of work is valid; the
// transaction is Merkle-included in one of them; and that block is
// buried under at least minDepth following headers.
func (e *Evidence) Verify(checkpoint *chain.Header, minDepth int) (*chain.Tx, error) {
	if e == nil || checkpoint == nil {
		return nil, evErr("missing evidence or checkpoint")
	}
	if e.ChainID != checkpoint.ChainID {
		return nil, evErr("evidence for chain %q, checkpoint for %q", e.ChainID, checkpoint.ChainID)
	}
	if len(e.Headers) == 0 {
		return nil, evErr("no headers")
	}
	prevHash := checkpoint.Hash()
	prevHeight := checkpoint.Height
	for i, h := range e.Headers {
		if h.ChainID != e.ChainID {
			return nil, evErr("header %d from chain %q", i, h.ChainID)
		}
		if h.Parent != prevHash {
			return nil, evErr("header %d does not link to its parent", i)
		}
		if h.Height != prevHeight+1 {
			return nil, evErr("header %d height %d, want %d", i, h.Height, prevHeight+1)
		}
		if !h.CheckPoW() {
			return nil, evErr("header %d fails proof of work", i)
		}
		prevHash = h.Hash()
		prevHeight = h.Height
	}
	if e.TxBlockOffset < 0 || e.TxBlockOffset >= len(e.Headers) {
		return nil, evErr("tx block offset %d out of range", e.TxBlockOffset)
	}
	depth := len(e.Headers) - 1 - e.TxBlockOffset
	if depth < minDepth {
		return nil, evErr("tx buried %d deep, need %d", depth, minDepth)
	}
	tx, err := chain.DecodeTx(e.TxBytes)
	if err != nil {
		return nil, evErr("tx bytes: %v", err)
	}
	id := tx.ID()
	if !e.Proof.VerifyData(e.Headers[e.TxBlockOffset].TxRoot, id[:]) {
		return nil, evErr("merkle proof fails for tx %s", id)
	}
	return tx, nil
}

// Build assembles evidence for txID from a node's chain view, anchored
// at the given checkpoint block hash (which must be canonical). It
// fails if the transaction is not canonical, not a descendant of the
// checkpoint, or not yet buried minDepth deep — the caller should wait
// and retry, exactly as a participant waits for stability before
// submitting evidence.
func Build(view *chain.Chain, checkpointHash crypto.Hash, txID crypto.Hash, minDepth int) (*Evidence, error) {
	cp, ok := view.Block(checkpointHash)
	if !ok || !view.IsCanonical(checkpointHash) {
		return nil, evErr("checkpoint %s not on canonical chain", checkpointHash)
	}
	b, txIdx, ok := view.FindTx(txID)
	if !ok {
		return nil, evErr("tx %s not on canonical chain", txID)
	}
	if b.Header.Height <= cp.Header.Height {
		return nil, evErr("tx block at height %d not after checkpoint %d", b.Header.Height, cp.Header.Height)
	}
	depth, _ := view.DepthOf(b.Hash())
	if depth < minDepth {
		return nil, evErr("tx at depth %d, need %d", depth, minDepth)
	}
	headers, ok := view.HeadersFrom(checkpointHash)
	if !ok {
		return nil, evErr("cannot assemble headers from checkpoint")
	}
	proof, err := b.ProveTx(txIdx)
	if err != nil {
		return nil, evErr("prove tx: %v", err)
	}
	return &Evidence{
		ChainID:       view.Params().ID,
		Headers:       headers,
		TxBlockOffset: int(b.Header.Height - cp.Header.Height - 1),
		TxBytes:       b.Txs[txIdx].Encode(),
		Proof:         proof,
	}, nil
}

// Encode serializes evidence for embedding in a contract-call
// argument. Contracts receive opaque bytes, mirroring calldata.
func (e *Evidence) Encode() []byte {
	var buf bytes.Buffer
	var u32 [4]byte
	writeBytes := func(b []byte) {
		binary.BigEndian.PutUint32(u32[:], uint32(len(b)))
		buf.Write(u32[:])
		buf.Write(b)
	}
	writeBytes([]byte(e.ChainID))
	binary.BigEndian.PutUint32(u32[:], uint32(len(e.Headers)))
	buf.Write(u32[:])
	for _, h := range e.Headers {
		writeBytes(h.Encode())
	}
	binary.BigEndian.PutUint32(u32[:], uint32(e.TxBlockOffset))
	buf.Write(u32[:])
	writeBytes(e.TxBytes)
	// Merkle proof.
	binary.BigEndian.PutUint32(u32[:], uint32(e.Proof.Index))
	buf.Write(u32[:])
	buf.Write(e.Proof.Leaf[:])
	binary.BigEndian.PutUint32(u32[:], uint32(len(e.Proof.Siblings)))
	buf.Write(u32[:])
	for i, s := range e.Proof.Siblings {
		buf.Write(s[:])
		if e.Proof.Lefts[i] {
			buf.WriteByte(1)
		} else {
			buf.WriteByte(0)
		}
	}
	return buf.Bytes()
}

// Decode reverses Encode.
func Decode(b []byte) (*Evidence, error) {
	r := &reader{b: b}
	e := &Evidence{}
	id, err := r.bytes()
	if err != nil {
		return nil, evErr("chain id: %v", err)
	}
	e.ChainID = chain.ID(id)
	nHeaders, err := r.u32()
	if err != nil {
		return nil, evErr("header count: %v", err)
	}
	if int(nHeaders) > len(b) {
		return nil, evErr("implausible header count %d", nHeaders)
	}
	for i := uint32(0); i < nHeaders; i++ {
		hb, err := r.bytes()
		if err != nil {
			return nil, evErr("header %d: %v", i, err)
		}
		h, err := chain.DecodeHeader(hb)
		if err != nil {
			return nil, evErr("header %d: %v", i, err)
		}
		e.Headers = append(e.Headers, h)
	}
	off, err := r.u32()
	if err != nil {
		return nil, evErr("tx offset: %v", err)
	}
	e.TxBlockOffset = int(off)
	if e.TxBytes, err = r.bytes(); err != nil {
		return nil, evErr("tx bytes: %v", err)
	}
	p := &merkle.Proof{}
	idx, err := r.u32()
	if err != nil {
		return nil, evErr("proof index: %v", err)
	}
	p.Index = int(idx)
	if err := r.hash(&p.Leaf); err != nil {
		return nil, evErr("proof leaf: %v", err)
	}
	nSib, err := r.u32()
	if err != nil {
		return nil, evErr("sibling count: %v", err)
	}
	if int(nSib) > len(b) {
		return nil, evErr("implausible sibling count %d", nSib)
	}
	for i := uint32(0); i < nSib; i++ {
		var h crypto.Hash
		if err := r.hash(&h); err != nil {
			return nil, evErr("sibling %d: %v", i, err)
		}
		side, err := r.u8()
		if err != nil {
			return nil, evErr("sibling side %d: %v", i, err)
		}
		p.Siblings = append(p.Siblings, h)
		p.Lefts = append(p.Lefts, side == 1)
	}
	e.Proof = p
	if r.remaining() != 0 {
		return nil, evErr("%d trailing bytes", r.remaining())
	}
	return e, nil
}

// reader is a bounds-checked decode cursor.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) remaining() int { return len(r.b) - r.pos }

func (r *reader) take(n int) ([]byte, error) {
	if n < 0 || r.remaining() < n {
		return nil, fmt.Errorf("truncated (need %d, have %d)", n, r.remaining())
	}
	out := r.b[r.pos : r.pos+n]
	r.pos += n
	return out, nil
}

func (r *reader) u8() (byte, error) {
	b, err := r.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) u32() (uint32, error) {
	b, err := r.take(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.u32()
	if err != nil {
		return nil, err
	}
	b, err := r.take(int(n))
	if err != nil {
		return nil, err
	}
	return append([]byte(nil), b...), nil
}

func (r *reader) hash(h *crypto.Hash) error {
	b, err := r.take(crypto.HashSize)
	if err != nil {
		return err
	}
	copy(h[:], b)
	return nil
}
