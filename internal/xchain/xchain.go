// Package xchain is the cross-chain runtime the protocol drivers
// (internal/swap for the Nolan/Herlihy baselines, internal/core for
// AC3TW and AC3WN) build on: a World of independent simulated
// blockchain networks sharing one virtual clock, Participants with a
// client on every chain, an off-chain announcement bus (participants
// exchanging contract locations, as any real swap does), and the
// Outcome bookkeeping the experiments grade — including the
// atomicity-violation check at the heart of the paper.
package xchain

import (
	"fmt"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/miner"
	"repro/internal/p2p"
	"repro/internal/sim"
	"repro/internal/vm"
)

// World is a set of blockchain networks on one simulator.
type World struct {
	Sim  *sim.Sim
	Nets map[chain.ID]*miner.Network
	ids  []chain.ID
}

// ChainSpec configures one chain of a world.
type ChainSpec struct {
	Params  chain.Params
	Miners  int
	Latency p2p.LatencyModel
}

// DefaultChainSpec is a convenient 3-miner chain with fast blocks for
// protocol tests.
func DefaultChainSpec(id chain.ID) ChainSpec {
	params := chain.DefaultParams(id)
	params.DifficultyBits = 6
	params.BlockInterval = 10 * sim.Second
	params.ConfirmDepth = 3
	return ChainSpec{
		Params:  params,
		Miners:  3,
		Latency: p2p.LatencyModel{Base: 100, Jitter: 200},
	}
}

// Builder assembles a World with funded participants.
type Builder struct {
	s            *sim.Sim
	specs        []ChainSpec
	participants []*Participant
	funding      map[string]map[chain.ID]vm.Amount
	rng          *sim.RNG
	msgLatency   sim.Time
}

// NewBuilder starts a world definition on a fresh simulator.
func NewBuilder(seed uint64) *Builder {
	return NewBuilderOn(sim.New(seed))
}

// NewBuilderOn starts a world definition on an existing simulator —
// typically one just Reset — so a harness executing many worlds in
// sequence (the engine's shard workers) can reuse one Sim value. The
// builder consumes entropy from the simulator's RNG, so a world built
// on a Reset(seed) sim is identical to one built with NewBuilder(seed).
func NewBuilderOn(s *sim.Sim) *Builder {
	return &Builder{
		s:          s,
		funding:    make(map[string]map[chain.ID]vm.Amount),
		rng:        s.RNG().Fork(),
		msgLatency: 200 * sim.Millisecond,
	}
}

// Sim exposes the simulator (for scheduling experiment events).
func (b *Builder) Sim() *sim.Sim { return b.s }

// Chain adds a blockchain network.
func (b *Builder) Chain(spec ChainSpec) *Builder {
	b.specs = append(b.specs, spec)
	return b
}

// Participant creates a named participant with a fresh identity.
func (b *Builder) Participant(name string) *Participant {
	p := &Participant{
		Name:    name,
		Key:     crypto.MustGenerateKey(crypto.NewRandReader(b.rng.Uint64)),
		clients: make(map[chain.ID]*miner.Client),
	}
	b.participants = append(b.participants, p)
	return p
}

// Fund allocates genesis balance to a participant on a chain.
func (b *Builder) Fund(p *Participant, id chain.ID, amount vm.Amount) *Builder {
	m, ok := b.funding[p.Name]
	if !ok {
		m = make(map[chain.ID]vm.Amount)
		b.funding[p.Name] = m
	}
	m[id] += amount
	return b
}

// Build wires the networks, attaches a client per participant per
// chain, starts mining on every chain, and returns the world.
func (b *Builder) Build() (*World, error) {
	w := &World{Sim: b.s, Nets: make(map[chain.ID]*miner.Network)}
	for _, spec := range b.specs {
		alloc := chain.GenesisAlloc{}
		for _, p := range b.participants {
			if amt := b.funding[p.Name][spec.Params.ID]; amt > 0 {
				alloc[p.Key.Addr] = amt
			}
		}
		reg := vm.NewRegistry()
		contracts.RegisterAll(reg)
		net, err := miner.NewNetwork(b.s, miner.Config{
			Params:   spec.Params,
			Miners:   spec.Miners,
			Latency:  spec.Latency,
			Alloc:    alloc,
			Registry: reg,
		})
		if err != nil {
			return nil, fmt.Errorf("xchain: chain %s: %w", spec.Params.ID, err)
		}
		net.Start()
		w.Nets[spec.Params.ID] = net
		w.ids = append(w.ids, spec.Params.ID)
	}
	bus := &Bus{s: b.s, latency: b.msgLatency}
	for i, p := range b.participants {
		p.world = w
		p.bus = bus
		p.busIdx = len(bus.members)
		bus.members = append(bus.members, p)
		for _, id := range w.ids {
			p.clients[id] = miner.NewClient(w.Nets[id], i%len(w.Nets[id].Nodes), p.Key)
		}
	}
	return w, nil
}

// Chains returns the world's chain ids in creation order.
func (w *World) Chains() []chain.ID { return append([]chain.ID(nil), w.ids...) }

// Net returns a chain's network.
func (w *World) Net(id chain.ID) *miner.Network { return w.Nets[id] }

// View returns node 0's chain view — the "ground truth" observers
// grade outcomes against after the network quiesces.
func (w *World) View(id chain.ID) *chain.Chain { return w.Nets[id].Node(0).Chain }

// Executor returns a chain's shared store: the per-network block DAG,
// state, and ApplyBlock result cache every node view reads through.
// Harnesses read its Stats to grade execution sharing.
func (w *World) Executor(id chain.ID) *chain.Executor { return w.Nets[id].Executor() }

// RunUntil advances virtual time.
func (w *World) RunUntil(t sim.Time) { w.Sim.RunUntil(t) }

// RunFor advances virtual time by d.
func (w *World) RunFor(d sim.Time) { w.Sim.RunUntil(w.Sim.Now() + d) }

// StopMining halts block production on every chain while keeping
// nodes alive and relaying (used to quiesce before grading).
func (w *World) StopMining() {
	for _, net := range w.Nets {
		for _, n := range net.Nodes {
			n.StopMining()
		}
	}
}

// Participant is an end-user taking part in AC2Ts: one identity, one
// client per chain, an off-chain inbox, and crash-stop semantics.
type Participant struct {
	Name string
	Key  *crypto.KeyPair

	world   *World
	bus     *Bus
	busIdx  int // slot in bus.members; -1 once retired
	clients map[chain.ID]*miner.Client
	inbox   func(from *Participant, msg any)
	crashed bool

	// Deploys and Calls count the on-chain operations this
	// participant paid for (the Section 6.2 cost model).
	Deploys int
	Calls   int
}

// Client returns the participant's client on a chain.
func (p *Participant) Client(id chain.ID) *miner.Client {
	c, ok := p.clients[id]
	if !ok {
		panic(fmt.Sprintf("xchain: %s has no client for chain %s", p.Name, id))
	}
	return c
}

// Addr is the participant's identity address (same on every chain).
func (p *Participant) Addr() crypto.Address { return p.Key.Addr }

// Crash stops the participant: all chain watches are canceled, the
// inbox goes deaf, submissions stop. On-chain state is unaffected —
// which is exactly why HTLC timelocks expire against crashed
// participants while AC3WN contracts wait for them.
func (p *Participant) Crash() {
	p.crashed = true
	for _, c := range p.clients {
		c.Halt()
	}
}

// Recover restores a crashed participant. The protocol driver must
// re-arm its watches (protocol resume logic).
func (p *Participant) Recover() {
	p.crashed = false
	for _, c := range p.clients {
		c.Restart()
	}
}

// Crashed reports whether the participant is down.
func (p *Participant) Crashed() bool { return p.crashed }

// Retire permanently releases the participant's runtime resources
// once its AC2T is graded: crash-stop if still up, close every chain
// client (idempotent and final — Recover/Restart after Close is a
// no-op), and leave the broadcast bus so the world no longer holds a
// reference. Retire schedules nothing and changes no chain state, so
// it is invisible to event ordering; it exists purely so a
// long-running engine shard's graded transactions become garbage
// instead of accumulating for the world's lifetime.
func (p *Participant) Retire() {
	if !p.crashed {
		p.Crash()
	}
	for _, c := range p.clients {
		c.Close()
	}
	p.inbox = nil
	if p.bus != nil {
		p.bus.remove(p)
		p.bus = nil
	}
	p.busIdx = -1
}

// OnMessage installs the off-chain inbox handler.
func (p *Participant) OnMessage(h func(from *Participant, msg any)) { p.inbox = h }

// Announce sends an off-chain message to every other participant
// (contract locations, abort notices — the coordination any real swap
// does over the internet).
func (p *Participant) Announce(msg any) {
	if p.crashed {
		return
	}
	p.bus.broadcast(p, msg)
}

// Tell sends an off-chain message to one participant.
func (p *Participant) Tell(to *Participant, msg any) {
	if p.crashed {
		return
	}
	p.bus.send(p, to, msg)
}

// Bus is the off-chain message channel between participants. Retired
// members leave their slot nil (preserving broadcast order for the
// survivors); the slice compacts once mostly dead, so a long-running
// world's bus holds live participants, not its full history.
type Bus struct {
	s       *sim.Sim
	latency sim.Time
	members []*Participant
	dead    int
}

func (b *Bus) send(from, to *Participant, msg any) {
	b.s.After(b.latency, func() {
		if to.crashed || to.inbox == nil {
			return
		}
		to.inbox(from, msg)
	})
}

func (b *Bus) broadcast(from *Participant, msg any) {
	for _, m := range b.members {
		if m != nil && m != from {
			b.send(from, m, msg)
		}
	}
}

// remove drops a retiring participant from the bus in O(1) via its
// recorded slot. Compaction preserves member order, so broadcast
// delivery order — and with it event scheduling — is unchanged.
func (b *Bus) remove(p *Participant) {
	if p.busIdx < 0 || p.busIdx >= len(b.members) || b.members[p.busIdx] != p {
		return
	}
	b.members[p.busIdx] = nil
	b.dead++
	if b.dead*2 > len(b.members) && len(b.members) >= 16 {
		kept := b.members[:0]
		for _, m := range b.members {
			if m != nil {
				m.busIdx = len(kept)
				kept = append(kept, m)
			}
		}
		// Zero the tail so retired pointers do not linger past the
		// compacted length.
		tail := b.members[len(kept):]
		for i := range tail {
			tail[i] = nil
		}
		b.members = kept
		b.dead = 0
	}
}

// EdgeOutcome grades one sub-transaction after a run.
type EdgeOutcome struct {
	Edge  graph.Edge
	State contracts.SwapState // P (stuck), RD, or RF
	// Deployed reports whether the asset contract ever appeared
	// on-chain.
	Deployed bool
}

// Outcome grades a whole AC2T run.
type Outcome struct {
	Edges []EdgeOutcome
	// Start/End bound the run; End is when the last contract reached
	// a terminal state (or the observation deadline).
	Start, End sim.Time
	// Deploys/Calls total the on-chain operations across all
	// participants (fee accounting, Section 6.2).
	Deploys, Calls int
}

// Committed reports all-redeemed.
func (o *Outcome) Committed() bool {
	if len(o.Edges) == 0 {
		return false
	}
	for _, e := range o.Edges {
		if e.State != contracts.StateRedeemed {
			return false
		}
	}
	return true
}

// Aborted reports all-refunded-or-never-deployed.
func (o *Outcome) Aborted() bool {
	if len(o.Edges) == 0 {
		return false
	}
	for _, e := range o.Edges {
		if e.Deployed && e.State != contracts.StateRefunded {
			return false
		}
	}
	return true
}

// AtomicityViolated reports the all-or-nothing failure the paper is
// about: some contract redeemed while another refunded (or stuck
// forever). A mix of RD and RF among deployed contracts is the hard
// violation; Pending contracts are graded by the caller's deadline
// semantics.
func (o *Outcome) AtomicityViolated() bool {
	rd, rf := 0, 0
	for _, e := range o.Edges {
		switch {
		case e.State == contracts.StateRedeemed:
			rd++
		case e.Deployed && e.State == contracts.StateRefunded:
			rf++
		}
	}
	return rd > 0 && rf > 0
}

// Latency returns End-Start.
func (o *Outcome) Latency() sim.Time { return o.End - o.Start }

// GradeGraph reads the terminal states of all asset contracts of an
// AC2T from ground-truth chain views. addrs maps edge index to the
// contract address (zero address = never announced/deployed).
func GradeGraph(w *World, g *graph.Graph, addrs []crypto.Address) *Outcome {
	out := &Outcome{}
	for i, e := range g.Edges {
		eo := EdgeOutcome{Edge: e}
		if i < len(addrs) && !addrs[i].IsZero() {
			view := w.View(e.Chain)
			if ct, ok := view.TipState().Contract(addrs[i]); ok {
				eo.Deployed = true
				eo.State = swapStateOf(ct)
			}
		}
		out.Edges = append(out.Edges, eo)
	}
	return out
}

// CountContractOps counts canonical-chain deployments of and calls to
// the given contracts. Because miners exclude failing transactions,
// these are exactly the operations participants paid fees for — the
// quantity Section 6.2's cost model is about. Served from the
// executor's contract-op index (O(ops), not O(chain height)), which
// pruning preserves for every block canonical in any live view.
func CountContractOps(view *chain.Chain, addrs map[crypto.Address]bool) (deploys, calls int) {
	return view.ContractOps(addrs)
}

// CountGraphOps totals CountContractOps over an AC2T's announced
// asset contracts, grouped per chain — the shared fee-accounting core
// behind every protocol's Grade.
func CountGraphOps(w *World, g *graph.Graph, addrs []crypto.Address) (deploys, calls int) {
	perChain := make(map[chain.ID]map[crypto.Address]bool)
	for i, e := range g.Edges {
		if i >= len(addrs) || addrs[i].IsZero() {
			continue
		}
		if perChain[e.Chain] == nil {
			perChain[e.Chain] = make(map[crypto.Address]bool)
		}
		perChain[e.Chain][addrs[i]] = true
	}
	for id, set := range perChain {
		d, c := CountContractOps(w.View(id), set)
		deploys += d
		calls += c
	}
	return deploys, calls
}

// AllSettled scans an AC2T's announced asset contracts on the
// ground-truth views: settled reports that every announced contract
// exists on-chain and has left Published (redeemed or refunded);
// deployed reports that at least one contract was announced and
// found. Never-announced edges (zero address) are skipped — they are
// the caller's decision-semantics problem. This is the shared
// quiescence core behind the protocol runners' Settled methods.
func AllSettled(w *World, g *graph.Graph, addrs []crypto.Address) (deployed, settled bool) {
	for i, e := range g.Edges {
		if i >= len(addrs) || addrs[i].IsZero() {
			continue
		}
		ct, ok := w.View(e.Chain).TipState().Contract(addrs[i])
		if !ok {
			return deployed, false // announced but not in the view yet
		}
		if swapStateOf(ct) == contracts.StatePublished {
			return deployed, false
		}
		deployed = true
	}
	return deployed, true
}

// swapStateOf extracts the Algorithm 1 state from any of the asset
// contract types.
func swapStateOf(ct vm.Contract) contracts.SwapState {
	switch c := ct.(type) {
	case *contracts.HTLC:
		return c.State
	case *contracts.PermissionlessSC:
		return c.State
	case *contracts.CentralizedSC:
		return c.State
	default:
		return contracts.StatePublished
	}
}
