package graph

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/crypto"
	"repro/internal/sim"
)

func testKeys(n int) []*crypto.KeyPair {
	rng := sim.NewRNG(7)
	out := make([]*crypto.KeyPair, n)
	for i := range out {
		out[i] = crypto.MustGenerateKey(crypto.NewRandReader(rng.Uint64))
	}
	return out
}

func addrs(keys []*crypto.KeyPair) []crypto.Address {
	out := make([]crypto.Address, len(keys))
	for i, k := range keys {
		out[i] = k.Addr
	}
	return out
}

func TestNewValidation(t *testing.T) {
	ks := testKeys(2)
	cases := []struct {
		name string
		edge Edge
	}{
		{"self-transfer", Edge{From: ks[0].Addr, To: ks[0].Addr, Asset: 1, Chain: "c"}},
		{"zero-asset", Edge{From: ks[0].Addr, To: ks[1].Addr, Asset: 0, Chain: "c"}},
		{"no-chain", Edge{From: ks[0].Addr, To: ks[1].Addr, Asset: 1, Chain: ""}},
		{"zero-participant", Edge{From: crypto.ZeroAddress, To: ks[1].Addr, Asset: 1, Chain: "c"}},
	}
	for _, c := range cases {
		if _, err := New(1, c.edge); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
	if _, err := New(1); err == nil {
		t.Error("empty graph accepted")
	}
}

func TestTwoPartyShape(t *testing.T) {
	ks := testKeys(2)
	g, err := TwoParty(1, ks[0].Addr, ks[1].Addr, 10, "bitcoin", 20, "ethereum")
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Participants) != 2 || len(g.Edges) != 2 {
		t.Fatalf("|V|=%d |E|=%d", len(g.Participants), len(g.Edges))
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("two-party diameter = %d, want 2 (Figure 10 starts at 2)", d)
	}
	if !g.IsCyclic() {
		t.Fatal("swap graph should be cyclic (A→B→A)")
	}
	if !g.IsWeaklyConnected() {
		t.Fatal("two-party graph disconnected?")
	}
	feasible, leader := g.HerlihyFeasible()
	if !feasible {
		t.Fatal("two-party swap must be Herlihy-feasible")
	}
	if leader != ks[0].Addr && leader != ks[1].Addr {
		t.Fatal("leader not a participant")
	}
	chains := g.Chains()
	if len(chains) != 2 || chains[0] != chain.ID("bitcoin") || chains[1] != chain.ID("ethereum") {
		t.Fatalf("Chains() = %v", chains)
	}
}

func TestRingDiameterEqualsLength(t *testing.T) {
	for n := 2; n <= 9; n++ {
		ks := testKeys(n)
		g, err := Ring(1, addrs(ks), 5, []chain.ID{"c1", "c2", "c3"})
		if err != nil {
			t.Fatal(err)
		}
		if d := g.Diameter(); d != n {
			t.Fatalf("ring(%d) diameter = %d, want %d", n, d, n)
		}
	}
}

func TestRingNotHerlihyFeasibleBeyondTwo(t *testing.T) {
	// A pure ring stays cyclic after removing any single vertex only
	// when it contains another cycle; a simple ring minus one vertex
	// is a path, so simple rings ARE single-leader feasible. Figure
	// 7a's graph has overlapping cycles; model it: two rings sharing
	// vertices.
	ks := testKeys(3)
	a, b, c := ks[0].Addr, ks[1].Addr, ks[2].Addr
	g, err := New(1,
		// ring 1: a→b→c→a
		Edge{From: a, To: b, Asset: 1, Chain: "c1"},
		Edge{From: b, To: c, Asset: 1, Chain: "c2"},
		Edge{From: c, To: a, Asset: 1, Chain: "c3"},
		// reverse ring: a→c→b→a (so removing any one vertex leaves a
		// 2-cycle among the other two)
		Edge{From: a, To: c, Asset: 1, Chain: "c1"},
		Edge{From: c, To: b, Asset: 1, Chain: "c2"},
		Edge{From: b, To: a, Asset: 1, Chain: "c3"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if feasible, _ := g.HerlihyFeasible(); feasible {
		t.Fatal("Figure 7a-style graph must not be single-leader feasible")
	}
	// AC3WN handles it regardless (checked end-to-end in core tests).
	if !g.IsCyclic() {
		t.Fatal("graph should be cyclic")
	}
}

func TestDisconnectedGraph(t *testing.T) {
	ks := testKeys(4)
	g, err := Disconnected(1, [][2]crypto.Address{
		{ks[0].Addr, ks[1].Addr},
		{ks[2].Addr, ks[3].Addr},
	}, 10, []chain.ID{"c1", "c2", "c3", "c4"})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsWeaklyConnected() {
		t.Fatal("disconnected graph reported connected")
	}
	if feasible, _ := g.HerlihyFeasible(); feasible {
		t.Fatal("disconnected graph must not be Herlihy-feasible (Section 5.3)")
	}
	if d := g.Diameter(); d != 2 {
		t.Fatalf("diameter of two disjoint swaps = %d, want 2", d)
	}
}

func TestDigestIndependentOfEdgeOrder(t *testing.T) {
	ks := testKeys(3)
	e1 := Edge{From: ks[0].Addr, To: ks[1].Addr, Asset: 1, Chain: "c1"}
	e2 := Edge{From: ks[1].Addr, To: ks[2].Addr, Asset: 2, Chain: "c2"}
	e3 := Edge{From: ks[2].Addr, To: ks[0].Addr, Asset: 3, Chain: "c3"}
	g1, _ := New(9, e1, e2, e3)
	g2, _ := New(9, e3, e1, e2)
	if g1.Digest() != g2.Digest() {
		t.Fatal("digest depends on edge order")
	}
}

func TestDigestSensitivity(t *testing.T) {
	ks := testKeys(2)
	base, _ := TwoParty(1, ks[0].Addr, ks[1].Addr, 10, "c1", 20, "c2")
	mutations := []*Graph{}
	g, _ := TwoParty(2, ks[0].Addr, ks[1].Addr, 10, "c1", 20, "c2") // timestamp
	mutations = append(mutations, g)
	g, _ = TwoParty(1, ks[0].Addr, ks[1].Addr, 11, "c1", 20, "c2") // asset
	mutations = append(mutations, g)
	g, _ = TwoParty(1, ks[0].Addr, ks[1].Addr, 10, "c9", 20, "c2") // chain
	mutations = append(mutations, g)
	for i, m := range mutations {
		if m.Digest() == base.Digest() {
			t.Errorf("mutation %d did not change the digest", i)
		}
	}
}

func TestMultisigCompleteOnlyWithAllParticipants(t *testing.T) {
	ks := testKeys(3)
	g, _ := Ring(1, addrs(ks), 5, []chain.ID{"c"})
	ms := g.Sign(ks[0], ks[1])
	if g.VerifyMultisig(ms) {
		t.Fatal("incomplete multisig verified")
	}
	ms.Add(ks[2])
	if !g.VerifyMultisig(ms) {
		t.Fatal("complete multisig rejected")
	}
	// A multisig over a different graph does not verify.
	other, _ := Ring(2, addrs(ks), 5, []chain.ID{"c"})
	if other.VerifyMultisig(ms) {
		t.Fatal("multisig verified against wrong graph")
	}
	if g.VerifyMultisig(nil) {
		t.Fatal("nil multisig verified")
	}
}

func TestEdgesFromTo(t *testing.T) {
	ks := testKeys(3)
	g, _ := Ring(1, addrs(ks), 5, []chain.ID{"c"})
	for _, p := range g.Participants {
		if len(g.EdgesFrom(p)) != 1 || len(g.EdgesTo(p)) != 1 {
			t.Fatalf("ring vertex %s should have 1 in and 1 out edge", p)
		}
	}
}

func TestRandomGraphInvariants(t *testing.T) {
	rng := sim.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(8)
		ks := testKeys(n)
		g, err := Random(int64(trial), rng, addrs(ks), rng.Intn(10), []chain.ID{"c1", "c2"})
		if err != nil {
			t.Fatal(err)
		}
		// Invariants: connected (ring backbone), diameter within
		// [2, n], every participant appears in some edge.
		if !g.IsWeaklyConnected() {
			t.Fatal("random graph with ring backbone disconnected")
		}
		d := g.Diameter()
		if d < 2 || d > n {
			t.Fatalf("diameter %d outside [2,%d]", d, n)
		}
		for _, p := range g.Participants {
			if len(g.EdgesFrom(p))+len(g.EdgesTo(p)) == 0 {
				t.Fatal("isolated participant")
			}
		}
		// Digest stability.
		if g.Digest() != g.Digest() {
			t.Fatal("digest not deterministic")
		}
	}
}

func TestGeneratorErrors(t *testing.T) {
	ks := testKeys(2)
	if _, err := Ring(1, addrs(ks[:1]), 1, []chain.ID{"c"}); err == nil {
		t.Fatal("1-ring accepted")
	}
	if _, err := Ring(1, addrs(ks), 1, nil); err == nil {
		t.Fatal("ring with no chains accepted")
	}
	if _, err := Disconnected(1, [][2]crypto.Address{{ks[0].Addr, ks[1].Addr}}, 1, []chain.ID{"a", "b"}); err == nil {
		t.Fatal("single-pair 'disconnected' accepted")
	}
}

func TestStringRendering(t *testing.T) {
	ks := testKeys(2)
	g, _ := TwoParty(1, ks[0].Addr, ks[1].Addr, 10, "c1", 20, "c2")
	if g.String() == "" {
		t.Fatal("empty String()")
	}
}
