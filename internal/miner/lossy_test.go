package miner

import (
	"testing"

	"repro/internal/p2p"
	"repro/internal/sim"
)

// TestLossyGossipSelfHealsThroughOrphanRequests is the end-to-end
// regression for the orphan-recovery path under the loss model: with
// a sustained loss overlay on the miner gossip links, MsgBlock
// broadcasts vanish in flight, nodes fall behind and buffer orphans,
// and the only way back is the MsgGetBlock re-request path (itself
// lossy, retried on every orphan re-arrival). After the overlay lifts
// the network must reconverge on one canonical chain — proving the
// re-request path carries real workloads, not just the hand-fed
// chain-layer unit tests.
func TestLossyGossipSelfHealsThroughOrphanRequests(t *testing.T) {
	s, net, _ := testNet(t, 77, 3, p2p.LatencyModel{Base: 100, Jitter: 200})
	net.Start()

	// A clean warm-up, then five lossy minutes: at 40% loss a three-
	// node network drops most of its block floods at least once.
	s.RunUntil(2 * sim.Minute)
	ov := net.P2P.PushOverlay(p2p.LatencyModel{Loss: 0.4})
	s.RunUntil(7 * sim.Minute)
	ov.Remove()

	if net.P2P.Dropped == 0 {
		t.Fatal("loss overlay dropped nothing — the test exercised no adversity")
	}

	// Clean catch-up: every gap is healed by the next block's orphan
	// re-request. Then stop mining and drain in-flight gossip.
	s.RunUntil(12 * sim.Minute)
	for _, n := range net.Nodes {
		n.StopMining()
	}
	s.RunUntil(s.Now() + sim.Minute)

	if !net.Converged() {
		heights := make([]uint64, len(net.Nodes))
		for i, n := range net.Nodes {
			heights[i] = n.Chain.Height()
		}
		t.Fatalf("network did not reconverge after lossy window (heights %v, %d msgs dropped)",
			heights, net.P2P.Dropped)
	}
	// The shared executor proves no block ran twice even though gossip
	// had to be re-requested: hits+executed accounting still balances.
	st := net.Executor().Stats()
	if st.Executed == 0 || st.Hits == 0 {
		t.Fatalf("executor stats degenerate under loss: %+v", st)
	}
	if net.MsgsDropped() != net.P2P.Dropped {
		t.Fatal("Network.MsgsDropped disagrees with the p2p counter")
	}
}

// TestLossyDeterminism runs the same lossy scenario twice and demands
// identical outcomes — chain height, drop counts, reorg counts — the
// per-network forked-RNG guarantee the engine's byte-identical
// aggregates rest on.
func TestLossyDeterminism(t *testing.T) {
	run := func() (uint64, uint64, int, int) {
		s, net, _ := testNet(t, 78, 3, p2p.LatencyModel{Base: 100, Jitter: 200})
		net.Start()
		ov := net.P2P.PushOverlay(p2p.LatencyModel{Loss: 0.3})
		s.RunUntil(5 * sim.Minute)
		ov.Remove()
		s.RunUntil(8 * sim.Minute)
		return net.Height(), net.P2P.Dropped, net.TotalReorgs(), net.MaxReorgDepth()
	}
	h1, d1, r1, m1 := run()
	h2, d2, r2, m2 := run()
	if h1 != h2 || d1 != d2 || r1 != r2 || m1 != m2 {
		t.Fatalf("lossy runs diverged: (%d,%d,%d,%d) vs (%d,%d,%d,%d)",
			h1, d1, r1, m1, h2, d2, r2, m2)
	}
	if d1 == 0 {
		t.Fatal("no drops — loss model inert")
	}
}
