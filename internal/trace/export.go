package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// WriteNDJSON streams the trace as newline-delimited JSON, one record
// per line, in merged (shard, seq) order. The byte stream is a pure
// function of the run configuration: fixed-order struct marshaling,
// no wall clock, no maps.
func WriteNDJSON(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Records {
		// Encode appends the newline itself — one record per line.
		if err := enc.Encode(&t.Records[i]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// chromeEvent is one Chrome trace_event entry. Timestamps are in
// microseconds (the format's unit); virtual milliseconds scale by
// 1000. Args marshal through a pre-built RawMessage so key order is
// deterministic.
type chromeEvent struct {
	Name string          `json:"name"`
	Cat  string          `json:"cat,omitempty"`
	Ph   string          `json:"ph"`
	Pid  int             `json:"pid"`
	Tid  int             `json:"tid"`
	Ts   int64           `json:"ts"`
	Dur  int64           `json:"dur,omitempty"`
	S    string          `json:"s,omitempty"` // instant scope
	Args json.RawMessage `json:"args,omitempty"`
}

// WriteChrome writes the trace in Chrome trace_event JSON (the
// {"traceEvents": [...]} object form), loadable in chrome://tracing
// and Perfetto. One process per shard; within a shard, one track per
// transaction ("tx:<n>") plus one per chain ("chain:<id>") and one
// shard-level track. Track→tid assignment follows first appearance in
// the merged record stream, so the output is deterministic.
func WriteChrome(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev chromeEvent) error {
		if !first {
			if _, err := bw.WriteString(",\n"); err != nil {
				return err
			}
		}
		first = false
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		_, err = bw.Write(b)
		return err
	}

	// Track → tid per shard, assigned in first-seen order; metadata
	// events name the processes and threads as tracks appear.
	type trackKey struct {
		shard int
		track string
	}
	tids := make(map[trackKey]int)
	nextTid := make(map[int]int)
	seenShard := make(map[int]bool)

	for i := range t.Records {
		rec := &t.Records[i]
		if !seenShard[rec.Shard] {
			seenShard[rec.Shard] = true
			if err := emit(chromeEvent{
				Name: "process_name", Ph: "M", Pid: rec.Shard, Tid: 0,
				Args: nameArgs(fmt.Sprintf("shard %d", rec.Shard)),
			}); err != nil {
				return err
			}
		}
		key := trackKey{rec.Shard, rec.Track}
		tid, ok := tids[key]
		if !ok {
			nextTid[rec.Shard]++
			tid = nextTid[rec.Shard]
			tids[key] = tid
			if err := emit(chromeEvent{
				Name: "thread_name", Ph: "M", Pid: rec.Shard, Tid: tid,
				Args: nameArgs(rec.Track),
			}); err != nil {
				return err
			}
		}
		ev := chromeEvent{
			Name: rec.Name,
			Pid:  rec.Shard,
			Tid:  tid,
			Ts:   rec.T * 1000,
			Args: recArgs(rec),
		}
		switch rec.Kind {
		case KindSpan:
			ev.Ph = "X"
			ev.Cat = "span"
			ev.Dur = rec.Dur * 1000
			if ev.Dur == 0 {
				ev.Dur = 1 // zero-width spans vanish in viewers
			}
		default:
			ev.Ph = "i"
			ev.Cat = "event"
			ev.S = "t"
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\n]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// nameArgs builds the {"name": ...} metadata payload.
func nameArgs(name string) json.RawMessage {
	b, _ := json.Marshal(struct {
		Name string `json:"name"`
	}{name})
	return b
}

// recArgs assembles a record's annotations as a RawMessage with
// deterministic key order: scenario, outcome, then attrs as listed.
func recArgs(rec *Record) json.RawMessage {
	if rec.Scenario == "" && rec.Outcome == "" && len(rec.Attrs) == 0 {
		return nil
	}
	buf := []byte{'{'}
	sep := false
	add := func(k, v string, quote bool) {
		if sep {
			buf = append(buf, ',')
		}
		sep = true
		buf = strconv.AppendQuote(buf, k)
		buf = append(buf, ':')
		if quote {
			buf = strconv.AppendQuote(buf, v)
		} else {
			buf = append(buf, v...)
		}
	}
	if rec.Scenario != "" {
		add("scenario", rec.Scenario, true)
	}
	if rec.Outcome != "" {
		add("outcome", rec.Outcome, true)
	}
	for _, a := range rec.Attrs {
		add(a.K, strconv.FormatInt(a.V, 10), false)
	}
	buf = append(buf, '}')
	return buf
}
