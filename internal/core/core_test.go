package core

import (
	"testing"

	"repro/internal/chain"
	"repro/internal/contracts"
	"repro/internal/crypto"
	"repro/internal/graph"
	"repro/internal/sim"
	"repro/internal/xchain"
)

// twoPartyWorld builds Figure 4's scenario plus a dedicated witness
// chain.
func twoPartyWorld(t *testing.T, seed uint64) (*xchain.World, *xchain.Participant, *xchain.Participant) {
	t.Helper()
	b := xchain.NewBuilder(seed)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	for _, id := range []chain.ID{"bitcoin", "ethereum", "witness"} {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	b.Fund(alice, "bitcoin", 1_000_000)
	b.Fund(bob, "ethereum", 1_000_000)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return w, alice, bob
}

func twoPartyRun(t *testing.T, w *xchain.World, alice, bob *xchain.Participant, abortAfter sim.Time) *Run {
	t.Helper()
	g, err := graph.TwoParty(1, alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(w, Config{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Initiator:    alice,
		WitnessChain: "witness",
		WitnessDepth: 2,
		AssetDepth:   2,
		AbortAfter:   abortAfter,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func ownedTotal(w *xchain.World, id chain.ID, a crypto.Address) uint64 {
	var total uint64
	for _, o := range w.View(id).TipState().UTXOsOwnedBy(a) {
		total += o.Value
	}
	return total
}

func TestAC3WNTwoPartyCommit(t *testing.T) {
	w, alice, bob := twoPartyWorld(t, 500)
	r := twoPartyRun(t, w, alice, bob, 0)
	r.Start()
	w.RunUntil(60 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if !out.Committed() {
		t.Fatalf("AC3WN did not commit: %+v (events: %v)", out.Edges, r.Events())
	}
	if out.AtomicityViolated() {
		t.Fatal("atomicity violated")
	}
	if got := ownedTotal(w, "bitcoin", bob.Addr()); got != 40_000 {
		t.Fatalf("bob btc = %d, want 40000", got)
	}
	if got := ownedTotal(w, "ethereum", alice.Addr()); got != 90_000 {
		t.Fatalf("alice eth = %d, want 90000", got)
	}
	// Figure 9's four phase boundaries all recorded, in order.
	if !(r.SCwConfirmedAt > 0 && r.AllDeployedAt >= r.SCwConfirmedAt &&
		r.DecidedAt >= r.AllDeployedAt && r.CompletedAt >= r.DecidedAt) {
		t.Fatalf("phases out of order: scw=%d deployed=%d decided=%d done=%d",
			r.SCwConfirmedAt, r.AllDeployedAt, r.DecidedAt, r.CompletedAt)
	}
	// Cost model (Section 6.2): N+1 deployments, N+1 calls.
	if out.Deploys != 3 {
		t.Fatalf("deploys = %d, want 3 (N+1)", out.Deploys)
	}
	if out.Calls != 3 {
		t.Fatalf("calls = %d, want 3 (N+1)", out.Calls)
	}
}

func TestAC3WNAbortWhenParticipantNeverActs(t *testing.T) {
	w, alice, bob := twoPartyWorld(t, 501)
	r := twoPartyRun(t, w, alice, bob, 20*sim.Minute)
	bob.Crash() // bob never deploys
	r.Start()
	w.RunUntil(90 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if out.Committed() {
		t.Fatal("committed without bob's contract")
	}
	if !out.Aborted() {
		t.Fatalf("not cleanly aborted: %+v", out.Edges)
	}
	if out.AtomicityViolated() {
		t.Fatal("atomicity violated on abort path")
	}
	if got := ownedTotal(w, "bitcoin", alice.Addr()); got != 1_000_000 {
		t.Fatalf("alice btc = %d, want full refund", got)
	}
	if r.DecidedOutcome != contracts.WitnessRefundAuthorized {
		t.Fatalf("decision = %s, want RFauth", r.DecidedOutcome)
	}
}

func TestAC3WNCrashRecoveryPreservesAtomicity(t *testing.T) {
	// The headline contrast with the HTLC baseline: bob crashes right
	// when the commit decision is being pushed, stays down for an
	// hour — far beyond any baseline timelock — then recovers and
	// still redeems. All-or-nothing holds; nobody loses assets.
	w, alice, bob := twoPartyWorld(t, 502)
	r := twoPartyRun(t, w, alice, bob, 0)
	r.Start()

	crashed := false
	w.Sim.Poll(sim.Second, func() bool {
		for _, ev := range r.Events() {
			if ev.Label == "authorize_redeem submitted by alice" ||
				ev.Label == "authorize_redeem submitted by bob" {
				crashed = true
				bob.Crash()
				return true
			}
		}
		return false
	})

	w.RunUntil(90 * sim.Minute) // bob down; alice redeems her side
	if !crashed {
		t.Fatal("decision never pushed; scenario did not unfold")
	}

	mid := r.Grade()
	if mid.AtomicityViolated() {
		t.Fatal("violation while bob is down — impossible without timelocks")
	}
	if mid.Committed() {
		t.Fatal("cannot be fully committed while bob is down")
	}

	bob.Recover()
	r.Resume(bob)
	w.RunUntil(w.Sim.Now() + 60*sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if !out.Committed() {
		t.Fatalf("recovered bob could not redeem: %+v", out.Edges)
	}
	if got := ownedTotal(w, "bitcoin", bob.Addr()); got != 40_000 {
		t.Fatalf("bob btc = %d after recovery, want 40000", got)
	}
}

func TestAC3WNInitiatorCrashAfterDeploysStillCommits(t *testing.T) {
	// Decentralization: the initiator is not a coordinator. Once SCw
	// and the contracts are on-chain, any participant can push the
	// decision.
	w, alice, bob := twoPartyWorld(t, 503)
	r := twoPartyRun(t, w, alice, bob, 0)
	r.Start()

	w.Sim.Poll(sim.Second, func() bool {
		// Crash alice the moment every deploy is confirmed, before
		// any authorize_redeem was submitted.
		if r.AllDeployedAt > 0 {
			for _, ev := range r.Events() {
				if ev.Label == "authorize_redeem submitted by alice" {
					return true // too late to test; skip crash
				}
			}
			alice.Crash()
			return true
		}
		return false
	})
	w.RunUntil(2 * sim.Hour)

	// Bob alone must have pushed the commit.
	scwView := w.View("witness")
	found := false
	for h := scwView.Height(); h > 0; h-- {
		b, _ := scwView.CanonicalAt(h)
		for _, tx := range b.Txs {
			if tx.Kind == chain.TxCall && tx.Fn == contracts.FnAuthorizeRedeem {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("no authorize_redeem on the witness chain")
	}
	// Bob redeems his side; alice's side stays P until she recovers.
	alice.Recover()
	r.Resume(alice)
	w.RunUntil(w.Sim.Now() + 60*sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if !out.Committed() {
		t.Fatalf("AC2T did not commit after initiator crash: %+v", out.Edges)
	}
}

func TestAC3WNCyclicGraphCommits(t *testing.T) {
	// Figure 7a: a graph that is NOT single-leader feasible (two
	// overlapping rings) commits fine under AC3WN.
	b := xchain.NewBuilder(504)
	ps := []*xchain.Participant{b.Participant("p0"), b.Participant("p1"), b.Participant("p2")}
	ids := []chain.ID{"c0", "c1", "c2", "witness"}
	for _, id := range ids {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	for i, p := range ps {
		b.Fund(p, ids[i], 1_000_000)
		b.Fund(p, ids[(i+1)%3], 1_000_000)
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.New(1,
		graph.Edge{From: ps[0].Addr(), To: ps[1].Addr(), Asset: 1_000, Chain: "c0"},
		graph.Edge{From: ps[1].Addr(), To: ps[2].Addr(), Asset: 1_000, Chain: "c1"},
		graph.Edge{From: ps[2].Addr(), To: ps[0].Addr(), Asset: 1_000, Chain: "c2"},
		graph.Edge{From: ps[0].Addr(), To: ps[2].Addr(), Asset: 1_000, Chain: "c1"},
		graph.Edge{From: ps[2].Addr(), To: ps[1].Addr(), Asset: 1_000, Chain: "c0"},
		graph.Edge{From: ps[1].Addr(), To: ps[0].Addr(), Asset: 1_000, Chain: "c2"},
	)
	if err != nil {
		t.Fatal(err)
	}
	if feasible, _ := g.HerlihyFeasible(); feasible {
		t.Fatal("test graph should not be single-leader feasible")
	}
	r, err := New(w, Config{
		Graph:        g,
		Participants: ps,
		Initiator:    ps[0],
		WitnessChain: "witness",
		WitnessDepth: 2,
		AssetDepth:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	w.RunUntil(2 * sim.Hour)
	w.StopMining()
	w.RunFor(sim.Minute)
	out := r.Grade()
	if !out.Committed() {
		t.Fatalf("cyclic graph did not commit: %+v", out.Edges)
	}
}

func TestAC3WNDisconnectedGraphCommits(t *testing.T) {
	// Figure 7b: two disjoint swaps in one AC2T.
	b := xchain.NewBuilder(505)
	ps := []*xchain.Participant{
		b.Participant("p0"), b.Participant("p1"),
		b.Participant("p2"), b.Participant("p3"),
	}
	ids := []chain.ID{"c0", "c1", "c2", "c3", "witness"}
	for _, id := range ids {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	for i, p := range ps {
		b.Fund(p, ids[i], 1_000_000)
	}
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.Disconnected(1, [][2]crypto.Address{
		{ps[0].Addr(), ps[1].Addr()},
		{ps[2].Addr(), ps[3].Addr()},
	}, 1_000, []chain.ID{"c0", "c1", "c2", "c3"})
	if err != nil {
		t.Fatal(err)
	}
	if g.IsWeaklyConnected() {
		t.Fatal("graph should be disconnected")
	}
	r, err := New(w, Config{
		Graph:        g,
		Participants: ps,
		Initiator:    ps[0],
		WitnessChain: "witness",
		WitnessDepth: 2,
		AssetDepth:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	w.RunUntil(2 * sim.Hour)
	w.StopMining()
	w.RunFor(sim.Minute)
	out := r.Grade()
	if !out.Committed() {
		t.Fatalf("disconnected graph did not commit: %+v", out.Edges)
	}
}

func TestAC3WNWitnessOnAssetChain(t *testing.T) {
	// Section 5.2/6.4: the witness network can be one of the involved
	// chains — here ethereum coordinates the AC2T it also carries.
	b := xchain.NewBuilder(506)
	alice := b.Participant("alice")
	bob := b.Participant("bob")
	for _, id := range []chain.ID{"bitcoin", "ethereum"} {
		b.Chain(xchain.DefaultChainSpec(id))
	}
	b.Fund(alice, "bitcoin", 1_000_000)
	b.Fund(bob, "ethereum", 1_000_000)
	w, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	r, err := New(w, Config{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Initiator:    alice,
		WitnessChain: "ethereum",
		WitnessDepth: 2,
		AssetDepth:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	w.RunUntil(90 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)
	if out := r.Grade(); !out.Committed() {
		t.Fatalf("witness-on-asset-chain run did not commit: %+v", out.Edges)
	}
}

func TestAC3WNConfigValidation(t *testing.T) {
	w, alice, bob := twoPartyWorld(t, 507)
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 1, "bitcoin", 2, "ethereum")
	if _, err := New(w, Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := New(w, Config{Graph: g, Participants: []*xchain.Participant{alice, bob}, Initiator: alice, WitnessChain: "nope"}); err == nil {
		t.Fatal("unknown witness chain accepted")
	}
	if _, err := New(w, Config{Graph: g, Participants: []*xchain.Participant{alice}, Initiator: alice, WitnessChain: "witness"}); err == nil {
		t.Fatal("missing participant accepted")
	}
	if _, err := New(w, Config{Graph: g, Participants: []*xchain.Participant{alice, bob}, Initiator: alice, WitnessChain: "witness", WitnessDepth: -1}); err == nil {
		t.Fatal("negative depth accepted")
	}
}

// --- AC3TW ---

func TestAC3TWTwoPartyCommit(t *testing.T) {
	w, alice, bob := twoPartyWorld(t, 508)
	trent := NewTrent(w, 9999, 100*sim.Millisecond)
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	r, err := NewTW(w, TWConfig{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Initiator:    alice,
		Trent:        trent,
		ConfirmDepth: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	w.RunUntil(40 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if !out.Committed() {
		t.Fatalf("AC3TW did not commit: %+v (events %v)", out.Edges, r.Events())
	}
	if trent.SignedRD != 1 || trent.SignedRF != 0 {
		t.Fatalf("trent signed RD=%d RF=%d, want 1/0", trent.SignedRD, trent.SignedRF)
	}
	if got := ownedTotal(w, "bitcoin", bob.Addr()); got != 40_000 {
		t.Fatalf("bob btc = %d", got)
	}
}

func TestAC3TWAbortRefundsEveryone(t *testing.T) {
	w, alice, bob := twoPartyWorld(t, 509)
	trent := NewTrent(w, 9999, 100*sim.Millisecond)
	bob.Crash()
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	r, err := NewTW(w, TWConfig{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Initiator:    alice,
		Trent:        trent,
		ConfirmDepth: 2,
		AbortAfter:   20 * sim.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	r.Start()
	w.RunUntil(90 * sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)

	out := r.Grade()
	if !out.Aborted() || out.AtomicityViolated() {
		t.Fatalf("AC3TW abort path failed: %+v", out.Edges)
	}
	if trent.SignedRF != 1 || trent.SignedRD != 0 {
		t.Fatalf("trent signed RD=%d RF=%d, want 0/1", trent.SignedRD, trent.SignedRF)
	}
	if got := ownedTotal(w, "bitcoin", alice.Addr()); got != 1_000_000 {
		t.Fatalf("alice btc = %d, want refund", got)
	}
}

func TestAC3TWMutualExclusion(t *testing.T) {
	// Once Trent signs RD, a refund request returns the RD decision
	// rather than a refund signature.
	w, alice, bob := twoPartyWorld(t, 510)
	trent := NewTrent(w, 9999, 100*sim.Millisecond)
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	r, _ := NewTW(w, TWConfig{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Initiator:    alice,
		Trent:        trent,
		ConfirmDepth: 2,
	})
	r.Start()
	w.RunUntil(40 * sim.Minute)

	var gotPurpose crypto.Purpose
	trent.RequestRefund(r.msID, func(sig crypto.Signature, p crypto.Purpose, err error) {
		if err != nil {
			t.Errorf("refund request errored: %v", err)
			return
		}
		gotPurpose = p
	})
	w.RunFor(sim.Minute)
	if gotPurpose != crypto.PurposeRedeem {
		t.Fatalf("refund request after commit returned %v, want the stored RD", gotPurpose)
	}
	if trent.SignedRF != 0 {
		t.Fatal("trent issued a refund signature after committing")
	}
}

func TestAC3TWTrentCrashStallsProtocol(t *testing.T) {
	// The availability weakness of the centralized design: with Trent
	// down, nothing can be decided. (AC3WN has no such single point.)
	w, alice, bob := twoPartyWorld(t, 511)
	trent := NewTrent(w, 9999, 100*sim.Millisecond)
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 40_000, "bitcoin", 90_000, "ethereum")
	r, _ := NewTW(w, TWConfig{
		Graph:        g,
		Participants: []*xchain.Participant{alice, bob},
		Initiator:    alice,
		Trent:        trent,
		ConfirmDepth: 2,
	})
	// Trent crashes after registration (sub-second) but before the
	// contracts confirm (~40s), so no decision can have been made.
	w.Sim.At(5*sim.Second, func() { trent.Crash() })
	r.Start()
	w.RunUntil(60 * sim.Minute)

	if r.DecidedAt != 0 {
		t.Fatal("decision reached while Trent was down")
	}
	out := r.Grade()
	if out.Committed() || out.AtomicityViolated() {
		t.Fatalf("unexpected outcome during stall: %+v", out.Edges)
	}

	// Recovery: Trent comes back, and the initiator's throttled
	// re-request (the reconciler retries on every notification)
	// unblocks the run without any manual poke.
	trent.Recover()
	w.RunUntil(w.Sim.Now() + 40*sim.Minute)
	w.StopMining()
	w.RunFor(sim.Minute)
	if out := r.Grade(); !out.Committed() {
		t.Fatalf("AC3TW did not commit after Trent recovered: %+v", out.Edges)
	}
}

func TestAC3TWRegisterDuplicateRejected(t *testing.T) {
	w, alice, bob := twoPartyWorld(t, 512)
	trent := NewTrent(w, 9999, 100*sim.Millisecond)
	g, _ := graph.TwoParty(1, alice.Addr(), bob.Addr(), 1, "bitcoin", 2, "ethereum")
	ms := crypto.NewMultiSig(g.Digest())
	ms.Add(alice.Key)
	ms.Add(bob.Key)
	var first, second error
	trent.Register(g, ms, func(err error) { first = err })
	w.RunFor(sim.Minute)
	trent.Register(g, ms, func(err error) { second = err })
	w.RunFor(sim.Minute)
	if first != nil {
		t.Fatalf("first registration failed: %v", first)
	}
	if second == nil {
		t.Fatal("duplicate registration accepted")
	}
	// Incomplete multisig rejected.
	g2, _ := graph.TwoParty(2, alice.Addr(), bob.Addr(), 1, "bitcoin", 2, "ethereum")
	ms2 := crypto.NewMultiSig(g2.Digest())
	ms2.Add(alice.Key)
	var third error
	trent.Register(g2, ms2, func(err error) { third = err })
	w.RunFor(sim.Minute)
	if third == nil {
		t.Fatal("incomplete multisig registered")
	}
}
